package coma

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation at the Bench campaign scale (use cmd/comabench for the
// quick/full campaigns). Each benchmark iteration performs the full set
// of simulations behind its table; the regenerated table is printed once
// per benchmark so `go test -bench=.` reproduces the whole evaluation.

var benchPrintOnce sync.Map

func benchTable(b *testing.B, id string, gen func(*ExperimentSuite) (*ReportTable, error)) {
	b.Helper()
	var last *ReportTable
	for i := 0; i < b.N; i++ {
		suite := NewExperiments(BenchExperiments())
		t, err := gen(suite)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if _, printed := benchPrintOnce.LoadOrStore(id, true); !printed && last != nil {
		b.StopTimer()
		fmt.Println()
		if err := last.Fprint(os.Stdout); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkTable1Injections(b *testing.B) {
	benchTable(b, "table1", func(s *ExperimentSuite) (*ReportTable, error) { return s.Table1() })
}

func BenchmarkTable2Latency(b *testing.B) {
	benchTable(b, "table2", func(s *ExperimentSuite) (*ReportTable, error) { return s.Table2() })
}

func BenchmarkTable3Apps(b *testing.B) {
	benchTable(b, "table3", func(s *ExperimentSuite) (*ReportTable, error) { return s.Table3() })
}

func BenchmarkFig3TimeOverhead(b *testing.B) {
	benchTable(b, "fig3", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig3() })
}

func BenchmarkFig4ReplicationThroughput(b *testing.B) {
	benchTable(b, "fig4", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig4() })
}

func BenchmarkFig5MissRate(b *testing.B) {
	benchTable(b, "fig5", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig5() })
}

func BenchmarkFig6Injections(b *testing.B) {
	benchTable(b, "fig6", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig6() })
}

func BenchmarkFig7MemoryOverhead(b *testing.B) {
	benchTable(b, "fig7", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig7() })
}

func BenchmarkFig8CreateScalability(b *testing.B) {
	benchTable(b, "fig8", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig8() })
}

func BenchmarkFig9ThroughputScalability(b *testing.B) {
	benchTable(b, "fig9", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig9() })
}

func BenchmarkFig10PollutionScalability(b *testing.B) {
	benchTable(b, "fig10", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig10() })
}

func BenchmarkFig11InjectionScalability(b *testing.B) {
	benchTable(b, "fig11", func(s *ExperimentSuite) (*ReportTable, error) { return s.Fig11() })
}

// Campaign benchmarks: the full frequency study (Fig. 3–7) rendered
// through one suite, serial versus pooled. On a multi-core runner the
// parallel variant shows the campaign-level speedup; the rendered tables
// are byte-identical either way (TestParallelMatchesSerial in
// internal/experiments asserts this).

func benchCampaign(b *testing.B, workers int) {
	b.Helper()
	ids := []string{"fig3", "fig4", "fig5", "fig6", "fig7"}
	for i := 0; i < b.N; i++ {
		p := BenchExperiments()
		p.Workers = workers
		suite := NewExperiments(p)
		suite.Plan(ids...)
		gens := []func() (*ReportTable, error){
			suite.Fig3, suite.Fig4, suite.Fig5, suite.Fig6, suite.Fig7,
		}
		for _, gen := range gens {
			if _, err := gen(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCampaignFrequencyStudySerial(b *testing.B)   { benchCampaign(b, 1) }
func BenchmarkCampaignFrequencyStudyParallel(b *testing.B) { benchCampaign(b, 0) }

// Component micro-benchmarks: the cost of the simulator itself.

func BenchmarkStandardRunMp3d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Nodes: 16, Protocol: Standard, App: Mp3d(),
			Scale: 0.002, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECPRunMp3d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Nodes: 16, Protocol: ECP, App: Mp3d(),
			Scale: 0.002, Seed: 1, CheckpointHz: 400,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Nodes: 16, Protocol: ECP, App: Water(),
			Scale: 0.002, Seed: 1, CheckpointHz: 400,
			Failures: []Failure{{At: 60_000, Node: 5}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

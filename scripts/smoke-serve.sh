#!/usr/bin/env bash
# Serving smoke test (CI: smoke-serve job; locally: make smoke-serve).
#
# Boots a comad daemon with a persistent cache directory, submits the
# same tiny job twice, and asserts the serving contract end to end:
#   1. the first submission is a cache miss that actually simulates;
#   2. the second is answered from the store ("cache":"hit");
#   3. the raw result payloads of both fetches are byte-identical;
#   4. /metrics reports the submissions, the hit, and the store entry;
#   5. SIGTERM drains and the daemon exits 0.
set -euo pipefail

PORT="${SMOKE_PORT:-7742}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SPEC='{"app":"mp3d","nodes":4,"protocol":"ecp","hz":100,"instructions":5000,"seed":1}'

echo "== build"
go build -o "$WORK/comad" ./cmd/comad

echo "== boot"
"$WORK/comad" serve -addr "127.0.0.1:${PORT}" -workers 2 \
    -cache-dir "$WORK/cache" -revision smoke >"$WORK/comad.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "daemon never came up"; cat "$WORK/comad.log"; exit 1; fi
    sleep 0.1
done
curl -fsS "$BASE/healthz"; echo

echo "== first submission (must simulate)"
curl -fsS -X POST "$BASE/v1/jobs?wait=1" -d "$SPEC" >"$WORK/first.json"
python3 - "$WORK/first.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["state"] == "done", st
assert st["cache"] == "miss", f'first submission cache={st["cache"]}, want miss'
assert st.get("result"), "no result payload"
print(f'ok: job {st["id"][:12]} miss, {st["result"]["Cycles"]} cycles')
EOF
JOB_ID="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/first.json")"

echo "== second submission (must hit the cache)"
curl -fsS -X POST "$BASE/v1/jobs?wait=1" -d "$SPEC" >"$WORK/second.json"
python3 - "$WORK/second.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["state"] == "done", st
assert st["cache"] == "hit", f'second submission cache={st["cache"]}, want hit'
print(f'ok: job {st["id"][:12]} hit')
EOF

echo "== byte-identical raw result payloads"
curl -fsS "$BASE/v1/jobs/$JOB_ID/result" >"$WORK/result1.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/result" >"$WORK/result2.json"
cmp "$WORK/result1.json" "$WORK/result2.json"
echo "ok: $(wc -c <"$WORK/result1.json") bytes, identical"

echo "== metrics"
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -q '^comad_jobs_submitted_total 2$' "$WORK/metrics.txt"
grep -q '^comad_cache_requests_total{outcome="hit"} 1$' "$WORK/metrics.txt"
grep -q '^comad_cache_requests_total{outcome="miss"} 1$' "$WORK/metrics.txt"
grep -q '^comad_jobs_total{state="done"} 1$' "$WORK/metrics.txt"
grep -q '^comad_store_entries 1$' "$WORK/metrics.txt"
echo "ok: submissions, hit/miss split, store entry all reported"

echo "== graceful shutdown"
kill -TERM "$DAEMON"
for i in $(seq 1 100); do
    if ! kill -0 "$DAEMON" 2>/dev/null; then break; fi
    if [ "$i" = 100 ]; then echo "daemon ignored SIGTERM"; exit 1; fi
    sleep 0.1
done
wait "$DAEMON"; STATUS=$?
[ "$STATUS" = 0 ] || { echo "daemon exited $STATUS"; cat "$WORK/comad.log"; exit 1; }
grep -q 'drained' "$WORK/comad.log"
echo "ok: drained and exited 0"

echo "smoke-serve: all checks passed"

#!/usr/bin/env bash
# Live-inspection smoke test (CI: smoke-inspect job; locally: make
# smoke-inspect). Exercises the inspection layer end to end and proves
# the core promise — observing a run does not change it:
#   1. a plain comasim run and a comasim -repl run (pause, query a
#      line's placement, step, resume) of the same 16-node faulted spec
#      produce byte-identical traces and identical results;
#   2. comatrace summarize exits non-zero on an empty trace;
#   3. a comad daemon answers all four inspect views (summary, node,
#      queues, line) with valid JSON while a 16-node faulted job is
#      mid-run, streams samples over SSE, and reports the per-job
#      gauges on /metrics;
#   4. the inspected daemon job's stored result is byte-identical to
#      the same spec run uninspected by a fresh daemon;
#   5. SIGTERM drains and both daemons exit 0.
#
# Set ARTIFACT_DIR to keep logs, traces and JSON responses (CI uploads
# them); otherwise everything lives in a temp dir.
set -euo pipefail

PORT="${SMOKE_PORT:-7743}"
PORT2=$((PORT + 1))
BASE="http://127.0.0.1:${PORT}"
BASE2="http://127.0.0.1:${PORT2}"
WORK="$(mktemp -d)"

cleanup() {
    [ -n "${DAEMON:-}" ] && kill "$DAEMON" 2>/dev/null || true
    [ -n "${DAEMON2:-}" ] && kill "$DAEMON2" 2>/dev/null || true
    if [ -n "${ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ARTIFACT_DIR"
        cp "$WORK"/*.log "$WORK"/*.json "$WORK"/*.jsonl "$WORK"/*.txt "$ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# 16 nodes, ECP, a permanent node failure mid-run. The CLI runs use a
# small scale so the trace-diff part stays fast; the daemon job uses a
# larger one so it is still mid-run when we query it.
CLI_FLAGS=(-app mp3d -nodes 16 -protocol ecp -hz 400 -scale 0.005 -seed 7 -fail 30000:2)
SPEC='{"app":"mp3d","nodes":16,"protocol":"ecp","hz":400,"scale":0.5,"seed":7,"failures":[{"at":30000,"node":2,"permanent":true}]}'

echo "== build"
go build -o "$WORK/comasim" ./cmd/comasim
go build -o "$WORK/comad" ./cmd/comad
go build -o "$WORK/comatrace" ./cmd/comatrace

echo "== inspected CLI run is byte-identical to uninspected"
"$WORK/comasim" "${CLI_FLAGS[@]}" -trace-out "$WORK/base.jsonl" >"$WORK/base.txt" 2>&1
printf 'pause\nstep 20000\nline 100\nnode\nqueues\nsummary\nquit\n' |
    "$WORK/comasim" -repl "${CLI_FLAGS[@]}" -trace-out "$WORK/repl.jsonl" >"$WORK/repl.txt" 2>&1
cmp "$WORK/base.jsonl" "$WORK/repl.jsonl"
grep -q 'owner' "$WORK/repl.txt" || { echo "REPL never reported a line's owner"; cat "$WORK/repl.txt"; exit 1; }
diff <(grep 'cycles' "$WORK/base.txt") <(grep 'cycles' "$WORK/repl.txt")
echo "ok: $(wc -c <"$WORK/base.jsonl") trace bytes identical, results match"

echo "== comatrace summarize rejects an empty trace"
: >"$WORK/empty.jsonl"
if "$WORK/comatrace" summarize "$WORK/empty.jsonl" >"$WORK/empty.txt" 2>&1; then
    echo "comatrace summarize exited 0 on an empty trace"; exit 1
fi
grep -q 'no events' "$WORK/empty.txt"
echo "ok: non-zero exit with a clear message"

echo "== boot daemon"
"$WORK/comad" serve -addr "127.0.0.1:${PORT}" -workers 2 \
    -cache-dir "$WORK/cache" -revision smoke >"$WORK/comad.log" 2>&1 &
DAEMON=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "daemon never came up"; cat "$WORK/comad.log"; exit 1; fi
    sleep 0.1
done

echo "== submit async 16-node faulted job"
curl -fsS -X POST "$BASE/v1/jobs" -d "$SPEC" >"$WORK/submit.json"
JOB_ID="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/submit.json")"
for i in $(seq 1 100); do
    STATE="$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
    [ "$STATE" = running ] && break
    [ "$STATE" = done ] && { echo "job finished before inspection (raise scale)"; exit 1; }
    sleep 0.05
done
[ "$STATE" = running ] || { echo "job never started running (state=$STATE)"; exit 1; }

echo "== all four inspect views mid-run"
# Let the run get past its warm-up before asserting on view contents:
# freshly booted nodes legitimately report zero AM frames.
for i in $(seq 1 200); do
    CYC="$(curl -fsS "$BASE/v1/jobs/$JOB_ID/inspect?view=summary" |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["sim_cycles"])')"
    [ "$CYC" -ge 50000 ] && break
    if [ "$i" = 200 ]; then echo "job never reached cycle 50000 (at $CYC)"; exit 1; fi
    sleep 0.05
done
curl -fsS "$BASE/v1/jobs/$JOB_ID/inspect?view=summary" >"$WORK/summary.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/inspect?view=node" >"$WORK/node.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/inspect?view=queues" >"$WORK/queues.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/inspect?view=line&item=100" >"$WORK/line.json"
python3 - "$WORK" <<'EOF'
import json, sys
w = sys.argv[1]
s = json.load(open(f"{w}/summary.json"))
assert s["nodes"] == 16, s
assert s["sim_cycles"] > 0, s
assert not s["finished"], "summary claims finished mid-run"
nodes = json.load(open(f"{w}/node.json"))
assert len(nodes) == 16, f"{len(nodes)} node views, want 16"
assert all(n["frames"] > 0 for n in nodes if n["alive"]), "a live node reports zero AM frames"
assert not nodes[2]["alive"], "node 2 should be dead (permanent failure at cycle 30000)"
q = json.load(open(f"{w}/queues.json"))
assert "request" in q and "reply" in q, q
assert q["request"]["inflight"] >= 0 and q["reply"]["inflight"] >= 0, q
line = json.load(open(f"{w}/line.json"))
assert line["item"] == 100, line
assert "home" in line and "copies" in line and "recovery_pairs" in line, line
print(f'ok: cycle {s["sim_cycles"]}, {s["events"]} events, '
      f'line 100 home={line["home"]} copies={len(line["copies"])}')
EOF

echo "== SSE stream delivers samples"
curl -sN --max-time 3 "$BASE/v1/jobs/$JOB_ID/inspect/stream" >"$WORK/stream.txt" || true
grep -c '^event: sample$' "$WORK/stream.txt" >/dev/null
python3 - "$WORK/stream.txt" <<'EOF'
import json, sys
datas = [l[6:] for l in open(sys.argv[1]) if l.startswith("data: ")]
assert datas, "no samples on the stream"
s = json.loads(datas[0])
assert s["seq"] >= 1 and s["summary"]["sim_cycles"] > 0, s
print(f"ok: {len(datas)} samples, first at cycle {s['summary']['sim_cycles']}")
EOF

echo "== per-job gauges on /metrics"
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -q "^coma_job_sim_cycles{job=\"${JOB_ID:0:12}" "$WORK/metrics.txt"
grep -q "^coma_queue_depth{job=\"${JOB_ID:0:12}.*subnet=\"request\"" "$WORK/metrics.txt"
grep -q "^coma_queue_depth{job=\"${JOB_ID:0:12}.*subnet=\"reply\"" "$WORK/metrics.txt"
echo "ok: sim_cycles and queue_depth families present"

echo "== inspected daemon result is byte-identical to uninspected"
curl -fsS "$BASE/v1/jobs/$JOB_ID?wait=1" >/dev/null
curl -fsS "$BASE/v1/jobs/$JOB_ID/result" >"$WORK/inspected.json"
"$WORK/comad" serve -addr "127.0.0.1:${PORT2}" -workers 2 \
    -cache-dir "$WORK/cache2" -revision smoke >"$WORK/comad2.log" 2>&1 &
DAEMON2=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE2/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "second daemon never came up"; cat "$WORK/comad2.log"; exit 1; fi
    sleep 0.1
done
curl -fsS -X POST "$BASE2/v1/jobs?wait=1" -d "$SPEC" >/dev/null
curl -fsS "$BASE2/v1/jobs/$JOB_ID/result" >"$WORK/uninspected.json"
cmp "$WORK/inspected.json" "$WORK/uninspected.json"
echo "ok: $(wc -c <"$WORK/inspected.json") result bytes identical"

echo "== graceful shutdown"
for D in "$DAEMON" "$DAEMON2"; do
    kill -TERM "$D"
    for i in $(seq 1 100); do
        if ! kill -0 "$D" 2>/dev/null; then break; fi
        if [ "$i" = 100 ]; then echo "daemon $D ignored SIGTERM"; exit 1; fi
        sleep 0.1
    done
    wait "$D" || { echo "daemon $D exited non-zero"; cat "$WORK"/comad*.log; exit 1; }
done
echo "ok: both daemons drained and exited 0"

echo "smoke-inspect: all checks passed"

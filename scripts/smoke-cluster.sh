#!/usr/bin/env bash
# Cluster smoke test (CI: smoke-cluster job; locally: make smoke-cluster).
#
# Boots a comad coordinator plus comanode workers and kills one mid-
# campaign, asserting the cluster's fault-tolerance contract end to end:
#   1. a comabench campaign fans out to the cluster via -remote;
#   2. SIGKILLing the only worker while it holds a lease trips the
#      liveness sweep: the worker is marked dead, its lease expires and
#      the job is requeued (all three visible in /metrics);
#   3. replacement workers absorb the queue and the campaign completes;
#   4. the campaign table is byte-identical to a single-process run;
#   5. SIGTERM drains the replacements (exit 0) and the coordinator.
set -euo pipefail

PORT="${SMOKE_PORT:-7743}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/comad" ./cmd/comad
go build -o "$WORK/comanode" ./cmd/comanode
go build -o "$WORK/comabench" ./cmd/comabench

echo "== single-process baseline"
"$WORK/comabench" -params bench -only fig3 -workers 1 >"$WORK/serial.txt"

echo "== boot coordinator (cluster mode, 1s lease TTL)"
"$WORK/comad" serve -addr "127.0.0.1:${PORT}" -cluster -lease-ttl 1s \
    -revision smoke >"$WORK/comad.log" 2>&1 &
COORD=$!
PIDS+=("$COORD")
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "coordinator never came up"; cat "$WORK/comad.log"; exit 1; fi
    sleep 0.1
done

# wait_worker NAME FIELD THRESHOLD: poll GET /v1/workers until the named
# worker reports field >= threshold (e.g. a lease held, a job running).
wait_worker() {
    for i in $(seq 1 200); do
        curl -fsS "$BASE/v1/workers" >"$WORK/fleet.json" || true
        if python3 - "$WORK/fleet.json" "$1" "$2" "$3" <<'EOF'
import json, sys
path, name, field, want = sys.argv[1:5]
try:
    fleet = json.load(open(path)).get("workers") or []
except (OSError, ValueError):
    sys.exit(1)
ok = any(w["name"] == name and w[field] >= int(want) for w in fleet)
sys.exit(0 if ok else 1)
EOF
        then return 0; fi
        sleep 0.05
    done
    echo "worker $1 never reached $2 >= $3"
    cat "$WORK/fleet.json" || true
    return 1
}

echo "== start the victim worker"
"$WORK/comanode" -coordinator "$BASE" -name victim -slots 1 \
    -revision smoke >"$WORK/victim.log" 2>&1 &
VICTIM=$!
PIDS+=("$VICTIM")
wait_worker victim slots 1

echo "== launch the campaign against the cluster"
"$WORK/comabench" -params bench -only fig3 -remote "$BASE" \
    >"$WORK/cluster.txt" 2>"$WORK/comabench.err" &
CAMPAIGN=$!
PIDS+=("$CAMPAIGN")

echo "== kill the victim while it holds a lease"
wait_worker victim leases 1
kill -9 "$VICTIM"
wait "$VICTIM" 2>/dev/null || true

echo "== lease expiry: dead worker, requeued job"
sleep 2.5   # > 2 lease TTLs: the victim's silence is now conclusive
curl -fsS "$BASE/metrics" >"$WORK/metrics-after-kill.txt"   # scrape runs the sweep
python3 - "$WORK/metrics-after-kill.txt" <<'EOF'
import sys
vals = {}
for line in open(sys.argv[1]):
    if line.startswith("#"): continue
    parts = line.rsplit(None, 1)
    if len(parts) == 2: vals[parts[0]] = float(parts[1])
dead = vals.get('coma_cluster_workers{state="dead"}', 0)
exp = vals.get("coma_cluster_lease_expiries_total", 0)
req = vals.get("coma_cluster_requeues_total", 0)
assert dead == 1, f"dead workers = {dead}, want 1"
assert exp >= 1, f"lease expiries = {exp}, want >= 1"
assert req >= 1, f"requeues = {req}, want >= 1"
print(f"ok: 1 dead worker, {exp:.0f} lease expiry(ies), {req:.0f} requeue(s)")
EOF

echo "== start two replacement workers"
for name in healthy-1 healthy-2; do
    "$WORK/comanode" -coordinator "$BASE" -name "$name" -slots 1 \
        -revision smoke >"$WORK/$name.log" 2>&1 &
    PIDS+=("$!")
done
HEALTHY1=${PIDS[-2]}
HEALTHY2=${PIDS[-1]}

echo "== campaign must complete despite the crash"
if ! wait "$CAMPAIGN"; then
    echo "campaign failed"; cat "$WORK/comabench.err"; exit 1
fi

echo "== byte-identical table vs single-process"
cmp "$WORK/serial.txt" "$WORK/cluster.txt"
echo "ok: $(wc -c <"$WORK/serial.txt") bytes, identical"

echo "== graceful worker drain"
kill -TERM "$HEALTHY1" "$HEALTHY2"
for pid in "$HEALTHY1" "$HEALTHY2"; do
    if ! wait "$pid"; then echo "worker $pid did not drain cleanly"; exit 1; fi
done
grep -q 'drained, bye' "$WORK/healthy-1.log"
grep -q 'drained, bye' "$WORK/healthy-2.log"
echo "ok: both replacements drained and exited 0"

echo "== coordinator shutdown"
kill -TERM "$COORD"
if ! wait "$COORD"; then echo "coordinator exited non-zero"; cat "$WORK/comad.log"; exit 1; fi

echo "smoke-cluster: all checks passed"

#!/usr/bin/env bash
# Execution-receipt smoke test (CI: smoke-attest job; locally: make
# attest).
#
# Exercises the verifiable-receipt contract end to end (see README
# §Execution receipts):
#   1. two same-seed comasim runs emit byte-identical receipts;
#   2. `comatrace attest` verifies the genuine receipt against the
#      result payload and the trace (exit 0);
#   3. a single flipped byte in the result, the trace, or the receipt
#      makes attest exit 1 naming the divergent field;
#   4. a comad daemon with a receipt key signs every emitted receipt;
#      the fetched receipt + result + trace attest offline under the
#      same key, and /metrics counts the verdict;
#   5. SIGTERM drains and the daemon exits 0.
set -euo pipefail

PORT="${SMOKE_PORT:-7743}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
KEY="736d6f6b652d7265636569707473"  # hex("smoke-receipts")

RUNFLAGS=(-app uniform -nodes 4 -protocol ecp -seed 11 -scale 0.001 -hz 50)
SPEC='{"app":"uniform","nodes":4,"protocol":"ecp","seed":11,"scale":0.001,"hz":50}'

echo "== build"
go build -o "$WORK/comasim" ./cmd/comasim
go build -o "$WORK/comatrace" ./cmd/comatrace
go build -o "$WORK/comad" ./cmd/comad

echo "== same-seed receipts are byte-identical"
"$WORK/comasim" "${RUNFLAGS[@]}" -receipt-out "$WORK/a.receipt.json" \
    -result-out "$WORK/a.result.json" -trace-out "$WORK/a.jsonl" >/dev/null
"$WORK/comasim" "${RUNFLAGS[@]}" -receipt-out "$WORK/b.receipt.json" \
    -result-out "$WORK/b.result.json" -trace-out "$WORK/b.jsonl" >/dev/null
cmp "$WORK/a.receipt.json" "$WORK/b.receipt.json"
cmp "$WORK/a.result.json" "$WORK/b.result.json"
cmp "$WORK/a.jsonl" "$WORK/b.jsonl"
echo "ok: receipt, result, and trace all byte-identical across runs"

echo "== genuine receipt attests"
"$WORK/comatrace" attest "$WORK/a.receipt.json" \
    -result "$WORK/a.result.json" -trace "$WORK/a.jsonl"

echo "== tampering is caught, naming the field"
# One hex digit flipped inside the recorded result digest.
python3 - "$WORK/a.receipt.json" "$WORK/tampered.receipt.json" <<'EOF'
import sys
raw = open(sys.argv[1]).read()
i = raw.index('"result_digest":"') + len('"result_digest":"')
open(sys.argv[2], "w").write(raw[:i] + ("0" if raw[i] != "0" else "1") + raw[i+1:])
EOF
if "$WORK/comatrace" attest "$WORK/tampered.receipt.json" \
    -result "$WORK/a.result.json" 2>"$WORK/err.txt"; then
    echo "attest accepted a tampered receipt"; exit 1
fi
grep -q 'result_digest' "$WORK/err.txt"
# One byte flipped in the result artifact.
printf 'X' | dd of="$WORK/b.result.json" bs=1 seek=10 conv=notrunc 2>/dev/null
if "$WORK/comatrace" attest "$WORK/a.receipt.json" \
    -result "$WORK/b.result.json" 2>"$WORK/err.txt"; then
    echo "attest accepted a tampered result"; exit 1
fi
grep -q 'result_digest' "$WORK/err.txt"
# One byte flipped in the trace artifact.
printf 'X' | dd of="$WORK/b.jsonl" bs=1 seek=100 conv=notrunc 2>/dev/null
if "$WORK/comatrace" attest "$WORK/a.receipt.json" \
    -trace "$WORK/b.jsonl" 2>"$WORK/err.txt"; then
    echo "attest accepted a tampered trace"; exit 1
fi
grep -q 'trace_digest' "$WORK/err.txt"
echo "ok: receipt, result, and trace tampering each named the divergent field"

echo "== boot comad with a receipt key"
"$WORK/comad" serve -addr "127.0.0.1:${PORT}" -workers 2 \
    -cache-dir "$WORK/cache" -revision smoke -receipt-key "$KEY" \
    >"$WORK/comad.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "daemon never came up"; cat "$WORK/comad.log"; exit 1; fi
    sleep 0.1
done

echo "== run a job and fetch its attestation artifacts"
curl -fsS -X POST "$BASE/v1/jobs?wait=1" -d "$SPEC" >"$WORK/job.json"
JOB_ID="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$WORK/job.json")"
curl -fsS "$BASE/v1/jobs/$JOB_ID/receipt" >"$WORK/d.receipt.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/result"  >"$WORK/d.result.json"
curl -fsS "$BASE/v1/jobs/$JOB_ID/trace"   >"$WORK/d.jsonl"

echo "== daemon receipt attests offline under the shared key"
"$WORK/comatrace" attest "$WORK/d.receipt.json" -key "$KEY" \
    -result "$WORK/d.result.json" -trace "$WORK/d.jsonl"
# The wrong key must fail on the signature.
if "$WORK/comatrace" attest "$WORK/d.receipt.json" -key "00ff00ff" \
    -result "$WORK/d.result.json" 2>"$WORK/err.txt"; then
    echo "attest accepted a foreign signature"; exit 1
fi
grep -q 'sig' "$WORK/err.txt"
echo "ok: signature binds the receipt to the daemon's key"

echo "== metrics count the verdict"
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -q '^coma_receipts_total{verdict="ok"} 1$' "$WORK/metrics.txt"
grep -q '^coma_receipts_total{verdict="violated"} 0$' "$WORK/metrics.txt"
echo "ok: coma_receipts_total{verdict=\"ok\"} = 1"

echo "== graceful shutdown"
kill -TERM "$DAEMON"
for i in $(seq 1 100); do
    if ! kill -0 "$DAEMON" 2>/dev/null; then break; fi
    if [ "$i" = 100 ]; then echo "daemon ignored SIGTERM"; exit 1; fi
    sleep 0.1
done
wait "$DAEMON"; STATUS=$?
[ "$STATUS" = 0 ] || { echo "daemon exited $STATUS"; cat "$WORK/comad.log"; exit 1; }

# Keep the artifacts for CI upload when a destination is provided.
if [ -n "${ATTEST_ARTIFACTS:-}" ]; then
    mkdir -p "$ATTEST_ARTIFACTS"
    cp "$WORK/a.receipt.json" "$WORK/a.result.json" "$WORK/a.jsonl" \
       "$WORK/d.receipt.json" "$WORK/d.result.json" "$WORK/d.jsonl" \
       "$ATTEST_ARTIFACTS/"
fi

echo "smoke-attest: all checks passed"

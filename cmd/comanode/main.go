// Command comanode is a comad cluster worker: it registers with a
// coordinator (comad serve -cluster), heartbeats, leases jobs, runs
// them on the in-process simulator and streams results and progress
// back. See README §Cluster for topology and failure semantics.
//
//	comanode -coordinator http://coordinator:7700 -slots 2
//
// The process drains on SIGINT/SIGTERM: in-flight simulations finish
// and complete, unstarted leases are returned to the coordinator, then
// it exits 0. If the process dies abruptly instead, the coordinator
// requeues its leases after one lease TTL — that is the cluster's
// fault-tolerance path, not an error.
//
// A worker must be built from the same code revision as its
// coordinator: results are cached under the coordinator's revision, so
// registration is refused (HTTP 409) on a mismatch.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"

	"coma/internal/cluster"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("comanode", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:7700", "coordinator base URL")
		name        = fs.String("name", "", "worker name in coordinator listings (default: hostname)")
		slots       = fs.Int("slots", 1, "simulations to run concurrently")
		revision    = fs.String("revision", "", "code revision reported at registration (default: build info)")
		heartbeat   = fs.Duration("heartbeat", 0, "heartbeat period (0: coordinator's suggestion)")
		quiet       = fs.Bool("quiet", false, "suppress per-job log lines")
		receiptKey  = fs.String("receipt-key", "", "hex HMAC-SHA256 key signing completion receipts (must match the coordinator's)")
		noReceipts  = fs.Bool("no-receipts", false, "skip receipt emission and trace recording (refused by a coordinator that requires signed receipts)")
	)
	fs.Parse(args)

	key, err := hex.DecodeString(*receiptKey)
	if err != nil {
		log.Printf("comanode: -receipt-key: %v", err)
		return 2
	}

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = fmt.Sprintf("comanode-%d", os.Getpid())
		}
		*name = host
	}
	if *revision == "" {
		*revision = buildRevision()
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("comanode: %v: draining (in-flight jobs finish, backlog returns)", sig)
		cancel()
	}()

	a := cluster.New(cluster.Config{
		Coordinator:    *coordinator,
		Name:           *name,
		Slots:          *slots,
		Revision:       *revision,
		HeartbeatEvery: *heartbeat,
		Logf:           logf,
		ReceiptKey:     key,
		NoReceipts:     *noReceipts,
	})
	log.Printf("comanode: %s joining %s (%d slot(s), revision %s)",
		*name, *coordinator, *slots, short(*revision))
	if err := a.Run(ctx); err != nil {
		log.Printf("comanode: %v", err)
		return 1
	}
	log.Printf("comanode: drained, bye")
	return 0
}

// buildRevision mirrors comad's: the vcs revision stamped into the
// binary ("+dirty" when modified), or "dev" outside a stamped build.
// Coordinator and workers built from the same tree therefore agree.
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// Command comatrace records synthetic workload reference streams to
// compact trace files and inspects them. Traces replayed through
// comasim-style runs drive both protocols with byte-identical references
// — the paper's methodology of comparing two simulators on the same
// traced applications.
//
//	comatrace record -app mp3d -scale 0.001 -procs 16 -out traces/
//	comatrace info traces/mp3d.3.trace
//
// It also summarises observability event logs written by
// comasim -trace-out (JSONL format): per-kind counts, fill sources and
// the fixed-bucket histograms.
//
//	comatrace summarize run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"coma"
	"coma/internal/obs"
	"coma/internal/trace"
	"coma/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  comatrace record -app <name> [-scale f] [-procs n] [-seed s] [-out dir]
  comatrace info <trace-file>...
  comatrace summarize <events.jsonl>...`)
	os.Exit(2)
}

// summarize renders the histogram/summary report of JSONL event logs
// written by comasim -trace-out. It derives the metrics with the same
// code path the live exporter uses, so the two reports agree.
func summarize(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		events, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", path)
		if err := obs.WriteSummary(os.Stdout, events); err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "mp3d", "workload preset")
	scale := fs.Float64("scale", 0.001, "instruction-budget scale")
	procs := fs.Int("procs", 16, "number of processors")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("out", ".", "output directory")
	_ = fs.Parse(args)

	spec, ok := coma.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "comatrace: unknown app %q\n", *appName)
		os.Exit(2)
	}
	if *scale > 0 {
		spec = spec.Scale(*scale)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
		os.Exit(1)
	}
	for p := 0; p < *procs; p++ {
		path := filepath.Join(*out, fmt.Sprintf("%s.%d.trace", spec.Name, p))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		n, err := trace.Record(spec.NewApp(p, *procs, *seed), f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		st, _ := os.Stat(path)
		fmt.Printf("%s: %d references, %d bytes (%.2f bytes/ref)\n",
			path, n, st.Size(), float64(st.Size())/float64(n))
	}
}

func info(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		refs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		var instr, reads, writes, sreads, swrites, barriers int64
		for _, r := range refs {
			switch r.Kind {
			case workload.Instr:
				instr += r.N
			case workload.Read:
				instr++
				reads++
				if r.Shared {
					sreads++
				}
			case workload.Write:
				instr++
				writes++
				if r.Shared {
					swrites++
				}
			case workload.Barrier:
				barriers++
			}
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  records   %d\n", len(refs))
		fmt.Printf("  instr     %d\n", instr)
		fmt.Printf("  reads     %d (%d shared)\n", reads, sreads)
		fmt.Printf("  writes    %d (%d shared)\n", writes, swrites)
		fmt.Printf("  barriers  %d\n", barriers)
	}
}

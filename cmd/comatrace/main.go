// Command comatrace records synthetic workload reference streams to
// compact trace files and inspects them. Traces replayed through
// comasim-style runs drive both protocols with byte-identical references
// — the paper's methodology of comparing two simulators on the same
// traced applications.
//
//	comatrace record -app mp3d -scale 0.001 -procs 16 -out traces/
//	comatrace info traces/mp3d.3.trace
//
// It also analyses observability event logs written by
// comasim -trace-out (JSONL format):
//
//	comatrace summarize run.jsonl     per-kind counts and histograms
//	comatrace critpath run.jsonl      transaction latency decomposition
//	comatrace coverage run.jsonl      protocol-edge coverage vs the ECP table
//	comatrace check run.jsonl         replay + recovery-invariant checker
//	comatrace diff a.jsonl b.jsonl    first divergence of two same-seed traces
//
// And it verifies execution receipts (comasim -receipt-out, or
// GET /v1/jobs/{id}/receipt from a comad daemon) offline:
//
//	comatrace attest run.receipt.json -result run.result.json -trace run.jsonl
//
// exits 0 when every recorded digest, total, and invariant verdict
// recomputes from the artifacts, 1 naming the first divergent field.
//
// Every JSONL argument may be "-" for standard input. Malformed input
// exits non-zero with the offending line number.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"coma"
	"coma/internal/obs"
	"coma/internal/obs/receipt"
	"coma/internal/obs/txnview"
	"coma/internal/trace"
	"coma/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	case "critpath":
		critpath(os.Args[2:])
	case "coverage":
		coverage(os.Args[2:])
	case "check":
		check(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "attest":
		attest(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  comatrace record -app <name> [-scale f] [-procs n] [-seed s] [-out dir]
  comatrace info <trace-file>...
  comatrace summarize <events.jsonl>...
  comatrace critpath [-top n] <events.jsonl>...
  comatrace coverage <events.jsonl>...
  comatrace check <events.jsonl>...
  comatrace diff <a.jsonl> <b.jsonl>
  comatrace attest [-result file] [-trace file] [-key hex] <receipt.json>

  JSONL arguments accept "-" for standard input.`)
	os.Exit(2)
}

// loadEvents reads one JSONL event log ("-" means standard input),
// exiting with the offending line number on malformed input.
func loadEvents(path string) []obs.Event {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", displayName(path), err)
		os.Exit(1)
	}
	return events
}

func displayName(path string) string {
	if path == "-" {
		return "stdin"
	}
	return path
}

// summarize renders the histogram/summary report of JSONL event logs
// written by comasim -trace-out. It derives the metrics with the same
// code path the live exporter uses, so the two reports agree.
func summarize(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	for _, path := range paths {
		events := loadEvents(path)
		if len(events) == 0 {
			// An empty trace is almost always an upstream mistake (wrong
			// file, over-narrow -obs-filter), so fail loudly instead of
			// printing an all-zero report.
			fmt.Fprintf(os.Stderr, "comatrace: %s: trace contains no events (wrong file, or -obs-filter recorded nothing?)\n",
				displayName(path))
			os.Exit(1)
		}
		fmt.Printf("%s:\n", displayName(path))
		if err := obs.WriteSummary(os.Stdout, events); err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
	}
}

// critpath decomposes every traced transaction's latency into queueing,
// network, service and fill components, and lists the slowest ones.
func critpath(args []string) {
	fs := flag.NewFlagSet("critpath", flag.ExitOnError)
	top := fs.Int("top", 10, "number of slowest transactions to list")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	for _, path := range fs.Args() {
		events := loadEvents(path)
		r, err := txnview.CritPath(events, *top)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", displayName(path), err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", displayName(path))
		if err := r.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
	}
}

// coverage diffs the observed transition matrix against the full ECP
// transition table.
func coverage(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	exit := 0
	for _, path := range paths {
		events := loadEvents(path)
		r := txnview.Coverage(events)
		fmt.Printf("%s:\n", displayName(path))
		if err := r.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		if len(r.Unexpected) > 0 {
			exit = 1 // the simulator performed an undefined transition
		}
	}
	os.Exit(exit)
}

// check replays traces against the protocol's recovery invariants and
// exits non-zero on any violation.
func check(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	exit := 0
	for _, path := range paths {
		events := loadEvents(path)
		r := txnview.Check(events)
		fmt.Printf("%s:\n", displayName(path))
		if err := r.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		if !r.OK() {
			exit = 1
		}
	}
	os.Exit(exit)
}

// diff reports the first divergence between two JSONL traces of
// supposedly identical runs (same seed, same config). Traces are
// byte-deterministic, so the comparison is line-by-line on the raw
// text: the first differing line pinpoints where two runs parted ways.
func diff(paths []string) {
	if len(paths) != 2 {
		usage()
	}
	if paths[0] == "-" && paths[1] == "-" {
		fmt.Fprintln(os.Stderr, "comatrace: diff: only one argument may be \"-\"")
		os.Exit(2)
	}
	a, b := loadLines(paths[0]), loadLines(paths[1])
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			fmt.Printf("first divergence at line %d:\n", i+1)
			fmt.Printf("  %s: %s\n", displayName(paths[0]), a[i])
			fmt.Printf("  %s: %s\n", displayName(paths[1]), b[i])
			os.Exit(1)
		}
	}
	if len(a) != len(b) {
		longer, extra := paths[0], len(a)-len(b)
		if len(b) > len(a) {
			longer, extra = paths[1], len(b)-len(a)
		}
		fmt.Printf("traces agree for %d lines; %s has %d extra\n", n, displayName(longer), extra)
		os.Exit(1)
	}
	fmt.Printf("traces identical (%d lines)\n", n)
}

// loadLines reads a file (or stdin) as lines, validating it parses as
// an event log first so diff errors point at malformed input, not at a
// spurious divergence.
func loadLines(path string) []string {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
		os.Exit(1)
	}
	lines := splitLines(string(data))
	return lines
}

// splitLines splits on '\n', dropping a trailing empty line.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// attest verifies an execution receipt against its artifacts: the
// signature (with -key), then every derivable field — result digest,
// cycle/event totals, trace digest, and the full recovery-invariant
// replay. Exit 0 means the receipt is genuine for the supplied
// artifacts; exit 1 names the first field that does not recompute.
func attest(args []string) {
	fs := flag.NewFlagSet("attest", flag.ExitOnError)
	resultPath := fs.String("result", "", "canonical result payload to verify against result_digest")
	tracePath := fs.String("trace", "", "JSONL event trace to verify against trace_digest and the invariant verdict")
	keyHex := fs.String("key", "", "hex HMAC-SHA256 key; when set, the signature must verify")
	// Accept the receipt path before or after the flags:
	// `attest run.receipt.json -trace run.jsonl` reads naturally.
	receiptPath := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") || len(args) > 0 && args[0] == "-" {
		receiptPath, args = args[0], args[1:]
	}
	_ = fs.Parse(args)
	switch {
	case receiptPath == "" && fs.NArg() == 1:
		receiptPath = fs.Arg(0)
	case receiptPath != "" && fs.NArg() == 0:
	default:
		usage()
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: -key: %v\n", err)
		os.Exit(2)
	}
	if *keyHex == "" {
		key = nil // Attest skips signature checks on a nil key
	}

	rcpt, err := receipt.Parse(loadArtifact(receiptPath))
	if err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", displayName(receiptPath), err)
		os.Exit(1)
	}
	var arts receipt.Artifacts
	if *resultPath != "" {
		arts.Result = loadArtifact(*resultPath)
	}
	if *tracePath != "" {
		arts.Trace = loadArtifact(*tracePath)
	}
	if err := rcpt.Attest(arts, key); err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: attest FAILED: %v\n", err)
		os.Exit(1)
	}
	checked := []string{"schema", "canonical form"}
	if key != nil {
		checked = append(checked, "sig")
	}
	if arts.Result != nil {
		checked = append(checked, "result_digest", "sim_cycles", "sim_events")
	}
	if arts.Trace != nil {
		checked = append(checked, "trace_digest", "trace_events", "invariants")
	}
	fmt.Printf("%s: verified (%s)\n", displayName(receiptPath), strings.Join(checked, ", "))
	fmt.Printf("  run       %s\n", rcpt.RunHash)
	fmt.Printf("  producer  %s\n", rcpt.Producer)
	fmt.Printf("  verdict   %s\n", rcpt.VerdictLabel())
	if arts.Result == nil && arts.Trace == nil {
		fmt.Println("  note      no artifacts supplied; only the receipt itself was checked")
	}
}

// loadArtifact reads a whole artifact file ("-" for standard input).
func loadArtifact(path string) []byte {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
		os.Exit(1)
	}
	return data
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "mp3d", "workload preset")
	scale := fs.Float64("scale", 0.001, "instruction-budget scale")
	procs := fs.Int("procs", 16, "number of processors")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("out", ".", "output directory")
	_ = fs.Parse(args)

	spec, ok := coma.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "comatrace: unknown app %q\n", *appName)
		os.Exit(2)
	}
	if *scale > 0 {
		spec = spec.Scale(*scale)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
		os.Exit(1)
	}
	for p := 0; p < *procs; p++ {
		path := filepath.Join(*out, fmt.Sprintf("%s.%d.trace", spec.Name, p))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		n, err := trace.Record(spec.NewApp(p, *procs, *seed), f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		st, _ := os.Stat(path)
		fmt.Printf("%s: %d references, %d bytes (%.2f bytes/ref)\n",
			path, n, st.Size(), float64(st.Size())/float64(n))
	}
}

func info(paths []string) {
	if len(paths) == 0 {
		usage()
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %v\n", err)
			os.Exit(1)
		}
		refs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "comatrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		var instr, reads, writes, sreads, swrites, barriers int64
		for _, r := range refs {
			switch r.Kind {
			case workload.Instr:
				instr += r.N
			case workload.Read:
				instr++
				reads++
				if r.Shared {
					sreads++
				}
			case workload.Write:
				instr++
				writes++
				if r.Shared {
					swrites++
				}
			case workload.Barrier:
				barriers++
			}
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  records   %d\n", len(refs))
		fmt.Printf("  instr     %d\n", instr)
		fmt.Printf("  reads     %d (%d shared)\n", reads, sreads)
		fmt.Printf("  writes    %d (%d shared)\n", writes, swrites)
		fmt.Printf("  barriers  %d\n", barriers)
	}
}

// Command comad serves simulations over HTTP: a job queue with a
// bounded worker pool, a content-addressed result cache keyed by the
// canonical run identity (identical submissions coalesce onto one
// simulation; repeats are served from the store), SSE progress streams,
// and Prometheus metrics. See README §Serving for the API walkthrough.
//
//	comad serve -addr :7700 -workers 4 -cache-dir /var/cache/comad
//	comad loadtest -addr http://localhost:7700 -jobs 500 -hot 0.9
//
// serve drains on SIGINT/SIGTERM: accepted jobs finish (bounded by
// -drain-timeout), new submissions get 503, then the listener closes.
//
// loadtest drives a running daemon with a mixed hot/cold job stream
// (hot: one repeated configuration, served from cache after the first
// run; cold: unique seeds, each a real simulation) and reports
// throughput and latency percentiles per class.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"sort"
	"sync"
	"syscall"
	"time"

	"coma/internal/cluster"
	"coma/internal/config"
	"coma/internal/server"
	"coma/internal/server/client"
	"coma/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		os.Exit(serve(os.Args[2:]))
	case "loadtest":
		os.Exit(loadtest(os.Args[2:]))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: comad serve [flags] | comad loadtest [flags]")
	fmt.Fprintln(os.Stderr, "run 'comad serve -h' or 'comad loadtest -h' for flags")
}

func serve(args []string) int {
	fs := flag.NewFlagSet("comad serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":7700", "listen address")
		workers      = fs.Int("workers", 0, "max simulations in flight (0: GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "max jobs waiting for a worker before 429")
		cacheDir     = fs.String("cache-dir", "", "persist results to this directory (empty: memory only)")
		revision     = fs.String("revision", "", "code revision for cache keys (default: build info)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Minute, "max time to finish accepted jobs on shutdown")
		quiet        = fs.Bool("quiet", false, "suppress per-job log lines")
		clusterMode  = fs.Bool("cluster", false, "coordinator mode: dispatch jobs to comanode workers instead of simulating in-process")
		leaseTTL     = fs.Duration("lease-ttl", 0, "cluster: worker liveness window before leases requeue (0: 15s)")
		heartbeat    = fs.Duration("heartbeat", 0, "cluster: heartbeat period advertised to workers (0: lease-ttl/3)")
		maxRequeues  = fs.Int("max-requeues", 0, "cluster: lease expiries a job survives before dead-letter (0: 3)")
		receiptKey   = fs.String("receipt-key", "", "hex HMAC-SHA256 key: sign emitted receipts, and require signed receipts on cluster completions")
		noReceipts   = fs.Bool("no-receipts", false, "skip receipt emission and trace recording for local runs")
	)
	fs.Parse(args)

	if *revision == "" {
		*revision = buildRevision()
	}
	key, err := hex.DecodeString(*receiptKey)
	if err != nil {
		log.Printf("comad: -receipt-key: %v", err)
		return 2
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	s, err := server.New(server.Options{
		Workers: *workers, QueueDepth: *queue,
		Revision: *revision, CacheDir: *cacheDir,
		Logf:    logf,
		Cluster: *clusterMode, LeaseTTL: *leaseTTL,
		HeartbeatEvery: *heartbeat, MaxRequeues: *maxRequeues,
		ReceiptKey: key, NoReceipts: *noReceipts,
	})
	if err != nil {
		log.Printf("comad: %v", err)
		return 1
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if *clusterMode {
		log.Printf("comad: coordinating on %s (cluster mode, queue %d, revision %s) — waiting for comanode workers",
			*addr, *queue, short(*revision))
	} else {
		log.Printf("comad: serving on %s (%d workers, queue %d, revision %s)",
			*addr, s.Workers(), *queue, short(*revision))
	}

	select {
	case err := <-errc:
		log.Printf("comad: %v", err)
		return 1
	case sig := <-sigc:
		log.Printf("comad: %v: draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		log.Printf("comad: drain: %v", err)
		hs.Close()
		return 1
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	hs.Shutdown(shutdownCtx)
	log.Printf("comad: drained, bye")
	return 0
}

// buildRevision pins cache keys to the code that computes the results:
// the vcs revision stamped into the binary ("+dirty" when the worktree
// was modified), or "dev" outside a stamped build.
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

func loadtest(args []string) int {
	fs := flag.NewFlagSet("comad loadtest", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "http://localhost:7700", "daemon base URL")
		jobs         = fs.Int("jobs", 500, "total requests to issue")
		concurrency  = fs.Int("concurrency", 16, "concurrent clients")
		hot          = fs.Float64("hot", 0.9, "fraction of requests repeating one cached configuration")
		app          = fs.String("app", "mp3d", "workload preset")
		nodes        = fs.Int("nodes", 4, "machine size")
		instructions = fs.Int64("instructions", 20_000, "per-processor instruction budget (cold jobs are real runs)")
		hz           = fs.Float64("hz", 100, "recovery points per second")
		clusterMode  = fs.Bool("cluster", false, "cluster scaling benchmark: in-process coordinator + worker fleets of 1, 2 and 4 (ignores -addr)")
		clusterJobs  = fs.Int("cluster-jobs", 48, "cluster: cold jobs dispatched per fleet size")
		serviceMS    = fs.Int("service-ms", 200, "cluster: surrogate per-job service time in ms (models a long simulation without needing one CPU per worker)")
	)
	fs.Parse(args)
	if *jobs < 1 || *concurrency < 1 || *hot < 0 || *hot > 1 {
		fmt.Fprintln(os.Stderr, "comad loadtest: bad flag values")
		return 2
	}
	if *clusterMode {
		return clusterLoadtest(*clusterJobs, *serviceMS, *app, *nodes, *instructions, *hz)
	}

	c := client.New(*addr)
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "comad loadtest: daemon not reachable: %v\n", err)
		return 1
	}
	mkSpec := func(seed uint64) server.JobSpec {
		return server.JobSpec{
			App: *app, Nodes: *nodes, Protocol: "ecp",
			Instructions: *instructions, CheckpointHz: *hz, Seed: seed,
		}
	}

	// Warm the hot configuration so the hot stream measures pure cache
	// service, which is the daemon's steady state for repeated sweeps.
	warmStart := time.Now()
	if _, _, err := c.Run(ctx, mkSpec(1)); err != nil {
		fmt.Fprintf(os.Stderr, "comad loadtest: warmup: %v\n", err)
		return 1
	}
	fmt.Printf("warmup run: %.1f ms\n", time.Since(warmStart).Seconds()*1e3)

	// The request mix is decided per index so any -concurrency gives the
	// same hot/cold split; cold seeds start at 2 (1 is the hot seed).
	var (
		mu           sync.Mutex
		hotLat       []float64
		coldLat      []float64
		failures     int
		next         int
		nextMu       sync.Mutex
		coldBoundary = int(*hot * 100)
	)
	take := func() (int, bool) {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= *jobs {
			return 0, false
		}
		next++
		return next - 1, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				isHot := i%100 < coldBoundary
				seed := uint64(1)
				if !isHot {
					seed = uint64(2 + i)
				}
				t0 := time.Now()
				_, _, err := c.Run(ctx, mkSpec(seed))
				lat := time.Since(t0).Seconds() * 1e3
				mu.Lock()
				if err != nil {
					failures++
				} else if isHot {
					hotLat = append(hotLat, lat)
				} else {
					coldLat = append(coldLat, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	fmt.Printf("%d jobs in %.2f s (%.1f jobs/s overall), %d failures\n",
		*jobs, wall, float64(*jobs)/wall, failures)
	report := func(name string, lat []float64) {
		if len(lat) == 0 {
			return
		}
		sort.Float64s(lat)
		fmt.Printf("  %-18s %6d jobs  p50 %8.2f ms  p90 %8.2f ms  p99 %8.2f ms  max %8.2f ms\n",
			name, len(lat), pctl(lat, 50), pctl(lat, 90), pctl(lat, 99), lat[len(lat)-1])
	}
	report("hot (cached)", hotLat)
	report("cold (simulated)", coldLat)
	if h, err := c.Health(ctx); err == nil {
		fmt.Printf("  daemon: %d workers, revision %s\n", h.Workers, short(h.Revision))
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// clusterLoadtest measures dispatch-path scaling: for worker fleets of
// 1, 2 and 4 it boots a fresh in-process coordinator plus that many
// in-process agents and times how fast a batch of cold jobs drains.
//
// The workers run a surrogate runner — sleep for -service-ms, then a
// tiny real simulation — so each job's wall time models a long
// simulation while its CPU cost stays a small fraction of it. That is
// deliberate: the benchmark demonstrates that the coordinator's
// dispatch path (leases, heartbeats, completion) scales with fleet
// size, and it must do so honestly on a single-CPU box where four
// concurrent real simulations could never run 4x faster.
func clusterLoadtest(jobs, serviceMS int, app string, nodes int, instructions int64, hz float64) int {
	fmt.Printf("cluster scaling: %d cold jobs per fleet, %d ms surrogate service time per job\n", jobs, serviceMS)
	var base float64
	for _, workers := range []int{1, 2, 4} {
		rate, err := runFleet(workers, jobs, serviceMS, app, nodes, instructions, hz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comad loadtest: fleet of %d: %v\n", workers, err)
			return 1
		}
		if base == 0 {
			base = rate
		}
		fmt.Printf("  %d worker(s): %6.2f jobs/s  (%.2fx)\n", workers, rate, rate/base)
	}
	return 0
}

func runFleet(workers, jobs, serviceMS int, app string, nodes int, instructions int64, hz float64) (float64, error) {
	s, err := server.New(server.Options{
		Cluster:    true,
		Revision:   "loadtest",
		QueueDepth: jobs + 16,
		LeaseTTL:   10 * time.Second,
	})
	if err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agents sync.WaitGroup
	for i := 0; i < workers; i++ {
		a := cluster.New(cluster.Config{
			Coordinator: baseURL,
			Name:        fmt.Sprintf("lt-%d", i),
			Revision:    "loadtest",
			Runner: func(id config.RunIdentity, opts server.RunOptions) (*stats.Run, error) {
				time.Sleep(time.Duration(serviceMS) * time.Millisecond)
				return server.SimRunner(id, opts)
			},
		})
		agents.Add(1)
		go func() {
			defer agents.Done()
			a.Run(ctx)
		}()
	}

	c := client.New(baseURL)
	for deadline := time.Now().Add(10 * time.Second); ; {
		h, err := c.Health(context.Background())
		if err == nil && h.ClusterWorkers == workers {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("only %d of %d workers registered", h.ClusterWorkers, workers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var (
		next   int
		nextMu sync.Mutex
		fail   error
		failMu sync.Mutex
	)
	take := func() (int, bool) {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= jobs {
			return 0, false
		}
		next++
		return next - 1, true
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				_, _, err := c.Run(context.Background(), server.JobSpec{
					App: app, Nodes: nodes, Protocol: "ecp",
					Instructions: instructions, CheckpointHz: hz,
					Seed: uint64(1 + i), // unique: every job is a real dispatch
				})
				if err != nil {
					failMu.Lock()
					fail = err
					failMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	cancel()
	agents.Wait()
	if fail != nil {
		return 0, fail
	}
	return float64(jobs) / wall, nil
}

// pctl returns the p-th percentile of a sorted sample, by rank.
func pctl(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// Command comamodel checks the Extended Coherence Protocol's
// implementation against its specification from three independent
// directions and diffs them pairwise:
//
//	comamodel extract     static code-derived transition tables (go/ast
//	                      dataflow over the mesh and bus engines) vs the
//	                      spec table proto.ECPTransitions
//	comamodel check       exhaustive BFS model checking of the abstract
//	                      ECP configuration: safety invariants on every
//	                      reachable state, reachable edges vs the spec
//	comamodel diff        the three-way gate: spec vs code vs model, plus
//	                      optional runtime coverage from comasim
//	                      -trace-out JSONL logs
//
// Every subcommand exits 0 when the directions agree, 1 on any drift or
// invariant violation, and 2 on usage errors — so CI can use it as a
// conformance gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coma/internal/model"
	"coma/internal/obs"
	"coma/internal/obs/txnview"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "extract":
		return extract(args[1:], stdout, stderr)
	case "check":
		return check(args[1:], stdout, stderr)
	case "diff":
		return diff(args[1:], stdout, stderr)
	default:
		return usage(stderr)
	}
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage:
  comamodel extract [-C dir] [-engine mesh|bus|all] [-v]
  comamodel check [-items n] [-nodes n] [-max-states n] [-v]
  comamodel diff [-C dir] [-items n] [-nodes n] [-require-full-coverage] [events.jsonl ...]

exit status: 0 conformant, 1 drift or invariant violation, 2 usage.`)
	return 2
}

// engines resolves the -engine flag value.
func engines(sel string, stderr io.Writer) ([]string, bool) {
	switch sel {
	case "all":
		return []string{model.EngineMesh, model.EngineBus}, true
	case model.EngineMesh, model.EngineBus:
		return []string{sel}, true
	}
	fmt.Fprintf(stderr, "comamodel: unknown engine %q (mesh|bus|all)\n", sel)
	return nil, false
}

// extractTables runs the static pass for the selected engines plus the
// attraction-memory helper audit, reporting drift vs the spec table.
// Returns the per-engine tables and whether everything is conformant.
func extractTables(dir string, sel []string, verbose bool, stdout, stderr io.Writer) (map[string]*model.Table, bool) {
	ok := true
	spec := model.SpecTable()
	tables := make(map[string]*model.Table)

	if bad, err := model.AuditAM(dir); err != nil {
		fmt.Fprintf(stderr, "comamodel: am audit: %v\n", err)
		ok = false
	} else if len(bad) > 0 {
		ok = false
		fmt.Fprintf(stdout, "am audit: %d unaudited slot-state writes\n", len(bad))
		for _, v := range bad {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
	} else {
		fmt.Fprintln(stdout, "am audit: all slot-state writes flow through the audited helpers")
	}

	for _, eng := range sel {
		res, err := model.Extract(dir, eng)
		if err != nil {
			fmt.Fprintf(stderr, "comamodel: extract %s: %v\n", eng, err)
			ok = false
			continue
		}
		tables[eng] = res.Table
		annotated := 0
		for _, s := range res.Sites {
			if s.Annotated {
				annotated++
			}
		}
		fmt.Fprintf(stdout, "%s: %d mutation sites (%d statically resolved, %d annotated), %d edges\n",
			eng, len(res.Sites), len(res.Sites)-annotated, annotated, res.Table.Len())
		for _, e := range res.Errors {
			ok = false
			fmt.Fprintf(stdout, "  unresolved: %s\n", e)
		}
		if verbose {
			res.Table.Write(stdout)
		}
		d := model.Diff(spec, res.Table)
		if d.Clean() {
			fmt.Fprintf(stdout, "  spec vs %s: in agreement (%d edges)\n", eng, spec.Len())
		} else {
			ok = false
			fmt.Fprintf(stdout, "  spec vs %s: DRIFT\n", eng)
			d.Write(stdout, spec, res.Table)
		}
	}
	return tables, ok
}

func extract(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module directory to analyse")
	eng := fs.String("engine", "all", "engine to extract: mesh, bus or all")
	verbose := fs.Bool("v", false, "print the full code-derived tables")
	if fs.Parse(args) != nil {
		return 2
	}
	sel, ok := engines(*eng, stderr)
	if !ok {
		return 2
	}
	if _, ok := extractTables(*dir, sel, *verbose, stdout, stderr); !ok {
		return 1
	}
	return 0
}

// runCheck explores the abstract configuration and reports the result;
// conformance additionally requires edge-exact agreement with the spec
// when the configuration is large enough to reach it (>= 4 nodes).
func runCheck(cfg model.CheckConfig, verbose bool, stdout, stderr io.Writer) (*model.CheckResult, bool) {
	res, err := model.Check(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "comamodel: check: %v\n", err)
		return nil, false
	}
	ok := true
	if verbose {
		res.Write(stdout)
	} else {
		fmt.Fprintf(stdout, "model: %d items x %d nodes: %d states, %d transitions, %d/%d edges reachable\n",
			cfg.Items, cfg.Nodes, res.States, res.Transitions, res.Edges.Len(), model.SpecTable().Len())
		if res.CreateStuck > 0 {
			fmt.Fprintf(stdout, "  create-phase dead ends: %d (the ECP needs >= 4 nodes)\n", res.CreateStuck)
		}
	}
	if len(res.Violations) > 0 {
		ok = false
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  VIOLATION: %s\n    state: %s\n", v.Invariant, v.State)
			for _, step := range v.Trace {
				fmt.Fprintf(stdout, "    via: %s\n", step)
			}
		}
	}
	if cfg.Nodes >= 4 {
		d := model.Diff(model.SpecTable(), res.Edges)
		if d.Clean() {
			fmt.Fprintf(stdout, "  spec vs model: in agreement (%d edges)\n", res.Edges.Len())
		} else {
			ok = false
			fmt.Fprintf(stdout, "  spec vs model: DRIFT\n")
			d.Write(stdout, model.SpecTable(), res.Edges)
		}
	}
	return res, ok
}

func check(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	items := fs.Int("items", 1, "abstract items (every edge is a per-item property)")
	nodes := fs.Int("nodes", 4, "abstract nodes (>= 4 reaches the full edge set)")
	maxStates := fs.Int("max-states", 0, "abort beyond this many reachable states (0 = default)")
	verbose := fs.Bool("v", false, "print the reachable edge table and violation traces")
	if fs.Parse(args) != nil {
		return 2
	}
	cfg := model.CheckConfig{Items: *items, Nodes: *nodes, MaxStates: *maxStates}
	if _, ok := runCheck(cfg, *verbose, stdout, stderr); !ok {
		return 1
	}
	return 0
}

// runtimeTable unions the exercised protocol edges of comasim JSONL
// event logs into a Table, via the same replay the trace checker uses.
func runtimeTable(paths []string, stdout, stderr io.Writer) (*model.Table, bool) {
	t := model.NewTable("runtime")
	ok := true
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "comamodel: %v\n", err)
			return nil, false
		}
		events, err := obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "comamodel: %s: %v\n", path, err)
			return nil, false
		}
		rep := txnview.Coverage(events)
		for _, e := range rep.Exercised {
			t.Add(e.From, e.To, path)
		}
		for _, e := range rep.Unexpected {
			ok = false
			fmt.Fprintf(stdout, "  %s: UNEXPECTED runtime edge %v -> %v (%d times)\n",
				path, e.From, e.To, e.Count)
			t.Add(e.From, e.To, path)
		}
	}
	return t, ok
}

func diff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module directory to analyse")
	items := fs.Int("items", 1, "abstract items for the model leg")
	nodes := fs.Int("nodes", 4, "abstract nodes for the model leg")
	requireFull := fs.Bool("require-full-coverage", false,
		"fail unless the runtime traces exercise every spec edge")
	if fs.Parse(args) != nil {
		return 2
	}
	ok := true
	spec := model.SpecTable()
	fmt.Fprintf(stdout, "spec: %d edges (proto.ECPTransitions)\n", spec.Len())

	// Leg 1: spec vs code (both engines, plus the helper audit).
	if _, legOK := extractTables(*dir, []string{model.EngineMesh, model.EngineBus}, false, stdout, stderr); !legOK {
		ok = false
	}

	// Leg 2: spec vs the model checker's reachable edges.
	if _, legOK := runCheck(model.CheckConfig{Items: *items, Nodes: *nodes}, false, stdout, stderr); !legOK {
		ok = false
	}

	// Leg 3 (optional): spec vs runtime coverage.
	if paths := fs.Args(); len(paths) > 0 {
		rt, legOK := runtimeTable(paths, stdout, stderr)
		if rt == nil {
			return 2
		}
		if !legOK {
			ok = false
		}
		d := model.Diff(spec, rt)
		fmt.Fprintf(stdout, "runtime: %d/%d edges exercised across %d trace(s)\n",
			rt.Len(), spec.Len(), len(paths))
		if len(d.OnlyB) > 0 {
			ok = false
			fmt.Fprintf(stdout, "  spec vs runtime: DRIFT\n")
		}
		for _, e := range d.OnlyB {
			fmt.Fprintf(stdout, "  runtime-only edge: %v\n", e)
		}
		for _, e := range d.OnlyA {
			fmt.Fprintf(stdout, "  unexercised: %-13v -> %v\n", e.From, e.To)
		}
		if *requireFull && len(d.OnlyA) > 0 {
			ok = false
			fmt.Fprintf(stdout, "  full coverage required: %d spec edges unexercised\n", len(d.OnlyA))
		}
	}

	if !ok {
		fmt.Fprintln(stdout, "comamodel: DRIFT detected")
		return 1
	}
	fmt.Fprintln(stdout, "comamodel: spec, code and model agree")
	return 0
}

package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up to the go.mod of this module.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// copyModule clones the module's Go sources (no tests, no VCS) into a
// temp dir so mutation tests can edit them freely.
func copyModule(t *testing.T) string {
	t.Helper()
	root := repoRoot(t)
	dst := t.TempDir()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".git" || info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// mutate rewrites one source file, requiring the pattern to be present.
func mutate(t *testing.T, dir, file, old, new string) {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s no longer contains %q; update the mutation test", file, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runDiff(t *testing.T, dir string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	code := run([]string{"diff", "-C", dir}, &out, &out)
	return code, out.String()
}

// runDiffRebuilt builds and runs the copy's own comamodel, so the spec
// table compiled into the tool comes from the (possibly mutated) copy —
// exactly what the CI gate does.
func runDiffRebuilt(t *testing.T, dir string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", "run", "./cmd/comamodel", "diff", "-C", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestDiffCleanOnPristine is the baseline for the mutation tests: an
// unmodified tree is conformant.
func TestDiffCleanOnPristine(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and analyses the whole module")
	}
	dir := copyModule(t)
	code, out := runDiff(t, dir)
	if code != 0 {
		t.Fatalf("pristine tree drifts (exit %d):\n%s", code, out)
	}
}

// TestDiffDetectsSpecEdgeRemoval deletes one edge from
// proto.ECPTransitions: extraction (the code still implements it) and
// the model checker (it is still reachable) must both flag the drift.
func TestDiffDetectsSpecEdgeRemoval(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and analyses the whole module")
	}
	dir := copyModule(t)
	mutate(t, dir, filepath.Join("internal", "proto", "proto.go"),
		"{PreCommit1, Invalid, \"recovery scan aborts an uncommitted point\"},\n", "")
	code, out := runDiffRebuilt(t, dir)
	if code == 0 {
		t.Fatalf("removing a spec edge went undetected:\n%s", out)
	}
	if !strings.Contains(out, "DRIFT") {
		t.Errorf("expected a DRIFT diagnostic, got:\n%s", out)
	}
	if !strings.Contains(out, "PreCommit1") {
		t.Errorf("diagnostic does not name the dropped edge:\n%s", out)
	}
}

// TestDiffDetectsMissingEngineSite comments out the mesh create-phase
// transition of Exclusive owners: the code-derived table then lacks
// Exclusive -> PreCommit1 and extraction must flag it.
func TestDiffDetectsMissingEngineSite(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and analyses the whole module")
	}
	dir := copyModule(t)
	mutate(t, dir, filepath.Join("internal", "coherence", "checkpoint.go"),
		"case proto.Exclusive:\n\t\t\te.ams[n].SetState(item, proto.PreCommit1)\n",
		"case proto.Exclusive:\n")
	code, out := runDiff(t, dir)
	if code == 0 {
		t.Fatalf("removing an engine transition site went undetected:\n%s", out)
	}
	if !strings.Contains(out, "only in spec") {
		t.Errorf("expected the missing edge to be reported as spec-only, got:\n%s", out)
	}
}

// TestUsage pins the exit codes of bad invocations.
func TestUsage(t *testing.T) {
	if code := run(nil, io.Discard, io.Discard); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"extract", "-engine", "ring"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("unknown engine: exit %d, want 2", code)
	}
}

// TestCheckSubcommand smoke-tests the model-checking entry point.
func TestCheckSubcommand(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"check", "-items", "1", "-nodes", "4"}, &out, &out); code != 0 {
		t.Fatalf("check failed (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "35/35 edges reachable") {
		t.Errorf("expected full reachability, got:\n%s", out.String())
	}
}

// Command comalint runs the repository's custom static analyzers
// (multichecker style) over Go package patterns:
//
//	go run ./cmd/comalint ./...
//
// Analyzers (see internal/lint/analyzers and README.md):
//
//	exhaustivestate  switches over internal/proto enum types must cover
//	                 every constant or fail loudly in default
//	determinism      no wall-clock time, no global math/rand, no
//	                 order-sensitive map iteration in the simulator core
//	simblocking      simulated processes block only via internal/sim
//	closuresched     hot-path packages schedule typed events, not
//	                 per-event Engine.At/After closure literals
//	obswallclock     Observer implementations never read the wall clock
//	statetransition  am.Slot state changes go through the AM setters (or
//	                 ForEachAllocated scan callbacks) so the state hook fires
//
// Flags select a subset (-run exhaustivestate,determinism). Exit status
// is 1 if any diagnostic is reported, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"coma/internal/lint/analysis"
	"coma/internal/lint/analyzers"
	"coma/internal/lint/loader"
)

// checker pairs an analyzer with the package scope it applies to.
type checker struct {
	a     *analysis.Analyzer
	scope func(pkgPath string) bool
}

func everywhere(string) bool { return true }

var checkers = []checker{
	{analyzers.ExhaustiveState, everywhere},
	{analyzers.Determinism, analyzers.DeterminismScope},
	{analyzers.SimBlocking, analyzers.SimBlockingScope},
	{analyzers.ClosureSched, analyzers.ClosureSchedScope},
	{analyzers.ObsWallClock, everywhere},
	{analyzers.StateTransition, analyzers.StateTransitionScope},
}

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: comalint [-run names] [packages]\n\nanalyzers:\n")
		for _, c := range checkers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", c.a.Name, c.a.Doc)
		}
	}
	flag.Parse()

	selected := checkers
	if *run != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*run, ",") {
			names[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, c := range checkers {
			if names[c.a.Name] {
				selected = append(selected, c)
				delete(names, c.a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "comalint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleDir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l := loader.New(moduleDir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	type finding struct {
		pos  string
		line int
		msg  string
	}
	var findings []finding
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue // cgo fallback: no syntax to analyze
		}
		for _, c := range selected {
			if !c.scope(pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  c.a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := c.a.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				rel, err := filepath.Rel(moduleDir, p.Filename)
				if err != nil {
					rel = p.Filename
				}
				findings = append(findings, finding{
					pos:  fmt.Sprintf("%s:%d:%d", rel, p.Line, p.Column),
					line: p.Line,
					msg:  fmt.Sprintf("%s: %s", name, d.Message),
				})
			}
			if _, err := c.a.Run(pass); err != nil {
				fatal(fmt.Errorf("%s on %s: %v", c.a.Name, pkg.PkgPath, err))
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].msg < findings[j].msg
	})
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "comalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "comalint:", err)
	os.Exit(2)
}

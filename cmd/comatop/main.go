// Command comatop is a terminal live view of a simulation running on a
// comad daemon: it follows the job's sampled-snapshot stream (the same
// safe-point samples the /inspect API serves) and redraws a summary of
// sim time, event rate, queue depths and per-node ECP state histograms.
//
//	comatop                          # most recently submitted running job
//	comatop -job <id>                # a specific job
//	comatop -addr http://host:7700   # a non-default daemon
//	comatop -once                    # print one snapshot and exit
//
// comatop is a pure observer: it only reads published samples, so
// attaching or detaching it never perturbs the simulation (see DESIGN.md
// §11).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coma/internal/inspect"
	"coma/internal/proto"
	"coma/internal/server"
	"coma/internal/server/client"
)

func main() {
	var (
		addr  = flag.String("addr", "http://localhost:7700", "comad daemon base URL")
		jobID = flag.String("job", "", "job to watch (default: the most recently submitted running job)")
		once  = flag.Bool("once", false, "print a single snapshot and exit (no screen redraws)")
	)
	flag.Parse()
	if err := run(*addr, *jobID, *once); err != nil {
		fmt.Fprintf(os.Stderr, "comatop: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, jobID string, once bool) error {
	c := client.New(addr)
	ctx := context.Background()
	if jobID == "" {
		var err error
		if jobID, err = pickJob(ctx, c); err != nil {
			return err
		}
	}

	var prev *inspect.Sample
	var prevAt time.Time
	return c.InspectStream(ctx, jobID, func(s inspect.Sample) bool {
		now := time.Now()
		var rate float64
		if prev != nil && now.After(prevAt) {
			rate = float64(s.Summary.Events-prev.Summary.Events) / now.Sub(prevAt).Seconds()
		}
		if !once {
			fmt.Print("\033[H\033[2J") // home + clear
		}
		render(os.Stdout, jobID, s, rate)
		prev, prevAt = &s, now
		if once {
			return false
		}
		return !s.Summary.Finished
	})
}

// pickJob returns the most recently submitted running job.
func pickJob(ctx context.Context, c *client.Client) (string, error) {
	list, err := c.Jobs(ctx)
	if err != nil {
		return "", err
	}
	for i := len(list.Jobs) - 1; i >= 0; i-- {
		if list.Jobs[i].State == server.StateRunning {
			return list.Jobs[i].ID, nil
		}
	}
	return "", fmt.Errorf("no running job on the daemon (submit one, or pass -job)")
}

func render(out *os.File, jobID string, s inspect.Sample, rate float64) {
	short := jobID
	if len(short) > 12 {
		short = short[:12]
	}
	state := "running"
	if s.Summary.Finished {
		state = "finished"
	}
	fmt.Fprintf(out, "job %s  sample %d  %s\n", short, s.Seq, state)
	fmt.Fprintf(out, "cycle %d  events %d", s.Summary.SimCycles, s.Summary.Events)
	if rate > 0 {
		fmt.Fprintf(out, "  (%.0f events/s)", rate)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "pending %d wheel / %d overflow / %d now-queue\n",
		s.Summary.WheelEvents, s.Summary.OverflowEvents, s.Summary.NowQueueEvents)
	ph := s.Summary.Phase
	kind := "checkpoint"
	if ph.Recovery {
		kind = "recovery"
	}
	fmt.Fprintf(out, "phase round %d (%s)  established %d  aborted %d  rollbacks %d\n",
		ph.Round, kind, ph.Established, ph.Aborted, ph.Recoveries)
	fmt.Fprintf(out, "queues  request %d in flight (%d busy links)  reply %d in flight (%d busy links)\n",
		s.Queues.Request.Inflight, s.Queues.Request.BusyLinks,
		s.Queues.Reply.Inflight, s.Queues.Reply.BusyLinks)
	fmt.Fprintf(out, "nodes %d/%d live\n", s.Summary.LiveNodes, s.Summary.Nodes)
	for _, n := range s.Nodes {
		live := "live"
		if !n.Alive {
			live = "DOWN"
		}
		var parts []string
		n.States.NonZero(func(st proto.State, c int64) {
			if st != proto.Invalid {
				parts = append(parts, fmt.Sprintf("%s=%d", st, c))
			}
		})
		fmt.Fprintf(out, "  node %2d %-4s %5d frames  %s\n",
			n.Node, live, n.Frames, strings.Join(parts, " "))
	}
}

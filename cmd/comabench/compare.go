package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchRecord is the committed BENCH_*.json wrapper: one or more named
// campaign records plus provenance (schema coma-bench-record/v1). The
// compare subcommand accepts either this wrapper or a raw campaign
// record as written by -json.
type benchRecord struct {
	Schema    string                     `json:"schema"`
	Campaigns map[string]json.RawMessage `json:"campaigns"`
}

// loadCampaign reads path as either a raw coma-bench-campaign record or
// a coma-bench-record wrapper. For a wrapper, campaign selects the named
// entry; empty means the preferred serial quick campaign if present,
// else the first name in sorted order.
func loadCampaign(path, campaign string) (perfRecord, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return perfRecord{}, "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return perfRecord{}, "", fmt.Errorf("%s: %v", path, err)
	}
	if probe.Schema == "" || probe.Schema[:len("coma-bench-record")] != "coma-bench-record" {
		var p perfRecord
		if err := json.Unmarshal(data, &p); err != nil {
			return perfRecord{}, "", fmt.Errorf("%s: %v", path, err)
		}
		return p, "", nil
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return perfRecord{}, "", fmt.Errorf("%s: %v", path, err)
	}
	name := campaign
	if name == "" {
		if _, ok := rec.Campaigns["quick_serial_workers1"]; ok {
			name = "quick_serial_workers1"
		} else {
			names := make([]string, 0, len(rec.Campaigns))
			for n := range rec.Campaigns {
				names = append(names, n)
			}
			sort.Strings(names)
			if len(names) == 0 {
				return perfRecord{}, "", fmt.Errorf("%s: no campaigns in record", path)
			}
			name = names[0]
		}
	}
	raw, ok := rec.Campaigns[name]
	if !ok {
		return perfRecord{}, "", fmt.Errorf("%s: no campaign %q in record", path, name)
	}
	var p perfRecord
	if err := json.Unmarshal(raw, &p); err != nil {
		return perfRecord{}, "", fmt.Errorf("%s: campaign %q: %v", path, name, err)
	}
	return p, name, nil
}

// runCompare diffs two campaign perf records: per-table wall-time deltas
// and the totals (wall, events/s). Exit status 1 if new is slower than
// old by more than threshold percent on campaign events/s (threshold < 0
// means report-only), 2 on usage or read errors.
func runCompare(oldPath, newPath, campaign string, threshold float64) int {
	oldRec, oldName, err := loadCampaign(oldPath, campaign)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
		return 2
	}
	newRec, newName, err := loadCampaign(newPath, campaign)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
		return 2
	}
	label := func(path, name string) string {
		if name == "" {
			return path
		}
		return path + "#" + name
	}
	fmt.Printf("comabench compare\n  old: %s (%s, workers=%d)\n  new: %s (%s, workers=%d)\n",
		label(oldPath, oldName), oldRec.Params, oldRec.Workers,
		label(newPath, newName), newRec.Params, newRec.Workers)
	if oldRec.Params != newRec.Params || oldRec.Workers != newRec.Workers {
		fmt.Println("  warning: campaign params/workers differ; deltas are not like-for-like")
	}

	oldTables := map[string]tablePerf{}
	for _, t := range oldRec.Tables {
		oldTables[t.ID] = t
	}
	fmt.Printf("\n  %-10s %12s %12s %9s\n", "table", "old wall ms", "new wall ms", "delta")
	for _, nt := range newRec.Tables {
		ot, ok := oldTables[nt.ID]
		if !ok {
			fmt.Printf("  %-10s %12s %12.1f %9s\n", nt.ID, "-", nt.WallMS, "new")
			continue
		}
		fmt.Printf("  %-10s %12.1f %12.1f %+8.1f%%\n", nt.ID, ot.WallMS, nt.WallMS, pctDelta(ot.WallMS, nt.WallMS))
		delete(oldTables, nt.ID)
	}
	stale := make([]string, 0, len(oldTables))
	for id := range oldTables {
		stale = append(stale, id)
	}
	sort.Strings(stale)
	for _, id := range stale {
		fmt.Printf("  %-10s %12.1f %12s %9s\n", id, oldTables[id].WallMS, "-", "gone")
	}

	fmt.Printf("\n  %-14s %14s %14s %9s\n", "totals", "old", "new", "delta")
	fmt.Printf("  %-14s %14.1f %14.1f %+8.1f%%\n", "wall ms",
		oldRec.Totals.WallMS, newRec.Totals.WallMS, pctDelta(oldRec.Totals.WallMS, newRec.Totals.WallMS))
	fmt.Printf("  %-14s %14d %14d\n", "sim cycles", oldRec.Totals.SimCycles, newRec.Totals.SimCycles)
	fmt.Printf("  %-14s %14d %14d\n", "events", oldRec.Totals.Events, newRec.Totals.Events)
	epsDelta := pctDelta(oldRec.Totals.EventsPerSec, newRec.Totals.EventsPerSec)
	fmt.Printf("  %-14s %14.0f %14.0f %+8.1f%%\n", "events/sec",
		oldRec.Totals.EventsPerSec, newRec.Totals.EventsPerSec, epsDelta)

	if threshold >= 0 && epsDelta < -threshold {
		fmt.Fprintf(os.Stderr, "comabench: events/sec regressed %.1f%% (threshold %.1f%%)\n",
			-epsDelta, threshold)
		return 1
	}
	return 0
}

// pctDelta returns the percent change from old to new (positive = new is
// larger). A zero old value yields 0 to keep degenerate records printable.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

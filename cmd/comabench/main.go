// Command comabench regenerates the paper's evaluation: every table and
// figure (Tables 1–3, Figures 3–11), printed as aligned text and
// optionally written as CSV files for plotting.
//
//	comabench                      # quick campaign (~minutes)
//	comabench -params full         # paper-scale budgets and 5-400/s sweep
//	comabench -only fig3,fig6      # a subset
//	comabench -csv out/            # also write out/<id>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"coma"
)

func main() {
	var (
		params  = flag.String("params", "quick", "campaign scale: bench, quick or full")
		only    = flag.String("only", "", "comma-separated subset: table1..table3, fig3..fig11")
		csvDir  = flag.String("csv", "", "directory to write <id>.csv files into")
		nodes   = flag.Int("nodes", 0, "override machine size for the frequency study")
		seed    = flag.Uint64("seed", 0, "override campaign seed")
		verbose = flag.Bool("v", false, "print one line per simulation run")
	)
	flag.Parse()

	var p coma.ExperimentParams
	switch *params {
	case "bench":
		p = coma.BenchExperiments()
	case "quick":
		p = coma.QuickExperiments()
	case "full":
		p = coma.FullExperiments()
	default:
		fmt.Fprintf(os.Stderr, "comabench: unknown params %q\n", *params)
		os.Exit(2)
	}
	if *nodes > 0 {
		p.Nodes = *nodes
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	if *verbose {
		p.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	suite := coma.NewExperiments(p)
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[id] = true
		}
	}

	type gen struct {
		id string
		fn func() (*coma.ReportTable, error)
	}
	gens := []gen{
		{"table1", suite.Table1}, {"table2", suite.Table2}, {"table3", suite.Table3},
		{"fig3", suite.Fig3}, {"fig4", suite.Fig4}, {"fig5", suite.Fig5},
		{"fig6", suite.Fig6}, {"fig7", suite.Fig7}, {"fig8", suite.Fig8},
		{"fig9", suite.Fig9}, {"fig10", suite.Fig10}, {"fig11", suite.Fig11},
		{"ablation", suite.Ablation},
	}
	ran := 0
	for _, g := range gens {
		if len(wanted) > 0 && !wanted[g.id] {
			continue
		}
		t, err := g.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %s: %v\n", g.id, err)
			os.Exit(1)
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "comabench: nothing selected (check -only)")
		os.Exit(2)
	}
}

func writeCSV(dir string, t *coma.ReportTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

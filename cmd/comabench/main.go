// Command comabench regenerates the paper's evaluation: every table and
// figure (Tables 1–3, Figures 3–11), printed as aligned text and
// optionally written as CSV files for plotting.
//
// The campaign's distinct simulations are planned up front and executed
// on a bounded worker pool (-workers, default GOMAXPROCS); tables render
// in paper order as their runs complete. Output is byte-identical for
// every worker count.
//
//	comabench                      # quick campaign (~minutes)
//	comabench -params full         # paper-scale budgets and 5-400/s sweep
//	comabench -only fig3,fig6      # a subset
//	comabench -csv out/            # also write out/<id>.csv
//	comabench -workers 1           # strictly serial execution
//	comabench -json bench.json     # machine-readable perf record
//	comabench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	comabench -compare old.json new.json   # perf-record diff (exit 1 on regression)
//
// With -remote, every simulation executes on a comad daemon (README
// §Serving) instead of in-process; the campaign's own scheduling,
// memoisation and rendering are unchanged, and repeated campaigns
// against a warm daemon resolve entirely from its result cache.
//
//	comabench -remote http://localhost:7700 -only fig6
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"coma"
	"coma/internal/config"
	"coma/internal/server"
	"coma/internal/server/client"
	"coma/internal/stats"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		params     = flag.String("params", "quick", "campaign scale: bench, quick or full")
		only       = flag.String("only", "", "comma-separated subset: table1..table3, fig3..fig11, ablation")
		csvDir     = flag.String("csv", "", "directory to write <id>.csv files into")
		nodes      = flag.Int("nodes", 0, "override machine size for the frequency study")
		seed       = flag.Uint64("seed", 0, "override campaign seed")
		workers    = flag.Int("workers", 0, "max simulations in flight (0: GOMAXPROCS, 1: serial)")
		remote     = flag.String("remote", "", "execute simulations on a comad daemon at this base URL")
		jsonPath   = flag.String("json", "", "write a machine-readable perf record to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		verbose    = flag.Bool("v", false, "print one line per simulation run")
		compare    = flag.Bool("compare", false, "compare two bench records: comabench -compare old.json new.json")
		campaign   = flag.String("campaign", "", "campaign name inside a coma-bench-record file (default: quick_serial_workers1, else first)")
		threshold  = flag.Float64("threshold", 10, "events/sec regression percent that fails -compare (negative: report-only)")
	)
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: comabench -compare [-campaign name] [-threshold pct] old.json new.json")
			return 2
		}
		return runCompare(args[0], args[1], *campaign, *threshold)
	}

	var p coma.ExperimentParams
	switch *params {
	case "bench":
		p = coma.BenchExperiments()
	case "quick":
		p = coma.QuickExperiments()
	case "full":
		p = coma.FullExperiments()
	default:
		fmt.Fprintf(os.Stderr, "comabench: unknown params %q\n", *params)
		return 2
	}
	if *nodes > 0 {
		p.Nodes = *nodes
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	p.Workers = *workers
	if *verbose {
		p.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	if *remote != "" {
		c := client.New(*remote)
		if _, err := c.Health(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: daemon not reachable: %v\n", err)
			return 1
		}
		p.Remote = func(id config.RunIdentity) (*stats.Run, error) {
			run, _, err := c.Run(context.Background(), server.SpecForIdentity(id))
			return run, err
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	suite := coma.NewExperiments(p)
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[id] = true
		}
	}

	type gen struct {
		id string
		fn func() (*coma.ReportTable, error)
	}
	gens := []gen{
		{"table1", suite.Table1}, {"table2", suite.Table2}, {"table3", suite.Table3},
		{"fig3", suite.Fig3}, {"fig4", suite.Fig4}, {"fig5", suite.Fig5},
		{"fig6", suite.Fig6}, {"fig7", suite.Fig7}, {"fig8", suite.Fig8},
		{"fig9", suite.Fig9}, {"fig10", suite.Fig10}, {"fig11", suite.Fig11},
		{"ablation", suite.Ablation},
	}

	// Plan the selected campaign: start every distinct simulation on the
	// worker pool before rendering the first table.
	var selected []string
	for _, g := range gens {
		if len(wanted) == 0 || wanted[g.id] {
			selected = append(selected, g.id)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "comabench: nothing selected (check -only)")
		return 2
	}
	campaignStart := time.Now()
	suite.Plan(selected...)

	perf := perfRecord{
		Schema:      "coma-bench-campaign/v2",
		Params:      *params,
		Workers:     p.Workers,
		GitRevision: gitRevision(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
	}
	for _, g := range gens {
		if len(wanted) > 0 && !wanted[g.id] {
			continue
		}
		tableStart := time.Now()
		t, err := g.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %s: %v\n", g.id, err)
			return 1
		}
		perf.Tables = append(perf.Tables, tablePerf{
			ID:     g.id,
			WallMS: ms(time.Since(tableStart)),
		})
		if err := t.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
				return 1
			}
		}
	}

	wall := time.Since(campaignStart)
	runs, cycles, events := suite.Totals()
	perf.Totals = totalsPerf{
		Runs:         runs,
		WallMS:       ms(wall),
		SimCycles:    cycles,
		Events:       events,
		EventsPerSec: float64(events) / wall.Seconds(),
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, perf); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "comabench: %v\n", err)
			return 1
		}
	}
	return 0
}

// perfRecord is the machine-readable perf artifact written by -json; the
// BENCH_*.json files at the repository root record its trajectory across
// PRs (see EXPERIMENTS.md §Runtime). Schema history: v2 added
// git_revision, goos and goarch so a record pins the code and platform
// it measured.
type perfRecord struct {
	Schema      string      `json:"schema"`
	Params      string      `json:"params"`
	Workers     int         `json:"workers"` // 0 means GOMAXPROCS
	GitRevision string      `json:"git_revision"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"num_cpu"`
	GoVersion   string      `json:"go_version"`
	Tables      []tablePerf `json:"tables"`
	Totals      totalsPerf  `json:"totals"`
}

// gitRevision pins the measured code: the vcs.revision stamped into the
// binary when it was built inside a checkout (with "+dirty" appended if
// the worktree was modified), falling back to asking git directly for
// `go run` style builds, then to "unknown".
func gitRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "+dirty"
			}
			return rev
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// tablePerf times one rendered table. Under a parallel campaign a
// table's wall time is the time spent waiting for its missing runs (the
// pool computes tables' runs concurrently), so the per-table numbers sum
// to the campaign total only at -workers=1.
type tablePerf struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

type totalsPerf struct {
	Runs         int64   `json:"runs"` // distinct simulations executed
	WallMS       float64 `json:"wall_ms"`
	SimCycles    int64   `json:"sim_cycles"`
	Events       int64   `json:"events_dispatched"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

func writeJSON(path string, perf perfRecord) error {
	data, err := json.MarshalIndent(perf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeCSV(dir string, t *coma.ReportTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

// Command comafault demonstrates and validates the fault-tolerance path:
// it runs an ECP machine under a failure schedule (scripted or an
// exponential MTBF model), with the value oracle and the recovery-data
// invariant checker enabled, and reports every recovery the machine
// performed.
//
//	comafault -app mp3d -scale 0.01 -hz 100 -mtbf 5000000
//	comafault -app water -scale 0.01 -hz 200 -fail 400000:3 -fail 800000:7:perm
//
// With -edges it instead runs the staged protocol-edge suite
// (internal/fault/edges): six deterministic choreographies that
// together exercise every edge of the ECP specification table. The
// report goes to stdout, -trace-dir writes one JSONL trace per scenario
// (comamodel diff consumes them as the runtime leg of the conformance
// gate), and the exit status is 0 only on full coverage.
//
//	comafault -edges -trace-dir /tmp/edges
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"coma"
	"coma/internal/fault/edges"
	"coma/internal/obs"
	"coma/internal/proto"
)

func main() {
	var (
		appName = flag.String("app", "mp3d", "workload preset")
		nodes   = flag.Int("nodes", 16, "number of processing nodes")
		hz      = flag.Float64("hz", 100, "recovery points per second")
		scale   = flag.Float64("scale", 0.01, "instruction-budget scale")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		mtbf    = flag.Int64("mtbf", 0, "machine MTBF in cycles; draws an exponential failure schedule")
		permPct = flag.Float64("perm", 0, "fraction of MTBF failures that are permanent (0..1)")
		horizon = flag.Int64("horizon", 0, "failure-schedule horizon in cycles (default: probed run length)")
	)
	var (
		edgeSuite = flag.Bool("edges", false, "run the protocol-edge scenario suite instead of a single machine")
		traceDir  = flag.String("trace-dir", "", "with -edges: write one JSONL trace per scenario into this directory")
	)
	var fails []string
	flag.Func("fail", "scripted failure, cycle:node[:perm]; repeatable", func(v string) error {
		fails = append(fails, v)
		return nil
	})
	flag.Parse()

	if *edgeSuite {
		os.Exit(runEdgeSuite(*traceDir))
	}

	app, ok := coma.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "comafault: unknown app %q\n", *appName)
		os.Exit(2)
	}
	base := coma.Config{
		Nodes:        *nodes,
		Protocol:     coma.ECP,
		App:          app,
		Scale:        *scale,
		Seed:         *seed,
		CheckpointHz: *hz,
		Oracle:       true,
		Invariants:   true,
	}

	// A scripted schedule and a drawn one answer different questions
	// (deterministic reproduction vs a stochastic reliability model);
	// merging them silently changed the meaning of both, so the
	// combination is refused.
	if *mtbf > 0 && len(fails) > 0 {
		fmt.Fprintln(os.Stderr, "comafault: -mtbf and -fail are mutually exclusive: use a scripted schedule or a drawn one, not both")
		os.Exit(2)
	}
	var failures []coma.Failure
	for _, v := range fails {
		f, err := parseFailure(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comafault: %v\n", err)
			os.Exit(2)
		}
		failures = append(failures, f)
	}
	if *mtbf > 0 {
		span := *horizon
		if span == 0 {
			probe := base
			probe.Protocol = coma.Standard
			probe.CheckpointHz = 0
			probe.Invariants = false
			res, err := coma.Run(probe)
			if err != nil {
				fmt.Fprintf(os.Stderr, "comafault: probing run length: %v\n", err)
				os.Exit(1)
			}
			span = res.Cycles
			fmt.Printf("probed failure-free run length: %d cycles\n", span)
		}
		plan := coma.ExponentialFailures(*seed, *nodes, *mtbf, span, *permPct)
		for _, e := range plan {
			failures = append(failures, coma.Failure{At: e.At, Node: int(e.Node), Permanent: e.Permanent})
		}
		fmt.Printf("drawn %d failures from MTBF %d cycles (%d permanent)\n",
			len(plan), *mtbf, plan.PermanentCount())
	}
	base.Failures = failures
	for _, f := range failures {
		kind := "transient"
		if f.Permanent {
			kind = "permanent"
		}
		fmt.Printf("  scheduled: node %d fails (%s) at cycle %d\n", f.Node, kind, f.At)
	}

	res, err := coma.Run(base)
	switch {
	case errors.Is(err, coma.ErrDataLoss):
		fmt.Printf("\nUNRECOVERABLE: %v\n", err)
		fmt.Println("(overlapping failures destroyed both copies of a recovery pair —")
		fmt.Println(" the two-copy scheme tolerates multiple transient and single")
		fmt.Println(" permanent failures, not simultaneous ones)")
		os.Exit(1)
	case err != nil:
		fmt.Fprintf(os.Stderr, "comafault: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\ncompleted in %d cycles (%.1f ms simulated)\n", res.Cycles, 1e3*res.Seconds(res.Cycles))
	fmt.Printf("  recovery points established: %d (aborted: %d)\n", res.Ckpt.Established, res.Ckpt.Aborted)
	fmt.Printf("  rollbacks performed:         %d\n", res.Ckpt.Recoveries)
	total := res.Total()
	fmt.Printf("  reconfiguration injections:  %d\n", total.Injections[proto.InjectReconfigure])
	fmt.Println("  value oracle:                every read matched the sequentially-consistent value")
	fmt.Println("  invariants:                  recovery pairs complete at every commit and rollback")
}

// runEdgeSuite executes the staged edge scenarios, prints the coverage
// report, and optionally persists each scenario's trace as JSONL.
func runEdgeSuite(traceDir string) int {
	rep, err := edges.RunSuite()
	if err != nil {
		fmt.Fprintf(os.Stderr, "comafault: edge suite: %v\n", err)
		return 1
	}
	rep.Write(os.Stdout)
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "comafault: %v\n", err)
			return 1
		}
		for _, res := range rep.Results {
			path := filepath.Join(traceDir, res.Scenario.Name+".jsonl")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "comafault: %v\n", err)
				return 1
			}
			err = obs.WriteJSONL(f, res.Events)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "comafault: writing %s: %v\n", path, err)
				return 1
			}
			fmt.Printf("  trace: %s (%d events)\n", path, len(res.Events))
		}
	}
	if !rep.Full() {
		fmt.Println("edge suite: INCOMPLETE coverage")
		return 1
	}
	fmt.Println("edge suite: full specification coverage")
	return 0
}

func parseFailure(v string) (coma.Failure, error) {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return coma.Failure{}, fmt.Errorf("want cycle:node[:perm], got %q", v)
	}
	at, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return coma.Failure{}, err
	}
	node, err := strconv.Atoi(parts[1])
	if err != nil {
		return coma.Failure{}, err
	}
	return coma.Failure{At: at, Node: node, Permanent: len(parts) == 3 && parts[2] == "perm"}, nil
}

// Command comasim runs one simulation of the fault-tolerant COMA and
// prints its statistics: execution time, checkpoint accounting, miss
// rates, injections by cause, and network totals.
//
// Examples:
//
//	comasim -app mp3d -nodes 16 -protocol ecp -hz 100 -scale 0.01
//	comasim -app barnes -protocol standard -scale 0.01
//	comasim -app water -protocol ecp -hz 400 -fail 500000:3 -fail 900000:5:perm
//
// Observability (see README §Observability): -trace-out writes an event
// log — a .jsonl path gets the JSON-lines format, anything else the
// Chrome trace-event JSON that loads in Perfetto; -metrics-out writes
// the histogram summary ("-" for stdout); -obs-filter narrows the
// recorded event classes.
//
//	comasim -app mp3d -protocol ecp -hz 400 -fail 800000:2 \
//	    -trace-out run.trace.json -trace-out run.jsonl -metrics-out -
//
// With -remote, the run executes on a comad daemon (see README
// §Serving) instead of in-process: the job is submitted over HTTP,
// progress streams back live, and a repeated configuration is answered
// from the daemon's result cache without simulating.
//
//	comasim -remote http://localhost:7700 -app mp3d -protocol ecp -hz 100 -scale 0.01
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"coma"
	"coma/internal/config"
	"coma/internal/obs/receipt"
	"coma/internal/proto"
	"coma/internal/report"
	"coma/internal/server"
	"coma/internal/server/client"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

type failureFlags []coma.Failure

func (f *failureFlags) String() string { return fmt.Sprintf("%v", []coma.Failure(*f)) }

func (f *failureFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want cycle:node[:perm], got %q", v)
	}
	at, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad cycle in %q: %w", v, err)
	}
	node, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad node in %q: %w", v, err)
	}
	perm := len(parts) == 3 && parts[2] == "perm"
	*f = append(*f, coma.Failure{At: at, Node: node, Permanent: perm})
	return nil
}

func main() {
	var (
		appName  = flag.String("app", "mp3d", "workload: barnes, cholesky, mp3d, water, uniform, private, migratory")
		nodes    = flag.Int("nodes", 16, "number of processing nodes")
		protocol = flag.String("protocol", "ecp", "coherence protocol: standard or ecp")
		hz       = flag.Float64("hz", 100, "recovery points per second (ECP; 0 disables)")
		scale    = flag.Float64("scale", 0.01, "instruction-budget scale factor (1 = paper size)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		modern   = flag.Bool("modern", false, "use the faster-processor architecture variant")
		strict   = flag.Bool("strict", false, "per-reference interleaving and oracle checks (slow)")
		verify   = flag.Bool("invariants", false, "check recovery-data invariants at every commit")

		remote = flag.String("remote", "", "run on a comad daemon at this base URL instead of in-process")
		repl   = flag.Bool("repl", false, "interactive inspection: pause/step/inspect/resume the run from stdin")

		metricsOut = flag.String("metrics-out", "", "write the histogram summary to this file (\"-\" for stdout)")
		obsFilter  = flag.String("obs-filter", "", "comma-separated event classes to record: state, fill, inject, ckpt, fault, net, all (default all)")
		obsSample  = flag.Int64("obs-sample", 0, "mesh queue-depth sampling period in cycles (0: default)")

		receiptOut = flag.String("receipt-out", "", "write the execution receipt (coma-receipt/v1 JSON) to this file (\"-\" for stdout); with -remote, fetched from the daemon")
		resultOut  = flag.String("result-out", "", "write the canonical result payload the receipt attests to this file; with -remote, fetched from the daemon")
		receiptKey = flag.String("receipt-key", "", "hex HMAC-SHA256 key signing the receipt (in-process runs; a remote daemon signs with its own key)")
	)
	var failures failureFlags
	flag.Var(&failures, "fail", "inject a failure, cycle:node[:perm]; repeatable")
	var traceOuts stringList
	flag.Var(&traceOuts, "trace-out", "write the event trace to this file (.jsonl: JSON lines; otherwise Chrome trace-event JSON); repeatable")
	flag.Parse()

	app, ok := coma.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "comasim: unknown app %q\n", *appName)
		os.Exit(2)
	}
	key, err := hex.DecodeString(*receiptKey)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comasim: -receipt-key: %v\n", err)
		os.Exit(2)
	}
	if *remote != "" {
		if len(traceOuts) > 0 || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "comasim: -trace-out/-metrics-out need an in-process run (drop -remote)")
			os.Exit(2)
		}
		if *repl {
			fmt.Fprintln(os.Stderr, "comasim: -repl needs an in-process run (drop -remote)")
			os.Exit(2)
		}
		if *receiptKey != "" {
			fmt.Fprintln(os.Stderr, "comasim: -receipt-key needs an in-process run (a remote daemon signs with its own key)")
			os.Exit(2)
		}
		os.Exit(runRemote(*remote, remoteSpec(*appName, *nodes, *protocol, *hz, *scale, *seed, *modern, *strict, *verify, failures), *receiptOut, *resultOut))
	}
	cfg := coma.Config{
		Nodes:        *nodes,
		App:          app,
		Scale:        *scale,
		Seed:         *seed,
		Modern:       *modern,
		Oracle:       true,
		Strict:       *strict,
		Invariants:   *verify,
		Failures:     failures,
		CheckpointHz: *hz,
	}

	var rec *coma.ObsRecorder
	if len(traceOuts) > 0 || *metricsOut != "" || *receiptOut != "" {
		mask, err := coma.ParseObsFilter(*obsFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			os.Exit(2)
		}
		if *obsFilter == "" && *receiptOut != "" {
			// No explicit filter: record what the daemon's always-on
			// receipt gate records, so a local receipt's trace digest
			// matches a comad-emitted one for the same run.
			mask = receipt.TraceMask
		}
		rec = coma.NewObsRecorder(mask)
		cfg.Observer = rec
		cfg.ObsSampleEvery = *obsSample
	}
	switch *protocol {
	case "standard":
		cfg.Protocol = coma.Standard
		cfg.CheckpointHz = 0
	case "ecp":
		cfg.Protocol = coma.ECP
	default:
		fmt.Fprintf(os.Stderr, "comasim: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	if *repl {
		spec := remoteSpec(*appName, *nodes, *protocol, *hz, *scale, *seed, *modern, *strict, *verify, failures)
		res, err := runREPL(spec, rec, os.Stdin, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			os.Exit(1)
		}
		printResult(res)
		if rec != nil {
			if err := exportObservations(rec, res, traceOuts, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
				os.Exit(1)
			}
		}
		if err := emitReceipt(spec, res, rec, key, *receiptOut, *resultOut); err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	res, err := coma.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
		os.Exit(1)
	}
	printResult(res)

	if rec != nil {
		if err := exportObservations(rec, res, traceOuts, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			os.Exit(1)
		}
	}
	spec := remoteSpec(*appName, *nodes, *protocol, *hz, *scale, *seed, *modern, *strict, *verify, failures)
	if err := emitReceipt(spec, res, rec, key, *receiptOut, *resultOut); err != nil {
		fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
		os.Exit(1)
	}
}

// remoteSpec translates the CLI flags into the daemon's job spec; the
// daemon applies the same canonicalisation as a local run (Scale
// resolves against the preset budget, Modern/KSR1 against nodes), so
// identical flags map to the same cache entry everywhere.
func remoteSpec(app string, nodes int, protocol string, hz, scale float64, seed uint64, modern, strict, invariants bool, failures failureFlags) server.JobSpec {
	spec := server.JobSpec{
		App:          app,
		Nodes:        nodes,
		Protocol:     protocol,
		Scale:        scale,
		Seed:         seed,
		Modern:       modern,
		Strict:       strict,
		Invariants:   invariants,
		CheckpointHz: hz,
	}
	if protocol == "standard" {
		spec.CheckpointHz = 0
	}
	for _, f := range failures {
		spec.Failures = append(spec.Failures, config.FailureEvent{At: f.At, Node: f.Node, Permanent: f.Permanent})
	}
	return spec
}

// runRemote submits the job to a comad daemon, streams its progress to
// stderr, and prints the result exactly like a local run. When asked
// for a receipt or the canonical payload it fetches the daemon's own
// artifacts — the bytes a later `comatrace attest` must see.
func runRemote(base string, spec server.JobSpec, receiptOut, resultOut string) int {
	c := client.New(base)
	res, st, err := c.RunStreaming(context.Background(), spec, func(ev server.JobEvent) {
		switch ev.Type {
		case "state":
			fmt.Fprintf(os.Stderr, "remote: %s\n", ev.State)
		case "progress":
			fmt.Fprintf(os.Stderr, "remote: [cycle %d] %s\n", ev.SimCycles, ev.Message)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
		return 1
	}
	if st.Cache == "hit" {
		fmt.Fprintf(os.Stderr, "remote: served from cache (job %s)\n", st.ID[:12])
	}
	printResult(res)
	if receiptOut != "" {
		b, err := c.Receipt(context.Background(), st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comasim: fetching receipt: %v\n", err)
			return 1
		}
		if err := writeArtifact(receiptOut, "receipt", b); err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			return 1
		}
	}
	if resultOut != "" {
		b, err := c.Result(context.Background(), st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comasim: fetching result: %v\n", err)
			return 1
		}
		if err := writeArtifact(resultOut, "result", b); err != nil {
			fmt.Fprintf(os.Stderr, "comasim: %v\n", err)
			return 1
		}
	}
	return 0
}

// emitReceipt builds and writes the execution receipt for an in-process
// run: the run's content address (the same identity a comad daemon
// would cache it under), the canonical result digest, and — when the
// run recorded a trace — the trace digest plus the recovery-invariant
// verdict. With a key the receipt is HMAC-signed.
func emitReceipt(spec server.JobSpec, res *coma.Result, rec *coma.ObsRecorder, key []byte, receiptOut, resultOut string) error {
	if receiptOut == "" && resultOut == "" {
		return nil
	}
	payload, err := server.MarshalResult(res)
	if err != nil {
		return err
	}
	if resultOut != "" {
		if err := writeArtifact(resultOut, "result", payload); err != nil {
			return err
		}
	}
	if receiptOut == "" {
		return nil
	}
	id, err := spec.Identity(buildRevision())
	if err != nil {
		return err
	}
	var events []coma.ObsEvent
	if rec != nil {
		events = rec.Events()
	}
	rcpt, _, err := receipt.Build(id, payload, events, receipt.ProducerLocal)
	if err != nil {
		return err
	}
	if len(key) > 0 {
		rcpt = rcpt.Sign(key)
	}
	return writeArtifact(receiptOut, "receipt", append(rcpt.CanonicalJSON(), '\n'))
}

// writeArtifact writes bytes to a file or, for "-", standard output.
func writeArtifact(path, what string, b []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("  %-19s %s (%d bytes)\n", what, path, len(b))
	return nil
}

// buildRevision mirrors comad's: the vcs revision stamped into the
// binary ("+dirty" when modified), or "dev" outside a stamped build,
// so a local receipt's run hash matches a daemon built from the same
// tree.
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// exportObservations writes the recorded event stream to every requested
// sink once the run has completed.
func exportObservations(rec *coma.ObsRecorder, res *coma.Result, traceOuts []string, metricsOut string) error {
	events := rec.Events()
	for _, path := range traceOuts {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, ".jsonl") {
			err = coma.WriteTraceJSONL(f, events)
		} else {
			err = coma.WriteChromeTrace(f, res.ClockHz, events)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Printf("  trace               %s (%d events)\n", path, len(events))
	}
	if metricsOut == "" {
		return nil
	}
	if metricsOut == "-" {
		fmt.Println()
		return coma.WriteObsSummary(os.Stdout, events)
	}
	f, err := os.Create(metricsOut)
	if err != nil {
		return err
	}
	err = coma.WriteObsSummary(f, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", metricsOut, err)
	}
	fmt.Printf("  metrics             %s\n", metricsOut)
	return nil
}

func printResult(r *coma.Result) {
	total := r.Total()
	fmt.Printf("%s on %d nodes, %s protocol\n", r.App, r.Nodes, r.Protocol)
	fmt.Printf("  execution time      %d cycles (%.1f ms simulated)\n",
		r.Cycles, 1e3*r.Seconds(r.Cycles))
	fmt.Printf("  instructions        %d (IPC %.2f)\n", total.Instructions,
		float64(total.Instructions)/float64(r.Cycles)/float64(r.Nodes))
	fmt.Printf("  references          %d (%d shared)\n",
		total.References(), total.SharedReads+total.SharedWrites)
	fmt.Printf("  cache miss rate     %.2f%% reads, %.2f%% writes\n",
		pct(r.CacheReadMiss, r.CacheReads), pct(r.CacheWriteMis, r.CacheWrites))
	fmt.Printf("  AM miss rate        %.2f%% reads, %.2f%% writes\n",
		100*total.AMReadMissRate(), 100*total.AMWriteMissRate())
	fmt.Printf("  fills               %d local, %d remote, %d cold\n",
		total.FillsLocal, total.FillsRemote, total.FillsCold)
	fmt.Printf("  network             %d messages, %d flits\n", r.NetMessages, r.NetFlits)
	if r.Ckpt.Established > 0 || r.Ckpt.Recoveries > 0 {
		fmt.Printf("  recovery points     %d established, %d aborted, %d rollbacks\n",
			r.Ckpt.Established, r.Ckpt.Aborted, r.Ckpt.Recoveries)
		fmt.Printf("  T_create            %d cycles (%s of execution)\n",
			r.Ckpt.CreateCycles, report.FormatPct(r.CreateOverhead()))
		fmt.Printf("  T_commit            %d cycles (%s of execution)\n",
			r.Ckpt.CommitCycles, report.FormatPct(r.CommitOverhead()))
		fmt.Printf("  replication         %d items moved, %d reused, %s per node\n",
			total.CkptItemsReplicated, total.CkptItemsReused,
			report.FormatRate(r.PerNodeReplicationThroughput()))
	}
	if inj := total.TotalInjections(); inj > 0 {
		fmt.Printf("  injections          %d total (%.1f per 10k refs)\n",
			inj, total.Per10KRefs(inj))
		for c := proto.InjectCause(0); c < proto.NumInjectCauses; c++ {
			if total.Injections[c] > 0 {
				fmt.Printf("    %-18s %d\n", c.String(), total.Injections[c])
			}
		}
	}
	fmt.Printf("  pages allocated     %d frames (peak)\n", r.PagesPeak)
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"coma"
	"coma/internal/inspect"
	"coma/internal/proto"
	"coma/internal/server"
)

// runREPL executes the configured simulation with an interactive
// inspection loop reading commands from in: pause the run at a safe
// point, query AM lines, ECP state histograms and mesh queues, step a
// bounded number of events, and resume. Inspection is read-only and
// happens between event dispatches, so the run's result and trace are
// identical to a non-interactive run of the same flags (the smoke test
// compares the traces byte for byte).
func runREPL(spec server.JobSpec, rec *coma.ObsRecorder, in io.Reader, out io.Writer) (*coma.Result, error) {
	identity, err := spec.Identity("")
	if err != nil {
		return nil, err
	}
	var observer coma.Observer
	if rec != nil {
		observer = rec
	}
	m, err := server.BuildMachine(identity, observer)
	if err != nil {
		return nil, err
	}
	ctl := m.NewInspector(server.DefaultSampleEvery)

	type outcome struct {
		res *coma.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := m.Run()
		ctl.Finish()
		done <- outcome{res, err}
	}()

	itemSize := int64(identity.Arch.ItemSize)
	sc := bufio.NewScanner(in)
	fmt.Fprintf(out, "coma repl: %s/%s on %d nodes (type help)\n",
		spec.App, identity.Protocol, identity.Arch.Nodes)
loop:
	for {
		fmt.Fprint(out, "(coma) ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if ctl.Finished() && fields[0] != "quit" && fields[0] != "help" {
			fmt.Fprintln(out, "run finished; queries now read the final state")
		}
		switch fields[0] {
		case "help":
			fmt.Fprint(out, `commands:
  pause            stop the simulation at its next safe point
  step [n]         dispatch n more events (default 1), then pause
  resume           let the simulation run on
  summary          scheduler, queue and checkpoint-phase summary
  node             per-node liveness, frames and ECP state histogram
  queues           mesh occupancy for both subnets
  line <item>      directory entry and AM copies of one item
  addr <byteaddr>  same, addressed in bytes (0x.. accepted)
  quit             resume and run to completion
`)
		case "pause":
			ctl.Pause()
			fmt.Fprintf(out, "paused at cycle %d\n", replNow(ctl))
		case "step":
			n := int64(1)
			if len(fields) > 1 {
				if n, err = strconv.ParseInt(fields[1], 0, 64); err != nil || n < 1 {
					fmt.Fprintf(out, "step: bad count %q\n", fields[1])
					continue
				}
			}
			ctl.Step(n)
			fmt.Fprintf(out, "stepped %d event(s), cycle %d\n", n, replNow(ctl))
		case "resume":
			ctl.Resume()
			fmt.Fprintln(out, "resumed")
		case "summary":
			var sv inspect.SummaryView
			ctl.Query(func(s inspect.Source) { sv = s.InspectSummary() })
			printSummary(out, sv, ctl.Finished())
		case "node":
			var nv []inspect.NodeView
			ctl.Query(func(s inspect.Source) { nv = s.InspectNodes() })
			printNodes(out, nv)
		case "queues":
			var qv inspect.QueuesView
			ctl.Query(func(s inspect.Source) { qv = s.InspectQueues() })
			printQueues(out, qv)
		case "line", "addr":
			if len(fields) < 2 {
				fmt.Fprintf(out, "%s: need an argument\n", fields[0])
				continue
			}
			v, err := strconv.ParseInt(fields[1], 0, 64)
			if err != nil || v < 0 {
				fmt.Fprintf(out, "%s: bad argument %q\n", fields[0], fields[1])
				continue
			}
			if fields[0] == "addr" {
				v /= itemSize
			}
			var lv inspect.LineView
			ctl.Query(func(s inspect.Source) { lv = s.InspectLine(proto.ItemID(v)) })
			printLine(out, lv)
		case "quit":
			break loop
		default:
			fmt.Fprintf(out, "unknown command %q (type help)\n", fields[0])
		}
	}
	ctl.Resume()
	fmt.Fprintln(out, "running to completion...")
	o := <-done
	return o.res, o.err
}

// replNow reads the current simulated time through a safe-point query.
func replNow(ctl *inspect.Controller) int64 {
	var now int64
	ctl.Query(func(s inspect.Source) { now = s.InspectSummary().SimCycles })
	return now
}

func printSummary(out io.Writer, sv inspect.SummaryView, finished bool) {
	fmt.Fprintf(out, "cycle %d, %d events dispatched, %d processes\n",
		sv.SimCycles, sv.Events, sv.Processes)
	fmt.Fprintf(out, "  pending events    %d wheel, %d overflow, %d now-queue\n",
		sv.WheelEvents, sv.OverflowEvents, sv.NowQueueEvents)
	fmt.Fprintf(out, "  nodes             %d/%d live, %d directory items (%d locked)\n",
		sv.LiveNodes, sv.Nodes, sv.DirectoryItems, sv.LockedItems)
	ph := sv.Phase
	kind := "checkpoint"
	if ph.Recovery {
		kind = "recovery"
	}
	fmt.Fprintf(out, "  phase             round %d (%s), quiesce %d/%d, phase1 %d/%d, phase2 %d/%d\n",
		ph.Round, kind, ph.QuiesceGot, ph.QuiesceNeed,
		ph.Phase1Got, ph.Phase1Need, ph.Phase2Got, ph.Phase2Need)
	fmt.Fprintf(out, "  recovery points   %d established, %d aborted, %d rollbacks, %d pending failures\n",
		ph.Established, ph.Aborted, ph.Recoveries, ph.PendingFailures)
	if finished {
		fmt.Fprintln(out, "  run finished")
	}
}

func printNodes(out io.Writer, nv []inspect.NodeView) {
	for _, n := range nv {
		live := "live"
		if !n.Alive {
			live = "DOWN"
		}
		var parts []string
		n.States.NonZero(func(s proto.State, c int64) {
			parts = append(parts, fmt.Sprintf("%s=%d", s, c))
		})
		fmt.Fprintf(out, "node %2d  %-4s  %4d frames  %s\n",
			n.Node, live, n.Frames, strings.Join(parts, " "))
	}
}

func printQueues(out io.Writer, qv inspect.QueuesView) {
	for _, sub := range []struct {
		name string
		v    inspect.SubnetView
	}{{"request", qv.Request}, {"reply", qv.Reply}} {
		busy := 0
		for _, b := range append(append([]int64(nil), sub.v.NISendBusy...), sub.v.NIRecvBusy...) {
			if b > 0 {
				busy++
			}
		}
		fmt.Fprintf(out, "%-8s %4d in flight, %d busy links, %d busy injection ports\n",
			sub.name, sub.v.Inflight, sub.v.BusyLinks, busy)
	}
}

func printLine(out io.Writer, lv inspect.LineView) {
	fmt.Fprintf(out, "item %d (page %d, home node %d)\n", lv.Item, lv.Page, lv.Home)
	if !lv.Present {
		fmt.Fprintln(out, "  no directory entry")
		return
	}
	owner := "none"
	if lv.Owner >= 0 {
		owner = strconv.Itoa(lv.Owner)
	}
	sharers := append([]int(nil), lv.Sharers...)
	sort.Ints(sharers)
	fmt.Fprintf(out, "  owner %s, sharers %v\n", owner, sharers)
	for _, cp := range lv.Copies {
		partner := ""
		if cp.Partner >= 0 {
			partner = fmt.Sprintf("  partner %d", cp.Partner)
		}
		fmt.Fprintf(out, "  node %2d  %-12s value %#x%s\n", cp.Node, cp.State, cp.Value, partner)
	}
	for _, pr := range lv.RecoveryPairs {
		fmt.Fprintf(out, "  recovery pair on nodes %d and %d\n", pr[0], pr[1])
	}
}

module coma

go 1.22

module coma

go 1.24.0

// Package workload generates the memory-reference streams that drive the
// simulated processors. The paper traces four SPLASH applications with
// Abstract Execution; those binaries and traces are not available, so this
// package substitutes deterministic synthetic generators parameterised to
// match Table 3 of the paper: instruction counts, read/write mix, shared
// read/write mix, relative working-set sizes (Mp3d about nine times
// Barnes), locality, migratory objects (Mp3d, Water) and mostly-read
// shared data (Barnes). See DESIGN.md §2 for why this substitution
// preserves the shape of every result.
//
// Generators are snapshotable: the machine records their state at every
// committed recovery point and restores it on rollback, playing the role
// of the processor-register recovery data.
package workload

import (
	"fmt"
	"math"

	"coma/internal/sim"
)

// Kind classifies one element of a reference stream.
type Kind uint8

const (
	// Instr is a burst of N non-memory instructions.
	Instr Kind = iota
	// Read is a data load from Addr.
	Read
	// Write is a data store to Addr.
	Write
	// Barrier is a global synchronisation point: the processor blocks
	// until every live processor reaches its barrier.
	Barrier
	// End terminates the stream.
	End
)

func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Read:
		return "read"
	case Write:
		return "write"
	case Barrier:
		return "barrier"
	case End:
		return "end"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Ref is one element of a processor's reference stream.
type Ref struct {
	Kind Kind
	Addr uint64
	// N is the burst length for Instr references.
	N int64
	// Shared marks references to the shared region (for Table 3 style
	// accounting).
	Shared bool
}

// Generator produces one processor's reference stream.
type Generator interface {
	// Next returns the next stream element. After End it keeps
	// returning End.
	Next() Ref
	// Snapshot captures the generator state for rollback.
	Snapshot() Snapshot
	// Restore rewinds to a previously captured state.
	Restore(Snapshot)
	// Name identifies the workload.
	Name() string
}

// Snapshot is an opaque generator state. Each generator type documents
// its own concrete snapshot type.
type Snapshot interface{}

// SharedBase is the byte address where the shared region starts.
const SharedBase uint64 = 0

// PrivateBase is the byte address where per-processor private regions
// start; processor p owns [PrivateBase + p*PrivateStride, +PrivateBytes).
const PrivateBase uint64 = 1 << 30

// PrivateStride separates consecutive processors' private regions. The
// odd page offset keeps consecutive regions from aliasing into the same
// attraction-memory set (the role page colouring plays in a real OS).
const PrivateStride uint64 = 1<<24 + 3<<14

// Spec parameterises a synthetic application. Fractions are of total
// instructions, matching Table 3 of the paper (shared fractions are
// subsets of the totals).
type Spec struct {
	Name string

	// Instructions is the total instruction budget across all
	// processors; each processor executes Instructions/Procs.
	Instructions int64

	ReadFrac        float64
	WriteFrac       float64
	SharedReadFrac  float64
	SharedWriteFrac float64

	// SharedBytes is the shared working set; PrivateBytes is each
	// processor's private working set.
	SharedBytes  int
	PrivateBytes int

	// ReadOnlyFrac is the fraction of the shared region holding
	// mostly-read data (Barnes-style bodies read by everyone).
	ReadOnlyFrac float64

	// Migratory is the probability that a shared access targets the
	// processor's current migratory object (Mp3d particles, Water
	// molecules): data read-modified-written in a burst by one
	// processor, then later by another — ownership migrates.
	Migratory float64
	// MigratoryObjects is the number of distinct migratory objects.
	MigratoryObjects int
	// MigratoryPhase is the burst length: how many of the processor's
	// instructions are spent on one object before its sweep advances to
	// the next (an Mp3d particle move, a Water molecule update). Each
	// processor sweeps the object array from its own offset, so over
	// time every object is visited — and its ownership taken — by every
	// processor.
	MigratoryPhase int64

	// Locality is the probability that a reference reuses the previous
	// address of its class (temporal locality).
	Locality float64

	// HotBytes is the size of the private hot window: most private
	// accesses fall inside a window that drifts through the private
	// region, modelling loop/stack locality (default 2 KB).
	HotBytes int
	// WindowBytes is the size of each processor's active window within
	// its partition of the shared read-write region: shared writes
	// concentrate there, modelling the per-processor work assignment of
	// the SPLASH applications (default 4 KB). Along with DriftInstr it
	// controls the modified-data footprint per recovery-point interval
	// — the quantity T_create depends on.
	WindowBytes int
	// DriftInstr is how many of the processor's instructions pass
	// before the hot and partition windows slide forward (default
	// 10000). Not rescaled by Scale: the footprint per checkpoint
	// interval is a per-time property.
	DriftInstr int64

	// Barriers is the number of global synchronisation phases.
	Barriers int
}

// Probabilities of the address model (fixed; the per-app variation comes
// from the window sizes and drift rates). Writes are far more
// concentrated than reads: the modified-data footprint per checkpoint
// interval — the quantity the ECP's T_create depends on — is set by the
// windows plus a small scatter tail, while reads roam the data structures.
const (
	pHotPrivateWrite = 0.995 // private write falls in the hot window
	pHotPrivateRead  = 0.90  // private read falls in the hot window
	pOwnPartition    = 0.97  // shared write targets the own-partition window
	pReadOwn         = 0.50  // non-RO shared read targets the own window
)

// Validate checks the specification for consistency.
func (s Spec) Validate() error {
	refFrac := s.ReadFrac + s.WriteFrac
	switch {
	case s.Instructions <= 0:
		return fmt.Errorf("workload %s: Instructions = %d", s.Name, s.Instructions)
	case refFrac <= 0 || refFrac >= 1:
		return fmt.Errorf("workload %s: reference fraction %.3f out of (0,1)", s.Name, refFrac)
	case s.SharedReadFrac > s.ReadFrac || s.SharedWriteFrac > s.WriteFrac:
		return fmt.Errorf("workload %s: shared fractions exceed totals", s.Name)
	case s.SharedBytes <= 0 || s.PrivateBytes < 0:
		return fmt.Errorf("workload %s: working-set sizes invalid", s.Name)
	case uint64(s.PrivateBytes) > PrivateStride:
		return fmt.Errorf("workload %s: private region exceeds stride", s.Name)
	case s.ReadOnlyFrac < 0 || s.ReadOnlyFrac > 1:
		return fmt.Errorf("workload %s: ReadOnlyFrac = %f", s.Name, s.ReadOnlyFrac)
	case s.Migratory < 0 || s.Migratory > 1:
		return fmt.Errorf("workload %s: Migratory = %f", s.Name, s.Migratory)
	case s.Migratory > 0 && s.MigratoryObjects <= 0:
		return fmt.Errorf("workload %s: Migratory set but no objects", s.Name)
	}
	return nil
}

// Scale returns a copy with the instruction budget scaled by f. Working
// sets, window drift and migration rates stay fixed: they are per-time
// properties of the application, and the recovery-point intervals they
// interact with are also expressed in time, so scaled runs keep the
// paper-relevant per-interval behaviour.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.Instructions = int64(float64(s.Instructions) * f)
	if out.Instructions < 1 {
		out.Instructions = 1
	}
	return out
}

// appState is the complete, value-copyable state of one App generator.
type appState struct {
	rng         sim.RNG
	issued      int64 // instructions issued so far
	nextBarrier int64
	barriers    int
	pending     Ref
	hasPending  bool
	// Last addresses per class: temporal-locality reuse must not let the
	// write stream follow the (far more scattered) read stream, or the
	// modified-data footprint per checkpoint interval explodes.
	lastSharedR  uint64
	lastSharedW  uint64
	lastPrivateR uint64
	lastPrivateW uint64
}

// App is the synthetic application generator for one processor.
type App struct {
	spec    Spec
	proc    int
	procs   int
	total   int64 // this processor's instruction budget
	barrGap int64
	st      appState

	// Cached address-space geometry.
	roItems  int64
	rwItems  int64
	sharedLo uint64
	privBase uint64
	privLen  uint64

	// Windowed-locality geometry (see Spec.WindowBytes).
	hotBytes  int64
	winItems  int64
	slide     int64
	drift     int64
	partStart int64 // first item of this processor's rw partition
	partItems int64
}

const itemBytes = 128 // address granularity of shared objects

// NewApp builds the generator for one processor of an application run.
func (s Spec) NewApp(proc, procs int, seed uint64) *App {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if proc < 0 || proc >= procs {
		panic(fmt.Sprintf("workload: proc %d out of %d", proc, procs))
	}
	total := s.Instructions / int64(procs)
	if total < 1 {
		total = 1
	}
	barrGap := int64(math.MaxInt64)
	if s.Barriers > 0 {
		barrGap = total / int64(s.Barriers+1)
		if barrGap < 1 {
			barrGap = 1
		}
	}
	sharedItems := int64(s.SharedBytes / itemBytes)
	if sharedItems < 2 {
		sharedItems = 2
	}
	roItems := int64(float64(sharedItems) * s.ReadOnlyFrac)
	rwItems := sharedItems - roItems
	if rwItems < 1 {
		rwItems = 1
		roItems = sharedItems - 1
	}
	a := &App{
		spec:     s,
		proc:     proc,
		procs:    procs,
		total:    total,
		barrGap:  barrGap,
		roItems:  roItems,
		rwItems:  rwItems,
		sharedLo: SharedBase,
		privBase: PrivateBase + uint64(proc)*PrivateStride,
		privLen:  uint64(s.PrivateBytes),
	}
	// Window sizes are nominal for the paper's 16-processor machine and
	// shrink (sublinearly) as a fixed-size problem is divided among more
	// processors — each processor's active data share gets smaller, which
	// is how the paper explains the per-processor recovery-data decrease
	// in its scalability study (Mp3d: 9.6 KB at 30 processors to 6.8 KB
	// at 56).
	shareScale := math.Sqrt(16 / float64(procs))
	if shareScale < 0.5 {
		shareScale = 0.5
	}
	if shareScale > 2 {
		shareScale = 2
	}
	a.hotBytes = int64(s.HotBytes)
	if a.hotBytes <= 0 {
		a.hotBytes = 2 << 10
	}
	a.hotBytes = int64(float64(a.hotBytes) * shareScale)
	if a.hotBytes < 256 {
		a.hotBytes = 256
	}
	winBytes := int64(s.WindowBytes)
	if winBytes <= 0 {
		winBytes = 4 << 10
	}
	winBytes = int64(float64(winBytes) * shareScale)
	if winBytes < itemBytes {
		winBytes = itemBytes
	}
	a.drift = s.DriftInstr
	if a.drift <= 0 {
		a.drift = 10_000
	}
	a.partItems = rwItems / int64(procs)
	if a.partItems < 1 {
		a.partItems = 1
	}
	a.partStart = roItems + int64(proc)*a.partItems
	a.winItems = winBytes / itemBytes
	if a.winItems < 1 {
		a.winItems = 1
	}
	if a.winItems > a.partItems {
		a.winItems = a.partItems
	}
	a.slide = a.winItems / 4
	if a.slide < 1 {
		a.slide = 1
	}
	root := sim.NewRNG(seed)
	a.st = appState{
		rng:          *root.Derive(uint64(proc)),
		nextBarrier:  barrGap,
		lastSharedR:  a.sharedLo,
		lastSharedW:  a.sharedLo,
		lastPrivateR: a.privBase,
		lastPrivateW: a.privBase,
	}
	return a
}

// Name implements Generator.
func (a *App) Name() string { return a.spec.Name }

// Snapshot implements Generator; the concrete type is appState.
func (a *App) Snapshot() Snapshot { return a.st }

// Restore implements Generator.
func (a *App) Restore(s Snapshot) { a.st = s.(appState) }

// Total returns this processor's instruction budget.
func (a *App) Total() int64 { return a.total }

// Next implements Generator.
func (a *App) Next() Ref {
	st := &a.st
	if st.hasPending {
		st.hasPending = false
		return st.pending
	}
	if st.issued >= a.total {
		return Ref{Kind: End}
	}
	if st.issued >= st.nextBarrier && st.barriers < a.spec.Barriers {
		st.barriers++
		st.nextBarrier += a.barrGap
		return Ref{Kind: Barrier}
	}

	// Geometric gap of non-memory instructions before the next
	// reference.
	refFrac := a.spec.ReadFrac + a.spec.WriteFrac
	u := st.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	gap := int64(math.Log(u) / math.Log(1-refFrac))
	if gap < 0 {
		gap = 0
	}
	if remaining := a.total - st.issued - 1; gap > remaining {
		gap = remaining
	}
	ref := a.makeRef()
	st.issued += gap + 1 // the reference itself counts as an instruction
	if gap == 0 {
		return ref
	}
	st.pending = ref
	st.hasPending = true
	return Ref{Kind: Instr, N: gap}
}

// makeRef draws one memory reference according to the spec's mix.
func (a *App) makeRef() Ref {
	s := &a.spec
	st := &a.st
	refFrac := s.ReadFrac + s.WriteFrac
	u := st.rng.Float64() * refFrac
	switch {
	case u < s.SharedReadFrac:
		return Ref{Kind: Read, Addr: a.sharedAddr(false), Shared: true}
	case u < s.ReadFrac:
		return Ref{Kind: Read, Addr: a.privateAddr(false)}
	case u < s.ReadFrac+s.SharedWriteFrac:
		return Ref{Kind: Write, Addr: a.sharedAddr(true), Shared: true}
	default:
		return Ref{Kind: Write, Addr: a.privateAddr(true)}
	}
}

// sharedAddr picks a shared address honouring temporal locality, the
// read-mostly segment, migratory objects, and the processor's drifting
// partition window (SPLASH-style per-processor work assignment: shared
// writes concentrate in the window, reads mix the window with the
// read-mostly data and other processors' partitions).
func (a *App) sharedAddr(write bool) uint64 {
	s := &a.spec
	st := &a.st

	// Migratory objects: the processor sweeps the object array in
	// bursts (an Mp3d particle move touches one particle's fields many
	// times, then the sweep advances). Sweeps start at per-processor
	// offsets and advance with instruction progress, so an object
	// written by this processor in one pass is written by another
	// later: ownership migrates, and — crucially for the ECP — objects
	// checkpointed mid-sweep are rarely rewritten by the same node
	// within the next interval.
	if s.Migratory > 0 && st.rng.Bool(s.Migratory) {
		objects := int64(s.MigratoryObjects)
		pos := int64(0)
		if s.MigratoryPhase > 0 {
			pos = st.issued / s.MigratoryPhase
		}
		share := objects / int64(a.procs)
		if share < 1 {
			share = 1
		}
		obj := (int64(a.proc)*share + pos) % objects
		item := a.roItems + obj%a.rwItems
		return a.itemAddr(item, st.rng.Intn(itemBytes))
	}

	if st.rng.Bool(s.Locality) {
		if write {
			return st.lastSharedW
		}
		return st.lastSharedR
	}

	var item int64
	switch {
	case !write && a.roItems > 0 && st.rng.Bool(s.ReadOnlyFrac):
		item = st.rng.Int63n(a.roItems)
	case write && st.rng.Bool(pOwnPartition):
		item = a.windowItem(st)
	case !write && st.rng.Bool(pReadOwn):
		item = a.windowItem(st)
	default:
		// True sharing / communication: anywhere in the rw region.
		item = a.roItems + st.rng.Int63n(a.rwItems)
	}
	addr := a.itemAddr(item, st.rng.Intn(itemBytes))
	if write {
		st.lastSharedW = addr
	} else {
		st.lastSharedR = addr
	}
	return addr
}

// windowItem picks an item in the processor's current partition window.
// The window slides deterministically with instruction progress, so the
// modified-data footprint per recovery-point interval grows sublinearly
// with the interval (the paper's Cholesky moves 8x the data per
// establishment at 400/s versus 5/s while total data drops 10 to 1.2 MB).
func (a *App) windowItem(st *appState) int64 {
	step := st.issued / a.drift
	span := a.partItems - a.winItems
	off := int64(0)
	if span > 0 {
		off = (step * a.slide) % (span + 1)
	}
	return a.partStart + off + st.rng.Int63n(a.winItems)
}

func (a *App) itemAddr(item int64, off int) uint64 {
	return a.sharedLo + uint64(item)*itemBytes + uint64(off&^7)
}

// privateAddr picks an address in the processor's private region: mostly
// inside a small hot window (loop and stack locality) that drifts through
// the region, occasionally anywhere (cold data).
func (a *App) privateAddr(write bool) uint64 {
	st := &a.st
	if a.privLen == 0 {
		return a.privBase
	}
	if st.rng.Bool(a.spec.Locality) {
		if write {
			return st.lastPrivateW
		}
		return st.lastPrivateR
	}
	pHot := pHotPrivateRead
	if write {
		pHot = pHotPrivateWrite
	}
	var off uint64
	hot := uint64(a.hotBytes)
	if st.rng.Bool(pHot) && a.privLen > hot {
		step := uint64(st.issued / a.drift)
		span := a.privLen - hot
		start := (step * (hot / 4)) % (span + 1)
		off = start + uint64(st.rng.Intn(int(hot)))
	} else {
		off = st.rng.Uint64() % a.privLen
	}
	addr := a.privBase + off&^7
	if write {
		st.lastPrivateW = addr
	} else {
		st.lastPrivateR = addr
	}
	return addr
}

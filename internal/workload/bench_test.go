package workload

import "testing"

func BenchmarkAppNext(b *testing.B) {
	g := Mp3d().NewApp(0, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Next().Kind == End {
			b.StopTimer()
			g = Mp3d().NewApp(0, 16, uint64(i))
			b.StartTimer()
		}
	}
}

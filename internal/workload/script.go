package workload

// Script is a deterministic generator over a fixed reference slice, used
// by unit tests, micro-experiments and trace replay. Its Snapshot is the
// stream position.
type Script struct {
	name string
	refs []Ref
	pos  int
}

// NewScript wraps a fixed reference stream.
func NewScript(name string, refs []Ref) *Script {
	return &Script{name: name, refs: refs}
}

// Name implements Generator.
func (s *Script) Name() string { return s.name }

// Next implements Generator.
func (s *Script) Next() Ref {
	if s.pos >= len(s.refs) {
		return Ref{Kind: End}
	}
	r := s.refs[s.pos]
	s.pos++
	return r
}

// Snapshot implements Generator; the concrete type is int.
func (s *Script) Snapshot() Snapshot { return s.pos }

// Restore implements Generator.
func (s *Script) Restore(sn Snapshot) { s.pos = sn.(int) }

// R is a shorthand read reference for building scripts.
func R(addr uint64) Ref { return Ref{Kind: Read, Addr: addr, Shared: true} }

// W is a shorthand write reference for building scripts.
func W(addr uint64) Ref { return Ref{Kind: Write, Addr: addr, Shared: true} }

// I is a shorthand instruction burst for building scripts.
func I(n int64) Ref { return Ref{Kind: Instr, N: n} }

// B is a shorthand barrier for building scripts.
func B() Ref { return Ref{Kind: Barrier} }

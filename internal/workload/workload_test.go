package workload

import (
	"math"
	"testing"
)

// drain runs a generator to completion, tallying reference classes.
type tally struct {
	instr, reads, writes, sharedReads, sharedWrites, barriers int64
}

func drain(t *testing.T, g Generator, limit int64) tally {
	t.Helper()
	var c tally
	for i := int64(0); ; i++ {
		if i > limit {
			t.Fatalf("generator %s did not terminate within %d elements", g.Name(), limit)
		}
		r := g.Next()
		switch r.Kind {
		case Instr:
			c.instr += r.N
		case Read:
			c.instr++
			c.reads++
			if r.Shared {
				c.sharedReads++
			}
		case Write:
			c.instr++
			c.writes++
			if r.Shared {
				c.sharedWrites++
			}
		case Barrier:
			c.barriers++
		case End:
			return c
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, s := range Splash() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, name := range []string{"uniform", "private", "migratory"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("ByName accepted an unknown preset")
	}
}

// TestTable3Fractions checks each synthetic application reproduces the
// paper's Table 3 reference mix within a small tolerance.
func TestTable3Fractions(t *testing.T) {
	for _, spec := range Splash() {
		spec := spec.Scale(0.005) // keep the test fast
		g := spec.NewApp(0, 16, 42)
		c := drain(t, g, 1<<22)
		if c.instr == 0 {
			t.Fatalf("%s: no instructions", spec.Name)
		}
		check := func(what string, got, want float64) {
			if math.Abs(got-want) > 0.015 {
				t.Errorf("%s %s fraction = %.3f, want %.3f (Table 3)", spec.Name, what, got, want)
			}
		}
		n := float64(c.instr)
		check("read", float64(c.reads)/n, spec.ReadFrac)
		check("write", float64(c.writes)/n, spec.WriteFrac)
		check("shared-read", float64(c.sharedReads)/n, spec.SharedReadFrac)
		check("shared-write", float64(c.sharedWrites)/n, spec.SharedWriteFrac)
	}
}

func TestInstructionBudgetSplitAcrossProcs(t *testing.T) {
	spec := Barnes().Scale(0.001)
	g := spec.NewApp(3, 16, 1)
	c := drain(t, g, 1<<22)
	want := spec.Instructions / 16
	if c.instr < want-2 || c.instr > want+2 {
		t.Fatalf("proc executed %d instructions, want ~%d", c.instr, want)
	}
	if c.barriers != int64(spec.Barriers) {
		t.Fatalf("barriers = %d, want %d", c.barriers, spec.Barriers)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() []Ref {
		g := Mp3d().Scale(0.0005).NewApp(2, 8, 7)
		var out []Ref
		for {
			r := g.Next()
			out = append(out, r)
			if r.Kind == End {
				return out
			}
		}
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProcsGetDistinctStreams(t *testing.T) {
	g0 := Water().Scale(0.001).NewApp(0, 8, 7)
	g1 := Water().Scale(0.001).NewApp(1, 8, 7)
	same := 0
	total := 0
	for i := 0; i < 500; i++ {
		a, b := g0.Next(), g1.Next()
		if a.Kind == End || b.Kind == End {
			break
		}
		total++
		if a == b {
			same++
		}
	}
	if total == 0 || same > total/2 {
		t.Fatalf("streams nearly identical: %d/%d equal", same, total)
	}
}

func TestSnapshotRestoreReplaysExactly(t *testing.T) {
	g := Cholesky().Scale(0.001).NewApp(1, 4, 99)
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	snap := g.Snapshot()
	var first []Ref
	for i := 0; i < 500; i++ {
		first = append(first, g.Next())
	}
	g.Restore(snap)
	for i, want := range first {
		if got := g.Next(); got != want {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestAddressRegions(t *testing.T) {
	spec := Barnes().Scale(0.001)
	g := spec.NewApp(5, 16, 3)
	privLo := PrivateBase + 5*PrivateStride
	privHi := privLo + uint64(spec.PrivateBytes)
	sharedHi := SharedBase + uint64(spec.SharedBytes)
	for {
		r := g.Next()
		if r.Kind == End {
			break
		}
		if r.Kind != Read && r.Kind != Write {
			continue
		}
		if r.Shared {
			if r.Addr < SharedBase || r.Addr >= sharedHi {
				t.Fatalf("shared ref outside region: %#x", r.Addr)
			}
		} else {
			if r.Addr < privLo || r.Addr >= privHi {
				t.Fatalf("private ref outside region: %#x", r.Addr)
			}
		}
		if r.Addr%8 != 0 {
			t.Fatalf("unaligned address %#x", r.Addr)
		}
	}
}

func TestMigratoryObjectsRotate(t *testing.T) {
	spec := MigratoryKernel().Scale(0.01)
	g := spec.NewApp(0, 4, 1)
	seen := map[uint64]bool{}
	for {
		r := g.Next()
		if r.Kind == End {
			break
		}
		if r.Kind == Read || r.Kind == Write {
			seen[r.Addr/itemBytes] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("migratory kernel touched only %d items", len(seen))
	}
}

func TestWorkingSetRelations(t *testing.T) {
	// Mp3d's working set is nine times Barnes' (§4.2.3).
	ratio := float64(Mp3d().SharedBytes) / float64(Barnes().SharedBytes)
	if ratio != 9 {
		t.Fatalf("mp3d/barnes working-set ratio = %v, want 9", ratio)
	}
}

func TestScaleClampsToOne(t *testing.T) {
	s := Barnes().Scale(1e-12)
	if s.Instructions != 1 {
		t.Fatalf("scaled instructions = %d, want clamp to 1", s.Instructions)
	}
}

func TestScriptGenerator(t *testing.T) {
	s := NewScript("t", []Ref{R(0), W(8), I(5), B(), R(16)})
	if s.Name() != "t" {
		t.Fatal("name")
	}
	if got := s.Next(); got != R(0) {
		t.Fatalf("first = %+v", got)
	}
	snap := s.Snapshot()
	if got := s.Next(); got != W(8) {
		t.Fatalf("second = %+v", got)
	}
	s.Restore(snap)
	if got := s.Next(); got != W(8) {
		t.Fatalf("after restore = %+v", got)
	}
	for i := 0; i < 3; i++ {
		s.Next()
	}
	if got := s.Next(); got.Kind != End {
		t.Fatalf("want End, got %+v", got)
	}
	if got := s.Next(); got.Kind != End {
		t.Fatal("End not sticky")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := Barnes()
	bad.SharedReadFrac = bad.ReadFrac + 0.1
	if bad.Validate() == nil {
		t.Error("accepted shared > total reads")
	}
	bad = Barnes()
	bad.Instructions = 0
	if bad.Validate() == nil {
		t.Error("accepted zero instructions")
	}
	bad = Barnes()
	bad.ReadFrac = 0.9
	bad.WriteFrac = 0.2
	if bad.Validate() == nil {
		t.Error("accepted reference fraction >= 1")
	}
	bad = Barnes()
	bad.Migratory = 0.5
	bad.MigratoryObjects = 0
	if bad.Validate() == nil {
		t.Error("accepted migratory without objects")
	}
}

package workload

// The four SPLASH applications of the paper's Table 3, reduced to their
// aggregate properties. Instruction totals are the paper's values; use
// Spec.Scale to shorten runs (the working sets stay fixed — the paper's
// applications are small relative to the 8 MB attraction memories, so no
// capacity replacement occurs).
//
// Working-set sizes keep the paper's relations: Mp3d's set is nine times
// Barnes' (§4.2.3) and Cholesky's is large (its T_commit is among the
// biggest); Barnes uses many mostly-read shared bodies (52% of its
// checkpoint replications avoid data transfers at 5/s); Mp3d and Water
// use migratory data ("the applications often use migratory data that
// generate write misses anyway").

// Barnes returns the Barnes-Hut spec (1536 bodies, 11 iterations).
func Barnes() Spec {
	return Spec{
		Name:             "barnes",
		Instructions:     190_000_000,
		ReadFrac:         0.184,
		WriteFrac:        0.107,
		SharedReadFrac:   0.042,
		SharedWriteFrac:  0.001,
		SharedBytes:      256 << 10,
		PrivateBytes:     48 << 10,
		ReadOnlyFrac:     0.75,
		Migratory:        0.05,
		MigratoryObjects: 64,
		MigratoryPhase:   2_000,
		Locality:         0.55,
		HotBytes:         1 << 10,
		WindowBytes:      512,
		DriftInstr:       12_000,
		Barriers:         11,
	}
}

// Cholesky returns the Cholesky spec (bcsstk14).
func Cholesky() Spec {
	return Spec{
		Name:             "cholesky",
		Instructions:     53_100_000,
		ReadFrac:         0.233,
		WriteFrac:        0.062,
		SharedReadFrac:   0.188,
		SharedWriteFrac:  0.033,
		SharedBytes:      1536 << 10,
		PrivateBytes:     24 << 10,
		ReadOnlyFrac:     0.30,
		Migratory:        0.10,
		MigratoryObjects: 128,
		MigratoryPhase:   2_500,
		Locality:         0.45,
		HotBytes:         1 << 10,
		WindowBytes:      1 << 10,
		DriftInstr:       8_000,
		Barriers:         6,
	}
}

// Mp3d returns the Mp3d spec (50 K molecules, 8 steps): the write-heavy,
// large-working-set stress case of the paper.
func Mp3d() Spec {
	return Spec{
		Name:             "mp3d",
		Instructions:     48_300_000,
		ReadFrac:         0.163,
		WriteFrac:        0.097,
		SharedReadFrac:   0.131,
		SharedWriteFrac:  0.083,
		SharedBytes:      2304 << 10, // 9x Barnes
		PrivateBytes:     16 << 10,
		ReadOnlyFrac:     0.05,
		Migratory:        0.60,
		MigratoryObjects: 2048,
		MigratoryPhase:   1_200,
		Locality:         0.35,
		HotBytes:         1 << 10,
		WindowBytes:      1 << 10,
		DriftInstr:       8_000,
		Barriers:         8,
	}
}

// Water returns the Water spec (120/144 molecules, 2 iterations).
func Water() Spec {
	return Spec{
		Name:             "water",
		Instructions:     78_600_000,
		ReadFrac:         0.237,
		WriteFrac:        0.069,
		SharedReadFrac:   0.043,
		SharedWriteFrac:  0.005,
		SharedBytes:      192 << 10,
		PrivateBytes:     32 << 10,
		ReadOnlyFrac:     0.40,
		Migratory:        0.35,
		MigratoryObjects: 144,
		MigratoryPhase:   800,
		Locality:         0.60,
		HotBytes:         1 << 10,
		WindowBytes:      512,
		DriftInstr:       25_000,
		Barriers:         2,
	}
}

// Splash returns all four Table 3 applications in the paper's order.
func Splash() []Spec {
	return []Spec{Barnes(), Cholesky(), Mp3d(), Water()}
}

// ByName returns the named preset (barnes, cholesky, mp3d, water) or
// false.
func ByName(name string) (Spec, bool) {
	for _, s := range Splash() {
		if s.Name == name {
			return s, true
		}
	}
	switch name {
	case "uniform":
		return Uniform(), true
	case "private":
		return Private(), true
	case "migratory":
		return MigratoryKernel(), true
	}
	return Spec{}, false
}

// Uniform is a micro-kernel: uniformly random shared reads and writes,
// no private data, no locality — the worst case for the ECP's pollution
// effect.
func Uniform() Spec {
	return Spec{
		Name:            "uniform",
		Instructions:    10_000_000,
		ReadFrac:        0.20,
		WriteFrac:       0.10,
		SharedReadFrac:  0.20,
		SharedWriteFrac: 0.10,
		SharedBytes:     512 << 10,
		PrivateBytes:    0,
		Locality:        0,
		Barriers:        4,
	}
}

// Private is a micro-kernel with no shared data at all: the ECP's
// overhead is then almost purely T_create on private pages.
func Private() Spec {
	return Spec{
		Name:         "private",
		Instructions: 10_000_000,
		ReadFrac:     0.20,
		WriteFrac:    0.10,
		SharedBytes:  itemBytes, // minimum non-zero shared region
		PrivateBytes: 64 << 10,
		Locality:     0.5,
		Barriers:     2,
	}
}

// MigratoryKernel is a micro-kernel of purely migratory shared objects:
// every object bounces between processors, maximising write misses and
// Shared-CK1 write injections.
func MigratoryKernel() Spec {
	return Spec{
		Name:             "migratory",
		Instructions:     10_000_000,
		ReadFrac:         0.15,
		WriteFrac:        0.15,
		SharedReadFrac:   0.15,
		SharedWriteFrac:  0.15,
		SharedBytes:      256 << 10,
		PrivateBytes:     0,
		Migratory:        1.0,
		MigratoryObjects: 512,
		MigratoryPhase:   500,
		Locality:         0,
		Barriers:         4,
	}
}

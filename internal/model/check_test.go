package model

import (
	"bytes"
	"strings"
	"testing"

	"coma/internal/proto"
)

// TestCheckGoldenCounts pins the reachable state space of the small
// configurations. A change here means the abstract model changed — that
// is fine when intentional, but must be a conscious decision.
func TestCheckGoldenCounts(t *testing.T) {
	for _, tc := range []struct {
		cfg                        CheckConfig
		states, transitions, stuck int
		edges                      int
	}{
		// At 3 nodes the six Inv-CK movement edges are unreachable and
		// establishments can wedge (the paper's >= 4 nodes argument).
		{CheckConfig{Items: 1, Nodes: 3}, 74, 519, 6, 29},
		{CheckConfig{Items: 2, Nodes: 3}, 4090, 36831, 420, 29},
		// At 4 nodes the model reaches the full 35-edge spec and never
		// wedges.
		{CheckConfig{Items: 1, Nodes: 4}, 352, 3596, 0, 35},
	} {
		r, err := Check(tc.cfg)
		if err != nil {
			t.Fatalf("Check(%+v): %v", tc.cfg, err)
		}
		if len(r.Violations) != 0 {
			var sb strings.Builder
			r.Write(&sb)
			t.Fatalf("Check(%+v) found violations:\n%s", tc.cfg, sb.String())
		}
		if r.States != tc.states || r.Transitions != tc.transitions ||
			r.CreateStuck != tc.stuck || r.Edges.Len() != tc.edges {
			t.Errorf("Check(%+v) = %d states, %d transitions, %d stuck, %d edges; want %d, %d, %d, %d",
				tc.cfg, r.States, r.Transitions, r.CreateStuck, r.Edges.Len(),
				tc.states, tc.transitions, tc.stuck, tc.edges)
		}
	}
}

// TestCheckReachesFullSpec asserts edge-exact agreement between the
// model's reachable edges and the spec at the paper's minimum viable
// machine size.
func TestCheckReachesFullSpec(t *testing.T) {
	r, err := Check(CheckConfig{Items: 1, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(SpecTable(), r.Edges)
	if !d.Clean() {
		var sb strings.Builder
		d.Write(&sb, SpecTable(), r.Edges)
		t.Fatalf("model edges drift from spec at 1x4:\n%s", sb.String())
	}
}

// TestCheckSpecMutation corrupts one spec edge and asserts the diff the
// check command relies on turns dirty — the model still reaches the
// dropped edge, so removal is detected.
func TestCheckSpecMutation(t *testing.T) {
	r, err := Check(CheckConfig{Items: 1, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	corrupted := NewTable("spec")
	dropped := Edge{proto.PreCommit1, proto.Invalid}
	found := false
	for _, e := range SpecTable().Edges() {
		if e == dropped {
			found = true
			continue
		}
		corrupted.Add(e.From, e.To, "kept")
	}
	if !found {
		t.Fatalf("spec no longer lists %v; pick another mutation target", dropped)
	}
	d := Diff(corrupted, r.Edges)
	if d.Clean() {
		t.Fatalf("dropping %v from the spec went undetected", dropped)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != dropped {
		t.Errorf("expected exactly the dropped edge on the model side, got %v", d.OnlyB)
	}
}

// TestCheckDeterminism renders two independent runs and requires
// byte-identical reports.
func TestCheckDeterminism(t *testing.T) {
	render := func() []byte {
		r, err := Check(CheckConfig{Items: 2, Nodes: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Write(&buf)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two model-checking runs rendered different reports")
	}
}

// TestCheckRejectsTinyConfigs covers the argument validation.
func TestCheckRejectsTinyConfigs(t *testing.T) {
	if _, err := Check(CheckConfig{Items: 0, Nodes: 4}); err == nil {
		t.Error("0 items accepted")
	}
	if _, err := Check(CheckConfig{Items: 1, Nodes: 1}); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := Check(CheckConfig{Items: 2, Nodes: 4, MaxStates: 100}); err == nil {
		t.Error("state cap not enforced")
	}
}

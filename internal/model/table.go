// Package model checks the Extended Coherence Protocol's implementation
// against its specification from two independent directions:
//
//   - Extraction (extract.go): a go/ast dataflow pass over the mesh and
//     bus protocol engines that finds every state-mutation site, resolves
//     which (From, To) transitions each site can realise, and emits a
//     code-derived transition table.
//   - Exhaustive checking (check.go): an explicit-state BFS model checker
//     over an abstract ECP configuration (k items x n abstract nodes)
//     that verifies the paper's safety invariants on every reachable
//     state and reports the reachable edge set.
//
// Both produce a Table comparable against SpecTable (the reference matrix
// proto.ECPTransitions), turning "the table is kept in sync by a comment"
// into a machine-checked property: cmd/comamodel diffs spec vs code vs a
// runtime coverage trace and exits non-zero on any drift.
package model

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"coma/internal/proto"
)

// States lists every coherence state in enum order.
var States = []proto.State{
	proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
	proto.SharedCK1, proto.SharedCK2, proto.InvCK1, proto.InvCK2,
	proto.PreCommit1, proto.PreCommit2,
}

// StateSet is a bitmask over the ten coherence states.
type StateSet uint16

// SetOf builds a set from explicit states.
func SetOf(sts ...proto.State) StateSet {
	var s StateSet
	for _, st := range sts {
		s |= 1 << st
	}
	return s
}

// AllStates is the full set.
func AllStates() StateSet { return SetOf(States...) }

// Has reports membership.
func (s StateSet) Has(st proto.State) bool { return s&(1<<st) != 0 }

// Empty reports whether no state is in the set.
func (s StateSet) Empty() bool { return s == 0 }

// Len counts members.
func (s StateSet) Len() int {
	n := 0
	for _, st := range States {
		if s.Has(st) {
			n++
		}
	}
	return n
}

// With returns the set plus one state.
func (s StateSet) With(st proto.State) StateSet { return s | 1<<st }

// Without returns the set minus one state.
func (s StateSet) Without(st proto.State) StateSet { return s &^ (1 << st) }

// Intersect returns the intersection.
func (s StateSet) Intersect(o StateSet) StateSet { return s & o }

// Union returns the union.
func (s StateSet) Union(o StateSet) StateSet { return s | o }

// Complement returns every state not in the set.
func (s StateSet) Complement() StateSet { return AllStates() &^ s }

// List returns the members in enum order.
func (s StateSet) List() []proto.State {
	var out []proto.State
	for _, st := range States {
		if s.Has(st) {
			out = append(out, st)
		}
	}
	return out
}

// String renders "Invalid|Shared" (or "(none)").
func (s StateSet) String() string {
	if s == 0 {
		return "(none)"
	}
	parts := make([]string, 0, 10)
	for _, st := range s.List() {
		parts = append(parts, st.String())
	}
	return strings.Join(parts, "|")
}

// ClassSet builds the set of states satisfying a predicate — used to
// resolve classifier-method guards (st.Replaceable() etc.) against the
// actual proto definitions instead of a hand-copied list.
func ClassSet(pred func(proto.State) bool) StateSet {
	var s StateSet
	for _, st := range States {
		if pred(st) {
			s |= 1 << st
		}
	}
	return s
}

// Edge is one (From, To) protocol transition.
type Edge struct {
	From, To proto.State
}

func (e Edge) String() string { return fmt.Sprintf("%v -> %v", e.From, e.To) }

// less orders edges by (From, To) for deterministic output.
func (e Edge) less(o Edge) bool {
	if e.From != o.From {
		return e.From < o.From
	}
	return e.To < o.To
}

// Table is a set of transitions with provenance strings (the spec's Via
// descriptions, or the extractor's source positions).
type Table struct {
	Name string
	m    map[Edge][]string
}

// NewTable returns an empty named table.
func NewTable(name string) *Table {
	return &Table{Name: name, m: make(map[Edge][]string)}
}

// Add records an edge with one provenance string. Self-loops are not
// transitions and are dropped. Duplicate provenance is kept once.
func (t *Table) Add(from, to proto.State, via string) {
	if from == to {
		return
	}
	e := Edge{from, to}
	for _, v := range t.m[e] {
		if v == via {
			return
		}
	}
	t.m[e] = append(t.m[e], via)
}

// Has reports whether the table contains the edge.
func (t *Table) Has(e Edge) bool { _, ok := t.m[e]; return ok }

// Len counts distinct edges.
func (t *Table) Len() int { return len(t.m) }

// Edges returns the distinct edges sorted by (From, To).
func (t *Table) Edges() []Edge {
	out := make([]Edge, 0, len(t.m))
	for e := range t.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Provenance returns the sorted provenance strings of an edge.
func (t *Table) Provenance(e Edge) []string {
	out := append([]string(nil), t.m[e]...)
	sort.Strings(out)
	return out
}

// Write renders the table deterministically.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "%s: %d edges\n", t.Name, t.Len())
	for _, e := range t.Edges() {
		fmt.Fprintf(w, "  %-13v -> %-13v  %s\n", e.From, e.To,
			strings.Join(t.Provenance(e), "; "))
	}
}

// SpecTable builds the reference table from proto.ECPTransitions.
func SpecTable() *Table {
	t := NewTable("spec")
	for _, tr := range proto.ECPTransitions() {
		t.Add(tr.From, tr.To, tr.Via)
	}
	return t
}

// DiffResult lists the edges present in only one of two tables.
type DiffResult struct {
	AName, BName string
	OnlyA, OnlyB []Edge
}

// Clean reports whether the tables agree.
func (d *DiffResult) Clean() bool { return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 }

// Write renders the differences (nothing when clean).
func (d *DiffResult) Write(w io.Writer, a, b *Table) {
	for _, e := range d.OnlyA {
		fmt.Fprintf(w, "  only in %s: %-13v -> %-13v  %s\n", d.AName, e.From, e.To,
			strings.Join(a.Provenance(e), "; "))
	}
	for _, e := range d.OnlyB {
		fmt.Fprintf(w, "  only in %s: %-13v -> %-13v  %s\n", d.BName, e.From, e.To,
			strings.Join(b.Provenance(e), "; "))
	}
}

// Diff compares two tables edge-wise.
func Diff(a, b *Table) *DiffResult {
	d := &DiffResult{AName: a.Name, BName: b.Name}
	for _, e := range a.Edges() {
		if !b.Has(e) {
			d.OnlyA = append(d.OnlyA, e)
		}
	}
	for _, e := range b.Edges() {
		if !a.Has(e) {
			d.OnlyB = append(d.OnlyB, e)
		}
	}
	return d
}

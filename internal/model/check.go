package model

import (
	"fmt"
	"io"
	"sort"

	"coma/internal/proto"
)

// CheckConfig sizes the abstract ECP configuration the model checker
// explores: k items replicated across n abstract nodes. Every protocol
// edge is a per-item property, so Items=1 already reaches the full edge
// set; Items=2 additionally exercises cross-item coupling through the
// shared checkpoint rounds. Nodes=4 is the smallest machine on which
// establishment never wedges (the paper's four-irreplaceable-pages
// argument); at Nodes=3 the checker reports create-phase dead ends.
type CheckConfig struct {
	Items int
	Nodes int
	// MaxStates aborts exploration beyond this many reachable states
	// (0 means the 4_000_000 default).
	MaxStates int
}

// Violation is one invariant breach with the action trace that reaches
// it from the initial (all-Invalid) configuration.
type Violation struct {
	Invariant string
	State     string
	Trace     []string
}

// CheckResult is the outcome of an exhaustive exploration.
type CheckResult struct {
	Config      CheckConfig
	States      int    // distinct reachable configurations
	Transitions int    // explored (state, action) pairs
	CreateStuck int    // states where an establishment cannot finish (Nodes < 4)
	Edges       *Table // protocol edges realised by some reachable transition
	Violations  []Violation
}

// Write renders the result deterministically.
func (r *CheckResult) Write(w io.Writer) {
	fmt.Fprintf(w, "model: %d items x %d nodes: %d states, %d transitions, %d edges\n",
		r.Config.Items, r.Config.Nodes, r.States, r.Transitions, r.Edges.Len())
	if r.CreateStuck > 0 {
		fmt.Fprintf(w, "  create-phase dead ends: %d (the ECP needs >= 4 nodes; only failure can unwedge these)\n",
			r.CreateStuck)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n    state: %s\n", v.Invariant, v.State)
		for _, step := range v.Trace {
			fmt.Fprintf(w, "    via: %s\n", step)
		}
	}
	r.Edges.Write(w)
}

// mstate is one packed configuration: byte 0 is the phase (0 normal,
// 1 establishing), then Items x Nodes slot states row-major. Partner
// pointers are not stored: the invariants keep every recovery-copy kind
// unique per item, so a copy's partner is the unique matching copy.
type mstate string

const (
	phaseNormal = 0
	phaseCkpt   = 1
)

type checker struct {
	k, n      int
	maxStates int

	edges       *Table
	seen        map[mstate]struct{}
	pred        map[mstate]predEntry
	queue       []mstate
	transitions int
	stuck       int
	violations  []Violation
}

type predEntry struct {
	prev   mstate
	action string
}

// Check explores every reachable configuration by BFS and returns the
// realised edge set plus any invariant violations.
func Check(cfg CheckConfig) (*CheckResult, error) {
	if cfg.Items < 1 || cfg.Nodes < 2 {
		return nil, fmt.Errorf("model: need at least 1 item and 2 nodes, have %d x %d", cfg.Items, cfg.Nodes)
	}
	max := cfg.MaxStates
	if max == 0 {
		max = 4_000_000
	}
	c := &checker{
		k: cfg.Items, n: cfg.Nodes, maxStates: max,
		edges: NewTable("model"),
		seen:  make(map[mstate]struct{}),
		pred:  make(map[mstate]predEntry),
	}
	init := c.initial()
	c.visit(init, "", "initial")
	for len(c.queue) > 0 {
		s := c.queue[0]
		c.queue = c.queue[1:]
		c.explore(s)
		if len(c.seen) > c.maxStates {
			return nil, fmt.Errorf("model: state space exceeds %d states at %d items x %d nodes",
				c.maxStates, cfg.Items, cfg.Nodes)
		}
	}
	sort.Slice(c.violations, func(i, j int) bool {
		if c.violations[i].Invariant != c.violations[j].Invariant {
			return c.violations[i].Invariant < c.violations[j].Invariant
		}
		return c.violations[i].State < c.violations[j].State
	})
	const maxReported = 10
	if len(c.violations) > maxReported {
		c.violations = c.violations[:maxReported]
	}
	return &CheckResult{
		Config:      cfg,
		States:      len(c.seen),
		Transitions: c.transitions,
		CreateStuck: c.stuck,
		Edges:       c.edges,
		Violations:  c.violations,
	}, nil
}

func (c *checker) initial() mstate {
	b := make([]byte, 1+c.k*c.n)
	return mstate(b)
}

func (c *checker) at(s []byte, i, j int) proto.State { return proto.State(s[1+i*c.n+j]) }
func (c *checker) set(s []byte, i, j int, st proto.State) {
	s[1+i*c.n+j] = byte(st)
}

// trace reconstructs the action path to a state for counterexamples.
func (c *checker) trace(s mstate) []string {
	var steps []string
	for {
		p, ok := c.pred[s]
		if !ok || p.action == "initial" {
			break
		}
		steps = append(steps, p.action)
		s = p.prev
	}
	for l, r := 0, len(steps)-1; l < r; l, r = l+1, r-1 {
		steps[l], steps[r] = steps[r], steps[l]
	}
	return steps
}

func (c *checker) violate(s mstate, inv string) {
	c.violations = append(c.violations, Violation{
		Invariant: inv,
		State:     c.render(s),
		Trace:     c.trace(s),
	})
}

// render prints a configuration compactly for diagnostics.
func (c *checker) render(s mstate) string {
	b := []byte(s)
	out := fmt.Sprintf("phase=%d", b[0])
	for i := 0; i < c.k; i++ {
		out += fmt.Sprintf(" item%d[", i)
		for j := 0; j < c.n; j++ {
			if j > 0 {
				out += " "
			}
			out += c.at(b, i, j).String()
		}
		out += "]"
	}
	return out
}

// visit enqueues a successor, recording the realised edges regardless of
// whether the state was seen before (an edge is reachable the first time
// any transition realises it).
func (c *checker) visit(next mstate, prev mstate, action string) {
	if _, ok := c.seen[next]; ok {
		return
	}
	c.seen[next] = struct{}{}
	if action != "initial" {
		c.pred[next] = predEntry{prev: prev, action: action}
	}
	c.checkInvariants(next)
	c.queue = append(c.queue, next)
}

// step applies one action: records its protocol edges and the successor.
func (c *checker) step(prev mstate, action string, next []byte, edges []Edge) {
	c.transitions++
	for _, e := range edges {
		c.edges.Add(e.From, e.To, action)
	}
	c.visit(mstate(next), prev, action)
}

func (c *checker) copyOf(s mstate) []byte {
	b := make([]byte, len(s))
	copy(b, s)
	return b
}

// explore generates every enabled action of one configuration in a
// fixed, deterministic order.
func (c *checker) explore(s mstate) {
	b := []byte(s)
	phase := b[0]
	if phase == phaseNormal {
		for j := 0; j < c.n; j++ {
			for i := 0; i < c.k; i++ {
				c.read(s, i, j)
				c.write(s, i, j)
				c.evict(s, i, j)
			}
		}
		c.ckptBegin(s)
	} else {
		c.createSteps(s)
		c.commit(s)
	}
	for f := 0; f < c.n; f++ {
		c.fail(s, f)
	}
}

// viableTargets lists the nodes whose slot for the item may be
// overwritten by an injected copy (the paper's Invalid-or-Shared victim
// rule), in ring order from the source.
func (c *checker) viableTargets(b []byte, i, j int) []int {
	var out []int
	for d := 1; d < c.n; d++ {
		t := (j + d) % c.n
		st := c.at(b, i, t)
		if st == proto.Invalid || st == proto.Shared {
			out = append(out, t)
		}
	}
	return out
}

// moveCopy generates the injection successors that move node j's copy of
// item i to each viable target (replacement injections and the
// inject-away step of accesses to local recovery copies).
func (c *checker) moveCopy(s mstate, i, j int, why string) {
	b := []byte(s)
	st := c.at(b, i, j)
	for _, t := range c.viableTargets(b, i, j) {
		nb := c.copyOf(s)
		victim := c.at(nb, i, t)
		c.set(nb, i, t, st)
		c.set(nb, i, j, proto.Invalid)
		edges := []Edge{{victim, st}, {st, proto.Invalid}}
		c.step(s, fmt.Sprintf("%s n%d->n%d item%d (%v over %v)", why, j, t, i, st, victim), nb, edges)
	}
}

// read models a read miss by node j (phase 0 only).
func (c *checker) read(s mstate, i, j int) {
	b := []byte(s)
	switch st := c.at(b, i, j); st {
	case proto.InvCK1, proto.InvCK2:
		// Table 1: a read of a local Inv-CK copy first injects it away.
		c.moveCopy(s, i, j, "read-inject")
	case proto.Invalid:
		nb := c.copyOf(s)
		var edges []Edge
		action := fmt.Sprintf("read n%d item%d", j, i)
		for t := 0; t < c.n; t++ {
			if c.at(b, i, t) == proto.Exclusive {
				c.set(nb, i, t, proto.MasterShared)
				edges = append(edges, Edge{proto.Exclusive, proto.MasterShared})
				break
			}
		}
		c.set(nb, i, j, proto.Shared)
		edges = append(edges, Edge{proto.Invalid, proto.Shared})
		c.step(s, action, nb, edges)
	case proto.Shared, proto.MasterShared, proto.Exclusive,
		proto.SharedCK1, proto.SharedCK2, proto.PreCommit1, proto.PreCommit2:
		// Readable locally (or unreachable transient): no action.
	}
}

// write models a write by node j (phase 0 only).
func (c *checker) write(s mstate, i, j int) {
	b := []byte(s)
	switch st := c.at(b, i, j); st {
	case proto.InvCK1, proto.InvCK2, proto.SharedCK1, proto.SharedCK2:
		// Table 1: the local recovery copy is injected away first; the
		// write itself re-fires as a follow-up action.
		c.moveCopy(s, i, j, "write-inject")
		return
	case proto.Exclusive:
		return // write hit, no state change
	case proto.Invalid, proto.Shared, proto.MasterShared:
		nb := c.copyOf(s)
		var edges []Edge
		for t := 0; t < c.n; t++ {
			if t == j {
				continue
			}
			switch tst := c.at(b, i, t); tst {
			case proto.Shared, proto.Exclusive, proto.MasterShared:
				c.set(nb, i, t, proto.Invalid)
				edges = append(edges, Edge{tst, proto.Invalid})
			case proto.SharedCK1:
				c.set(nb, i, t, proto.InvCK1)
				edges = append(edges, Edge{proto.SharedCK1, proto.InvCK1})
			case proto.SharedCK2:
				c.set(nb, i, t, proto.InvCK2)
				edges = append(edges, Edge{proto.SharedCK2, proto.InvCK2})
			case proto.Invalid, proto.InvCK1, proto.InvCK2,
				proto.PreCommit1, proto.PreCommit2:
				// Nothing to invalidate (transients unreachable here).
			}
		}
		c.set(nb, i, j, proto.Exclusive)
		edges = append(edges, Edge{st, proto.Exclusive})
		c.step(s, fmt.Sprintf("write n%d item%d", j, i), nb, edges)
	case proto.PreCommit1, proto.PreCommit2:
		// Unreachable: writes are quiesced during establishment.
	}
}

// evict models a replacement of node j's copy (phase 0 only): Shared
// copies are silently dropped, pinned copies are injected elsewhere.
func (c *checker) evict(s mstate, i, j int) {
	b := []byte(s)
	switch st := c.at(b, i, j); st {
	case proto.Shared:
		nb := c.copyOf(s)
		c.set(nb, i, j, proto.Invalid)
		c.step(s, fmt.Sprintf("evict-drop n%d item%d", j, i), nb,
			[]Edge{{proto.Shared, proto.Invalid}})
	case proto.Exclusive, proto.MasterShared,
		proto.SharedCK1, proto.SharedCK2, proto.InvCK1, proto.InvCK2:
		c.moveCopy(s, i, j, "evict-inject")
	case proto.Invalid, proto.PreCommit1, proto.PreCommit2:
		// Nothing to evict (transients unreachable in phase 0).
	}
}

// ckptBegin starts an establishment round when there is anything for it
// to do (a modified copy to replicate or a stale Inv-CK pair to discard).
func (c *checker) ckptBegin(s mstate) {
	b := []byte(s)
	work := false
	for i := 0; i < c.k && !work; i++ {
		for j := 0; j < c.n && !work; j++ {
			switch c.at(b, i, j) {
			case proto.Exclusive, proto.MasterShared, proto.InvCK1, proto.InvCK2:
				work = true
			case proto.Invalid, proto.Shared, proto.SharedCK1, proto.SharedCK2,
				proto.PreCommit1, proto.PreCommit2:
			}
		}
	}
	if !work {
		return
	}
	nb := c.copyOf(s)
	nb[0] = phaseCkpt
	c.step(s, "ckpt-begin", nb, nil)
}

// createSteps replicates one modified copy per successor (phase 1): the
// owner becomes PreCommit1 and a PreCommit2 copy is created, either by
// upgrading an existing Shared replica (replication reuse) or by
// injection into a viable slot.
func (c *checker) createSteps(s mstate) {
	b := []byte(s)
	enabled := false
	stuckItem := false
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.n; j++ {
			st := c.at(b, i, j)
			if st != proto.Exclusive && st != proto.MasterShared {
				continue
			}
			any := false
			if st == proto.MasterShared {
				for t := 0; t < c.n; t++ {
					if t != j && c.at(b, i, t) == proto.Shared {
						nb := c.copyOf(s)
						c.set(nb, i, j, proto.PreCommit1)
						c.set(nb, i, t, proto.PreCommit2)
						c.step(s, fmt.Sprintf("create-reuse n%d/n%d item%d", j, t, i), nb,
							[]Edge{{proto.MasterShared, proto.PreCommit1}, {proto.Shared, proto.PreCommit2}})
						any = true
					}
				}
			}
			for _, t := range c.viableTargets(b, i, j) {
				nb := c.copyOf(s)
				victim := c.at(nb, i, t)
				c.set(nb, i, j, proto.PreCommit1)
				c.set(nb, i, t, proto.PreCommit2)
				c.step(s, fmt.Sprintf("create-inject n%d->n%d item%d (over %v)", j, t, i, victim), nb,
					[]Edge{{st, proto.PreCommit1}, {victim, proto.PreCommit2}})
				any = true
			}
			if any {
				enabled = true
			} else {
				stuckItem = true
			}
		}
	}
	// A modified copy with no Shared replica to reuse and no viable
	// injection slot wedges the establishment: only a failure (abort)
	// can leave this state. The paper's >= 4 nodes requirement exists
	// exactly to make this impossible.
	if stuckItem && !enabled {
		c.stuck++
	}
}

// commit finishes the establishment once every modified copy has been
// replicated: one atomic scan over all nodes (phase 1 -> 0).
func (c *checker) commit(s mstate) {
	b := []byte(s)
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.n; j++ {
			switch c.at(b, i, j) {
			case proto.Exclusive, proto.MasterShared:
				return // create phase still has work
			case proto.Invalid, proto.Shared, proto.SharedCK1, proto.SharedCK2,
				proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
			}
		}
	}
	nb := c.copyOf(s)
	var edges []Edge
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.n; j++ {
			switch c.at(b, i, j) {
			case proto.PreCommit1:
				c.set(nb, i, j, proto.SharedCK1)
				edges = append(edges, Edge{proto.PreCommit1, proto.SharedCK1})
			case proto.PreCommit2:
				c.set(nb, i, j, proto.SharedCK2)
				edges = append(edges, Edge{proto.PreCommit2, proto.SharedCK2})
			case proto.InvCK1:
				c.set(nb, i, j, proto.Invalid)
				edges = append(edges, Edge{proto.InvCK1, proto.Invalid})
			case proto.InvCK2:
				c.set(nb, i, j, proto.Invalid)
				edges = append(edges, Edge{proto.InvCK2, proto.Invalid})
			case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
				proto.SharedCK1, proto.SharedCK2:
			}
		}
	}
	nb[0] = phaseNormal
	c.step(s, "commit", nb, edges)
}

// fail wipes node f (fail-silent, no edges — the machine's AM Clear) and
// runs the atomic recovery: scan + reconfiguration. Injectable between
// any two protocol actions, in either phase — a phase-1 failure is the
// establishment abort, which realises the PreCommit -> Invalid edges.
func (c *checker) fail(s mstate, f int) {
	b := []byte(s)

	// Which items had a committed recovery pair before the failure? The
	// paper's guarantee: those survive any single-node loss.
	committed := make([]bool, c.k)
	for i := 0; i < c.k; i++ {
		committed[i] = c.pairComplete(b, i)
	}

	nb := c.copyOf(s)
	var edges []Edge
	// Fail-silent wipe: no protocol transitions are recorded, exactly
	// like the replayer's handling of KFault.
	for i := 0; i < c.k; i++ {
		c.set(nb, i, f, proto.Invalid)
	}
	// Recovery scan on every surviving node.
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.n; j++ {
			if j == f {
				continue
			}
			switch st := c.at(nb, i, j); st {
			case proto.Shared, proto.Exclusive, proto.MasterShared,
				proto.PreCommit1, proto.PreCommit2:
				c.set(nb, i, j, proto.Invalid)
				edges = append(edges, Edge{st, proto.Invalid})
			case proto.InvCK1:
				c.set(nb, i, j, proto.SharedCK1)
				edges = append(edges, Edge{proto.InvCK1, proto.SharedCK1})
			case proto.InvCK2:
				c.set(nb, i, j, proto.SharedCK2)
				edges = append(edges, Edge{proto.InvCK2, proto.SharedCK2})
			case proto.Invalid, proto.SharedCK1, proto.SharedCK2:
			}
		}
	}
	// Reconfiguration: re-pair every surviving recovery copy whose
	// partner died (promotion first, then a deterministic first-fit
	// injection of the fresh secondary).
	action := fmt.Sprintf("fail n%d", f)
	for i := 0; i < c.k; i++ {
		c1, c2 := -1, -1
		for j := 0; j < c.n; j++ {
			switch c.at(nb, i, j) {
			case proto.SharedCK1:
				c1 = j
			case proto.SharedCK2:
				c2 = j
			case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
				proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
			}
		}
		switch {
		case c1 >= 0 && c2 < 0:
			if !c.installFresh(nb, i, c1, &edges) {
				c.step(s, action, nb, edges)
				c.violate(mstate(nb), fmt.Sprintf("reconfiguration found no slot for item %d's fresh secondary", i))
				return
			}
		case c2 >= 0 && c1 < 0:
			c.set(nb, i, c2, proto.SharedCK1)
			edges = append(edges, Edge{proto.SharedCK2, proto.SharedCK1})
			if !c.installFresh(nb, i, c2, &edges) {
				c.step(s, action, nb, edges)
				c.violate(mstate(nb), fmt.Sprintf("reconfiguration found no slot for item %d's fresh secondary", i))
				return
			}
		}
	}
	nb[0] = phaseNormal
	c.step(s, action, nb, edges)

	// Persistence: every committed pair survived the loss.
	for i := 0; i < c.k; i++ {
		if committed[i] && !c.ckPair(nb, i) {
			c.violate(mstate(nb), fmt.Sprintf("item %d lost its committed recovery pair to a single failure (node %d)", i, f))
		}
	}
}

// installFresh writes a fresh SharedCK2 copy into the first viable slot
// in ring order after the primary holder, recording the install edge.
func (c *checker) installFresh(nb []byte, i, from int, edges *[]Edge) bool {
	for d := 1; d < c.n; d++ {
		t := (from + d) % c.n
		st := c.at(nb, i, t)
		if st == proto.Invalid || st == proto.Shared {
			c.set(nb, i, t, proto.SharedCK2)
			*edges = append(*edges, Edge{st, proto.SharedCK2})
			return true
		}
	}
	return false
}

// pairComplete reports whether the item holds a complete committed
// recovery pair (Shared-CK copies or their Inv-CK shadows).
func (c *checker) pairComplete(b []byte, i int) bool {
	c1, c2 := false, false
	for j := 0; j < c.n; j++ {
		switch c.at(b, i, j) {
		case proto.SharedCK1, proto.InvCK1:
			c1 = true
		case proto.SharedCK2, proto.InvCK2:
			c2 = true
		case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
			proto.PreCommit1, proto.PreCommit2:
		}
	}
	return c1 && c2
}

// ckPair reports a complete restored Shared-CK pair on distinct nodes.
func (c *checker) ckPair(b []byte, i int) bool {
	c1, c2 := -1, -1
	for j := 0; j < c.n; j++ {
		switch c.at(b, i, j) {
		case proto.SharedCK1:
			c1 = j
		case proto.SharedCK2:
			c2 = j
		case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
			proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
		}
	}
	return c1 >= 0 && c2 >= 0 && c1 != c2
}

// checkInvariants evaluates the paper's safety invariants on one
// reachable configuration.
func (c *checker) checkInvariants(s mstate) {
	b := []byte(s)
	phase := b[0]
	for i := 0; i < c.k; i++ {
		owners := 0
		counts := make(map[proto.State]int)
		for j := 0; j < c.n; j++ {
			st := c.at(b, i, j)
			counts[st]++
			if st.Owner() {
				owners++
			}
		}
		// Single master: at most one owner-state copy per item.
		if owners > 1 {
			c.violate(s, fmt.Sprintf("item %d has %d owner copies", i, owners))
		}
		// Recovery-copy uniqueness: each kind at most once.
		for _, st := range []proto.State{proto.SharedCK1, proto.SharedCK2,
			proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2} {
			if counts[st] > 1 {
				c.violate(s, fmt.Sprintf("item %d has %d %v copies", i, counts[st], st))
			}
		}
		// Pair completeness: the 1 and 2 copies of each recovery
		// generation exist together or not at all (the simulator pairs
		// them atomically under the item lock / bus tenure).
		if (counts[proto.SharedCK1]+counts[proto.InvCK1] > 0) !=
			(counts[proto.SharedCK2]+counts[proto.InvCK2] > 0) {
			c.violate(s, fmt.Sprintf("item %d has a half recovery pair", i))
		}
		if (counts[proto.SharedCK1] > 0) != (counts[proto.SharedCK2] > 0) {
			c.violate(s, fmt.Sprintf("item %d mixes Shared-CK and Inv-CK generations", i))
		}
		if (counts[proto.PreCommit1] > 0) != (counts[proto.PreCommit2] > 0) {
			c.violate(s, fmt.Sprintf("item %d has a half pre-commit pair", i))
		}
		// Commit atomicity: transient pre-commit copies exist only
		// while an establishment is in flight.
		if phase == phaseNormal && (counts[proto.PreCommit1] > 0 || counts[proto.PreCommit2] > 0) {
			c.violate(s, fmt.Sprintf("item %d holds pre-commit copies outside an establishment", i))
		}
	}
}

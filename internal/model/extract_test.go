package model

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestExtractMatchesSpec is the conformance golden: both engines'
// code-derived transition tables must equal proto.ECPTransitions exactly.
func TestExtractMatchesSpec(t *testing.T) {
	root := moduleRoot(t)
	spec := SpecTable()
	if spec.Len() != 35 {
		t.Fatalf("spec has %d edges, want 35", spec.Len())
	}
	for _, engine := range []string{EngineMesh, EngineBus} {
		res, err := Extract(root, engine)
		if err != nil {
			t.Fatalf("Extract(%s): %v", engine, err)
		}
		for _, e := range res.Errors {
			t.Errorf("%s: audit error: %s", engine, e)
		}
		d := Diff(spec, res.Table)
		if !d.Clean() {
			var sb strings.Builder
			d.Write(&sb, spec, res.Table)
			t.Errorf("%s table drifts from spec:\n%s", engine, sb.String())
		}
		if len(res.Sites) == 0 {
			t.Errorf("%s: extractor found no mutation sites", engine)
		}
	}
}

// TestExtractSiteResolution spot-checks that guard narrowing (not just
// annotations) carries real weight: each engine must resolve most of its
// sites statically.
func TestExtractSiteResolution(t *testing.T) {
	root := moduleRoot(t)
	for _, engine := range []string{EngineMesh, EngineBus} {
		res, err := Extract(root, engine)
		if err != nil {
			t.Fatalf("Extract(%s): %v", engine, err)
		}
		annotated := 0
		for _, s := range res.Sites {
			if s.Annotated {
				annotated++
			}
		}
		static := len(res.Sites) - annotated
		if static < annotated {
			t.Errorf("%s: %d statically resolved vs %d annotated sites — the dataflow pass is not pulling its weight",
				engine, static, annotated)
		}
		t.Logf("%s: %d sites (%d static, %d annotated)", engine, len(res.Sites), static, annotated)
	}
}

// TestAuditAM pins that every slot-state write in internal/am flows
// through the audited helpers.
func TestAuditAM(t *testing.T) {
	root := moduleRoot(t)
	bad, err := AuditAM(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("unaudited slot write: %s", v)
	}
}

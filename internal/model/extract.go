package model

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"coma/internal/lint/loader"
	"coma/internal/proto"
)

// Engine names accepted by Extract.
const (
	EngineMesh = "mesh" // coma/internal/coherence (mesh/directory engine)
	EngineBus  = "bus"  // coma/internal/snoop (bus engine)
)

// enginePackages maps an engine name onto its import path.
var enginePackages = map[string]string{
	EngineMesh: "coma/internal/coherence",
	EngineBus:  "coma/internal/snoop",
}

// classifierSets resolves the proto.State classifier methods against the
// real proto definitions, so guard narrowing can never drift from the
// protocol package.
func classifierSets() map[string]StateSet {
	return map[string]StateSet{
		"Readable":            ClassSet(proto.State.Readable),
		"Writable":            ClassSet(proto.State.Writable),
		"Owner":               ClassSet(proto.State.Owner),
		"Recovery":            ClassSet(proto.State.Recovery),
		"CheckpointCommitted": ClassSet(proto.State.CheckpointCommitted),
		"Current":             ClassSet(proto.State.Current),
		"Replaceable":         ClassSet(proto.State.Replaceable),
		"Modified":            ClassSet(proto.State.Modified),
		"Primary":             ClassSet(proto.State.Primary),
	}
}

// Site is one resolved state-mutation site.
type Site struct {
	Pos  string // "file.go:line"
	From StateSet
	To   StateSet
	// Annotated marks sites whose From (or To) came from a
	// //coma:transition comment rather than guard narrowing.
	Annotated bool
}

// ExtractResult is the outcome of one engine's extraction pass.
type ExtractResult struct {
	Engine string
	Table  *Table
	Sites  []Site
	// Errors lists unresolved sites, orphan annotations and annotation
	// inconsistencies. A non-empty list means the audit failed: some
	// mutation site could not be proven to realise a known (From, To)
	// set.
	Errors []string
}

// annotation is one parsed //coma:transition comment.
type annotation struct {
	from, to StateSet
	file     string
	line     int
	used     bool
}

var annRe = regexp.MustCompile(`^coma:transition\s+(\S+)\s*->\s*(\S+)\s*$`)

// stateByName maps state names for annotation parsing.
var stateByName = func() map[string]proto.State {
	m := make(map[string]proto.State, len(States))
	for _, st := range States {
		m[st.String()] = st
	}
	return m
}()

func parseStateList(s string) (StateSet, error) {
	var set StateSet
	for _, name := range strings.Split(s, "|") {
		st, ok := stateByName[strings.TrimSpace(name)]
		if !ok {
			return 0, fmt.Errorf("unknown state %q", name)
		}
		set = set.With(st)
	}
	return set, nil
}

// Extract runs the dataflow pass over one engine package and returns its
// code-derived transition table. moduleDir is the module root (the
// directory holding go.mod).
func Extract(moduleDir, engine string) (*ExtractResult, error) {
	pkgPath, ok := enginePackages[engine]
	if !ok {
		return nil, fmt.Errorf("model: unknown engine %q (have mesh, bus)", engine)
	}
	l := loader.New(moduleDir)
	pkgs, err := l.Load(pkgPath)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("model: %q resolved to %d packages", pkgPath, len(pkgs))
	}
	x := &extractor{
		pkg:     pkgs[0],
		fset:    pkgs[0].Fset,
		info:    pkgs[0].Info,
		table:   NewTable("code:" + engine),
		classes: classifierSets(),
		anns:    make(map[string][]*annotation),
	}
	x.collectAnnotations()
	for _, f := range x.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			x.walkBlock(fd.Body, newEnv())
		}
	}
	for _, file := range sortedAnnFiles(x.anns) {
		for _, a := range x.anns[file] {
			if !a.used {
				x.errorf("%s:%d: orphan //coma:transition annotation (no state-mutation site within 3 lines below)",
					filepath.Base(a.file), a.line)
			}
		}
	}
	sort.Slice(x.sites, func(i, j int) bool { return x.sites[i].Pos < x.sites[j].Pos })
	sort.Strings(x.errs)
	return &ExtractResult{Engine: engine, Table: x.table, Sites: x.sites, Errors: x.errs}, nil
}

func sortedAnnFiles(m map[string][]*annotation) []string {
	out := make([]string, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// extractor walks one package's functions with a guard-narrowing
// abstract environment.
type extractor struct {
	pkg     *loader.Package
	fset    *token.FileSet
	info    *types.Info
	table   *Table
	classes map[string]StateSet
	anns    map[string][]*annotation // file path -> annotations
	sites   []Site
	errs    []string
}

func (x *extractor) errorf(format string, args ...any) {
	x.errs = append(x.errs, fmt.Sprintf(format, args...))
}

func (x *extractor) collectAnnotations() {
	for _, f := range x.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := annRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := x.fset.Position(c.Pos())
				from, err := parseStateList(m[1])
				if err != nil {
					x.errorf("%s:%d: bad //coma:transition: %v", filepath.Base(pos.Filename), pos.Line, err)
					continue
				}
				to, err := parseStateList(m[2])
				if err != nil {
					x.errorf("%s:%d: bad //coma:transition: %v", filepath.Base(pos.Filename), pos.Line, err)
					continue
				}
				x.anns[pos.Filename] = append(x.anns[pos.Filename],
					&annotation{from: from, to: to, file: pos.Filename, line: pos.Line})
			}
		}
	}
}

// annotationFor finds an unconsumed annotation on the site's line or up
// to three lines above it.
func (x *extractor) annotationFor(pos token.Position) *annotation {
	for _, a := range x.anns[pos.Filename] {
		if !a.used && a.line <= pos.Line && pos.Line-a.line <= 3 {
			return a
		}
	}
	return nil
}

// env is the abstract state environment: canonical-cell keys mapped to
// the set of coherence states the cell may hold here, plus variable
// bindings (st := am.State(item), slot := am.Slot(item), scan-callback
// params) onto those keys.
type env struct {
	sets map[string]StateSet
	bind map[types.Object]string
	mut  map[string]bool // keys written by a mutation site in this scope
}

func newEnv() *env {
	return &env{
		sets: make(map[string]StateSet),
		bind: make(map[types.Object]string),
		mut:  make(map[string]bool),
	}
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.sets {
		c.sets[k] = v
	}
	for k, v := range e.bind {
		c.bind[k] = v
	}
	return c
}

func (e *env) get(key string) StateSet {
	if s, ok := e.sets[key]; ok {
		return s
	}
	return AllStates()
}

func (e *env) narrowKey(key string, s StateSet) {
	e.sets[key] = e.get(key).Intersect(s)
}

// mergeMut widens the parent environment by the child branch's mutation
// effects: a key mutated on a non-terminating branch may hold either its
// old or its new states afterwards.
func (e *env) mergeMut(child *env, childTerminates bool) {
	if childTerminates {
		return
	}
	for k := range child.mut {
		e.sets[k] = e.get(k).Union(child.get(k))
		e.mut[k] = true
	}
}

// ---- type tests -------------------------------------------------------

func namedIs(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) && obj.Name() == name
}

func (x *extractor) isAM(e ast.Expr) bool {
	tv, ok := x.info.Types[e]
	return ok && tv.Type != nil && namedIs(tv.Type, "internal/am", "AM")
}

func (x *extractor) isSlot(t types.Type) bool { return namedIs(t, "internal/am", "Slot") }

// stateConst resolves an expression to a compile-time proto.State value.
func (x *extractor) stateConst(e ast.Expr) (proto.State, bool) {
	tv, ok := x.info.Types[e]
	if !ok || tv.Value == nil || tv.Type == nil || !namedIs(tv.Type, "internal/proto", "State") {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	return proto.State(v), true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (x *extractor) objOf(id *ast.Ident) types.Object {
	if o := x.info.Uses[id]; o != nil {
		return o
	}
	return x.info.Defs[id]
}

// keyOf returns the canonical cell key an expression reads, if any:
// X.State(item) calls, bound state variables, and .State selections on
// bound slot variables or scan-callback params.
func (x *extractor) keyOf(e ast.Expr, ev *env) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if o := x.objOf(e); o != nil {
			if k, ok := ev.bind[o]; ok {
				return k, true
			}
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "State" &&
			x.isAM(sel.X) && len(e.Args) == 1 {
			return cellKey(sel.X, e.Args[0]), true
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "State" {
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if o := x.objOf(id); o != nil {
					if k, ok := ev.bind[o]; ok {
						return k, true
					}
				}
			}
		}
	}
	return "", false
}

func cellKey(amExpr, itemExpr ast.Expr) string {
	return "ST:" + types.ExprString(amExpr) + ":" + types.ExprString(itemExpr)
}

// bindingKey recognises RHS expressions that establish a cell binding:
// X.State(item) and X.Slot(item).
func (x *extractor) bindingKey(rhs ast.Expr) (string, bool) {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "State" && sel.Sel.Name != "Slot") || !x.isAM(sel.X) {
		return "", false
	}
	return cellKey(sel.X, call.Args[0]), true
}

// ---- condition narrowing ---------------------------------------------

// constraint computes, for a condition taken with the given truth value,
// the per-key state constraints it implies. Missing keys are
// unconstrained.
func (x *extractor) constraint(e ast.Expr, truth bool, ev *env) map[string]StateSet {
	switch e := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			a := x.constraint(e.X, truth, ev)
			b := x.constraint(e.Y, truth, ev)
			if truth {
				return mergeIntersect(a, b)
			}
			return mergeUnion(a, b) // !(A && B) == !A || !B
		case token.LOR:
			a := x.constraint(e.X, truth, ev)
			b := x.constraint(e.Y, truth, ev)
			if truth {
				return mergeUnion(a, b)
			}
			return mergeIntersect(a, b) // !(A || B) == !A && !B
		case token.EQL, token.NEQ:
			var key string
			var st proto.State
			var keyed, isConst bool
			if key, keyed = x.keyOf(e.X, ev); keyed {
				st, isConst = x.stateConst(e.Y)
			} else if key, keyed = x.keyOf(e.Y, ev); keyed {
				st, isConst = x.stateConst(e.X)
			}
			if !keyed || !isConst {
				return nil
			}
			eq := e.Op == token.EQL
			if eq == truth {
				return map[string]StateSet{key: SetOf(st)}
			}
			return map[string]StateSet{key: AllStates().Without(st)}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return x.constraint(e.X, !truth, ev)
		}
	case *ast.CallExpr:
		// Classifier-method guard: st.Replaceable(), slot.State.Recovery().
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || len(e.Args) != 0 {
			return nil
		}
		set, ok := x.classes[sel.Sel.Name]
		if !ok {
			return nil
		}
		key, keyed := x.keyOf(sel.X, ev)
		if !keyed {
			return nil
		}
		if truth {
			return map[string]StateSet{key: set}
		}
		return map[string]StateSet{key: set.Complement()}
	}
	return nil
}

// mergeIntersect conjoins constraint maps (keys may appear in either).
func mergeIntersect(a, b map[string]StateSet) map[string]StateSet {
	out := make(map[string]StateSet, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; ok {
			out[k] = cur.Intersect(v)
		} else {
			out[k] = v
		}
	}
	return out
}

// mergeUnion disjoins constraint maps: a key constrains the result only
// if both alternatives constrain it.
func mergeUnion(a, b map[string]StateSet) map[string]StateSet {
	out := make(map[string]StateSet)
	for k, v := range a {
		if w, ok := b[k]; ok {
			out[k] = v.Union(w)
		}
	}
	return out
}

func (x *extractor) narrow(cond ast.Expr, truth bool, ev *env) {
	for k, v := range x.constraint(cond, truth, ev) {
		ev.narrowKey(k, v)
	}
}

// ---- statement walking ------------------------------------------------

func (x *extractor) walkBlock(b *ast.BlockStmt, ev *env) {
	for _, s := range b.List {
		x.walkStmt(s, ev)
	}
}

func (x *extractor) walkStmts(list []ast.Stmt, ev *env) {
	for _, s := range list {
		x.walkStmt(s, ev)
	}
}

func (x *extractor) walkStmt(s ast.Stmt, ev *env) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		x.walkBlock(s, ev)
	case *ast.AssignStmt:
		x.assign(s, ev)
	case *ast.ExprStmt:
		x.expr(s.X, ev)
	case *ast.IfStmt:
		x.ifStmt(s, ev)
	case *ast.SwitchStmt:
		x.switchStmt(s, ev)
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cev := ev.clone()
			x.walkStmts(c.(*ast.CaseClause).Body, cev)
			ev.mergeMut(cev, stmtsTerminate(c.(*ast.CaseClause).Body))
		}
	case *ast.RangeStmt:
		bev := ev.clone()
		x.walkBlock(s.Body, bev)
		ev.mergeMut(bev, false)
	case *ast.ForStmt:
		if s.Init != nil {
			x.walkStmt(s.Init, ev)
		}
		bev := ev.clone()
		x.walkBlock(s.Body, bev)
		ev.mergeMut(bev, false)
	case *ast.DeferStmt:
		x.expr(s.Call, ev)
	case *ast.GoStmt:
		x.expr(s.Call, ev)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			x.expr(r, ev)
		}
	case *ast.LabeledStmt:
		x.walkStmt(s.Stmt, ev)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						x.expr(v, ev)
					}
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cev := ev.clone()
			x.walkStmts(c.(*ast.CommClause).Body, cev)
			ev.mergeMut(cev, false)
		}
	}
}

func (x *extractor) ifStmt(s *ast.IfStmt, ev *env) {
	if s.Init != nil {
		x.walkStmt(s.Init, ev)
	}
	thenEv := ev.clone()
	x.narrow(s.Cond, true, thenEv)
	x.walkBlock(s.Body, thenEv)
	thenTerm := blockTerminates(s.Body)
	ev.mergeMut(thenEv, thenTerm)

	elseTerm := false
	if s.Else != nil {
		elseEv := ev.clone()
		x.narrow(s.Cond, false, elseEv)
		x.walkStmt(s.Else, elseEv)
		elseTerm = stmtTerminates(s.Else)
		ev.mergeMut(elseEv, elseTerm)
	}
	// A terminated branch leaves only the other branch's condition
	// holding for the following statements.
	if thenTerm && !elseTerm {
		x.narrow(s.Cond, false, ev)
	} else if elseTerm && !thenTerm {
		x.narrow(s.Cond, true, ev)
	}
}

func (x *extractor) switchStmt(s *ast.SwitchStmt, ev *env) {
	if s.Init != nil {
		x.walkStmt(s.Init, ev)
	}
	if s.Tag != nil {
		key, keyed := x.keyOf(s.Tag, ev)
		var listed StateSet
		if keyed {
			for _, c := range s.Body.List {
				for _, e := range c.(*ast.CaseClause).List {
					if st, ok := x.stateConst(e); ok {
						listed = listed.With(st)
					}
				}
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cev := ev.clone()
			if keyed {
				if cc.List == nil {
					cev.narrowKey(key, listed.Complement())
				} else {
					var cs StateSet
					all := true
					for _, e := range cc.List {
						st, ok := x.stateConst(e)
						if !ok {
							all = false
							break
						}
						cs = cs.With(st)
					}
					if all {
						cev.narrowKey(key, cs)
					}
				}
			}
			x.walkStmts(cc.Body, cev)
			ev.mergeMut(cev, stmtsTerminate(cc.Body))
		}
		return
	}
	// Condition switch: each clause is a disjunction of boolean guards;
	// default means all of them were false.
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		cev := ev.clone()
		if cc.List != nil {
			var m map[string]StateSet
			for i, cond := range cc.List {
				cm := x.constraint(cond, true, cev)
				if i == 0 {
					m = cm
				} else {
					m = mergeUnion(m, cm)
				}
			}
			for k, v := range m {
				cev.narrowKey(k, v)
			}
		} else {
			for _, other := range s.Body.List {
				for _, cond := range other.(*ast.CaseClause).List {
					x.narrow(cond, false, cev)
				}
			}
		}
		x.walkStmts(cc.Body, cev)
		ev.mergeMut(cev, stmtsTerminate(cc.Body))
	}
}

func (x *extractor) assign(s *ast.AssignStmt, ev *env) {
	for _, r := range s.Rhs {
		x.expr(r, ev)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			rhs := s.Rhs[i]
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				o := x.objOf(id)
				if o == nil {
					continue
				}
				if key, ok := x.bindingKey(rhs); ok {
					ev.bind[o] = key
				} else {
					delete(ev.bind, o)
				}
				continue
			}
			// s.State = <const> inside a scan callback, or any direct
			// field write to a bound slot.
			if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "State" {
				if key, ok := x.keyOf(lhs, ev); ok {
					var to StateSet
					if st, isConst := x.stateConst(rhs); isConst {
						to = SetOf(st)
					}
					x.site(lhs.Pos(), key, to, ev)
				}
			}
		}
		return
	}
	// Multi-value assignment: the RHS is opaque, drop any bindings.
	for _, lhs := range s.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if o := x.objOf(id); o != nil {
				delete(ev.bind, o)
			}
		}
	}
}

func (x *extractor) expr(e ast.Expr, ev *env) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		// Walk nested function literals (closures passed around).
		ast.Inspect(e, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				x.walkBlock(fl.Body, ev.clone())
				return false
			}
			return true
		})
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && x.isAM(sel.X) {
		switch sel.Sel.Name {
		case "SetState":
			if len(call.Args) == 2 {
				key := cellKey(sel.X, call.Args[0])
				var to StateSet
				if st, isConst := x.stateConst(call.Args[1]); isConst {
					to = SetOf(st)
				}
				x.site(call.Pos(), key, to, ev)
				return
			}
		case "Set":
			if len(call.Args) == 2 {
				key := cellKey(sel.X, call.Args[0])
				x.site(call.Pos(), key, x.compositeState(call.Args[1]), ev)
				return
			}
		case "ForEachAllocated":
			if len(call.Args) == 1 {
				if fl, ok := call.Args[0].(*ast.FuncLit); ok {
					x.scanCallback(sel.X, fl, ev)
					return
				}
			}
		}
	}
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			x.walkBlock(fl.Body, ev.clone())
		} else {
			x.expr(a, ev)
		}
	}
}

// compositeState pulls the State field out of an am.Slot{...} composite.
func (x *extractor) compositeState(e ast.Expr) StateSet {
	cl, ok := unparen(e).(*ast.CompositeLit)
	if !ok {
		return 0
	}
	tv, ok := x.info.Types[cl]
	if !ok || !x.isSlot(tv.Type) {
		return 0
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "State" {
			if st, isConst := x.stateConst(kv.Value); isConst {
				return SetOf(st)
			}
			return 0
		}
	}
	// No State field: the zero value is Invalid.
	return SetOf(proto.Invalid)
}

// scanCallback walks a ForEachAllocated callback with its slot parameter
// bound to a fresh cell covering every allocated slot.
func (x *extractor) scanCallback(amExpr ast.Expr, fl *ast.FuncLit, ev *env) {
	cev := ev.clone()
	params := fl.Type.Params.List
	if len(params) >= 2 && len(params[1].Names) == 1 {
		o := x.info.Defs[params[1].Names[0]]
		if o != nil {
			key := fmt.Sprintf("CB:%s:%d", types.ExprString(amExpr), x.fset.Position(fl.Pos()).Line)
			cev.bind[o] = key
			cev.sets[key] = AllStates()
		}
	}
	x.walkBlock(fl.Body, cev)
}

// site resolves one mutation site into edges.
func (x *extractor) site(pos token.Pos, key string, to StateSet, ev *env) {
	p := x.fset.Position(pos)
	where := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)

	from := StateSet(0)
	if key != "" {
		if got := ev.get(key); got != AllStates() {
			// An unconstrained cell is indistinguishable from a missed
			// guard; require narrowing or an annotation.
			from = got
		}
	}
	annotated := false
	if a := x.annotationFor(p); a != nil {
		a.used = true
		annotated = true
		if !a.from.Empty() {
			from = a.from
		}
		if !a.to.Empty() {
			if !to.Empty() && to != a.to {
				x.errorf("%s: //coma:transition To %v disagrees with the code's constant %v",
					where, a.to, to)
			}
			if to.Empty() {
				to = a.to
			}
		}
	}
	if from.Empty() {
		x.errorf("%s: cannot resolve the From states of this mutation (no guard narrowing; add a //coma:transition annotation)", where)
	}
	if to.Empty() {
		x.errorf("%s: cannot resolve the To states of this mutation (non-constant state; add a //coma:transition annotation)", where)
	}
	x.sites = append(x.sites, Site{Pos: where, From: from, To: to, Annotated: annotated})
	for _, f := range from.List() {
		for _, t := range to.List() {
			x.table.Add(f, t, where)
		}
	}
	// Effect: the cell now holds one of the written states.
	if key != "" && !to.Empty() {
		ev.sets[key] = to
		ev.mut[key] = true
	}
}

// ---- termination ------------------------------------------------------

func blockTerminates(b *ast.BlockStmt) bool { return stmtsTerminate(b.List) }

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.BlockStmt:
		return blockTerminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if !blockTerminates(s.Body) {
			return false
		}
		return s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}

// ---- attraction-memory audit -----------------------------------------

// amWhitelist names the am.AM methods allowed to write slot state: the
// audited helpers every engine mutation flows through (plus frame
// allocation and the fail-silent wipe).
var amWhitelist = map[string]bool{
	"Set": true, "SetState": true, "SetPartner": true,
	"AllocFrame": true, "Clear": true,
}

// AuditAM verifies that inside coma/internal/am every write to slot
// contents happens in one of the whitelisted helpers, so the extractor's
// choke-point assumption (state changes only via Set/SetState or scan
// callbacks) holds. It returns the violations (empty means the audit
// passed).
func AuditAM(moduleDir string) ([]string, error) {
	l := loader.New(moduleDir)
	pkgs, err := l.Load("coma/internal/am")
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("model: coma/internal/am resolved to %d packages", len(pkgs))
	}
	pkg := pkgs[0]
	var violations []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					if !writesSlot(pkg.Info, lhs) {
						continue
					}
					if amWhitelist[name] {
						continue
					}
					p := pkg.Fset.Position(lhs.Pos())
					violations = append(violations, fmt.Sprintf(
						"%s:%d: %s writes slot contents outside the audited helpers (%s)",
						filepath.Base(p.Filename), p.Line, name, types.ExprString(lhs)))
				}
				return true
			})
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// writesSlot reports whether an assignment target stores into an am.Slot
// value or one of its fields.
func writesSlot(info *types.Info, lhs ast.Expr) bool {
	lhs = unparen(lhs)
	if tv, ok := info.Types[lhs]; ok && tv.Type != nil && namedIs(tv.Type, "internal/am", "Slot") {
		return true
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && namedIs(tv.Type, "internal/am", "Slot") {
			return true
		}
	}
	return false
}

package machine

import (
	"errors"
	"testing"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/core"
	"coma/internal/proto"
	"coma/internal/stats"
	"coma/internal/workload"
)

// smallApp returns a quick deterministic workload for integration tests.
func smallApp(instr int64) workload.Spec {
	return workload.Spec{
		Name:            "test",
		Instructions:    instr,
		ReadFrac:        0.20,
		WriteFrac:       0.10,
		SharedReadFrac:  0.10,
		SharedWriteFrac: 0.05,
		SharedBytes:     64 << 10,
		PrivateBytes:    16 << 10,
		ReadOnlyFrac:    0.3,
		Locality:        0.4,
		HotBytes:        512,
		WindowBytes:     512,
		DriftInstr:      5_000,
		Barriers:        3,
	}
}

func runCfg(t *testing.T, cfg Config) *stats.Run {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func baseCfg(nodes int, p coherence.Protocol) Config {
	return Config{
		Arch:      config.KSR1(nodes),
		Protocol:  p,
		App:       smallApp(200_000),
		Seed:      1,
		Oracle:    true,
		MaxCycles: 500_000_000,
	}
}

func TestStandardProtocolRunsToCompletion(t *testing.T) {
	r := runCfg(t, baseCfg(16, coherence.Standard))
	if r.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	total := r.Total()
	if total.Instructions < 190_000 {
		t.Fatalf("instructions = %d", total.Instructions)
	}
	if total.References() == 0 || total.AMAccesses() == 0 {
		t.Fatal("no memory activity")
	}
	if r.Ckpt.Established != 0 {
		t.Fatal("standard protocol established recovery points")
	}
}

// probeCycles measures how long a configuration runs without failures or
// checkpointing, so tests can place failures and intervals inside the run
// regardless of workload-model tuning.
func probeCycles(t *testing.T, cfg Config) int64 {
	t.Helper()
	cfg.CheckpointHz = 0
	cfg.CheckpointInterval = 0
	cfg.Failures = nil
	cfg.Invariants = false
	cfg.Protocol = coherence.Standard
	return runCfg(t, cfg).Cycles
}

func TestECPEstablishesRecoveryPoints(t *testing.T) {
	cfg := baseCfg(16, coherence.ECP)
	cfg.CheckpointInterval = probeCycles(t, cfg) / 6
	cfg.Invariants = true
	r := runCfg(t, cfg)
	if r.Ckpt.Established < 2 {
		t.Fatalf("established = %d, want several", r.Ckpt.Established)
	}
	if r.Ckpt.CreateCycles <= 0 || r.Ckpt.CommitCycles <= 0 {
		t.Fatalf("phase accounting: create=%d commit=%d", r.Ckpt.CreateCycles, r.Ckpt.CommitCycles)
	}
	total := r.Total()
	if total.CkptItemsReplicated+total.CkptItemsReused == 0 {
		t.Fatal("no recovery data created")
	}
}

func TestECPOverheadIsPositiveButBounded(t *testing.T) {
	std := runCfg(t, baseCfg(16, coherence.Standard))
	ecp := baseCfg(16, coherence.ECP)
	ecp.CheckpointInterval = 25_000
	fr := runCfg(t, ecp)
	o := stats.Decompose(std, fr)
	if o.TTotal <= o.TStandard {
		t.Fatalf("ECP run (%d) not slower than standard (%d)", o.TTotal, o.TStandard)
	}
	if f := o.OverheadFraction(); f > 1.0 {
		t.Fatalf("overhead fraction = %.2f, absurdly high", f)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseCfg(9, coherence.ECP)
	cfg.CheckpointHz = 200
	a := runCfg(t, cfg)
	b := runCfg(t, cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.NetMessages != b.NetMessages {
		t.Fatalf("messages differ: %d vs %d", a.NetMessages, b.NetMessages)
	}
	ta, tb := a.Total(), b.Total()
	if ta != tb {
		t.Fatalf("counters differ:\n%+v\n%+v", ta, tb)
	}
}

func TestSeedChangesExecution(t *testing.T) {
	cfg := baseCfg(9, coherence.Standard)
	a := runCfg(t, cfg)
	cfg.Seed = 2
	b := runCfg(t, cfg)
	if a.Cycles == b.Cycles && a.NetMessages == b.NetMessages {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestStrictModeOracleOnHits(t *testing.T) {
	cfg := baseCfg(9, coherence.ECP)
	cfg.CheckpointHz = 400
	cfg.Strict = true
	cfg.App = smallApp(50_000)
	runCfg(t, cfg) // any oracle violation fails the run
}

func TestTransientFailureRecovers(t *testing.T) {
	cfg := baseCfg(16, coherence.ECP)
	cfg.App = smallApp(100_000)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 8
	cfg.Invariants = true
	cfg.Strict = true
	cfg.Failures = []FailurePlan{{At: span / 2, Node: 5, Permanent: false}}
	r := runCfg(t, cfg)
	if r.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", r.Ckpt.Recoveries)
	}
	if r.Ckpt.Established < 1 {
		t.Fatal("no recovery point was ever established")
	}
}

func TestPermanentFailureRecoversAndReconfigures(t *testing.T) {
	cfg := baseCfg(16, coherence.ECP)
	cfg.App = smallApp(100_000)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 8
	cfg.Invariants = true
	cfg.Failures = []FailurePlan{{At: span / 2, Node: 3, Permanent: true}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", r.Ckpt.Recoveries)
	}
	if m.Coordinator().Alive(3) {
		t.Fatal("failed node still alive")
	}
	// Reconfiguration must have re-created recovery copies.
	reconf := int64(0)
	for _, n := range r.PerNode {
		reconf += n.Injections[proto.InjectReconfigure]
	}
	if reconf == 0 {
		t.Fatal("no reconfiguration injections")
	}
	// All surviving recovery pairs live on live nodes.
	if err := core.CheckQuiescent(m.Coherence()); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleSequentialTransientFailures(t *testing.T) {
	cfg := baseCfg(16, coherence.ECP)
	cfg.App = smallApp(150_000)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 12
	cfg.Invariants = true
	cfg.Failures = []FailurePlan{
		{At: span / 4, Node: 2, Permanent: false},
		{At: span / 2, Node: 9, Permanent: false},
		{At: 3 * span / 4, Node: 2, Permanent: false}, // same node again
	}
	r := runCfg(t, cfg)
	if r.Ckpt.Recoveries != 3 {
		t.Fatalf("recoveries = %d, want 3", r.Ckpt.Recoveries)
	}
}

func TestFailureBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	cfg := baseCfg(9, coherence.ECP)
	cfg.App = smallApp(50_000)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = 100 * span // first establishment far in the future
	cfg.Invariants = true
	cfg.Failures = []FailurePlan{{At: span / 2, Node: 1, Permanent: false}}
	r := runCfg(t, cfg)
	if r.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", r.Ckpt.Recoveries)
	}
}

func TestSimultaneousFailuresMayLoseData(t *testing.T) {
	// Two nodes failing at the same instant can destroy both copies of
	// a recovery pair. With enough data this is near-certain; the
	// machine must detect it rather than continue silently.
	cfg := baseCfg(9, coherence.ECP)
	cfg.App = smallApp(150_000)
	cfg.App.SharedBytes = 256 << 10
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 10
	var failed error
	for pair := 0; pair < 8 && failed == nil; pair++ {
		cfg.Failures = []FailurePlan{
			{At: span / 2, Node: proto.NodeID(pair), Permanent: false},
			{At: span / 2, Node: proto.NodeID(pair + 1), Permanent: false},
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			failed = err
		}
	}
	if failed == nil {
		t.Skip("no adjacent pair held a recovery pair this run")
	}
	if !errors.Is(failed, ErrDataLoss) {
		t.Fatalf("error = %v, want ErrDataLoss", failed)
	}
}

// TestRecoveryEquivalence: rolling back and replaying must converge to
// the same final memory image as a failure-free run. Write values carry
// (node, sequence) stamps; the sequence counters are not rolled back, so
// exact values differ — but the set of written items and each item's
// final writer must match, because the generators replay the identical
// reference streams.
func TestRecoveryEquivalence(t *testing.T) {
	cfg := baseCfg(9, coherence.ECP)
	cfg.App = smallApp(120_000)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 10

	finalImage := func(failures []FailurePlan) map[proto.ItemID]proto.NodeID {
		mc := cfg
		mc.Failures = failures
		m, err := New(mc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		img := make(map[proto.ItemID]proto.NodeID, len(m.oracle))
		for item, value := range m.oracle {
			img[item] = proto.NodeID(value >> 48) // the writer node
		}
		return img
	}

	clean := finalImage(nil)
	failed := finalImage([]FailurePlan{{At: span / 2, Node: 4, Permanent: false}})
	if len(clean) != len(failed) {
		t.Fatalf("written-item sets differ: %d vs %d", len(clean), len(failed))
	}
	for item, writer := range clean {
		if failed[item] != writer {
			t.Fatalf("item %d: final writer %v with failure, %v without", item, failed[item], writer)
		}
	}
}

func TestStandardProtocolRejectsCheckpointing(t *testing.T) {
	cfg := baseCfg(4, coherence.Standard)
	cfg.CheckpointHz = 100
	if _, err := New(cfg); err == nil {
		t.Fatal("standard protocol accepted a checkpoint frequency")
	}
	cfg = baseCfg(4, coherence.Standard)
	cfg.Failures = []FailurePlan{{At: 10, Node: 1}}
	if _, err := New(cfg); err == nil {
		t.Fatal("standard protocol accepted a failure plan")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseCfg(4, coherence.ECP)
	cfg.Failures = []FailurePlan{{At: 10, Node: 7}}
	if _, err := New(cfg); err == nil {
		t.Fatal("failure plan with out-of-range node accepted")
	}
	cfg = baseCfg(4, coherence.ECP)
	cfg.App.Instructions = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid app spec accepted")
	}
	cfg = baseCfg(4, coherence.ECP)
	cfg.Arch.Nodes = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid arch accepted")
	}
}

func TestScriptedWorkload(t *testing.T) {
	// Four nodes ping-ponging one item; validates the machine with
	// fully deterministic streams and checks the final value.
	gens := make([]workload.Generator, 4)
	for i := range gens {
		var refs []workload.Ref
		for k := 0; k < 10; k++ {
			refs = append(refs, workload.I(50), workload.R(0), workload.I(50), workload.W(0))
		}
		gens[i] = workload.NewScript("pingpong", refs)
	}
	cfg := Config{
		Arch:               config.KSR1(4),
		Protocol:           coherence.ECP,
		Generators:         gens,
		Oracle:             true,
		Strict:             true,
		CheckpointInterval: 20_000,
		MaxCycles:          50_000_000,
	}
	r := runCfg(t, cfg)
	total := r.Total()
	if total.Writes != 40 || total.Reads != 40 {
		t.Fatalf("refs = %d reads, %d writes", total.Reads, total.Writes)
	}
}

func TestMeshSizesRunECP(t *testing.T) {
	for _, nodes := range []int{4, 9, 30} {
		cfg := baseCfg(nodes, coherence.ECP)
		cfg.CheckpointHz = 400
		cfg.App = smallApp(30_000)
		r := runCfg(t, cfg)
		if r.Nodes != nodes {
			t.Fatalf("nodes = %d", r.Nodes)
		}
	}
	// Tiny machines still run without recovery points (plain ECP states
	// are never entered), and the standard protocol runs at any size.
	for _, nodes := range []int{1, 2} {
		cfg := baseCfg(nodes, coherence.Standard)
		cfg.App = smallApp(20_000)
		runCfg(t, cfg)
	}
	// ECP checkpointing on a too-small machine is rejected up front.
	cfg := baseCfg(2, coherence.ECP)
	cfg.CheckpointHz = 400
	if _, err := New(cfg); err == nil {
		t.Fatal("ECP checkpointing accepted on a 2-node machine")
	}
}

func TestPollutionInjectionsAppearUnderECP(t *testing.T) {
	cfg := baseCfg(16, coherence.ECP)
	cfg.CheckpointInterval = 5_000 // several establishments within the short run
	cfg.App = workload.MigratoryKernel().Scale(0.02)
	r := runCfg(t, cfg)
	if r.Ckpt.Established < 2 {
		t.Fatalf("established = %d; the run is too short to exercise pollution", r.Ckpt.Established)
	}
	total := r.Total()
	if total.InjectionsOnWrites() == 0 {
		t.Fatal("migratory workload caused no write-triggered injections under the ECP")
	}
}

package machine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"coma/internal/coherence"
	"coma/internal/obs"
	"coma/internal/obs/txnview"
)

// tracedCfg builds the acceptance-criteria scenario: a 4-node ECP run
// with several recovery points and one transient failure placed inside
// the run's span.
func tracedCfg(t *testing.T) Config {
	t.Helper()
	cfg := baseCfg(4, coherence.ECP)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 6
	cfg.Failures = []FailurePlan{{At: span / 2, Node: 1}}
	return cfg
}

func runTraced(t *testing.T, cfg Config) (*obs.Recorder, []byte) {
	t.Helper()
	rec := obs.NewRecorder(obs.MaskAll)
	cfg.Obs = rec
	runCfg(t, cfg)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return rec, buf.Bytes()
}

// TestObsTraceByteIdentical is the golden determinism test: two
// same-seed traced runs must produce byte-identical JSONL event logs.
func TestObsTraceByteIdentical(t *testing.T) {
	cfg := tracedCfg(t)
	rec, first := runTraced(t, cfg)
	_, second := runTraced(t, cfg)
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed JSONL traces differ: %d vs %d bytes", len(first), len(second))
	}

	counts := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	if counts[obs.KFault] < 1 {
		t.Error("traced run recorded no fault event")
	}
	if counts[obs.KRollback] < 1 {
		t.Error("traced run recorded no rollback event")
	}
	if counts[obs.KCommitted] < 1 {
		t.Error("traced run recorded no committed recovery point")
	}
	if counts[obs.KState] == 0 || counts[obs.KReadFill] == 0 || counts[obs.KQueueDepth] == 0 {
		t.Errorf("missing event kinds: state=%d read-fill=%d queue-depth=%d",
			counts[obs.KState], counts[obs.KReadFill], counts[obs.KQueueDepth])
	}
}

// TestObsTxnTracing runs the faulted scenario and validates the causal
// transaction layer end to end: transactions are minted and closed, carry
// mesh hops, survive a JSONL round trip, and the reconstructed trace
// passes the offline invariant checker while exercising at least one
// recovery edge of the protocol table.
func TestObsTxnTracing(t *testing.T) {
	cfg := tracedCfg(t)
	rec, raw := runTraced(t, cfg)

	counts := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	if counts[obs.KTxnBegin] == 0 || counts[obs.KTxnHop] == 0 {
		t.Fatalf("txn events missing: begin=%d hop=%d", counts[obs.KTxnBegin], counts[obs.KTxnHop])
	}
	if counts[obs.KTxnEnd] > counts[obs.KTxnBegin] {
		t.Errorf("more txn ends (%d) than begins (%d)", counts[obs.KTxnEnd], counts[obs.KTxnBegin])
	}

	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r := txnview.Check(events)
	if !r.OK() {
		t.Errorf("invariant checker rejected a live run:\n%v", r.Violations)
	}
	if r.Txns == 0 || r.Rounds == 0 {
		t.Errorf("check saw txns=%d rounds=%d, want both > 0", r.Txns, r.Rounds)
	}

	cov := txnview.Coverage(events)
	if len(cov.Unexpected) != 0 {
		t.Errorf("run exercised transitions outside the protocol table: %v", cov.Unexpected)
	}
	recovery := false
	for _, e := range cov.Exercised {
		if e.RecoveryEdge() {
			recovery = true
		}
	}
	if !recovery {
		t.Error("faulted run exercised no recovery edge")
	}
}

// TestObsDoesNotPerturb proves observation is read-only: the full
// statistics record of an observed run equals the unobserved one.
func TestObsDoesNotPerturb(t *testing.T) {
	cfg := tracedCfg(t)
	bare := runCfg(t, cfg)

	cfg.Obs = obs.NewRecorder(obs.MaskAll)
	observed := runCfg(t, cfg)

	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("observation changed the run statistics:\nbare:     %+v\nobserved: %+v",
			bare, observed)
	}
}

// TestObsChromeExportFromMachineRun renders the traced run as a Chrome
// trace and checks its structure: one named track per node plus the
// coordinator, checkpoint-phase spans, and the fault instant.
func TestObsChromeExportFromMachineRun(t *testing.T) {
	cfg := tracedCfg(t)
	rec, _ := runTraced(t, cfg)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, cfg.Arch.ClockHz, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string          `json:"name"`
			Phase string          `json:"ph"`
			TID   json.RawMessage `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	threads, createSpans, faults, recoveries := 0, 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "thread_name":
			threads++
		case ev.Phase == "X" && ev.Name == obs.PhaseCreate.String():
			createSpans++
		case ev.Phase == "i" && ev.Name == "fault (transient)":
			faults++
		case ev.Phase == "X" && ev.Name == "recovery round":
			recoveries++
		}
	}
	if want := cfg.Arch.Nodes + 1; threads != want {
		t.Errorf("thread_name tracks = %d, want %d (nodes + coordinator)", threads, want)
	}
	if createSpans == 0 {
		t.Error("no create-phase spans in Chrome trace")
	}
	if faults != 1 {
		t.Errorf("fault instants = %d, want 1", faults)
	}
	if recoveries != 1 {
		t.Errorf("recovery-round spans = %d, want 1", recoveries)
	}
}

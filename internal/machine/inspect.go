package machine

import (
	"coma/internal/am"
	"coma/internal/inspect"
	"coma/internal/mesh"
	"coma/internal/proto"
)

// The Machine is the inspect.Source of its own simulation: every view
// is assembled from engine, AM, directory, mesh and coordinator
// accessors that are read-only by construction. These methods are only
// called while the simulation is quiescent — at an engine safe point on
// the baton-holding goroutine, or after Run has returned — which is why
// none of them take locks.

// NewInspector attaches a live-inspection controller to the machine's
// engine and returns it. With sampleEvery > 0 the controller publishes
// a stream sample roughly every sampleEvery simulated cycles. Call
// before Run; the caller must call Finish on the controller once Run
// returns (success or failure) so blocked clients are released.
func (m *Machine) NewInspector(sampleEvery int64) *inspect.Controller {
	ctl := inspect.NewController(m, sampleEvery)
	m.eng.SetSafePointHook(ctl.AtSafePoint)
	return ctl
}

// InspectLine implements inspect.Source: the directory's view of one
// item plus every AM copy, including recovery-pair placement.
func (m *Machine) InspectLine(item proto.ItemID) inspect.LineView {
	v := inspect.LineView{
		Item:          int64(item),
		Page:          int64(m.cfg.Arch.PageOf(item)),
		Home:          int(m.dir.Home(item)),
		Owner:         -1,
		Sharers:       []int{},
		Copies:        []inspect.CopyView{},
		RecoveryPairs: [][2]int{},
	}
	if e := m.dir.Lookup(item); e != nil {
		v.Present = true
		if e.Owner != proto.None {
			v.Owner = int(e.Owner)
		}
		e.Sharers.ForEach(func(n proto.NodeID) {
			v.Sharers = append(v.Sharers, int(n))
		})
	}
	page := m.cfg.Arch.PageOf(item)
	for n, a := range m.ams {
		if !a.HasFrame(page) {
			continue
		}
		slot := a.Slot(item)
		if slot.State == proto.Invalid {
			continue
		}
		cv := inspect.CopyView{
			Node:    n,
			State:   slot.State.String(),
			Partner: -1,
			Value:   slot.Value,
		}
		if slot.State.Recovery() && slot.Partner != proto.None {
			cv.Partner = int(slot.Partner)
			// Record each pair once, lower node id first.
			lo, hi := n, int(slot.Partner)
			if hi < lo {
				lo, hi = hi, lo
			}
			if lo == n {
				v.RecoveryPairs = append(v.RecoveryPairs, [2]int{lo, hi})
			}
		}
		v.Copies = append(v.Copies, cv)
	}
	return v
}

// InspectNodes implements inspect.Source: per-node liveness, frame
// usage, and the ECP state histogram over all allocated copies.
func (m *Machine) InspectNodes() []inspect.NodeView {
	out := make([]inspect.NodeView, len(m.ams))
	for n, a := range m.ams {
		nv := inspect.NodeView{
			Node:   n,
			Alive:  m.co.Alive(proto.NodeID(n)),
			Frames: a.AllocatedFrames(),
		}
		a.ForEachAllocated(func(_ proto.ItemID, slot *am.Slot) {
			nv.States.Add(slot.State)
		})
		out[n] = nv
	}
	return out
}

// InspectQueues implements inspect.Source: mesh occupancy per subnet.
func (m *Machine) InspectQueues() inspect.QueuesView {
	now := m.eng.Now()
	return inspect.QueuesView{
		SimCycles: now,
		Request:   m.subnetView(mesh.RequestNet, now),
		Reply:     m.subnetView(mesh.ReplyNet, now),
	}
}

func (m *Machine) subnetView(s mesh.Subnet, now int64) inspect.SubnetView {
	v := inspect.SubnetView{
		Inflight:   m.net.Inflight(s),
		BusyLinks:  m.net.BusyLinks(s, now),
		NISendBusy: make([]int64, len(m.ams)),
		NIRecvBusy: make([]int64, len(m.ams)),
	}
	for n := range m.ams {
		v.NISendBusy[n], v.NIRecvBusy[n] = m.net.NIBacklog(s, proto.NodeID(n), now)
	}
	return v
}

// InspectSummary implements inspect.Source: scheduler occupancy plus
// the coordinator's checkpoint/recovery phase.
func (m *Machine) InspectSummary() inspect.SummaryView {
	wheel, overflow, nowq := m.eng.QueueStats()
	ps := m.co.Snapshot()
	ck := m.co.Stats()
	return inspect.SummaryView{
		SimCycles:      m.eng.Now(),
		Events:         m.eng.Events(),
		Processes:      m.eng.Processes(),
		WheelEvents:    wheel,
		OverflowEvents: overflow,
		NowQueueEvents: nowq,
		Nodes:          len(m.ams),
		LiveNodes:      ps.LiveNodes,
		DirectoryItems: m.dir.Items(),
		LockedItems:    m.coh.LockedItems(),
		Phase: inspect.PhaseView{
			Round:           ps.Round,
			Recovery:        ps.Recovery,
			PauseRequested:  ps.PauseRequested,
			QuiesceGot:      ps.QuiesceGot,
			QuiesceNeed:     ps.QuiesceNeed,
			Phase1Got:       ps.Phase1Got,
			Phase1Need:      ps.Phase1Need,
			Phase2Got:       ps.Phase2Got,
			Phase2Need:      ps.Phase2Need,
			Established:     ck.Established,
			Aborted:         ck.Aborted,
			Skipped:         ck.Skipped,
			Recoveries:      ck.Recoveries,
			PendingFailures: ps.PendingFailures,
		},
	}
}

// Package machine assembles and runs one complete simulated COMA: the
// event engine, the mesh, the attraction memories, the directory, the
// coherence engine (standard or ECP), the recovery coordinator, one node
// per processor, the workload generators, the failure plan, and the value
// oracle that checks end-to-end correctness of every value delivered to a
// processor.
package machine

import (
	"errors"
	"fmt"

	"coma/internal/am"
	"coma/internal/cache"
	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/core"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/node"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
	"coma/internal/workload"
)

// FailurePlan schedules one node failure.
type FailurePlan struct {
	At        int64 // absolute cycle
	Node      proto.NodeID
	Permanent bool
}

// Config describes one simulation run.
type Config struct {
	Arch     config.Arch
	Protocol coherence.Protocol
	Opts     coherence.Options

	// App is the workload specification; one generator per node is
	// derived from it unless Generators overrides them.
	App        workload.Spec
	Generators []workload.Generator

	Seed uint64

	// CheckpointHz is the recovery-point establishment frequency
	// (establishments per second of simulated time); 0 disables
	// periodic establishment. Must be 0 under the standard protocol.
	CheckpointHz float64
	// CheckpointInterval overrides CheckpointHz with an explicit period
	// in cycles when non-zero.
	CheckpointInterval int64

	Failures []FailurePlan

	// Oracle enables value tracking and verification of every fill.
	Oracle bool
	// Strict makes processors yield on every reference and verifies
	// cache-hit reads too (slow; for tests).
	Strict bool
	// Invariants runs the full recovery-data invariant checker at every
	// commit and rollback (slow; for tests).
	Invariants bool

	// MaxCycles aborts a run that exceeds this simulated time
	// (safety net; 0 means no limit).
	MaxCycles int64

	// Obs, when non-nil, receives observability events from every layer
	// (protocol, checkpoint/recovery, faults, mesh occupancy). nil — the
	// default — keeps every emission site to a single branch.
	Obs obs.Observer
	// ObsSampleEvery is the mesh queue-depth sampling period in cycles
	// (only meaningful with Obs set; <= 0 selects the 10_000-cycle
	// default).
	ObsSampleEvery int64
}

// Machine is one assembled simulation.
type Machine struct {
	cfg      Config
	eng      *sim.Engine
	net      *mesh.Network
	dir      *directory.Directory
	ams      []*am.AM
	caches   []*cache.Cache
	nodes    []*node.Node
	coh      *coherence.Engine
	co       *core.Coordinator
	counters []*stats.Node

	oracle    map[proto.ItemID]uint64
	committed map[proto.ItemID]uint64
	genSnaps  []workload.Snapshot
	ended     []bool
	remaining int
	endTime   int64
	firstErr  error

	// obsTicks counts queue-depth ticker dispatches so collect() can
	// report the same Events total whether or not observation is on.
	// obsEvery is the ticker period; the Machine is its own sim.EventSink
	// so the recurring timer never allocates a closure.
	obsTicks int64
	obsEvery int64
}

// OnEvent implements sim.EventSink: the observability ticker samples mesh
// occupancy and rearms itself.
func (m *Machine) OnEvent(e *sim.Engine, _ int64) {
	m.obsTicks++
	m.cfg.Obs.Emit(obs.Event{Time: e.Now(), Kind: obs.KQueueDepth,
		Node: proto.None, Item: proto.NoItem,
		A: m.net.Inflight(mesh.RequestNet), B: m.net.Inflight(mesh.ReplyNet)})
	e.AfterSink(m.obsEvery, m, 0)
}

// cacheOps adapts the node set to the coherence engine's cache hook.
type cacheOps struct{ m *Machine }

func (c cacheOps) InvalidateItem(n proto.NodeID, item proto.ItemID) {
	c.m.nodes[n].InvalidateItem(item)
}
func (c cacheOps) DowngradeItem(n proto.NodeID, item proto.ItemID) {
	c.m.nodes[n].DowngradeItem(item)
}

// ErrDataLoss is returned when failures destroyed both copies of
// committed recovery data (more simultaneous failures than the two-copy
// scheme tolerates).
var ErrDataLoss = errors.New("machine: committed recovery data lost (multiple overlapping failures)")

// ErrTooFewNodes is returned when permanent failures shrink the machine
// below four live nodes: an item's master plus its Inv-CK recovery pair
// occupy three distinct nodes, so the injection triggered by an access
// to a local recovery copy needs a fourth — below that the ECP cannot
// continue operating (the paper's four irreplaceable pages make the same
// assumption).
var ErrTooFewNodes = errors.New("machine: too few live nodes remain for the ECP")

// New assembles a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	interval := cfg.CheckpointInterval
	if interval == 0 && cfg.CheckpointHz > 0 {
		interval = cfg.Arch.CheckpointIntervalCycles(cfg.CheckpointHz)
	}
	if cfg.Protocol == coherence.Standard {
		if interval != 0 {
			return nil, fmt.Errorf("machine: the standard protocol cannot establish recovery points")
		}
		if len(cfg.Failures) != 0 {
			return nil, fmt.Errorf("machine: the standard protocol cannot recover from failures")
		}
	} else if (interval != 0 || len(cfg.Failures) != 0) && cfg.Arch.Nodes < 4 {
		// The create phase keeps up to four copies of a modified item
		// (old pair + new pair), and injections must find a node holding
		// none of them — the paper's four irreplaceable pages per page.
		return nil, fmt.Errorf("machine: ECP recovery points need at least 4 nodes, have %d", cfg.Arch.Nodes)
	}
	n := cfg.Arch.Nodes
	if cfg.Generators != nil && len(cfg.Generators) != n {
		return nil, fmt.Errorf("machine: %d generators for %d nodes", len(cfg.Generators), n)
	}
	if cfg.Generators == nil {
		if err := cfg.App.Validate(); err != nil {
			return nil, err
		}
	}
	for _, f := range cfg.Failures {
		if int(f.Node) < 0 || int(f.Node) >= n {
			return nil, fmt.Errorf("machine: failure plan names node %v of %d", f.Node, n)
		}
	}

	m := &Machine{
		cfg:       cfg,
		eng:       sim.New(),
		remaining: n,
	}
	m.net = mesh.New(m.eng, cfg.Arch)
	m.dir = directory.New(n)
	m.ams = make([]*am.AM, n)
	m.caches = make([]*cache.Cache, n)
	m.counters = make([]*stats.Node, n)
	m.nodes = make([]*node.Node, n)
	for i := 0; i < n; i++ {
		m.ams[i] = am.New(cfg.Arch, proto.NodeID(i))
		m.caches[i] = cache.New(cfg.Arch)
		m.counters[i] = &stats.Node{}
	}
	m.coh = coherence.New(m.eng, cfg.Arch, cfg.Protocol, cfg.Opts, m.net, m.dir,
		m.ams, m.counters, cacheOps{m})

	hooks := core.Hooks{OnCommit: m.onCommit, OnRollback: m.onRollback}
	m.co = core.NewCoordinator(m.eng, m.coh, m.net, n, interval, hooks)

	if cfg.Obs != nil {
		m.coh.SetObserver(cfg.Obs)
		m.co.SetObserver(cfg.Obs)
		m.net.SetObserver(cfg.Obs)
		for i := range m.ams {
			nid := proto.NodeID(i)
			m.ams[i].SetStateHook(func(item proto.ItemID, from, to proto.State) {
				cfg.Obs.Emit(obs.Event{Time: m.eng.Now(), Kind: obs.KState,
					Node: nid, Item: item, From: from, To: to})
			})
		}
	}

	if cfg.Oracle {
		m.oracle = make(map[proto.ItemID]uint64)
		m.committed = make(map[proto.ItemID]uint64)
		m.coh.SetReadChecker(m.checkRead)
	}

	m.ended = make([]bool, n)
	nodeHooks := node.Hooks{
		OnWrite:         m.onWrite,
		WorkloadEnded:   m.workloadEnded,
		WorkloadResumed: m.workloadResumed,
	}
	if cfg.Oracle && cfg.Strict {
		nodeHooks.CheckRead = m.checkRead
	}
	m.genSnaps = make([]workload.Snapshot, n)
	for i := 0; i < n; i++ {
		gen := workload.Generator(nil)
		if cfg.Generators != nil {
			gen = cfg.Generators[i]
		} else {
			gen = cfg.App.NewApp(i, n, cfg.Seed)
		}
		m.nodes[i] = node.New(proto.NodeID(i), cfg.Arch, m.caches[i], m.coh, m.co,
			gen, m.counters[i], cfg.Strict, nodeHooks)
		m.genSnaps[i] = gen.Snapshot()
	}
	return m, nil
}

// Coordinator exposes the recovery coordinator (tests, examples).
func (m *Machine) Coordinator() *core.Coordinator { return m.co }

// Coherence exposes the protocol engine (tests, examples).
func (m *Machine) Coherence() *coherence.Engine { return m.coh }

// Run executes the simulation to completion and returns the collected
// statistics.
func (m *Machine) Run() (*stats.Run, error) {
	for i := range m.nodes {
		nd := m.nodes[i]
		m.eng.Spawn(fmt.Sprintf("proc%d", i), nd.Run)
	}
	m.co.Start()
	for _, f := range m.cfg.Failures {
		m.co.ScheduleFailure(f.At, core.Failure{Node: f.Node, Permanent: f.Permanent})
	}

	if m.cfg.Obs != nil {
		// Sim-time ticker sampling mesh occupancy. It reschedules itself
		// for as long as the engine runs; its dispatches are counted so
		// the reported Events total is unchanged by observation.
		m.obsEvery = m.cfg.ObsSampleEvery
		if m.obsEvery <= 0 {
			m.obsEvery = 10_000
		}
		m.eng.AfterSink(m.obsEvery, m, 0)
	}

	limit := int64(-1)
	if m.cfg.MaxCycles > 0 {
		limit = m.cfg.MaxCycles
	}
	end, err := m.eng.RunUntil(limit)
	if err != nil {
		return nil, err
	}
	if m.firstErr != nil {
		m.eng.Shutdown()
		return nil, m.firstErr
	}
	if m.remaining > 0 {
		m.eng.Shutdown()
		return nil, fmt.Errorf("machine: %d processors still running at cycle %d (limit hit or deadlock)",
			m.remaining, end)
	}
	m.eng.Shutdown()
	return m.collect(), nil
}

func (m *Machine) collect() *stats.Run {
	r := &stats.Run{
		Protocol: m.cfg.Protocol.String(),
		App:      m.appName(),
		Nodes:    m.cfg.Arch.Nodes,
		Cycles:   m.endTime,
		Events:   m.eng.Events() - m.obsTicks,
		ClockHz:  m.cfg.Arch.ClockHz,
		Ckpt:     m.co.Stats(),
		PerNode:  make([]stats.Node, len(m.counters)),
	}
	for i, c := range m.counters {
		r.PerNode[i] = *c
	}
	for _, a := range m.ams {
		r.PagesPeak += a.Stats().PeakFrames
	}
	ns := m.net.Stats()
	r.NetMessages = ns.Messages[0] + ns.Messages[1]
	r.NetFlits = ns.Flits[0] + ns.Flits[1]
	for _, c := range m.caches {
		cs := c.Stats()
		r.CacheReads += cs.ReadHits + cs.ReadMisses
		r.CacheReadMiss += cs.ReadMisses
		r.CacheWrites += cs.WriteHits + cs.WriteMisses
		r.CacheWriteMis += cs.WriteMisses
	}
	return r
}

func (m *Machine) appName() string {
	if m.cfg.Generators != nil && len(m.cfg.Generators) > 0 {
		return m.cfg.Generators[0].Name()
	}
	return m.cfg.App.Name
}

// fail records the first fatal inconsistency and stops the engine.
func (m *Machine) fail(err error) {
	if m.firstErr == nil {
		m.firstErr = err
		m.eng.Stop()
	}
}

func (m *Machine) onWrite(n proto.NodeID, item proto.ItemID, value uint64) {
	if m.oracle != nil {
		m.oracle[item] = value
	}
}

func (m *Machine) checkRead(n proto.NodeID, item proto.ItemID, value uint64) {
	want := m.oracle[item]
	if value != want {
		m.fail(fmt.Errorf("machine: node %v read %#x from item %d, oracle says %#x",
			n, value, item, want))
	}
}

func (m *Machine) workloadEnded(n proto.NodeID) {
	m.ended[n] = true
	m.remaining--
	if m.remaining == 0 {
		m.endTime = m.eng.Now()
		m.eng.Stop()
	}
}

func (m *Machine) workloadResumed(n proto.NodeID) {
	m.ended[n] = false
	m.remaining++
}

// nodeDied accounts a permanently failed node (its outstanding work will
// never complete).
func (m *Machine) nodeDied(n proto.NodeID) {
	if m.ended[n] {
		return
	}
	m.ended[n] = true
	m.remaining--
	if m.remaining == 0 {
		m.endTime = m.eng.Now()
		m.eng.Stop()
	}
}

// onCommit snapshots the rollback state at a committed recovery point.
func (m *Machine) onCommit() {
	for i, nd := range m.nodes {
		m.genSnaps[i] = nd.Generator().Snapshot()
	}
	if m.oracle != nil {
		m.committed = make(map[proto.ItemID]uint64, len(m.oracle))
		for k, v := range m.oracle {
			m.committed[k] = v
		}
	}
	if m.cfg.Invariants {
		if err := core.CheckQuiescent(m.coh); err != nil {
			m.fail(fmt.Errorf("machine: invariant violated at commit: %w", err))
		}
	}
}

// onRollback restores the rollback state after a recovery.
func (m *Machine) onRollback(dropped []proto.ItemID, failures []core.Failure) {
	if m.oracle != nil {
		for _, it := range dropped {
			if _, was := m.committed[it]; was {
				m.fail(fmt.Errorf("%w: item %d", ErrDataLoss, it))
				return
			}
		}
		m.oracle = make(map[proto.ItemID]uint64, len(m.committed))
		for k, v := range m.committed {
			m.oracle[k] = v
		}
	}
	for i, nd := range m.nodes {
		if !m.co.Alive(proto.NodeID(i)) {
			continue
		}
		nd.Generator().Restore(m.genSnaps[i])
	}
	for _, f := range failures {
		if f.Permanent {
			m.nodeDied(f.Node)
		}
	}
	alive := 0
	for i := range m.nodes {
		if m.co.Alive(proto.NodeID(i)) {
			alive++
		}
	}
	if alive < 4 && m.cfg.Protocol == coherence.ECP {
		m.fail(ErrTooFewNodes)
		return
	}
	if m.cfg.Invariants {
		if err := core.CheckQuiescent(m.coh); err != nil {
			m.fail(fmt.Errorf("machine: invariant violated after rollback: %w", err))
		}
	}
}

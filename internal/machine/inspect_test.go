package machine

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"coma/internal/coherence"
	"coma/internal/inspect"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/stats"
)

// inspectCfg is the acceptance-criteria scenario: a 16-node faulted ECP
// run with several recovery points and a transient failure mid-run.
func inspectCfg(t *testing.T) Config {
	t.Helper()
	cfg := baseCfg(16, coherence.ECP)
	span := probeCycles(t, cfg)
	cfg.CheckpointInterval = span / 6
	cfg.Failures = []FailurePlan{{At: span / 2, Node: 1}}
	return cfg
}

// runUninspected runs cfg traced with no inspection hook installed:
// the baseline the inspected run must match byte for byte.
func runUninspected(t *testing.T, cfg Config) (*stats.Run, []byte) {
	t.Helper()
	rec := obs.NewRecorder(obs.MaskAll)
	cfg.Obs = rec
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return r, buf.Bytes()
}

// runInspected runs cfg traced with a live-inspection controller
// attached and an optional concurrent driver goroutine.
func runInspected(t *testing.T, cfg Config, sampleEvery int64,
	drive func(ctl *inspect.Controller)) (*stats.Run, []byte) {
	t.Helper()
	rec := obs.NewRecorder(obs.MaskAll)
	cfg.Obs = rec
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := m.NewInspector(sampleEvery)
	var wg sync.WaitGroup
	if drive != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drive(ctl)
		}()
	}
	r, err := m.Run()
	ctl.Finish()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return r, buf.Bytes()
}

// TestInspectedTraceByteIdentical is the tentpole's golden test: a run
// being aggressively inspected — paused, queried across all four views,
// single-stepped, resumed, with the sampling stream followed throughout
// — must produce the same result and a byte-identical JSONL trace as
// the same seed run uninspected. Inspection happens at safe points
// between dispatches and is read-only, so nothing it does (including
// the wall-clock timing of client requests, which varies run to run)
// may leak into dispatch order.
func TestInspectedTraceByteIdentical(t *testing.T) {
	cfg := inspectCfg(t)
	baseRun, baseTrace := runUninspected(t, cfg)

	queried := 0
	inspRun, inspTrace := runInspected(t, cfg, 25_000, func(ctl *inspect.Controller) {
		// Stream follower: replay-then-follow over published samples.
		var lastSeq int64
		go func() {
			for {
				w := ctl.Wake()
				if s := ctl.Latest(); s != nil && s.Seq > lastSeq {
					lastSeq = s.Seq
				}
				select {
				case <-w:
				case <-ctl.Done():
					return
				}
			}
		}()
		// Pause/inspect/step/resume until the run completes.
		for !ctl.Finished() {
			ctl.Pause()
			ctl.Query(func(s inspect.Source) {
				sum := s.InspectSummary()
				if sum.Nodes != 16 {
					t.Errorf("summary reports %d nodes, want 16", sum.Nodes)
				}
				_ = s.InspectQueues()
				for _, nv := range s.InspectNodes() {
					if nv.Frames > 0 && nv.States.Total() == 0 {
						t.Errorf("node %d: %d frames but empty state histogram",
							nv.Node, nv.Frames)
					}
				}
				lv := s.InspectLine(proto.ItemID(queried % 64))
				if lv.Present && lv.Owner < 0 && len(lv.Copies) > 0 {
					// Ownerless-but-present lines are legal mid-transaction;
					// just exercise the path.
					_ = lv
				}
				queried++
			})
			ctl.Step(100)
			ctl.Resume()
		}
	})

	if queried == 0 {
		t.Fatal("driver never completed a query")
	}
	if !bytes.Equal(baseTrace, inspTrace) {
		t.Fatalf("inspected trace differs from uninspected: %d vs %d bytes",
			len(baseTrace), len(inspTrace))
	}
	if !reflect.DeepEqual(baseRun, inspRun) {
		t.Fatal("inspected run's statistics differ from uninspected")
	}
}

// TestInspectViewsReportProtocolState pauses a faulted ECP run mid-span
// and asserts the views carry real protocol content: allocated frames,
// a line with a present directory entry, and (after the first recovery
// point) recovery pairs on two distinct nodes.
func TestInspectViewsReportProtocolState(t *testing.T) {
	cfg := inspectCfg(t)
	rec := obs.NewRecorder(obs.MaskAll)
	cfg.Obs = rec
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := m.NewInspector(0)

	type probe struct {
		frames    int
		present   int
		pairs     int
		histTotal int64
	}
	var got probe
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Let the run get past the first checkpoint, then inspect.
		target := cfg.CheckpointInterval * 2
		for !ctl.Finished() {
			var now int64
			ctl.Query(func(s inspect.Source) { now = s.InspectSummary().SimCycles })
			if now < target {
				ctl.Step(5_000)
				continue
			}
			ctl.Pause()
			ctl.Query(func(s inspect.Source) {
				for _, nv := range s.InspectNodes() {
					got.frames += nv.Frames
					got.histTotal += nv.States.Total()
				}
				for item := proto.ItemID(0); item < 2048; item++ {
					lv := s.InspectLine(item)
					if lv.Present {
						got.present++
					}
					got.pairs += len(lv.RecoveryPairs)
				}
			})
			ctl.Resume()
			return
		}
	}()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ctl.Finish()
	wg.Wait()

	if got.frames == 0 || got.histTotal == 0 {
		t.Errorf("no allocated frames (%d) or state tallies (%d) observed",
			got.frames, got.histTotal)
	}
	if got.present == 0 {
		t.Error("no directory-present line found in the first 2048 items")
	}
	if got.pairs == 0 {
		t.Error("no recovery pairs observed after two checkpoint intervals")
	}
}

package machine

import (
	"errors"
	"testing"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/fault"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/workload"
)

// TestRandomisedSoak drives many short machines with randomly drawn
// workloads and failure schedules under the strictest checking (oracle
// on every read, full invariants at every commit and rollback). Every
// run must either complete cleanly or — when overlapping failures
// genuinely destroy both copies of a recovery pair — report data loss
// explicitly. Any other outcome (wrong value, broken invariant,
// deadlock) fails.
func TestRandomisedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	const runs = 12
	rng := sim.NewRNG(20260705)
	for i := 0; i < runs; i++ {
		seed := rng.Uint64()
		nodes := []int{4, 9, 16}[rng.Intn(3)]
		app := workload.Spec{
			Name:             "soak",
			Instructions:     int64(60_000 + rng.Intn(120_000)),
			ReadFrac:         0.15 + rng.Float64()*0.15,
			WriteFrac:        0.05 + rng.Float64()*0.10,
			SharedBytes:      (32 + rng.Intn(128)) << 10,
			PrivateBytes:     (8 + rng.Intn(24)) << 10,
			ReadOnlyFrac:     rng.Float64() * 0.8,
			Migratory:        rng.Float64() * 0.8,
			MigratoryObjects: 64 + rng.Intn(512),
			MigratoryPhase:   int64(200 + rng.Intn(2000)),
			Locality:         rng.Float64() * 0.7,
			HotBytes:         512 << rng.Intn(2),
			WindowBytes:      512 << rng.Intn(3),
			DriftInstr:       int64(1_000 + rng.Intn(8_000)),
			Barriers:         rng.Intn(5),
		}
		app.SharedReadFrac = app.ReadFrac * rng.Float64()
		app.SharedWriteFrac = app.WriteFrac * rng.Float64()
		if err := app.Validate(); err != nil {
			t.Fatalf("run %d: generated invalid spec: %v", i, err)
		}

		cfg := Config{
			Arch:       config.KSR1(nodes),
			Protocol:   coherence.ECP,
			App:        app,
			Seed:       seed,
			Oracle:     true,
			Strict:     true,
			Invariants: true,
			MaxCycles:  1 << 33,
		}
		probe := cfg
		probe.Protocol = coherence.Standard
		probe.Strict = false
		probe.Invariants = false
		pm, err := New(probe)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		pr, err := pm.Run()
		if err != nil {
			t.Fatalf("run %d probe: %v", i, err)
		}
		span := pr.Cycles

		cfg.CheckpointInterval = span/int64(3+rng.Intn(8)) + 1
		plan := fault.Exponential(seed^0xfa17, nodes, span/2, span, 0.3)
		for _, e := range plan {
			cfg.Failures = append(cfg.Failures, FailurePlan{At: e.At, Node: e.Node, Permanent: e.Permanent})
		}

		t.Logf("run %d: seed=%#x nodes=%d instr=%d failures=%d perm=%d interval=%d span=%d",
			i, seed, nodes, app.Instructions, len(cfg.Failures),
			permCount(cfg.Failures), cfg.CheckpointInterval, span)
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		_, err = m.Run()
		switch {
		case err == nil:
		case errors.Is(err, ErrTooFewNodes):
			t.Logf("run %d (seed %#x): machine shrank below 4 live nodes", i, seed)
		case errors.Is(err, ErrDataLoss):
			// Legitimate: the random plan produced overlapping failures.
			overlapping := false
			for a := 1; a < len(cfg.Failures); a++ {
				if cfg.Failures[a].At == cfg.Failures[a-1].At {
					overlapping = true
				}
			}
			t.Logf("run %d (seed %#x): data loss from %d failures (overlap=%v)",
				i, seed, len(cfg.Failures), overlapping)
		default:
			t.Fatalf("run %d (seed %#x, %d nodes, %d failures): %v",
				i, seed, nodes, len(cfg.Failures), err)
		}
		_ = proto.None
	}
}

func permCount(fs []FailurePlan) int {
	c := 0
	for _, f := range fs {
		if f.Permanent {
			c++
		}
	}
	return c
}

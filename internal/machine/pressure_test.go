package machine

import (
	"bytes"
	"testing"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/trace"
	"coma/internal/workload"
)

// TestCapacityPressureReplacements shrinks the attraction memories until
// the working set no longer fits, forcing page replacements: master and
// recovery copies must survive via replacement injections (the Table 1
// rows that never fire in the paper's own capacity-free runs), and the
// value oracle must hold throughout.
func TestCapacityPressureReplacements(t *testing.T) {
	arch := config.KSR1(16)
	arch.AMSize = 1 << 20 // 64 frames per node, 4 sets x 16 ways
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	app := workload.Spec{
		Name:            "pressure",
		Instructions:    400_000,
		ReadFrac:        0.20,
		WriteFrac:       0.10,
		SharedReadFrac:  0.15,
		SharedWriteFrac: 0.06,
		SharedBytes:     2 << 20, // 128 pages: 32 per AM set vs 16 ways
		PrivateBytes:    16 << 10,
		ReadOnlyFrac:    0.2,
		Locality:        0.2,
		HotBytes:        1 << 10,
		WindowBytes:     4 << 10,
		DriftInstr:      2_000,
		Barriers:        2,
	}
	cfg := Config{
		Arch:               arch,
		Protocol:           coherence.ECP,
		App:                app,
		Seed:               3,
		CheckpointInterval: 60_000,
		Oracle:             true,
		Invariants:         true,
		MaxCycles:          1 << 40,
	}
	r := runCfg(t, cfg)
	total := r.Total()
	if total.Injections[proto.InjectReplaceMaster] == 0 {
		t.Error("no master-replacement injections under capacity pressure")
	}
	ckReplace := total.Injections[proto.InjectReplaceSharedCK] +
		total.Injections[proto.InjectReplaceInvCK]
	if ckReplace == 0 {
		t.Error("no recovery-copy replacement injections under capacity pressure")
	}
	if r.Ckpt.Established < 2 {
		t.Errorf("established = %d", r.Ckpt.Established)
	}
}

// TestStandardProtocolUnderPressure runs the same shrunken machine under
// the baseline protocol: master copies must never be lost to
// replacements.
func TestStandardProtocolUnderPressure(t *testing.T) {
	arch := config.KSR1(9)
	arch.AMSize = 1 << 20
	app := smallApp(200_000)
	app.SharedBytes = 2 << 20
	app.WindowBytes = 4 << 10
	cfg := Config{
		Arch:      arch,
		Protocol:  coherence.Standard,
		App:       app,
		Seed:      5,
		Oracle:    true,
		MaxCycles: 1 << 40,
	}
	r := runCfg(t, cfg)
	if r.Total().Injections[proto.InjectReplaceMaster] == 0 {
		t.Error("no master-replacement injections; the pressure test is vacuous")
	}
}

// TestTraceReplayDrivesBothProtocols records every processor's reference
// stream once and replays the byte-identical streams through the
// standard protocol and the ECP — the paper's methodology of comparing
// two simulators on the same traced applications.
func TestTraceReplayDrivesBothProtocols(t *testing.T) {
	const nodes = 9
	spec := workload.Water().Scale(0.002)
	run := func(protocol coherence.Protocol, interval int64) *stats1 {
		gens := make([]workload.Generator, nodes)
		for i := 0; i < nodes; i++ {
			var buf bytes.Buffer
			if _, err := trace.Record(spec.NewApp(i, nodes, 11), &buf); err != nil {
				t.Fatal(err)
			}
			g, err := trace.Replay("water-trace", &buf)
			if err != nil {
				t.Fatal(err)
			}
			gens[i] = g
		}
		cfg := Config{
			Arch:               config.KSR1(nodes),
			Protocol:           protocol,
			Generators:         gens,
			Oracle:             true,
			CheckpointInterval: interval,
			MaxCycles:          1 << 40,
		}
		r := runCfg(t, cfg)
		tot := r.Total()
		return &stats1{refs: tot.References(), cycles: r.Cycles}
	}
	std := run(coherence.Standard, 0)
	ecp := run(coherence.ECP, 5_000)
	if std.refs != ecp.refs {
		t.Fatalf("replayed reference counts differ: %d vs %d", std.refs, ecp.refs)
	}
	if ecp.cycles <= std.cycles {
		t.Fatalf("ECP (%d) not slower than standard (%d) on identical traces",
			ecp.cycles, std.cycles)
	}
}

type stats1 struct {
	refs   int64
	cycles int64
}

// Package analysistest runs an analyzer against a fixture directory and
// compares its diagnostics with `// want` annotations in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest
// (reimplemented on the standard library for the offline build).
//
// Annotation syntax: a comment on the line the diagnostic is expected,
// holding one double-quoted regular expression per expected diagnostic:
//
//	switch s { // want `does not cover SharedCK2` `does not cover InvCK1`
//
// Both `//  want "rx"` and backquoted forms are accepted. Lines with no
// annotation must produce no diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"coma/internal/lint/analysis"
	"coma/internal/lint/loader"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var argRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run loads dir as one package (resolving imports through the enclosing
// module), applies the analyzer, and reports mismatches through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := loader.New(moduleDir)
	pkg, err := l.LoadDir(abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, file := range pkg.GoFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{filepath.Base(file), i + 1}
			for _, q := range argRe.FindAllString(m[1], -1) {
				pat := q[1 : len(q)-1]
				if q[0] == '"' {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
				}
				wants[k] = append(wants[k], rx)
			}
		}
	}

	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(d.Message) {
				wants[k][i] = nil // each expectation matches one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(pos), d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			if rx != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
			}
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

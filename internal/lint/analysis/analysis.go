// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API. The build environment for this
// repository is fully offline (no module proxy), so the real x/tools
// packages cannot be fetched; this package reimplements the small slice
// of the API the comalint analyzers need — Analyzer, Pass and Diagnostic
// — with the same field names and semantics, so the analyzers port to
// the upstream framework (singlechecker/multichecker style) unchanged if
// x/tools ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. By convention it is a single lowercase word.
	Name string
	// Doc is the help text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes a diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

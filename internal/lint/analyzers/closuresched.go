package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"coma/internal/lint/analysis"
)

// ClosureSched reports function literals passed to the sim.Engine
// closure-scheduling entry points (At, After) in hot-path engine
// packages. Every such literal allocates one closure per scheduled
// event; the kernel's typed-event scheme (Engine.AtSink/AfterSink with
// an EventSink payload, or the built-in process-wake event) dispatches
// the same work allocation-free. Named function values stay legal — the
// rule targets the per-event literal, the allocation that scales with
// event count, not the one-time closure of a self-rescheduling ticker.
var ClosureSched = &analysis.Analyzer{
	Name: "closuresched",
	Doc: "hot-path packages must not schedule per-event closures via " +
		"Engine.At/After literals; use typed events (AtSink/AfterSink)",
	Run: runClosureSched,
}

// ClosureSchedScope reports whether the analyzer applies to a package:
// the packages whose event traffic scales with simulated work (every
// mesh delivery, coherence transaction and checkpoint timer flows
// through them). internal/sim itself is exempt — it implements both the
// closure and the typed paths — as is everything outside the simulation
// engines (cmd mains, offline analysis, serving).
func ClosureSchedScope(pkgPath string) bool {
	if allowlisted(pkgPath) {
		return false
	}
	for _, suffix := range []string{
		"internal/mesh", "internal/coherence", "internal/core",
		"internal/machine", "internal/node", "internal/snoop",
		"internal/cache", "internal/fault", "internal/workload",
	} {
		if strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

func runClosureSched(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "At" && sel.Sel.Name != "After" {
				return true
			}
			if !isEngineMethod(pass, sel) {
				return true
			}
			for _, arg := range call.Args {
				if _, isLit := arg.(*ast.FuncLit); isLit {
					pass.Reportf(arg.Pos(),
						"closure literal scheduled via Engine.%s allocates per event on a hot path: "+
							"use a typed event (Engine.AtSink/AfterSink with an EventSink)",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isEngineMethod reports whether the selected call resolves to a method
// on *sim.Engine.
func isEngineMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return strings.HasSuffix(recv, "sim.Engine")
}

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coma/internal/lint/analysis"
)

// SimBlocking reports code in simulated-process packages that blocks or
// forks through the Go runtime instead of the internal/sim primitives.
// A raw channel receive, select, WaitGroup.Wait or `go` statement stalls
// or forks the real goroutine without advancing the simulated clock and
// breaks the engine's one-runnable-goroutine handshake; simulated
// processes must block only via Process.Wait/Park, Future.Await,
// Resource.Acquire and friends.
var SimBlocking = &analysis.Analyzer{
	Name: "simblocking",
	Doc: "simulated processes must block via internal/sim primitives, " +
		"not raw channels, sync, or goroutines",
	Run: runSimBlocking,
}

// SimBlockingScope reports whether the analyzer applies to a package:
// everything that executes inside simulated processes, plus the
// experiment campaign and serving subtrees (render and API-shape code
// must not grow ad-hoc blocking; pooled execution lives behind the
// allowlisted runner, and the allowlisted daemon/client packages carry
// their own justified concurrency). internal/sim itself is exempt (it
// implements the primitives on real channels), as are the cmd/ and
// examples/ mains, which run outside the engine, and
// ConcurrencyAllowlist packages.
func SimBlockingScope(pkgPath string) bool {
	if allowlisted(pkgPath) {
		return false
	}
	for _, suffix := range []string{
		"internal/coherence", "internal/core", "internal/node",
		"internal/machine", "internal/snoop", "internal/workload",
		"internal/mesh", "internal/am", "internal/cache", "internal/fault",
	} {
		if strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return inSubtree(pkgPath, "internal/experiments") ||
		inSubtree(pkgPath, "internal/server") ||
		inSubtree(pkgPath, "internal/cluster")
}

func runSimBlocking(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(),
						"raw channel receive blocks the real goroutine: use sim primitives "+
							"(Process.Wait/Park, Future.Await)")
				}
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"raw channel send can block the real goroutine: use sim primitives")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select blocks on real channels: use sim primitives")
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw goroutine escapes the engine's wake/yield handshake: use Engine.Spawn")
			case *ast.CallExpr:
				checkSyncBlocking(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkSyncBlocking flags blocking calls into package sync and time.
func checkSyncBlocking(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sync":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		recv := sig.Recv().Type().String()
		switch {
		case strings.HasSuffix(recv, "sync.WaitGroup") && fn.Name() == "Wait":
			pass.Reportf(call.Pos(),
				"sync.WaitGroup.Wait blocks outside simulated time: use sim.Barrier or Future.Await")
		case strings.HasSuffix(recv, "sync.Cond") && fn.Name() == "Wait":
			pass.Reportf(call.Pos(),
				"sync.Cond.Wait blocks outside simulated time: use sim primitives")
		}
	case "time":
		if fn.Name() == "Sleep" {
			pass.Reportf(call.Pos(),
				"time.Sleep stalls the real goroutine: use Process.Wait(cycles)")
		}
	}
}

package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"coma/internal/lint/analysis"
)

// ObsWallClock enforces the observability layer's time contract on
// Observer implementations everywhere in the repository (the general
// determinism analyzer only covers the simulator core): a type that
// declares an Emit(obs.Event) method is a sink for events stamped with
// simulated time, and none of its methods may read the wall clock —
// time.Now / time.Since / time.Until. A wall-clock stamp smuggled into
// an exported trace would break byte-identical replay of same-seed
// runs.
//
// The same contract covers live-inspection snapshot builders and
// execution-receipt builders: any function whose results include a
// type from a package suffixed internal/inspect or internal/obs/receipt
// (unwrapping pointers and slices) constructs artifacts that promise to
// be byte-deterministic functions of the run — rates and wall-clock
// deltas belong in the serving layer, computed at scrape time, and a
// wall-clock stamp in a receipt would break same-seed receipts being
// byte-identical.
var ObsWallClock = &analysis.Analyzer{
	Name: "obswallclock",
	Doc: "Observer implementations (any type with an Emit(obs.Event) " +
		"method), inspect snapshot builders, and receipt builders " +
		"(functions returning internal/inspect or internal/obs/receipt " +
		"types) must not read the wall clock",
	Run: runObsWallClock,
}

// deterministicViewPkgs are the import-path suffixes whose types mark a
// function as a deterministic-artifact builder, with the phrase used in
// the diagnostic.
var deterministicViewPkgs = []struct {
	suffix string
	what   string
}{
	{"internal/inspect", "inspect views"},
	{"internal/obs/receipt", "execution receipts"},
}

func runObsWallClock(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: receiver types declaring Emit(obs.Event).
	observers := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Emit" {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || !isObsEvent(sig.Params().At(0).Type()) {
				continue
			}
			if tn := recvTypeName(sig); tn != nil {
				observers[tn] = true
			}
		}
	}
	// Pass 2: every method of an observer type (not just Emit — helpers
	// feed the same event stream) is wall-clock-free, and so is every
	// snapshot builder (a function whose results include an
	// internal/inspect view type).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if tn := recvTypeName(sig); tn != nil && observers[tn] {
				checkObsMethodBody(pass, tn, fd)
				continue
			}
			if what := returnsDeterministicView(sig); what != "" {
				checkSnapshotBody(pass, fd, what)
			}
		}
	}
	return nil, nil
}

// returnsDeterministicView reports what kind of deterministic artifact
// sig builds ("" for none): any result whose type, unwrapping pointers,
// slices and arrays, is a named type defined in a package matching
// deterministicViewPkgs.
func returnsDeterministicView(sig *types.Signature) string {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			continue
		}
		for _, p := range deterministicViewPkgs {
			if strings.HasSuffix(obj.Pkg().Path(), p.suffix) {
				return p.what
			}
		}
	}
	return ""
}

// checkSnapshotBody flags wall-clock reads in a deterministic-artifact
// builder (inspect views, execution receipts).
func checkSnapshotBody(pass *analysis.Pass, fd *ast.FuncDecl, what string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := wallClockCall(pass, call)
		if fn == "" {
			return true
		}
		pass.Reportf(call.Pos(),
			"time.%s in %s, which builds %s: these artifacts carry "+
				"simulated time only (compute wall-clock rates in the serving layer)",
			fn, fd.Name.Name, what)
		return true
	})
}

// wallClockCall returns the name of the package-level time function
// (Now, Since, Until) the call invokes, or "".
func wallClockCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods on time.Time values are fine
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return fn.Name()
	}
	return ""
}

func checkObsMethodBody(pass *analysis.Pass, tn *types.TypeName, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := wallClockCall(pass, call); fn != "" {
			pass.Reportf(call.Pos(),
				"time.%s in method %s.%s of an Observer implementation: "+
					"events carry simulated time only",
				fn, tn.Name(), fd.Name.Name)
		}
		return true
	})
}

// isObsEvent reports whether t is the named type Event of a package
// whose import path ends in internal/obs (matched by suffix so the
// analysistest fixtures, loaded under a synthetic module path, resolve
// the same way the real module does).
func isObsEvent(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// recvTypeName returns the defining TypeName of a method signature's
// receiver base type, or nil for non-named receivers.
func recvTypeName(sig *types.Signature) *types.TypeName {
	recv := sig.Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"coma/internal/lint/analysis"
)

// StateTransition reports engine code that writes an am.Slot's State or
// Partner field directly instead of going through the AM's setters.
// Direct field writes bypass the state-transition hook that feeds the
// observability layer (KState events) and the frame's modified-slot
// accounting, so a transition made that way is invisible to traces, to
// txnview coverage, and to comamodel's runtime leg. The one sanctioned
// exception is a scan callback passed to AM.ForEachAllocated: the
// commit/recovery scans mutate slots wholesale by design, and the trace
// replayer synthesises their transitions from the surrounding phase
// events instead of per-slot hooks.
var StateTransition = &analysis.Analyzer{
	Name: "statetransition",
	Doc: "am.Slot state changes outside ForEachAllocated scans must use " +
		"AM.Set/SetState/SetPartner so the state hook fires",
	Run: runStateTransition,
}

// StateTransitionScope reports whether the analyzer applies to a
// package: the protocol engines and the layers that drive them — every
// place an AM slot is mutated on behalf of the protocol. internal/am
// itself is exempt (it implements the setters and the hook), and so is
// everything outside the engines (nothing else holds an AM).
func StateTransitionScope(pkgPath string) bool {
	for _, suffix := range []string{
		"internal/coherence", "internal/snoop", "internal/core",
		"internal/machine", "internal/node", "internal/mesh",
	} {
		if strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

func runStateTransition(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		// First pass: collect the function literals handed to
		// ForEachAllocated; slot writes inside them are the scans'
		// sanctioned bulk mutations.
		scanCallbacks := make(map[*ast.FuncLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "ForEachAllocated" {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					scanCallbacks[fl] = true
				}
			}
			return true
		})

		// Second pass: flag slot-field assignments outside those
		// callbacks. The stack tracks enclosing nodes so an assignment
		// knows whether any ancestor is a sanctioned callback.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range assign.Lhs {
				field, ok := slotFieldWrite(pass, lhs)
				if !ok {
					continue
				}
				if underScanCallback(stack, scanCallbacks) {
					continue
				}
				pass.Reportf(lhs.Pos(),
					"direct write to am.Slot.%s bypasses the state hook "+
						"(no KState event, no modified-frame accounting): "+
						"use AM.Set/SetState/SetPartner or a ForEachAllocated scan callback",
					field)
			}
			return true
		})
	}
	return nil, nil
}

// slotFieldWrite reports whether expr is a State or Partner selector
// written through a *am.Slot (aliases like the engines' slotRef
// included). Writes through a pointer reach the AM's backing store;
// field writes on a value copy are harmless — the copy only takes
// effect through AM.Set, which fires the hook itself.
func slotFieldWrite(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "State" && sel.Sel.Name != "Partner" {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Name() != "Slot" ||
		!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/am") {
		return "", false
	}
	return sel.Sel.Name, true
}

// underScanCallback reports whether any node on the stack is a function
// literal registered as a ForEachAllocated callback.
func underScanCallback(stack []ast.Node, callbacks map[*ast.FuncLit]bool) bool {
	for _, n := range stack {
		if fl, ok := n.(*ast.FuncLit); ok && callbacks[fl] {
			return true
		}
	}
	return false
}

// Fixture shaped like internal/experiments/runner: a semaphore-bounded
// singleflight pool built on real channels and goroutines. The real
// runner is exempt through the ConcurrencyAllowlist; this package is
// not, proving that the same constructs anywhere else in the checked
// subtrees still produce diagnostics — the allowlist is an explicit
// policy exception, not a hole in the analyzer.
package fixture

import "sync"

type entry struct {
	done chan struct{}
	val  int
}

type pool struct {
	sem     chan struct{}
	mu      sync.Mutex
	entries map[int]*entry
}

func (p *pool) get(key int, compute func() int) int {
	p.mu.Lock()
	e, ok := p.entries[key]
	if !ok {
		e = &entry{done: make(chan struct{})}
		p.entries[key] = e
		p.mu.Unlock()
		p.sem <- struct{}{} // want `raw channel send can block the real goroutine`
		e.val = compute()
		<-p.sem // want `raw channel receive blocks the real goroutine`
		close(e.done)
		return e.val
	}
	p.mu.Unlock()
	<-e.done // want `raw channel receive blocks the real goroutine`
	return e.val
}

func (p *pool) start(key int, compute func() int) {
	go p.get(key, compute) // want `raw goroutine escapes the engine's wake/yield handshake`
}

func (p *pool) drain(wg *sync.WaitGroup) {
	wg.Wait() // want `sync.WaitGroup.Wait blocks outside simulated time`
}

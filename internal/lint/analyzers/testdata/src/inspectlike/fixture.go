// Fixture for the obswallclock analyzer's snapshot-builder rule: a
// function whose results include a type from internal/inspect builds
// live-inspection views and must not read the wall clock — snapshots
// carry simulated time only. Functions without inspect result types are
// out of scope here.
package fixture

import (
	"time"

	"coma/internal/inspect"
)

// snapshot builds a summary view and stamps it with the wall clock:
// flagged.
func snapshot(now int64) inspect.SummaryView {
	sv := inspect.SummaryView{SimCycles: now}
	sv.Events = time.Now().UnixMilli() // want `time.Now in snapshot, which builds inspect views`
	return sv
}

// sample returns a pointer result; the pointer is unwrapped: flagged.
func sample(started time.Time) *inspect.Sample {
	s := &inspect.Sample{}
	s.Summary.SimCycles = int64(time.Since(started)) // want `time.Since in sample, which builds inspect views`
	return s
}

// nodes returns a slice of views; the element type is unwrapped: flagged.
func nodes() ([]inspect.NodeView, error) {
	if time.Until(time.Time{}) < 0 { // want `time.Until in nodes, which builds inspect views`
		return nil, nil
	}
	return []inspect.NodeView{{Node: 0}}, nil
}

// clean builds a view from simulated time only: no findings.
func clean(now int64, events int64) inspect.SummaryView {
	return inspect.SummaryView{SimCycles: now, Events: events}
}

// servingLayer returns no inspect types, so its wall-clock use is out
// of scope for this analyzer (rates computed at scrape time are the
// serving layer's job).
func servingLayer(prev time.Time, events int64) float64 {
	return float64(events) / time.Since(prev).Seconds()
}

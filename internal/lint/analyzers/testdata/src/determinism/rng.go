package fixture

import "math/rand"

// A file named rng.go is the allowlisted home for PRNG plumbing: global
// math/rand use here must NOT be reported.
func allowlistedGlobalRand() int {
	return rand.Int()
}

// Fixture for the determinism analyzer: wall-clock calls, global PRNG
// use, and order-sensitive work inside range-over-map loops must be
// flagged; seeded generators and collect-then-sort loops stay silent.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now()              // want `time.Now in simulator code: use the sim.Engine clock`
	d := time.Since(t)           // want `time.Since in simulator code`
	return int64(d) + int64(time.Until(t)) // want `time.Until in simulator code`
}

func timeValuesAreFine() time.Duration {
	return 3 * time.Millisecond // constants and types from package time are fine
}

func globalRand() int {
	return rand.Intn(6) // want `global rand.Intn: derive a sim.RNG from the run seed`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // methods on an explicit generator are fine
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors are fine
}

func mapAppendUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append inside range over map without a later sort`
	}
	return out
}

func mapAppendSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // collected then sorted: fine
	}
	sort.Strings(out)
	return out
}

func mapString(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string concatenation inside range over map`
	}
	return s
}

func mapSend(m map[int]int, ch chan<- int) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

type engine struct{}

func (engine) Schedule(int) {}
func (engine) At(int)       {}

func mapSchedule(m map[int]int, e engine) {
	for k := range m {
		e.Schedule(k) // want `Schedule call inside range over map`
	}
}

func sliceRangeIsFine(xs []int, e engine) []int {
	var out []int
	for _, x := range xs {
		e.At(x)
		out = append(out, x) // slices iterate in order: fine
	}
	return out
}

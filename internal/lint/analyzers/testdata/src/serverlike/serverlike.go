// Fixture shaped like internal/server: a job scheduler with an event
// broadcast (close-and-replace wake channel), a graceful drain built on
// WaitGroup.Wait behind a select, and an SSE-style follow loop. The
// real daemon is exempt through the ConcurrencyAllowlist; this package
// is not, proving that daemon-shaped concurrency anywhere else in the
// checked subtrees is still diagnosed — a new sub-package of
// internal/server gets flagged until it earns its own allowlist entry.
package fixture

import "sync"

type job struct {
	state string
	wake  chan struct{}
	done  chan struct{}
}

type sched struct {
	mu       sync.Mutex
	jobs     map[string]*job
	inflight sync.WaitGroup
}

func (s *sched) finish(j *job) {
	s.mu.Lock()
	j.state = "done"
	close(j.done)
	close(j.wake)
	j.wake = make(chan struct{})
	s.mu.Unlock()
}

func (s *sched) start(j *job, run func()) {
	s.inflight.Add(1)
	go func() { // want `raw goroutine escapes the engine's wake/yield handshake`
		defer s.inflight.Done()
		run()
		s.finish(j)
	}()
}

func (s *sched) follow(j *job, emit func(string)) {
	for {
		s.mu.Lock()
		state := j.state
		wake := j.wake
		s.mu.Unlock()
		emit(state)
		if state == "done" {
			return
		}
		<-wake // want `raw channel receive blocks the real goroutine`
	}
}

func (s *sched) drain(cancelled chan struct{}) bool {
	done := make(chan struct{})
	go func() { // want `raw goroutine escapes the engine's wake/yield handshake`
		s.inflight.Wait() // want `sync.WaitGroup.Wait blocks outside simulated time`
		close(done)
	}()
	select { // want `select blocks on real channels`
	case <-done: // want `raw channel receive blocks the real goroutine`
		return true
	case <-cancelled: // want `raw channel receive blocks the real goroutine`
		return false
	}
}

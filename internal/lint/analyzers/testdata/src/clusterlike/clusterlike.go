// Fixture shaped like internal/cluster: a worker agent with slot
// executor goroutines draining a lease queue, a heartbeat ticker loop,
// backoff sleeps between retries, and a drain built on WaitGroup.Wait.
// The real agent is exempt through the ConcurrencyAllowlist; this
// package is not, proving that agent-shaped concurrency anywhere else
// in the checked subtrees is still diagnosed — a new sub-package of
// internal/cluster gets flagged until it earns its own allowlist entry.
package fixture

import (
	"sync"
	"time"
)

type lease struct{ id string }

type agent struct {
	mu     sync.Mutex
	queue  []lease
	wake   chan struct{}
	killed chan struct{}
	wg     sync.WaitGroup
}

func (a *agent) startSlots(n int, run func(lease)) {
	for i := 0; i < n; i++ {
		a.wg.Add(1)
		go func() { // want `raw goroutine escapes the engine's wake/yield handshake`
			defer a.wg.Done()
			for {
				l, ok := a.take()
				if !ok {
					return
				}
				run(l)
			}
		}()
	}
}

func (a *agent) take() (lease, bool) {
	for {
		a.mu.Lock()
		if len(a.queue) > 0 {
			l := a.queue[0]
			a.queue = a.queue[1:]
			a.mu.Unlock()
			return l, true
		}
		a.mu.Unlock()
		select { // want `select blocks on real channels`
		case <-a.wake: // want `raw channel receive blocks the real goroutine`
		case <-a.killed: // want `raw channel receive blocks the real goroutine`
			return lease{}, false
		}
	}
}

func (a *agent) heartbeatLoop(every time.Duration, beat func()) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select { // want `select blocks on real channels`
		case <-ticker.C: // want `raw channel receive blocks the real goroutine`
			beat()
		case <-a.killed: // want `raw channel receive blocks the real goroutine`
			return
		}
	}
}

func (a *agent) retry(attempt int) {
	time.Sleep(time.Duration(attempt) * 100 * time.Millisecond) // want `time.Sleep stalls the real goroutine`
}

func (a *agent) enqueue(l lease) {
	a.mu.Lock()
	a.queue = append(a.queue, l)
	a.mu.Unlock()
	a.wake <- struct{}{} // want `raw channel send can block the real goroutine`
}

func (a *agent) drain() {
	a.wg.Wait() // want `sync.WaitGroup.Wait blocks outside simulated time`
}

// Fixture for the simblocking analyzer: raw channel operations, select,
// goroutines, and blocking sync/time calls must be flagged in
// simulated-process code; non-blocking sync use stays silent.
package fixture

import (
	"sync"
	"time"
)

func recvBlocks(ch chan int) int {
	return <-ch // want `raw channel receive blocks the real goroutine`
}

func sendBlocks(ch chan int) {
	ch <- 1 // want `raw channel send can block the real goroutine`
}

func selectBlocks(a, b chan int) {
	select { // want `select blocks on real channels`
	case <-a: // want `raw channel receive blocks the real goroutine`
	case <-b: // want `raw channel receive blocks the real goroutine`
	}
}

func goForks() {
	go func() {}() // want `raw goroutine escapes the engine's wake/yield handshake`
}

func wgWait(wg *sync.WaitGroup) {
	wg.Wait() // want `sync.WaitGroup.Wait blocks outside simulated time`
}

func condWait(c *sync.Cond) {
	c.Wait() // want `sync.Cond.Wait blocks outside simulated time`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time.Sleep stalls the real goroutine`
}

// Non-blocking sync and time use is fine.
func fine(mu *sync.Mutex, wg *sync.WaitGroup) time.Duration {
	mu.Lock()
	defer mu.Unlock()
	wg.Add(1)
	wg.Done()
	return time.Millisecond
}

// Fixture reproducing the shapes of the offline trace-analysis packages
// (internal/obs/txnview): replay state held in maps, diagnostics built
// while walking them, and report timestamps. Extending DeterminismScope
// to the internal/obs subtree means every one of these must be flagged —
// an offline checker that iterates its replay map raw or stamps reports
// with wall-clock time stops being a pure function of the trace.
package fixture

import (
	"fmt"
	"sort"
	"time"
)

type itemID int32
type nodeID int16
type state uint8

type replay struct {
	copies map[itemID]map[nodeID]state
	errs   []string
}

// reportStamped is the classic offline-tool mistake: a report that
// embeds the time it was generated is never byte-identical twice.
func reportStamped() string {
	return fmt.Sprintf("generated at %v", time.Now()) // want `time.Now in simulator code: use the sim.Engine clock`
}

// checkRaw walks the replay map directly, so the violation list comes
// out in a different order every run.
func (r *replay) checkRaw() {
	for item := range r.copies {
		r.errs = append(r.errs, fmt.Sprintf("item %d", item)) // want `append inside range over map without a later sort`
	}
}

// checkSorted is the canonical fix: collect the keys, sort them, then
// walk in order. The analyzer stays silent.
func (r *replay) checkSorted() {
	items := make([]itemID, 0, len(r.copies))
	for it := range r.copies {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, item := range items {
		for n, s := range r.copies[item] {
			_ = n
			_ = s
		}
	}
}

// renderRaw builds report text straight off a map range.
func renderRaw(counts map[string]int64) string {
	out := ""
	for k, v := range counts {
		out += fmt.Sprintf("%s=%d\n", k, v) // want `string concatenation inside range over map`
	}
	return out
}

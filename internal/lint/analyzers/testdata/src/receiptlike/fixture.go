// Fixture for the obswallclock analyzer's receipt-builder rule: a
// function whose results include a type from internal/obs/receipt
// builds execution receipts — byte-deterministic attestations of a run
// — and must not read the wall clock; two same-seed runs must produce
// byte-identical receipts. Functions without receipt result types are
// out of scope here.
package fixture

import (
	"time"

	"coma/internal/obs/receipt"
)

// stamped builds a receipt and smuggles a wall-clock stamp into it:
// flagged.
func stamped(resultDigest string) receipt.Receipt {
	r := receipt.Receipt{ResultDigest: resultDigest}
	r.SimCycles = time.Now().UnixMilli() // want `time.Now in stamped, which builds execution receipts`
	return r
}

// invariants returns a pointer result; the pointer is unwrapped:
// flagged.
func invariants(started time.Time) *receipt.Invariants {
	inv := &receipt.Invariants{}
	inv.Violations = int(time.Since(started)) // want `time.Since in invariants, which builds execution receipts`
	return inv
}

// clean derives every field from the run: no findings.
func clean(digest string, cycles int64) receipt.Receipt {
	return receipt.Receipt{ResultDigest: digest, SimCycles: cycles}
}

// servingLayer returns no receipt types, so its wall-clock use is out
// of scope for this analyzer (request latency is the serving layer's
// business).
func servingLayer(prev time.Time) float64 {
	return time.Since(prev).Seconds()
}

// Fixture for the obswallclock analyzer: any type declaring an
// Emit(obs.Event) method is an Observer implementation, and none of its
// methods may read the wall clock. Types without such an Emit method
// are out of scope here (the determinism analyzer owns them).
package fixture

import (
	"time"

	"coma/internal/obs"
)

// stamper implements obs.Observer and reads the wall clock in two
// methods; both are flagged.
type stamper struct {
	last  time.Time
	count int
}

func (s *stamper) Emit(e obs.Event) {
	s.last = time.Now() // want `time.Now in method stamper.Emit of an Observer implementation`
	s.count++
}

func (s *stamper) age() time.Duration {
	return time.Since(s.last) // want `time.Since in method stamper.age of an Observer implementation`
}

// silent implements obs.Observer without wall-clock use: no findings.
type silent struct{ n int }

func (s *silent) Emit(obs.Event) { s.n++ }

func (s *silent) len() int { return s.n }

// plain has no Emit method at all, so its wall-clock use is out of
// scope for this analyzer.
type plain struct{}

func (plain) stamp() time.Time { return time.Now() }

// emitInt declares Emit with the wrong parameter type; not an Observer.
type emitInt struct{ t time.Time }

func (emitInt) Emit(int) {}

func (e emitInt) now() time.Time { return time.Now() }

// durations and time.Time methods inside an observer are fine — only
// the wall-clock reads are banned.
type waiter struct{ deadline time.Time }

func (w *waiter) Emit(obs.Event) {}

func (w *waiter) window() time.Duration { return 3 * time.Millisecond }

func (w *waiter) hour() int { return w.deadline.Hour() }

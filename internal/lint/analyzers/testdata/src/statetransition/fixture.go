// Fixture for the statetransition analyzer: State/Partner writes
// through a *am.Slot are sanctioned only inside function literals passed
// to AM.ForEachAllocated (the commit/recovery scans); anywhere else they
// bypass the state hook and must go through the AM's setters. Field
// writes on value copies are fine — a copy only takes effect through
// AM.Set, which fires the hook itself.
package fixture

import (
	"coma/internal/am"
	"coma/internal/proto"
)

// commitScan is the sanctioned shape: bulk mutation inside a
// ForEachAllocated callback. Silent.
func commitScan(a *am.AM) {
	a.ForEachAllocated(func(item proto.ItemID, s *am.Slot) {
		switch s.State {
		case proto.PreCommit1:
			s.State = proto.SharedCK1
		case proto.InvCK1, proto.InvCK2:
			s.State = proto.Invalid
			s.Partner = proto.None
		}
	})
}

// demote writes through a slot pointer outside any scan: both flagged.
func demote(s *am.Slot) {
	s.State = proto.Invalid // want `direct write to am\.Slot\.State bypasses the state hook`
	s.Partner = proto.None  // want `direct write to am\.Slot\.Partner bypasses the state hook`
}

// stash leaks the callback's pointer and mutates it after the scan; the
// write site is outside the callback, so it is flagged.
func stash(a *am.AM, item proto.ItemID) {
	var leaked *am.Slot
	a.ForEachAllocated(func(it proto.ItemID, s *am.Slot) {
		if it == item {
			leaked = s
		}
	})
	leaked.State = proto.Exclusive // want `direct write to am\.Slot\.State bypasses the state hook`
}

// slotRef mirrors the engines' alias; the alias does not hide the type.
type slotRef = am.Slot

func aliasWrite(s *slotRef) {
	s.State = proto.Shared // want `direct write to am\.Slot\.State bypasses the state hook`
}

// copyModify mutates a value copy and installs it through Set: silent.
func copyModify(a *am.AM, item proto.ItemID) {
	sl := a.Slot(item)
	sl.State = proto.Exclusive
	a.Set(item, sl)
}

// widget has its own State field; unrelated types are out of scope.
type widget struct {
	State   proto.State
	Partner proto.NodeID
}

func unrelated(w *widget) {
	w.State = proto.Invalid
	w.Partner = proto.None
}

// setters: the sanctioned mutation path outside scans. Silent.
func setters(a *am.AM, item proto.ItemID) {
	a.SetState(item, proto.MasterShared)
	a.SetPartner(item, proto.NodeID(1))
}

// Fixture for the exhaustivestate analyzer. Good switches (full
// coverage, or a default that panics / returns an error) must stay
// silent; switches that can silently swallow a protocol state must be
// flagged once per missing constant.
package fixture

import (
	"fmt"

	"coma/internal/proto"
)

// Full coverage of all ten ECP states: silent.
func readable(s proto.State) bool {
	switch s {
	case proto.Shared, proto.MasterShared, proto.Exclusive,
		proto.SharedCK1, proto.SharedCK2:
		return true
	case proto.Invalid, proto.InvCK1, proto.InvCK2,
		proto.PreCommit1, proto.PreCommit2:
		return false
	}
	panic("unreachable")
}

// Partial coverage but a loud (panicking) default: silent.
func class(k proto.MsgKind) int {
	switch k {
	case proto.MsgReadReq, proto.MsgWriteReq:
		return 0
	default:
		panic("fixture: unhandled kind " + k.String())
	}
}

// Partial coverage but the default returns a non-nil error: silent.
func describe(s proto.State) (string, error) {
	switch s {
	case proto.Invalid:
		return "invalid", nil
	default:
		return "", fmt.Errorf("fixture: unhandled state %v", s)
	}
}

// A non-constant case expression makes coverage undecidable: silent.
func dynamic(s, other proto.State) bool {
	switch s {
	case other:
		return true
	}
	return false
}

// Missing two states, no default: one diagnostic per missing constant.
func badNoDefault(s proto.State) bool {
	switch s { // want `switch on proto.State does not cover PreCommit1` `switch on proto.State does not cover PreCommit2`
	case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive:
		return true
	case proto.SharedCK1, proto.SharedCK2, proto.InvCK1, proto.InvCK2:
		return false
	}
	return false
}

// Missing a state with a default that silently swallows it.
func badSilentDefault(s proto.State) bool {
	switch s { // want `switch on proto.State does not cover SharedCK2 and its default does not fail loudly`
	case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
		proto.SharedCK1, proto.InvCK1, proto.InvCK2,
		proto.PreCommit1, proto.PreCommit2:
		return true
	default:
		return false
	}
}

// Fixture for the closuresched analyzer: a mesh-delivery-shaped hot
// path that schedules per-event closures through Engine.At/After must be
// flagged where the typed-event API exists; the typed form and named
// function values (one-time ticker closures) stay silent.
package fixture

import "coma/internal/sim"

// net mimics the shape of internal/mesh.Network: a deliver method and a
// pending-message slab addressed by the typed-event payload.
type net struct {
	eng     *sim.Engine
	pending []msg
}

type msg struct{ dst int }

func (n *net) OnEvent(e *sim.Engine, arg int64) { n.deliver(n.pending[arg]) }

func (n *net) deliver(m msg) {}

// sendClosure is the pre-rewrite hot path: one closure allocation per
// delivered message.
func (n *net) sendClosure(m msg, deliverAt int64) {
	n.eng.After(0, func() { n.deliver(m) }) // want `closure literal scheduled via Engine.After allocates per event`
	n.eng.At(deliverAt, func() {            // want `closure literal scheduled via Engine.At allocates per event`
		n.deliver(m)
	})
}

// sendTyped is the rewritten form: the message parks in the slab and a
// typed event carries its index; no per-event allocation.
func (n *net) sendTyped(m msg, deliverAt int64) {
	idx := int64(len(n.pending))
	n.pending = append(n.pending, m)
	n.eng.AtSink(deliverAt, n, idx)
	n.eng.AfterSink(0, n, idx)
}

// tick is a self-rescheduling sampler: the closure is allocated once for
// the whole run and reused, so passing it as a named value is fine.
func tick(e *sim.Engine) {
	var fn func()
	fn = func() { e.After(10_000, fn) }
	e.After(10_000, fn)
}

// otherAfter is not an Engine method: not a scheduling call.
type retrier struct{}

func (r *retrier) After(d int64, fn func()) {}

func notEngine(r *retrier) {
	r.After(0, func() {})
}

// Package analyzers holds the comalint analyzers: machine-checked
// protocol and determinism rules the compiler cannot enforce. See
// README.md §Static analysis for the policy behind each one.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"coma/internal/lint/analysis"
)

// ExhaustiveState reports switches over internal/proto enumeration types
// (proto.State, proto.MsgKind, proto.InjectCause, ...) that neither
// cover every declared constant nor carry a default clause that fails
// loudly (panics or returns a non-nil error). The Extended Coherence
// Protocol adds seven states on top of the COMA-F four; a silently
// unhandled state is exactly the kind of bug that corrupts a recovery
// pair without tripping any test.
var ExhaustiveState = &analysis.Analyzer{
	Name: "exhaustivestate",
	Doc: "switches over internal/proto enum types must cover every constant " +
		"or fail loudly in default",
	Run: runExhaustiveState,
}

// enumPackageSuffix identifies the package whose enumeration types the
// analyzer polices.
const enumPackageSuffix = "internal/proto"

// sentinelConst reports whether a declared constant is a count sentinel
// (numStates, NumInjectCauses, ...) rather than a real enumerator.
func sentinelConst(name string) bool {
	return strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num")
}

func runExhaustiveState(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), enumPackageSuffix) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}

	// Collect the declared enumerators of the type: every package-level
	// constant of exactly this type, minus count sentinels and minus
	// constants the switching package cannot name.
	samePkg := pass.Pkg != nil && pass.Pkg.Path() == obj.Pkg().Path()
	type enumerator struct {
		name  string
		value string
	}
	var enums []enumerator
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if sentinelConst(name) || (!samePkg && !c.Exported()) {
			continue
		}
		enums = append(enums, enumerator{name: name, value: c.Val().ExactString()})
	}
	if len(enums) < 2 {
		return // not an enumeration (NodeID's None, ItemID's NoItem, ...)
	}

	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if ev, ok := pass.TypesInfo.Types[e]; ok && ev.Value != nil {
				covered[ev.Value.ExactString()] = true
			} else {
				// A non-constant case expression makes coverage
				// undecidable; treat the switch as out of scope.
				return
			}
		}
	}

	var missing []string
	for _, e := range enums {
		if !covered[e.value] {
			missing = append(missing, e.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && failsLoudly(pass, defaultClause) {
		return
	}
	tn := obj.Pkg().Name() + "." + obj.Name()
	for _, name := range missing {
		if defaultClause != nil {
			pass.Reportf(sw.Switch,
				"switch on %s does not cover %s and its default does not fail loudly",
				tn, name)
		} else {
			pass.Reportf(sw.Switch, "switch on %s does not cover %s", tn, name)
		}
	}
}

// failsLoudly reports whether a default clause panics, calls a
// Fatal-style function, or returns a non-nil error.
func failsLoudly(pass *analysis.Pass, cc *ast.CaseClause) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" {
						loud = true
					}
				case *ast.SelectorExpr:
					if strings.HasPrefix(fun.Sel.Name, "Fatal") {
						loud = true
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
						continue
					}
					if tv, ok := pass.TypesInfo.Types[res]; ok && isErrorType(tv.Type) {
						loud = true
					}
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorInterface)
}

package analyzers_test

import (
	"testing"

	"coma/internal/lint/analysistest"
	"coma/internal/lint/analyzers"
)

func TestExhaustiveState(t *testing.T) {
	analysistest.Run(t, analyzers.ExhaustiveState, "testdata/src/exhaustivestate")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analyzers.Determinism, "testdata/src/determinism")
}

func TestSimBlocking(t *testing.T) {
	analysistest.Run(t, analyzers.SimBlocking, "testdata/src/simblocking")
}

func TestDeterminismScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/sim":       true,
		"coma/internal/coherence": true,
		"coma/internal/core":      true,
		"coma/internal/node":      true,
		"coma/internal/machine":   false,
		"coma/internal/proto":     false,
		"coma/cmd/comasim":        false,
	} {
		if got := analyzers.DeterminismScope(path); got != want {
			t.Errorf("DeterminismScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestSimBlockingScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/coherence": true,
		"coma/internal/machine":   true,
		"coma/internal/snoop":     true,
		"coma/internal/sim":       false, // implements the primitives
		"coma/internal/proto":     false,
		"coma/cmd/comasim":        false,
	} {
		if got := analyzers.SimBlockingScope(path); got != want {
			t.Errorf("SimBlockingScope(%q) = %v, want %v", path, got, want)
		}
	}
}

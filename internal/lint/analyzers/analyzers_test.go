package analyzers_test

import (
	"testing"

	"coma/internal/lint/analysistest"
	"coma/internal/lint/analyzers"
)

func TestExhaustiveState(t *testing.T) {
	analysistest.Run(t, analyzers.ExhaustiveState, "testdata/src/exhaustivestate")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analyzers.Determinism, "testdata/src/determinism")
}

func TestSimBlocking(t *testing.T) {
	analysistest.Run(t, analyzers.SimBlocking, "testdata/src/simblocking")
}

// TestClosureSched proves the typed-event rule bites where it matters:
// the fixture reproduces internal/mesh's delivery scheduling, and the
// closure-literal form is diagnosed while the AtSink/AfterSink typed
// form and a one-time named ticker closure stay silent.
func TestClosureSched(t *testing.T) {
	analysistest.Run(t, analyzers.ClosureSched, "testdata/src/closuresched")
}

func TestObsWallClock(t *testing.T) {
	analysistest.Run(t, analyzers.ObsWallClock, "testdata/src/obsimpl")
}

// TestObsWallClockFlagsSnapshotBuilders proves the snapshot-builder
// rule: wall-clock reads in any function returning internal/inspect
// view types (pointers and slices unwrapped) are flagged, while
// serving-layer rate computations stay out of scope.
func TestObsWallClockFlagsSnapshotBuilders(t *testing.T) {
	analysistest.Run(t, analyzers.ObsWallClock, "testdata/src/inspectlike")
}

// TestObsWallClockFlagsReceiptBuilders proves the same contract covers
// execution-receipt builders: receipts attest runs byte-for-byte, so
// any function returning internal/obs/receipt types must derive every
// field from the run, never the wall clock.
func TestObsWallClockFlagsReceiptBuilders(t *testing.T) {
	analysistest.Run(t, analyzers.ObsWallClock, "testdata/src/receiptlike")
}

func TestStateTransition(t *testing.T) {
	analysistest.Run(t, analyzers.StateTransition, "testdata/src/statetransition")
}

// TestSimBlockingFlagsRunnerShapedCode proves the ConcurrencyAllowlist
// is an explicit exception, not an analyzer hole: the runnerlike fixture
// reproduces internal/experiments/runner's constructs in an
// un-allowlisted package and every one of them is diagnosed.
func TestSimBlockingFlagsRunnerShapedCode(t *testing.T) {
	analysistest.Run(t, analyzers.SimBlocking, "testdata/src/runnerlike")
}

// TestSimBlockingFlagsServerShapedCode does the same for the comad
// daemon's constructs (event broadcast, drain, SSE follow loop): the
// serverlike fixture reproduces them outside the allowlisted
// internal/server package and every one is diagnosed.
func TestSimBlockingFlagsServerShapedCode(t *testing.T) {
	analysistest.Run(t, analyzers.SimBlocking, "testdata/src/serverlike")
}

// TestSimBlockingFlagsClusterShapedCode does the same for the worker
// agent's constructs (slot executor goroutines, lease-queue wait,
// heartbeat ticker loop, backoff sleep, drain): the clusterlike fixture
// reproduces them outside the allowlisted internal/cluster package and
// every one is diagnosed.
func TestSimBlockingFlagsClusterShapedCode(t *testing.T) {
	analysistest.Run(t, analyzers.SimBlocking, "testdata/src/clusterlike")
}

// TestDeterminismFlagsTraceAnalysisShapedCode pins the reason
// DeterminismScope treats internal/obs as a subtree: the txnviewlike
// fixture reproduces the offline trace-checker's constructs (replay
// maps, diagnostic lists, report rendering) and every nondeterministic
// variant is diagnosed, while the collect-then-sort form stays silent.
func TestDeterminismFlagsTraceAnalysisShapedCode(t *testing.T) {
	analysistest.Run(t, analyzers.Determinism, "testdata/src/txnviewlike")
}

func TestDeterminismScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/sim":                true,
		"coma/internal/coherence":          true,
		"coma/internal/core":               true,
		"coma/internal/node":               true,
		"coma/internal/obs":                true,
		"coma/internal/obs/txnview":        true, // offline analyses: pure trace functions
		"coma/internal/experiments":        true,
		"coma/internal/experiments/runner": false, // ConcurrencyAllowlist
		"coma/internal/server":             false, // ConcurrencyAllowlist
		"coma/internal/server/client":      false, // ConcurrencyAllowlist
		"coma/internal/server/future":      true,  // subtree default: checked
		"coma/internal/cluster":            false, // ConcurrencyAllowlist
		"coma/internal/cluster/sub":        true,  // subtree default: checked
		"coma/internal/mesh":               true,  // slab indices feed dispatch order
		"coma/internal/machine":            true,  // assembles and seeds the engine
		"coma/internal/inspect":            true,  // safe-point snapshots: sim time only
		"coma/internal/proto":              false,
		"coma/cmd/comasim":                 false,
	} {
		if got := analyzers.DeterminismScope(path); got != want {
			t.Errorf("DeterminismScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestSimBlockingScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/coherence":          true,
		"coma/internal/machine":            true,
		"coma/internal/snoop":              true,
		"coma/internal/experiments":        true,
		"coma/internal/experiments/runner": false, // ConcurrencyAllowlist
		"coma/internal/server":             false, // ConcurrencyAllowlist
		"coma/internal/server/client":      false, // ConcurrencyAllowlist
		"coma/internal/server/future":      true,  // subtree default: checked
		"coma/internal/cluster":            false, // ConcurrencyAllowlist
		"coma/internal/cluster/sub":        true,  // subtree default: checked
		"coma/internal/sim":                false, // implements the primitives
		"coma/internal/proto":              false,
		"coma/cmd/comasim":                 false,
	} {
		if got := analyzers.SimBlockingScope(path); got != want {
			t.Errorf("SimBlockingScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestClosureSchedScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/mesh":               true,
		"coma/internal/coherence":          true,
		"coma/internal/core":               true,
		"coma/internal/machine":            true,
		"coma/internal/node":               true,
		"coma/internal/snoop":              true,
		"coma/internal/sim":                false, // implements both scheduling paths
		"coma/internal/experiments":        false, // no engine scheduling
		"coma/internal/experiments/runner": false,
		"coma/internal/obs":                false,
		"coma/cmd/comasim":                 false,
	} {
		if got := analyzers.ClosureSchedScope(path); got != want {
			t.Errorf("ClosureSchedScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestStateTransitionScope(t *testing.T) {
	for path, want := range map[string]bool{
		"coma/internal/coherence": true,
		"coma/internal/snoop":     true,
		"coma/internal/core":      true,
		"coma/internal/machine":   true,
		"coma/internal/node":      true,
		"coma/internal/mesh":      true,
		"coma/internal/am":        false, // implements the setters and the hook
		"coma/internal/fault":     false, // drives machines, never touches slots
		"coma/internal/proto":     false,
		"coma/cmd/comasim":        false,
	} {
		if got := analyzers.StateTransitionScope(path); got != want {
			t.Errorf("StateTransitionScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestConcurrencyAllowlistEntriesJustified(t *testing.T) {
	for path, reason := range analyzers.ConcurrencyAllowlist {
		if reason == "" {
			t.Errorf("allowlist entry %q has no recorded justification", path)
		}
	}
}

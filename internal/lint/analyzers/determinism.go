package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"coma/internal/lint/analysis"
)

// Determinism reports constructs that make a simulation run depend on
// wall-clock time, global PRNG state, or Go map iteration order — the
// classic nondeterministic-replay bugs:
//
//   - calls to time.Now / time.Since / time.Until (simulated time is the
//     sim.Engine clock);
//   - use of the global math/rand (and math/rand/v2) generators — every
//     stochastic choice must draw from a seed-derived sim.RNG; the file
//     internal/sim/rng.go is the single allowlisted home for PRNG
//     plumbing;
//   - ranging over a map while appending to a slice, concatenating onto
//     a string, sending on a channel, or scheduling simulator work in
//     the loop body, unless the collected slice is sorted before use.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand and order-sensitive " +
		"map iteration in simulator packages",
	Run: runDeterminism,
}

// DeterminismScope reports whether the analyzer applies to a package:
// the deterministic core of the simulator (including the mesh message
// fabric and the machine assembly, whose slab indices and typed-event
// timers feed the kernel's replay-identical dispatch), the observability subtree
// (whose exported traces promise byte-identical same-seed replay and
// whose offline analyses must be pure trace functions), plus
// the experiment campaign subtree (whose tables promise bit-identical
// output for every worker count) and the serving subtree (whose result
// cache promises byte-identical payloads per run identity). Packages on
// the ConcurrencyAllowlist are exempt — which today covers the server
// and client packages themselves, so the subtree rule guards future
// sub-packages by default.
func DeterminismScope(pkgPath string) bool {
	if allowlisted(pkgPath) {
		return false
	}
	switch {
	case strings.HasSuffix(pkgPath, "internal/sim"),
		strings.HasSuffix(pkgPath, "internal/coherence"),
		strings.HasSuffix(pkgPath, "internal/core"),
		strings.HasSuffix(pkgPath, "internal/node"),
		strings.HasSuffix(pkgPath, "internal/mesh"),
		strings.HasSuffix(pkgPath, "internal/machine"):
		return true
	}
	// internal/obs is a subtree, not a suffix: the offline analysis
	// packages under it (txnview) promise the same trace always yields
	// the same report, so they inherit the rule. internal/inspect is the
	// live-inspection layer, whose safe-point snapshots promise that an
	// inspected run is byte-identical to an uninspected one — wall-clock
	// reads there would leak nondeterminism straight into views and
	// samples.
	return inSubtree(pkgPath, "internal/obs") ||
		inSubtree(pkgPath, "internal/experiments") ||
		inSubtree(pkgPath, "internal/server") ||
		inSubtree(pkgPath, "internal/cluster") ||
		inSubtree(pkgPath, "internal/inspect")
}

// rngFile is the one file allowed to touch PRNG internals.
const rngFile = "rng.go"

// schedulingMethods are method names whose call inside a map-range body
// means per-iteration ordered work (event scheduling, message sends,
// process wakeups).
var schedulingMethods = map[string]bool{
	"At": true, "After": true, "Send": true, "Spawn": true,
	"Schedule": true, "Post": true, "Publish": true,
	"WakeNow": true, "Complete": true,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	for i, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == rngFile {
			continue
		}
		_ = i
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.FuncDecl:
				checkMapRanges(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBannedCall flags wall-clock and global-PRNG calls.
func checkBannedCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on *rand.Rand or sim.RNG) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in simulator code: use the sim.Engine clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"global %s.%s: derive a sim.RNG from the run seed (only %s may touch PRNG state)",
				filepath.Base(fn.Pkg().Path()), fn.Name(), rngFile)
		}
	}
}

// checkMapRanges walks one function body looking for range-over-map
// loops whose bodies do order-sensitive work.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	// Names passed to a sort call anywhere in the function, with the
	// position of the call: an append inside a map range is fine if the
	// destination slice is sorted after the loop.
	sorted := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		sortCall := pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")
		if pkg.Name == "sort" {
			switch sel.Sel.Name {
			case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
				sortCall = true
			}
		}
		if sortCall {
			for _, arg := range call.Args {
				if name := rootIdent(arg); name != "" {
					sorted[name] = call.Pos()
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sorted)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[string]token.Pos) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: iteration order is nondeterministic")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n, sorted)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && schedulingMethods[sel.Sel.Name] {
				pass.Reportf(n.Pos(),
					"%s call inside range over map: events fire in map order; "+
						"collect and sort keys first", sel.Sel.Name)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags `x = append(x, ...)` into a slice that is
// never sorted afterwards, and `s += ...` string building, inside a map
// range.
func checkMapRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, sorted map[string]token.Pos) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if tv, ok := pass.TypesInfo.Types[as.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(as.Pos(),
					"string concatenation inside range over map: output order is nondeterministic")
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if obj, found := pass.TypesInfo.Uses[id]; found {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				continue
			}
		}
		dest := ""
		if i < len(as.Lhs) {
			dest = rootIdent(as.Lhs[i])
		}
		if pos, ok := sorted[dest]; ok && pos > rng.End() {
			continue // collected, then sorted: the canonical fix
		}
		pass.Reportf(call.Pos(),
			"append inside range over map without a later sort: element order is nondeterministic")
	}
}

// rootIdent returns the base identifier name of an expression like
// `x`, `&x`, `x[i]` or `x.f`, or "" if there is none.
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return ""
		}
	}
}

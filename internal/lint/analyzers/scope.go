package analyzers

import "strings"

// ConcurrencyAllowlist lists the packages exempt from the determinism and
// simblocking analyzers even though their import paths fall inside the
// checked subtrees. Every entry is a deliberate policy decision with a
// recorded justification; code that wants real goroutines or channels
// belongs in one of these packages (or earns a new entry with a reason),
// not in an analyzer opt-out comment.
var ConcurrencyAllowlist = map[string]string{
	// The campaign worker pool is host-side concurrency by design: it
	// schedules whole simulations, never code running under a sim.Engine.
	// Determinism is preserved by isolation instead of ordering — every
	// simulation owns a private engine and seed-derived RNG streams, so
	// results are bit-identical for any worker schedule (asserted by
	// TestParallelMatchesSerial in internal/experiments).
	"coma/internal/experiments/runner": "campaign worker pool; determinism by per-run isolation",

	// The comad daemon is host-side serve-layer concurrency: HTTP
	// handlers, the job scheduler and graceful drain run real goroutines
	// and channels around whole simulations (scheduled through the
	// allowlisted runner pool), never inside one. Determinism is
	// preserved the same way as the campaign's — per-run isolation —
	// and asserted by the 32-way coalescing test in dedupe_test.go,
	// which requires byte-identical payloads from one shared run.
	"coma/internal/server": "comad daemon; host-side HTTP/scheduler concurrency around isolated runs",

	// The daemon's client blocks on HTTP I/O and Retry-After backoff
	// (wall-clock by nature: it paces requests to a real network
	// service); it never runs under a sim.Engine.
	"coma/internal/server/client": "comad HTTP client; wall-clock backoff against a real service",

	// The cluster worker agent is host-side serve-layer concurrency like
	// the daemon it talks to: slot executors, the heartbeat ticker and
	// the lease long-poll are real goroutines around whole simulations,
	// never inside one. Determinism is preserved by the same per-run
	// isolation argument — each leased job builds a private machine from
	// its canonical identity — and asserted end to end by the
	// kill-a-worker test in internal/cluster, which requires
	// byte-identical campaign tables after a mid-run requeue.
	"coma/internal/cluster": "comad worker agent; host-side lease/heartbeat concurrency around isolated runs",
}

// allowlisted reports whether a package path has a ConcurrencyAllowlist
// entry, matching by full path or import-path suffix.
func allowlisted(pkgPath string) bool {
	for p := range ConcurrencyAllowlist {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// inSubtree reports whether pkgPath is root or any package below it,
// matching root by import-path suffix.
func inSubtree(pkgPath, root string) bool {
	return strings.HasSuffix(pkgPath, root) || strings.Contains(pkgPath, root+"/")
}

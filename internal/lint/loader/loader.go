// Package loader type-checks Go packages from source using only the
// standard library. It drives `go list -json -deps` to enumerate a
// package pattern's full dependency closure (the output is topologically
// sorted, dependencies first), parses every package's files and
// type-checks them in order, so analyzers get complete types.Info even
// for packages that import the standard library.
//
// This replaces golang.org/x/tools/go/packages, which is unavailable in
// the offline build environment.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	// GoFiles are the absolute paths of the parsed files, parallel to
	// Files.
	GoFiles []string
	Types   *types.Package
	Info    *types.Info
	// DepOnly marks packages loaded only because something in the
	// requested pattern imports them.
	DepOnly bool
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Loader caches type-checked packages across Load calls.
type Loader struct {
	// ModuleDir is the directory `go list` runs in (the module root).
	ModuleDir string

	fset  *token.FileSet
	types map[string]*types.Package // completed packages by import path
	meta  map[string]listedPkg
}

// New returns a loader rooted at the given module directory.
func New(moduleDir string) *Loader {
	return &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		types:     map[string]*types.Package{"unsafe": types.Unsafe},
		meta:      make(map[string]listedPkg),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load type-checks the packages matching the go list patterns (for
// example "./..." or an import path) plus their dependency closure, and
// returns the matched packages in stable (import path) order. Packages
// pulled in only as dependencies are type-checked but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	metas, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, m := range metas {
		if m.DepOnly {
			if _, err := l.check(m.ImportPath); err != nil {
				return nil, err
			}
			continue
		}
		p, err := l.loadOne(m)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the .go files of one directory as a
// single package outside the `go list` universe (an analysistest
// fixture). Its imports are resolved through the module rooted at
// ModuleDir, so fixtures may import both standard-library and in-module
// packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	sort.Strings(files)
	m := listedPkg{
		ImportPath: "fixture/" + filepath.Base(dir),
		Dir:        dir,
		GoFiles:    nil, // absolute paths below
	}
	for _, f := range files {
		m.GoFiles = append(m.GoFiles, filepath.Base(f))
	}
	return l.loadOne(m)
}

// goList runs `go list -json -deps` and decodes the package stream.
func (l *Loader) goList(patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var metas []listedPkg
	for dec.More() {
		var m listedPkg
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		metas = append(metas, m)
		l.meta[m.ImportPath] = m
	}
	return metas, nil
}

// check returns the types.Package for an import path, type-checking it
// (and, recursively, its imports) on first use.
func (l *Loader) check(path string) (*types.Package, error) {
	if p, ok := l.types[path]; ok {
		return p, nil
	}
	m, ok := l.meta[path]
	if !ok {
		metas, err := l.goList([]string{path})
		if err != nil {
			return nil, err
		}
		for _, mm := range metas {
			if mm.ImportPath == path {
				m = mm
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("loader: go list did not resolve %q", path)
		}
	}
	p, err := l.loadOne(m)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// loadOne parses and type-checks one listed package.
func (l *Loader) loadOne(m listedPkg) (*Package, error) {
	if len(m.CgoFiles) > 0 {
		// Cgo packages cannot be type-checked from source without the
		// cgo preprocessing step; fall back to the compiler importer
		// (which may also fail offline, but nothing in this module pulls
		// in cgo on linux).
		p, err := importer.Default().Import(m.ImportPath)
		if err != nil {
			return nil, fmt.Errorf("loader: cgo package %s: %v", m.ImportPath, err)
		}
		l.types[m.ImportPath] = p
		return &Package{PkgPath: m.ImportPath, Dir: m.Dir, Fset: l.fset, Types: p, DepOnly: m.DepOnly}, nil
	}

	pkg := &Package{
		PkgPath: m.ImportPath,
		Dir:     m.Dir,
		Fset:    l.fset,
		DepOnly: m.DepOnly,
	}
	for _, name := range m.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return l.check(path)
		}),
		// The standard library occasionally uses constructs go/types
		// accepts only with diagnostics downgraded (e.g. assembly-backed
		// declarations). Collect but do not fail on errors in packages
		// outside the module; fail loudly inside it.
		Error: func(err error) {},
	}
	tpkg, err := conf.Check(m.ImportPath, l.fset, pkg.Files, info)
	if err != nil && !m.Standard && !m.DepOnly {
		return nil, fmt.Errorf("loader: type-checking %s: %v", m.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.types[m.ImportPath] = tpkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

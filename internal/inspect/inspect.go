// Package inspect is the live-inspection layer: read-only queries
// against a running simulation, answered at the engine's deterministic
// safe points (sim.Engine.SetSafePointHook) so an inspected run's
// dispatch sequence — and therefore its trace — is byte-identical to an
// uninspected one.
//
// The split of responsibilities:
//
//   - A Source (implemented by machine.Machine) knows how to build the
//     view structs from simulator state. Its methods are only ever
//     called while the simulation is quiescent: at a safe point on the
//     baton-holding goroutine, or after the run has finished.
//   - A Controller mediates between client goroutines (HTTP handlers,
//     the comasim REPL) and the simulation: clients post queries and
//     pause/step/resume requests; the safe-point hook executes them.
//
// The views are plain JSON-taggable values with deterministic encodings
// (no map iteration), shared by the comad HTTP API, the comasim REPL
// and comatop.
package inspect

import (
	"coma/internal/obs"
	"coma/internal/proto"
)

// Source answers inspection queries. Implementations read simulator
// state directly and are only invoked while it is quiescent (see the
// package comment); they must not mutate anything.
type Source interface {
	// InspectLine reports the directory entry and every AM copy of one
	// item: who is master, where the recovery pair lives, KState.
	InspectLine(item proto.ItemID) LineView
	// InspectNodes reports per-node liveness, frame usage and the ECP
	// state-count histogram, indexed by node id.
	InspectNodes() []NodeView
	// InspectQueues reports mesh occupancy: in-flight messages, busy
	// links and per-node injection-port backlogs for both subnets.
	InspectQueues() QueuesView
	// InspectSummary reports scheduler and checkpoint-phase state.
	InspectSummary() SummaryView
}

// CopyView is one AM copy of an item.
type CopyView struct {
	Node  int    `json:"node"`
	State string `json:"state"`
	// Partner is the node holding the other copy of a recovery pair;
	// -1 when the state is not a recovery state.
	Partner int    `json:"partner"`
	Value   uint64 `json:"value"`
}

// LineView is the per-line query result: the directory's view of one
// item plus every copy found in an attraction memory.
type LineView struct {
	Item int64 `json:"item"`
	Page int64 `json:"page"`
	// Home is the directory node for the item.
	Home int `json:"home"`
	// Present reports whether a directory entry exists (the item has
	// been touched since the last rollback that discarded it).
	Present bool `json:"present"`
	// Owner is the node whose copy answers requests; -1 when none.
	Owner   int        `json:"owner"`
	Sharers []int      `json:"sharers"`
	Copies  []CopyView `json:"copies"`
	// RecoveryPairs lists each recovery pair as the two nodes holding
	// its copies, lower id first, deduplicated.
	RecoveryPairs [][2]int `json:"recovery_pairs"`
}

// NodeView is one node's ECP state histogram.
type NodeView struct {
	Node   int  `json:"node"`
	Alive  bool `json:"alive"`
	Frames int  `json:"frames"`
	// States tallies the node's allocated copies per protocol state;
	// marshals as an object keyed by state name in declaration order.
	States obs.StateCounts `json:"states"`
}

// SubnetView is mesh occupancy for one subnet.
type SubnetView struct {
	// Inflight counts messages accepted by Send but not yet delivered.
	Inflight int64 `json:"inflight"`
	// BusyLinks counts directed links occupied at the sample time.
	BusyLinks int `json:"busy_links"`
	// NISendBusy and NIRecvBusy are per-node injection-port backlogs in
	// cycles (0 = idle), indexed by node id.
	NISendBusy []int64 `json:"ni_send_busy"`
	NIRecvBusy []int64 `json:"ni_recv_busy"`
}

// QueuesView is the queues query result.
type QueuesView struct {
	SimCycles int64      `json:"sim_cycles"`
	Request   SubnetView `json:"request"`
	Reply     SubnetView `json:"reply"`
}

// PhaseView is the fault/checkpoint phase of the coordinator.
type PhaseView struct {
	// Round numbers checkpoint/recovery rounds; 0 before the first.
	Round int64 `json:"round"`
	// Recovery reports whether the current round is a recovery
	// (rollback) rather than a recovery-point establishment.
	Recovery bool `json:"recovery"`
	// PauseRequested reports whether processors are being gathered for
	// a round (the quiesce phase is in progress).
	PauseRequested bool `json:"pause_requested"`
	QuiesceGot     int  `json:"quiesce_got"`
	QuiesceNeed    int  `json:"quiesce_need"`
	Phase1Got      int  `json:"phase1_got"`
	Phase1Need     int  `json:"phase1_need"`
	Phase2Got      int  `json:"phase2_got"`
	Phase2Need     int  `json:"phase2_need"`
	// Cumulative checkpointing statistics (stats.Checkpointing).
	Established     int64 `json:"established"`
	Aborted         int64 `json:"aborted"`
	Skipped         int64 `json:"skipped"`
	Recoveries      int64 `json:"recoveries"`
	PendingFailures int   `json:"pending_failures"`
}

// SummaryView is the scheduler + phase summary.
type SummaryView struct {
	SimCycles int64 `json:"sim_cycles"`
	// Events is the total dispatched so far (sim.Engine.Events).
	Events    int64 `json:"events"`
	Processes int   `json:"processes"`
	// Pending-event population by residence (sim.Engine.QueueStats).
	WheelEvents    int `json:"wheel_events"`
	OverflowEvents int `json:"overflow_events"`
	NowQueueEvents int `json:"nowq_events"`
	Nodes          int `json:"nodes"`
	LiveNodes      int `json:"live_nodes"`
	DirectoryItems int `json:"directory_items"`
	LockedItems    int `json:"locked_items"`
	// Finished reports whether the run has completed (queries are then
	// answered from the final quiescent state).
	Finished bool      `json:"finished"`
	Phase    PhaseView `json:"phase"`
}

// Sample is one periodic snapshot pushed on the inspect stream. Seq
// increases by one per sample; a client that sees a gap missed samples
// (the stream carries only the latest).
type Sample struct {
	Seq     int64       `json:"seq"`
	Summary SummaryView `json:"summary"`
	Queues  QueuesView  `json:"queues"`
	Nodes   []NodeView  `json:"nodes"`
}

package inspect

import (
	"sync"
	"sync/atomic"
)

// Controller mediates between client goroutines and the simulation.
// Clients (HTTP handlers, the REPL) post queries and pause/step/resume
// requests from any goroutine; the simulation executes them at its next
// safe point by calling AtSafePoint from the engine hook, on whichever
// goroutine holds the dispatch baton. Because queries run between event
// dispatches and are read-only, they cannot perturb dispatch order: an
// inspected run's trace is byte-identical to an uninspected one.
//
// Concurrency discipline: the attention flag is the per-event fast path
// — one atomic load when no client work is pending, so an attached but
// idle controller costs next to nothing. All request state is guarded
// by mu; blocking a paused simulation happens on cond inside the safe
// point, which is legal precisely because the engine is quiescent there
// (wall-clock stalls never touch simulated time).
type Controller struct {
	src Source

	// attention is set by clients when work is posted and cleared by
	// the safe point once nothing is pending; AtSafePoint returns after
	// the sampling check unless it is set.
	attention atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond // wakes a paused safe point to recheck requests
	queries  []query
	pauseReq []chan struct{} // Pause callers awaiting a safe-point ack
	stepAcks []chan struct{} // Step callers awaiting budget drain
	paused   bool
	// stepBudget is the number of events the simulation may dispatch
	// while paused before parking again.
	stepBudget int64
	resumeReq  bool
	finished   bool

	// Sampling state, touched only at safe points and in Finish.
	sampleEvery int64
	nextSample  int64
	sampleSeq   int64

	latest     atomic.Pointer[Sample]
	sampleMu   sync.Mutex
	sampleWake chan struct{}

	doneCh chan struct{}
}

type query struct {
	fn   func(Source)
	done chan struct{}
}

// NewController returns a controller answering queries from src. With
// sampleEvery > 0 a Sample is published on the stream roughly every
// sampleEvery simulated cycles (at the first safe point past each
// mark). The caller must install AtSafePoint as the engine's safe-point
// hook and must call Finish once the run is over.
func NewController(src Source, sampleEvery int64) *Controller {
	c := &Controller{
		src:         src,
		sampleEvery: sampleEvery,
		sampleWake:  make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AtSafePoint is the engine safe-point hook: called before every event
// dispatch with the simulation quiescent. It publishes a periodic
// sample and serves any pending client requests; with no clients
// attached it costs one atomic load beyond the sampling check.
func (c *Controller) AtSafePoint(now int64) {
	if c.sampleEvery > 0 && now >= c.nextSample {
		c.takeSample(false)
		c.nextSample = now + c.sampleEvery
	}
	if !c.attention.Load() {
		return
	}
	c.serve()
}

// serve drains client requests at a safe point, blocking while paused.
func (c *Controller) serve() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for len(c.queries) > 0 {
			q := c.queries[0]
			c.queries = c.queries[1:]
			q.fn(c.src)
			close(q.done)
		}
		if len(c.pauseReq) > 0 {
			// The simulation is parked right here: pause is in effect.
			c.paused = true
			for _, ack := range c.pauseReq {
				close(ack)
			}
			c.pauseReq = nil
		}
		if !c.paused {
			c.resumeReq = false
			c.attention.Store(false)
			return
		}
		if c.stepBudget > 0 {
			// Dispatch exactly one event, then return here: attention
			// stays set so the next safe point re-enters serve.
			c.stepBudget--
			return
		}
		// Budget drained: the requested events have been dispatched.
		for _, ack := range c.stepAcks {
			close(ack)
		}
		c.stepAcks = nil
		if c.resumeReq {
			c.resumeReq = false
			c.paused = false
			continue
		}
		c.cond.Wait()
	}
}

// takeSample builds and publishes a snapshot. Only called with the
// simulation quiescent (safe point or Finish).
func (c *Controller) takeSample(finished bool) {
	c.sampleSeq++
	s := &Sample{
		Seq:     c.sampleSeq,
		Summary: c.src.InspectSummary(),
		Queues:  c.src.InspectQueues(),
		Nodes:   c.src.InspectNodes(),
	}
	s.Summary.Finished = finished
	c.latest.Store(s)
	c.sampleMu.Lock()
	close(c.sampleWake)
	c.sampleWake = make(chan struct{})
	c.sampleMu.Unlock()
}

// Pause suspends the simulation at its next safe point and returns once
// it is actually parked (or the run finishes first — a finished run is
// quiescent, which is all pause promises).
func (c *Controller) Pause() {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	ack := make(chan struct{})
	c.pauseReq = append(c.pauseReq, ack)
	c.attention.Store(true)
	c.cond.Signal()
	c.mu.Unlock()
	select {
	case <-ack:
	case <-c.doneCh:
	}
}

// Step lets a paused simulation dispatch n more events and returns once
// they have been dispatched (or the run finishes first). Step on a
// running simulation pauses it first.
func (c *Controller) Step(n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.paused = true
	c.stepBudget += n
	ack := make(chan struct{})
	c.stepAcks = append(c.stepAcks, ack)
	c.attention.Store(true)
	c.cond.Signal()
	c.mu.Unlock()
	select {
	case <-ack:
	case <-c.doneCh:
	}
}

// Resume releases a paused simulation. A no-op when not paused.
func (c *Controller) Resume() {
	c.mu.Lock()
	if c.paused || len(c.pauseReq) > 0 {
		c.resumeReq = true
		c.attention.Store(true)
		c.cond.Signal()
	}
	c.mu.Unlock()
}

// Query runs fn against the simulator state at the next safe point and
// returns once it has run. fn must be read-only and must not call back
// into the Controller. After the run has finished, fn runs inline: the
// machine is permanently quiescent, so concurrent read-only access is
// safe.
func (c *Controller) Query(fn func(Source)) {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		fn(c.src)
		return
	}
	q := query{fn: fn, done: make(chan struct{})}
	c.queries = append(c.queries, q)
	c.attention.Store(true)
	c.cond.Signal()
	c.mu.Unlock()
	<-q.done
}

// Finish marks the run complete: pending queries run against the final
// quiescent state, pause/step waiters are released, a final sample is
// published, and Done is closed. Must be called (once) after the
// engine's run returns; the simulation must not dispatch afterwards.
func (c *Controller) Finish() {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	c.finished = true
	c.paused = false
	c.stepBudget = 0
	c.resumeReq = false
	queries := c.queries
	c.queries = nil
	acks := append(c.pauseReq, c.stepAcks...)
	c.pauseReq, c.stepAcks = nil, nil
	for _, q := range queries {
		q.fn(c.src)
		close(q.done)
	}
	for _, ack := range acks {
		close(ack)
	}
	c.takeSample(true)
	c.attention.Store(false)
	close(c.doneCh)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Latest returns the most recent published sample, or nil before the
// first. The sample is immutable.
func (c *Controller) Latest() *Sample { return c.latest.Load() }

// Wake returns a channel closed when a sample newer than the current
// one is published. The replay-then-follow pattern: fetch Wake, then
// Latest, emit if new, then select on the channel — a sample landing
// between the two calls closes the already-fetched channel, so none is
// ever missed for long.
func (c *Controller) Wake() <-chan struct{} {
	c.sampleMu.Lock()
	ch := c.sampleWake
	c.sampleMu.Unlock()
	return ch
}

// Done returns a channel closed when Finish is called.
func (c *Controller) Done() <-chan struct{} { return c.doneCh }

// Finished reports whether Finish has been called.
func (c *Controller) Finished() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

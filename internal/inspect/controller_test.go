package inspect

import (
	"sync"
	"testing"

	"coma/internal/proto"
)

// fakeSource counts queries and reports a fixed summary; now is set by
// the test's dispatch loop.
type fakeSource struct {
	now     int64
	events  int64
	queried int
}

func (f *fakeSource) InspectLine(item proto.ItemID) LineView {
	f.queried++
	return LineView{Item: int64(item)}
}

func (f *fakeSource) InspectNodes() []NodeView {
	return []NodeView{{Node: 0, Alive: true}}
}

func (f *fakeSource) InspectQueues() QueuesView {
	return QueuesView{SimCycles: f.now}
}

func (f *fakeSource) InspectSummary() SummaryView {
	return SummaryView{SimCycles: f.now, Events: f.events}
}

// run dispatches n fake events through the safe-point protocol exactly
// as sim.Engine.advance does: hook, then one dispatch.
func run(src *fakeSource, ctl *Controller, n int64) {
	for i := int64(0); i < n; i++ {
		ctl.AtSafePoint(src.now)
		src.now += 10
		src.events++
	}
	ctl.Finish()
}

// TestPauseStepResume drives the full client protocol against a fake
// dispatch loop: pause parks the run, queries answer against parked
// state, step dispatches an exact event count, resume releases it.
func TestPauseStepResume(t *testing.T) {
	src := &fakeSource{}
	ctl := NewController(src, 0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run(src, ctl, 1000)
	}()

	ctl.Pause()
	var at1, at2 int64
	ctl.Query(func(s Source) { at1 = s.InspectSummary().Events })
	ctl.Query(func(s Source) { at2 = s.InspectSummary().Events })
	if at1 != at2 {
		t.Errorf("events advanced while paused: %d then %d", at1, at2)
	}

	ctl.Step(7)
	var after int64
	ctl.Query(func(s Source) { after = s.InspectSummary().Events })
	if after != at1+7 {
		t.Errorf("step(7): events %d -> %d, want +7", at1, after)
	}

	ctl.Resume()
	wg.Wait()

	if !ctl.Finished() {
		t.Fatal("controller not finished after run returned")
	}
	if src.events != 1000 {
		t.Errorf("run dispatched %d events, want 1000", src.events)
	}
	// Queries after finish answer inline from the quiescent state.
	var final int64
	ctl.Query(func(s Source) { final = s.InspectSummary().Events })
	if final != 1000 {
		t.Errorf("post-finish query saw %d events, want 1000", final)
	}
}

// TestSampling checks the periodic stream: samples are published with
// increasing Seq, the wake channel fires on publication, and Finish
// publishes a terminal sample marked Finished.
func TestSampling(t *testing.T) {
	src := &fakeSource{}
	ctl := NewController(src, 100) // every 100 cycles = every 10 events

	done := make(chan struct{})
	go func() {
		defer close(done)
		run(src, ctl, 500)
	}()

	// Follow the stream until the run finishes; every observed sample
	// must have a strictly increasing Seq.
	var last int64
	for {
		w := ctl.Wake()
		if s := ctl.Latest(); s != nil && s.Seq > last {
			if s.Seq <= last {
				t.Fatalf("sample seq went backwards: %d after %d", s.Seq, last)
			}
			last = s.Seq
		}
		select {
		case <-w:
		case <-ctl.Done():
			<-done
			final := ctl.Latest()
			if final == nil || !final.Summary.Finished {
				t.Fatal("no terminal sample marked Finished")
			}
			if final.Summary.Events != 500 {
				t.Errorf("terminal sample has %d events, want 500", final.Summary.Events)
			}
			if last == 0 {
				t.Error("no mid-run samples observed")
			}
			return
		}
	}
}

// TestPauseAfterFinishReturns pins the shutdown contract: client calls
// made after (or racing with) the end of the run return promptly
// instead of blocking on a safe point that will never come.
func TestPauseAfterFinishReturns(t *testing.T) {
	src := &fakeSource{}
	ctl := NewController(src, 0)
	run(src, ctl, 3) // runs to completion inline

	ctl.Pause()
	ctl.Step(5)
	ctl.Resume()
	var n int64
	ctl.Query(func(s Source) { n = s.InspectSummary().Events })
	if n != 3 {
		t.Errorf("post-finish query saw %d events, want 3", n)
	}
}

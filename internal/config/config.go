// Package config holds the architectural parameters of the simulated
// machine. The default preset reproduces the paper's KSR1-derived
// configuration (§4.2.2): 20 MHz nodes, a sectored 256 KB cache, an 8 MB
// 16-way attraction memory with 16 KB pages and 128-byte items, and a
// worm-hole routed 2-D mesh with 32-bit flits and a 1-cycle fall-through,
// calibrated so the uncontended read-miss latencies match Table 2 exactly.
package config

import (
	"fmt"

	"coma/internal/proto"
)

// Arch is the full set of architecture parameters for one simulation.
// All times are in processor cycles, all sizes in bytes.
type Arch struct {
	// Nodes is the number of processing nodes. The mesh dimensions are
	// derived: the smallest near-square mesh with at least Nodes slots.
	Nodes int

	// ClockHz is the processor clock, used only to convert recovery-point
	// frequencies (per second) and throughput (bytes/second) to cycles.
	ClockHz int64

	// Cache geometry (per node).
	CacheSize     int // total bytes (256 KB)
	CacheLineSize int // bytes (64)
	CacheSectors  int // lines per sector (2 KB sector / 64 B line = 32)
	CacheWays     int // associativity (8)

	// Attraction memory geometry (per node).
	AMSize   int // total bytes (8 MB)
	PageSize int // allocation unit (16 KB)
	ItemSize int // coherence unit (128)
	AMWays   int // page associativity (16)

	// AnchorFrames is the number of irreplaceable page frames statically
	// reserved per touched page so injections and recovery replication
	// always find room (4 in the ECP study, 1 in a KSR1-like standard
	// machine).
	AnchorFrames int

	// Timing parameters, calibrated against Table 2 (see DESIGN.md §4.7).
	CacheAccess    int64 // cache hit (1)
	AMAccess       int64 // local AM fill / miss detect / install (18)
	MemTransfer    int64 // AM-to-network-controller item transfer (20)
	DirLookup      int64 // localisation-pointer / directory lookup (2)
	NISend         int64 // network-interface send overhead (4)
	NIRecv         int64 // network-interface receive overhead (4)
	HopLatency     int64 // per-hop header latency (4; includes fall-through)
	FlitBytes      int   // flit width (4 = 32 bits)
	CtrlMsgFlits   int   // flits in a control message (2)
	MsgHeaderFlits int   // header flits prepended to a data message (2)
	InjectAckDelay int64 // ack sent this long after item reception (5)

	// AMControllers is the number of independent AM controllers per node
	// (4, "as in the KSR1"). The commit-phase scan is divided across them.
	AMControllers int

	// CommitPageTest and CommitItemTest are the per-frame and per-item
	// costs of the commit-phase scan (1 cycle each, §4.2.2).
	CommitPageTest int64
	CommitItemTest int64

	// CacheFlushPerLine is the cost of writing one dirty cache line back
	// to the local AM when a recovery point quiesces the node.
	CacheFlushPerLine int64
}

// KSR1 returns the paper's simulated architecture with the given node
// count. The ECP's four irreplaceable frames per page are clamped to the
// machine size on very small configurations.
func KSR1(nodes int) Arch {
	anchors := 4
	if nodes < anchors {
		anchors = nodes
	}
	return Arch{
		Nodes:             nodes,
		ClockHz:           20_000_000,
		CacheSize:         256 << 10,
		CacheLineSize:     64,
		CacheSectors:      32, // 2 KB sector / 64 B line
		CacheWays:         8,
		AMSize:            8 << 20,
		PageSize:          16 << 10,
		ItemSize:          128,
		AMWays:            16,
		AnchorFrames:      anchors,
		CacheAccess:       1,
		AMAccess:          18,
		MemTransfer:       20,
		DirLookup:         2,
		NISend:            4,
		NIRecv:            4,
		HopLatency:        4,
		FlitBytes:         4,
		CtrlMsgFlits:      2,
		MsgHeaderFlits:    2,
		InjectAckDelay:    5,
		AMControllers:     4,
		CommitPageTest:    1,
		CommitItemTest:    1,
		CacheFlushPerLine: 4,
	}
}

// Modern returns a preset in the spirit of the paper's reference [10]
// follow-up study: a 5x faster processor relative to the same network, so
// network latencies grow in processor cycles. The paper reports that the
// relative fault-tolerance degradation *decreases* in this regime because
// recovery-data transfers overlap a computation that is itself more often
// stalled on the network.
func Modern(nodes int) Arch {
	a := KSR1(nodes)
	a.ClockHz = 100_000_000
	// The mesh and memory keep their absolute speed: express their
	// latencies in the faster processor's cycles (5x).
	a.AMAccess *= 5
	a.MemTransfer *= 5
	a.NISend *= 5
	a.NIRecv *= 5
	a.HopLatency *= 5
	a.InjectAckDelay *= 5
	a.CacheFlushPerLine *= 5
	return a
}

// DSVM returns parameters for the paper's other concluding claim: the
// same extended protocol implements a recoverable distributed shared
// virtual memory on a multicomputer (the authors built one on the Intel
// Paragon and on Chorus workstations). Coherence moves whole 4 KB pages
// ("items" of page size), latencies reflect a software protocol stack
// rather than a hardware controller, and each node contributes a 32 MB
// page cache.
func DSVM(nodes int) Arch {
	a := KSR1(nodes)
	a.ItemSize = 4 << 10  // the DSVM coherence unit is a virtual page
	a.PageSize = 64 << 10 // allocation unit: 16 coherence pages
	a.AMSize = 32 << 20
	a.CacheLineSize = 64
	// Software path costs (in 20 MHz processor cycles): trap + protocol
	// code dominate, messages are big.
	a.AMAccess = 200    // page-table walk + local map
	a.MemTransfer = 800 // 4 KB copy to the wire
	a.DirLookup = 60    // manager lookup in software
	a.NISend = 300      // send-side protocol stack
	a.NIRecv = 300
	a.HopLatency = 10
	a.InjectAckDelay = 50
	a.CacheFlushPerLine = 4
	return a
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (a Arch) Validate() error {
	switch {
	case a.Nodes < 1:
		return fmt.Errorf("config: Nodes = %d, need >= 1", a.Nodes)
	case a.ItemSize <= 0 || a.PageSize%a.ItemSize != 0:
		return fmt.Errorf("config: PageSize %d not a multiple of ItemSize %d", a.PageSize, a.ItemSize)
	case a.CacheLineSize <= 0 || a.ItemSize%a.CacheLineSize != 0:
		return fmt.Errorf("config: ItemSize %d not a multiple of CacheLineSize %d", a.ItemSize, a.CacheLineSize)
	case a.AMSize%a.PageSize != 0:
		return fmt.Errorf("config: AMSize %d not a multiple of PageSize %d", a.AMSize, a.PageSize)
	case a.CacheSize%(a.CacheLineSize*a.CacheWays) != 0:
		return fmt.Errorf("config: cache geometry %d/%d/%d does not tile", a.CacheSize, a.CacheLineSize, a.CacheWays)
	case a.AMFrames()%a.AMWays != 0:
		return fmt.Errorf("config: AM frames %d not divisible by ways %d", a.AMFrames(), a.AMWays)
	case a.AnchorFrames < 1 || a.AnchorFrames > a.Nodes:
		return fmt.Errorf("config: AnchorFrames %d out of range [1,%d]", a.AnchorFrames, a.Nodes)
	case a.AMControllers < 1:
		return fmt.Errorf("config: AMControllers = %d, need >= 1", a.AMControllers)
	case a.FlitBytes < 1:
		return fmt.Errorf("config: FlitBytes = %d, need >= 1", a.FlitBytes)
	case a.ClockHz < 1:
		return fmt.Errorf("config: ClockHz = %d, need >= 1", a.ClockHz)
	}
	return nil
}

// ItemsPerPage returns the number of items in one page (128 in the paper).
func (a Arch) ItemsPerPage() int { return a.PageSize / a.ItemSize }

// AMFrames returns the number of page frames in one attraction memory.
func (a Arch) AMFrames() int { return a.AMSize / a.PageSize }

// AMSets returns the number of page-frame sets in one attraction memory.
func (a Arch) AMSets() int { return a.AMFrames() / a.AMWays }

// CacheLines returns the number of lines in one processor cache.
func (a Arch) CacheLines() int { return a.CacheSize / a.CacheLineSize }

// LinesPerItem returns how many cache lines one AM item spans (2).
func (a Arch) LinesPerItem() int { return a.ItemSize / a.CacheLineSize }

// DataMsgFlits returns the flit count of a message carrying one item.
func (a Arch) DataMsgFlits() int {
	return a.MsgHeaderFlits + (a.ItemSize+a.FlitBytes-1)/a.FlitBytes
}

// MsgFlits returns the flit count for a message of the given kind.
func (a Arch) MsgFlits(kind proto.MsgKind) int {
	if kind.Carry() {
		return a.DataMsgFlits()
	}
	return a.CtrlMsgFlits
}

// MeshDims returns the smallest near-square (w, h) with w*h >= Nodes,
// matching the paper's 9- to 56-node sweeps on 2-D meshes.
func (a Arch) MeshDims() (w, h int) {
	w = 1
	for w*w < a.Nodes {
		w++
	}
	h = (a.Nodes + w - 1) / w
	return w, h
}

// ItemOf returns the item covering the byte address.
func (a Arch) ItemOf(addr uint64) proto.ItemID {
	return proto.ItemID(addr / uint64(a.ItemSize))
}

// PageOf returns the page covering the item.
func (a Arch) PageOf(item proto.ItemID) proto.PageID {
	return proto.PageID(int(item) / a.ItemsPerPage())
}

// PageOfAddr returns the page covering the byte address.
func (a Arch) PageOfAddr(addr uint64) proto.PageID {
	return proto.PageID(addr / uint64(a.PageSize))
}

// FirstItem returns the first item of a page.
func (a Arch) FirstItem(page proto.PageID) proto.ItemID {
	return proto.ItemID(int(page) * a.ItemsPerPage())
}

// ItemIndexInPage returns the item's offset within its page.
func (a Arch) ItemIndexInPage(item proto.ItemID) int {
	return int(item) % a.ItemsPerPage()
}

// LineOf returns the cache-line index of the byte address.
func (a Arch) LineOf(addr uint64) uint64 { return addr / uint64(a.CacheLineSize) }

// CyclesPerSecond returns the clock rate as cycles (identity, for
// readability at call sites that convert frequencies).
func (a Arch) CyclesPerSecond() int64 { return a.ClockHz }

// CheckpointIntervalCycles converts a recovery-point frequency in
// establishments per second to a period in cycles. Zero frequency means
// "never" and returns 0.
func (a Arch) CheckpointIntervalCycles(perSecond float64) int64 {
	if perSecond <= 0 {
		return 0
	}
	return int64(float64(a.ClockHz) / perSecond)
}

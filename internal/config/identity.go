package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// RunIdentitySchema versions the canonical run-identity encoding. Bump it
// whenever a field is added, removed, renamed or reordered so that hashes
// of the old and new encodings can never collide silently; the golden
// test in identity_test.go pins the bytes of the current version.
const RunIdentitySchema = "coma-run/v1"

// RunIdentity is the canonical description of everything that determines
// a simulation's result. It is the single run-identity vocabulary of the
// repository: the experiment campaign memoises runs by Hash() (see
// internal/experiments) and the comad daemon uses the same Hash() as its
// content-addressed cache key, so a run computed by either is the run
// named by the other.
//
// The struct is pure data — no function, channel or map fields — so its
// canonical JSON encoding is total and deterministic: encoding/json
// emits struct fields in declaration order, and every field is a scalar,
// a struct of scalars, or a slice. Changing the declaration order IS a
// schema change and must bump RunIdentitySchema.
type RunIdentity struct {
	// Schema is the encoding version; CanonicalJSON fills it when empty.
	Schema string `json:"schema"`
	// Revision pins the simulator code that produced (or would produce)
	// the result — results are code-version-dependent, so a service
	// keying a persistent cache must include it. In-process memoisation
	// leaves it empty (one process runs one revision).
	Revision string `json:"revision,omitempty"`

	// Arch is the full architecture parameter set.
	Arch Arch `json:"arch"`

	// Protocol is the coherence protocol name ("standard" or "ecp";
	// kept a string so this package does not import internal/coherence).
	Protocol string `json:"protocol"`
	// NoReplicationReuse and NoSharedCKReads ablate the ECP's two
	// optimisations.
	NoReplicationReuse bool `json:"no_replication_reuse,omitempty"`
	NoSharedCKReads    bool `json:"no_shared_ck_reads,omitempty"`

	// App names a workload preset; Instructions is its absolute scaled
	// instruction budget (scaling is resolved before hashing so that
	// "mp3d at scale 0.01" and "mp3d rescaled to the same budget" are
	// the same run).
	App          string `json:"app"`
	Instructions int64  `json:"instructions"`

	// Seed makes the run deterministic; it is the whole point of the
	// cache that equal identities give byte-identical results.
	Seed uint64 `json:"seed"`

	// CheckpointHz is the recovery-point frequency (per simulated
	// second); CheckpointInterval, when non-zero, overrides it with an
	// explicit period in cycles.
	CheckpointHz       float64 `json:"checkpoint_hz,omitempty"`
	CheckpointInterval int64   `json:"checkpoint_interval,omitempty"`

	// Failures is the scripted failure schedule.
	Failures []FailureEvent `json:"failures,omitempty"`

	// Correctness machinery (it changes timing, so it is identity).
	Oracle     bool `json:"oracle,omitempty"`
	Strict     bool `json:"strict,omitempty"`
	Invariants bool `json:"invariants,omitempty"`

	// MaxCycles aborts runaway simulations.
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// FailureEvent is one scheduled node failure, in identity form.
type FailureEvent struct {
	At        int64 `json:"at"`
	Node      int   `json:"node"`
	Permanent bool  `json:"permanent,omitempty"`
}

// CanonicalJSON returns the canonical encoding of the identity: compact
// JSON with fields in declaration order and Schema defaulted. It panics
// on a marshalling error, which is unreachable for this pure-data struct
// (no cyclic, function or channel fields).
func (id RunIdentity) CanonicalJSON() []byte {
	if id.Schema == "" {
		id.Schema = RunIdentitySchema
	}
	b, err := json.Marshal(id)
	if err != nil {
		panic(fmt.Sprintf("config: canonical encoding failed: %v", err))
	}
	return b
}

// Hash returns the content address of the run: the lowercase-hex SHA-256
// of the canonical JSON encoding. Two identities hash equal iff their
// canonical encodings are byte-equal.
func (id RunIdentity) Hash() string {
	sum := sha256.Sum256(id.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

package config

import (
	"testing"
	"testing/quick"

	"coma/internal/proto"
)

func TestKSR1MatchesPaperGeometry(t *testing.T) {
	a := KSR1(16)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.ItemsPerPage(); got != 128 {
		t.Errorf("ItemsPerPage = %d, want 128 (16KB page / 128B item)", got)
	}
	if got := a.AMFrames(); got != 512 {
		t.Errorf("AMFrames = %d, want 512 (8MB / 16KB)", got)
	}
	if got := a.AMSets(); got != 32 {
		t.Errorf("AMSets = %d, want 32 (512 frames 16-way)", got)
	}
	if got := a.CacheLines(); got != 4096 {
		t.Errorf("CacheLines = %d, want 4096 (256KB / 64B)", got)
	}
	if got := a.LinesPerItem(); got != 2 {
		t.Errorf("LinesPerItem = %d, want 2", got)
	}
	if got := a.DataMsgFlits(); got != 34 {
		t.Errorf("DataMsgFlits = %d, want 34 (2 header + 32 data)", got)
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ nodes, w, h int }{
		{1, 1, 1}, {4, 2, 2}, {9, 3, 3}, {16, 4, 4},
		{30, 6, 5}, {42, 7, 6}, {56, 8, 7},
	}
	for _, c := range cases {
		a := KSR1(c.nodes)
		w, h := a.MeshDims()
		if w != c.w || h != c.h {
			t.Errorf("MeshDims(%d) = (%d,%d), want (%d,%d)", c.nodes, w, h, c.w, c.h)
		}
		if w*h < c.nodes {
			t.Errorf("MeshDims(%d) = (%d,%d) cannot hold all nodes", c.nodes, w, h)
		}
	}
}

func TestCheckpointIntervalCycles(t *testing.T) {
	a := KSR1(16)
	if got := a.CheckpointIntervalCycles(400); got != 50_000 {
		t.Errorf("400/s interval = %d cycles, want 50000", got)
	}
	if got := a.CheckpointIntervalCycles(5); got != 4_000_000 {
		t.Errorf("5/s interval = %d cycles, want 4000000", got)
	}
	if got := a.CheckpointIntervalCycles(0); got != 0 {
		t.Errorf("0/s interval = %d, want 0 (never)", got)
	}
}

func TestAddressMapping(t *testing.T) {
	a := KSR1(16)
	if got := a.ItemOf(0); got != 0 {
		t.Errorf("ItemOf(0) = %d", got)
	}
	if got := a.ItemOf(127); got != 0 {
		t.Errorf("ItemOf(127) = %d, want 0", got)
	}
	if got := a.ItemOf(128); got != 1 {
		t.Errorf("ItemOf(128) = %d, want 1", got)
	}
	if got := a.PageOf(127); got != 0 {
		t.Errorf("PageOf(item 127) = %d, want 0", got)
	}
	if got := a.PageOf(128); got != 1 {
		t.Errorf("PageOf(item 128) = %d, want 1", got)
	}
	if got := a.FirstItem(proto.PageID(2)); got != 256 {
		t.Errorf("FirstItem(page 2) = %d, want 256", got)
	}
	if got := a.ItemIndexInPage(proto.ItemID(130)); got != 2 {
		t.Errorf("ItemIndexInPage(130) = %d, want 2", got)
	}
}

func TestAddressMappingProperty(t *testing.T) {
	a := KSR1(16)
	roundTrip := func(addr uint64) bool {
		addr %= 1 << 34
		item := a.ItemOf(addr)
		page := a.PageOf(item)
		if a.PageOfAddr(addr) != page {
			return false
		}
		back := proto.ItemID(int(a.FirstItem(page)) + a.ItemIndexInPage(item))
		return back == item
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	bad := KSR1(16)
	bad.PageSize = 1000 // not a multiple of item size
	if bad.Validate() == nil {
		t.Error("Validate accepted PageSize not multiple of ItemSize")
	}
	bad = KSR1(16)
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("Validate accepted zero nodes")
	}
	bad = KSR1(16)
	bad.AnchorFrames = 20 // more anchors than nodes
	if bad.Validate() == nil {
		t.Error("Validate accepted AnchorFrames > Nodes")
	}
	bad = KSR1(16)
	bad.ItemSize = 96 // not a multiple of cache line
	if bad.Validate() == nil {
		t.Error("Validate accepted ItemSize not multiple of CacheLineSize")
	}
}

func TestModernPresetScalesNetworkOnly(t *testing.T) {
	k, m := KSR1(16), Modern(16)
	if m.ClockHz != 5*k.ClockHz {
		t.Errorf("Modern clock = %d, want 5x", m.ClockHz)
	}
	if m.CacheAccess != k.CacheAccess {
		t.Errorf("Modern cache access changed: %d", m.CacheAccess)
	}
	if m.HopLatency != 5*k.HopLatency {
		t.Errorf("Modern hop latency = %d, want 5x", m.HopLatency)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMsgFlitsByKind(t *testing.T) {
	a := KSR1(16)
	if got := a.MsgFlits(proto.MsgReadReq); got != 2 {
		t.Errorf("read request = %d flits, want 2", got)
	}
	if got := a.MsgFlits(proto.MsgDataReply); got != 34 {
		t.Errorf("data reply = %d flits, want 34", got)
	}
	if got := a.MsgFlits(proto.MsgInjectData); got != 34 {
		t.Errorf("inject data = %d flits, want 34", got)
	}
}

func TestDSVMPresetGeometry(t *testing.T) {
	a := DSVM(8)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.ItemSize != 4<<10 {
		t.Errorf("DSVM coherence unit = %d, want a 4KB page", a.ItemSize)
	}
	if got := a.ItemsPerPage(); got != 16 {
		t.Errorf("items per allocation unit = %d, want 16", got)
	}
	if a.AMAccess <= KSR1(8).AMAccess {
		t.Error("software DSM must be slower than the hardware controller")
	}
	// A 4KB page needs 1026 flits on the wire.
	if got := a.DataMsgFlits(); got != 1026 {
		t.Errorf("data message = %d flits, want 1026", got)
	}
}

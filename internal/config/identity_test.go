package config

import (
	"strings"
	"testing"
)

// goldenIdentity is a fully-populated identity exercising every field
// class: the full Arch, protocol + options, workload, seed, checkpoint
// frequency, a failure schedule, correctness machinery and MaxCycles.
func goldenIdentity() RunIdentity {
	return RunIdentity{
		Arch:         KSR1(16),
		Protocol:     "ecp",
		App:          "mp3d",
		Instructions: 1_000_000,
		Seed:         1,
		CheckpointHz: 100,
		Failures:     []FailureEvent{{At: 500_000, Node: 3, Permanent: true}},
		Oracle:       true,
		MaxCycles:    1 << 40,
	}
}

// TestRunIdentityHashGolden pins the canonical encoding and its hash.
// If this test fails you changed the run-identity schema — a field was
// added, removed, renamed, reordered, or an Arch field changed. That
// invalidates every content-addressed cache entry and every recorded
// run key, so it must be deliberate: bump RunIdentitySchema and update
// the golden values here in the same change.
func TestRunIdentityHashGolden(t *testing.T) {
	const wantJSON = `{"schema":"coma-run/v1","arch":{"Nodes":16,"ClockHz":20000000,` +
		`"CacheSize":262144,"CacheLineSize":64,"CacheSectors":32,"CacheWays":8,` +
		`"AMSize":8388608,"PageSize":16384,"ItemSize":128,"AMWays":16,"AnchorFrames":4,` +
		`"CacheAccess":1,"AMAccess":18,"MemTransfer":20,"DirLookup":2,"NISend":4,` +
		`"NIRecv":4,"HopLatency":4,"FlitBytes":4,"CtrlMsgFlits":2,"MsgHeaderFlits":2,` +
		`"InjectAckDelay":5,"AMControllers":4,"CommitPageTest":1,"CommitItemTest":1,` +
		`"CacheFlushPerLine":4},"protocol":"ecp","app":"mp3d","instructions":1000000,` +
		`"seed":1,"checkpoint_hz":100,"failures":[{"at":500000,"node":3,"permanent":true}],` +
		`"oracle":true,"max_cycles":1099511627776}`
	const wantHash = "14f66847cd67b486e93bd4858649099d207e4165a2c36ca505cafad8cadbb2df"

	id := goldenIdentity()
	if got := string(id.CanonicalJSON()); got != wantJSON {
		t.Errorf("canonical JSON drifted:\n got %s\nwant %s", got, wantJSON)
	}
	if got := id.Hash(); got != wantHash {
		t.Errorf("Hash() = %s, want %s (run-identity schema drift: bump RunIdentitySchema)", got, wantHash)
	}
}

// TestRunIdentitySchemaDefaulted: an empty Schema field canonicalises to
// the current version, and an explicit one is preserved.
func TestRunIdentitySchemaDefaulted(t *testing.T) {
	id := goldenIdentity()
	if id.Schema != "" {
		t.Fatal("golden identity should leave Schema empty")
	}
	if !strings.Contains(string(id.CanonicalJSON()), `"schema":"`+RunIdentitySchema+`"`) {
		t.Error("empty Schema not defaulted in canonical encoding")
	}
	id.Schema = "coma-run/v0"
	if !strings.Contains(string(id.CanonicalJSON()), `"schema":"coma-run/v0"`) {
		t.Error("explicit Schema not preserved")
	}
	// Defaulting must not mutate the receiver.
	id2 := goldenIdentity()
	_ = id2.CanonicalJSON()
	if id2.Schema != "" {
		t.Error("CanonicalJSON mutated its receiver")
	}
}

// TestRunIdentityHashSensitivity: every identity-relevant mutation moves
// the hash, and hashing is stable across calls.
func TestRunIdentityHashSensitivity(t *testing.T) {
	base := goldenIdentity()
	if base.Hash() != base.Hash() {
		t.Fatal("Hash not stable")
	}
	mutations := map[string]func(*RunIdentity){
		"revision":            func(id *RunIdentity) { id.Revision = "abc123" },
		"arch nodes":          func(id *RunIdentity) { id.Arch = KSR1(30) },
		"arch preset":         func(id *RunIdentity) { id.Arch = Modern(16) },
		"protocol":            func(id *RunIdentity) { id.Protocol = "standard" },
		"opt replication":     func(id *RunIdentity) { id.NoReplicationReuse = true },
		"opt shared-ck":       func(id *RunIdentity) { id.NoSharedCKReads = true },
		"app":                 func(id *RunIdentity) { id.App = "water" },
		"instructions":        func(id *RunIdentity) { id.Instructions++ },
		"seed":                func(id *RunIdentity) { id.Seed++ },
		"checkpoint hz":       func(id *RunIdentity) { id.CheckpointHz = 400 },
		"checkpoint interval": func(id *RunIdentity) { id.CheckpointInterval = 12345 },
		"failure time":        func(id *RunIdentity) { id.Failures[0].At++ },
		"failure node":        func(id *RunIdentity) { id.Failures[0].Node++ },
		"failure permanence":  func(id *RunIdentity) { id.Failures[0].Permanent = false },
		"failure dropped":     func(id *RunIdentity) { id.Failures = nil },
		"oracle":              func(id *RunIdentity) { id.Oracle = false },
		"strict":              func(id *RunIdentity) { id.Strict = true },
		"invariants":          func(id *RunIdentity) { id.Invariants = true },
		"max cycles":          func(id *RunIdentity) { id.MaxCycles = 1 << 30 },
	}
	for name, mutate := range mutations {
		id := goldenIdentity()
		id.Failures = []FailureEvent{base.Failures[0]} // private copy
		mutate(&id)
		if id.Hash() == base.Hash() {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}

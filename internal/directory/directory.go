// Package directory implements the localisation machinery of the
// non-hierarchical COMA: statically distributed localisation pointers
// (each item has a home node that knows the current owner) and the
// per-item directory entry (sharing set, recovery-pair partner) that the
// paper keeps "on the node which is the current owner of the item".
//
// The simulator stores entries in one table for efficiency; the *cost* of
// consulting and updating them is paid in messages and cycles by the
// protocol engine, so the timing behaves as if the state were physically
// distributed. Membership (which nodes are alive, the logical injection
// ring, the home mapping) also lives here because home assignment and the
// ring must be recomputed when a node fails permanently.
package directory

import (
	"fmt"
	"math/bits"

	"coma/internal/proto"
)

// Entry is the directory state of one item.
type Entry struct {
	// Owner is the node whose copy answers requests: the holder of the
	// Exclusive, MasterShared, SharedCK1 or PreCommit1 copy. None until
	// the item is first touched (and again after a rollback that
	// discards a never-checkpointed item).
	Owner proto.NodeID
	// Sharers is the set of nodes holding Shared copies (the owner is
	// not a member).
	Sharers Bitset
}

// Directory is the global localisation state for one machine.
type Directory struct {
	nodes   int
	alive   []bool
	ring    []proto.NodeID // alive nodes in id order
	entries map[proto.ItemID]*Entry
}

// New builds a directory for n nodes, all alive.
func New(n int) *Directory {
	if n < 1 {
		panic("directory: need at least one node")
	}
	d := &Directory{
		nodes:   n,
		alive:   make([]bool, n),
		entries: make(map[proto.ItemID]*Entry),
	}
	for i := range d.alive {
		d.alive[i] = true
	}
	d.rebuildRing()
	return d
}

// Nodes returns the configured node count (including dead nodes).
func (d *Directory) Nodes() int { return d.nodes }

// AliveCount returns the number of live nodes.
func (d *Directory) AliveCount() int { return len(d.ring) }

// Alive reports whether the node is live.
func (d *Directory) Alive(n proto.NodeID) bool { return d.alive[n] }

// AliveNodes returns the live nodes in id order. Callers must not mutate
// the returned slice.
func (d *Directory) AliveNodes() []proto.NodeID { return d.ring }

// SetAlive updates a node's liveness and recomputes the home mapping and
// logical ring. Killing the last node panics.
func (d *Directory) SetAlive(n proto.NodeID, alive bool) {
	d.alive[n] = alive
	d.rebuildRing()
	if len(d.ring) == 0 {
		panic("directory: no live nodes")
	}
}

func (d *Directory) rebuildRing() {
	d.ring = d.ring[:0]
	for i := 0; i < d.nodes; i++ {
		if d.alive[i] {
			d.ring = append(d.ring, proto.NodeID(i))
		}
	}
}

// Home returns the node holding the localisation pointer for the item:
// statically distributed over the live nodes.
func (d *Directory) Home(item proto.ItemID) proto.NodeID {
	return d.ring[int(item)%len(d.ring)]
}

// NextAlive returns the successor of n on the logical injection ring,
// skipping dead nodes. n itself need not be alive.
func (d *Directory) NextAlive(n proto.NodeID) proto.NodeID {
	if len(d.ring) == 1 {
		return d.ring[0]
	}
	for i := 1; i <= d.nodes; i++ {
		cand := proto.NodeID((int(n) + i) % d.nodes)
		if d.alive[cand] {
			return cand
		}
	}
	panic("directory: ring walk found no live node")
}

// Anchors returns the irreplaceable-frame holders for a page: the given
// first toucher plus the following live ring nodes, count nodes in total
// (or fewer if the machine is smaller).
func (d *Directory) Anchors(firstToucher proto.NodeID, count int) []proto.NodeID {
	if count > len(d.ring) {
		count = len(d.ring)
	}
	out := make([]proto.NodeID, 0, count)
	n := firstToucher
	if !d.alive[n] {
		n = d.NextAlive(n)
	}
	for len(out) < count {
		out = append(out, n)
		n = d.NextAlive(n)
	}
	return out
}

// Lookup returns the entry for an item, or nil if it was never created.
func (d *Directory) Lookup(item proto.ItemID) *Entry {
	return d.entries[item]
}

// Ensure returns the entry for an item, creating an ownerless one on
// first touch.
func (d *Directory) Ensure(item proto.ItemID) *Entry {
	e := d.entries[item]
	if e == nil {
		e = &Entry{Owner: proto.None, Sharers: NewBitset(d.nodes)}
		d.entries[item] = e
	}
	return e
}

// Drop removes an item's entry entirely (rollback of an item created
// after the last recovery point).
func (d *Directory) Drop(item proto.ItemID) { delete(d.entries, item) }

// Items returns the number of entries (items ever touched and still
// tracked).
func (d *Directory) Items() int { return len(d.entries) }

// ForEach visits every entry. Iteration order is unspecified; callers
// needing determinism must sort.
func (d *Directory) ForEach(fn func(item proto.ItemID, e *Entry)) {
	for item, e := range d.entries {
		fn(item, e)
	}
}

// Bitset is a fixed-capacity set of node IDs.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty set with capacity for nodes 0..n-1.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *Bitset) check(i proto.NodeID) {
	if int(i) < 0 || int(i) >= b.n {
		panic(fmt.Sprintf("directory: node %v out of bitset range %d", i, b.n))
	}
}

// Add inserts a node.
func (b *Bitset) Add(i proto.NodeID) {
	b.check(i)
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes a node.
func (b *Bitset) Remove(i proto.NodeID) {
	b.check(i)
	b.words[i/64] &^= 1 << (uint(i) % 64)
}

// Contains reports membership.
func (b *Bitset) Contains(i proto.NodeID) bool {
	b.check(i)
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Len returns the number of members.
func (b *Bitset) Len() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clear empties the set.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach visits members in increasing id order.
func (b *Bitset) ForEach(fn func(proto.NodeID)) {
	for wi, w := range b.words {
		for ; w != 0; w &= w - 1 {
			fn(proto.NodeID(wi*64 + bits.TrailingZeros64(w)))
		}
	}
}

// ForEachUntil visits members in increasing id order until fn returns
// false. It reports whether the walk ran to completion, so callers can
// short-circuit searches without smuggling state through the callback.
func (b *Bitset) ForEachUntil(fn func(proto.NodeID) bool) bool {
	for wi, w := range b.words {
		for ; w != 0; w &= w - 1 {
			if !fn(proto.NodeID(wi*64 + bits.TrailingZeros64(w))) {
				return false
			}
		}
	}
	return true
}

// Members returns the members in increasing id order.
func (b *Bitset) Members() []proto.NodeID {
	out := make([]proto.NodeID, 0, b.Len())
	b.ForEach(func(n proto.NodeID) { out = append(out, n) })
	return out
}

// First returns the lowest member, or None if empty.
func (b *Bitset) First() proto.NodeID {
	for wi, w := range b.words {
		if w != 0 {
			return proto.NodeID(wi*64 + bits.TrailingZeros64(w))
		}
	}
	return proto.None
}

package directory

import (
	"testing"
	"testing/quick"

	"coma/internal/proto"
)

func TestHomeDistribution(t *testing.T) {
	d := New(16)
	counts := make(map[proto.NodeID]int)
	for i := proto.ItemID(0); i < 1600; i++ {
		counts[d.Home(i)]++
	}
	if len(counts) != 16 {
		t.Fatalf("homes used = %d, want 16", len(counts))
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("node %v homes %d items, want 100", n, c)
		}
	}
}

func TestHomeRemapsOnFailure(t *testing.T) {
	d := New(4)
	item := proto.ItemID(1)
	if d.Home(item) != 1 {
		t.Fatalf("home = %v, want 1", d.Home(item))
	}
	d.SetAlive(1, false)
	h := d.Home(item)
	if h == 1 {
		t.Fatal("home still on dead node")
	}
	if !d.Alive(h) {
		t.Fatal("home mapped to dead node")
	}
	if d.AliveCount() != 3 {
		t.Fatalf("alive = %d", d.AliveCount())
	}
	// Rejoin (transient failure) restores the original mapping.
	d.SetAlive(1, true)
	if d.Home(item) != 1 {
		t.Fatal("home did not return after rejoin")
	}
}

func TestNextAliveSkipsDead(t *testing.T) {
	d := New(5)
	d.SetAlive(2, false)
	if got := d.NextAlive(1); got != 3 {
		t.Fatalf("NextAlive(1) = %v, want 3 (skipping dead 2)", got)
	}
	if got := d.NextAlive(4); got != 0 {
		t.Fatalf("NextAlive(4) = %v, want 0 (wrap)", got)
	}
	// Successor of a dead node is well defined (ring reconfiguration).
	if got := d.NextAlive(2); got != 3 {
		t.Fatalf("NextAlive(dead 2) = %v, want 3", got)
	}
}

func TestRingVisitsAllAliveNodes(t *testing.T) {
	d := New(9)
	d.SetAlive(4, false)
	seen := map[proto.NodeID]bool{}
	n := proto.NodeID(0)
	for i := 0; i < d.AliveCount(); i++ {
		seen[n] = true
		n = d.NextAlive(n)
	}
	if len(seen) != 8 {
		t.Fatalf("ring visited %d nodes, want 8", len(seen))
	}
	if seen[4] {
		t.Fatal("ring visited dead node")
	}
	if n != 0 {
		t.Fatalf("ring did not close: back at %v", n)
	}
}

func TestAnchors(t *testing.T) {
	d := New(16)
	a := d.Anchors(14, 4)
	want := []proto.NodeID{14, 15, 0, 1}
	if len(a) != 4 {
		t.Fatalf("anchors = %v", a)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("anchors = %v, want %v", a, want)
		}
	}
	// With a dead toucher the anchor set shifts to live nodes.
	d.SetAlive(14, false)
	a = d.Anchors(14, 4)
	for _, n := range a {
		if !d.Alive(n) {
			t.Fatalf("dead anchor %v in %v", n, a)
		}
	}
	// More anchors than nodes clamps.
	small := New(3)
	if got := small.Anchors(0, 4); len(got) != 3 {
		t.Fatalf("clamped anchors = %v", got)
	}
}

func TestEnsureAndDrop(t *testing.T) {
	d := New(8)
	if d.Lookup(5) != nil {
		t.Fatal("entry exists before Ensure")
	}
	e := d.Ensure(5)
	if e.Owner != proto.None {
		t.Fatalf("fresh owner = %v", e.Owner)
	}
	e.Owner = 3
	if d.Ensure(5).Owner != 3 {
		t.Fatal("Ensure did not return the existing entry")
	}
	if d.Items() != 1 {
		t.Fatalf("items = %d", d.Items())
	}
	d.Drop(5)
	if d.Lookup(5) != nil || d.Items() != 0 {
		t.Fatal("Drop left the entry")
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(70) // spans two words
	if b.Len() != 0 || b.First() != proto.None {
		t.Fatal("fresh bitset not empty")
	}
	b.Add(0)
	b.Add(69)
	b.Add(64)
	if !b.Contains(69) || !b.Contains(0) || b.Contains(1) {
		t.Fatal("membership wrong")
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	var order []proto.NodeID
	b.ForEach(func(n proto.NodeID) { order = append(order, n) })
	if len(order) != 3 || order[0] != 0 || order[1] != 64 || order[2] != 69 {
		t.Fatalf("order = %v", order)
	}
	if b.First() != 0 {
		t.Fatalf("first = %v", b.First())
	}
	b.Remove(0)
	if b.Contains(0) || b.Len() != 2 {
		t.Fatal("remove failed")
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestBitsetMembersAndForEachUntil(t *testing.T) {
	b := NewBitset(70)
	if got := b.Members(); len(got) != 0 {
		t.Fatalf("empty Members = %v", got)
	}
	if !b.ForEachUntil(func(proto.NodeID) bool { t.Fatal("visited empty set"); return false }) {
		t.Fatal("empty walk did not complete")
	}
	for _, n := range []proto.NodeID{5, 0, 69, 64} {
		b.Add(n)
	}
	got := b.Members()
	want := []proto.NodeID{0, 5, 64, 69}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	var visited []proto.NodeID
	done := b.ForEachUntil(func(n proto.NodeID) bool {
		visited = append(visited, n)
		return n < 5 // stop after visiting 5
	})
	if done || len(visited) != 2 || visited[0] != 0 || visited[1] != 5 {
		t.Fatalf("short-circuit walk: done=%v visited=%v", done, visited)
	}
	visited = nil
	if !b.ForEachUntil(func(n proto.NodeID) bool { visited = append(visited, n); return true }) {
		t.Fatal("full walk did not report completion")
	}
	if len(visited) != 4 {
		t.Fatalf("full walk visited %v", visited)
	}
}

func TestBitsetOutOfRangePanics(t *testing.T) {
	b := NewBitset(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Add did not panic")
		}
	}()
	b.Add(4)
}

func TestBitsetProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		b := NewBitset(64)
		ref := map[proto.NodeID]bool{}
		for _, a := range adds {
			n := proto.NodeID(a % 64)
			if a%2 == 0 {
				b.Add(n)
				ref[n] = true
			} else {
				b.Remove(n)
				delete(ref, n)
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		ok := true
		b.ForEach(func(n proto.NodeID) {
			if !ref[n] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

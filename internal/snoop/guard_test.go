package snoop

import (
	"fmt"
	"testing"

	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/workload"
)

// TestReadGuardInjectsOnlyInvCK pins the Table 1 read rule the static
// extraction surfaced as drifting when it was written as st.Recovery():
// a read that finds a local Shared-CK copy is served from it (Shared-CK
// copies are readable — no injection), while a read that misses on a
// local Inv-CK copy must first inject the recovery copy away. The
// broader Recovery() guard would also have claimed injection edges from
// the Shared-CK and pre-commit states that the specification table does
// not contain.
func TestReadGuardInjectsOnlyInvCK(t *testing.T) {
	arch := config.KSR1(4)
	X := uint64(0)
	settle := func() []workload.Ref {
		out := make([]workload.Ref, 60)
		for i := range out {
			out[i] = workload.I(1_000)
		}
		return out
	}

	// Phase rows separated by barriers; one column per node.
	phases := [][][]workload.Ref{
		{{workload.W(X)}},                        // Exclusive at n0
		{settle(), settle(), settle(), settle()}, // establishment: SCK1@0 + SCK2 pair
		{{workload.R(X)}},                        // local Shared-CK read: served, no injection
		{nil, nil, {workload.W(X)}},              // pair demoted to Inv-CK; Exclusive at n2
		{{workload.R(X)}},                        // local Inv-CK read: inject, then miss
		{settle(), settle(), settle(), settle()},
	}
	gens := make([]workload.Generator, 4)
	for n := range gens {
		var refs []workload.Ref
		for _, ph := range phases {
			cell := []workload.Ref{workload.I(100)}
			if n < len(ph) && ph[n] != nil {
				cell = ph[n]
			}
			refs = append(refs, cell...)
			refs = append(refs, workload.B())
		}
		gens[n] = workload.NewScript(fmt.Sprintf("guard-n%d", n), refs)
	}

	m, err := New(Config{
		Arch:               arch,
		FaultTolerant:      true,
		Generators:         gens,
		CheckpointInterval: 50_000,
		Oracle:             true,
		MaxCycles:          2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ckpt.Established == 0 {
		t.Fatal("no recovery point committed; the scenario never formed a pair")
	}
	n0 := r.PerNode[0]
	if n0.SharedCKReads == 0 {
		t.Error("the local Shared-CK read was not served from the recovery copy")
	}
	if got := n0.Injections[proto.InjectReadInvCK]; got != 1 {
		t.Errorf("node 0 performed %d read-triggered injections, want exactly 1 (the Inv-CK read)", got)
	}
	for i := 1; i < 4; i++ {
		if got := r.PerNode[i].Injections[proto.InjectReadInvCK]; got != 0 {
			t.Errorf("node %d performed %d read-triggered injections, want 0", i, got)
		}
	}
}

package snoop

import (
	"testing"

	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/stats"
	"coma/internal/workload"
)

func busApp(instr int64) workload.Spec {
	return workload.Spec{
		Name:            "bus-test",
		Instructions:    instr,
		ReadFrac:        0.20,
		WriteFrac:       0.10,
		SharedReadFrac:  0.10,
		SharedWriteFrac: 0.05,
		SharedBytes:     64 << 10,
		PrivateBytes:    16 << 10,
		ReadOnlyFrac:    0.3,
		Locality:        0.4,
		HotBytes:        512,
		WindowBytes:     512,
		DriftInstr:      5_000,
		Barriers:        0,
	}
}

func run(t *testing.T, cfg Config) (*Machine, *stats.Run) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

func baseCfg(nodes int, ft bool) Config {
	return Config{
		Arch:          config.KSR1(nodes),
		FaultTolerant: ft,
		App:           busApp(100_000),
		Seed:          1,
		Oracle:        true,
		MaxCycles:     1 << 36,
	}
}

func TestStandardBusRuns(t *testing.T) {
	m, r := run(t, baseCfg(8, false))
	if r.Cycles == 0 || r.Protocol != "bus-standard" {
		t.Fatalf("run = %+v", r)
	}
	total := r.Total()
	if total.References() == 0 || total.FillsRemote == 0 {
		t.Fatal("no bus traffic")
	}
	if u := m.BusUtilisation(); u <= 0 || u > 1 {
		t.Fatalf("bus utilisation = %v", u)
	}
}

func TestBusECPEstablishesAndPairs(t *testing.T) {
	cfg := baseCfg(8, true)
	cfg.CheckpointInterval = 40_000
	m, r := run(t, cfg)
	if r.Ckpt.Established < 2 {
		t.Fatalf("established = %d", r.Ckpt.Established)
	}
	total := r.Total()
	if total.CkptItemsReplicated == 0 {
		t.Fatal("nothing replicated")
	}
	if err := m.CheckRecoveryPairs(); err != nil {
		t.Fatal(err)
	}
}

func TestBusECPSlowerThanStandard(t *testing.T) {
	_, std := run(t, baseCfg(8, false))
	cfg := baseCfg(8, true)
	cfg.CheckpointInterval = 20_000
	_, ecp := run(t, cfg)
	if ecp.Cycles <= std.Cycles {
		t.Fatalf("bus ECP (%d) not slower than standard (%d)", ecp.Cycles, std.Cycles)
	}
	o := stats.Decompose(std, ecp)
	if o.CreateFraction() <= 0 {
		t.Fatal("no create cost measured")
	}
}

func TestBusTransientFailureRecovers(t *testing.T) {
	cfg := baseCfg(8, true)
	cfg.CheckpointInterval = 20_000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.FailTransient(70_000, 3)
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", r.Ckpt.Recoveries)
	}
	if r.Ckpt.Established < 1 {
		t.Fatal("no recovery point before the failure")
	}
	reconf := int64(0)
	for _, c := range r.PerNode {
		reconf += c.Injections[proto.InjectReconfigure]
	}
	if reconf == 0 {
		t.Fatal("no reconfiguration after memory loss")
	}
	if err := m.CheckRecoveryPairs(); err != nil {
		t.Fatal(err)
	}
}

func TestBusDeterminism(t *testing.T) {
	cfg := baseCfg(8, true)
	cfg.CheckpointInterval = 25_000
	_, a := run(t, cfg)
	_, b := run(t, cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	ta, tb := a.Total(), b.Total()
	if ta != tb {
		t.Fatal("counters differ")
	}
}

func TestBusSaturatesWithNodes(t *testing.T) {
	// The motivation for non-hierarchical COMAs: bus utilisation climbs
	// with machine size on a shared-everything workload.
	utilisation := func(nodes int) float64 {
		cfg := baseCfg(nodes, false)
		cfg.App = workload.Uniform()
		cfg.App.Instructions = 100_000
		m, _ := run(t, cfg)
		return m.BusUtilisation()
	}
	small := utilisation(4)
	large := utilisation(16)
	if large <= small {
		t.Fatalf("bus utilisation did not grow with machine size: %.2f -> %.2f", small, large)
	}
}

func TestBusRejectsBadConfig(t *testing.T) {
	cfg := baseCfg(8, false)
	cfg.CheckpointInterval = 1000
	if _, err := New(cfg); err == nil {
		t.Fatal("standard bus accepted checkpointing")
	}
	cfg = baseCfg(2, true)
	cfg.CheckpointInterval = 1000
	if _, err := New(cfg); err == nil {
		t.Fatal("2-node bus ECP accepted checkpointing")
	}
}

// Package snoop implements the paper's concluding claim that the
// Extended Coherence Protocol "can also be implemented with snooping
// coherence protocols": a single split-transaction bus COMA in the style
// of a one-level DDM, where every attraction memory snoops every bus
// transaction, extended with the same recovery states and the same
// create/commit, rollback and reconfiguration algorithms.
//
// The bus serialises all coherence activity, which makes the protocol
// radically simpler than the mesh machine's (no localisation pointers,
// no transient races) but also caps its bandwidth — running the bus and
// mesh machines side by side shows why the paper prefers non-hierarchical
// COMAs for scalability (see examples/snoopbus).
package snoop

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
	"coma/internal/workload"
)

// Config describes one bus-COMA simulation.
type Config struct {
	Arch config.Arch
	// FaultTolerant selects the ECP (recovery states and periodic
	// recovery points); otherwise the standard snooping protocol runs.
	FaultTolerant bool
	App           workload.Spec
	Generators    []workload.Generator
	Seed          uint64
	// CheckpointInterval is the recovery-point period in cycles
	// (FaultTolerant only; 0 disables).
	CheckpointInterval int64
	// Oracle verifies every value delivered to a processor.
	Oracle    bool
	MaxCycles int64

	// Bus timing: an address/snoop phase and a data phase per
	// transaction. Defaults (8 and 34 cycles) give the data phase the
	// same serialisation cost as one item on a mesh link.
	AddrPhase int64
	DataPhase int64

	// Obs, when non-nil, receives state-change and transaction events
	// (the bus machine has no network, so transactions have no hops: a
	// miss is one bus tenure). Never affects timing.
	Obs obs.Observer
}

// Machine is one assembled bus COMA.
type Machine struct {
	cfg  Config
	eng  *sim.Engine
	arch config.Arch
	bus  *sim.Resource
	ams  []*am.AM
	gens []workload.Generator
	c    []*stats.Node

	// Global first-touch registry (anchor frames, as on the mesh).
	anchors map[proto.PageID]bool

	oracle    map[proto.ItemID]uint64
	committed map[proto.ItemID]uint64
	genSnaps  []workload.Snapshot

	pause     bool
	quiesce   *sim.Barrier
	resume    *sim.Gate
	roundLock *sim.Resource
	idle      []*sim.Process
	running   int
	endTime   int64
	firstErr  error
	ckpt      stats.Checkpointing
	busCycles int64

	// obs and the per-node transaction counters; txnSeq only advances
	// when an observer is attached, so untraced runs are unaffected.
	obs    obs.Observer
	txnSeq []int64
}

// mintTxn allocates the node's next transaction ID (observer attached).
func (m *Machine) mintTxn(n proto.NodeID) proto.TxnID {
	m.txnSeq[n]++
	return proto.MakeTxnID(n, m.txnSeq[n])
}

// New assembles a bus COMA.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	if cfg.AddrPhase == 0 {
		cfg.AddrPhase = 8
	}
	if cfg.DataPhase == 0 {
		cfg.DataPhase = 34
	}
	if !cfg.FaultTolerant && cfg.CheckpointInterval != 0 {
		return nil, fmt.Errorf("snoop: the standard protocol cannot establish recovery points")
	}
	if cfg.FaultTolerant && cfg.CheckpointInterval != 0 && cfg.Arch.Nodes < 4 {
		return nil, fmt.Errorf("snoop: ECP recovery points need at least 4 nodes")
	}
	n := cfg.Arch.Nodes
	if cfg.Generators != nil && len(cfg.Generators) != n {
		return nil, fmt.Errorf("snoop: %d generators for %d nodes", len(cfg.Generators), n)
	}
	if cfg.Generators == nil {
		if err := cfg.App.Validate(); err != nil {
			return nil, err
		}
	}
	m := &Machine{
		cfg:       cfg,
		eng:       sim.New(),
		arch:      cfg.Arch,
		bus:       sim.NewResource("bus", 1),
		ams:       make([]*am.AM, n),
		gens:      make([]workload.Generator, n),
		c:         make([]*stats.Node, n),
		anchors:   make(map[proto.PageID]bool),
		quiesce:   sim.NewBarrier(n + 1),
		resume:    sim.NewGate(),
		roundLock: sim.NewResource("rounds", 1),
		running:   n,
	}
	for i := 0; i < n; i++ {
		m.ams[i] = am.New(cfg.Arch, proto.NodeID(i))
		m.c[i] = &stats.Node{}
		if cfg.Generators != nil {
			m.gens[i] = cfg.Generators[i]
		} else {
			m.gens[i] = cfg.App.NewApp(i, n, cfg.Seed)
		}
	}
	if cfg.Oracle {
		m.oracle = make(map[proto.ItemID]uint64)
		m.committed = make(map[proto.ItemID]uint64)
	}
	if cfg.Obs != nil {
		m.obs = cfg.Obs
		m.txnSeq = make([]int64, n)
		for i := range m.ams {
			nid := proto.NodeID(i)
			m.ams[i].SetStateHook(func(item proto.ItemID, from, to proto.State) {
				cfg.Obs.Emit(obs.Event{Time: m.eng.Now(), Kind: obs.KState,
					Node: nid, Item: item, From: from, To: to})
			})
		}
	}
	m.genSnaps = make([]workload.Snapshot, n)
	for i := range m.gens {
		m.genSnaps[i] = m.gens[i].Snapshot()
	}
	return m, nil
}

// Run simulates to completion.
func (m *Machine) Run() (*stats.Run, error) {
	for i := range m.gens {
		n := proto.NodeID(i)
		m.eng.Spawn(fmt.Sprintf("busproc%d", i), func(p *sim.Process) { m.processor(p, n) })
	}
	if m.cfg.FaultTolerant && m.cfg.CheckpointInterval > 0 {
		m.eng.Spawn("bus-coordinator", m.coordinator)
	}
	limit := int64(-1)
	if m.cfg.MaxCycles > 0 {
		limit = m.cfg.MaxCycles
	}
	if _, err := m.eng.RunUntil(limit); err != nil {
		return nil, err
	}
	defer m.eng.Shutdown()
	if m.firstErr != nil {
		return nil, m.firstErr
	}
	if m.running > 0 {
		return nil, fmt.Errorf("snoop: %d processors still running at cycle %d", m.running, m.eng.Now())
	}
	r := &stats.Run{
		Protocol: m.protocolName(),
		App:      m.gens[0].Name(),
		Nodes:    m.arch.Nodes,
		Cycles:   m.endTime,
		ClockHz:  m.arch.ClockHz,
		Ckpt:     m.ckpt,
		PerNode:  make([]stats.Node, len(m.c)),
	}
	for i, c := range m.c {
		r.PerNode[i] = *c
	}
	for _, a := range m.ams {
		r.PagesPeak += a.Stats().PeakFrames
	}
	return r, nil
}

func (m *Machine) protocolName() string {
	if m.cfg.FaultTolerant {
		return "bus-ecp"
	}
	return "bus-standard"
}

// BusUtilisation returns the fraction of simulated time the bus was busy.
func (m *Machine) BusUtilisation() float64 {
	if m.endTime == 0 {
		return 0
	}
	return float64(m.bus.BusyCycles(m.eng)) / float64(m.endTime)
}

func (m *Machine) fail(err error) {
	if m.firstErr == nil {
		m.firstErr = err
		m.eng.Stop()
	}
}

// kickIdle wakes finished processors so they join a quiesce.
func (m *Machine) kickIdle() {
	for _, w := range m.idle {
		m.eng.WakeNow(w)
	}
	m.idle = nil
}

// processor is one node's execution loop: references hit the local AM
// directly (this variant models the AM level, where the protocol lives),
// missing through bus transactions.
func (m *Machine) processor(p *sim.Process, n proto.NodeID) {
	writeSeq := uint64(0)
	for {
		if m.pause {
			m.quiesce.Arrive(p)
			m.resume.Wait(p)
			continue
		}
		r := m.gens[n].Next()
		switch r.Kind {
		case workload.End:
			m.running--
			if m.running == 0 {
				m.endTime = m.eng.Now()
				m.eng.Stop()
			}
			// Stay available for checkpoint and recovery rounds: the
			// AM still holds live state.
			for {
				if m.pause {
					m.quiesce.Arrive(p)
					m.resume.Wait(p)
					continue
				}
				m.idle = append(m.idle, p)
				p.Park()
			}
		case workload.Instr:
			p.Wait(r.N)
		case workload.Barrier:
			// The bus machine has no application barriers beyond the
			// checkpoint quiesce; treat as a pipeline drain.
			p.Wait(m.arch.AMAccess)
		case workload.Read:
			m.c[n].Instructions++
			m.c[n].Reads++
			m.read(p, n, m.arch.ItemOf(r.Addr))
		case workload.Write:
			m.c[n].Instructions++
			m.c[n].Writes++
			writeSeq++
			m.write(p, n, m.arch.ItemOf(r.Addr), uint64(n)<<48|writeSeq)
		}
	}
}

package snoop

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/proto"
	"coma/internal/sim"
)

// coordinator establishes periodic recovery points. On a bus the create
// phases of all nodes serialise through the single medium anyway, so the
// coordinator drives them directly: quiesce all processors, replicate
// every modified item (one bus tenure each), commit locally, snapshot,
// resume.
func (m *Machine) coordinator(p *sim.Process) {
	for {
		p.Wait(m.cfg.CheckpointInterval)
		if m.running == 0 {
			return
		}
		// Serialise with failure recovery: both drive the same quiesce
		// machinery.
		m.roundLock.Acquire(p)
		m.pause = true
		m.kickIdle()
		m.quiesce.Arrive(p) // all processors parked

		tCreate := p.Now()
		for i := range m.ams {
			m.createNode(p, proto.NodeID(i))
		}
		tCommit := p.Now()
		m.ckpt.CreateCycles += tCommit - tCreate

		// Commit scans run locally in parallel: charge the slowest.
		var worst int64
		for i := range m.ams {
			if c := m.commitCost(proto.NodeID(i)); c > worst {
				worst = c
			}
			m.commitNode(proto.NodeID(i))
		}
		p.Wait(worst)
		m.ckpt.CommitCycles += p.Now() - tCommit
		m.ckpt.Established++

		for i, g := range m.gens {
			m.genSnaps[i] = g.Snapshot()
		}
		if m.oracle != nil {
			m.committed = make(map[proto.ItemID]uint64, len(m.oracle))
			for k, v := range m.oracle {
				m.committed[k] = v
			}
		}
		if err := m.CheckRecoveryPairs(); err != nil {
			m.fail(fmt.Errorf("snoop: at commit: %w", err))
		}

		m.pause = false
		m.resume.Open(m.eng)
		m.resume.Close()
		m.roundLock.Release(m.eng)
	}
}

// createNode replicates every modified item of one node (Fig. 2 of the
// paper, on a bus: one tenure per item).
func (m *Machine) createNode(p *sim.Process, n proto.NodeID) {
	c := m.c[n]
	start := p.Now()
	for _, item := range m.ams[n].ModifiedItems(nil) {
		m.bus.Acquire(p)
		p.Wait(m.cfg.AddrPhase)
		m.busCycles += m.cfg.AddrPhase
		st := m.ams[n].State(item)
		reused := false
		if st == proto.MasterShared && m.cfg.FaultTolerant {
			// Replication reuse: upgrade a snooped Shared copy.
			for i := range m.ams {
				t := proto.NodeID(i)
				if t != n && m.ams[t].State(item) == proto.Shared {
					m.ams[n].SetState(item, proto.PreCommit1)
					m.ams[t].SetState(item, proto.PreCommit2)
					m.ams[t].SetPartner(item, n)
					m.ams[n].SetPartner(item, t)
					c.CkptItemsReused++
					reused = true
					break
				}
			}
		}
		if !reused {
			slot := m.ams[n].Slot(item)
			//coma:transition Exclusive|MasterShared -> PreCommit1
			m.ams[n].SetState(item, proto.PreCommit1)
			target := m.placeCopy(p, n, item, proto.PreCommit2, slot.Value, n)
			m.ams[n].SetPartner(item, target)
			c.Injections[proto.InjectCheckpoint]++
			c.CkptItemsReplicated++
			c.CkptBytesMoved += int64(m.arch.ItemSize)
		}
		m.bus.Release(m.eng)
	}
	c.CkptCreateCycles += p.Now() - start
}

func (m *Machine) commitCost(n proto.NodeID) int64 {
	frames := int64(m.ams[n].AllocatedFrames())
	perFrame := m.arch.CommitPageTest + int64(m.arch.ItemsPerPage())*m.arch.CommitItemTest
	return frames * perFrame / int64(m.arch.AMControllers)
}

func (m *Machine) commitNode(n proto.NodeID) {
	m.ams[n].ForEachAllocated(func(item proto.ItemID, s *am.Slot) {
		switch s.State {
		case proto.PreCommit1:
			s.State = proto.SharedCK1
		case proto.PreCommit2:
			s.State = proto.SharedCK2
		case proto.InvCK1, proto.InvCK2:
			s.State = proto.Invalid
			s.Partner = proto.None
		case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
			proto.SharedCK1, proto.SharedCK2:
			// Unmodified current copies and the surviving recovery point
			// pass through the commit scan untouched.
		}
	})
}

// FailTransient injects a transient failure of node f at absolute cycle
// t: the node's memory is lost, the machine rolls back to its last
// recovery point, re-pairs the recovery copies that lost their partner,
// and every generator rewinds. Call before Run.
func (m *Machine) FailTransient(t int64, f proto.NodeID) {
	m.eng.AtSink(t, m, int64(f))
}

// OnEvent implements sim.EventSink: a scheduled failure fires, spawning
// the recovery process for the node carried in arg.
func (m *Machine) OnEvent(e *sim.Engine, arg int64) {
	f := proto.NodeID(arg)
	e.Spawn("bus-recovery", func(p *sim.Process) { m.recover(p, f) })
}

func (m *Machine) recover(p *sim.Process, f proto.NodeID) {
	m.roundLock.Acquire(p)
	m.pause = true
	m.kickIdle()
	m.quiesce.Arrive(p)

	m.ams[f].Clear()
	var worst int64
	for i := range m.ams {
		if c := m.commitCost(proto.NodeID(i)); c > worst {
			worst = c
		}
		m.ams[i].ForEachAllocated(func(item proto.ItemID, s *am.Slot) {
			switch s.State {
			case proto.Shared, proto.Exclusive, proto.MasterShared,
				proto.PreCommit1, proto.PreCommit2:
				s.State = proto.Invalid
				s.Partner = proto.None
			case proto.InvCK1:
				s.State = proto.SharedCK1
			case proto.InvCK2:
				s.State = proto.SharedCK2
			case proto.Invalid, proto.SharedCK1, proto.SharedCK2:
				// Free slots and the unmodified recovery point are already
				// in their rolled-back state.
			}
		})
	}
	p.Wait(worst)

	// Reconfigure: re-pair every surviving copy whose partner's memory
	// was lost (promotion first, as on the mesh).
	for i := range m.ams {
		n := proto.NodeID(i)
		type work struct {
			item    proto.ItemID
			promote bool
		}
		var todo []work
		m.ams[n].ForEachAllocated(func(item proto.ItemID, s *am.Slot) {
			if s.State == proto.SharedCK1 && s.Partner == f {
				todo = append(todo, work{item, false})
			}
			if s.State == proto.SharedCK2 && s.Partner == f {
				todo = append(todo, work{item, true})
			}
		})
		for _, w := range todo {
			m.bus.Acquire(p)
			p.Wait(m.cfg.AddrPhase)
			if w.promote {
				//coma:transition SharedCK2 -> SharedCK1
				m.ams[n].SetState(w.item, proto.SharedCK1)
			}
			slot := m.ams[n].Slot(w.item)
			target := m.placeCopy(p, n, w.item, proto.SharedCK2, slot.Value, n)
			m.ams[n].SetPartner(w.item, target)
			m.c[n].Injections[proto.InjectReconfigure]++
			m.bus.Release(m.eng)
		}
	}

	// Rollback: oracle and generators rewind to the last recovery point.
	if m.oracle != nil {
		m.oracle = make(map[proto.ItemID]uint64, len(m.committed))
		for k, v := range m.committed {
			m.oracle[k] = v
		}
	}
	for i, g := range m.gens {
		g.Restore(m.genSnaps[i])
	}
	m.ckpt.Recoveries++
	if err := m.CheckRecoveryPairs(); err != nil {
		m.fail(fmt.Errorf("snoop: after rollback: %w", err))
	}

	m.pause = false
	m.resume.Open(m.eng)
	m.resume.Close()
	m.roundLock.Release(m.eng)
}

// CheckRecoveryPairs validates that every recovery copy is part of a
// complete pair on distinct nodes with mutual partner pointers.
func (m *Machine) CheckRecoveryPairs() error {
	type pair struct{ ck1, ck2 proto.NodeID }
	pairs := make(map[proto.ItemID]*pair)
	get := func(it proto.ItemID) *pair {
		pr := pairs[it]
		if pr == nil {
			pr = &pair{ck1: proto.None, ck2: proto.None}
			pairs[it] = pr
		}
		return pr
	}
	for i := range m.ams {
		n := proto.NodeID(i)
		m.ams[i].ForEachAllocated(func(it proto.ItemID, s *am.Slot) {
			switch s.State {
			case proto.SharedCK1, proto.InvCK1:
				get(it).ck1 = n
			case proto.SharedCK2, proto.InvCK2:
				get(it).ck2 = n
			case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
				proto.PreCommit1, proto.PreCommit2:
				// Only committed recovery pairs are audited here.
			}
		})
	}
	for it, pr := range pairs {
		if pr.ck1 == proto.None || pr.ck2 == proto.None {
			return fmt.Errorf("item %d has a broken recovery pair (%v,%v)", it, pr.ck1, pr.ck2)
		}
		if pr.ck1 == pr.ck2 {
			return fmt.Errorf("item %d has both recovery copies on %v", it, pr.ck1)
		}
		if p1 := m.ams[pr.ck1].Slot(it).Partner; p1 != pr.ck2 {
			return fmt.Errorf("item %d: CK1 partner %v, want %v", it, p1, pr.ck2)
		}
		if p2 := m.ams[pr.ck2].Slot(it).Partner; p2 != pr.ck1 {
			return fmt.Errorf("item %d: CK2 partner %v, want %v", it, p2, pr.ck1)
		}
	}
	return nil
}

package snoop

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
)

// read satisfies a processor load at the AM level. On a miss the whole
// coherence transaction happens in one bus tenure: the address/snoop
// phase identifies the supplier (every AM snoops), a data phase moves the
// item, and any injection the local slot needs happens inside the same
// tenure.
func (m *Machine) read(p *sim.Process, n proto.NodeID, item proto.ItemID) {
	c := m.c[n]
	c.AMReads++
	p.Wait(m.arch.AMAccess)
	if slot := m.ams[n].Slot(item); slot.State.Readable() {
		c.FillsLocal++
		if slot.State == proto.SharedCK1 || slot.State == proto.SharedCK2 {
			c.SharedCKReads++
		}
		m.verify(n, item, slot.Value)
		return
	}
	c.AMReadMisses++

	busStart := p.Now()
	m.bus.Acquire(p)
	var txn proto.TxnID
	if m.obs != nil {
		txn = m.mintTxn(n)
		m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, A: obs.TxnRead, B: p.Now() - busStart})
	}
	p.Wait(m.cfg.AddrPhase)
	m.busCycles += m.cfg.AddrPhase

	// Table 1: only a local Inv-CK copy is injected away by a read miss.
	// (Shared-CK copies are readable and never miss; pre-commit copies
	// cannot be snooped while the bus is quiesced. The guard is written
	// out explicitly rather than as st.Recovery(), which is broader than
	// the paper allows.)
	if st := m.ams[n].State(item); st == proto.InvCK1 || st == proto.InvCK2 {
		m.inject(p, n, item, proto.InjectReadInvCK, txn)
	}
	m.ensureFrame(p, n, item, txn)

	if supplier, slot := m.findSupplier(item); supplier != proto.None {
		// All state changes happen at the snoop instant — a fast-path
		// write (which needs no bus) could otherwise slip between the
		// snoop and a later mutation. The data phase is pure timing.
		if slot.State == proto.Exclusive {
			//coma:transition Exclusive -> MasterShared
			m.ams[supplier].SetState(item, proto.MasterShared)
		}
		//coma:transition Invalid -> Shared
		m.ams[n].Set(item, am.Slot{State: proto.Shared, Value: slot.Value, Partner: proto.None})
		c.FillsRemote++
		m.verify(n, item, slot.Value)
		p.Wait(m.cfg.DataPhase)
		m.busCycles += m.cfg.DataPhase
		m.bus.Release(m.eng)
		p.Wait(m.arch.AMAccess)
		if m.obs != nil {
			m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
				Txn: txn, A: obs.FillRemote, B: p.Now() - busStart})
		}
		return
	}
	// Never written anywhere: initialised-background zero copy.
	//coma:transition Invalid -> Shared
	m.ams[n].Set(item, am.Slot{State: proto.Shared, Value: 0, Partner: proto.None})
	c.FillsCold++
	m.verify(n, item, 0)
	m.bus.Release(m.eng)
	p.Wait(m.arch.AMAccess)
	if m.obs != nil {
		m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
			Txn: txn, A: obs.FillCold, B: p.Now() - busStart})
	}
}

// write obtains exclusivity in one bus tenure: the snoop phase
// invalidates every current copy (downgrading a committed Shared-CK pair
// to Inv-CK under the ECP), a data phase moves the item if a supplier
// exists, and the new value is installed.
func (m *Machine) write(p *sim.Process, n proto.NodeID, item proto.ItemID, value uint64) {
	c := m.c[n]
	c.AMWrites++
	p.Wait(m.arch.AMAccess)
	if m.ams[n].State(item) == proto.Exclusive {
		m.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
		m.record(item, value)
		return
	}
	c.AMWriteMisses++

	busStart := p.Now()
	m.bus.Acquire(p)
	var txn proto.TxnID
	if m.obs != nil {
		txn = m.mintTxn(n)
		m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, A: obs.TxnWrite, B: p.Now() - busStart})
	}
	p.Wait(m.cfg.AddrPhase)
	m.busCycles += m.cfg.AddrPhase

	switch st := m.ams[n].State(item); {
	case st == proto.InvCK1 || st == proto.InvCK2:
		m.inject(p, n, item, proto.InjectWriteInvCK, txn)
	case st == proto.SharedCK1 || st == proto.SharedCK2:
		m.inject(p, n, item, proto.InjectWriteSharedCK, txn)
	}
	m.ensureFrame(p, n, item, txn)

	// Snoop responses: every state change happens at this instant (the
	// data transfer afterwards is pure timing).
	supplied := false
	for i := range m.ams {
		t := proto.NodeID(i)
		if t == n {
			continue
		}
		switch m.ams[t].State(item) {
		case proto.Shared:
			m.ams[t].SetState(item, proto.Invalid)
			m.c[t].InvalidationsIn++
		case proto.MasterShared, proto.Exclusive:
			supplied = true
			m.ams[t].SetState(item, proto.Invalid)
			m.c[t].InvalidationsIn++
		case proto.SharedCK1:
			// The pair is kept for recovery, exactly as on the mesh.
			supplied = true
			m.ams[t].SetState(item, proto.InvCK1)
			m.c[t].InvalidationsIn++
		case proto.SharedCK2:
			m.ams[t].SetState(item, proto.InvCK2)
			m.c[t].InvalidationsIn++
		case proto.Invalid, proto.InvCK1, proto.InvCK2:
			// No current copy to invalidate; Inv-CK pairs stay put for a
			// possible rollback.
		case proto.PreCommit1, proto.PreCommit2:
			// Unreachable: the bus quiesces processors for the whole
			// establishment, so no write snoops transient copies.
			panic(fmt.Sprintf("snoop: write to item %d snooped a %v copy on node %v",
				item, m.ams[t].State(item), t))
		}
	}
	// The local slot was freed above (CK copies injected earlier; a local
	// Shared or Master-Shared copy is simply overwritten by the upgrade).
	//coma:transition Invalid|Shared|MasterShared -> Exclusive
	m.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
	m.record(item, value)
	if supplied {
		p.Wait(m.cfg.DataPhase)
		m.busCycles += m.cfg.DataPhase
	}
	m.bus.Release(m.eng)
	p.Wait(m.arch.AMAccess)
	if m.obs != nil {
		src := obs.FillCold
		if supplied {
			src = obs.FillRemote
		}
		m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
			Txn: txn, A: src, B: p.Now() - busStart})
	}
}

// findSupplier returns the node that answers a read miss: the owner copy
// if one exists, otherwise any readable copy.
func (m *Machine) findSupplier(item proto.ItemID) (proto.NodeID, am.Slot) {
	fallback := proto.None
	var fbSlot am.Slot
	for i := range m.ams {
		slot := m.ams[i].Slot(item)
		if slot.State.Owner() && slot.State.Readable() {
			return proto.NodeID(i), slot
		}
		if fallback == proto.None && slot.State.Readable() {
			fallback, fbSlot = proto.NodeID(i), slot
		}
	}
	return fallback, fbSlot
}

// ensureFrame allocates the local page frame, reserving the anchor
// frames on first global touch and evicting (with injections) when the
// set is full — all within the current bus tenure.
func (m *Machine) ensureFrame(p *sim.Process, n proto.NodeID, item proto.ItemID, txn proto.TxnID) {
	page := m.arch.PageOf(item)
	if !m.anchors[page] {
		m.anchors[page] = true
		count := m.arch.AnchorFrames
		if !m.cfg.FaultTolerant {
			count = 1
		}
		a := n
		for k := 0; k < count && k < m.arch.Nodes; k++ {
			m.anchorFrame(p, a, page, txn)
			a = proto.NodeID((int(a) + 1) % m.arch.Nodes)
		}
	}
	if m.ams[n].HasFrame(page) {
		m.ams[n].Touch(page, p.Now())
		return
	}
	if !m.ams[n].FreeWay(page) {
		m.evict(p, n, page, txn)
	}
	m.ams[n].AllocFrame(page, false, p.Now())
}

func (m *Machine) anchorFrame(p *sim.Process, a proto.NodeID, page proto.PageID, txn proto.TxnID) {
	if m.ams[a].HasFrame(page) {
		m.ams[a].MarkIrreplaceable(page)
		return
	}
	if !m.ams[a].FreeWay(page) {
		m.evict(p, a, page, txn)
	}
	m.ams[a].AllocFrame(page, true, p.Now())
}

// evict frees a way by injecting the victim frame's pinned items.
func (m *Machine) evict(p *sim.Process, n proto.NodeID, page proto.PageID, par proto.TxnID) {
	victim, ok := m.ams[n].VictimPage(page)
	if !ok {
		panic(fmt.Sprintf("snoop: node %v cannot evict for page %d", n, page))
	}
	for _, it := range m.ams[n].PinnedItems(victim) {
		var cause proto.InjectCause
		switch st := m.ams[n].State(it); st {
		case proto.Exclusive, proto.MasterShared:
			cause = proto.InjectReplaceMaster
		case proto.SharedCK1, proto.SharedCK2:
			cause = proto.InjectReplaceSharedCK
		case proto.InvCK1, proto.InvCK2:
			cause = proto.InjectReplaceInvCK
		case proto.Invalid, proto.Shared:
			continue // replaceable copies are simply dropped with the frame
		case proto.PreCommit1, proto.PreCommit2:
			// Dropping a transient pre-commit copy would corrupt the
			// recovery point being established; evictions cannot run
			// while the bus is quiesced for an establishment.
			panic(fmt.Sprintf("snoop: evicting item %d in transient %v", it, st))
		}
		m.inject(p, n, it, cause, par)
	}
	first := m.arch.FirstItem(victim)
	for i := 0; i < m.arch.ItemsPerPage(); i++ {
		it := first + proto.ItemID(i)
		if m.ams[n].State(it) == proto.Shared {
			m.ams[n].SetState(it, proto.Invalid)
		}
	}
	m.ams[n].DropFrame(victim)
}

// inject moves the local copy of item to another AM inside the current
// bus tenure: the snoop phase already arbitrated, so acceptance is a
// simple scan in ring order, and the move costs one data phase. par is
// the transaction that forced the injection; the injection itself is
// traced as a child transaction parented to it.
func (m *Machine) inject(p *sim.Process, n proto.NodeID, item proto.ItemID,
	cause proto.InjectCause, par proto.TxnID) proto.NodeID {

	src := m.ams[n].Slot(item)
	if src.State.Replaceable() {
		panic(fmt.Sprintf("snoop: injecting item %d from %v in %v", item, n, src.State))
	}
	m.c[n].Injections[cause]++
	start := p.Now()
	var txn proto.TxnID
	if m.obs != nil {
		txn = m.mintTxn(n)
		m.obs.Emit(obs.Event{Time: start, Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, Par: par, A: obs.TxnInject})
	}
	target := m.placeCopy(p, n, item, src.State, src.Value, src.Partner)
	if src.State.Recovery() && src.Partner != proto.None && src.Partner != target {
		m.ams[src.Partner].SetPartner(item, target)
	}
	m.ams[n].SetState(item, proto.Invalid)
	m.ams[n].SetPartner(item, proto.None)
	if m.obs != nil {
		m.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
			Txn: txn, A: int64(target), B: p.Now() - start})
	}
	return target
}

// placeCopy installs a copy of the item on some other node (ring order),
// charging one data phase. Used by injections, create-phase replication
// and reconfiguration.
func (m *Machine) placeCopy(p *sim.Process, n proto.NodeID, item proto.ItemID,
	st proto.State, value uint64, partner proto.NodeID) proto.NodeID {

	page := m.arch.PageOf(item)
	for k := 1; k < m.arch.Nodes; k++ {
		t := proto.NodeID((int(n) + k) % m.arch.Nodes)
		amt := m.ams[t]
		switch {
		case amt.HasFrame(page):
			if !amt.State(item).Replaceable() {
				continue
			}
		case amt.FreeWay(page):
			amt.AllocFrame(page, false, p.Now())
		default:
			continue
		}
		// Install at the decision instant; the transfer is timing. The
		// victim slot passed the Replaceable test (or is a fresh frame);
		// the incoming state is whatever a mover or creator hands us.
		//coma:transition Invalid|Shared -> Exclusive|MasterShared|SharedCK1|SharedCK2|InvCK1|InvCK2|PreCommit2
		amt.Set(item, am.Slot{State: st, Value: value, Partner: partner})
		p.Wait(m.cfg.DataPhase)
		m.busCycles += m.cfg.DataPhase
		return t
	}
	panic(fmt.Sprintf("snoop: no room for a copy of item %d from %v", item, n))
}

// record notes a completed store in the oracle.
func (m *Machine) record(item proto.ItemID, value uint64) {
	if m.oracle != nil {
		m.oracle[item] = value
	}
}

// verify checks a delivered value against the oracle.
func (m *Machine) verify(n proto.NodeID, item proto.ItemID, value uint64) {
	if m.oracle == nil {
		return
	}
	if want := m.oracle[item]; want != value {
		m.fail(fmt.Errorf("snoop: node %v read %#x from item %d, oracle says %#x", n, value, item, want))
	}
}

package fault

import (
	"strings"
	"testing"

	"coma/internal/proto"
)

func TestSingle(t *testing.T) {
	p := Single(1000, 3, true)
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].At != 1000 || p[0].Node != 3 || !p[0].Permanent {
		t.Fatalf("plan = %+v", p)
	}
	if p.PermanentCount() != 1 {
		t.Fatal("permanent count")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		nodes   int
		wantErr string // "" means the plan is valid
	}{
		{"empty plan", nil, 8, ""},
		{"single event", Plan{{At: 10, Node: 3}}, 8, ""},
		{"ordered events", Plan{{At: 10, Node: 1}, {At: 20, Node: 2}}, 8, ""},
		{"boundary node", Plan{{At: 10, Node: 7}}, 8, ""},
		{"cycle zero", Plan{{At: 0, Node: 0}}, 8, ""},
		// Simultaneous failures are legal by design: Exponential can draw
		// coincident events, and data-loss experiments rely on them.
		{"simultaneous events", Plan{{At: 10, Node: 1}, {At: 10, Node: 2}}, 8, ""},
		{"same node twice", Plan{{At: 10, Node: 1}, {At: 20, Node: 1}}, 8, ""},

		{"node beyond machine", Plan{{At: 10, Node: 9}}, 8, "names node n9 of 8"},
		{"node equals machine size", Plan{{At: 10, Node: 8}}, 8, "names node n8 of 8"},
		{"negative node", Plan{{At: 10, Node: proto.NodeID(-1)}}, 8, "of 8"},
		{"negative time", Plan{{At: -1, Node: 1}}, 8, "negative time -1"},
		{"out of order", Plan{{At: 10, Node: 1}, {At: 5, Node: 2}}, 8, "out of order at 1"},
		{"later event bad node", Plan{{At: 10, Node: 1}, {At: 20, Node: 8}}, 8, "event 1 names node n8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.nodes)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate(%d) = %v, want nil", tc.nodes, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate(%d) accepted an invalid plan", tc.nodes)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestExponentialDeterministicAndOrdered(t *testing.T) {
	a := Exponential(42, 16, 100_000, 10_000_000, 0.25)
	b := Exponential(42, 16, 100_000, 10_000_000, 0.25)
	if len(a) == 0 {
		t.Fatal("empty plan for a 100-MTBF horizon")
	}
	if len(a) != len(b) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different plans")
		}
	}
	if err := a.Validate(16); err != nil {
		t.Fatal(err)
	}
	// Mean spacing should be in the right ballpark.
	mean := float64(a[len(a)-1].At) / float64(len(a))
	if mean < 30_000 || mean > 300_000 {
		t.Fatalf("mean inter-arrival = %.0f, want ~100k", mean)
	}
}

func TestExponentialNoFailuresAfterPermanentDeath(t *testing.T) {
	p := Exponential(7, 4, 50_000, 20_000_000, 1.0) // all permanent
	seen := map[proto.NodeID]int{}
	for _, e := range p {
		seen[e.Node]++
	}
	for n, c := range seen {
		if c > 1 {
			t.Fatalf("node %v fails permanently %d times", n, c)
		}
	}
}

func TestEverySpaced(t *testing.T) {
	p := EverySpaced(1000, 9000, 3, 16)
	if len(p) != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if p[0].At != 1000 || p[1].At != 4000 || p[2].At != 7000 {
		t.Fatalf("times = %v %v %v", p[0].At, p[1].At, p[2].At)
	}
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestSortStable(t *testing.T) {
	p := Plan{{At: 20, Node: 5}, {At: 10, Node: 7}, {At: 10, Node: 2}}
	p.Sort()
	if p[0].At != 10 || p[0].Node != 7 && p[0].Node != 2 {
		t.Fatalf("sorted = %+v", p)
	}
	if p[0].Node != 2 {
		t.Fatalf("equal times not ordered by node: %+v", p)
	}
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
}

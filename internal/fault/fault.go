// Package fault builds failure plans for the simulated machine: single
// scripted failures, uniform random schedules, and exponential (MTBF)
// schedules — the failure model under which the paper motivates backward
// error recovery for large machines. Plans are deterministic given a
// seed.
package fault

import (
	"fmt"
	"math"
	"sort"

	"coma/internal/proto"
	"coma/internal/sim"
)

// Event is one planned node failure.
type Event struct {
	At        int64 // absolute cycle
	Node      proto.NodeID
	Permanent bool
}

// Plan is an ordered failure schedule.
type Plan []Event

// Validate checks that the plan is time-ordered, starts at cycle 0 or
// later, and names only nodes that exist. Simultaneous failures are
// legal: Exponential can draw coincident events, and overlapping
// failures are exactly how data-loss experiments defeat the two-copy
// scheme on purpose (the machine reports ErrDataLoss at run time when
// that happens).
func (p Plan) Validate(nodes int) error {
	for i, e := range p {
		if int(e.Node) < 0 || int(e.Node) >= nodes {
			return fmt.Errorf("fault: event %d names node %v of %d", i, e.Node, nodes)
		}
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative time %d", i, e.At)
		}
		if i > 0 && e.At < p[i-1].At {
			return fmt.Errorf("fault: events out of order at %d", i)
		}
	}
	return nil
}

// Single returns a plan with one failure.
func Single(at int64, node proto.NodeID, permanent bool) Plan {
	return Plan{{At: at, Node: node, Permanent: permanent}}
}

// Exponential draws failures with exponentially distributed
// inter-arrival times of the given mean (an MTBF model over the whole
// machine), uniformly choosing the victim node, within [0, horizon). All
// failures are transient unless permanentFrac of them (randomly chosen)
// are permanent; a node is made permanent at most once and never after
// it already failed permanently.
func Exponential(seed uint64, nodes int, meanCycles, horizon int64, permanentFrac float64) Plan {
	if nodes < 1 || meanCycles <= 0 || horizon <= 0 {
		return nil
	}
	rng := sim.NewRNG(seed)
	var plan Plan
	deadPerm := make(map[proto.NodeID]bool)
	t := int64(0)
	for {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		t += int64(-math.Log(u) * float64(meanCycles))
		if t >= horizon {
			break
		}
		n := proto.NodeID(rng.Intn(nodes))
		if deadPerm[n] {
			continue
		}
		perm := rng.Bool(permanentFrac)
		if perm {
			deadPerm[n] = true
		}
		plan = append(plan, Event{At: t, Node: n, Permanent: perm})
	}
	return plan
}

// EverySpaced returns count transient failures of distinct nodes spaced
// evenly through [start, start+span) — a deterministic stress schedule.
func EverySpaced(start, span int64, count, nodes int) Plan {
	if count < 1 || nodes < 1 {
		return nil
	}
	plan := make(Plan, 0, count)
	for i := 0; i < count; i++ {
		plan = append(plan, Event{
			At:   start + span*int64(i)/int64(count),
			Node: proto.NodeID(i % nodes),
		})
	}
	return plan
}

// Sort orders a plan by time (stable on node id for equal times).
func (p Plan) Sort() {
	sort.SliceStable(p, func(i, j int) bool {
		if p[i].At != p[j].At {
			return p[i].At < p[j].At
		}
		return p[i].Node < p[j].Node
	})
}

// PermanentCount returns the number of permanent failures in the plan.
func (p Plan) PermanentCount() int {
	c := 0
	for _, e := range p {
		if e.Permanent {
			c++
		}
	}
	return c
}

// Package edges stages deterministic micro-runs that together drive
// the mesh simulator through every (From, To) edge of the ECP
// specification table — the runtime leg of the comamodel conformance
// gate. It lives in its own package (not internal/fault proper) so the
// machine layer's tests can import fault without a cycle.
package edges

import (
	"fmt"
	"io"
	"sort"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/machine"
	"coma/internal/obs"
	"coma/internal/obs/txnview"
	"coma/internal/proto"
	"coma/internal/stats"
	"coma/internal/workload"
)

// This file stages deterministic micro-runs that drive the simulator
// through every (From, To) edge of the ECP specification table
// (proto.ECPTransitions). Broad workloads exercise most edges by
// accident; the rest need precise choreography — a failure landing
// inside a create window, recovery copies moved onto Shared victims, a
// master evicted onto a node that already holds the item — and those
// are exactly the transitions a conformance argument most wants to see
// executed. comafault -edges runs the suite and cmd/comamodel diffs the
// union against the spec, the static extraction and the model checker.

// Transition is one (From, To) edge of the specification table.
type Transition struct {
	From, To proto.State
}

func (t Transition) String() string { return fmt.Sprintf("%v -> %v", t.From, t.To) }

// Scenario is one deterministic run staged to exercise specific
// protocol edges.
type Scenario struct {
	Name string
	// Doc explains the choreography in one or two sentences.
	Doc string
	// Targets are the spec edges this scenario exists to reach; the
	// suite fails if a scenario misses one of its own targets, so a
	// timing change that silently un-stages a scenario is caught even
	// when another scenario still covers the edge.
	Targets []Transition
	// WantAborted requires at least one establishment abort (the
	// create-window failure scenario).
	WantAborted bool
	// Config builds a fresh machine configuration. Generators are
	// stateful, so every call must return new ones.
	Config func() machine.Config
}

// ScenarioResult is the outcome of one scenario run.
type ScenarioResult struct {
	Scenario Scenario
	Run      *stats.Run
	Events   []obs.Event
	// Exercised is the set of protocol edges the run's trace replays.
	Exercised map[Transition]int
	// MissedTargets are the scenario's own targets it failed to reach.
	MissedTargets []Transition
	// Unexpected are replayed edges outside the specification table.
	Unexpected []Transition
}

// RunScenario executes one scenario with a full-mask recorder
// attached and replays its trace into per-edge coverage.
func RunScenario(sc Scenario) (*ScenarioResult, error) {
	cfg := sc.Config()
	rec := obs.NewRecorder(obs.MaskAll)
	cfg.Obs = rec
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	run, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	res := &ScenarioResult{
		Scenario:  sc,
		Run:       run,
		Events:    rec.Events(),
		Exercised: make(map[Transition]int),
	}
	rep := txnview.Coverage(res.Events)
	for _, e := range rep.Exercised {
		res.Exercised[Transition{e.From, e.To}] += int(e.Count)
	}
	for _, e := range rep.Unexpected {
		res.Unexpected = append(res.Unexpected, Transition{e.From, e.To})
	}
	for _, t := range sc.Targets {
		if res.Exercised[t] == 0 {
			res.MissedTargets = append(res.MissedTargets, t)
		}
	}
	if sc.WantAborted && run.Ckpt.Aborted == 0 {
		return nil, fmt.Errorf("%s: no establishment aborted (failure missed the create window; retune the failure time)", sc.Name)
	}
	return res, nil
}

// SpecTransitions returns the unique (From, To) pairs of the
// specification table, sorted.
func SpecTransitions() []Transition {
	seen := make(map[Transition]bool)
	for _, tr := range proto.ECPTransitions() {
		if tr.From == tr.To {
			continue
		}
		seen[Transition{tr.From, tr.To}] = true
	}
	out := make([]Transition, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sortTransitions(out)
	return out
}

func sortTransitions(ts []Transition) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].From != ts[j].From {
			return ts[i].From < ts[j].From
		}
		return ts[i].To < ts[j].To
	})
}

// SuiteReport is the union coverage of a full suite run.
type SuiteReport struct {
	Results   []*ScenarioResult
	Exercised map[Transition]int
	// Missing are spec edges no scenario exercised.
	Missing []Transition
	// Unexpected are replayed edges outside the spec, with the scenario
	// that produced them.
	Unexpected map[Transition][]string
}

// RunSuite executes every scenario and unions the coverage.
func RunSuite() (*SuiteReport, error) {
	rep := &SuiteReport{
		Exercised:  make(map[Transition]int),
		Unexpected: make(map[Transition][]string),
	}
	for _, sc := range Scenarios() {
		res, err := RunScenario(sc)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
		for t, n := range res.Exercised {
			rep.Exercised[t] += n
		}
		for _, t := range res.Unexpected {
			rep.Unexpected[t] = append(rep.Unexpected[t], sc.Name)
		}
	}
	for _, t := range SpecTransitions() {
		if rep.Exercised[t] == 0 {
			rep.Missing = append(rep.Missing, t)
		}
	}
	return rep, nil
}

// Full reports whether the suite covered the entire specification table
// with no misses, no unexpected edges, and every scenario reaching its
// own targets.
func (r *SuiteReport) Full() bool {
	if len(r.Missing) > 0 || len(r.Unexpected) > 0 {
		return false
	}
	for _, res := range r.Results {
		if len(res.MissedTargets) > 0 {
			return false
		}
	}
	return true
}

// Write renders the per-scenario and union coverage.
func (r *SuiteReport) Write(w io.Writer) {
	spec := SpecTransitions()
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-22s %3d/%d edges", res.Scenario.Name, len(res.Exercised), len(spec))
		if res.Run.Ckpt.Aborted > 0 {
			fmt.Fprintf(w, ", %d aborted establishment(s)", res.Run.Ckpt.Aborted)
		}
		fmt.Fprintln(w)
		for _, t := range res.MissedTargets {
			fmt.Fprintf(w, "  MISSED TARGET: %s\n", t)
		}
	}
	fmt.Fprintf(w, "union: %d/%d spec edges exercised\n", len(spec)-len(r.Missing), len(spec))
	for _, t := range r.Missing {
		fmt.Fprintf(w, "  unexercised: %s\n", t)
	}
	keys := make([]Transition, 0, len(r.Unexpected))
	for t := range r.Unexpected {
		keys = append(keys, t)
	}
	sortTransitions(keys)
	for _, t := range keys {
		fmt.Fprintf(w, "  UNEXPECTED: %s (%v)\n", t, r.Unexpected[t])
	}
}

// ckptInterval is the establishment period the checkpointed scenarios
// use; settle() is sized so at least two full rounds fit inside it.
const ckptInterval = 25_000

// rep appends n copies of the given refs.
func rep(n int, refs ...workload.Ref) []workload.Ref {
	out := make([]workload.Ref, 0, n*len(refs))
	for i := 0; i < n; i++ {
		out = append(out, refs...)
	}
	return out
}

// settle is an interruptible burst long enough for two checkpoint
// rounds: many short instruction bursts, so the coordinator's pause
// request is honoured between them.
func settle() []workload.Ref { return rep(30, workload.I(ckptInterval/10)) }

// phased assembles one Script generator per node from a phase table:
// phases[p][n] is node n's reference stream for phase p, and a global
// barrier separates consecutive phases so the cross-node ordering is
// exact. A nil cell idles through the phase.
func phased(name string, nodes int, phases [][][]workload.Ref) []workload.Generator {
	gens := make([]workload.Generator, nodes)
	for n := 0; n < nodes; n++ {
		var refs []workload.Ref
		for _, ph := range phases {
			cell := []workload.Ref{workload.I(100)}
			if n < len(ph) && ph[n] != nil {
				cell = ph[n]
			}
			refs = append(refs, cell...)
			refs = append(refs, workload.B())
		}
		gens[n] = workload.NewScript(fmt.Sprintf("%s-n%d", name, n), refs)
	}
	return gens
}

// addrOf returns the byte address of item idx on the given page.
func addrOf(a config.Arch, page, idx int) uint64 {
	return uint64(page)*uint64(a.PageSize) + uint64(idx)*uint64(a.ItemSize)
}

// refs is a tiny readability alias for one phase cell.
func refs(rs ...workload.Ref) []workload.Ref { return rs }

// Scenarios returns the full suite. Every scenario is deterministic:
// fixed scripts, fixed failure times, same seed behaviour on every run.
func Scenarios() []Scenario {
	return []Scenario{
		upgradePaths(),
		recoveryPairWrite(),
		invCKMoves(),
		masterEviction(),
		createWindowAbort(),
		reconfigurePromote(),
	}
}

// upgradePaths walks the plain-ECP ownership lattice on one item:
// cold-write, read-downgrade, sharer upgrade, master re-upgrade, and
// remote-write ownership transfer.
func upgradePaths() Scenario {
	arch := config.KSR1(4)
	A := addrOf(arch, 0, 0)
	return Scenario{
		Name: "upgrade-paths",
		Doc: "one item bounced between four nodes: cold write, read " +
			"downgrades, sharer and master upgrades, ownership transfer",
		Targets: []Transition{
			{proto.Invalid, proto.Exclusive},
			{proto.Invalid, proto.Shared},
			{proto.Exclusive, proto.MasterShared},
			{proto.Exclusive, proto.Invalid},
			{proto.MasterShared, proto.Exclusive},
			{proto.MasterShared, proto.Invalid},
			{proto.Shared, proto.Exclusive},
			{proto.Shared, proto.Invalid},
		},
		Config: func() machine.Config {
			gens := phased("upgrade-paths", 4, [][][]workload.Ref{
				{refs(workload.W(A))},                // I->E at n0
				{nil, refs(workload.R(A))},           // E->MS at n0, I->S at n1
				{nil, refs(workload.W(A))},           // S->E at n1, MS->I at n0
				{refs(workload.R(A))},                // E->MS at n1, I->S at n0
				{nil, refs(workload.W(A))},           // MS->E at n1, S->I at n0
				{nil, nil, refs(workload.R(A))},      // E->MS at n1, I->S at n2
				{nil, nil, nil, refs(workload.W(A))}, // MS->I at n1, I->E at n3
				{refs(workload.W(A))},                // E->I at n3, I->E at n0
			})
			return machine.Config{
				Arch:       arch,
				Protocol:   coherence.ECP,
				Generators: gens,
				Oracle:     true,
				MaxCycles:  2_000_000,
			}
		},
	}
}

// recoveryPairWrite establishes Shared-CK pairs and then has pair
// members write the item, so the write-triggered injection moves the
// recovery copy onto nodes staged to hold Shared (or Invalid) victims.
func recoveryPairWrite() Scenario {
	arch := config.KSR1(4)
	X := addrOf(arch, 0, 0)
	return Scenario{
		Name: "recovery-pair-write",
		Doc: "Shared-CK holders write the protected item while ring " +
			"successors hold Shared or Invalid slots, so the recovery copy " +
			"is injected over every victim kind",
		Targets: []Transition{
			{proto.Exclusive, proto.PreCommit1},
			{proto.Invalid, proto.PreCommit2},
			{proto.PreCommit1, proto.SharedCK1},
			{proto.PreCommit2, proto.SharedCK2},
			{proto.Shared, proto.SharedCK1},
			{proto.Shared, proto.SharedCK2},
			{proto.Invalid, proto.SharedCK1},
			{proto.SharedCK1, proto.InvCK1},
			{proto.SharedCK2, proto.InvCK2},
			{proto.SharedCK1, proto.Invalid},
			{proto.SharedCK2, proto.Invalid},
			{proto.InvCK1, proto.Invalid},
			{proto.InvCK2, proto.Invalid},
		},
		Config: func() machine.Config {
			gens := phased("recovery-pair-write", 4, [][][]workload.Ref{
				{refs(workload.W(X))}, // I->E at n0
				// Establishment: E->PC1 at n0, PC2 injected to n1
				// (I->PC2), commit -> SCK1@0, SCK2@1.
				{settle(), settle(), settle(), settle()},
				{nil, nil, refs(workload.R(X)), refs(workload.R(X))}, // S@2, S@3
				// n0 writes its own SCK1: the injection walks the ring
				// past SCK2@1 onto S@2 (Shared -> SharedCK1); the write
				// then demotes the pair and invalidates S@3.
				{refs(workload.W(X))},
				// New pair: PC2 lands on n3 (only Invalid slot left);
				// commit clears the Inv-CKs.
				{settle(), settle(), settle(), settle()},
				{nil, refs(workload.R(X)), refs(workload.R(X))}, // S@1, S@2
				// n3 writes its own SCK2: past SCK1@0 onto S@1
				// (Shared -> SharedCK2).
				{nil, nil, nil, refs(workload.W(X))},
				{settle(), settle(), settle(), settle()},
				// n3 writes its own SCK1: the first ring stop n0 holds an
				// Invalid slot (Invalid -> SharedCK1).
				{nil, nil, nil, refs(workload.W(X))},
				{settle(), settle(), settle(), settle()},
			})
			return machine.Config{
				Arch:               arch,
				Protocol:           coherence.ECP,
				Generators:         gens,
				Oracle:             true,
				CheckpointInterval: ckptInterval,
				MaxCycles:          5_000_000,
			}
		},
	}
}

// invCKMoves stages reads and writes on nodes holding Inv-CK copies, so
// the displacement injections land on Shared and Invalid victims, and
// ends with a MasterShared owner whose establishment reuses a Shared
// copy for the secondary.
func invCKMoves() Scenario {
	arch := config.KSR1(4)
	X := addrOf(arch, 0, 0)
	return Scenario{
		Name: "inv-ck-moves",
		Doc: "accesses to local Inv-CK copies inject them over Shared and " +
			"Invalid victims; a MasterShared owner then establishes via " +
			"replication reuse of a Shared copy",
		Targets: []Transition{
			{proto.Shared, proto.InvCK1},
			{proto.Shared, proto.InvCK2},
			{proto.Invalid, proto.InvCK1},
			{proto.Invalid, proto.InvCK2},
			{proto.MasterShared, proto.PreCommit1},
			{proto.Shared, proto.PreCommit2},
		},
		Config: func() machine.Config {
			gens := phased("inv-ck-moves", 4, [][][]workload.Ref{
				{refs(workload.W(X))},                    // E@0
				{settle(), settle(), settle(), settle()}, // SCK1@0, SCK2@1
				{nil, nil, refs(workload.W(X))},          // pair -> ICK1@0, ICK2@1; E@2
				{nil, nil, nil, refs(workload.R(X))},     // E->MS@2, S@3
				{refs(workload.R(X))},                    // ICK1@0 over S@3 (S->ICK1); S@0
				{nil, refs(workload.R(X))},               // ICK2@1 over S@0 (S->ICK2); S@1
				{nil, nil, refs(workload.W(X))},          // MS->E@2; S@1->I
				{nil, nil, nil, refs(workload.R(X))},     // ICK1@3 over I@1 (I->ICK1); MS@2, S@3
				{nil, refs(workload.W(X))},               // ICK1@1 over S@3; MS@2->I; E@1
				{refs(workload.R(X))},                    // ICK2@0 over I@2 (I->ICK2); E@1->MS, S@0
				{settle(), settle(), settle(), settle()}, // MS->PC1@1, reuse S@0 -> PC2
				{nil, nil, nil, refs(workload.R(X))},     // settle read
				{settle(), settle(), settle(), settle()},
			})
			return machine.Config{
				Arch:               arch,
				Protocol:           coherence.ECP,
				Generators:         gens,
				Oracle:             true,
				CheckpointInterval: ckptInterval,
				MaxCycles:          5_000_000,
			}
		},
	}
}

// masterEviction shrinks the attraction memories to four frames with a
// single anchor, fills a node's set with irreplaceable pages and forces
// the replacement of a MasterShared frame, so the master is injected
// over a Shared victim and — for a second item — over an Invalid slot.
func masterEviction() Scenario {
	arch := config.KSR1(4)
	arch.AMSize = 4 * arch.PageSize // four frames per node
	arch.AMWays = 4                 // one fully associative set
	arch.AnchorFrames = 1           // only the first toucher is irreplaceable
	X := addrOf(arch, 0, 0)
	Y := addrOf(arch, 1, 0)
	return Scenario{
		Name: "master-eviction",
		Doc: "a four-frame AM with a single anchor: filling the set with " +
			"irreplaceable pages evicts the MasterShared frame, injecting " +
			"the master over a Shared victim and an Invalid anchor slot",
		Targets: []Transition{
			{proto.Shared, proto.MasterShared},
			{proto.Invalid, proto.MasterShared},
			{proto.MasterShared, proto.Invalid},
		},
		Config: func() machine.Config {
			gens := phased("master-eviction", 4, [][][]workload.Ref{
				{refs(workload.R(X))},           // anchor page0 at n0; cold S@0
				{nil, refs(workload.W(X))},      // E@1 (replaceable frame), S@0->I
				{nil, nil, refs(workload.R(X))}, // E->MS@1, S@2
				{nil, refs( // three fresh pages anchor at n1; set now full
					workload.R(addrOf(arch, 2, 0)),
					workload.R(addrOf(arch, 3, 0)),
					workload.R(addrOf(arch, 4, 0)),
				)},
				// Page 5 evicts page 0 at n1: the master walks the ring to
				// n2's Shared slot (Shared -> MasterShared).
				{nil, refs(workload.R(addrOf(arch, 5, 0)))},
				{refs(workload.R(Y))},                // anchor page1 at n0; cold S@0
				{nil, nil, nil, refs(workload.W(Y))}, // E@3, S@0->I
				{nil, nil, refs(workload.R(Y))},      // E->MS@3, S@2
				{nil, nil, nil, refs(
					workload.R(addrOf(arch, 6, 0)),
					workload.R(addrOf(arch, 7, 0)),
					workload.R(addrOf(arch, 8, 0)),
				)},
				// Page 9 evicts page 1 at n3: the first ring stop n0 holds
				// the anchored frame with Y Invalid (Invalid -> MasterShared).
				{nil, nil, nil, refs(workload.R(addrOf(arch, 9, 0)))},
			})
			return machine.Config{
				Arch:       arch,
				Protocol:   coherence.ECP,
				Generators: gens,
				Oracle:     true,
				MaxCycles:  2_000_000,
			}
		},
	}
}

// createWindowAbort writes enough distinct items that the create phase
// of the first establishment is long, and schedules a transient failure
// inside it: the abort's recovery scan discards the pre-commit pairs
// (PreCommit -> Invalid). A second failure lands between later commits,
// while demoted Inv-CK copies exist, so the rollback restores them
// (InvCK -> SharedCK).
func createWindowAbort() Scenario {
	arch := config.KSR1(4)
	const interval = 30_000
	return Scenario{
		Name: "create-window-abort",
		Doc: "a transient failure inside the first create window aborts " +
			"the establishment at the commit boundary; a later failure " +
			"between commits rolls demoted Inv-CK copies back to Shared-CK",
		Targets: []Transition{
			{proto.PreCommit1, proto.Invalid},
			{proto.PreCommit2, proto.Invalid},
			{proto.InvCK1, proto.SharedCK1},
			{proto.InvCK2, proto.SharedCK2},
		},
		WantAborted: true,
		Config: func() machine.Config {
			gens := make([]workload.Generator, 4)
			for n := 0; n < 4; n++ {
				var rs []workload.Ref
				for k := 0; k < 120; k++ {
					rs = append(rs, workload.W(addrOf(arch, n, k%24)), workload.I(300))
				}
				gens[n] = workload.NewScript(fmt.Sprintf("create-window-abort-n%d", n), rs)
			}
			return machine.Config{
				Arch:               arch,
				Protocol:           coherence.ECP,
				Generators:         gens,
				Oracle:             true,
				CheckpointInterval: interval,
				Failures: []machine.FailurePlan{
					{At: 31_500, Node: 2},
					{At: 75_000, Node: 1},
				},
				MaxCycles: 10_000_000,
			}
		},
	}
}

// reconfigurePromote kills the SharedCK1 holder permanently: the
// surviving secondary promotes itself (SharedCK2 -> SharedCK1) and
// injects a fresh secondary into an Invalid slot (Invalid -> SharedCK2).
func reconfigurePromote() Scenario {
	arch := config.KSR1(5)
	X := addrOf(arch, 0, 0)
	return Scenario{
		Name: "reconfigure-promote",
		Doc: "a permanent failure of the SharedCK1 holder: reconfiguration " +
			"promotes the surviving secondary and re-replicates it",
		Targets: []Transition{
			{proto.SharedCK2, proto.SharedCK1},
			{proto.Invalid, proto.SharedCK2},
		},
		Config: func() machine.Config {
			gens := make([]workload.Generator, 5)
			for n := 0; n < 5; n++ {
				var rs []workload.Ref
				if n == 0 {
					rs = append(rs, workload.W(X))
				}
				// No barriers: node 0 dies mid-run and must not strand the
				// others at a rendezvous.
				rs = append(rs, rep(60, workload.I(2_000))...)
				gens[n] = workload.NewScript(fmt.Sprintf("reconfigure-promote-n%d", n), rs)
			}
			return machine.Config{
				Arch:               arch,
				Protocol:           coherence.ECP,
				Generators:         gens,
				Oracle:             true,
				CheckpointInterval: ckptInterval,
				Failures: []machine.FailurePlan{
					{At: 70_000, Node: 0, Permanent: true},
				},
				MaxCycles: 5_000_000,
			}
		},
	}
}

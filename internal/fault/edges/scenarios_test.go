package edges

import (
	"bytes"
	"strings"
	"testing"

	"coma/internal/obs"
	"coma/internal/proto"
)

// TestSpecTransitionsCount pins the size of the specification table the
// suite measures itself against.
func TestSpecTransitionsCount(t *testing.T) {
	if n := len(SpecTransitions()); n != 35 {
		t.Fatalf("spec has %d unique edges, want 35", n)
	}
}

// TestEdgeSuiteFullCoverage is the runtime leg of the conformance
// argument: the staged scenarios together must execute every edge of
// the specification table — including the create-window aborts and the
// injection installs over Shared victims that broad workloads miss.
func TestEdgeSuiteFullCoverage(t *testing.T) {
	rep, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Write(&sb)
	t.Logf("\n%s", sb.String())
	if !rep.Full() {
		t.Fatalf("edge suite does not cover the full spec:\n%s", sb.String())
	}
}

// TestEdgeScenarioTargetsDisjointness documents that every spec edge is
// someone's explicit target, so a future edit cannot silently orphan
// one behind "another scenario probably covers it".
func TestEdgeScenarioTargetsClaimHardEdges(t *testing.T) {
	claimed := make(map[Transition]bool)
	for _, sc := range Scenarios() {
		for _, tr := range sc.Targets {
			claimed[tr] = true
		}
	}
	// The eight edges the broad workloads never reached (the 27/35
	// plateau) must each be a named target.
	for _, tr := range []string{
		"Invalid -> MasterShared",
		"Shared -> MasterShared",
		"Shared -> SharedCK1",
		"Shared -> SharedCK2",
		"Shared -> InvCK1",
		"Shared -> InvCK2",
		"PreCommit1 -> Invalid",
		"PreCommit2 -> Invalid",
	} {
		found := false
		for c := range claimed {
			if c.String() == tr {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("hard edge %s is no scenario's target", tr)
		}
	}
}

// TestEdgeScenarioDeterminism requires a scenario's trace to be
// byte-identical across runs: the suite doubles as a regression anchor,
// which only works if the choreography is exactly reproducible.
func TestEdgeScenarioDeterminism(t *testing.T) {
	render := func() []byte {
		var sc Scenario
		for _, s := range Scenarios() {
			if s.Name == "recovery-pair-write" {
				sc = s
			}
		}
		if sc.Name == "" {
			t.Fatal("recovery-pair-write scenario missing")
		}
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, res.Events); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("two runs of the same scenario produced different traces")
	}
}

// TestCreateWindowAbortIsRealAbort pins the scenario's core property
// explicitly (RunScenario also enforces it): the first failure must
// land inside the create window and abort the establishment, because
// that abort is the only runtime path to the PreCommit -> Invalid edges.
func TestCreateWindowAbortIsRealAbort(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Name != "create-window-abort" {
			continue
		}
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Run.Ckpt.Aborted == 0 {
			t.Fatal("no aborted establishment")
		}
		if res.Run.Ckpt.Established == 0 {
			t.Fatal("no establishment ever committed; the scenario no longer recovers")
		}
		for _, tr := range []Transition{
			{From: proto.PreCommit1, To: proto.Invalid},
			{From: proto.PreCommit2, To: proto.Invalid},
		} {
			if res.Exercised[tr] == 0 {
				t.Errorf("abort did not replay %s", tr)
			}
		}
		return
	}
	t.Fatal("create-window-abort scenario missing")
}

// Package proto defines the vocabulary shared by every layer of the
// simulator: node/item/page identifiers, coherence states (standard COMA-F
// states plus the recovery states added by the Extended Coherence
// Protocol), message kinds, and injection causes.
//
// It is a leaf package: it imports nothing from the rest of the module so
// that the attraction memory, the directory and the protocol engine can all
// speak the same types without cycles.
package proto

import "fmt"

// NodeID identifies a processing node. The zero value is a valid node;
// None marks the absence of a node (for example "no owner yet").
type NodeID int16

// None is the sentinel "no node" value.
const None NodeID = -1

// Valid reports whether n refers to an actual node.
func (n NodeID) Valid() bool { return n >= 0 }

func (n NodeID) String() string {
	if n == None {
		return "none"
	}
	return fmt.Sprintf("n%d", int(n))
}

// ItemID is the global index of a memory item (the COMA coherence unit,
// 128 bytes in the paper's configuration). Items are numbered densely from
// zero over the shared address space: item = address / ItemSize.
type ItemID int32

// NoItem marks the absence of an item.
const NoItem ItemID = -1

// PageID is the global index of a memory page (the AM allocation unit,
// 16 KB in the paper's configuration).
type PageID int32

// NoPage marks the absence of a page.
const NoPage PageID = -1

// State is the coherence state of one item copy in one attraction memory.
//
// The first four states form the standard COMA-F write-invalidate protocol.
// The remaining six are the states the paper's Extended Coherence Protocol
// adds to identify recovery data; each recovery pair is split into a "1"
// and a "2" copy so that exactly one of the pair (the 1 copy) may deliver
// exclusive access rights, avoiding multiple owners (paper §4.1).
type State uint8

const (
	// Invalid: the slot holds no usable copy.
	Invalid State = iota
	// Shared: a read-only copy; other copies may exist.
	Shared
	// MasterShared: the master copy of an item that has Shared replicas.
	// The master must never be purged without injection.
	MasterShared
	// Exclusive: the only valid copy of the item; read-write.
	Exclusive
	// SharedCK1 is the primary recovery copy of an item unmodified since
	// the last recovery point. Readable; serves read misses; the only CK
	// copy allowed to hand out exclusive rights.
	SharedCK1
	// SharedCK2 is the secondary recovery copy of an unmodified item.
	// Readable by the local processor.
	SharedCK2
	// InvCK1 is the primary recovery copy of an item modified since the
	// last recovery point. Not accessible; kept only for rollback.
	InvCK1
	// InvCK2 is the secondary recovery copy of a modified item.
	InvCK2
	// PreCommit1 is the transient-between-checkpoint-phases primary copy
	// of the recovery point being established.
	PreCommit1
	// PreCommit2 is the secondary copy of the recovery point being
	// established.
	PreCommit2

	// NumStates bounds the enum; exported so observers can size
	// fixed-width per-state tallies (obs.StateCounts) without a map.
	NumStates
)

var stateNames = [NumStates]string{
	"Invalid", "Shared", "MasterShared", "Exclusive",
	"SharedCK1", "SharedCK2", "InvCK1", "InvCK2", "PreCommit1", "PreCommit2",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Readable reports whether the local processor may read this copy.
// Inv-CK copies are kept only for recovery and must be treated as misses.
func (s State) Readable() bool {
	switch s {
	case Shared, MasterShared, Exclusive, SharedCK1, SharedCK2:
		return true
	case Invalid, InvCK1, InvCK2, PreCommit1, PreCommit2:
		return false
	}
	panic("proto: Readable of unknown state " + s.String())
}

// Writable reports whether the local processor may write this copy
// without a coherence transaction.
func (s State) Writable() bool { return s == Exclusive }

// Owner reports whether this copy answers remote requests for the item:
// Exclusive and MasterShared in the standard protocol, SharedCK1 (and the
// transient PreCommit1) under the ECP when the item is unmodified since the
// last recovery point.
func (s State) Owner() bool {
	switch s {
	case Exclusive, MasterShared, SharedCK1, PreCommit1:
		return true
	case Invalid, Shared, SharedCK2, InvCK1, InvCK2, PreCommit2:
		return false
	}
	panic("proto: Owner of unknown state " + s.String())
}

// Recovery reports whether the copy belongs to a recovery point (committed
// or being established) and therefore must never be silently dropped.
func (s State) Recovery() bool {
	switch s {
	case SharedCK1, SharedCK2, InvCK1, InvCK2, PreCommit1, PreCommit2:
		return true
	case Invalid, Shared, MasterShared, Exclusive:
		return false
	}
	panic("proto: Recovery of unknown state " + s.String())
}

// CheckpointCommitted reports whether the copy belongs to the last
// committed recovery point (Shared-CK or Inv-CK).
func (s State) CheckpointCommitted() bool {
	switch s {
	case SharedCK1, SharedCK2, InvCK1, InvCK2:
		return true
	case Invalid, Shared, MasterShared, Exclusive, PreCommit1, PreCommit2:
		return false
	}
	panic("proto: CheckpointCommitted of unknown state " + s.String())
}

// Current reports whether the copy belongs to the current computation
// state (as opposed to recovery data): Shared, MasterShared or Exclusive.
// Shared-CK copies are both recovery and current until the item is first
// modified, but they are classified as recovery here.
func (s State) Current() bool {
	switch s {
	case Shared, MasterShared, Exclusive:
		return true
	case Invalid, SharedCK1, SharedCK2, InvCK1, InvCK2, PreCommit1, PreCommit2:
		return false
	}
	panic("proto: Current of unknown state " + s.String())
}

// Replaceable reports whether an AM may silently reuse the slot holding a
// copy in this state to accept an injection or a replacement (paper §4.1:
// "To accept an injection, an AM can only replace one of its Invalid or
// Shared lines").
func (s State) Replaceable() bool { return s == Invalid || s == Shared }

// Modified reports whether the copy represents data modified since the
// last recovery point from the checkpointing algorithm's point of view
// (the create phase replicates Exclusive and Master-Shared copies).
func (s State) Modified() bool { return s == Exclusive || s == MasterShared }

// Primary reports whether this is the "1" copy of a recovery pair.
func (s State) Primary() bool {
	return s == SharedCK1 || s == InvCK1 || s == PreCommit1
}

// Partner returns the state of the other copy of a recovery pair:
// SharedCK1 <-> SharedCK2 and so on. It panics for non-recovery states.
func (s State) Partner() State {
	switch s {
	case SharedCK1:
		return SharedCK2
	case SharedCK2:
		return SharedCK1
	case InvCK1:
		return InvCK2
	case InvCK2:
		return InvCK1
	case PreCommit1:
		return PreCommit2
	case PreCommit2:
		return PreCommit1
	default:
		panic("proto: Partner of non-recovery state " + s.String())
	}
}

// MsgKind enumerates the message types exchanged by node controllers.
type MsgKind uint8

const (
	// MsgReadReq asks the home (then owner) for a read copy.
	MsgReadReq MsgKind = iota
	// MsgWriteReq asks the home (then owner) for an exclusive copy.
	MsgWriteReq
	// MsgReadFwd is a read request forwarded from the home to the owner.
	MsgReadFwd
	// MsgWriteFwd is a write request forwarded from the home to the owner.
	MsgWriteFwd
	// MsgColdGrant tells a first-toucher it may create the item locally
	// (no data travels: the item did not exist anywhere).
	MsgColdGrant
	// MsgDataReply carries one item of data back to a requester.
	MsgDataReply
	// MsgInvalidate tells a node to drop its Shared copy (or downgrade a
	// Shared-CK copy to Inv-CK).
	MsgInvalidate
	// MsgInvalidateAck acknowledges an invalidation.
	MsgInvalidateAck
	// MsgInjectProbe asks a ring neighbour whether it can accept an
	// injected copy (step one of the two-step injection).
	MsgInjectProbe
	// MsgInjectAccept answers a probe positively.
	MsgInjectAccept
	// MsgInjectRefuse answers a probe negatively; the source tries the
	// next node on the logical ring.
	MsgInjectRefuse
	// MsgInjectData carries the injected item (step two).
	MsgInjectData
	// MsgInjectAck confirms reception of injected data (sent 5 cycles
	// after reception in the paper's configuration).
	MsgInjectAck
	// MsgHomeUpdate updates the localisation pointer at the item's home.
	MsgHomeUpdate
	// MsgPageAlloc asks an anchor node to reserve an irreplaceable page
	// frame for a newly touched page.
	MsgPageAlloc
	// MsgPartnerUpdate updates the recovery-pair partner pointer held by
	// the other copy of the pair.
	MsgPartnerUpdate
	// MsgPreCommitUpgrade turns a remote Shared copy into the PreCommit2
	// copy of the recovery point being established (the paper's
	// replication-reuse optimisation: no data transfer).
	MsgPreCommitUpgrade
	// MsgPreCommitUpgradeAck acknowledges the upgrade.
	MsgPreCommitUpgradeAck
	// MsgCkptPrepare starts a recovery-point establishment (coordinator
	// to all nodes).
	MsgCkptPrepare
	// MsgCkptCreateDone reports completion of a node's create phase.
	MsgCkptCreateDone
	// MsgCkptCommit starts the (local) commit phase on all nodes.
	MsgCkptCommit
	// MsgCkptCommitDone reports completion of a node's commit phase.
	MsgCkptCommitDone
	// MsgRecover orders every node to restore the last recovery point.
	MsgRecover
	// MsgRecoverDone reports completion of a node's restoration scan.
	MsgRecoverDone

	numMsgKinds
)

var msgKindNames = [numMsgKinds]string{
	"ReadReq", "WriteReq", "ReadFwd", "WriteFwd", "ColdGrant",
	"DataReply", "Invalidate", "InvalidateAck",
	"InjectProbe", "InjectAccept", "InjectRefuse", "InjectData", "InjectAck",
	"HomeUpdate", "PageAlloc", "PartnerUpdate",
	"PreCommitUpgrade", "PreCommitUpgradeAck",
	"CkptPrepare", "CkptCreateDone", "CkptCommit", "CkptCommitDone",
	"Recover", "RecoverDone",
}

func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Carry reports whether messages of this kind carry a full item of data
// (and therefore occupy data-sized messages on the reply subnetwork).
func (k MsgKind) Carry() bool {
	return k == MsgDataReply || k == MsgInjectData
}

// InjectCause classifies why an injection happened, matching Table 1 of
// the paper plus the two causes that already exist in a standard COMA
// (master replacement) and the one added by recovery-point establishment.
type InjectCause uint8

const (
	// InjectReplaceMaster: a master (Exclusive or Master-Shared) copy was
	// chosen as a replacement victim (standard COMA behaviour).
	InjectReplaceMaster InjectCause = iota
	// InjectReplaceSharedCK: a Shared-CK copy was chosen as a victim.
	InjectReplaceSharedCK
	// InjectReplaceInvCK: an Inv-CK copy was chosen as a victim.
	InjectReplaceInvCK
	// InjectReadInvCK: a read access hit a local Inv-CK copy (injection
	// followed by a read miss).
	InjectReadInvCK
	// InjectWriteInvCK: a write access hit a local Inv-CK copy (injection
	// followed by a write miss).
	InjectWriteInvCK
	// InjectWriteSharedCK: a write access hit a local Shared-CK copy
	// (injection followed by a write miss).
	InjectWriteSharedCK
	// InjectCheckpoint: replication performed by the create phase of a
	// recovery-point establishment.
	InjectCheckpoint
	// InjectReconfigure: re-replication performed after a permanent
	// failure to restore recovery-data persistence.
	InjectReconfigure

	NumInjectCauses // NumInjectCauses is the number of injection causes.
)

var injectCauseNames = [NumInjectCauses]string{
	"replace-master", "replace-shared-ck", "replace-inv-ck",
	"read-inv-ck", "write-inv-ck", "write-shared-ck",
	"checkpoint", "reconfigure",
}

func (c InjectCause) String() string {
	if int(c) < len(injectCauseNames) {
		return injectCauseNames[c]
	}
	return fmt.Sprintf("InjectCause(%d)", uint8(c))
}

// OnRead reports whether the cause is an injection triggered by a read
// access (Fig. 6 and Fig. 11 of the paper split injections into read- and
// write-triggered).
func (c InjectCause) OnRead() bool { return c == InjectReadInvCK }

// OnWrite reports whether the cause is an injection triggered by a write
// access.
func (c InjectCause) OnWrite() bool {
	return c == InjectWriteInvCK || c == InjectWriteSharedCK
}

// TxnID identifies one protocol transaction (a read or write miss, an
// injection, or a whole checkpoint/recovery round) across every message
// and observability event it touches. IDs are minted at the transaction's
// origin from a per-origin monotonic counter, so they are deterministic
// for a given seed: same run, same IDs.
//
// Layout: bits 40+ hold the origin (NodeID+1, so the coordinator's None
// origin encodes as 0), bits 0..39 the per-origin sequence number, which
// must start at 1. The zero TxnID means "no transaction" and is never
// minted.
type TxnID int64

// NoTxn is the zero TxnID: the message or event belongs to no traced
// transaction.
const NoTxn TxnID = 0

// txnSeqBits is the width of the per-origin sequence field.
const txnSeqBits = 40

// MakeTxnID mints the transaction ID for the seq-th transaction
// originated by node origin (None for the checkpoint coordinator).
// seq must be >= 1.
func MakeTxnID(origin NodeID, seq int64) TxnID {
	if seq <= 0 {
		panic(fmt.Sprintf("proto: MakeTxnID seq %d (must be >= 1)", seq))
	}
	return TxnID((int64(origin)+1)<<txnSeqBits | seq)
}

// Valid reports whether t names an actual transaction.
func (t TxnID) Valid() bool { return t != NoTxn }

// Origin returns the node that minted t (None for coordinator rounds).
func (t TxnID) Origin() NodeID { return NodeID(int64(t)>>txnSeqBits) - 1 }

// Seq returns t's per-origin sequence number.
func (t TxnID) Seq() int64 { return int64(t) & (1<<txnSeqBits - 1) }

func (t TxnID) String() string {
	if t == NoTxn {
		return "txn:none"
	}
	return fmt.Sprintf("txn:%v#%d", t.Origin(), t.Seq())
}

// Transition is one edge of the Extended Coherence Protocol's state
// machine as implemented by the engines: a copy in state From moves to
// state To through the protocol action described by Via.
type Transition struct {
	From, To State
	Via      string
}

// RecoveryEdge reports whether the edge touches a recovery state on
// either end — the edges the paper adds over standard COMA-F, and the
// ones a coverage report most wants exercised.
func (tr Transition) RecoveryEdge() bool {
	return tr.From.Recovery() || tr.To.Recovery()
}

// ECPTransitions returns the full per-copy transition table of the
// Extended Coherence Protocol (standard COMA-F edges plus the recovery
// edges of paper §4), deduplicated on (From, To). This is the reference
// matrix `comatrace coverage` diffs an observed trace against; keep it in
// sync with the coherence and snoop engines.
func ECPTransitions() []Transition {
	t := []Transition{
		// Standard COMA-F access edges.
		{Invalid, Shared, "read fill (cold, remote or injected)"},
		{Invalid, Exclusive, "write fill"},
		{Shared, Exclusive, "write upgrade after invalidating sharers"},
		{MasterShared, Exclusive, "in-place write upgrade by the master"},
		{Exclusive, MasterShared, "owner downgrade serving a read miss"},
		{Exclusive, Invalid, "ownership transfer / replacement / rollback"},
		{MasterShared, Invalid, "ownership transfer / replacement / rollback"},
		{Shared, Invalid, "invalidation / silent replacement / rollback"},
		// Write to an item unmodified since the recovery point: the
		// committed pair is preserved as Inv-CK (paper Table 1).
		{SharedCK1, InvCK1, "write to unmodified item (primary demoted)"},
		{SharedCK2, InvCK2, "write to unmodified item (partner demoted)"},
		// Recovery-point establishment.
		{Exclusive, PreCommit1, "create phase: modified item enters pre-commit"},
		{MasterShared, PreCommit1, "create phase: modified item enters pre-commit"},
		{Shared, PreCommit2, "create phase: replication reuse of a Shared copy"},
		{PreCommit1, SharedCK1, "commit scan"},
		{PreCommit2, SharedCK2, "commit scan"},
		{InvCK1, Invalid, "commit scan discard / injection moves the copy"},
		{InvCK2, Invalid, "commit scan discard / injection moves the copy"},
		// Rollback and reconfiguration.
		{InvCK1, SharedCK1, "recovery scan restores the recovery point"},
		{InvCK2, SharedCK2, "recovery scan restores the recovery point"},
		{PreCommit1, Invalid, "recovery scan aborts an uncommitted point"},
		{PreCommit2, Invalid, "recovery scan aborts an uncommitted point"},
		{SharedCK2, SharedCK1, "reconfiguration promotes the surviving copy"},
		{SharedCK1, Invalid, "injection moves the copy elsewhere"},
		{SharedCK2, Invalid, "injection moves the copy elsewhere"},
	}
	// Injection installs: the accepting AM overwrites an Invalid or Shared
	// slot with the migrating copy's state (paper §4.1 allows only those
	// two victims). Exclusive/Shared targets are covered above; list the
	// remaining install edges explicitly.
	for _, to := range []State{MasterShared, SharedCK1, SharedCK2, InvCK1, InvCK2, PreCommit2} {
		t = append(t,
			Transition{Invalid, to, "injection install"},
			Transition{Shared, to, "injection install overwriting a Shared victim"},
		)
	}
	return t
}

package proto

import (
	"strings"
	"testing"
)

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		st                                      State
		readable, writable, owner, recovery, ck bool
	}{
		{Invalid, false, false, false, false, false},
		{Shared, true, false, false, false, false},
		{MasterShared, true, false, true, false, false},
		{Exclusive, true, true, true, false, false},
		{SharedCK1, true, false, true, true, true},
		{SharedCK2, true, false, false, true, true},
		{InvCK1, false, false, false, true, true},
		{InvCK2, false, false, false, true, true},
		{PreCommit1, false, false, true, true, false},
		{PreCommit2, false, false, false, true, false},
	}
	for _, c := range cases {
		if c.st.Readable() != c.readable {
			t.Errorf("%v.Readable() = %v", c.st, c.st.Readable())
		}
		if c.st.Writable() != c.writable {
			t.Errorf("%v.Writable() = %v", c.st, c.st.Writable())
		}
		if c.st.Owner() != c.owner {
			t.Errorf("%v.Owner() = %v", c.st, c.st.Owner())
		}
		if c.st.Recovery() != c.recovery {
			t.Errorf("%v.Recovery() = %v", c.st, c.st.Recovery())
		}
		if c.st.CheckpointCommitted() != c.ck {
			t.Errorf("%v.CheckpointCommitted() = %v", c.st, c.st.CheckpointCommitted())
		}
	}
}

func TestReplaceableIsExactlyInvalidAndShared(t *testing.T) {
	for st := Invalid; st < NumStates; st++ {
		want := st == Invalid || st == Shared
		if st.Replaceable() != want {
			t.Errorf("%v.Replaceable() = %v", st, st.Replaceable())
		}
	}
}

func TestModifiedIsExactlyMasters(t *testing.T) {
	for st := Invalid; st < NumStates; st++ {
		want := st == Exclusive || st == MasterShared
		if st.Modified() != want {
			t.Errorf("%v.Modified() = %v", st, st.Modified())
		}
	}
}

func TestPartnerIsInvolutive(t *testing.T) {
	pairs := []State{SharedCK1, SharedCK2, InvCK1, InvCK2, PreCommit1, PreCommit2}
	for _, st := range pairs {
		if st.Partner().Partner() != st {
			t.Errorf("%v.Partner().Partner() = %v", st, st.Partner().Partner())
		}
		if st.Partner() == st {
			t.Errorf("%v pairs with itself", st)
		}
		if st.Primary() == st.Partner().Primary() {
			t.Errorf("%v and partner have the same primacy", st)
		}
	}
}

func TestPartnerPanicsForNonRecovery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partner of Shared did not panic")
		}
	}()
	Shared.Partner()
}

func TestStateStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for st := Invalid; st < NumStates; st++ {
		s := st.String()
		if s == "" || strings.HasPrefix(s, "State(") {
			t.Errorf("state %d has no name", st)
		}
		if seen[s] {
			t.Errorf("duplicate state name %q", s)
		}
		seen[s] = true
	}
}

func TestMsgKindStringsAndCarry(t *testing.T) {
	for k := MsgKind(0); k < numMsgKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "MsgKind(") {
			t.Errorf("message kind %d has no name", k)
		}
	}
	if !MsgDataReply.Carry() || !MsgInjectData.Carry() {
		t.Error("data-bearing kinds not marked Carry")
	}
	if MsgReadReq.Carry() || MsgInvalidate.Carry() || MsgColdGrant.Carry() {
		t.Error("control kinds marked Carry")
	}
}

func TestInjectCauseClassification(t *testing.T) {
	if !InjectReadInvCK.OnRead() || InjectReadInvCK.OnWrite() {
		t.Error("read cause misclassified")
	}
	for _, c := range []InjectCause{InjectWriteInvCK, InjectWriteSharedCK} {
		if !c.OnWrite() || c.OnRead() {
			t.Errorf("%v misclassified", c)
		}
	}
	for _, c := range []InjectCause{InjectReplaceMaster, InjectCheckpoint, InjectReconfigure} {
		if c.OnRead() || c.OnWrite() {
			t.Errorf("%v misclassified as access-triggered", c)
		}
	}
	for c := InjectCause(0); c < NumInjectCauses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "InjectCause(") {
			t.Errorf("cause %d has no name", c)
		}
	}
}

func TestNodeIDBasics(t *testing.T) {
	if None.Valid() {
		t.Error("None is valid")
	}
	if !NodeID(0).Valid() || !NodeID(55).Valid() {
		t.Error("real nodes invalid")
	}
	if None.String() != "none" || NodeID(3).String() != "n3" {
		t.Errorf("strings: %q %q", None.String(), NodeID(3).String())
	}
}

package coherence

import (
	"sort"

	"coma/internal/am"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
)

// CreatePhase runs one node's create phase of a recovery-point
// establishment (Fig. 2 of the paper): every item modified since the last
// recovery point (Exclusive or MasterShared) becomes the PreCommit1 copy,
// and a second PreCommit2 copy is created — by upgrading an existing
// Shared replica when possible (no data transfer), otherwise by injecting
// a copy into another AM. Identification of the next modified item
// overlaps the previous injection (the paper's modified-line tree), so
// only the replication work costs time. Called from the node's processor
// process while the machine is quiesced.
func (e *Engine) CreatePhase(p *sim.Process, n proto.NodeID) {
	start := p.Now()
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: start, Kind: obs.KPhaseBegin, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseCreate)})
	}
	c := e.counters[n]
	// The work list must be private to this call: every node's create
	// phase runs concurrently during an establishment.
	modified := e.ams[n].ModifiedItems(make([]proto.ItemID, 0, 256))
	for _, item := range modified {
		e.lockItem(p, item)
		st := e.ams[n].State(item)
		switch st {
		case proto.Exclusive:
			e.ams[n].SetState(item, proto.PreCommit1)
			e.cacheOps.DowngradeItem(n, item)
			target := e.inject(p, n, item, false, proto.InjectCheckpoint, e.roundTxn)
			e.ams[n].SetPartner(item, target)
			c.CkptItemsReplicated++

		case proto.MasterShared:
			e.ams[n].SetState(item, proto.PreCommit1)
			e.cacheOps.DowngradeItem(n, item)
			entry := e.dir.Lookup(item)
			sharer := proto.None
			if !e.opts.NoReplicationReuse && entry != nil {
				sharer = entry.Sharers.First()
			}
			if sharer != proto.None {
				// Replication reuse: upgrade an existing Shared copy.
				entry.Sharers.Remove(sharer)
				fut := sim.NewFuture[mesh.Message]()
				e.net.Send(mesh.Message{
					Kind:  proto.MsgPreCommitUpgrade,
					Src:   n,
					Dst:   sharer,
					Item:  item,
					Token: fut,
					Txn:   e.roundTxn,
				})
				fut.Await(p)
				e.ams[n].SetPartner(item, sharer)
				c.CkptItemsReused++
			} else {
				target := e.inject(p, n, item, false, proto.InjectCheckpoint, e.roundTxn)
				e.ams[n].SetPartner(item, target)
				c.CkptItemsReplicated++
			}

		case proto.Invalid, proto.Shared, proto.SharedCK1, proto.SharedCK2,
			proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
			// The item left the modified set while we were busy with a
			// previous one (impossible while quiesced, but harmless).
		}
		e.unlockItem(item)
	}
	c.CkptCreateCycles += p.Now() - start
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KPhaseEnd, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseCreate), B: p.Now() - start})
	}
}

// CommitScanCost returns the cycles one node's commit-phase scan takes:
// one cycle to test each allocated frame plus one cycle per item in it,
// divided across the node's independent AM controllers (§4.2.2).
func (e *Engine) CommitScanCost(n proto.NodeID) int64 {
	frames := int64(e.ams[n].AllocatedFrames())
	perFrame := e.arch.CommitPageTest + int64(e.arch.ItemsPerPage())*e.arch.CommitItemTest
	return frames * perFrame / int64(e.arch.AMControllers)
}

// CommitScan runs one node's (purely local) commit phase: PreCommit
// copies become the new Shared-CK recovery point, Inv-CK copies of the
// previous recovery point are discarded.
func (e *Engine) CommitScan(p *sim.Process, n proto.NodeID) {
	start := p.Now()
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: start, Kind: obs.KPhaseBegin, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseCommit)})
	}
	p.Wait(e.CommitScanCost(n))
	e.ams[n].ForEachAllocated(func(item proto.ItemID, s *slotRef) {
		switch s.State {
		case proto.PreCommit1:
			s.State = proto.SharedCK1
		case proto.PreCommit2:
			s.State = proto.SharedCK2
		case proto.InvCK1, proto.InvCK2:
			s.State = proto.Invalid
			s.Partner = proto.None
		case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
			proto.SharedCK1, proto.SharedCK2:
			// Unmodified current copies and the surviving recovery point
			// pass through the commit scan untouched.
		}
	})
	e.counters[n].CkptCommitCycles += p.Now() - start
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KPhaseEnd, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseCommit), B: p.Now() - start})
	}
}

// RecoveryScan runs one node's rollback scan (§3.4): all current and
// pre-commit copies are invalidated (Shared copies cannot be told apart
// from recovery-consistent data, so they go too), and Inv-CK copies are
// restored to Shared-CK. The processor cache is invalidated by the node
// layer alongside this call.
func (e *Engine) RecoveryScan(p *sim.Process, n proto.NodeID) {
	start := p.Now()
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: start, Kind: obs.KPhaseBegin, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseRecoveryScan)})
	}
	p.Wait(e.CommitScanCost(n)) // same scan structure as the commit phase
	e.ams[n].ForEachAllocated(func(item proto.ItemID, s *slotRef) {
		switch s.State {
		case proto.Shared, proto.Exclusive, proto.MasterShared,
			proto.PreCommit1, proto.PreCommit2:
			s.State = proto.Invalid
			s.Partner = proto.None
		case proto.InvCK1:
			s.State = proto.SharedCK1
		case proto.InvCK2:
			s.State = proto.SharedCK2
		case proto.Invalid, proto.SharedCK1, proto.SharedCK2:
			// Free slots and the unmodified recovery point are already in
			// their rolled-back state.
		}
	})
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KPhaseEnd, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseRecoveryScan), B: p.Now() - start})
	}
}

// slotRef aliases the AM's slot type for the scan callbacks.
type slotRef = am.Slot

// RebuildDirectory reconstructs every localisation pointer and sharing
// set after a rollback: the Shared-CK1 holder becomes the owner; items
// with only a surviving CK2 copy are left ownerless for Reconfigure to
// repair; items with no recovery copy (created after the last recovery
// point, or lost to an unrecoverable multiple failure) are dropped. It
// returns the dropped items so the machine can distinguish legitimate
// rollback of young items from data loss.
func (e *Engine) RebuildDirectory() []proto.ItemID {
	ck1 := make(map[proto.ItemID]proto.NodeID)
	ck2 := make(map[proto.ItemID]proto.NodeID)
	for _, n := range e.dir.AliveNodes() {
		e.ams[n].ForEachAllocated(func(item proto.ItemID, s *slotRef) {
			switch s.State {
			case proto.SharedCK1:
				ck1[item] = n
			case proto.SharedCK2:
				ck2[item] = n
			case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
				proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
				// Only the committed Shared-CK pairs locate survivors; the
				// recovery scan already cleared everything else.
			}
		})
	}
	var dropped []proto.ItemID
	e.dir.ForEach(func(item proto.ItemID, entry *dirEntry) {
		entry.Sharers.Clear()
		if o, ok := ck1[item]; ok {
			entry.Owner = o
			return
		}
		if _, ok := ck2[item]; ok {
			entry.Owner = proto.None // Reconfigure promotes the CK2 copy
			return
		}
		dropped = append(dropped, item)
	})
	sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
	for _, item := range dropped {
		e.dir.Drop(item)
	}
	return dropped
}

// dirEntry aliases the directory entry type for the rebuild callback.
type dirEntry = directory.Entry

// ReconfigureNode restores recovery-data persistence on one surviving
// node after failures (§3.4): every local Shared-CK copy whose partner
// died is re-paired — a surviving CK2 first promotes itself to CK1 and
// takes ownership, then a fresh secondary copy is injected into a safe
// node. dead reports whether a node was lost (its AM contents are gone).
// It returns the number of copies re-created.
func (e *Engine) ReconfigureNode(p *sim.Process, n proto.NodeID, dead func(proto.NodeID) bool) int {
	start := p.Now()
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: start, Kind: obs.KPhaseBegin, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseReconfigure)})
	}
	type work struct {
		item    proto.ItemID
		promote bool
	}
	var todo []work
	e.ams[n].ForEachAllocated(func(item proto.ItemID, s *slotRef) {
		switch s.State {
		case proto.SharedCK1:
			if dead(s.Partner) {
				todo = append(todo, work{item, false})
			}
		case proto.SharedCK2:
			if dead(s.Partner) {
				todo = append(todo, work{item, true})
			}
		case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
			proto.InvCK1, proto.InvCK2, proto.PreCommit1, proto.PreCommit2:
			// Reconfiguration runs right after a rollback: only committed
			// Shared-CK copies can need re-pairing.
		}
	})
	for _, w := range todo {
		e.lockItem(p, w.item)
		if w.promote {
			//coma:transition SharedCK2 -> SharedCK1
			e.ams[n].SetState(w.item, proto.SharedCK1)
			entry := e.dir.Ensure(w.item)
			entry.Owner = n
			if h := e.dir.Home(w.item); h != n {
				e.net.Send(mesh.Message{Kind: proto.MsgHomeUpdate, Src: n, Dst: h, Item: w.item, Txn: e.roundTxn})
			}
		}
		target := e.inject(p, n, w.item, false, proto.InjectReconfigure, e.roundTxn)
		e.ams[n].SetPartner(w.item, target)
		e.unlockItem(w.item)
	}
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KReconfig, Node: n,
			Item: proto.NoItem, A: int64(len(todo))})
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KPhaseEnd, Node: n,
			Item: proto.NoItem, A: int64(obs.PhaseReconfigure), B: p.Now() - start})
	}
	return len(todo)
}

// RemapAnchors replaces dead anchor nodes of every touched page with live
// ring successors and reserves their irreplaceable frames. Called once
// after a permanent failure, from the recovery manager's process.
func (e *Engine) RemapAnchors(p *sim.Process, dead func(proto.NodeID) bool) {
	pages := make([]proto.PageID, 0, len(e.pageAnchors))
	for page := range e.pageAnchors {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, page := range pages {
		anchors := e.pageAnchors[page]
		present := make(map[proto.NodeID]bool, len(anchors))
		for _, a := range anchors {
			if !dead(a) {
				present[a] = true
			}
		}
		changed := false
		for i, a := range anchors {
			if !dead(a) {
				continue
			}
			// Walk the ring from the dead anchor to a live node not
			// already anchoring this page.
			cand := e.dir.NextAlive(a)
			for present[cand] && len(present) < e.dir.AliveCount() {
				cand = e.dir.NextAlive(cand)
			}
			anchors[i] = cand
			present[cand] = true
			changed = true
			e.allocAnchorFrame(p, cand, page, e.roundTxn)
		}
		if changed {
			e.pageAnchors[page] = anchors
		}
	}
}

// RestoreAnchors re-reserves the anchor frames a transiently failed node
// lost when its AM was cleared, so the injection-termination guarantee
// holds again once it rejoins.
func (e *Engine) RestoreAnchors(p *sim.Process, n proto.NodeID) {
	pages := make([]proto.PageID, 0)
	for page, anchors := range e.pageAnchors {
		for _, a := range anchors {
			if a == n {
				pages = append(pages, page)
				break
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, page := range pages {
		e.allocAnchorFrame(p, n, page, e.roundTxn)
	}
}

// CheckpointedItems counts items whose last committed recovery point is
// present (pairs of Shared-CK or Inv-CK copies), for invariant checks.
func (e *Engine) CheckpointedItems() map[proto.ItemID][]proto.NodeID {
	out := make(map[proto.ItemID][]proto.NodeID)
	for _, n := range e.dir.AliveNodes() {
		e.ams[n].ForEachAllocated(func(item proto.ItemID, s *slotRef) {
			if s.State.CheckpointCommitted() {
				out[item] = append(out[item], n)
			}
		})
	}
	return out
}

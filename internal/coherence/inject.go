package coherence

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/mesh"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
)

// inject moves (replace=true) or copies (replace=false) the node's copy of
// an item into another attraction memory, using the paper's two-step
// injection along the logical ring: probe a neighbour for a victim slot,
// then transfer the item; the receiver acknowledges five cycles after
// reception. The caller must hold the item lock. It returns the node that
// accepted the copy.
//
// replace=false is the create-phase replication ("similar to item
// injections, the only difference being that the injected item copy is
// not replaced in the memory of the node performing the injection").
//
// par is the transaction that forced the injection (the access or
// coordinator round); the injection itself is traced as a child
// transaction parented to it.
func (e *Engine) inject(p *sim.Process, n proto.NodeID, item proto.ItemID,
	replace bool, cause proto.InjectCause, par proto.TxnID) proto.NodeID {

	src := e.ams[n].Slot(item)
	if src.State.Replaceable() {
		panic(fmt.Sprintf("coherence: injecting item %d from %v in replaceable state %v",
			item, n, src.State))
	}
	injState := src.State
	if !replace {
		// Replication for a recovery point: the new copy is the
		// secondary pre-commit copy.
		injState = proto.PreCommit2
		if cause == proto.InjectReconfigure {
			injState = proto.SharedCK2
		}
	}

	c := e.counters[n]
	c.Injections[cause]++
	if cause == proto.InjectCheckpoint || cause == proto.InjectReconfigure {
		c.CkptBytesMoved += int64(e.arch.ItemSize)
	}

	start := p.Now()
	var txn proto.TxnID
	if e.obs != nil {
		txn = e.mintTxn(n)
		e.obs.Emit(obs.Event{Time: start, Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, Par: par, A: obs.TxnInject})
	}

	// Ring walk: first lap accepts only free slots; second lap also
	// allows dropping a clean victim frame at the target.
	alive := e.dir.AliveCount()
	target := proto.None
	hops := int64(0)
	t := e.dir.NextAlive(n)
	for step := 0; step < 2*alive; step++ {
		if t == n {
			t = e.dir.NextAlive(t)
			continue
		}
		lap := int64(0)
		if step >= alive {
			lap = 1
		}
		c.InjectProbes++
		if e.obs != nil {
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KInjectProbe, Node: n, Item: item,
				Cause: cause, Txn: txn, A: int64(t), B: lap})
		}
		fut := sim.NewFuture[mesh.Message]()
		e.net.Send(mesh.Message{
			Kind:      proto.MsgInjectProbe,
			Src:       n,
			Dst:       t,
			Item:      item,
			State:     injState,
			Value:     src.Value,
			Arg:       lap,
			Fresh:     !replace,
			Requester: n,
			Token:     fut,
			Txn:       txn,
		})
		reply := fut.Await(p)
		if reply.Kind == proto.MsgInjectAccept {
			target = t
			break
		}
		c.InjectHops++
		hops++
		t = e.dir.NextAlive(t)
	}
	if target == proto.None {
		panic(fmt.Sprintf("coherence: injection of item %d from %v found no room after two laps",
			item, n))
	}

	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KInjectAccept, Node: n, Item: item,
			Cause: cause, Txn: txn, A: int64(target), B: hops})
	}

	// Step two: the data transfer and its acknowledgement. The probe
	// handler already performed the state installation at the target
	// (under our item lock); these messages carry the timing.
	ackFut := sim.NewFuture[mesh.Message]()
	e.net.Send(mesh.Message{
		Kind:      proto.MsgInjectData,
		Src:       n,
		Dst:       target,
		Item:      item,
		State:     injState,
		Value:     src.Value,
		Requester: n,
		Token:     ackFut,
		Txn:       txn,
	})
	ackFut.Await(p)

	// Recovery-pair partner bookkeeping.
	if injState.Recovery() {
		if replace {
			// The copy moved: its partner must learn the new location.
			if src.Partner != proto.None && src.Partner != target {
				e.ams[src.Partner].SetPartner(item, target)
				e.net.Send(mesh.Message{Kind: proto.MsgPartnerUpdate, Src: n, Dst: src.Partner, Item: item, Txn: txn})
			}
		} else {
			// A fresh secondary copy: pair it with the source.
			e.ams[n].SetPartner(item, target)
		}
	}

	// Ownership follows owner-state copies.
	if injState.Owner() && replace {
		entry := e.dir.Ensure(item)
		entry.Owner = target
		if h := e.dir.Home(item); h != n && h != target {
			e.net.Send(mesh.Message{Kind: proto.MsgHomeUpdate, Src: n, Dst: h, Item: item, Txn: txn})
		}
	}

	if replace {
		e.ams[n].SetState(item, proto.Invalid)
		e.cacheOps.InvalidateItem(n, item)
	}
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
			Txn: txn, A: int64(target), B: p.Now() - start})
	}
	return target
}

// handleInjectProbe decides whether this node can accept an injected copy
// and, if so, installs it immediately (the initiator holds the item lock,
// so the early installation is invisible to other transactions; the data
// message that follows carries the transfer timing).
func (e *Engine) handleInjectProbe(p *sim.Process, n proto.NodeID, m mesh.Message) {
	e.useController(p, n, e.arch.DirLookup)
	kind := proto.MsgInjectRefuse
	if e.tryAcceptInjection(p, n, m) {
		kind = proto.MsgInjectAccept
	}
	e.net.Send(mesh.Message{
		Kind:  kind,
		Src:   n,
		Dst:   m.Requester,
		Item:  m.Item,
		Reply: m.Token,
		Txn:   m.Txn,
	})
}

// tryAcceptInjection applies the paper's acceptance rule: a node may
// replace one of its Invalid or Shared slots for the item. A frame is
// used if present; otherwise a free way is allocated; on the second ring
// lap a fully replaceable victim frame may be dropped to make room.
func (e *Engine) tryAcceptInjection(p *sim.Process, n proto.NodeID, m mesh.Message) bool {
	item := m.Item
	page := e.arch.PageOf(item)
	amn := e.ams[n]
	switch {
	case amn.HasFrame(page):
		if amn.Evicting(page) {
			return false // the frame is being replaced right now
		}
		if !amn.State(item).Replaceable() {
			return false // the slot holds a master or recovery copy
		}
	case amn.FreeWay(page):
		amn.AllocFrame(page, false, p.Now())
	case m.Arg >= 1: // second lap: drop a clean, idle frame if one exists
		victim := proto.NoPage
		for _, cand := range amn.VictimPages(page) {
			if len(amn.PinnedItems(cand)) == 0 && !e.installPending(n, cand) {
				victim = cand
				break
			}
		}
		if victim == proto.NoPage {
			return false
		}
		e.dropCleanFrame(n, victim)
		amn.AllocFrame(page, false, p.Now())
	default:
		return false
	}

	// If we held a Shared copy it is being overwritten: leave the
	// sharing set.
	if amn.State(item) == proto.Shared {
		if entry := e.dir.Lookup(item); entry != nil {
			entry.Sharers.Remove(n)
		}
		e.cacheOps.InvalidateItem(n, item)
	}

	partner := proto.None
	if m.State.Recovery() {
		if m.Fresh {
			partner = m.Requester // a fresh secondary pairs with the source
		} else {
			partner = e.ams[m.Requester].Slot(item).Partner // a moving copy keeps its partner
		}
	}
	// The victim slot passed the Replaceable test (or sits in a fresh
	// frame); the incoming state is whatever a mover or creator sends.
	//coma:transition Invalid|Shared -> Exclusive|MasterShared|SharedCK1|SharedCK2|InvCK1|InvCK2|PreCommit2
	amn.Set(item, am.Slot{State: m.State, Value: m.Value, Partner: partner})
	return true
}

// dropCleanFrame silently drops a frame whose items are all Invalid or
// Shared, maintaining sharer sets.
func (e *Engine) dropCleanFrame(n proto.NodeID, page proto.PageID) {
	first := e.arch.FirstItem(page)
	for i := 0; i < e.arch.ItemsPerPage(); i++ {
		it := first + proto.ItemID(i)
		if e.ams[n].State(it) == proto.Shared {
			if entry := e.dir.Lookup(it); entry != nil {
				entry.Sharers.Remove(n)
			}
			e.ams[n].SetState(it, proto.Invalid)
			e.cacheOps.InvalidateItem(n, it)
		}
	}
	e.ams[n].DropFrame(page)
}

// handleInjectData models the receive-side timing of the injection data
// transfer: the acknowledgement goes out InjectAckDelay cycles after the
// item arrives, and the copy into memory happens after the ack (paper
// §4.2.2). The state was installed at probe time.
func (e *Engine) handleInjectData(p *sim.Process, n proto.NodeID, m mesh.Message) {
	p.Wait(e.arch.InjectAckDelay)
	e.net.Send(mesh.Message{
		Kind:  proto.MsgInjectAck,
		Src:   n,
		Dst:   m.Requester,
		Item:  m.Item,
		Reply: m.Token,
		Txn:   m.Txn,
	})
	e.useController(p, n, e.arch.MemTransfer)
}

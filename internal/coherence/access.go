package coherence

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/mesh"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
)

// ReadItem satisfies a processor read that missed the cache: it ensures a
// readable copy exists in the node's attraction memory (running the full
// coherence transaction if not) and returns the item's value. Called from
// the node's processor process; blocks for all simulated latencies.
func (e *Engine) ReadItem(p *sim.Process, n proto.NodeID, item proto.ItemID) uint64 {
	c := e.counters[n]
	c.AMReads++
	start := p.Now()

	// The local lookup pass costs a full AM access whether it hits or
	// detects the miss (Table 2 calibration, DESIGN.md §4.7). The slot
	// must be examined only *after* the access completes: a remote write
	// transaction may finish during those cycles, and serving the
	// pre-access copy would deliver a value older than the completed
	// write.
	e.useController(p, n, e.arch.AMAccess)
	if slot := e.ams[n].Slot(item); e.readable(slot.State) {
		c.FillsLocal++
		if slot.State == proto.SharedCK1 || slot.State == proto.SharedCK2 {
			c.SharedCKReads++
		}
		e.ams[n].Touch(e.arch.PageOf(item), p.Now())
		e.verifyRead(n, item, slot.Value)
		return slot.Value
	}
	c.AMReadMisses++

	lockStart := p.Now()
	e.lockItem(p, item)
	defer e.unlockItem(item)

	// Re-check: a transaction we queued behind may have installed a copy.
	if slot := e.ams[n].Slot(item); e.readable(slot.State) {
		e.useController(p, n, e.arch.AMAccess)
		c.FillsLocal++
		if e.obs != nil {
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KReadFill, Node: n, Item: item,
				A: obs.FillLocal, B: p.Now() - start})
		}
		e.verifyRead(n, item, slot.Value)
		return slot.Value
	}

	// A true miss: this is one traced transaction from here to the fill.
	var txn proto.TxnID
	if e.obs != nil {
		txn = e.mintTxn(n)
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, A: obs.TxnRead, B: p.Now() - lockStart})
	}

	// Table 1: a read access to a local Inv-CK copy first injects the
	// recovery copy to free the slot, then proceeds as a miss.
	if st := e.ams[n].State(item); st == proto.InvCK1 || st == proto.InvCK2 {
		e.inject(p, n, item, true, proto.InjectReadInvCK, txn)
	} else if st == proto.SharedCK1 || st == proto.SharedCK2 {
		// Only reachable under the NoSharedCKReads ablation: the copy
		// is present but the processor may not read it; treat like the
		// Inv-CK case.
		e.inject(p, n, item, true, proto.InjectReadInvCK, txn)
	}

	e.ensureFrame(p, n, item, txn)

	page := e.arch.PageOf(item)
	e.beginInstall(n, page)
	defer e.endInstall(n, page)

	m := e.fetch(p, n, item, proto.MsgReadReq, txn)
	e.useController(p, n, e.arch.AMAccess) // install + cache fill
	var value uint64
	src := obs.FillRemote
	switch m.Kind {
	case proto.MsgColdGrant:
		// Initialised-background memory: a read-only zero copy.
		c.FillsCold++
		src = obs.FillCold
		//coma:transition Invalid -> Shared
		e.ams[n].Set(item, am.Slot{State: proto.Shared, Value: 0, Partner: proto.None})
	case proto.MsgDataReply:
		c.FillsRemote++
		value = m.Value
		//coma:transition Invalid -> Shared
		e.ams[n].Set(item, am.Slot{State: proto.Shared, Value: value, Partner: proto.None})
	default:
		panic(fmt.Sprintf("coherence: read reply %v", m))
	}
	if e.obs != nil {
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KReadFill, Node: n, Item: item,
			A: src, B: p.Now() - start})
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
			Txn: txn, A: src, B: p.Now() - start})
	}
	e.verifyRead(n, item, value)
	return value
}

// WriteItem satisfies a processor write that could not complete in the
// cache: it obtains an Exclusive copy in the node's attraction memory
// (invalidating all other current copies, downgrading Shared-CK pairs to
// Inv-CK under the ECP) and applies the new value.
func (e *Engine) WriteItem(p *sim.Process, n proto.NodeID, item proto.ItemID, value uint64) {
	c := e.counters[n]
	c.AMWrites++
	start := p.Now()

	// Lookup pass first, state examined after it completes (same
	// write-completion race as in ReadItem: exclusivity observed before
	// the access cycles could be revoked during them).
	e.useController(p, n, e.arch.AMAccess)
	if e.ams[n].State(item) == proto.Exclusive {
		e.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
		e.ams[n].Touch(e.arch.PageOf(item), p.Now())
		return
	}
	c.AMWriteMisses++

	lockStart := p.Now()
	e.lockItem(p, item)
	defer e.unlockItem(item)

	if e.ams[n].State(item) == proto.Exclusive { // granted while queued
		e.useController(p, n, e.arch.AMAccess)
		// Not derivable statically: the first Exclusive test failed, but
		// the state changed while this writer queued on the item lock.
		//coma:transition Exclusive -> Exclusive
		e.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
		if e.obs != nil {
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KWriteFill, Node: n, Item: item,
				A: obs.FillLocal, B: p.Now() - start})
		}
		return
	}

	var txn proto.TxnID
	if e.obs != nil {
		txn = e.mintTxn(n)
		e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnBegin, Node: n, Item: item,
			Txn: txn, A: obs.TxnWrite, B: p.Now() - lockStart})
	}

	// Table 1: writes to local recovery copies first inject them.
	switch st := e.ams[n].State(item); st {
	case proto.InvCK1, proto.InvCK2:
		e.inject(p, n, item, true, proto.InjectWriteInvCK, txn)
	case proto.SharedCK1, proto.SharedCK2:
		e.inject(p, n, item, true, proto.InjectWriteSharedCK, txn)
	case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive:
		// Current-state copies go through the miss path below unchanged.
	case proto.PreCommit1, proto.PreCommit2:
		// Unreachable: processors are quiesced while pre-commit copies
		// exist (the establishment runs the machine single-phase).
		panic(fmt.Sprintf("coherence: write on node %v hit item %d in transient %v", n, item, st))
	}

	e.ensureFrame(p, n, item, txn)

	switch st := e.ams[n].State(item); st {
	case proto.MasterShared:
		// Local master: invalidate the sharers, then upgrade in place.
		e.invalidateSharers(p, n, item, txn)
		e.useController(p, n, e.arch.AMAccess)
		e.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
		if e.obs != nil {
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KWriteFill, Node: n, Item: item,
				A: obs.FillLocal, B: p.Now() - start})
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
				Txn: txn, A: obs.FillLocal, B: p.Now() - start})
		}

	case proto.Shared, proto.Invalid:
		page := e.arch.PageOf(item)
		e.beginInstall(n, page)
		defer e.endInstall(n, page)
		ackFut := e.registerAcks(item)
		m := e.fetch(p, n, item, proto.MsgWriteReq, txn)
		switch m.Kind {
		case proto.MsgColdGrant, proto.MsgDataReply:
			e.expectAcks(item, int(m.Arg))
		default:
			panic(fmt.Sprintf("coherence: write reply %v", m))
		}
		ackFut.Await(p)
		e.finishAcks(item)
		e.useController(p, n, e.arch.AMAccess)
		src := obs.FillRemote
		if m.Kind == proto.MsgColdGrant {
			e.counters[n].FillsCold++
			src = obs.FillCold
		}
		e.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
		if e.obs != nil {
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KWriteFill, Node: n, Item: item,
				A: src, B: p.Now() - start})
			e.obs.Emit(obs.Event{Time: p.Now(), Kind: obs.KTxnEnd, Node: n, Item: item,
				Txn: txn, A: src, B: p.Now() - start})
		}

	default:
		panic(fmt.Sprintf("coherence: write on node %v found item %d in %v", n, item, st))
	}
}

// WriteThrough updates the value of a locally Exclusive item without a
// coherence transaction: the cache write-hit path. The simulator
// propagates values eagerly (write-through value model) while the timing
// of the physical write-back is charged at flush points.
func (e *Engine) WriteThrough(n proto.NodeID, item proto.ItemID, value uint64) {
	s := e.ams[n].Slot(item)
	if s.State != proto.Exclusive {
		panic(fmt.Sprintf("coherence: write-through on node %v to item %d in %v", n, item, s.State))
	}
	e.ams[n].Set(item, am.Slot{State: proto.Exclusive, Value: value, Partner: proto.None})
}

// fetch sends a read/write request to the item's home and waits for the
// final response (grant or data), which may come from the home (cold) or
// be forwarded to and answered by the owner.
func (e *Engine) fetch(p *sim.Process, n proto.NodeID, item proto.ItemID, kind proto.MsgKind, txn proto.TxnID) mesh.Message {
	fut := sim.NewFuture[mesh.Message]()
	e.net.Send(mesh.Message{
		Kind:      kind,
		Src:       n,
		Dst:       e.dir.Home(item),
		Item:      item,
		Requester: n,
		Token:     fut,
		Txn:       txn,
	})
	return fut.Await(p)
}

// invalidateSharers sends invalidations to every sharer of an item owned
// locally and waits for all acknowledgements.
func (e *Engine) invalidateSharers(p *sim.Process, n proto.NodeID, item proto.ItemID, txn proto.TxnID) {
	entry := e.dir.Lookup(item)
	if entry == nil {
		panic(fmt.Sprintf("coherence: owner %v of item %d has no directory entry", n, item))
	}
	ackFut := e.registerAcks(item)
	count := 0
	entry.Sharers.ForEach(func(s proto.NodeID) {
		if s == n {
			return
		}
		count++
		e.net.Send(mesh.Message{
			Kind:      proto.MsgInvalidate,
			Src:       n,
			Dst:       s,
			Item:      item,
			Requester: n,
			Txn:       txn,
		})
	})
	entry.Sharers.Clear()
	e.expectAcks(item, count)
	ackFut.Await(p)
	e.finishAcks(item)
}

// ensureFrame guarantees the node has an AM page frame for the item's
// page, performing the first-touch anchor allocation and any replacement
// (with injection of pinned victims) that page allocation requires.
// txn is the transaction that needs the frame; injections forced by the
// replacement parent to it.
func (e *Engine) ensureFrame(p *sim.Process, n proto.NodeID, item proto.ItemID, txn proto.TxnID) {
	page := e.arch.PageOf(item)
	// A replacement may be mid-flight on this very frame: wait it out
	// (the frame will either survive or be reallocated below).
	for e.ams[n].Evicting(page) {
		p.Wait(e.arch.AMAccess)
	}
	if e.ams[n].HasFrame(page) {
		e.ams[n].Touch(page, p.Now())
		return
	}

	// Global first touch: reserve the irreplaceable anchor frames (the
	// paper's "four pages statically allocated as irreplaceable"; one in
	// a standard KSR1-like machine).
	if e.pageAnchors[page] == nil {
		anchors := e.dir.Anchors(n, e.anchorFrames())
		e.pageAnchors[page] = anchors
		for _, a := range anchors {
			e.allocAnchorFrame(p, a, page, txn)
			if a != n {
				// Timing-only notification to the remote anchor.
				e.net.Send(mesh.Message{Kind: proto.MsgPageAlloc, Src: n, Dst: a, Item: e.arch.FirstItem(page), Txn: txn})
			}
		}
	}

	if e.ams[n].HasFrame(page) { // n was among the anchors
		return
	}
	e.useController(p, n, e.arch.AMAccess)
	if !e.ams[n].FreeWay(page) {
		e.evictFrame(p, n, page, txn)
	}
	e.ams[n].AllocFrame(page, false, p.Now())
}

// allocAnchorFrame reserves an irreplaceable frame for page on node a,
// evicting a replaceable frame if the set is full.
func (e *Engine) allocAnchorFrame(p *sim.Process, a proto.NodeID, page proto.PageID, txn proto.TxnID) {
	if e.ams[a].HasFrame(page) {
		e.ams[a].MarkIrreplaceable(page)
		return
	}
	if !e.ams[a].FreeWay(page) {
		e.evictFrame(p, a, page, txn)
	}
	e.ams[a].AllocFrame(page, true, p.Now())
}

// evictFrame frees a way in the page's set on node n: it picks the
// least-recently-used replaceable frame not busy with an in-flight
// transaction, marks it mid-eviction so concurrent injections cannot
// land in it, injects every pinned item (masters and recovery copies
// must survive replacement), drops Shared items from sharer sets, and
// deallocates the frame.
func (e *Engine) evictFrame(p *sim.Process, n proto.NodeID, page proto.PageID, txn proto.TxnID) {
	victim := proto.NoPage
	for attempt := 0; ; attempt++ {
		for _, cand := range e.ams[n].VictimPages(page) {
			if !e.installPending(n, cand) {
				victim = cand
				break
			}
		}
		if victim != proto.NoPage {
			break
		}
		if attempt > 10_000 {
			panic(fmt.Sprintf("coherence: node %v cannot evict for page %d: every way irreplaceable or busy",
				n, page))
		}
		// Every candidate is waiting on an in-flight install or another
		// eviction; stall like a real replacement queue and retry.
		p.Wait(e.arch.AMAccess)
	}
	e.ams[n].SetEvicting(victim, true)
	for _, it := range e.ams[n].PinnedItems(victim) {
		if !e.tryLockItem(it) {
			// Another transaction is mid-flight on this item; it will
			// leave the item in some pinned state we can still inject
			// once it finishes. Block behind it.
			e.lockItem(p, it)
		}
		var cause proto.InjectCause
		switch st := e.ams[n].State(it); st {
		case proto.Exclusive, proto.MasterShared:
			cause = proto.InjectReplaceMaster
		case proto.SharedCK1, proto.SharedCK2:
			cause = proto.InjectReplaceSharedCK
		case proto.InvCK1, proto.InvCK2:
			cause = proto.InjectReplaceInvCK
		case proto.Invalid, proto.Shared:
			// The in-flight transaction we waited for already moved or
			// released the copy.
			e.unlockItem(it)
			continue
		default:
			panic(fmt.Sprintf("coherence: evicting item %d in %v", it, st))
		}
		e.inject(p, n, it, true, cause, txn)
		e.unlockItem(it)
	}
	// Remaining Shared items are silently dropped; keep the sharer sets
	// accurate.
	first := e.arch.FirstItem(victim)
	for i := 0; i < e.arch.ItemsPerPage(); i++ {
		it := first + proto.ItemID(i)
		if e.ams[n].State(it) == proto.Shared {
			if entry := e.dir.Lookup(it); entry != nil {
				entry.Sharers.Remove(n)
			}
			e.ams[n].SetState(it, proto.Invalid)
			e.cacheOps.InvalidateItem(n, it)
		}
	}
	e.ams[n].DropFrame(victim)
}

// verifyRead runs the oracle hook on a value about to reach a processor.
func (e *Engine) verifyRead(n proto.NodeID, item proto.ItemID, value uint64) {
	if e.checkRead != nil {
		e.checkRead(n, item, value)
	}
}

package coherence

import (
	"testing"

	"coma/internal/proto"
	"coma/internal/sim"
)

// TestLocalStateConformance drives the requester's copy of an item into
// every stable state the protocol defines and checks the outcome of a
// read and of a write from that state — a systematic transcription of the
// paper's Fig. 1 state diagram plus Table 1.
func TestLocalStateConformance(t *testing.T) {
	const item = proto.ItemID(100)
	const requester = proto.NodeID(2)

	// Each builder puts the requester's copy into the named initial
	// state using only protocol operations (never raw state pokes).
	builders := map[proto.State]func(r *rig, p *sim.Process){
		proto.Invalid: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, 0, item, 7) // master elsewhere; requester has nothing
		},
		proto.Shared: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, 0, item, 7)
			r.e.ReadItem(p, requester, item)
		},
		proto.MasterShared: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, requester, item, 7)
			r.e.ReadItem(p, 5, item) // downgrades the requester to master
		},
		proto.Exclusive: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, requester, item, 7)
		},
		proto.SharedCK1: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, requester, item, 7)
			r.establish(p)
		},
		proto.SharedCK2: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, 0, item, 7)
			r.e.ReadItem(p, requester, item) // the Shared copy is reused as CK2
			r.establish(p)
		},
		proto.InvCK1: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, requester, item, 7)
			r.establish(p)
			r.e.WriteItem(p, 9, item, 8) // pair downgrades to Inv-CK
		},
		proto.InvCK2: func(r *rig, p *sim.Process) {
			r.e.WriteItem(p, 0, item, 7)
			r.e.ReadItem(p, requester, item)
			r.establish(p)
			r.e.WriteItem(p, 9, item, 8)
		},
	}

	type expectation struct {
		afterRead  proto.State
		afterWrite proto.State
		// readInjects/writeInjects: the access must first push the
		// local recovery copy out (Table 1).
		readInjects  bool
		writeInjects bool
	}
	expect := map[proto.State]expectation{
		proto.Invalid:      {proto.Shared, proto.Exclusive, false, false},
		proto.Shared:       {proto.Shared, proto.Exclusive, false, false},
		proto.MasterShared: {proto.MasterShared, proto.Exclusive, false, false},
		proto.Exclusive:    {proto.Exclusive, proto.Exclusive, false, false},
		proto.SharedCK1:    {proto.SharedCK1, proto.Exclusive, false, true},
		proto.SharedCK2:    {proto.SharedCK2, proto.Exclusive, false, true},
		proto.InvCK1:       {proto.Shared, proto.Exclusive, true, true},
		proto.InvCK2:       {proto.Shared, proto.Exclusive, true, true},
	}

	for initial, build := range builders {
		initial, build := initial, build
		exp := expect[initial]

		// Read conformance.
		r := newRig(t, 16, ECP, Options{})
		r.run(func(p *sim.Process) {
			build(r, p)
			if st := r.ams[requester].State(item); st != initial {
				t.Fatalf("builder for %v produced %v", initial, st)
			}
			before := r.counters[requester].InjectionsOnReads()
			r.e.ReadItem(p, requester, item)
			if st := r.ams[requester].State(item); st != exp.afterRead {
				t.Errorf("%v + read -> %v, want %v", initial, st, exp.afterRead)
			}
			injected := r.counters[requester].InjectionsOnReads() > before
			if injected != exp.readInjects {
				t.Errorf("%v + read: injected=%v, want %v", initial, injected, exp.readInjects)
			}
		})

		// Write conformance.
		r = newRig(t, 16, ECP, Options{})
		r.run(func(p *sim.Process) {
			build(r, p)
			before := r.counters[requester].InjectionsOnWrites()
			r.e.WriteItem(p, requester, item, 99)
			if st := r.ams[requester].State(item); st != exp.afterWrite {
				t.Errorf("%v + write -> %v, want %v", initial, st, exp.afterWrite)
			}
			if v := r.ams[requester].Slot(item).Value; v != 99 {
				t.Errorf("%v + write: value %d, want 99", initial, v)
			}
			injected := r.counters[requester].InjectionsOnWrites() > before
			if injected != exp.writeInjects {
				t.Errorf("%v + write: injected=%v, want %v", initial, injected, exp.writeInjects)
			}
		})
	}
}

// TestRemoteStateConformance checks the owner-side transitions: what a
// remote owner's copy becomes when another node reads or writes.
func TestRemoteStateConformance(t *testing.T) {
	const item = proto.ItemID(100)
	const owner = proto.NodeID(0)
	const requester = proto.NodeID(7)

	cases := []struct {
		name       string
		build      func(r *rig, p *sim.Process)
		initial    proto.State
		afterRead  proto.State
		afterWrite proto.State
	}{
		{
			name:       "exclusive owner",
			build:      func(r *rig, p *sim.Process) { r.e.WriteItem(p, owner, item, 7) },
			initial:    proto.Exclusive,
			afterRead:  proto.MasterShared,
			afterWrite: proto.Invalid,
		},
		{
			name: "master-shared owner",
			build: func(r *rig, p *sim.Process) {
				r.e.WriteItem(p, owner, item, 7)
				r.e.ReadItem(p, 5, item)
			},
			initial:    proto.MasterShared,
			afterRead:  proto.MasterShared,
			afterWrite: proto.Invalid,
		},
		{
			name: "shared-ck1 owner",
			build: func(r *rig, p *sim.Process) {
				r.e.WriteItem(p, owner, item, 7)
				r.establish(p)
			},
			initial:    proto.SharedCK1,
			afterRead:  proto.SharedCK1, // recovery copies serve misses unchanged
			afterWrite: proto.InvCK1,    // kept for rollback, not destroyed
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name+"/read", func(t *testing.T) {
			r := newRig(t, 16, ECP, Options{})
			r.run(func(p *sim.Process) {
				c.build(r, p)
				if st := r.ams[owner].State(item); st != c.initial {
					t.Fatalf("builder produced %v, want %v", st, c.initial)
				}
				if got := r.e.ReadItem(p, requester, item); got != 7 {
					t.Errorf("served value %d", got)
				}
				if st := r.ams[owner].State(item); st != c.afterRead {
					t.Errorf("owner %v + remote read -> %v, want %v", c.initial, st, c.afterRead)
				}
			})
		})
		t.Run(c.name+"/write", func(t *testing.T) {
			r := newRig(t, 16, ECP, Options{})
			r.run(func(p *sim.Process) {
				c.build(r, p)
				r.e.WriteItem(p, requester, item, 9)
				if st := r.ams[owner].State(item); st != c.afterWrite {
					t.Errorf("owner %v + remote write -> %v, want %v", c.initial, st, c.afterWrite)
				}
				if st := r.ams[requester].State(item); st != proto.Exclusive {
					t.Errorf("requester state %v", st)
				}
			})
		})
	}
}

// Package coherence implements the machine-wide cache-coherence protocol
// engine of the simulated COMA: the standard COMA-F-style write-invalidate
// protocol (Invalid / Shared / MasterShared / Exclusive, home-based
// localisation pointers, owner-resident directory entries, injection of
// master copies on replacement) and the paper's Extended Coherence
// Protocol, which adds the recovery states and the item-level mechanics of
// recovery-point establishment, rollback and reconfiguration.
//
// Concurrency model: transactions on the same item are serialised by a
// per-item FIFO lock (the hardware serialises at the owner; the lock
// models the same order without modelling protocol races — see DESIGN.md
// §4.2). All simulator state mutations for a transaction happen while its
// initiator holds the item lock; network messages carry the timing.
package coherence

import (
	"fmt"
	"sort"

	"coma/internal/am"
	"coma/internal/config"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
)

// Protocol selects the coherence protocol variant.
type Protocol uint8

const (
	// Standard is the baseline COMA-F-style protocol.
	Standard Protocol = iota
	// ECP is the paper's Extended Coherence Protocol with transparent
	// recovery-data management.
	ECP
)

func (p Protocol) String() string {
	if p == Standard {
		return "standard"
	}
	return "ecp"
}

// CacheOps lets the protocol engine manipulate the per-node processor
// caches (implemented by the node layer).
type CacheOps interface {
	// InvalidateItem drops the cache lines covering the item on the node.
	InvalidateItem(n proto.NodeID, item proto.ItemID)
	// DowngradeItem removes write permission from the cache lines
	// covering the item on the node, keeping them readable.
	DowngradeItem(n proto.NodeID, item proto.ItemID)
}

// Options tunes protocol behaviour for ablation studies.
type Options struct {
	// NoReplicationReuse disables the paper's optimisation of turning an
	// existing Shared copy into the second recovery copy without a data
	// transfer (§3.3): every replication then moves data.
	NoReplicationReuse bool
	// NoSharedCKReads makes Shared-CK copies unreadable by their local
	// processor (they still answer remote misses, which the protocol
	// requires), ablating one of the claimed ECP benefits: that recovery
	// data stays accessible until first modification.
	NoSharedCKReads bool
}

// Engine is the protocol engine for one simulated machine.
type Engine struct {
	eng      *sim.Engine
	arch     config.Arch
	protocol Protocol
	opts     Options
	net      *mesh.Network
	dir      *directory.Directory
	ams      []*am.AM
	ctl      []*sim.Resource // AM controllers, capacity arch.AMControllers
	counters []*stats.Node
	cacheOps CacheOps

	locks map[proto.ItemID]*itemLock
	acks  map[proto.ItemID]*ackState

	// pendingInstalls[n][page] counts in-flight misses on node n that
	// will install into the page's frame when their data arrives; such a
	// frame must not be replaced meanwhile.
	pendingInstalls []map[proto.PageID]int

	// pageAnchors records, per touched page, the nodes holding its
	// irreplaceable frames.
	pageAnchors map[proto.PageID][]proto.NodeID

	// checkRead, when set, validates every value delivered to a
	// processor against the machine oracle.
	checkRead func(n proto.NodeID, item proto.ItemID, value uint64)

	// obs, when set, receives protocol events (misses, injections,
	// checkpoint phases). Each emission site is guarded by one nil
	// check; a disabled engine pays nothing else.
	obs obs.Observer

	// txnSeq holds the per-origin transaction counters behind mintTxn.
	// Only touched when obs is non-nil, so transaction IDs exist exactly
	// when somebody records them and a disabled run stays untouched.
	txnSeq []int64
	// roundTxn is the coordinator's current round transaction; phase work
	// (checkpoint replication, reconfiguration, anchor repair) parents
	// its injections to it. NoTxn outside rounds.
	roundTxn proto.TxnID
}

// New wires a protocol engine to the machine's parts and registers the
// per-node message handlers on the mesh.
func New(eng *sim.Engine, arch config.Arch, protocol Protocol, opts Options,
	net *mesh.Network, dir *directory.Directory, ams []*am.AM,
	counters []*stats.Node, cacheOps CacheOps) *Engine {

	e := &Engine{
		eng:         eng,
		arch:        arch,
		protocol:    protocol,
		opts:        opts,
		net:         net,
		dir:         dir,
		ams:         ams,
		counters:    counters,
		cacheOps:    cacheOps,
		locks:       make(map[proto.ItemID]*itemLock),
		acks:        make(map[proto.ItemID]*ackState),
		pageAnchors: make(map[proto.PageID][]proto.NodeID),
	}
	e.ctl = make([]*sim.Resource, arch.Nodes)
	e.pendingInstalls = make([]map[proto.PageID]int, arch.Nodes)
	e.txnSeq = make([]int64, arch.Nodes)
	for i := range e.ctl {
		e.ctl[i] = sim.NewResource(fmt.Sprintf("amctl%d", i), arch.AMControllers)
		e.pendingInstalls[i] = make(map[proto.PageID]int)
		n := proto.NodeID(i)
		net.SetHandler(n, func(m mesh.Message) { e.dispatch(n, m) })
	}
	return e
}

// beginInstall reserves a node's page frame against replacement while a
// miss is in flight; endInstall releases it.
func (e *Engine) beginInstall(n proto.NodeID, page proto.PageID) {
	e.pendingInstalls[n][page]++
}

func (e *Engine) endInstall(n proto.NodeID, page proto.PageID) {
	m := e.pendingInstalls[n]
	if m[page] <= 1 {
		delete(m, page)
	} else {
		m[page]--
	}
}

// installPending reports whether an in-flight miss will install into the
// node's frame for the page.
func (e *Engine) installPending(n proto.NodeID, page proto.PageID) bool {
	return e.pendingInstalls[n][page] > 0
}

// Protocol returns the active protocol variant.
func (e *Engine) Protocol() Protocol { return e.protocol }

// Directory exposes the localisation directory (for core and tests).
func (e *Engine) Directory() *directory.Directory { return e.dir }

// AM returns a node's attraction memory (for core and tests).
func (e *Engine) AM(n proto.NodeID) *am.AM { return e.ams[n] }

// SetReadChecker installs the oracle validation hook.
func (e *Engine) SetReadChecker(fn func(n proto.NodeID, item proto.ItemID, value uint64)) {
	e.checkRead = fn
}

// SetObserver installs the observability sink (nil disables it).
func (e *Engine) SetObserver(o obs.Observer) { e.obs = o }

// mintTxn mints the next transaction ID originated by node n. Callers
// must hold a non-nil observer: IDs are deterministic per seed because
// transaction starts are, but they exist only when a trace is recorded,
// so an untraced run carries no IDs anywhere.
func (e *Engine) mintTxn(n proto.NodeID) proto.TxnID {
	e.txnSeq[n]++
	return proto.MakeTxnID(n, e.txnSeq[n])
}

// SetRoundTxn names the coordinator round transaction that subsequent
// checkpoint/recovery phase work should parent to (NoTxn to clear).
func (e *Engine) SetRoundTxn(t proto.TxnID) { e.roundTxn = t }

// dispatch routes a delivered message to its handler. It runs in event
// context; handlers needing simulated time spawn processes.
func (e *Engine) dispatch(n proto.NodeID, m mesh.Message) {
	switch m.Kind {
	case proto.MsgReadReq, proto.MsgWriteReq:
		e.eng.Spawn("home", func(p *sim.Process) { e.homeRequest(p, n, m) })
	case proto.MsgReadFwd:
		e.eng.Spawn("owner-read", func(p *sim.Process) { e.ownerRead(p, n, m) })
	case proto.MsgWriteFwd:
		e.eng.Spawn("owner-write", func(p *sim.Process) { e.ownerWrite(p, n, m) })
	case proto.MsgInvalidate:
		e.eng.Spawn("invalidate", func(p *sim.Process) { e.handleInvalidate(p, n, m) })
	case proto.MsgInvalidateAck:
		e.ackArrived(m.Item, 1)
	case proto.MsgInjectProbe:
		e.eng.Spawn("inject-probe", func(p *sim.Process) { e.handleInjectProbe(p, n, m) })
	case proto.MsgInjectData:
		e.eng.Spawn("inject-data", func(p *sim.Process) { e.handleInjectData(p, n, m) })
	case proto.MsgPreCommitUpgrade:
		e.eng.Spawn("precommit-upgrade", func(p *sim.Process) { e.handlePreCommitUpgrade(p, n, m) })
	case proto.MsgHomeUpdate, proto.MsgPartnerUpdate, proto.MsgPageAlloc:
		// Timing-only traffic: the simulator state was already updated
		// under the initiating transaction's item lock (DESIGN.md §4.2).
	case proto.MsgColdGrant, proto.MsgDataReply, proto.MsgInjectAccept,
		proto.MsgInjectRefuse, proto.MsgInjectAck, proto.MsgPreCommitUpgradeAck:
		// Pure responses: the Reply future (completed by the mesh on
		// delivery) wakes the waiting initiator; nothing else to do.
	case proto.MsgCkptPrepare, proto.MsgCkptCreateDone, proto.MsgCkptCommit,
		proto.MsgCkptCommitDone, proto.MsgRecover, proto.MsgRecoverDone:
		// Checkpoint/recovery control traffic is timing-only here; the
		// core coordinator drives the phases through direct calls.
	default:
		panic(fmt.Sprintf("coherence: node %v cannot handle %v", n, m))
	}
}

// itemLock is a FIFO mutex serialising transactions on one item.
type itemLock struct {
	held bool
	q    []*sim.Process
}

// lockItem acquires the transaction lock for an item, blocking in FIFO
// order behind the current holder.
func (e *Engine) lockItem(p *sim.Process, item proto.ItemID) {
	l := e.locks[item]
	if l == nil {
		l = &itemLock{}
		e.locks[item] = l
	}
	if !l.held {
		l.held = true
		return
	}
	l.q = append(l.q, p)
	p.Park()
}

// tryLockItem acquires the lock only if free.
func (e *Engine) tryLockItem(item proto.ItemID) bool {
	l := e.locks[item]
	if l == nil {
		e.locks[item] = &itemLock{held: true}
		return true
	}
	if l.held {
		return false
	}
	l.held = true
	return true
}

// unlockItem releases the lock, handing it to the longest waiter.
func (e *Engine) unlockItem(item proto.ItemID) {
	l := e.locks[item]
	if l == nil || !l.held {
		panic(fmt.Sprintf("coherence: unlock of free item %d", item))
	}
	if len(l.q) > 0 {
		next := l.q[0]
		copy(l.q, l.q[1:])
		l.q = l.q[:len(l.q)-1]
		e.eng.WakeNow(next)
		return
	}
	delete(e.locks, item)
}

// LockedItems reports how many items currently have an active or queued
// transaction (test hook: must be zero at quiesce).
func (e *Engine) LockedItems() int { return len(e.locks) }

// ackState counts invalidation acknowledgements for one in-flight write
// transaction.
type ackState struct {
	needed   int // -1 until the data grant announces the count
	received int
	fut      *sim.Future[int]
}

// registerAcks prepares ack collection for a write transaction on item.
func (e *Engine) registerAcks(item proto.ItemID) *sim.Future[int] {
	if _, dup := e.acks[item]; dup {
		panic(fmt.Sprintf("coherence: concurrent ack registration for item %d", item))
	}
	st := &ackState{needed: -1, fut: sim.NewFuture[int]()}
	e.acks[item] = st
	return st.fut
}

// expectAcks announces how many acknowledgements the transaction must
// collect; the future completes when they have all arrived.
func (e *Engine) expectAcks(item proto.ItemID, n int) {
	st := e.acks[item]
	if st == nil {
		panic(fmt.Sprintf("coherence: expectAcks without registration for item %d", item))
	}
	st.needed = n
	if st.received >= st.needed && !st.fut.Done() {
		st.fut.Complete(e.eng, st.received)
	}
}

// ackArrived records an incoming acknowledgement.
func (e *Engine) ackArrived(item proto.ItemID, n int) {
	st := e.acks[item]
	if st == nil {
		panic(fmt.Sprintf("coherence: stray ack for item %d", item))
	}
	st.received += n
	if st.needed >= 0 && st.received >= st.needed && !st.fut.Done() {
		st.fut.Complete(e.eng, st.received)
	}
}

// finishAcks tears down ack collection after the transaction completes.
func (e *Engine) finishAcks(item proto.ItemID) {
	delete(e.acks, item)
}

// useController charges d cycles of one of the node's AM controllers.
func (e *Engine) useController(p *sim.Process, n proto.NodeID, d int64) {
	e.ctl[n].Use(p, d)
}

// anchorFrames returns the number of irreplaceable frames reserved per
// touched page: the configured count under the ECP (four in the paper),
// one under the standard protocol (the KSR1 allocates a single
// irreplaceable page per page).
func (e *Engine) anchorFrames() int {
	if e.protocol == Standard {
		return 1
	}
	return e.arch.AnchorFrames
}

// readable reports whether a local copy in state st may satisfy a
// processor read, honouring the NoSharedCKReads ablation.
func (e *Engine) readable(st proto.State) bool {
	if !st.Readable() {
		return false
	}
	if e.opts.NoSharedCKReads && (st == proto.SharedCK1 || st == proto.SharedCK2) {
		return false
	}
	return true
}

// PendingAcks reports in-flight write-transaction ack collections (test
// and deadlock diagnostics).
func (e *Engine) PendingAcks() int { return len(e.acks) }

// LockQueueDump describes held item locks for deadlock diagnostics, in
// item order so repeated dumps of the same state compare equal.
func (e *Engine) LockQueueDump() string {
	items := make([]proto.ItemID, 0, len(e.locks))
	for item := range e.locks {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	s := ""
	for _, item := range items {
		l := e.locks[item]
		s += fmt.Sprintf("item %d held=%v waiters=%d; ", item, l.held, len(l.q))
	}
	return s
}

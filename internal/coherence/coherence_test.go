package coherence

import (
	"testing"

	"coma/internal/am"
	"coma/internal/config"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
)

// fakeCache records the protocol's cache manipulations.
type fakeCache struct {
	invalidations map[proto.NodeID]int
	downgrades    map[proto.NodeID]int
}

func newFakeCache() *fakeCache {
	return &fakeCache{
		invalidations: make(map[proto.NodeID]int),
		downgrades:    make(map[proto.NodeID]int),
	}
}

func (f *fakeCache) InvalidateItem(n proto.NodeID, item proto.ItemID) { f.invalidations[n]++ }
func (f *fakeCache) DowngradeItem(n proto.NodeID, item proto.ItemID)  { f.downgrades[n]++ }

type rig struct {
	t        *testing.T
	eng      *sim.Engine
	arch     config.Arch
	net      *mesh.Network
	dir      *directory.Directory
	ams      []*am.AM
	counters []*stats.Node
	cache    *fakeCache
	e        *Engine
}

func newRig(t *testing.T, nodes int, p Protocol, opts Options) *rig {
	t.Helper()
	eng := sim.New()
	arch := config.KSR1(nodes)
	net := mesh.New(eng, arch)
	dir := directory.New(nodes)
	ams := make([]*am.AM, nodes)
	counters := make([]*stats.Node, nodes)
	for i := range ams {
		ams[i] = am.New(arch, proto.NodeID(i))
		counters[i] = &stats.Node{}
	}
	cache := newFakeCache()
	e := New(eng, arch, p, opts, net, dir, ams, counters, cache)
	r := &rig{t: t, eng: eng, arch: arch, net: net, dir: dir, ams: ams,
		counters: counters, cache: cache, e: e}
	t.Cleanup(func() { eng.Shutdown() })
	return r
}

// run executes fn as a simulated process to completion.
func (r *rig) run(fn func(p *sim.Process)) {
	r.t.Helper()
	done := false
	r.eng.Spawn("test", func(p *sim.Process) { fn(p); done = true })
	if _, err := r.eng.Run(); err != nil {
		r.t.Fatal(err)
	}
	if !done {
		r.t.Fatal("test process did not complete (deadlock?)")
	}
	if r.e.LockedItems() != 0 {
		r.t.Fatalf("%d item locks still held after quiesce", r.e.LockedItems())
	}
}

// establish runs a full create+commit recovery point over all nodes,
// sequentially (state-equivalent to the parallel barriers of the real
// coordinator).
func (r *rig) establish(p *sim.Process) {
	for n := 0; n < r.arch.Nodes; n++ {
		r.e.CreatePhase(p, proto.NodeID(n))
	}
	for n := 0; n < r.arch.Nodes; n++ {
		r.e.CommitScan(p, proto.NodeID(n))
	}
}

// ckPair returns the nodes holding SharedCK1 and SharedCK2 for an item.
func (r *rig) ckPair(item proto.ItemID) (ck1, ck2 proto.NodeID) {
	ck1, ck2 = proto.None, proto.None
	for n := range r.ams {
		switch r.ams[n].State(item) {
		case proto.SharedCK1:
			ck1 = proto.NodeID(n)
		case proto.SharedCK2:
			ck2 = proto.NodeID(n)
		}
	}
	return ck1, ck2
}

func TestColdReadGetsBackgroundSharedCopy(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	var v uint64
	r.run(func(p *sim.Process) { v = r.e.ReadItem(p, 3, 100) })
	if v != 0 {
		t.Fatalf("cold value = %d", v)
	}
	// Never-written memory is initialised background: the reader gets a
	// Shared zero copy and no master exists yet.
	if st := r.ams[3].State(100); st != proto.Shared {
		t.Fatalf("state = %v, want Shared", st)
	}
	if owner := r.dir.Lookup(100).Owner; owner != proto.None {
		t.Fatalf("owner = %v, want none before the first write", owner)
	}
	if !r.dir.Lookup(100).Sharers.Contains(3) {
		t.Fatal("background reader not tracked as sharer")
	}
	if r.counters[3].FillsCold != 1 {
		t.Fatalf("cold fills = %d", r.counters[3].FillsCold)
	}
}

func TestFirstWriteInvalidatesBackgroundReaders(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) {
		r.e.ReadItem(p, 3, 100) // background Shared copies
		r.e.ReadItem(p, 7, 100)
		r.e.WriteItem(p, 1, 100, 9) // first write creates the master
		if got := r.e.ReadItem(p, 3, 100); got != 9 {
			t.Errorf("read after first write = %d, want 9", got)
		}
	})
	if owner := r.dir.Lookup(100).Owner; owner != 1 {
		t.Fatalf("owner = %v, want the first writer", owner)
	}
	if st := r.ams[7].State(100); st != proto.Invalid {
		t.Fatalf("background copy at node 7 = %v, want invalidated", st)
	}
}

func TestRemoteReadSharesAndDowngrades(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 42)
		got := r.e.ReadItem(p, 5, 100)
		if got != 42 {
			t.Errorf("remote read = %d, want 42", got)
		}
	})
	if st := r.ams[0].State(100); st != proto.MasterShared {
		t.Fatalf("owner state = %v, want MasterShared", st)
	}
	if st := r.ams[5].State(100); st != proto.Shared {
		t.Fatalf("reader state = %v, want Shared", st)
	}
	if !r.dir.Lookup(100).Sharers.Contains(5) {
		t.Fatal("reader not in sharing set")
	}
	if r.cache.downgrades[0] != 1 {
		t.Fatalf("owner cache downgrades = %d", r.cache.downgrades[0])
	}
	if r.counters[5].FillsRemote != 1 {
		t.Fatalf("remote fills = %d", r.counters[5].FillsRemote)
	}
}

func TestWriteInvalidatesAllCopies(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 1)
		r.e.ReadItem(p, 1, 100)
		r.e.ReadItem(p, 2, 100)
		r.e.WriteItem(p, 3, 100, 2)
		if got := r.e.ReadItem(p, 3, 100); got != 2 {
			t.Errorf("writer read-back = %d, want 2", got)
		}
	})
	for _, n := range []proto.NodeID{0, 1, 2} {
		if st := r.ams[n].State(100); st != proto.Invalid {
			t.Fatalf("node %v state = %v, want Invalid", n, st)
		}
	}
	if st := r.ams[3].State(100); st != proto.Exclusive {
		t.Fatalf("writer state = %v", st)
	}
	if r.dir.Lookup(100).Owner != 3 {
		t.Fatalf("owner = %v", r.dir.Lookup(100).Owner)
	}
	if got := r.dir.Lookup(100).Sharers.Len(); got != 0 {
		t.Fatalf("sharers = %d", got)
	}
	// Nodes 1 and 2 were invalidated; node 0's master copy was destroyed.
	if r.cache.invalidations[1] != 1 || r.cache.invalidations[2] != 1 || r.cache.invalidations[0] != 1 {
		t.Fatalf("cache invalidations = %v", r.cache.invalidations)
	}
}

func TestUpgradeFromMasterShared(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 1)
		r.e.ReadItem(p, 1, 100)
		// Owner writes again: a local upgrade that invalidates node 1.
		r.e.WriteItem(p, 0, 100, 2)
	})
	if st := r.ams[0].State(100); st != proto.Exclusive {
		t.Fatalf("owner state = %v", st)
	}
	if st := r.ams[1].State(100); st != proto.Invalid {
		t.Fatalf("sharer state = %v", st)
	}
}

func TestTable2RemoteLatency(t *testing.T) {
	// Build the Table 2 scenario on a 4x4 mesh: home == owner, at one
	// and two hops from the requester. Expected: 108 + 8*hops.
	cases := []struct {
		requester proto.NodeID
		hops      int
		want      int64
	}{
		{1, 1, 116}, // node 1 is one hop from node 0
		{2, 2, 124}, // node 2 is two hops from node 0
	}
	for _, c := range cases {
		r := newRig(t, 16, Standard, Options{})
		// Item 0 homes at node 0 (0 % 16); make node 0 its owner, and
		// pre-touch the page from the requester so only the pure miss
		// is measured.
		r.run(func(p *sim.Process) {
			r.e.WriteItem(p, 0, 0, 7)       // node 0 owns item 0
			r.e.ReadItem(p, c.requester, 1) // allocates requester's frame (same page)
			r.e.ReadItem(p, 0, 1)           // keep node 0 the owner of item 1 only
			start := p.Now()
			if got := r.e.ReadItem(p, c.requester, 0); got != 7 {
				t.Errorf("value = %d", got)
			}
			if lat := p.Now() - start; lat != c.want {
				t.Errorf("%d-hop remote read latency = %d, want %d", c.hops, lat, c.want)
			}
		})
	}
}

func TestLocalAMFillLatency(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) {
		r.e.ReadItem(p, 4, 100)
		start := p.Now()
		r.e.ReadItem(p, 4, 100) // AM hit (simulating a cache miss, AM hit)
		if lat := p.Now() - start; lat != r.arch.AMAccess {
			t.Errorf("local fill latency = %d, want %d", lat, r.arch.AMAccess)
		}
	})
}

func TestCheckpointCreatesCKPairs(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	items := []proto.ItemID{100, 101, 350}
	r.run(func(p *sim.Process) {
		for i, it := range items {
			r.e.WriteItem(p, proto.NodeID(i), it, uint64(10+i))
		}
		r.establish(p)
	})
	for i, it := range items {
		ck1, ck2 := r.ckPair(it)
		if ck1 == proto.None || ck2 == proto.None {
			t.Fatalf("item %d: CK pair = (%v,%v)", it, ck1, ck2)
		}
		if ck1 == ck2 {
			t.Fatalf("item %d: CK copies on the same node", it)
		}
		if r.ams[ck1].Slot(it).Partner != ck2 || r.ams[ck2].Slot(it).Partner != ck1 {
			t.Fatalf("item %d: partner pointers wrong", it)
		}
		if v := r.ams[ck1].Slot(it).Value; v != uint64(10+i) {
			t.Fatalf("item %d: CK1 value = %d", it, v)
		}
		if r.dir.Lookup(it).Owner != ck1 {
			t.Fatalf("item %d: owner %v != CK1 %v", it, r.dir.Lookup(it).Owner, ck1)
		}
	}
}

func TestCheckpointReusesSharedReplica(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.e.ReadItem(p, 7, 100) // node 7 now holds a Shared copy
		r.establish(p)
	})
	ck1, ck2 := r.ckPair(100)
	if ck1 != 0 || ck2 != 7 {
		t.Fatalf("CK pair = (%v,%v), want (0,7): the Shared copy must be reused", ck1, ck2)
	}
	if r.counters[0].CkptItemsReused != 1 {
		t.Fatalf("reused = %d, want 1", r.counters[0].CkptItemsReused)
	}
	if r.counters[0].CkptItemsReplicated != 0 {
		t.Fatalf("replicated = %d, want 0 (no data transfer)", r.counters[0].CkptItemsReplicated)
	}
	if r.dir.Lookup(100).Sharers.Contains(7) {
		t.Fatal("upgraded sharer still in sharing set")
	}
}

func TestNoReplicationReuseAblation(t *testing.T) {
	r := newRig(t, 16, ECP, Options{NoReplicationReuse: true})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.e.ReadItem(p, 7, 100)
		r.establish(p)
	})
	if r.counters[0].CkptItemsReused != 0 {
		t.Fatal("ablation still reused a replica")
	}
	if r.counters[0].CkptItemsReplicated != 1 {
		t.Fatalf("replicated = %d, want 1", r.counters[0].CkptItemsReplicated)
	}
}

func TestWriteAfterCheckpointDowngradesCKToInvCK(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		r.e.WriteItem(p, 9, 100, 6)
		if got := r.e.ReadItem(p, 9, 100); got != 6 {
			t.Errorf("read-back = %d", got)
		}
	})
	// The two CK copies must survive as Inv-CK.
	inv1, inv2 := proto.None, proto.None
	for n := range r.ams {
		switch r.ams[n].State(100) {
		case proto.InvCK1:
			inv1 = proto.NodeID(n)
		case proto.InvCK2:
			inv2 = proto.NodeID(n)
		}
	}
	if inv1 == proto.None || inv2 == proto.None || inv1 == inv2 {
		t.Fatalf("Inv-CK pair = (%v,%v)", inv1, inv2)
	}
	if v := r.ams[inv1].Slot(100).Value; v != 5 {
		t.Fatalf("recovery value = %d, want the pre-write 5", v)
	}
	if st := r.ams[9].State(100); st != proto.Exclusive {
		t.Fatalf("writer state = %v", st)
	}
}

func TestSharedCKServesLocalReads(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		start := p.Now()
		if got := r.e.ReadItem(p, 0, 100); got != 5 {
			t.Errorf("read = %d", got)
		}
		if lat := p.Now() - start; lat != r.arch.AMAccess {
			t.Errorf("Shared-CK local read latency = %d, want %d (a hit)", lat, r.arch.AMAccess)
		}
	})
	if r.counters[0].SharedCKReads != 1 {
		t.Fatalf("SharedCKReads = %d", r.counters[0].SharedCKReads)
	}
	if n := r.counters[0].InjectionsOnReads(); n != 0 {
		t.Fatalf("a read of a local Shared-CK copy caused %d injections", n)
	}
}

func TestNoSharedCKReadsAblation(t *testing.T) {
	r := newRig(t, 16, ECP, Options{NoSharedCKReads: true})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		if got := r.e.ReadItem(p, 0, 100); got != 5 {
			t.Errorf("read = %d", got)
		}
	})
	if r.counters[0].SharedCKReads != 0 {
		t.Fatal("ablation still served from Shared-CK")
	}
	if r.counters[0].Injections[proto.InjectReadInvCK] != 1 {
		t.Fatalf("injections = %v, want the CK copy pushed out", r.counters[0].Injections)
	}
}

func TestWriteOnLocalSharedCKInjectsFirst(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		// Node 0 holds SharedCK1; its processor writes the item again.
		r.e.WriteItem(p, 0, 100, 6)
		if got := r.e.ReadItem(p, 0, 100); got != 6 {
			t.Errorf("read-back = %d", got)
		}
	})
	if r.counters[0].Injections[proto.InjectWriteSharedCK] != 1 {
		t.Fatalf("write-on-SharedCK injections = %d, want 1",
			r.counters[0].Injections[proto.InjectWriteSharedCK])
	}
	if st := r.ams[0].State(100); st != proto.Exclusive {
		t.Fatalf("writer state = %v", st)
	}
	// The recovery pair must survive as Inv-CK on two other nodes.
	inv := 0
	for n := range r.ams {
		st := r.ams[n].State(100)
		if st == proto.InvCK1 || st == proto.InvCK2 {
			inv++
			if v := r.ams[n].Slot(100).Value; v != 5 {
				t.Fatalf("recovery value = %d, want 5", v)
			}
		}
	}
	if inv != 2 {
		t.Fatalf("Inv-CK copies = %d, want 2", inv)
	}
}

func TestReadOnLocalInvCKInjectsFirst(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		r.e.WriteItem(p, 9, 100, 6) // CK pair becomes Inv-CK; node 0 holds InvCK1
		if st := r.ams[0].State(100); st != proto.InvCK1 {
			t.Fatalf("node 0 state = %v, want InvCK1", st)
		}
		if got := r.e.ReadItem(p, 0, 100); got != 6 {
			t.Errorf("read = %d, want current 6", got)
		}
	})
	if r.counters[0].Injections[proto.InjectReadInvCK] != 1 {
		t.Fatalf("read-on-InvCK injections = %d, want 1",
			r.counters[0].Injections[proto.InjectReadInvCK])
	}
	if st := r.ams[0].State(100); st != proto.Shared {
		t.Fatalf("node 0 state = %v, want Shared", st)
	}
	// The InvCK1 copy moved somewhere else intact.
	inv := 0
	for n := range r.ams {
		st := r.ams[n].State(100)
		if st == proto.InvCK1 || st == proto.InvCK2 {
			inv++
		}
	}
	if inv != 2 {
		t.Fatalf("Inv-CK copies = %d, want 2 after the move", inv)
	}
}

func TestRecoveryRestoresCommittedState(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.e.WriteItem(p, 1, 101, 7)
		r.establish(p)
		// Post-checkpoint activity to be rolled back.
		r.e.WriteItem(p, 2, 100, 99)
		r.e.WriteItem(p, 3, 200, 55) // brand new item, never checkpointed
		r.e.ReadItem(p, 4, 101)
		// Rollback.
		for n := 0; n < 16; n++ {
			r.e.RecoveryScan(p, proto.NodeID(n))
		}
		dropped := r.e.RebuildDirectory()
		if len(dropped) != 1 || dropped[0] != 200 {
			t.Errorf("dropped = %v, want [200]", dropped)
		}
	})
	for _, c := range []struct {
		item proto.ItemID
		want uint64
	}{{100, 5}, {101, 7}} {
		ck1, ck2 := r.ckPair(c.item)
		if ck1 == proto.None || ck2 == proto.None {
			t.Fatalf("item %d: CK pair missing after recovery", c.item)
		}
		if v := r.ams[ck1].Slot(c.item).Value; v != c.want {
			t.Fatalf("item %d: restored value = %d, want %d", c.item, v, c.want)
		}
		if r.dir.Lookup(c.item).Owner != ck1 {
			t.Fatalf("item %d: owner not rebuilt to CK1", c.item)
		}
		if r.dir.Lookup(c.item).Sharers.Len() != 0 {
			t.Fatalf("item %d: sharers not cleared", c.item)
		}
	}
	if r.dir.Lookup(200) != nil {
		t.Fatal("never-checkpointed item survived recovery")
	}
	// No current copies anywhere.
	for n := range r.ams {
		counts := r.ams[n].StateCounts()
		if counts[proto.Shared]+counts[proto.Exclusive]+counts[proto.MasterShared]+
			counts[proto.PreCommit1]+counts[proto.PreCommit2] != 0 {
			t.Fatalf("node %d still holds current copies: %v", n, counts)
		}
	}
	// The machine must be usable after recovery: re-read and re-write.
	r.run(func(p *sim.Process) {
		if got := r.e.ReadItem(p, 8, 100); got != 5 {
			t.Errorf("post-recovery read = %d, want 5", got)
		}
		r.e.WriteItem(p, 8, 100, 123)
		if got := r.e.ReadItem(p, 8, 100); got != 123 {
			t.Errorf("post-recovery write lost: %d", got)
		}
	})
}

func TestReconfigureAfterPermanentFailure(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	var deadNode proto.NodeID
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.e.WriteItem(p, 1, 101, 7)
		r.establish(p)
		// Pick the node holding item 100's CK1 as the casualty.
		ck1, _ := r.ckPair(100)
		deadNode = ck1
		r.net.SetDown(deadNode, true)
		r.ams[deadNode].Clear()
		r.dir.SetAlive(deadNode, false)
		for n := 0; n < 16; n++ {
			if proto.NodeID(n) == deadNode {
				continue
			}
			r.e.RecoveryScan(p, proto.NodeID(n))
		}
		r.e.RebuildDirectory()
		dead := func(n proto.NodeID) bool { return n == deadNode }
		r.e.RemapAnchors(p, dead)
		total := 0
		for _, n := range r.dir.AliveNodes() {
			total += r.e.ReconfigureNode(p, n, dead)
		}
		if total == 0 {
			t.Error("reconfiguration re-created no copies")
		}
	})
	for _, c := range []struct {
		item proto.ItemID
		want uint64
	}{{100, 5}, {101, 7}} {
		ck1, ck2 := r.ckPair(c.item)
		if ck1 == proto.None || ck2 == proto.None || ck1 == ck2 {
			t.Fatalf("item %d: CK pair = (%v,%v) after reconfiguration", c.item, ck1, ck2)
		}
		if ck1 == deadNode || ck2 == deadNode {
			t.Fatalf("item %d: CK copy on the dead node", c.item)
		}
		if v := r.ams[ck1].Slot(c.item).Value; v != c.want {
			t.Fatalf("item %d: value = %d, want %d", c.item, v, c.want)
		}
	}
	// The machine keeps working without the dead node.
	r.run(func(p *sim.Process) {
		if got := r.e.ReadItem(p, (deadNode+1)%16, 100); got != 5 {
			t.Errorf("post-reconfiguration read = %d, want 5", got)
		}
		r.e.WriteItem(p, (deadNode+2)%16, 100, 77)
	})
}

func TestAnchorFramesReserved(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) { r.e.WriteItem(p, 5, 100, 1) })
	// Four anchors: the first toucher and its three ring successors.
	page := r.arch.PageOf(100)
	pinned := 0
	for n := range r.ams {
		if r.ams[n].Irreplaceable(page) {
			pinned++
		}
	}
	if pinned != 4 {
		t.Fatalf("irreplaceable frames = %d, want 4", pinned)
	}
	if !r.ams[5].Irreplaceable(page) {
		t.Fatal("first toucher's frame not pinned")
	}
}

func TestStandardProtocolSingleAnchor(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	r.run(func(p *sim.Process) { r.e.WriteItem(p, 5, 100, 1) })
	page := r.arch.PageOf(100)
	pinned := 0
	for n := range r.ams {
		if r.ams[n].Irreplaceable(page) {
			pinned++
		}
	}
	if pinned != 1 {
		t.Fatalf("irreplaceable frames = %d, want 1 (KSR1-style)", pinned)
	}
}

func TestInjectionRingSkipsOccupiedSlots(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) {
		r.e.WriteItem(p, 0, 100, 5)
		r.establish(p)
		// Node 0 holds SharedCK1; its ring successor (node 1) holds the
		// CK2 copy or not — find the partner and make sure an injection
		// from the partner's predecessor cannot land on a CK holder.
		ck1, ck2 := r.ckPair(100)
		if ck1 != 0 {
			t.Fatalf("ck1 = %v", ck1)
		}
		// Force node 0 to push out its CK1 (write on Shared-CK): the
		// ring walk starts at node 1. Wherever it lands, it must not be
		// a node already holding a copy of item 100.
		r.e.WriteItem(p, 0, 100, 6)
		newCK1 := proto.None
		for n := range r.ams {
			if r.ams[n].State(100) == proto.InvCK1 {
				newCK1 = proto.NodeID(n)
			}
		}
		if newCK1 == proto.None {
			t.Fatal("CK1 copy lost")
		}
		if newCK1 == ck2 {
			t.Fatal("CK1 landed on the CK2 holder")
		}
	})
}

func TestConcurrentTransactionsSerialisePerItem(t *testing.T) {
	r := newRig(t, 16, Standard, Options{})
	const writers = 8
	values := make(map[uint64]bool)
	done := 0
	for i := 0; i < writers; i++ {
		i := i
		r.eng.Spawn("writer", func(p *sim.Process) {
			r.e.WriteItem(p, proto.NodeID(i), 100, uint64(i+1))
			done++
		})
	}
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != writers {
		t.Fatalf("completed = %d", done)
	}
	// Exactly one exclusive copy must remain.
	owners := 0
	for n := range r.ams {
		st := r.ams[n].State(100)
		if st == proto.Exclusive || st == proto.MasterShared {
			owners++
			values[r.ams[n].Slot(100).Value] = true
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d, want 1", owners)
	}
	if r.e.LockedItems() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestCommitScanCostFormula(t *testing.T) {
	r := newRig(t, 16, ECP, Options{})
	r.run(func(p *sim.Process) { r.e.WriteItem(p, 0, 100, 1) })
	frames := int64(r.ams[0].AllocatedFrames())
	want := frames * (1 + 128) / 4
	if got := r.e.CommitScanCost(0); got != want {
		t.Fatalf("commit cost = %d, want %d", got, want)
	}
}

package coherence

import (
	"fmt"

	"coma/internal/mesh"
	"coma/internal/proto"
	"coma/internal/sim"
)

// homeRequest handles a read or write request arriving at the item's home
// node: it consults the localisation pointer and either grants a cold
// first touch or forwards the request to the current owner.
func (e *Engine) homeRequest(p *sim.Process, h proto.NodeID, m mesh.Message) {
	e.useController(p, h, e.arch.DirLookup)
	entry := e.dir.Lookup(m.Item)
	if entry == nil || entry.Owner == proto.None {
		// The item has never been written: it is initialised-background
		// memory (the paper measures the parallel phase of applications
		// whose data was initialised earlier). Reads receive Shared
		// zero-filled copies tracked in the sharing set; the first write
		// invalidates them and creates the master. The initiator holds
		// the item lock, so updating the entry here is race-free.
		entry = e.dir.Ensure(m.Item)
		acks := 0
		if m.Kind == proto.MsgWriteReq {
			entry.Sharers.ForEach(func(s proto.NodeID) {
				if s == m.Requester {
					return
				}
				acks++
				e.net.Send(mesh.Message{
					Kind:      proto.MsgInvalidate,
					Src:       h,
					Dst:       s,
					Item:      m.Item,
					Requester: m.Requester,
					Txn:       m.Txn,
				})
			})
			entry.Sharers.Clear()
			entry.Owner = m.Requester
		} else {
			entry.Sharers.Add(m.Requester)
		}
		e.net.Send(mesh.Message{
			Kind:  proto.MsgColdGrant,
			Src:   h,
			Dst:   m.Requester,
			Item:  m.Item,
			Arg:   int64(acks),
			Reply: m.Token,
			Txn:   m.Txn,
		})
		return
	}
	fwd := proto.MsgReadFwd
	if m.Kind == proto.MsgWriteReq {
		fwd = proto.MsgWriteFwd
	}
	e.net.Send(mesh.Message{
		Kind:      fwd,
		Src:       h,
		Dst:       entry.Owner,
		Item:      m.Item,
		Requester: m.Requester,
		Token:     m.Token,
		Txn:       m.Txn,
	})
}

// ownerRead serves a forwarded read miss at the owning node: it reads the
// item, adds the requester to the sharing set and replies with data. An
// Exclusive owner downgrades to MasterShared; a Shared-CK1 owner serves
// the read unchanged (the ECP lets recovery copies serve misses).
func (e *Engine) ownerRead(p *sim.Process, o proto.NodeID, m mesh.Message) {
	e.useController(p, o, e.arch.MemTransfer)
	slot := e.ams[o].Slot(m.Item)
	switch slot.State {
	case proto.Exclusive:
		e.ams[o].SetState(m.Item, proto.MasterShared)
		e.cacheOps.DowngradeItem(o, m.Item)
	case proto.MasterShared, proto.SharedCK1:
		// Serve as-is.
	default:
		panic(fmt.Sprintf("coherence: node %v asked to serve read of item %d in %v",
			o, m.Item, slot.State))
	}
	entry := e.dir.Lookup(m.Item)
	entry.Sharers.Add(m.Requester)
	e.net.Send(mesh.Message{
		Kind:  proto.MsgDataReply,
		Src:   o,
		Dst:   m.Requester,
		Item:  m.Item,
		Value: slot.Value,
		State: proto.Shared,
		Reply: m.Token,
		Txn:   m.Txn,
	})
}

// ownerWrite serves a forwarded write miss at the owning node: it
// invalidates every sharer (they acknowledge directly to the requester),
// hands data and ownership to the requester, and — under the ECP, when
// the item was unmodified since the last recovery point — downgrades the
// Shared-CK pair to Inv-CK instead of destroying it.
func (e *Engine) ownerWrite(p *sim.Process, o proto.NodeID, m mesh.Message) {
	e.useController(p, o, e.arch.MemTransfer)
	slot := e.ams[o].Slot(m.Item)
	entry := e.dir.Lookup(m.Item)
	acks := 0
	entry.Sharers.ForEach(func(s proto.NodeID) {
		if s == m.Requester {
			return
		}
		acks++
		e.net.Send(mesh.Message{
			Kind:      proto.MsgInvalidate,
			Src:       o,
			Dst:       s,
			Item:      m.Item,
			Requester: m.Requester,
			Txn:       m.Txn,
		})
	})
	entry.Sharers.Clear()

	switch slot.State {
	case proto.Exclusive, proto.MasterShared:
		// The standard protocol destroys the old master after the data
		// moves.
		e.ams[o].SetState(m.Item, proto.Invalid)
		e.cacheOps.InvalidateItem(o, m.Item)
	case proto.SharedCK1:
		// ECP §3.2: the two Shared-CK copies become Inv-CK and are kept
		// for a possible recovery.
		e.ams[o].SetState(m.Item, proto.InvCK1)
		e.cacheOps.InvalidateItem(o, m.Item)
		if slot.Partner == proto.None {
			panic(fmt.Sprintf("coherence: Shared-CK1 of item %d on %v has no partner", m.Item, o))
		}
		if slot.Partner == m.Requester {
			panic(fmt.Sprintf("coherence: requester %v still holds the CK2 copy of item %d",
				m.Requester, m.Item))
		}
		acks++
		e.net.Send(mesh.Message{
			Kind:      proto.MsgInvalidate,
			Src:       o,
			Dst:       slot.Partner,
			Item:      m.Item,
			Requester: m.Requester,
			Txn:       m.Txn,
		})
	default:
		panic(fmt.Sprintf("coherence: node %v asked to serve write of item %d in %v",
			o, m.Item, slot.State))
	}

	entry.Owner = m.Requester
	// Localisation-pointer update: state is already consistent (the
	// simulator mutates under the item lock); the message carries timing.
	if h := e.dir.Home(m.Item); h != o && h != m.Requester {
		e.net.Send(mesh.Message{Kind: proto.MsgHomeUpdate, Src: o, Dst: h, Item: m.Item, Txn: m.Txn})
	}

	e.net.Send(mesh.Message{
		Kind:  proto.MsgDataReply,
		Src:   o,
		Dst:   m.Requester,
		Item:  m.Item,
		Value: slot.Value,
		State: proto.Exclusive,
		Arg:   int64(acks),
		Reply: m.Token,
		Txn:   m.Txn,
	})
}

// handleInvalidate processes an invalidation at a node holding a Shared
// copy (drop it) or the Shared-CK2 copy (downgrade to Inv-CK2), then
// acknowledges to the requester.
func (e *Engine) handleInvalidate(p *sim.Process, n proto.NodeID, m mesh.Message) {
	e.useController(p, n, e.arch.AMAccess)
	e.counters[n].InvalidationsIn++
	switch st := e.ams[n].State(m.Item); st {
	case proto.Shared:
		e.ams[n].SetState(m.Item, proto.Invalid)
	case proto.SharedCK2:
		e.ams[n].SetState(m.Item, proto.InvCK2)
	case proto.Invalid:
		// The copy was dropped (frame eviction or injection overwrite)
		// while the invalidation was in flight; just acknowledge.
	default:
		panic(fmt.Sprintf("coherence: node %v invalidating item %d in %v", n, m.Item, st))
	}
	e.cacheOps.InvalidateItem(n, m.Item)
	e.net.Send(mesh.Message{
		Kind: proto.MsgInvalidateAck,
		Src:  n,
		Dst:  m.Requester,
		Item: m.Item,
		Txn:  m.Txn,
	})
}

// handlePreCommitUpgrade turns a local Shared copy into the PreCommit2
// recovery copy of the establishment in progress — the paper's
// replication-reuse optimisation: no data transfer happens.
func (e *Engine) handlePreCommitUpgrade(p *sim.Process, n proto.NodeID, m mesh.Message) {
	e.useController(p, n, e.arch.AMAccess)
	if st := e.ams[n].State(m.Item); st != proto.Shared {
		panic(fmt.Sprintf("coherence: pre-commit upgrade of item %d on %v in %v", m.Item, n, st))
	}
	e.ams[n].SetState(m.Item, proto.PreCommit2)
	e.ams[n].SetPartner(m.Item, m.Src)
	e.net.Send(mesh.Message{
		Kind:  proto.MsgPreCommitUpgradeAck,
		Src:   n,
		Dst:   m.Src,
		Item:  m.Item,
		Reply: m.Token,
		Txn:   m.Txn,
	})
}

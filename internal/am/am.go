// Package am models a node's Attraction Memory: the per-node memory of a
// COMA, organised as a large set-associative cache of the shared address
// space. Allocation happens at page granularity (16 KB pages, 16-way
// associative in the paper's configuration) while coherence state, data
// and recovery-pair bookkeeping are kept per item (128 bytes).
//
// Frames can be marked irreplaceable ("anchor" frames): the paper
// statically allocates four irreplaceable pages per data page so that
// injected copies and recovery replication always find room.
package am

import (
	"fmt"
	"sort"

	"coma/internal/config"
	"coma/internal/proto"
)

// Slot is the per-item metadata held in a frame.
type Slot struct {
	State proto.State
	// Value is the simulator's model of the item's 128 bytes: a 64-bit
	// stamp checked against the machine oracle.
	Value uint64
	// Partner is the node holding the other copy of a recovery pair;
	// meaningful only while State.Recovery() is true.
	Partner proto.NodeID
}

type frame struct {
	page          proto.PageID
	valid         bool
	irreplaceable bool
	// evicting marks a frame whose pinned items are being injected away
	// by an in-flight replacement; it must not accept new copies.
	evicting bool
	lastUse  int64
	slots    []Slot
	// modified counts slots in Exclusive or MasterShared state; frames
	// with modified > 0 form the paper's "modified-item tree", letting
	// the create phase find the next item to replicate in O(frames).
	modified int
}

// Stats counts attraction-memory events.
type Stats struct {
	// FramesAllocated is the cumulative number of frame allocations
	// (never decremented; Fig. 7 uses the peak concurrent value).
	FramesAllocated int64
	FramesDropped   int64
	PeakFrames      int
}

// AM is one node's attraction memory.
type AM struct {
	arch config.Arch
	node proto.NodeID
	sets [][]frame
	// index maps an allocated page to its frame for O(1) lookup.
	index map[proto.PageID]*frame

	allocated int
	stats     Stats

	// stateHook, when set, is called on every state change made through
	// Set/SetState (the protocol engine's choke points). Bulk scans via
	// ForEachAllocated deliberately bypass it: the commit/recovery scans
	// flip every slot at once and are observed as phase spans instead.
	stateHook func(item proto.ItemID, from, to proto.State)
}

// SetStateHook installs the state-transition hook (nil disables it).
func (a *AM) SetStateHook(fn func(item proto.ItemID, from, to proto.State)) {
	a.stateHook = fn
}

// New builds an empty attraction memory for the node.
func New(arch config.Arch, node proto.NodeID) *AM {
	a := &AM{
		arch:  arch,
		node:  node,
		sets:  make([][]frame, arch.AMSets()),
		index: make(map[proto.PageID]*frame),
	}
	for i := range a.sets {
		ways := make([]frame, arch.AMWays)
		for w := range ways {
			ways[w].slots = make([]Slot, arch.ItemsPerPage())
		}
		a.sets[i] = ways
	}
	return a
}

// Node returns the owning node.
func (a *AM) Node() proto.NodeID { return a.node }

// Stats returns a copy of the accumulated statistics.
func (a *AM) Stats() Stats { return a.stats }

// AllocatedFrames returns the number of currently allocated page frames.
func (a *AM) AllocatedFrames() int { return a.allocated }

func (a *AM) setIndex(page proto.PageID) int {
	return int(page) % len(a.sets)
}

func (a *AM) frameFor(item proto.ItemID) *frame {
	return a.index[a.arch.PageOf(item)]
}

func (a *AM) slotFor(item proto.ItemID) *Slot {
	f := a.frameFor(item)
	if f == nil {
		return nil
	}
	return &f.slots[a.arch.ItemIndexInPage(item)]
}

// HasFrame reports whether the page is allocated.
func (a *AM) HasFrame(page proto.PageID) bool { return a.index[page] != nil }

// Irreplaceable reports whether the page's frame is an anchor frame.
func (a *AM) Irreplaceable(page proto.PageID) bool {
	f := a.index[page]
	return f != nil && f.irreplaceable
}

// Evicting reports whether the page's frame is mid-replacement.
func (a *AM) Evicting(page proto.PageID) bool {
	f := a.index[page]
	return f != nil && f.evicting
}

// SetEvicting marks or unmarks a frame as mid-replacement. The frame
// must be allocated.
func (a *AM) SetEvicting(page proto.PageID, v bool) {
	f := a.index[page]
	if f == nil {
		panic(fmt.Sprintf("am: SetEvicting(%d) on node %v without a frame", page, a.node))
	}
	f.evicting = v
}

// Touch updates the frame's LRU stamp.
func (a *AM) Touch(page proto.PageID, now int64) {
	if f := a.index[page]; f != nil {
		f.lastUse = now
	}
}

// State returns the item's coherence state (Invalid when the page is not
// allocated).
func (a *AM) State(item proto.ItemID) proto.State {
	s := a.slotFor(item)
	if s == nil {
		return proto.Invalid
	}
	return s.State
}

// Slot returns a copy of the item's slot (zero Slot when unallocated).
func (a *AM) Slot(item proto.ItemID) Slot {
	s := a.slotFor(item)
	if s == nil {
		return Slot{State: proto.Invalid, Partner: proto.None}
	}
	return *s
}

// Set installs state, value and partner for an item. The page frame must
// be allocated. Modified-item bookkeeping is maintained.
func (a *AM) Set(item proto.ItemID, slot Slot) {
	f := a.frameFor(item)
	if f == nil {
		panic(fmt.Sprintf("am: Set(%d) on node %v without a frame for page %d",
			item, a.node, a.arch.PageOf(item)))
	}
	idx := a.arch.ItemIndexInPage(item)
	old := &f.slots[idx]
	if old.State.Modified() {
		f.modified--
	}
	if slot.State.Modified() {
		f.modified++
	}
	if a.stateHook != nil && old.State != slot.State {
		a.stateHook(item, old.State, slot.State)
	}
	*old = slot
}

// SetState changes only the coherence state, preserving value and partner.
func (a *AM) SetState(item proto.ItemID, st proto.State) {
	s := a.slotFor(item)
	if s == nil {
		panic(fmt.Sprintf("am: SetState(%d) on node %v without a frame", item, a.node))
	}
	f := a.frameFor(item)
	if s.State.Modified() {
		f.modified--
	}
	if st.Modified() {
		f.modified++
	}
	if a.stateHook != nil && s.State != st {
		a.stateHook(item, s.State, st)
	}
	s.State = st
}

// SetPartner records the recovery-pair partner for an item.
func (a *AM) SetPartner(item proto.ItemID, partner proto.NodeID) {
	s := a.slotFor(item)
	if s == nil {
		panic(fmt.Sprintf("am: SetPartner(%d) on node %v without a frame", item, a.node))
	}
	s.Partner = partner
}

// FreeWay reports whether the page's set has an unallocated way.
func (a *AM) FreeWay(page proto.PageID) bool {
	set := a.sets[a.setIndex(page)]
	for w := range set {
		if !set[w].valid {
			return true
		}
	}
	return false
}

// AllocFrame allocates a frame for the page in a free way. It panics if
// the page is already allocated or no way is free (callers must first
// evict via VictimPage/DropFrame).
func (a *AM) AllocFrame(page proto.PageID, irreplaceable bool, now int64) {
	if a.index[page] != nil {
		panic(fmt.Sprintf("am: page %d already allocated on node %v", page, a.node))
	}
	set := a.sets[a.setIndex(page)]
	for w := range set {
		f := &set[w]
		if f.valid {
			continue
		}
		f.valid = true
		f.page = page
		f.irreplaceable = irreplaceable
		f.lastUse = now
		f.modified = 0
		for i := range f.slots {
			f.slots[i] = Slot{State: proto.Invalid, Partner: proto.None}
		}
		a.index[page] = f
		a.allocated++
		a.stats.FramesAllocated++
		if a.allocated > a.stats.PeakFrames {
			a.stats.PeakFrames = a.allocated
		}
		return
	}
	panic(fmt.Sprintf("am: AllocFrame(%d) on node %v with no free way", page, a.node))
}

// MarkIrreplaceable pins an already-allocated frame (a page that becomes
// an anchor after the fact, e.g. during reconfiguration).
func (a *AM) MarkIrreplaceable(page proto.PageID) {
	f := a.index[page]
	if f == nil {
		panic(fmt.Sprintf("am: MarkIrreplaceable(%d) on node %v without a frame", page, a.node))
	}
	f.irreplaceable = true
}

// VictimPage picks the least-recently-used replaceable frame in the
// target page's set. ok is false when every way is irreplaceable.
func (a *AM) VictimPage(page proto.PageID) (victim proto.PageID, ok bool) {
	v := a.VictimPages(page)
	if len(v) == 0 {
		return proto.NoPage, false
	}
	return v[0], true
}

// VictimPages returns every replaceable (not irreplaceable, not already
// mid-eviction) frame in the target page's set, least recently used
// first, so callers can skip candidates busy with in-flight
// transactions.
func (a *AM) VictimPages(page proto.PageID) []proto.PageID {
	set := a.sets[a.setIndex(page)]
	cand := make([]*frame, 0, len(set))
	for w := range set {
		f := &set[w]
		if !f.valid || f.irreplaceable || f.evicting {
			continue
		}
		cand = append(cand, f)
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].lastUse != cand[j].lastUse {
			return cand[i].lastUse < cand[j].lastUse
		}
		return cand[i].page < cand[j].page
	})
	out := make([]proto.PageID, len(cand))
	for i, f := range cand {
		out[i] = f.page
	}
	return out
}

// PinnedItems returns the items of a frame whose state forbids silent
// replacement (masters and recovery copies): the caller must inject them
// before DropFrame.
func (a *AM) PinnedItems(page proto.PageID) []proto.ItemID {
	f := a.index[page]
	if f == nil {
		return nil
	}
	var out []proto.ItemID
	first := a.arch.FirstItem(page)
	for i := range f.slots {
		if !f.slots[i].State.Replaceable() {
			out = append(out, first+proto.ItemID(i))
		}
	}
	return out
}

// DropFrame deallocates the page's frame. Every item must be in a
// replaceable state (Invalid or Shared); it panics otherwise.
func (a *AM) DropFrame(page proto.PageID) {
	f := a.index[page]
	if f == nil {
		panic(fmt.Sprintf("am: DropFrame(%d) on node %v without a frame", page, a.node))
	}
	for i := range f.slots {
		if !f.slots[i].State.Replaceable() {
			panic(fmt.Sprintf("am: DropFrame(%d) on node %v would lose item %d in %v",
				page, a.node, int(a.arch.FirstItem(page))+i, f.slots[i].State))
		}
	}
	f.valid = false
	f.irreplaceable = false
	f.evicting = false
	delete(a.index, page)
	a.allocated--
	a.stats.FramesDropped++
}

// ModifiedItems appends to dst the items currently in a Modified state
// (Exclusive or MasterShared) — the work list of the checkpoint create
// phase. The modified-item counters make the scan proportional to the
// number of frames plus the number of modified items, mirroring the
// paper's tree of modified-line indicators.
func (a *AM) ModifiedItems(dst []proto.ItemID) []proto.ItemID {
	for si := range a.sets {
		for w := range a.sets[si] {
			f := &a.sets[si][w]
			if !f.valid || f.modified == 0 {
				continue
			}
			first := a.arch.FirstItem(f.page)
			for i := range f.slots {
				if f.slots[i].State.Modified() {
					dst = append(dst, first+proto.ItemID(i))
				}
			}
		}
	}
	return dst
}

// ForEachAllocated visits every slot of every allocated frame in
// deterministic order. fn may mutate state via the AM's setters but must
// not allocate or drop frames.
func (a *AM) ForEachAllocated(fn func(item proto.ItemID, slot *Slot)) {
	for si := range a.sets {
		for w := range a.sets[si] {
			f := &a.sets[si][w]
			if !f.valid {
				continue
			}
			first := a.arch.FirstItem(f.page)
			for i := range f.slots {
				before := f.slots[i].State.Modified()
				fn(first+proto.ItemID(i), &f.slots[i])
				after := f.slots[i].State.Modified()
				if before != after {
					if after {
						f.modified++
					} else {
						f.modified--
					}
				}
			}
		}
	}
}

// AllocatedPages returns the allocated page IDs in deterministic order.
func (a *AM) AllocatedPages() []proto.PageID {
	out := make([]proto.PageID, 0, a.allocated)
	for si := range a.sets {
		for w := range a.sets[si] {
			if a.sets[si][w].valid {
				out = append(out, a.sets[si][w].page)
			}
		}
	}
	return out
}

// StateCounts tallies slots by state across all allocated frames (used by
// the invariant checker and memory-overhead reporting).
func (a *AM) StateCounts() map[proto.State]int {
	counts := make(map[proto.State]int)
	a.ForEachAllocated(func(_ proto.ItemID, s *Slot) {
		counts[s.State]++
	})
	return counts
}

// Clear wipes the whole memory (a transient node failure loses AM
// contents; the node rejoins empty).
func (a *AM) Clear() {
	for si := range a.sets {
		for w := range a.sets[si] {
			f := &a.sets[si][w]
			if f.valid {
				a.stats.FramesDropped++
			}
			f.valid = false
			f.irreplaceable = false
			f.evicting = false
			f.modified = 0
			for i := range f.slots {
				f.slots[i] = Slot{State: proto.Invalid, Partner: proto.None}
			}
		}
	}
	a.index = make(map[proto.PageID]*frame)
	a.allocated = 0
}

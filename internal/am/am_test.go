package am

import (
	"testing"
	"testing/quick"

	"coma/internal/config"
	"coma/internal/proto"
)

func newAM() (*AM, config.Arch) {
	arch := config.KSR1(16)
	return New(arch, 3), arch
}

func TestUnallocatedIsInvalid(t *testing.T) {
	a, _ := newAM()
	if st := a.State(42); st != proto.Invalid {
		t.Fatalf("state = %v, want Invalid", st)
	}
	if a.HasFrame(0) {
		t.Fatal("frame reported for untouched page")
	}
	slot := a.Slot(42)
	if slot.State != proto.Invalid || slot.Partner != proto.None {
		t.Fatalf("slot = %+v", slot)
	}
}

func TestAllocSetAndRead(t *testing.T) {
	a, arch := newAM()
	a.AllocFrame(0, false, 1)
	item := proto.ItemID(5)
	a.Set(item, Slot{State: proto.Exclusive, Value: 99, Partner: proto.None})
	if st := a.State(item); st != proto.Exclusive {
		t.Fatalf("state = %v", st)
	}
	if v := a.Slot(item).Value; v != 99 {
		t.Fatalf("value = %d", v)
	}
	// Other items of the page are Invalid ("contents filled as needed,
	// one item at a time").
	if st := a.State(item + 1); st != proto.Invalid {
		t.Fatalf("neighbour state = %v", st)
	}
	if a.AllocatedFrames() != 1 {
		t.Fatalf("allocated = %d", a.AllocatedFrames())
	}
	_ = arch
}

func TestSetWithoutFramePanics(t *testing.T) {
	a, _ := newAM()
	defer func() {
		if recover() == nil {
			t.Error("Set without frame did not panic")
		}
	}()
	a.Set(0, Slot{State: proto.Shared})
}

func TestDoubleAllocPanics(t *testing.T) {
	a, _ := newAM()
	a.AllocFrame(7, false, 1)
	defer func() {
		if recover() == nil {
			t.Error("double alloc did not panic")
		}
	}()
	a.AllocFrame(7, false, 2)
}

func TestModifiedItemsTracking(t *testing.T) {
	a, _ := newAM()
	a.AllocFrame(0, false, 1)
	a.AllocFrame(1, false, 1)
	a.Set(1, Slot{State: proto.Exclusive, Value: 1})
	a.Set(2, Slot{State: proto.MasterShared, Value: 2})
	a.Set(130, Slot{State: proto.Shared, Value: 3})
	got := a.ModifiedItems(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("modified = %v, want [1 2]", got)
	}
	// Downgrades must leave the tree.
	a.SetState(1, proto.PreCommit1)
	got = a.ModifiedItems(nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("modified after downgrade = %v, want [2]", got)
	}
}

func TestModifiedTrackingThroughForEach(t *testing.T) {
	a, _ := newAM()
	a.AllocFrame(0, false, 1)
	a.Set(0, Slot{State: proto.Exclusive, Value: 1})
	a.ForEachAllocated(func(item proto.ItemID, s *Slot) {
		if s.State == proto.Exclusive {
			s.State = proto.Invalid
		}
	})
	if got := a.ModifiedItems(nil); len(got) != 0 {
		t.Fatalf("modified = %v after ForEach downgrade", got)
	}
}

func TestVictimSelectionSkipsIrreplaceable(t *testing.T) {
	arch := config.KSR1(16)
	a := New(arch, 0)
	sets := arch.AMSets()
	// Three pages in the same set; the middle one is pinned.
	p0, p1, p2 := proto.PageID(0), proto.PageID(sets), proto.PageID(2*sets)
	a.AllocFrame(p0, false, 10)
	a.AllocFrame(p1, true, 5)
	a.AllocFrame(p2, false, 20)
	v, ok := a.VictimPage(proto.PageID(3 * sets))
	if !ok || v != p0 {
		t.Fatalf("victim = (%v,%v), want (page0,true) — oldest replaceable", v, ok)
	}
	a.Touch(p0, 30)
	v, _ = a.VictimPage(proto.PageID(3 * sets))
	if v != p2 {
		t.Fatalf("victim after touch = %v, want page2", v)
	}
}

func TestVictimNoneWhenAllPinned(t *testing.T) {
	arch := config.KSR1(16)
	a := New(arch, 0)
	sets := arch.AMSets()
	for w := 0; w < arch.AMWays; w++ {
		a.AllocFrame(proto.PageID(w*sets), true, int64(w))
	}
	if a.FreeWay(proto.PageID(99 * sets)) {
		t.Fatal("full set reported a free way")
	}
	if _, ok := a.VictimPage(proto.PageID(99 * sets)); ok {
		t.Fatal("victim found among irreplaceable frames")
	}
}

func TestPinnedItemsAndDropFrame(t *testing.T) {
	a, arch := newAM()
	a.AllocFrame(0, false, 1)
	a.Set(0, Slot{State: proto.Shared})
	a.Set(1, Slot{State: proto.MasterShared})
	a.Set(2, Slot{State: proto.InvCK1, Partner: 4})
	pinned := a.PinnedItems(0)
	if len(pinned) != 2 || pinned[0] != 1 || pinned[1] != 2 {
		t.Fatalf("pinned = %v, want [1 2]", pinned)
	}
	// Dropping with pinned items must panic (protocol bug guard).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DropFrame with pinned items did not panic")
			}
		}()
		a.DropFrame(0)
	}()
	a.SetState(1, proto.Shared)
	a.SetState(2, proto.Invalid)
	a.DropFrame(0)
	if a.HasFrame(0) || a.AllocatedFrames() != 0 {
		t.Fatal("frame survived drop")
	}
	_ = arch
}

func TestStateCounts(t *testing.T) {
	a, _ := newAM()
	a.AllocFrame(0, false, 1)
	a.Set(0, Slot{State: proto.SharedCK1})
	a.Set(1, Slot{State: proto.SharedCK2})
	a.Set(2, Slot{State: proto.Exclusive})
	counts := a.StateCounts()
	if counts[proto.SharedCK1] != 1 || counts[proto.SharedCK2] != 1 || counts[proto.Exclusive] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[proto.Invalid] != 125 {
		t.Fatalf("invalid slots = %d, want 125 (rest of the page)", counts[proto.Invalid])
	}
}

func TestClearLosesEverything(t *testing.T) {
	a, _ := newAM()
	a.AllocFrame(0, true, 1)
	a.Set(0, Slot{State: proto.Exclusive, Value: 7})
	a.Clear()
	if a.AllocatedFrames() != 0 || a.State(0) != proto.Invalid {
		t.Fatal("Clear left state behind")
	}
	// The AM must be reusable after a transient failure.
	a.AllocFrame(0, false, 2)
	a.Set(0, Slot{State: proto.Shared, Value: 1})
	if a.State(0) != proto.Shared {
		t.Fatal("AM unusable after Clear")
	}
}

func TestPeakFrameAccounting(t *testing.T) {
	a, arch := newAM()
	sets := arch.AMSets()
	for i := 0; i < 5; i++ {
		a.AllocFrame(proto.PageID(i*sets), false, int64(i))
	}
	a.DropFrame(proto.PageID(0))
	if a.Stats().PeakFrames != 5 {
		t.Fatalf("peak = %d, want 5", a.Stats().PeakFrames)
	}
	if a.AllocatedFrames() != 4 {
		t.Fatalf("allocated = %d, want 4", a.AllocatedFrames())
	}
}

// Property: Set then Slot round-trips arbitrary slot contents for
// arbitrary in-page items.
func TestSlotRoundTripProperty(t *testing.T) {
	arch := config.KSR1(16)
	f := func(itemIdx uint8, value uint64, partner uint8, stRaw uint8) bool {
		a := New(arch, 1)
		a.AllocFrame(0, false, 1)
		item := proto.ItemID(int(itemIdx) % arch.ItemsPerPage())
		st := proto.State(stRaw % 10)
		want := Slot{State: st, Value: value, Partner: proto.NodeID(partner % 16)}
		a.Set(item, want)
		got := a.Slot(item)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatedPagesDeterministicOrder(t *testing.T) {
	a, arch := newAM()
	sets := arch.AMSets()
	pages := []proto.PageID{proto.PageID(2 * sets), proto.PageID(1), proto.PageID(sets)}
	for i, p := range pages {
		a.AllocFrame(p, false, int64(i))
	}
	first := a.AllocatedPages()
	second := a.AllocatedPages()
	if len(first) != 3 {
		t.Fatalf("pages = %v", first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("AllocatedPages order not stable")
		}
	}
}

package am

import (
	"testing"

	"coma/internal/config"
	"coma/internal/proto"
)

func BenchmarkSlotAccess(b *testing.B) {
	a := New(config.KSR1(16), 0)
	a.AllocFrame(0, false, 0)
	a.Set(5, Slot{State: proto.Exclusive, Value: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Slot(5)
	}
}

func BenchmarkModifiedItemsScan(b *testing.B) {
	arch := config.KSR1(16)
	a := New(arch, 0)
	// 64 consecutive pages spread across the sets, one modified item each.
	for f := 0; f < 64; f++ {
		a.AllocFrame(proto.PageID(f), false, int64(f))
		a.Set(arch.FirstItem(proto.PageID(f)), Slot{State: proto.Exclusive})
	}
	buf := make([]proto.ItemID, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.ModifiedItems(buf[:0])
	}
}

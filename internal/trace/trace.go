// Package trace records and replays processor reference streams in a
// compact binary format. Replay makes experiments repeatable at the
// reference level: the exact same stream can drive the standard protocol
// and the ECP (the paper compares the two simulators on identical traced
// applications), or be archived and inspected.
//
// Format: magic "COMA", format version, then one varint-encoded record
// per reference — a kind tag, and for memory references a zig-zag address
// delta from the previous address of the same class plus a shared flag;
// instruction bursts carry their length. The whole stream is
// gzip-compressed.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"coma/internal/workload"
)

const magic = "COMA"

// version of the on-disk format.
const version = 1

const (
	tagInstr = iota
	tagRead
	tagWrite
	tagBarrier
	tagEnd
	flagShared = 1 << 3
	tagBits    = 3
)

// Writer encodes a reference stream.
type Writer struct {
	gz       *gzip.Writer
	w        *bufio.Writer
	buf      [binary.MaxVarintLen64]byte
	lastAddr uint64
	count    int64
	closed   bool
}

// NewWriter starts a trace on w. Close must be called to flush.
func NewWriter(w io.Writer) (*Writer, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	header := make([]byte, 0, 8)
	header = append(header, magic...)
	header = append(header, version)
	if _, err := bw.Write(header); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{gz: gz, w: bw}, nil
}

func (t *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Append encodes one reference.
func (t *Writer) Append(r workload.Ref) error {
	if t.closed {
		return errors.New("trace: append after Close")
	}
	t.count++
	switch r.Kind {
	case workload.Instr:
		if err := t.putUvarint(tagInstr); err != nil {
			return err
		}
		return t.putUvarint(uint64(r.N))
	case workload.Read, workload.Write:
		tag := uint64(tagRead)
		if r.Kind == workload.Write {
			tag = tagWrite
		}
		if r.Shared {
			tag |= flagShared
		}
		if err := t.putUvarint(tag); err != nil {
			return err
		}
		delta := int64(r.Addr) - int64(t.lastAddr)
		t.lastAddr = r.Addr
		n := binary.PutVarint(t.buf[:], delta)
		_, err := t.w.Write(t.buf[:n])
		return err
	case workload.Barrier:
		return t.putUvarint(tagBarrier)
	case workload.End:
		return t.putUvarint(tagEnd)
	}
	return fmt.Errorf("trace: unknown reference kind %v", r.Kind)
}

// Count returns the number of references appended.
func (t *Writer) Count() int64 { return t.count }

// Close flushes and finalises the trace.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.w.Flush(); err != nil {
		return err
	}
	return t.gz.Close()
}

// Read decodes a whole trace into memory.
func Read(r io.Reader) ([]workload.Ref, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer gz.Close()
	br := bufio.NewReader(gz)
	header := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(header[:len(magic)]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if header[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", header[len(magic)])
	}
	var refs []workload.Ref
	var lastAddr uint64
	for {
		tag, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		shared := tag&flagShared != 0
		switch tag &^ flagShared {
		case tagInstr:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			refs = append(refs, workload.Ref{Kind: workload.Instr, N: int64(n)})
		case tagRead, tagWrite:
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			lastAddr = uint64(int64(lastAddr) + delta)
			kind := workload.Read
			if tag&^flagShared == tagWrite {
				kind = workload.Write
			}
			refs = append(refs, workload.Ref{Kind: kind, Addr: lastAddr, Shared: shared})
		case tagBarrier:
			refs = append(refs, workload.Ref{Kind: workload.Barrier})
		case tagEnd:
			refs = append(refs, workload.Ref{Kind: workload.End})
			return refs, nil
		default:
			return nil, fmt.Errorf("trace: unknown tag %d", tag)
		}
	}
}

// Record drains a generator into a trace writer (up to and including its
// End marker) and returns the reference count written.
func Record(gen workload.Generator, w io.Writer) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for {
		r := gen.Next()
		if err := tw.Append(r); err != nil {
			return tw.Count(), err
		}
		if r.Kind == workload.End {
			break
		}
	}
	return tw.Count(), tw.Close()
}

// Replay loads a trace as a workload generator (a Script over the decoded
// references; its snapshot is the stream position, so rollback works).
func Replay(name string, r io.Reader) (workload.Generator, error) {
	refs, err := Read(r)
	if err != nil {
		return nil, err
	}
	if len(refs) > 0 && refs[len(refs)-1].Kind == workload.End {
		refs = refs[:len(refs)-1] // Script appends its own End
	}
	return workload.NewScript(name, refs), nil
}

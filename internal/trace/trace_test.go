package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"coma/internal/workload"
)

func roundTrip(t *testing.T, refs []workload.Ref) []workload.Ref {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripBasic(t *testing.T) {
	refs := []workload.Ref{
		workload.I(100),
		workload.R(0x1000),
		workload.W(0x1008),
		{Kind: workload.Read, Addr: 1 << 30}, // private (unshared) read
		workload.B(),
		{Kind: workload.End},
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("decoded %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, kinds []uint8) bool {
		n := len(addrs)
		if len(kinds) < n {
			n = len(kinds)
		}
		refs := make([]workload.Ref, 0, n+1)
		for i := 0; i < n; i++ {
			addr := uint64(addrs[i]) &^ 7
			switch kinds[i] % 4 {
			case 0:
				refs = append(refs, workload.Ref{Kind: workload.Instr, N: int64(addrs[i] % 1000)})
			case 1:
				refs = append(refs, workload.Ref{Kind: workload.Read, Addr: addr, Shared: kinds[i]&8 != 0})
			case 2:
				refs = append(refs, workload.Ref{Kind: workload.Write, Addr: addr, Shared: kinds[i]&8 != 0})
			case 3:
				refs = append(refs, workload.Ref{Kind: workload.Barrier})
			}
		}
		refs = append(refs, workload.Ref{Kind: workload.End})
		got := roundTrip(t, refs)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndReplayGenerator(t *testing.T) {
	spec := workload.Water().Scale(0.0005)
	var buf bytes.Buffer
	count, err := Record(spec.NewApp(2, 8, 7), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("nothing recorded")
	}
	replay, err := Replay("water-trace", &buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := spec.NewApp(2, 8, 7)
	for i := 0; ; i++ {
		want := fresh.Next()
		got := replay.Next()
		if got != want {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, got, want)
		}
		if want.Kind == workload.End {
			break
		}
	}
}

func TestReplaySupportsRollback(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(workload.NewScript("s", []workload.Ref{
		workload.R(0), workload.W(8), workload.R(16),
	}), &buf); err != nil {
		t.Fatal(err)
	}
	g, err := Replay("s", &buf)
	if err != nil {
		t.Fatal(err)
	}
	g.Next()
	snap := g.Snapshot()
	second := g.Next()
	g.Restore(snap)
	if got := g.Next(); got != second {
		t.Fatalf("rollback replay = %+v, want %+v", got, second)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompressionIsEffective(t *testing.T) {
	spec := workload.Barnes().Scale(0.0005)
	var buf bytes.Buffer
	count, err := Record(spec.NewApp(0, 16, 1), &buf)
	if err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()) / float64(count)
	if perRef > 6 {
		t.Fatalf("trace uses %.1f bytes/ref; encoding regressed", perRef)
	}
}

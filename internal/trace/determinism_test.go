package trace

import (
	"bytes"
	"testing"

	"coma/internal/workload"
)

func detSpec() workload.Spec {
	return workload.Spec{
		Name:            "det",
		Instructions:    40_000,
		ReadFrac:        0.20,
		WriteFrac:       0.10,
		SharedReadFrac:  0.10,
		SharedWriteFrac: 0.05,
		SharedBytes:     64 << 10,
		PrivateBytes:    16 << 10,
		ReadOnlyFrac:    0.3,
		Locality:        0.4,
		HotBytes:        512,
		WindowBytes:     512,
		DriftInstr:      5_000,
		Barriers:        3,
	}
}

func recordRun(t *testing.T, spec workload.Spec, proc, procs int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Record(spec.NewApp(proc, procs, seed), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecordedTraceIsByteIdenticalAcrossRuns pins the strongest form of
// the determinism contract: two independent generator instances with the
// same spec and seed must serialise to byte-identical traces, not merely
// matching aggregate statistics.
func TestRecordedTraceIsByteIdenticalAcrossRuns(t *testing.T) {
	spec := detSpec()
	for proc := 0; proc < 3; proc++ {
		a := recordRun(t, spec, proc, 4, 77)
		b := recordRun(t, spec, proc, 4, 77)
		if !bytes.Equal(a, b) {
			t.Fatalf("proc %d: same seed produced different traces (%d vs %d bytes)",
				proc, len(a), len(b))
		}
		if len(a) == 0 {
			t.Fatalf("proc %d: empty trace", proc)
		}
	}
}

func TestRecordedTraceVariesWithSeedAndProc(t *testing.T) {
	spec := detSpec()
	base := recordRun(t, spec, 0, 4, 77)
	if other := recordRun(t, spec, 0, 4, 78); bytes.Equal(base, other) {
		t.Fatal("different seeds produced byte-identical traces")
	}
	if other := recordRun(t, spec, 1, 4, 77); bytes.Equal(base, other) {
		t.Fatal("different processors produced byte-identical traces")
	}
}

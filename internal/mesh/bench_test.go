package mesh

import (
	"testing"

	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/sim"
)

func BenchmarkSendDeliver(b *testing.B) {
	e := sim.New()
	n := New(e, config.KSR1(16))
	n.SetHandler(15, func(m Message) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 15})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

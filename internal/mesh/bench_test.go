package mesh

import (
	"testing"

	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/sim"
)

func BenchmarkSendDeliver(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	n := New(e, config.KSR1(16))
	n.SetHandler(15, func(m Message) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 15})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequestReplyWakes is the wake-heavy path of the coherence
// protocol: every node runs a requester process that sends a request
// carrying a future (Token), the destination handler sends the reply
// with the future attached, and delivery of the reply wakes the blocked
// requester. Each round is therefore two message deliveries plus one
// future completion and process wake per node.
func BenchmarkRequestReplyWakes(b *testing.B) {
	b.ReportAllocs()
	const nodes = 16
	e := sim.New()
	n := New(e, config.KSR1(nodes))
	for i := 0; i < nodes; i++ {
		node := proto.NodeID(i)
		n.SetHandler(node, func(m Message) {
			if m.Kind == proto.MsgReadReq {
				n.Send(Message{Kind: proto.MsgDataReply, Src: node, Dst: m.Src, Reply: m.Token})
			}
		})
	}
	rounds := b.N/nodes + 1
	for i := 0; i < nodes; i++ {
		src := proto.NodeID(i)
		dst := proto.NodeID((i + 5) % nodes)
		e.Spawn("requester", func(p *sim.Process) {
			for r := 0; r < rounds; r++ {
				f := sim.NewFuture[Message]()
				n.Send(Message{Kind: proto.MsgReadReq, Src: src, Dst: dst, Token: f})
				f.Await(p)
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

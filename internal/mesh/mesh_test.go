package mesh

import (
	"testing"
	"testing/quick"

	"coma/internal/config"
	"coma/internal/proto"
	"coma/internal/sim"
)

func newNet(nodes int) (*sim.Engine, *Network, config.Arch) {
	e := sim.New()
	arch := config.KSR1(nodes)
	return e, New(e, arch), arch
}

func TestHopsXY(t *testing.T) {
	_, n, _ := newNet(16) // 4x4
	cases := []struct {
		a, b proto.NodeID
		hops int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {3, 12, 6},
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.hops {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	_, n, _ := newNet(30) // 6x5
	f := func(a, b uint8) bool {
		na := proto.NodeID(int(a) % 30)
		nb := proto.NodeID(int(b) % 30)
		return n.Hops(na, nb) == n.Hops(nb, na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUncontendedLatencyFormula(t *testing.T) {
	e, n, arch := newNet(16)
	// Control message, 1 hop: NISend(4) + 4 + (2-1) + NIRecv(4) = 13.
	if got := n.UncontendedLatency(proto.MsgReadReq, 1); got != 13 {
		t.Errorf("ctrl 1-hop latency = %d, want 13", got)
	}
	// Data message, 1 hop: 4 + 4 + 33 + 4 = 45.
	if got := n.UncontendedLatency(proto.MsgDataReply, 1); got != 45 {
		t.Errorf("data 1-hop latency = %d, want 45", got)
	}
	// Data message, 2 hops: +4.
	if got := n.UncontendedLatency(proto.MsgDataReply, 2); got != 49 {
		t.Errorf("data 2-hop latency = %d, want 49", got)
	}

	// Live send must match the formula on an idle network.
	var deliveredAt int64 = -1
	n.SetHandler(1, func(m Message) { deliveredAt = e.Now() })
	n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := n.UncontendedLatency(proto.MsgDataReply, 1); deliveredAt != want {
		t.Errorf("delivered at %d, want %d", deliveredAt, want)
	}
	_ = arch
}

func TestBandwidthMatchesPaper(t *testing.T) {
	// 32-bit flit per 50ns cycle = 80 MB/s raw; the paper reports 76 MB/s
	// between two nodes (header overhead). Our data message moves 128
	// bytes of payload in 34 flit-cycles: 128B / (34 * 50ns) = 75.3 MB/s.
	arch := config.KSR1(16)
	flits := float64(arch.DataMsgFlits())
	cycleSec := 1.0 / float64(arch.ClockHz)
	mbps := 128.0 / (flits * cycleSec) / 1e6
	if mbps < 70 || mbps > 80 {
		t.Errorf("payload bandwidth = %.1f MB/s, want ~76", mbps)
	}
}

func TestLinkContentionSerialises(t *testing.T) {
	e, n, _ := newNet(16)
	var times []int64
	n.SetHandler(1, func(m Message) { times = append(times, e.Now()) })
	// Two data messages over the same link at the same time: the second
	// head waits for the first tail.
	n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 1})
	n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	if times[1] <= times[0] {
		t.Fatalf("second delivery %d not after first %d", times[1], times[0])
	}
	gap := times[1] - times[0]
	if gap < 30 {
		t.Errorf("contended gap = %d cycles, want >= one message serialisation", gap)
	}
}

func TestSubnetsAreIndependent(t *testing.T) {
	e, n, _ := newNet(16)
	var reqAt, repAt int64
	n.SetHandler(1, func(m Message) {
		if SubnetOf(m.Kind) == RequestNet {
			reqAt = e.Now()
		} else {
			repAt = e.Now()
		}
	})
	// A big data reply and a small request sharing src/dst must not
	// contend: they ride different subnetworks.
	n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 1})
	n.Send(Message{Kind: proto.MsgReadReq, Src: 0, Dst: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reqAt != n.UncontendedLatency(proto.MsgReadReq, 1) {
		t.Errorf("request delayed to %d by reply subnet traffic", reqAt)
	}
	if repAt != n.UncontendedLatency(proto.MsgDataReply, 1) {
		t.Errorf("reply at %d", repAt)
	}
}

func TestReplyFutureCompletesOnDelivery(t *testing.T) {
	e, n, _ := newNet(16)
	fut := sim.NewFuture[Message]()
	n.SetHandler(2, func(m Message) {})
	var wokenAt int64
	e.Spawn("requester", func(p *sim.Process) {
		n.Send(Message{Kind: proto.MsgDataReply, Src: 0, Dst: 2, Value: 42, Reply: fut})
		got := fut.Await(p)
		wokenAt = p.Now()
		if got.Value != 42 {
			t.Errorf("future value = %d", got.Value)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := n.UncontendedLatency(proto.MsgDataReply, 2); wokenAt != want {
		t.Errorf("woken at %d, want %d", wokenAt, want)
	}
}

func TestDeadNodeDropsTraffic(t *testing.T) {
	e, n, _ := newNet(16)
	delivered := 0
	n.SetHandler(1, func(m Message) { delivered++ })
	n.SetDown(1, true)
	n.Send(Message{Kind: proto.MsgReadReq, Src: 0, Dst: 1})
	n.Send(Message{Kind: proto.MsgReadReq, Src: 1, Dst: 0}) // from dead node
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d messages involving a dead node", delivered)
	}
	if n.Stats().Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", n.Stats().Dropped)
	}
	// Revive (transient failure rejoin) and confirm delivery works again.
	n.SetDown(1, false)
	n.Send(Message{Kind: proto.MsgReadReq, Src: 0, Dst: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d after revive, want 1", delivered)
	}
}

func TestLoopbackBypassesNetwork(t *testing.T) {
	e, n, _ := newNet(16)
	var at int64 = -1
	n.SetHandler(3, func(m Message) { at = e.Now() })
	n.Send(Message{Kind: proto.MsgDataReply, Src: 3, Dst: 3})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Errorf("loopback delivered at %d, want 0", at)
	}
	st := n.Stats()
	if st.Messages[RequestNet]+st.Messages[ReplyNet] != 0 {
		t.Error("loopback consumed network resources")
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, n, _ := newNet(16)
	n.SetHandler(5, func(m Message) {})
	n.Send(Message{Kind: proto.MsgReadReq, Src: 0, Dst: 5})
	n.Send(Message{Kind: proto.MsgDataReply, Src: 5, Dst: 0})
	n.SetHandler(0, func(m Message) {})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Messages[RequestNet] != 1 || st.Messages[ReplyNet] != 1 {
		t.Fatalf("messages = %v", st.Messages)
	}
	if st.Flits[RequestNet] != 2 || st.Flits[ReplyNet] != 34 {
		t.Fatalf("flits = %v", st.Flits)
	}
}

func TestRouteStaysInMesh(t *testing.T) {
	_, n, _ := newNet(56) // 8x7
	f := func(a, b uint8) bool {
		na := proto.NodeID(int(a) % 56)
		nb := proto.NodeID(int(b) % 56)
		links := n.route(na, nb)
		return len(links) == n.Hops(na, nb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

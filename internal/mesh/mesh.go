// Package mesh models the paper's interconnection network: a synchronous
// worm-hole routed 2-D mesh with 32-bit flits, a one-cycle fall-through
// time, and two independent subnetworks (one for requests, one for
// replies) to avoid protocol deadlock.
//
// A message's head advances one hop per HopLatency cycles when links are
// free; the tail follows flit-by-flit, so an uncontended message of f
// flits over h hops takes NISend + h*HopLatency + (f-1) + NIRecv cycles.
// Each directed link is occupied for f cycles per traversing message, and
// a head that finds a link busy waits for it (a virtual-cut-through
// approximation of worm-hole blocking: the worm compresses into the
// upstream buffer instead of stalling the whole path — the same
// uncontended latency, slightly optimistic under heavy contention).
package mesh

import (
	"fmt"

	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
)

// Subnet selects one of the two physical subnetworks.
type Subnet uint8

const (
	// RequestNet carries requests, invalidations and probes.
	RequestNet Subnet = iota
	// ReplyNet carries data, acknowledgements and grants.
	ReplyNet

	numSubnets
)

func (s Subnet) String() string {
	if s == RequestNet {
		return "request"
	}
	return "reply"
}

// SubnetOf maps a message kind onto the subnetwork it travels on.
func SubnetOf(kind proto.MsgKind) Subnet {
	switch kind {
	case proto.MsgDataReply, proto.MsgColdGrant, proto.MsgInvalidateAck,
		proto.MsgInjectAccept, proto.MsgInjectRefuse, proto.MsgInjectData,
		proto.MsgInjectAck, proto.MsgPreCommitUpgradeAck,
		proto.MsgCkptCreateDone, proto.MsgCkptCommitDone, proto.MsgRecoverDone:
		return ReplyNet
	case proto.MsgReadReq, proto.MsgWriteReq, proto.MsgReadFwd, proto.MsgWriteFwd,
		proto.MsgInvalidate, proto.MsgInjectProbe, proto.MsgHomeUpdate,
		proto.MsgPageAlloc, proto.MsgPartnerUpdate, proto.MsgPreCommitUpgrade,
		proto.MsgCkptPrepare, proto.MsgCkptCommit, proto.MsgRecover:
		return RequestNet
	default:
		panic("mesh: no subnet for message kind " + kind.String())
	}
}

// Message is one network transfer. Control messages are CtrlMsgFlits
// long; messages whose kind carries an item are data-sized.
type Message struct {
	Kind proto.MsgKind
	Src  proto.NodeID
	Dst  proto.NodeID
	Item proto.ItemID

	// State is the coherence state a copy is installed in or upgraded to
	// (injection, pre-commit upgrade) or the granting state (replies).
	State proto.State
	// Value is the item's data value (the simulator models contents as a
	// 64-bit version stamp for end-to-end correctness checking).
	Value uint64
	// Arg is a small kind-specific payload: a partner or new-owner node,
	// an injection cause, an invalidation-ack count, a checkpoint epoch.
	Arg int64
	// Fresh marks an injection that creates a brand-new secondary
	// recovery copy (create-phase replication or reconfiguration) rather
	// than moving an existing copy; the receiver pairs a fresh copy with
	// the sender and a moving copy with its recorded partner.
	Fresh bool
	// Requester is the node the final response must reach when a request
	// is forwarded (home-based localisation forwards to the owner, which
	// answers the requester directly).
	Requester proto.NodeID
	// Token is a future threaded through a multi-leg transaction; the
	// final responder moves it into Reply so the original requester wakes
	// when the response physically arrives.
	Token *sim.Future[Message]
	// Reply, when non-nil, is completed by the delivery of this message;
	// responders copy the requester's future into their reply message so
	// the blocked requester wakes when the reply physically arrives.
	Reply *sim.Future[Message]
	// Txn is the protocol transaction this message belongs to (zero when
	// tracing is off or the message is outside any traced transaction).
	// Handlers copy it onto every message they send on the transaction's
	// behalf so hop events chain across forwards and replies.
	Txn proto.TxnID

	// sentAt is stamped by Send when an observer is attached, so the
	// delivery-side hop event can report the message's network latency.
	sentAt int64
}

func (m Message) String() string {
	return fmt.Sprintf("%v %v->%v item=%d state=%v arg=%d", m.Kind, m.Src, m.Dst, m.Item, m.State, m.Arg)
}

// Handler consumes a delivered message on the destination node. It runs in
// event context and must not block; long work is spawned as a process.
type Handler func(Message)

// Stats aggregates network activity.
type Stats struct {
	Messages   [2]int64 // per subnet
	Flits      [2]int64
	FlitCycles [2]int64 // link occupancy integral
	Dropped    int64    // messages to/from dead nodes
}

// Network is the mesh instance for one simulation.
type Network struct {
	eng  *sim.Engine
	arch config.Arch
	w, h int

	handlers []Handler
	down     []bool

	// linkFree[subnet][link] is the cycle at which the directed link
	// becomes free. Links are indexed densely; see linkIndex.
	linkFree [2][]int64
	// niFree[subnet][node] serialises each node's injection port.
	niSendFree [2][]int64
	niRecvFree [2][]int64

	// inflight counts messages accepted by Send but not yet delivered
	// (per subnet, loopback included). Sampled by the observability
	// queue-depth ticker; maintaining two integers costs nothing when
	// nobody reads them.
	inflight [2]int64

	// pending parks accepted messages until their delivery event fires:
	// Send stores the message in a free slot and schedules a typed event
	// (sim.EventSink) whose arg is the slot index, so the per-delivery
	// closure allocation is gone. free lists reusable slots.
	pending []Message
	free    []int32

	// routeBuf is the reusable scratch for route's link path (Send uses
	// it before returning; deliveries never re-enter route).
	routeBuf []int

	// obs, when non-nil, receives one KTxnHop event per delivery of a
	// transaction-stamped message. Never affects timing or routing.
	obs obs.Observer

	stats Stats
}

// SetObserver attaches the observability sink (nil disables hop events).
func (n *Network) SetObserver(o obs.Observer) { n.obs = o }

// New builds the mesh for the architecture. Node i sits at
// (i mod w, i div w) on the smallest near-square mesh.
func New(eng *sim.Engine, arch config.Arch) *Network {
	w, h := arch.MeshDims()
	n := &Network{
		eng:      eng,
		arch:     arch,
		w:        w,
		h:        h,
		handlers: make([]Handler, arch.Nodes),
		down:     make([]bool, arch.Nodes),
	}
	links := n.numLinks()
	for s := 0; s < 2; s++ {
		n.linkFree[s] = make([]int64, links)
		n.niSendFree[s] = make([]int64, arch.Nodes)
		n.niRecvFree[s] = make([]int64, arch.Nodes)
	}
	return n
}

// Dims returns the mesh width and height.
func (n *Network) Dims() (w, h int) { return n.w, n.h }

// Stats returns a copy of the accumulated network statistics.
func (n *Network) Stats() Stats { return n.stats }

// Inflight returns the number of messages currently in flight on the
// subnet (sent but not yet delivered, loopback included).
func (n *Network) Inflight(s Subnet) int64 { return n.inflight[s] }

// NIBacklog reports how many cycles the node's injection ports on
// subnet s remain busy past now (0 = idle). Read-only; used by the
// live-inspection layer at engine safe points.
func (n *Network) NIBacklog(s Subnet, node proto.NodeID, now int64) (send, recv int64) {
	send = max(0, n.niSendFree[s][node]-now)
	recv = max(0, n.niRecvFree[s][node]-now)
	return send, recv
}

// BusyLinks counts the directed links of subnet s still occupied at
// now. Read-only; used by the live-inspection layer.
func (n *Network) BusyLinks(s Subnet, now int64) int {
	busy := 0
	for _, free := range n.linkFree[s] {
		if free > now {
			busy++
		}
	}
	return busy
}

// SetHandler installs the delivery callback for a node.
func (n *Network) SetHandler(node proto.NodeID, h Handler) {
	n.handlers[node] = h
}

// SetDown marks a node's network interface dead (fail-silent): messages to
// or from it are dropped. SetDown(node, false) revives it (transient
// failure rejoin).
func (n *Network) SetDown(node proto.NodeID, down bool) {
	n.down[node] = down
}

// Coord returns the mesh coordinates of a node.
func (n *Network) Coord(node proto.NodeID) (x, y int) {
	return int(node) % n.w, int(node) / n.w
}

// Hops returns the XY-routing hop count between two nodes.
func (n *Network) Hops(a, b proto.NodeID) int {
	ax, ay := n.Coord(a)
	bx, by := n.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Send injects a message. Delivery (including all contention delays) ends
// with the destination handler being invoked; if the message carries a
// Reply future it is completed with the message at delivery time.
// Messages involving a dead node are silently dropped.
func (n *Network) Send(m Message) {
	if n.obs != nil {
		m.sentAt = n.eng.Now()
	}
	if m.Src == m.Dst {
		// Loopback: no network traversal; the controller hand-off is
		// free (its work is charged by the handler itself).
		n.inflight[SubnetOf(m.Kind)]++
		n.eng.AfterSink(0, n, n.park(m))
		return
	}
	if n.down[m.Src] {
		n.stats.Dropped++
		return
	}
	sub := SubnetOf(m.Kind)
	n.inflight[sub]++
	flits := int64(n.arch.MsgFlits(m.Kind))
	now := n.eng.Now()

	// Injection port serialisation at the source NI.
	start := max64(now, n.niSendFree[sub][m.Src])
	n.niSendFree[sub][m.Src] = start + flits
	head := start + n.arch.NISend

	// Head progression along the XY path with per-link occupancy.
	for _, link := range n.route(m.Src, m.Dst) {
		head = max64(head+n.arch.HopLatency, n.linkFree[sub][link])
		n.linkFree[sub][link] = head + flits
		n.stats.FlitCycles[sub] += flits
	}

	// Tail arrival and receive-side NI serialisation.
	tail := head + flits - 1
	deliverAt := max64(tail, n.niRecvFree[sub][m.Dst]) + n.arch.NIRecv
	n.niRecvFree[sub][m.Dst] = deliverAt

	n.stats.Messages[sub]++
	n.stats.Flits[sub] += flits

	n.eng.AtSink(deliverAt, n, n.park(m))
}

// park stores an accepted message in the pending slab and returns its
// slot index, the typed-event payload carried to OnEvent.
func (n *Network) park(m Message) int64 {
	if len(n.free) > 0 {
		i := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		n.pending[i] = m
		return int64(i)
	}
	n.pending = append(n.pending, m)
	return int64(len(n.pending) - 1)
}

// OnEvent implements sim.EventSink: a delivery event fired for the
// parked message in slot arg. The slot is released before the handler
// runs so reentrant Sends can reuse it.
func (n *Network) OnEvent(_ *sim.Engine, arg int64) {
	m := n.pending[arg]
	n.pending[arg] = Message{} // release future/txn refs for the GC
	n.free = append(n.free, int32(arg))
	n.deliver(m)
}

func (n *Network) deliver(m Message) {
	n.inflight[SubnetOf(m.Kind)]--
	if n.down[m.Dst] || n.down[m.Src] {
		n.stats.Dropped++
		return
	}
	if n.obs != nil && m.Txn != proto.NoTxn {
		n.obs.Emit(obs.Event{
			Time: n.eng.Now(),
			Kind: obs.KTxnHop,
			Node: m.Dst,
			Item: m.Item,
			Txn:  m.Txn,
			A:    int64(m.Kind),
			B:    n.eng.Now() - m.sentAt,
		})
	}
	if h := n.handlers[m.Dst]; h != nil {
		h(m)
	}
	if m.Reply != nil {
		m.Reply.Complete(n.eng, m)
	}
}

// UncontendedLatency returns the no-load transfer time for a message of
// the given kind over h hops (used by tests and the Table 2 calibration).
func (n *Network) UncontendedLatency(kind proto.MsgKind, hops int) int64 {
	flits := int64(n.arch.MsgFlits(kind))
	return n.arch.NISend + int64(hops)*n.arch.HopLatency + flits - 1 + n.arch.NIRecv
}

// route returns the directed link indices of the XY path from a to b.
// The returned slice aliases routeBuf and is valid until the next call.
func (n *Network) route(a, b proto.NodeID) []int {
	ax, ay := n.Coord(a)
	bx, by := n.Coord(b)
	path := n.routeBuf[:0]
	x, y := ax, ay
	for x != bx {
		nx := x + sign(bx-x)
		path = append(path, n.linkIndex(x, y, nx, y))
		x = nx
	}
	for y != by {
		ny := y + sign(by-y)
		path = append(path, n.linkIndex(x, y, x, ny))
		y = ny
	}
	n.routeBuf = path // keep any growth for reuse
	return path
}

// linkIndex densely numbers directed links: four possible outgoing
// directions per grid position.
func (n *Network) linkIndex(x, y, nx, ny int) int {
	dir := 0
	switch {
	case nx == x+1:
		dir = 0 // east
	case nx == x-1:
		dir = 1 // west
	case ny == y+1:
		dir = 2 // south
	case ny == y-1:
		dir = 3 // north
	default:
		panic("mesh: non-adjacent hop")
	}
	return (y*n.w+x)*4 + dir
}

func (n *Network) numLinks() int { return n.w * n.h * 4 }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"strings"
	"testing"

	"coma/internal/am"
	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
)

// nopCache satisfies coherence.CacheOps for protocol-level tests.
type nopCache struct{}

func (nopCache) InvalidateItem(proto.NodeID, proto.ItemID) {}
func (nopCache) DowngradeItem(proto.NodeID, proto.ItemID)  {}

type rig struct {
	t    *testing.T
	eng  *sim.Engine
	arch config.Arch
	net  *mesh.Network
	dir  *directory.Directory
	ams  []*am.AM
	coh  *coherence.Engine
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	eng := sim.New()
	arch := config.KSR1(nodes)
	net := mesh.New(eng, arch)
	dir := directory.New(nodes)
	ams := make([]*am.AM, nodes)
	counters := make([]*stats.Node, nodes)
	for i := range ams {
		ams[i] = am.New(arch, proto.NodeID(i))
		counters[i] = &stats.Node{}
	}
	coh := coherence.New(eng, arch, coherence.ECP, coherence.Options{},
		net, dir, ams, counters, nopCache{})
	t.Cleanup(func() { eng.Shutdown() })
	return &rig{t: t, eng: eng, arch: arch, net: net, dir: dir, ams: ams, coh: coh}
}

func (r *rig) run(fn func(p *sim.Process)) {
	r.t.Helper()
	done := false
	r.eng.Spawn("test", func(p *sim.Process) { fn(p); done = true })
	if _, err := r.eng.Run(); err != nil {
		r.t.Fatal(err)
	}
	if !done {
		r.t.Fatal("test process did not complete")
	}
}

func (r *rig) establish(p *sim.Process, nodes []proto.NodeID) {
	for _, n := range nodes {
		r.coh.CreatePhase(p, n)
	}
	for _, n := range nodes {
		r.coh.CommitScan(p, n)
	}
}

func (r *rig) allNodes() []proto.NodeID {
	out := make([]proto.NodeID, r.arch.Nodes)
	for i := range out {
		out[i] = proto.NodeID(i)
	}
	return out
}

// restoredValue returns the value of the item's Shared-CK1 copy, or
// (0, false) if no committed pair exists.
func (r *rig) restoredValue(item proto.ItemID) (uint64, bool) {
	for n := range r.ams {
		if r.ams[n].State(item) == proto.SharedCK1 {
			return r.ams[n].Slot(item).Value, true
		}
	}
	return 0, false
}

// TestCreatePhaseFailureRestoresOldPoint exercises the paper's §3.3
// atomicity claim: a failure during the create phase leaves the previous
// recovery point (all Inv-CK and Shared-CK copies) intact and restorable.
func TestCreatePhaseFailureRestoresOldPoint(t *testing.T) {
	r := newRig(t, 16)
	items := []proto.ItemID{10, 140, 300, 430}
	r.run(func(p *sim.Process) {
		// Recovery point 1 with known values.
		for i, it := range items {
			r.coh.WriteItem(p, proto.NodeID(i), it, 100+uint64(i))
		}
		r.establish(p, r.allNodes())
		// Modify everything (values the failed establishment must NOT
		// expose after rollback).
		for i, it := range items {
			r.coh.WriteItem(p, proto.NodeID(i+4), it, 200+uint64(i))
		}
		// A new establishment begins but only half the nodes complete
		// their create phase before node 2 dies.
		for n := proto.NodeID(0); n < 8; n++ {
			r.coh.CreatePhase(p, n)
		}
		dead := proto.NodeID(2)
		r.ams[dead].Clear()
		r.dir.SetAlive(dead, false)
		r.net.SetDown(dead, true)
		// Abort: no commit; rollback on the survivors.
		for _, n := range r.dir.AliveNodes() {
			r.coh.RecoveryScan(p, n)
		}
		r.coh.RebuildDirectory()
		isDead := func(n proto.NodeID) bool { return n == proto.None || n == dead }
		r.coh.RemapAnchors(p, isDead)
		for _, n := range r.dir.AliveNodes() {
			r.coh.ReconfigureNode(p, n, isDead)
		}
	})
	for i, it := range items {
		v, ok := r.restoredValue(it)
		if !ok {
			t.Fatalf("item %d: no committed pair after aborted create + rollback", it)
		}
		if v != 100+uint64(i) {
			t.Fatalf("item %d: restored %d, want the old recovery point's %d", it, v, 100+uint64(i))
		}
	}
	if err := CheckQuiescent(r.coh); err != nil {
		t.Fatal(err)
	}
}

// TestCommitPhaseFailureKeepsNewPoint exercises the second §3.3 claim: a
// failure during the (local) commit phase is handled as if it happened
// after the atomic update — the new recovery point is complete and
// persistent, surviving nodes simply finish their local commits.
func TestCommitPhaseFailureKeepsNewPoint(t *testing.T) {
	r := newRig(t, 16)
	items := []proto.ItemID{10, 140, 300, 430}
	r.run(func(p *sim.Process) {
		for i, it := range items {
			r.coh.WriteItem(p, proto.NodeID(i), it, 100+uint64(i))
		}
		r.establish(p, r.allNodes())
		for i, it := range items {
			r.coh.WriteItem(p, proto.NodeID(i+4), it, 200+uint64(i))
		}
		// Full create; commit completes on half the nodes, then node 6
		// dies; the remaining nodes finish their local commits (the
		// phase needs no coordination), and rollback restores the NEW
		// point.
		for _, n := range r.allNodes() {
			r.coh.CreatePhase(p, n)
		}
		for n := proto.NodeID(0); n < 8; n++ {
			r.coh.CommitScan(p, n)
		}
		dead := proto.NodeID(6)
		r.ams[dead].Clear()
		r.dir.SetAlive(dead, false)
		r.net.SetDown(dead, true)
		for n := proto.NodeID(8); n < 16; n++ {
			if n != dead {
				r.coh.CommitScan(p, n)
			}
		}
		for _, n := range r.dir.AliveNodes() {
			r.coh.RecoveryScan(p, n)
		}
		r.coh.RebuildDirectory()
		isDead := func(n proto.NodeID) bool { return n == proto.None || n == dead }
		r.coh.RemapAnchors(p, isDead)
		for _, n := range r.dir.AliveNodes() {
			r.coh.ReconfigureNode(p, n, isDead)
		}
	})
	for i, it := range items {
		v, ok := r.restoredValue(it)
		if !ok {
			t.Fatalf("item %d: no committed pair after commit-phase failure", it)
		}
		if v != 200+uint64(i) {
			t.Fatalf("item %d: restored %d, want the new recovery point's %d", it, v, 200+uint64(i))
		}
	}
	if err := CheckQuiescent(r.coh); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantCheckerAcceptsHealthyState(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		r.coh.ReadItem(p, 3, 100)
		r.coh.WriteItem(p, 1, 101, 2)
		r.establish(p, r.allNodes())
		r.coh.ReadItem(p, 7, 100)
	})
	if err := CheckQuiescent(r.coh); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantCheckerCatchesDoubleOwner(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) { r.coh.WriteItem(p, 0, 100, 1) })
	// Forge a second Exclusive copy.
	r.ams[5].AllocFrame(r.arch.PageOf(100), false, 0)
	r.ams[5].Set(100, am.Slot{State: proto.Exclusive, Value: 9, Partner: proto.None})
	err := CheckInvariants(r.coh)
	if err == nil || !strings.Contains(err.Error(), "owner") {
		t.Fatalf("err = %v, want double-owner violation", err)
	}
}

func TestInvariantCheckerCatchesBrokenPair(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		r.establish(p, r.allNodes())
	})
	// Destroy the CK2 copy behind the protocol's back.
	for n := range r.ams {
		if r.ams[n].State(100) == proto.SharedCK2 {
			r.ams[n].SetState(100, proto.Invalid)
		}
	}
	err := CheckInvariants(r.coh)
	if err == nil || !strings.Contains(err.Error(), "broken recovery pair") {
		t.Fatalf("err = %v, want broken-pair violation", err)
	}
}

func TestInvariantCheckerCatchesPartnerMismatch(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		r.establish(p, r.allNodes())
	})
	for n := range r.ams {
		if r.ams[n].State(100) == proto.SharedCK2 {
			r.ams[n].SetPartner(100, proto.NodeID((n+5)%16))
		}
	}
	err := CheckInvariants(r.coh)
	if err == nil || !strings.Contains(err.Error(), "partner pointer") {
		t.Fatalf("err = %v, want partner violation", err)
	}
}

func TestInvariantCheckerCatchesStrayPreCommit(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		// Create without commit leaves PreCommit copies.
		r.coh.CreatePhase(p, 0)
	})
	if err := CheckInvariants(r.coh); err != nil {
		t.Fatalf("mid-establishment state wrongly rejected by CheckInvariants: %v", err)
	}
	err := CheckQuiescent(r.coh)
	if err == nil || !strings.Contains(err.Error(), "outside an establishment") {
		t.Fatalf("err = %v, want stray pre-commit violation", err)
	}
}

func TestInvariantCheckerCatchesSharerMismatch(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		r.coh.ReadItem(p, 3, 100)
	})
	r.dir.Lookup(100).Sharers.Remove(3) // forge: node 3 still holds Shared
	err := CheckInvariants(r.coh)
	if err == nil || !strings.Contains(err.Error(), "sharing set") {
		t.Fatalf("err = %v, want sharing-set violation", err)
	}
}

func TestInvariantCheckerNamesPhantomSharer(t *testing.T) {
	r := newRig(t, 16)
	r.run(func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 100, 1)
		r.coh.ReadItem(p, 3, 100)
	})
	r.dir.Lookup(100).Sharers.Add(9) // forge: node 9 holds no copy at all
	err := CheckInvariants(r.coh)
	if err == nil || !strings.Contains(err.Error(), "holds no Shared copy") ||
		!strings.Contains(err.Error(), "9") {
		t.Fatalf("err = %v, want phantom-sharer violation naming node 9", err)
	}
}

func TestReconfigureCountsRepairs(t *testing.T) {
	r := newRig(t, 16)
	var repaired int
	r.run(func(p *sim.Process) {
		for i := 0; i < 6; i++ {
			r.coh.WriteItem(p, proto.NodeID(i), proto.ItemID(100+i), uint64(i))
		}
		r.establish(p, r.allNodes())
		dead := proto.NodeID(1)
		r.ams[dead].Clear()
		r.dir.SetAlive(dead, false)
		for _, n := range r.dir.AliveNodes() {
			r.coh.RecoveryScan(p, n)
		}
		r.coh.RebuildDirectory()
		isDead := func(n proto.NodeID) bool { return n == proto.None || n == dead }
		r.coh.RemapAnchors(p, isDead)
		for _, n := range r.dir.AliveNodes() {
			repaired += r.coh.ReconfigureNode(p, n, isDead)
		}
	})
	if repaired == 0 {
		t.Fatal("nothing repaired although the dead node held recovery copies")
	}
	if err := CheckQuiescent(r.coh); err != nil {
		t.Fatal(err)
	}
}

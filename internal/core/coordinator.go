// Package core implements the backward-error-recovery layer on top of the
// extended coherence protocol — the paper's contribution as orchestration:
// the coordinated two-phase (create/commit) recovery-point establishment
// (§3.3), the global rollback and reconfiguration after node failures
// (§3.4), and the recovery-data invariants the protocol must maintain.
//
// The Coordinator quiesces the processors (pending transactions drain,
// caches flush), drives every node's create phase in parallel, runs the
// global barrier, then the local commit phases, and accounts the paper's
// T_create and T_commit stall windows. Failures are detected at phase
// boundaries (fail-silent nodes; detection machinery is out of the
// paper's scope) and trigger rollback to the last committed recovery
// point plus reconfiguration re-establishing two copies of all recovery
// data.
package core

import (
	"fmt"

	"coma/internal/coherence"
	"coma/internal/mesh"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
)

// NodeOps is what the coordinator needs from a node beyond the coherence
// engine: control of its processor cache.
type NodeOps interface {
	ID() proto.NodeID
	// FlushCache writes dirty lines back to the local AM and drops write
	// permission (data stays readable, per §4.2.3).
	FlushCache(p *sim.Process)
	// ClearCache empties the cache (rollback).
	ClearCache()
}

// Failure describes one injected node failure.
type Failure struct {
	Node      proto.NodeID
	Permanent bool
}

// Hooks are machine-level callbacks at recovery-point boundaries.
type Hooks struct {
	// OnCommit runs at the instant a recovery point commits; the machine
	// snapshots workload generators and the value oracle here.
	OnCommit func()
	// OnRollback runs at the instant a rollback (plus reconfiguration)
	// completes. dropped lists the items discarded because no recovery
	// copy survived — legitimately for items created after the last
	// recovery point, fatally for committed items (multiple overlapping
	// failures); the machine distinguishes the two.
	OnRollback func(dropped []proto.ItemID, failures []Failure)
}

type roundMode uint8

const (
	roundCheckpoint roundMode = iota
	roundRecovery
)

// counter completes a future when `need` arrivals have occurred.
type counter struct {
	need int
	got  int
	fut  *sim.Future[int]
}

func newCounter(eng *sim.Engine, need int) *counter {
	c := &counter{need: need, fut: sim.NewFuture[int]()}
	if need == 0 {
		c.fut.Complete(eng, 0)
	}
	return c
}

func (c *counter) arrive(eng *sim.Engine) {
	c.got++
	if c.got >= c.need && !c.fut.Done() {
		c.fut.Complete(eng, c.got)
	}
}

// Coordinator drives recovery-point establishment and failure recovery
// for one machine.
type Coordinator struct {
	eng      *sim.Engine
	coh      *coherence.Engine
	net      *mesh.Network
	interval int64
	hooks    Hooks
	ck       stats.Checkpointing

	nodes    int
	alive    []bool
	deadPerm []bool
	finished []bool
	lastDone []int64

	pauseRequested bool
	round          int64
	mode           roundMode

	quiesce, phase1, phase2    *counter
	gateStart, gateMid, gateUp *sim.Gate
	// gateMid2 is the mid-phase gate of a recovery that replaced an
	// establishment at the commit boundary: gateMid has already been
	// consumed releasing the participants into the abort path.
	gateMid2 *sim.Gate

	pendingFailures []Failure
	failedThisRound []bool
	wake            *sim.Future[struct{}]
	lastCkpt        int64

	// Typed-event bookkeeping (the coordinator is a sim.EventSink, so
	// its timers never allocate per-event closures): armed holds
	// scheduled failures, addressed by the event arg; sleepGen numbers
	// sleepUntil timers so a stale round-due event (negative arg) from a
	// superseded sleep is ignored.
	armed    []Failure
	sleepGen int64

	// Application-level barrier (workload Barrier references).
	abRound   int64
	abArrived int
	abWaiters []*sim.Process

	// Finished processors parked in ServeRounds.
	idleWaiters []*sim.Process

	// obsv, when set, receives round, fault and rollback events.
	obsv obs.Observer
	// txnSeq numbers the coordinator's round transactions; it is only
	// advanced when an observer is attached, so untraced runs are
	// byte-identical to traced ones in every other respect.
	txnSeq   int64
	roundTxn proto.TxnID
	roundT0  int64
}

// NewCoordinator builds the recovery coordinator. interval is the cycles
// between recovery points (0 disables periodic establishment; recovery on
// failure still works if the protocol is the ECP).
func NewCoordinator(eng *sim.Engine, coh *coherence.Engine, net *mesh.Network,
	nodes int, interval int64, hooks Hooks) *Coordinator {

	co := &Coordinator{
		eng:             eng,
		coh:             coh,
		net:             net,
		interval:        interval,
		hooks:           hooks,
		nodes:           nodes,
		alive:           make([]bool, nodes),
		deadPerm:        make([]bool, nodes),
		finished:        make([]bool, nodes),
		lastDone:        make([]int64, nodes),
		failedThisRound: make([]bool, nodes),
	}
	for i := range co.alive {
		co.alive[i] = true
		co.lastDone[i] = -1
	}
	return co
}

// Stats returns the checkpoint accounting so far.
func (co *Coordinator) Stats() stats.Checkpointing { return co.ck }

// PhaseSnapshot is a read-only view of the coordinator's round state
// for the live-inspection layer. Counter fields report barrier
// progress: Got arrivals out of Need for the quiesce gather and the two
// establishment/recovery phases of the round in flight (all zero
// between rounds, when the counters of the previous round have been
// replaced).
type PhaseSnapshot struct {
	Round           int64
	Recovery        bool // current round is a rollback, not an establishment
	PauseRequested  bool
	QuiesceGot      int
	QuiesceNeed     int
	Phase1Got       int
	Phase1Need      int
	Phase2Got       int
	Phase2Need      int
	LiveNodes       int
	PendingFailures int
}

// Snapshot reports the coordinator's current round state. Read-only;
// called by the live-inspection layer at engine safe points.
func (co *Coordinator) Snapshot() PhaseSnapshot {
	s := PhaseSnapshot{
		Round:           co.round,
		Recovery:        co.mode == roundRecovery,
		PauseRequested:  co.pauseRequested,
		PendingFailures: len(co.pendingFailures),
	}
	if co.quiesce != nil {
		s.QuiesceGot, s.QuiesceNeed = co.quiesce.got, co.quiesce.need
	}
	if co.phase1 != nil {
		s.Phase1Got, s.Phase1Need = co.phase1.got, co.phase1.need
	}
	if co.phase2 != nil {
		s.Phase2Got, s.Phase2Need = co.phase2.got, co.phase2.need
	}
	for _, alive := range co.alive {
		if alive {
			s.LiveNodes++
		}
	}
	return s
}

// SetObserver installs the observability sink (nil disables it).
func (co *Coordinator) SetObserver(o obs.Observer) { co.obsv = o }

// Alive reports whether a node is still a live member.
func (co *Coordinator) Alive(n proto.NodeID) bool { return co.alive[n] }

// Start spawns the coordinator process. Call once, before the engine runs.
func (co *Coordinator) Start() {
	co.eng.Spawn("ckpt-coordinator", co.loop)
}

// ScheduleFailure injects a node failure at absolute cycle t. The
// coordinator quiesces in-flight transactions, then applies the failure
// and runs rollback + reconfiguration (detection at the next phase
// boundary; see DESIGN.md).
func (co *Coordinator) ScheduleFailure(t int64, f Failure) {
	co.armed = append(co.armed, f)
	co.eng.AtSink(t, co, int64(len(co.armed)-1))
}

// OnEvent implements sim.EventSink for the coordinator's two timer
// kinds: a non-negative arg indexes an armed failure to inject now; a
// negative arg is a sleepUntil round-due timer carrying its generation.
func (co *Coordinator) OnEvent(_ *sim.Engine, arg int64) {
	if arg >= 0 {
		co.pendingFailures = append(co.pendingFailures, co.armed[arg])
		if co.wake != nil && !co.wake.Done() {
			co.wake.Complete(co.eng, struct{}{})
		}
		return
	}
	if -arg == co.sleepGen && co.wake != nil && !co.wake.Done() {
		co.wake.Complete(co.eng, struct{}{})
	}
}

// ProcessorFinished records that a node's workload ended. The node's
// process must then call ServeRounds: its attraction memory still holds
// live state, so it keeps participating in checkpoint and recovery
// rounds until the whole machine stops.
func (co *Coordinator) ProcessorFinished(n proto.NodeID) {
	co.finished[n] = true
	co.maybeOpenAppBarrier()
}

// participants returns the number of processors that must take part in a
// round: every live node, finished or not (a finished node's AM is still
// part of the recoverable state).
func (co *Coordinator) participants() int {
	c := 0
	for i := range co.alive {
		if co.alive[i] {
			c++
		}
	}
	return c
}

// computing returns the number of live processors still executing their
// workload (the application-barrier population).
func (co *Coordinator) computing() int {
	c := 0
	for i := range co.alive {
		if co.alive[i] && !co.finished[i] {
			c++
		}
	}
	return c
}

// ServeRounds is the post-workload service loop of a node's processor:
// it keeps the node participating in checkpoint and recovery rounds. It
// returns false if the node died permanently, and true if a rollback
// restored the node's workload to a pre-completion state (the processor
// must resume computing). At machine shutdown a parked process is reaped
// by the engine.
func (co *Coordinator) ServeRounds(p *sim.Process, ops NodeOps) bool {
	n := ops.ID()
	for {
		if co.deadPerm[n] {
			return false
		}
		if !co.finished[n] {
			return true // resurrected by a rollback
		}
		if co.pauseRequested && co.lastDone[n] != co.round {
			if !co.Participate(p, ops) {
				return false
			}
			continue
		}
		co.idleWaiters = append(co.idleWaiters, p)
		p.Park()
	}
}

// PauseRequested reports whether processors must enter Participate at
// their next safe point. Node processor loops poll this between
// references.
func (co *Coordinator) PauseRequested() bool { return co.pauseRequested }

// Participate is called by a node's processor when PauseRequested is
// true (or when kicked out of an application barrier): the node takes
// part in every outstanding round. It returns false if the node died
// permanently and its processor must stop.
func (co *Coordinator) Participate(p *sim.Process, ops NodeOps) bool {
	n := ops.ID()
	for co.pauseRequested && co.lastDone[n] != co.round {
		co.participateRound(p, ops)
		if co.deadPerm[n] {
			return false
		}
	}
	return true
}

func (co *Coordinator) participateRound(p *sim.Process, ops NodeOps) {
	n := ops.ID()
	round := co.round
	gateStart, gateMid, gateUp := co.gateStart, co.gateMid, co.gateUp

	ops.FlushCache(p)
	co.quiesce.arrive(co.eng)
	gateStart.Wait(p)

	// The phase counters are created by the coordinator between the
	// quiesce barrier and gateStart opening, so they must be read only
	// now. A checkpoint round can also have been converted into a
	// recovery round in that window (failure during quiesce).
	phase1, phase2 := co.phase1, co.phase2

	if co.deadPerm[n] {
		co.lastDone[n] = round
		return
	}

	switch co.mode {
	case roundCheckpoint:
		co.coh.CreatePhase(p, n)
		phase1.arrive(co.eng)
		gateMid.Wait(p)
		if co.mode == roundRecovery {
			// A failure during the create phase aborted the establishment
			// at the commit boundary: the round continues as a recovery.
			// The coordinator recreated the phase counters (survivors may
			// have shrunk) before opening gateMid, so re-read them.
			if co.deadPerm[n] {
				co.lastDone[n] = round
				return
			}
			phase1, phase2 = co.phase1, co.phase2
			co.coh.RecoveryScan(p, n)
			ops.ClearCache()
			phase1.arrive(co.eng)
			co.gateMid2.Wait(p)
			co.coh.ReconfigureNode(p, n, co.lostMemory)
			phase2.arrive(co.eng)
			break
		}
		co.coh.CommitScan(p, n)
		phase2.arrive(co.eng)
	case roundRecovery:
		co.coh.RecoveryScan(p, n)
		ops.ClearCache()
		phase1.arrive(co.eng)
		gateMid.Wait(p)
		co.coh.ReconfigureNode(p, n, co.lostMemory)
		phase2.arrive(co.eng)
	}
	gateUp.Wait(p)
	co.lastDone[n] = round
}

func (co *Coordinator) isDead(n proto.NodeID) bool {
	return n == proto.None || !co.alive[n]
}

// lostMemory reports whether a node's AM contents were destroyed by the
// failure round in progress: permanently dead nodes and transiently
// failed (rebooted, memory cleared) nodes alike. Recovery pairs with a
// partner in this set must be re-replicated even though a transient
// partner is alive again.
func (co *Coordinator) lostMemory(n proto.NodeID) bool {
	if n == proto.None || !co.alive[n] {
		return true
	}
	return co.failedThisRound[n]
}

// loop is the coordinator process body.
func (co *Coordinator) loop(p *sim.Process) {
	for {
		var due int64 = -1
		if co.interval > 0 {
			due = co.lastCkpt + co.interval
		}
		co.sleepUntil(p, due)
		if len(co.pendingFailures) > 0 {
			co.runRecovery(p)
			continue
		}
		if due >= 0 && p.Now() >= due {
			co.runCheckpoint(p)
		}
	}
}

// sleepUntil parks the coordinator until the given absolute time (or
// forever if negative), returning early when a failure is injected.
func (co *Coordinator) sleepUntil(p *sim.Process, due int64) {
	if len(co.pendingFailures) > 0 {
		return
	}
	if due >= 0 && p.Now() >= due {
		return
	}
	fut := sim.NewFuture[struct{}]()
	co.wake = fut
	if due >= 0 {
		co.sleepGen++
		co.eng.AtSink(due, co, -co.sleepGen)
	}
	fut.Await(p)
	co.wake = nil
}

// beginRound sets up the gates and counters shared by all participants.
func (co *Coordinator) beginRound(mode roundMode) {
	co.round++
	co.mode = mode
	co.pauseRequested = true
	if co.obsv != nil {
		co.txnSeq++
		co.roundTxn = proto.MakeTxnID(proto.None, co.txnSeq)
		co.roundT0 = co.eng.Now()
		co.coh.SetRoundTxn(co.roundTxn)
		op := int64(obs.TxnCkptRound)
		if mode == roundRecovery {
			op = obs.TxnRecoveryRound
		}
		co.obsv.Emit(obs.Event{Time: co.eng.Now(), Kind: obs.KTxnBegin,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, A: op})
		co.obsv.Emit(obs.Event{Time: co.eng.Now(), Kind: obs.KRoundBegin,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, A: int64(mode), B: co.round})
	}
	co.quiesce = newCounter(co.eng, co.participants())
	co.gateStart = sim.NewGate()
	co.gateMid = sim.NewGate()
	co.gateUp = sim.NewGate()
	co.kickAppBarrier()
	co.kickIdle()
	// Broadcast the control message (timing traffic only; the gates and
	// counters are the simulator's mechanism).
	kind := proto.MsgCkptPrepare
	if mode == roundRecovery {
		kind = proto.MsgRecover
	}
	for i := 0; i < co.nodes; i++ {
		n := proto.NodeID(i)
		if co.alive[n] && n != 0 {
			co.net.Send(mesh.Message{Kind: kind, Src: 0, Dst: n, Txn: co.roundTxn})
		}
	}
}

// kickIdle wakes finished processors so they participate in the round.
func (co *Coordinator) kickIdle() {
	for _, w := range co.idleWaiters {
		co.eng.WakeNow(w)
	}
	co.idleWaiters = nil
}

// runCheckpoint establishes one recovery point (§3.3).
func (co *Coordinator) runCheckpoint(p *sim.Process) {
	co.lastCkpt = p.Now()
	if co.participants() == 0 {
		return
	}
	// During the create phase an item can need four copies on distinct
	// nodes (old Inv-CK pair plus new Pre-Commit pair); a machine shrunk
	// below four live nodes by permanent failures cannot establish new
	// recovery points — the last committed one keeps protecting it.
	if co.participants() < 4 {
		co.ck.Skipped++
		return
	}
	co.beginRound(roundCheckpoint)
	co.quiesce.fut.Await(p)
	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KRoundQuiesced,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, B: co.round})
	}

	// A failure injected during quiesce aborts the establishment: the
	// previous recovery point is still intact (the paper's create-phase
	// atomicity argument); recovery runs instead.
	if len(co.pendingFailures) > 0 {
		co.abortRoundIntoRecovery(p)
		return
	}

	survivors := co.participants()
	co.phase1 = newCounter(co.eng, survivors)
	co.phase2 = newCounter(co.eng, survivors)

	tCreate := p.Now()
	co.gateStart.Open(co.eng)
	co.phase1.fut.Await(p)

	tCommit := p.Now()
	co.ck.CreateCycles += tCommit - tCreate

	// A failure during the create phase aborts at the commit boundary:
	// the pre-commit pairs are discarded by a recovery scan (the paper's
	// PreCommit -> Invalid edges) and the previous recovery point keeps
	// protecting the machine. Failures arriving once the commit scans
	// have started stay pending until after the round: the establishment
	// is atomic from this point on.
	if len(co.pendingFailures) > 0 {
		co.abortAtCommitBoundary(p)
		return
	}

	co.gateMid.Open(co.eng)
	co.phase2.fut.Await(p)
	co.ck.CommitCycles += p.Now() - tCommit
	co.ck.Established++

	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KCommitted,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, B: co.round})
	}
	if co.hooks.OnCommit != nil {
		co.hooks.OnCommit()
	}
	co.pauseRequested = false
	co.gateUp.Open(co.eng)
	co.lastCkpt = p.Now()
	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KRoundEnd,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, A: int64(roundCheckpoint), B: co.round})
		co.endRoundTxn(p.Now(), roundCheckpoint)
	}
}

// abortRoundIntoRecovery converts an in-progress checkpoint round (still
// at the quiesce barrier) into a recovery round: nothing was created yet,
// so the previous recovery point is untouched.
func (co *Coordinator) abortRoundIntoRecovery(p *sim.Process) {
	co.ck.Aborted++
	// Release the quiesced processors straight into a new round: rewire
	// this round as a recovery round. Processors are parked at
	// gateStart; mode and counters may be swapped before it opens.
	co.finishRecovery(p)
}

// runRecovery quiesces, applies pending failures, and restores the last
// recovery point (§3.4).
func (co *Coordinator) runRecovery(p *sim.Process) {
	if co.participants() == 0 {
		co.pendingFailures = nil
		return
	}
	co.beginRound(roundRecovery)
	co.quiesce.fut.Await(p)
	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KRoundQuiesced,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, B: co.round})
	}
	co.finishRecovery(p)
}

// applyPendingFailures consumes the pending failure list: it marks the
// round's failed-memory set, emits the fault events, clears the failed
// AMs (fail-silent) and removes permanently dead nodes from membership.
func (co *Coordinator) applyPendingFailures(p *sim.Process) []Failure {
	failures := co.pendingFailures
	co.pendingFailures = nil

	for i := range co.failedThisRound {
		co.failedThisRound[i] = false
	}
	for _, f := range failures {
		if !co.finished[f.Node] || co.alive[f.Node] {
			co.failedThisRound[f.Node] = true
		}
	}
	for _, f := range failures {
		n := f.Node
		if co.obsv != nil {
			perm := int64(0)
			if f.Permanent {
				perm = 1
			}
			co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KFault,
				Node: n, Item: proto.NoItem, A: perm, B: co.round})
		}
		if co.finished[n] {
			continue
		}
		co.coh.AM(n).Clear() // fail-silent: AM contents are lost
		if f.Permanent {
			co.alive[n] = false
			co.deadPerm[n] = true
			co.net.SetDown(n, true)
			co.coh.Directory().SetAlive(n, false)
		}
	}
	return failures
}

// finishRecovery runs from the point where every participant is parked at
// gateStart: it applies the failures, drives the scan and reconfiguration
// phases, and resumes the machine.
func (co *Coordinator) finishRecovery(p *sim.Process) {
	co.mode = roundRecovery
	failures := co.applyPendingFailures(p)

	survivors := co.participants()
	co.phase1 = newCounter(co.eng, survivors)
	co.phase2 = newCounter(co.eng, survivors)

	co.gateStart.Open(co.eng)
	co.recoveryTail(p, failures, co.gateMid)
}

// abortAtCommitBoundary converts an establishment whose create phase has
// completed — but whose commit has not begun — into a recovery round: a
// failure arrived while the pre-commit pairs were being created, so they
// are discarded by the recovery scans (the PreCommit -> Invalid edges)
// and the previous recovery point is restored. Participants are parked
// at gateMid; the counters must be recreated (the failure may have been
// permanent) before that gate releases them into the recovery path.
func (co *Coordinator) abortAtCommitBoundary(p *sim.Process) {
	co.ck.Aborted++
	co.mode = roundRecovery
	failures := co.applyPendingFailures(p)

	survivors := co.participants()
	co.phase1 = newCounter(co.eng, survivors)
	co.phase2 = newCounter(co.eng, survivors)
	co.gateMid2 = sim.NewGate()

	co.gateMid.Open(co.eng)
	co.recoveryTail(p, failures, co.gateMid2)
}

// recoveryTail drives a recovery round from the instant the participants
// start their recovery scans. midGate separates the scan phase from the
// reconfiguration phase (gateMid normally; gateMid2 when an aborted
// establishment already consumed gateMid).
func (co *Coordinator) recoveryTail(p *sim.Process, failures []Failure, midGate *sim.Gate) {
	co.phase1.fut.Await(p) // all scans done, caches cleared

	dropped := co.coh.RebuildDirectory()
	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KRollback,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, A: int64(len(dropped)), B: co.round})
	}
	for _, f := range failures {
		if !f.Permanent && !co.finished[f.Node] {
			co.coh.RestoreAnchors(p, f.Node)
		}
	}
	co.coh.RemapAnchors(p, co.isDead)

	midGate.Open(co.eng)
	co.phase2.fut.Await(p) // reconfiguration done: persistence restored

	if co.hooks.OnRollback != nil {
		co.hooks.OnRollback(dropped, failures)
	}
	// A rollback rewinds every surviving workload to the last committed
	// recovery point; processors that had already finished resume
	// computing from there.
	for i := range co.finished {
		if co.finished[i] && co.alive[i] {
			co.finished[i] = false
		}
	}
	co.ck.Recoveries++
	co.pauseRequested = false
	co.gateUp.Open(co.eng)
	co.maybeOpenAppBarrier()
	if co.obsv != nil {
		co.obsv.Emit(obs.Event{Time: p.Now(), Kind: obs.KRoundEnd,
			Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn, A: int64(roundRecovery), B: co.round})
		co.endRoundTxn(p.Now(), roundRecovery)
	}
}

// endRoundTxn closes the round's transaction span and detaches it from
// the coherence engine. Only called when an observer is attached.
func (co *Coordinator) endRoundTxn(now int64, mode roundMode) {
	co.obsv.Emit(obs.Event{Time: now, Kind: obs.KTxnEnd,
		Node: proto.None, Item: proto.NoItem, Txn: co.roundTxn,
		A: int64(mode), B: now - co.roundT0})
	co.roundTxn = proto.NoTxn
	co.coh.SetRoundTxn(proto.NoTxn)
}

// AppBarrier implements the workload-level global barrier: the processor
// blocks until every live, unfinished processor arrives. Processors
// parked here still take part in checkpoint and recovery rounds. It
// returns false if the node died permanently while waiting.
func (co *Coordinator) AppBarrier(p *sim.Process, ops NodeOps) bool {
	round := co.abRound
	co.abArrived++
	co.maybeOpenAppBarrier()
	for co.abRound == round {
		// A checkpoint/recovery round may already be under way (it can
		// have started while this processor was draining its last work,
		// missing the kick): take part before parking, or the round
		// never completes.
		if co.pauseRequested && co.lastDone[ops.ID()] != co.round {
			if !co.Participate(p, ops) {
				co.abArrived--
				co.maybeOpenAppBarrier()
				return false
			}
			continue
		}
		co.abWaiters = append(co.abWaiters, p)
		p.Park()
	}
	return true
}

// maybeOpenAppBarrier completes the application barrier round if every
// live unfinished processor has arrived (membership can shrink while
// processors wait).
func (co *Coordinator) maybeOpenAppBarrier() {
	if co.abArrived == 0 {
		return
	}
	if co.abArrived >= co.computing() {
		co.abRound++
		co.abArrived = 0
		for _, w := range co.abWaiters {
			co.eng.WakeNow(w)
		}
		co.abWaiters = nil
	}
}

// kickAppBarrier wakes processors parked at the application barrier so
// they participate in the starting round.
func (co *Coordinator) kickAppBarrier() {
	for _, w := range co.abWaiters {
		co.eng.WakeNow(w)
	}
	co.abWaiters = nil
}

// String summarises coordinator state for diagnostics.
func (co *Coordinator) String() string {
	return fmt.Sprintf("coordinator{round=%d established=%d recoveries=%d}",
		co.round, co.ck.Established, co.ck.Recoveries)
}

// DebugState summarises round progress for deadlock diagnostics.
func (co *Coordinator) DebugState() string {
	q, p1, p2 := -1, -1, -1
	qn, p1n, p2n := -1, -1, -1
	if co.quiesce != nil {
		q, qn = co.quiesce.got, co.quiesce.need
	}
	if co.phase1 != nil {
		p1, p1n = co.phase1.got, co.phase1.need
	}
	if co.phase2 != nil {
		p2, p2n = co.phase2.got, co.phase2.need
	}
	return fmt.Sprintf("round=%d mode=%d pause=%v quiesce=%d/%d p1=%d/%d p2=%d/%d ab=%d/%d idle=%d lastDone=%v",
		co.round, co.mode, co.pauseRequested, q, qn, p1, p1n, p2, p2n,
		co.abArrived, co.computing(), len(co.idleWaiters), co.lastDone)
}

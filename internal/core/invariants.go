package core

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/coherence"
	"coma/internal/proto"
)

// copySet describes every copy of one item across the machine.
type copySet struct {
	owners  []proto.NodeID // Exclusive / MasterShared / SharedCK1 / PreCommit1
	shared  []proto.NodeID
	ck      map[proto.State][]proto.NodeID
	current int // Shared + MasterShared + Exclusive
	excl    int
}

// CheckInvariants validates the recovery-data and coherence invariants at
// a quiesced point (no transaction in flight):
//
//   - at most one owner-state copy per item, matching the directory;
//   - Exclusive implies no other current copy;
//   - every sharer recorded in the directory holds a Shared copy and
//     vice versa;
//   - recovery pairs are complete: CK1 and CK2 (of the same flavour) on
//     two distinct live nodes with mutual partner pointers;
//   - no transient Pre-Commit copies outside an establishment.
//
// It returns the first violation found, or nil.
func CheckInvariants(coh *coherence.Engine) error {
	dir := coh.Directory()
	items := make(map[proto.ItemID]*copySet)
	get := func(it proto.ItemID) *copySet {
		cs := items[it]
		if cs == nil {
			cs = &copySet{ck: make(map[proto.State][]proto.NodeID)}
			items[it] = cs
		}
		return cs
	}

	for _, n := range dir.AliveNodes() {
		a := coh.AM(n)
		a.ForEachAllocated(func(it proto.ItemID, s *slotView) {
			cs := get(it)
			switch s.State {
			case proto.Invalid:
			case proto.Shared:
				cs.shared = append(cs.shared, n)
				cs.current++
			case proto.MasterShared:
				cs.owners = append(cs.owners, n)
				cs.current++
			case proto.Exclusive:
				cs.owners = append(cs.owners, n)
				cs.current++
				cs.excl++
			case proto.SharedCK1, proto.InvCK1, proto.PreCommit1:
				cs.owners = appendIfOwner(cs.owners, n, s.State)
				cs.ck[s.State] = append(cs.ck[s.State], n)
			case proto.SharedCK2, proto.InvCK2, proto.PreCommit2:
				cs.ck[s.State] = append(cs.ck[s.State], n)
			}
		})
	}

	for it, cs := range items {
		if len(cs.owners) > 1 {
			return fmt.Errorf("item %d has %d owner copies on %v", it, len(cs.owners), cs.owners)
		}
		if cs.excl > 0 && cs.current > 1 {
			return fmt.Errorf("item %d is Exclusive but has %d current copies", it, cs.current)
		}
		for _, pairState := range []proto.State{proto.SharedCK1, proto.InvCK1, proto.PreCommit1} {
			ones := cs.ck[pairState]
			twos := cs.ck[pairState.Partner()]
			if len(ones) > 1 || len(twos) > 1 {
				return fmt.Errorf("item %d has duplicated recovery copies: %d x %v, %d x %v",
					it, len(ones), pairState, len(twos), pairState.Partner())
			}
			if len(ones) != len(twos) {
				return fmt.Errorf("item %d has a broken recovery pair: %v on %v, %v on %v",
					it, pairState, ones, pairState.Partner(), twos)
			}
			if len(ones) == 1 {
				n1, n2 := ones[0], twos[0]
				if n1 == n2 {
					return fmt.Errorf("item %d has both recovery copies on node %v", it, n1)
				}
				if p := coh.AM(n1).Slot(it).Partner; p != n2 {
					return fmt.Errorf("item %d: %v partner pointer %v, want %v", it, pairState, p, n2)
				}
				if p := coh.AM(n2).Slot(it).Partner; p != n1 {
					return fmt.Errorf("item %d: %v partner pointer %v, want %v",
						it, pairState.Partner(), p, n1)
				}
			}
		}
		// A committed pair must not coexist with another committed pair
		// of a different flavour (an item is either modified or not).
		if len(cs.ck[proto.SharedCK1]) > 0 && len(cs.ck[proto.InvCK1]) > 0 {
			return fmt.Errorf("item %d has both Shared-CK and Inv-CK pairs", it)
		}

		entry := dir.Lookup(it)
		if len(cs.owners) == 1 {
			if entry == nil {
				return fmt.Errorf("item %d has owner %v but no directory entry", it, cs.owners[0])
			}
			if entry.Owner != cs.owners[0] {
				return fmt.Errorf("item %d: directory owner %v, actual %v", it, entry.Owner, cs.owners[0])
			}
		}
		if entry != nil {
			for _, s := range cs.shared {
				if !entry.Sharers.Contains(s) {
					return fmt.Errorf("item %d: node %v holds Shared but is not in the sharing set", it, s)
				}
			}
			holders := make(map[proto.NodeID]bool, len(cs.shared))
			for _, h := range cs.shared {
				holders[h] = true
			}
			for _, s := range entry.Sharers.Members() {
				if !holders[s] {
					return fmt.Errorf("item %d: node %v is in the sharing set but holds no Shared copy",
						it, s)
				}
			}
		}
	}
	return nil
}

// CheckQuiescent additionally requires that no Pre-Commit copies exist
// (outside an establishment) and that the recovery point is complete:
// every checkpointed item has exactly one committed pair.
func CheckQuiescent(coh *coherence.Engine) error {
	if err := CheckInvariants(coh); err != nil {
		return err
	}
	dir := coh.Directory()
	for _, n := range dir.AliveNodes() {
		var found error
		coh.AM(n).ForEachAllocated(func(it proto.ItemID, s *slotView) {
			if found == nil && (s.State == proto.PreCommit1 || s.State == proto.PreCommit2) {
				found = fmt.Errorf("item %d has a %v copy outside an establishment on node %v",
					it, s.State, n)
			}
		})
		if found != nil {
			return found
		}
	}
	return nil
}

func appendIfOwner(owners []proto.NodeID, n proto.NodeID, st proto.State) []proto.NodeID {
	if st.Owner() {
		return append(owners, n)
	}
	return owners
}

// slotView aliases the AM slot type for scan callbacks.
type slotView = am.Slot

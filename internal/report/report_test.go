package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "t1",
		Title:   "Sample",
		Note:    "a note",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", 1)
	t.AddRow("beta, the second", 2.5)
	return t
}

func TestFprintAligns(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "== t1: Sample ==") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "a note") {
		t.Fatal("missing note")
	}
	lines := strings.Split(out, "\n")
	var header, rule string
	for i, l := range lines {
		if strings.Contains(l, "name") {
			header, rule = l, lines[i+1]
			break
		}
	}
	if header == "" || !strings.Contains(rule, "----") {
		t.Fatalf("missing header/rule:\n%s", out)
	}
	// Columns align: "value" starts at the same offset in all rows.
	col := strings.Index(header, "value")
	for _, l := range lines {
		if strings.Contains(l, "alpha") && len(l) > col {
			if l[col] != '1' {
				t.Fatalf("misaligned row: %q (want value at col %d)", l, col)
			}
		}
	}
}

func TestCSVQuotes(t *testing.T) {
	var b strings.Builder
	if err := sample().CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "name,value") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, `"beta, the second"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.125:  "0.125",
		0.1256: "0.126",
		0:      "0",
		-1.20:  "-1.2",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.051); got != "5.1%" {
		t.Errorf("got %q", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:             "512 B",
		2048:            "2.0 KB",
		3 << 20:         "3.00 MB",
		1.5 * (1 << 30): "1.50 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		500:    "500 B/s",
		20e6:   "20.0 MB/s",
		1.1e9:  "1.10 GB/s",
		2500.0: "2.5 KB/s",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", in, got, want)
		}
	}
}

// Package report renders experiment results as aligned text tables (the
// form the paper's tables take) and CSV (for regenerating the figures
// with any plotting tool).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string // "table2", "fig3", ...
	Title   string
	Note    string // provenance / caveats, printed under the title
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatFloat renders a float compactly (three significant decimals,
// trimming trailing zeros).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// FormatPct renders a fraction as a percentage.
func FormatPct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	}
	return fmt.Sprintf("%.0f B", b)
}

// FormatRate renders a bytes-per-second rate in decimal units (the paper
// reports MB/s).
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2f GB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.1f MB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1f KB/s", bps/1e3)
	}
	return fmt.Sprintf("%.0f B/s", bps)
}

package experiments

import (
	"strings"
	"testing"

	"coma/internal/workload"
)

// renderAll renders the whole campaign with the given worker count and
// returns every table concatenated as text.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	p := tiny()
	p.Apps = []workload.Spec{workload.Water(), workload.Mp3d()}
	p.Workers = workers
	s := NewSuite(p)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelMatchesSerial is the determinism contract of the campaign
// runner: the same seed rendered strictly serially (Workers=1) and on an
// eight-worker pool must produce byte-identical tables. Each simulation
// owns a private sim.Engine and RNG streams derived only from the seed,
// so worker scheduling cannot leak into results. CI greps for this
// test's PASS line — do not add a Skip path.
func TestParallelMatchesSerial(t *testing.T) {
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if serial != parallel {
		d := firstDiff(serial, parallel)
		t.Fatalf("parallel campaign diverged from serial at byte %d:\nserial:   %q\nparallel: %q",
			d, excerpt(serial, d), excerpt(parallel, d))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func excerpt(s string, at int) string {
	lo, hi := at-40, at+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// Package runner executes independent simulation runs on a bounded
// worker pool with singleflight-style memoisation: the first request for
// a key claims it and computes; every other request — concurrent or
// later — waits for and shares that single computation.
//
// Concurrency model. This package is the one deliberate exception to the
// repository's "no raw goroutines/channels outside internal/sim" rule
// (see README §Static analysis & CI): a campaign is a set of *mutually
// independent* simulations, each owning a private sim.Engine and RNG
// streams derived only from the run seed, so runs may execute on real OS
// threads in any order without affecting any simulated outcome. The
// determinism contract lives at the boundary: Pool parallelises across
// engines, never within one, and results are bit-identical to serial
// execution (asserted by TestParallelMatchesSerial in the parent
// package). The package is explicitly allowlisted in the comalint
// determinism/simblocking analyzers; code anywhere else that reaches for
// goroutines or channels is still flagged.
package runner

import "sync"

// Pool memoises computations keyed by K, running at most a fixed number
// concurrently. The zero value is not usable; call New.
type Pool[K comparable, V any] struct {
	sem chan struct{} // counting semaphore bounding concurrent computes

	mu      sync.Mutex
	entries map[K]*entry[V]
}

type entry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// New returns a pool that runs at most workers computations at once.
// Workers below 1 are clamped to 1 (strictly serial execution).
func New[K comparable, V any](workers int) *Pool[K, V] {
	if workers < 1 {
		workers = 1
	}
	return &Pool[K, V]{
		sem:     make(chan struct{}, workers),
		entries: make(map[K]*entry[V]),
	}
}

// Workers returns the concurrency bound.
func (p *Pool[K, V]) Workers() int { return cap(p.sem) }

// Get returns the memoised value for key, computing it with compute on
// the caller's goroutine if this is the first request. Concurrent Gets
// and Starts for one key share a single computation; compute is invoked
// at most once per key for the life of the pool.
func (p *Pool[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	e, leader := p.claim(key)
	if leader {
		p.run(e, compute)
	} else {
		<-e.done
	}
	return e.val, e.err
}

// Start begins computing key in the background and returns immediately.
// It is the planning primitive: a campaign Starts every distinct key it
// will need, then Gets them in render order; the pool keeps all workers
// busy regardless of that order. Starting an already-claimed key is a
// no-op.
func (p *Pool[K, V]) Start(key K, compute func() (V, error)) {
	e, leader := p.claim(key)
	if leader {
		go p.run(e, compute)
	}
}

// Len returns the number of distinct keys claimed so far.
func (p *Pool[K, V]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// claim registers key and reports whether the caller is its leader (the
// one that must compute it).
func (p *Pool[K, V]) claim(key K) (*entry[V], bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[key]; ok {
		return e, false
	}
	e := &entry[V]{done: make(chan struct{})}
	p.entries[key] = e
	return e, true
}

// run executes one computation under the worker bound. The deferred
// close guarantees waiters are released even if compute panics (the
// panic then propagates and crashes the program loudly — a panicking
// simulation is a bug, not a recoverable condition).
func (p *Pool[K, V]) run(e *entry[V], compute func() (V, error)) {
	p.sem <- struct{}{}
	defer func() {
		<-p.sem
		close(e.done)
	}()
	e.val, e.err = compute()
}

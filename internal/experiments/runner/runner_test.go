package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetMemoises(t *testing.T) {
	p := New[int, int](4)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 5; i++ {
		v, err := p.Get(7, compute)
		if err != nil || v != 42 {
			t.Fatalf("Get = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestErrorsAreMemoisedToo(t *testing.T) {
	p := New[string, int](2)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := p.Get("k", func() (int, error) { calls++; return 0, boom })
		if err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestWorkersClampedToOne(t *testing.T) {
	if w := New[int, int](0).Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want 1", w)
	}
	if w := New[int, int](-3).Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want 1", w)
	}
}

// TestSingleflightUnderContention hammers one pool from many goroutines
// with overlapping keys, checking each key computes exactly once and the
// concurrency bound holds. Run under -race this is the soak CI relies
// on.
func TestSingleflightUnderContention(t *testing.T) {
	const (
		workers    = 4
		keys       = 31
		goroutines = 64
		rounds     = 50
	)
	p := New[int, int](workers)
	var computes [keys]atomic.Int64
	var inFlight, maxInFlight atomic.Int64

	compute := func(k int) func() (int, error) {
		return func() (int, error) {
			n := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if n <= m || maxInFlight.CompareAndSwap(m, n) {
					break
				}
			}
			computes[k].Add(1)
			inFlight.Add(-1)
			return k * k, nil
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (g*rounds + r*7) % keys
				if g%3 == 0 {
					p.Start(k, compute(k))
					continue
				}
				v, err := p.Get(k, compute(k))
				if err != nil || v != k*k {
					t.Errorf("Get(%d) = %d, %v", k, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Drain: every key must resolve even if only ever Started.
	for k := 0; k < keys; k++ {
		if v, err := p.Get(k, compute(k)); err != nil || v != k*k {
			t.Fatalf("drain Get(%d) = %d, %v", k, v, err)
		}
	}
	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", k, n)
		}
	}
	if m := maxInFlight.Load(); m > workers {
		t.Errorf("max in-flight computes = %d, bound is %d", m, workers)
	}
	if p.Len() != keys {
		t.Errorf("Len = %d, want %d", p.Len(), keys)
	}
}

// TestStartIsNonBlocking: Start must return while the computation is
// still pending even when all workers are busy.
func TestStartIsNonBlocking(t *testing.T) {
	p := New[int, int](1)
	gate := make(chan struct{})
	p.Start(1, func() (int, error) { <-gate; return 1, nil })
	p.Start(2, func() (int, error) { return 2, nil }) // queued behind key 1
	close(gate)
	if v, err := p.Get(2, nil); err != nil || v != 2 {
		t.Fatalf("Get(2) = %d, %v", v, err)
	}
	if v, err := p.Get(1, nil); err != nil || v != 1 {
		t.Fatalf("Get(1) = %d, %v", v, err)
	}
}

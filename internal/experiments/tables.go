package experiments

import (
	"fmt"

	"coma/internal/am"
	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/directory"
	"coma/internal/machine"
	"coma/internal/mesh"
	"coma/internal/proto"
	"coma/internal/report"
	"coma/internal/sim"
	"coma/internal/stats"
	"coma/internal/workload"
)

// Table1 reproduces the paper's Table 1: the new injections introduced by
// the ECP, with occurrence counts measured on a uniform-sharing stress
// workload run with deliberately shrunken attraction memories so the
// replacement-triggered causes also fire (in the paper's own runs, as in
// the main campaigns here, the applications fit and capacity
// replacements never occur).
func (s *Suite) Table1() (*report.Table, error) {
	app := workload.Uniform()
	if s.P.TargetInstructions > 0 {
		app = app.Scale(float64(s.P.TargetInstructions) / float64(app.Instructions) / 4)
	}
	app.SharedBytes = 2 << 20
	hz := s.P.Freqs[len(s.P.Freqs)-1] // highest frequency: most recovery data
	arch := config.KSR1(s.P.Nodes)
	arch.AMSize = 1 << 20 // 64 frames per node: the working set cannot fit
	cfg := machine.Config{
		Arch:         arch,
		Protocol:     coherence.ECP,
		App:          app,
		Seed:         s.P.Seed,
		CheckpointHz: hz,
		Oracle:       true,
		MaxCycles:    1 << 40,
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: table1: %w", err)
	}
	r, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: table1: %w", err)
	}
	total := r.Total()
	t := &report.Table{
		ID:    "table1",
		Title: "New injections introduced by the ECP",
		Note: fmt.Sprintf("counts measured on %s under memory pressure (1 MB AMs), %d nodes, %g recovery points/s",
			app.Name, s.P.Nodes, hz),
		Columns: []string{"cause", "local copy state", "action", "count"},
	}
	rows := []struct {
		cause  proto.InjectCause
		local  string
		action string
		why    string
	}{
		{proto.InjectReplaceSharedCK, "Shared-CK", "Injection", "Replacement"},
		{proto.InjectReplaceInvCK, "Inv-CK", "Injection", "Replacement"},
		{proto.InjectReadInvCK, "Inv-CK", "Injection + read miss", "Read access"},
		{proto.InjectWriteInvCK, "Inv-CK", "Injection + write miss", "Write access"},
		{proto.InjectWriteSharedCK, "Shared-CK", "Injection + write miss", "Write access"},
	}
	for _, row := range rows {
		t.AddRow(row.why, row.local, row.action, total.Injections[row.cause])
	}
	return t, nil
}

// Table2 reproduces the read-miss latency calibration: the time to
// satisfy a read miss from each level of the memory hierarchy, measured
// on an idle 4x4 mesh exactly as Table 2 specifies.
func (s *Suite) Table2() (*report.Table, error) {
	arch := config.KSR1(16)
	t := &report.Table{
		ID:      "table2",
		Title:   "Read miss latency times",
		Note:    "idle 4x4 mesh, no contention; paper: 1 / 18 / 116 / 124 cycles",
		Columns: []string{"read miss access", "cycles", "paper"},
	}
	t.AddRow("fill from cache", arch.CacheAccess, int64(1))

	measure := func(requester proto.NodeID) (int64, error) {
		eng := sim.New()
		defer eng.Shutdown()
		net := mesh.New(eng, arch)
		dir := directory.New(arch.Nodes)
		ams := make([]*am.AM, arch.Nodes)
		counters := make([]*stats.Node, arch.Nodes)
		for i := range ams {
			ams[i] = am.New(arch, proto.NodeID(i))
			counters[i] = &stats.Node{}
		}
		coh := coherence.New(eng, arch, coherence.Standard, coherence.Options{},
			net, dir, ams, counters, nopCacheOps{})
		var lat int64
		eng.Spawn("probe", func(p *sim.Process) {
			// Item 0 homes at node 0; node 0 owns it. Warm the
			// requester's page frame with a neighbouring item first.
			coh.WriteItem(p, 0, 0, 7)
			if requester != 0 {
				coh.ReadItem(p, requester, 1)
				coh.ReadItem(p, 0, 1)
			}
			start := p.Now()
			coh.ReadItem(p, requester, 0)
			lat = p.Now() - start
		})
		if _, err := eng.Run(); err != nil {
			return 0, err
		}
		return lat, nil
	}

	local, err := measure(0)
	if err != nil {
		return nil, err
	}
	t.AddRow("fill from local AM", local, int64(18))
	oneHop, err := measure(1) // node 1 is one hop from node 0
	if err != nil {
		return nil, err
	}
	t.AddRow("fill from remote AM (1 hop)", oneHop, int64(116))
	twoHop, err := measure(2) // node 2 is two hops from node 0
	if err != nil {
		return nil, err
	}
	t.AddRow("fill from remote AM (2 hops)", twoHop, int64(124))
	return t, nil
}

type nopCacheOps struct{}

func (nopCacheOps) InvalidateItem(proto.NodeID, proto.ItemID) {}
func (nopCacheOps) DowngradeItem(proto.NodeID, proto.ItemID)  {}

// Table3 reproduces the simulated-application characteristics: reference
// mix fractions measured by draining each synthetic generator, against
// the paper's Table 3 percentages.
func (s *Suite) Table3() (*report.Table, error) {
	t := &report.Table{
		ID:    "table3",
		Title: "Simulated applications characteristics",
		Note:  "measured on the synthetic generators; paper percentages in parentheses",
		Columns: []string{"application", "instructions", "reads", "writes",
			"shared reads", "shared writes"},
	}
	for _, spec := range s.P.Apps {
		app := s.P.scaled(spec)
		var instr, reads, writes, sreads, swrites int64
		for proc := 0; proc < s.P.Nodes; proc++ {
			g := app.NewApp(proc, s.P.Nodes, s.P.Seed)
			for {
				r := g.Next()
				if r.Kind == workload.End {
					break
				}
				switch r.Kind {
				case workload.Instr:
					instr += r.N
				case workload.Read:
					instr++
					reads++
					if r.Shared {
						sreads++
					}
				case workload.Write:
					instr++
					writes++
					if r.Shared {
						swrites++
					}
				}
			}
		}
		pct := func(n int64, paper float64) string {
			return fmt.Sprintf("%.1f%% (%.1f%%)", 100*float64(n)/float64(instr), 100*paper)
		}
		t.AddRow(app.Name,
			fmt.Sprintf("%.1fM", float64(instr)/1e6),
			pct(reads, spec.ReadFrac),
			pct(writes, spec.WriteFrac),
			pct(sreads, spec.SharedReadFrac),
			pct(swrites, spec.SharedWriteFrac))
	}
	return t, nil
}

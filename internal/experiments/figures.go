package experiments

import (
	"fmt"

	"coma/internal/report"
	"coma/internal/stats"
)

// Fig3 reproduces the time-overhead decomposition: for each application
// and recovery-point frequency, T_create, T_commit and T_pollution as
// fractions of the standard-protocol execution time.
func (s *Suite) Fig3() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig3",
		Title: "Time overhead vs recovery-point frequency",
		Note: fmt.Sprintf("%d nodes; overheads relative to the standard protocol; "+
			"paper: 5%% best case to 35%% worst case", s.P.Nodes),
		Columns: []string{"application", "rp/s", "T_create", "T_commit",
			"T_pollution", "total overhead"},
	}
	for _, app := range s.P.Apps {
		std, err := s.std(app, s.P.Nodes)
		if err != nil {
			return nil, err
		}
		for _, hz := range s.P.Freqs {
			ecp, err := s.ecp(app, s.P.Nodes, hz)
			if err != nil {
				return nil, err
			}
			o := stats.Decompose(std, ecp)
			t.AddRow(app.Name, hz,
				report.FormatPct(o.CreateFraction()),
				report.FormatPct(o.CommitFraction()),
				report.FormatPct(o.PollutionFraction()),
				report.FormatPct(o.OverheadFraction()))
		}
	}
	return t, nil
}

// Fig4 reproduces the per-node replication throughput during
// recovery-point establishment (the paper reports ~20 MB/s per node,
// rising to ~30 MB/s when existing replication is reused).
func (s *Suite) Fig4() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig4",
		Title:   "Per-node replication throughput during establishment",
		Note:    fmt.Sprintf("%d nodes; paper: ~20 MB/s per node", s.P.Nodes),
		Columns: []string{"application", "rp/s", "per-node throughput", "reuse fraction"},
	}
	for _, app := range s.P.Apps {
		for _, hz := range s.P.Freqs {
			ecp, err := s.ecp(app, s.P.Nodes, hz)
			if err != nil {
				return nil, err
			}
			total := ecp.Total()
			reuse := 0.0
			if n := total.CkptItemsReplicated + total.CkptItemsReused; n > 0 {
				reuse = float64(total.CkptItemsReused) / float64(n)
			}
			t.AddRow(app.Name, hz,
				report.FormatRate(ecp.PerNodeReplicationThroughput()),
				report.FormatPct(reuse))
		}
	}
	return t, nil
}

// Fig5 reproduces the attraction-memory miss rates against frequency:
// the ECP's key property is that they barely move because unmodified
// recovery data stays readable.
func (s *Suite) Fig5() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig5",
		Title:   "Node AM miss rate vs recovery-point frequency",
		Note:    fmt.Sprintf("%d nodes; paper: negligible variation at any frequency", s.P.Nodes),
		Columns: []string{"application", "rp/s", "read miss rate", "write miss rate", "Shared-CK read share"},
	}
	for _, app := range s.P.Apps {
		std, err := s.std(app, s.P.Nodes)
		if err != nil {
			return nil, err
		}
		stotal := std.Total()
		t.AddRow(app.Name, "std",
			report.FormatPct(stotal.AMReadMissRate()),
			report.FormatPct(stotal.AMWriteMissRate()), "-")
		for _, hz := range s.P.Freqs {
			ecp, err := s.ecp(app, s.P.Nodes, hz)
			if err != nil {
				return nil, err
			}
			total := ecp.Total()
			ckShare := 0.0
			if total.AMReads > 0 {
				ckShare = float64(total.SharedCKReads) / float64(total.AMReads)
			}
			t.AddRow(app.Name, hz,
				report.FormatPct(total.AMReadMissRate()),
				report.FormatPct(total.AMWriteMissRate()),
				report.FormatPct(ckShare))
		}
	}
	return t, nil
}

// Fig6 reproduces the injection counts per 10 000 memory references,
// split into read-triggered and write-triggered causes (the paper finds
// write accesses on Shared-CK copies dominate and grow with frequency,
// while read-triggered injections stay flat).
func (s *Suite) Fig6() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig6",
		Title:   "Injections per node per 10000 references vs frequency",
		Note:    fmt.Sprintf("%d nodes; paper: at most ~25 total, write-dominated", s.P.Nodes),
		Columns: []string{"application", "rp/s", "on reads", "on writes", "write share"},
	}
	for _, app := range s.P.Apps {
		for _, hz := range s.P.Freqs {
			ecp, err := s.ecp(app, s.P.Nodes, hz)
			if err != nil {
				return nil, err
			}
			total := ecp.Total()
			onR := total.Per10KRefs(total.InjectionsOnReads())
			onW := total.Per10KRefs(total.InjectionsOnWrites())
			share := 0.0
			if onR+onW > 0 {
				share = onW / (onR + onW)
			}
			t.AddRow(app.Name, hz, onR, onW, report.FormatPct(share))
		}
	}
	return t, nil
}

// Fig7 reproduces the memory overhead: page frames allocated by the ECP
// architecture versus the standard one (the paper measures 1.1x–2.6x).
func (s *Suite) Fig7() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig7",
		Title:   "Page allocation: ECP vs standard protocol",
		Note:    fmt.Sprintf("%d nodes, highest frequency; paper: overhead 1.1x to 2.6x", s.P.Nodes),
		Columns: []string{"application", "std pages", "ecp pages", "overhead"},
	}
	hz := s.P.Freqs[len(s.P.Freqs)-1]
	for _, app := range s.P.Apps {
		std, err := s.std(app, s.P.Nodes)
		if err != nil {
			return nil, err
		}
		ecp, err := s.ecp(app, s.P.Nodes, hz)
		if err != nil {
			return nil, err
		}
		ratio := float64(ecp.PagesPeak) / float64(std.PagesPeak)
		t.AddRow(app.Name, std.PagesPeak, ecp.PagesPeak, fmt.Sprintf("%.2fx", ratio))
	}
	return t, nil
}

// Fig8 reproduces the create-phase scalability: T_create as a fraction of
// standard execution time while the machine grows (the paper finds it
// constant or decreasing).
func (s *Suite) Fig8() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig8",
		Title:   "Create-phase cost vs processor count",
		Note:    fmt.Sprintf("%g recovery points/s; paper: flat or decreasing", s.P.SweepHz),
		Columns: append([]string{"application"}, nodeCols(s.P.NodeSweep)...),
	}
	return s.sweepTable(t, func(std, ecp *stats.Run) string {
		return report.FormatPct(stats.Decompose(std, ecp).CreateFraction())
	})
}

// Fig9 reproduces the aggregate replication throughput scalability (the
// paper: 211 MB/s at 9 processors to 1.1 GB/s at 56 for Cholesky).
func (s *Suite) Fig9() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig9",
		Title:   "Aggregate recovery-data throughput vs processor count",
		Note:    fmt.Sprintf("%g recovery points/s; paper: near-linear growth", s.P.SweepHz),
		Columns: append([]string{"application"}, nodeCols(s.P.NodeSweep)...),
	}
	return s.sweepTable(t, func(std, ecp *stats.Run) string {
		return report.FormatRate(ecp.ReplicationThroughput())
	})
}

// Fig10 reproduces the pollution-effect scalability (flat or decreasing
// in the paper).
func (s *Suite) Fig10() (*report.Table, error) {
	t := &report.Table{
		ID:      "fig10",
		Title:   "Pollution effect vs processor count",
		Note:    fmt.Sprintf("%g recovery points/s; paper: flat or decreasing", s.P.SweepHz),
		Columns: append([]string{"application"}, nodeCols(s.P.NodeSweep)...),
	}
	return s.sweepTable(t, func(std, ecp *stats.Run) string {
		return report.FormatPct(stats.Decompose(std, ecp).PollutionFraction())
	})
}

// Fig11 reproduces the per-node injection counts against machine size
// (read-triggered injections fall as shared items find unused room;
// write-triggered ones stay constant).
func (s *Suite) Fig11() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig11",
		Title: "Injections per node per 10000 references vs processor count",
		Note: fmt.Sprintf("%g recovery points/s; rows per application: read-triggered then write-triggered",
			s.P.SweepHz),
		Columns: append([]string{"application"}, nodeCols(s.P.NodeSweep)...),
	}
	for _, app := range s.P.Apps {
		reads := make([]interface{}, 0, len(s.P.NodeSweep)+1)
		writes := make([]interface{}, 0, len(s.P.NodeSweep)+1)
		reads = append(reads, app.Name+" (reads)")
		writes = append(writes, app.Name+" (writes)")
		for _, nodes := range s.P.NodeSweep {
			ecp, err := s.ecp(app, nodes, s.P.SweepHz)
			if err != nil {
				return nil, err
			}
			// Injections and references are machine-wide sums, so their
			// ratio is already the per-node average rate.
			total := ecp.Total()
			reads = append(reads, report.FormatFloat(total.Per10KRefs(total.InjectionsOnReads())))
			writes = append(writes, report.FormatFloat(total.Per10KRefs(total.InjectionsOnWrites())))
		}
		t.AddRow(reads...)
		t.AddRow(writes...)
	}
	return t, nil
}

// sweepTable fills one row per application over the node sweep.
func (s *Suite) sweepTable(t *report.Table, cell func(std, ecp *stats.Run) string) (*report.Table, error) {
	for _, app := range s.P.Apps {
		row := make([]interface{}, 0, len(s.P.NodeSweep)+1)
		row = append(row, app.Name)
		for _, nodes := range s.P.NodeSweep {
			std, err := s.std(app, nodes)
			if err != nil {
				return nil, err
			}
			ecp, err := s.ecp(app, nodes, s.P.SweepHz)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(std, ecp))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func nodeCols(sweep []int) []string {
	out := make([]string, len(sweep))
	for i, n := range sweep {
		out[i] = fmt.Sprintf("%d procs", n)
	}
	return out
}

// All regenerates every table and figure in paper order. It plans the
// whole campaign first — every distinct simulation starts on the worker
// pool before any table renders — so rendering order never serialises
// the runs.
func (s *Suite) All() ([]*report.Table, error) {
	s.Plan()
	kind := []func() (*report.Table, error){
		s.Table1, s.Table2, s.Table3,
		s.Fig3, s.Fig4, s.Fig5, s.Fig6, s.Fig7,
		s.Fig8, s.Fig9, s.Fig10, s.Fig11,
		s.Ablation,
	}
	out := make([]*report.Table, 0, len(kind))
	for _, fn := range kind {
		t, err := fn()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.2): the read-miss latency calibration (Table 2), the
// application characteristics (Table 3), the injection taxonomy
// (Table 1), the time-overhead decomposition against recovery-point
// frequency (Fig. 3) with replication throughput (Fig. 4), miss rates
// (Fig. 5) and injection counts (Fig. 6), the memory overhead (Fig. 7),
// and the processor-count scalability study (Figs. 8–11).
//
// Runs are memoised: the figures of one sweep share their underlying
// simulations. Absolute instruction counts are scaled by the parameter
// set (Quick/Bench/Full) — the paper's full SPLASH budgets are minutes of
// simulation per run; the scaled runs preserve the shapes (see
// EXPERIMENTS.md for measured-vs-paper values).
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/experiments/runner"
	"coma/internal/machine"
	"coma/internal/stats"
	"coma/internal/workload"
)

// Params scopes an experiment campaign.
type Params struct {
	// TargetInstructions rescales every application to about this many
	// total instructions (0 keeps the paper's full budgets).
	TargetInstructions int64
	// Nodes is the machine size for the frequency study (16, as in the
	// paper's Fig. 3–7 runs on a 4x4 mesh).
	Nodes int
	// Freqs are the recovery-point frequencies (per second) of the
	// frequency study. The paper sweeps 5–400.
	Freqs []float64
	// NodeSweep are the machine sizes of the scalability study
	// (9–56 in the paper).
	NodeSweep []int
	// SweepHz is the fixed frequency of the scalability study (100).
	SweepHz float64
	// Seed makes the campaign deterministic.
	Seed uint64
	// Apps are the workloads (the four Table 3 applications).
	Apps []workload.Spec
	// Progress, when non-nil, receives one line per simulation run.
	// Calls are serialised, but under a parallel campaign their order
	// follows worker scheduling, not render order.
	Progress func(msg string)
	// Workers bounds the number of simulations executed concurrently
	// (0 means GOMAXPROCS, or 16 with Remote set — remote runs wait on
	// I/O, not local CPU; 1 is strictly serial). The rendered tables
	// are byte-identical for every worker count: each run owns a
	// private sim.Engine and RNG streams derived only from the seed.
	Workers int
	// Remote, when non-nil, executes runs through an external service
	// (the comad daemon) instead of in-process: the suite hands it the
	// canonical identity of each distinct run and renders whatever
	// results come back. Identities are exactly the ones the daemon uses
	// as cache keys, so a campaign re-run against a warm daemon is
	// served entirely from its content-addressed store.
	Remote func(config.RunIdentity) (*stats.Run, error)
}

// Quick returns a laptop-scale campaign: runs long enough that even the
// lowest frequency establishes several recovery points, at roughly a
// tenth of the paper's instruction budgets.
func Quick() Params {
	return Params{
		TargetInstructions: 16_000_000,
		Nodes:              16,
		Freqs:              []float64{50, 100, 400},
		NodeSweep:          []int{9, 16, 30, 42, 56},
		SweepHz:            100,
		Seed:               1,
		Apps:               workload.Splash(),
	}
}

// Bench returns a very small campaign for the Go benchmark harness.
func Bench() Params {
	return Params{
		TargetInstructions: 1_600_000,
		Nodes:              16,
		Freqs:              []float64{200, 400},
		NodeSweep:          []int{9, 16, 30},
		SweepHz:            400,
		Seed:               1,
		Apps:               workload.Splash(),
	}
}

// Full returns the paper-scale campaign: full instruction budgets and the
// complete 5–400 frequency sweep. Expect minutes per simulation.
func Full() Params {
	return Params{
		TargetInstructions: 0,
		Nodes:              16,
		Freqs:              []float64{5, 25, 100, 400},
		NodeSweep:          []int{9, 16, 30, 42, 56},
		SweepHz:            100,
		Seed:               1,
		Apps:               workload.Splash(),
	}
}

// scaled rescales an application to the campaign's budget.
func (p Params) scaled(app workload.Spec) workload.Spec {
	if p.TargetInstructions <= 0 {
		return app
	}
	return app.Scale(float64(p.TargetInstructions) / float64(app.Instructions))
}

// runKey carries the parameters of one distinct simulation of a
// campaign. The memoisation key of the suite's worker pool is NOT this
// struct but the canonical config.RunIdentity hash derived from it (see
// Suite.identity): every figure that needs the same configuration shares
// one run, and the key it shares is byte-for-byte the key the comad
// daemon uses for its content-addressed result cache.
type runKey struct {
	app      string
	nodes    int
	hzMilli  int64
	protocol coherence.Protocol
	opts     coherence.Options
	modern   bool // the faster-processor architecture preset
}

// hz returns the recovery-point frequency the key encodes.
func (k runKey) hz() float64 { return float64(k.hzMilli) / 1000 }

// identity expands a run key into the repository-wide canonical run
// identity (internal/config). Everything execute feeds into
// machine.Config must be represented here — a field that influences the
// result but not the identity would let two different runs collide in
// the memoisation pool and in the daemon's cache.
func (s *Suite) identity(key runKey, app workload.Spec) config.RunIdentity {
	arch := config.KSR1(key.nodes)
	if key.modern {
		arch = config.Modern(key.nodes)
	}
	return config.RunIdentity{
		Arch:               arch,
		Protocol:           key.protocol.String(),
		NoReplicationReuse: key.opts.NoReplicationReuse,
		NoSharedCKReads:    key.opts.NoSharedCKReads,
		App:                app.Name,
		Instructions:       s.P.scaled(app).Instructions,
		Seed:               s.P.Seed,
		CheckpointHz:       key.hz(),
		Oracle:             true,
		MaxCycles:          1 << 40,
	}
}

// Suite memoises simulation runs across the experiment functions and
// executes them on a bounded worker pool (Params.Workers). Rendering is
// unchanged by parallelism: methods block until the runs they need are
// done, and every run is bit-identical to its serial execution.
type Suite struct {
	P    Params
	pool *runner.Pool[string, *stats.Run]

	progressMu sync.Mutex

	// Work actually executed (memoised hits excluded), for the perf
	// artifact emitted by cmd/comabench -json.
	runs   atomic.Int64
	cycles atomic.Int64
	events atomic.Int64
}

// remoteDefaultWorkers is the submission fan-out used when Params.Remote
// is set and Workers is unspecified.
const remoteDefaultWorkers = 16

// NewSuite builds a suite for the parameters.
func NewSuite(p Params) *Suite {
	if p.Nodes == 0 {
		p = Quick()
	}
	workers := p.Workers
	if workers <= 0 {
		if p.Remote != nil {
			// Remote runs are I/O waits on the daemon, not local CPU:
			// fan submissions out well past GOMAXPROCS (which is 1 on a
			// small box and would serialise an entire cluster).
			workers = remoteDefaultWorkers
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	return &Suite{P: p, pool: runner.New[string, *stats.Run](workers)}
}

// Totals reports the simulations actually executed so far (shared,
// memoised runs counted once) with their simulated cycles and kernel
// events dispatched.
func (s *Suite) Totals() (runs, cycles, events int64) {
	return s.runs.Load(), s.cycles.Load(), s.events.Load()
}

// Run simulates (or returns the memoised result of) one configuration.
func (s *Suite) Run(app workload.Spec, nodes int, hz float64,
	protocol coherence.Protocol, opts coherence.Options) (*stats.Run, error) {

	key := runKey{app.Name, nodes, int64(hz * 1000), protocol, opts, false}
	return s.pool.Get(s.identity(key, app).Hash(),
		func() (*stats.Run, error) { return s.execute(key, app) })
}

// start schedules one configuration on the worker pool without waiting
// (the planning path; see Plan).
func (s *Suite) start(app workload.Spec, nodes int, hz float64,
	protocol coherence.Protocol, opts coherence.Options, modern bool) {

	key := runKey{app.Name, nodes, int64(hz * 1000), protocol, opts, modern}
	s.pool.Start(s.identity(key, app).Hash(),
		func() (*stats.Run, error) { return s.execute(key, app) })
}

// execute performs one simulation. It runs on a pool worker; everything
// it touches is either private to the run (machine, engine, RNG
// streams) or synchronised (progress, counters). With Params.Remote set
// the run is delegated to the external service instead.
func (s *Suite) execute(key runKey, app workload.Spec) (*stats.Run, error) {
	id := s.identity(key, app)
	if s.P.Remote != nil {
		s.progress(fmt.Sprintf("remote %s on %d nodes, %s, %g recovery points/s",
			app.Name, key.nodes, key.protocol, key.hz()))
		r, err := s.P.Remote(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%d/%s: %w", app.Name, key.nodes, key.protocol, err)
		}
		s.runs.Add(1)
		s.cycles.Add(r.Cycles)
		s.events.Add(r.Events)
		return r, nil
	}
	s.progress(fmt.Sprintf("running %s on %d nodes, %s, %g recovery points/s",
		app.Name, key.nodes, key.protocol, key.hz()))
	cfg := machine.Config{
		Arch:         id.Arch,
		Protocol:     key.protocol,
		Opts:         key.opts,
		App:          s.P.scaled(app),
		Seed:         s.P.Seed,
		CheckpointHz: key.hz(),
		Oracle:       true,
		MaxCycles:    id.MaxCycles,
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%d/%s: %w", app.Name, key.nodes, key.protocol, err)
	}
	r, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%d/%s: %w", app.Name, key.nodes, key.protocol, err)
	}
	s.runs.Add(1)
	s.cycles.Add(r.Cycles)
	s.events.Add(r.Events)
	return r, nil
}

func (s *Suite) progress(msg string) {
	if s.P.Progress == nil {
		return
	}
	s.progressMu.Lock()
	defer s.progressMu.Unlock()
	s.P.Progress(msg)
}

// std returns the standard-protocol baseline for an app and size.
func (s *Suite) std(app workload.Spec, nodes int) (*stats.Run, error) {
	return s.Run(app, nodes, 0, coherence.Standard, coherence.Options{})
}

// ecp returns an ECP run at a frequency.
func (s *Suite) ecp(app workload.Spec, nodes int, hz float64) (*stats.Run, error) {
	return s.Run(app, nodes, hz, coherence.ECP, coherence.Options{})
}

// modernRun returns a run on the faster-processor preset (the ablation's
// "modern arch" column), memoised and scheduled like every other run.
func (s *Suite) modernRun(app workload.Spec, hz float64, protocol coherence.Protocol) (*stats.Run, error) {
	key := runKey{app.Name, s.P.Nodes, int64(hz * 1000), protocol, coherence.Options{}, true}
	return s.pool.Get(s.identity(key, app).Hash(),
		func() (*stats.Run, error) { return s.execute(key, app) })
}

package experiments

import "coma/internal/coherence"

// TableIDs lists every table and figure of the reproduction in paper
// order; it is the id vocabulary of Plan and cmd/comabench -only.
var TableIDs = []string{
	"table1", "table2", "table3",
	"fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11",
	"ablation",
}

// Plan pre-schedules every distinct simulation the listed tables need on
// the worker pool (all of them when ids is empty), deduplicated across
// tables: the frequency figures (Fig. 3–7) share one std baseline and
// one ECP run per frequency, the node-sweep figures (Fig. 8–11) share
// the sweep runs, and the ablation reuses the campaign baseline. The
// table methods then render in paper order, blocking only on the runs
// they need while the rest keep computing.
//
// Planning is a pure scheduling hint: unplanned tables still work (their
// runs execute memoised on first request), and planned runs are
// bit-identical to serial execution.
func (s *Suite) Plan(ids ...string) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	all := len(ids) == 0
	need := func(id string) bool { return all || want[id] }

	lastHz := s.P.SweepHz
	if len(s.P.Freqs) > 0 {
		lastHz = s.P.Freqs[len(s.P.Freqs)-1]
	}
	none := coherence.Options{}

	for _, app := range s.P.Apps {
		// Frequency study (Fig. 3–7 and the ablation's baseline).
		if need("fig3") || need("fig5") || need("fig7") || need("ablation") {
			s.start(app, s.P.Nodes, 0, coherence.Standard, none, false)
		}
		if need("fig3") || need("fig4") || need("fig5") || need("fig6") {
			for _, hz := range s.P.Freqs {
				s.start(app, s.P.Nodes, hz, coherence.ECP, none, false)
			}
		} else if need("fig7") || need("ablation") {
			s.start(app, s.P.Nodes, lastHz, coherence.ECP, none, false)
		}

		// Scalability study (Fig. 8–11).
		if need("fig8") || need("fig9") || need("fig10") || need("fig11") {
			for _, nodes := range s.P.NodeSweep {
				if need("fig8") || need("fig9") || need("fig10") {
					s.start(app, nodes, 0, coherence.Standard, none, false)
				}
				s.start(app, nodes, s.P.SweepHz, coherence.ECP, none, false)
			}
		}

		// Ablation extras: the two optimisation knock-outs and the
		// faster-processor pair.
		if need("ablation") {
			s.start(app, s.P.Nodes, lastHz, coherence.ECP,
				coherence.Options{NoReplicationReuse: true}, false)
			s.start(app, s.P.Nodes, lastHz, coherence.ECP,
				coherence.Options{NoSharedCKReads: true}, false)
			s.start(app, s.P.Nodes, 0, coherence.Standard, none, true)
			s.start(app, s.P.Nodes, lastHz, coherence.ECP, none, true)
		}
	}
	// Tables 1–3 run no pooled simulations: Table 1 is a bespoke
	// memory-pressure machine, Table 2 measures idle-mesh latencies on
	// throwaway engines, Table 3 drains the generators directly.
}

package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/stats"
	"coma/internal/workload"
)

// tiny returns a very small campaign so the whole suite runs in seconds.
func tiny() Params {
	p := Bench()
	p.TargetInstructions = 300_000
	p.Freqs = []float64{400}
	p.NodeSweep = []int{9, 16}
	p.SweepHz = 400
	return p
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	s := NewSuite(tiny())
	tb, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "18", "116", "124"}
	if len(tb.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if row[1] != want[i] {
			t.Errorf("row %d: measured %s, want paper's %s", i, row[1], want[i])
		}
	}
}

func TestTable3WithinTolerance(t *testing.T) {
	s := NewSuite(tiny())
	tb, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Cells are "measured% (paper%)"; they must agree within 1.5 points.
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			parts := strings.SplitN(cell, "% (", 2)
			if len(parts) != 2 {
				t.Fatalf("cell format: %q", cell)
			}
			got, err1 := strconv.ParseFloat(parts[0], 64)
			want, err2 := strconv.ParseFloat(strings.TrimSuffix(parts[1], "%)"), 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("cell parse: %q", cell)
			}
			if diff := got - want; diff > 1.5 || diff < -1.5 {
				t.Errorf("%s: measured %.1f%%, paper %.1f%%", row[0], got, want)
			}
		}
	}
}

func TestSuiteMemoisesRuns(t *testing.T) {
	s := NewSuite(tiny())
	app := workload.Water()
	a, err := s.Run(app, 9, 400, coherence.ECP, coherence.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(app, 9, 400, coherence.ECP, coherence.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configuration re-simulated")
	}
	c, err := s.Run(app, 9, 400, coherence.ECP, coherence.Options{NoReplicationReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different options shared a cached run")
	}
}

func TestFig3RowsAndDirection(t *testing.T) {
	p := tiny()
	p.Apps = []workload.Spec{workload.Water()}
	p.Freqs = []float64{200, 400}
	p.TargetInstructions = 1_500_000
	s := NewSuite(p)
	tb, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Total overhead must grow with frequency.
	low := parsePct(t, tb.Rows[0][5])
	high := parsePct(t, tb.Rows[1][5])
	if high <= low {
		t.Errorf("overhead at 400/s (%v) not above 200/s (%v)", high, low)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("percentage %q", s)
	}
	return v
}

func TestAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	p := tiny()
	p.Apps = []workload.Spec{workload.Water(), workload.Mp3d()}
	s := NewSuite(p)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("tables = %d, want %d", len(tables), len(wantIDs))
	}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Errorf("table %d id = %s, want %s", i, tb.ID, wantIDs[i])
		}
		if len(tb.Rows) == 0 {
			t.Errorf("table %s is empty", tb.ID)
		}
		if len(tb.Columns) == 0 {
			t.Errorf("table %s has no columns", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("table %s: row width %d vs %d columns", tb.ID, len(row), len(tb.Columns))
			}
		}
	}
}

// TestRemoteDefaultsToWideFanout pins the submission-width rule for
// remote campaigns: runs executed by a daemon (or cluster) are I/O
// waits, not local CPU, so an unspecified Workers must fan out to
// remoteDefaultWorkers instead of GOMAXPROCS — on a one-core box the
// latter would serialise an entire worker fleet. An explicit Workers
// still wins in both modes.
func TestRemoteDefaultsToWideFanout(t *testing.T) {
	remote := func(config.RunIdentity) (*stats.Run, error) { return nil, nil }

	p := tiny()
	p.Remote = remote
	if got := NewSuite(p).pool.Workers(); got != remoteDefaultWorkers {
		t.Errorf("remote suite fan-out = %d, want %d", got, remoteDefaultWorkers)
	}

	p.Workers = 3
	if got := NewSuite(p).pool.Workers(); got != 3 {
		t.Errorf("explicit Workers overridden: got %d, want 3", got)
	}

	local := tiny()
	local.Workers = 0
	if got := NewSuite(local).pool.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("local suite fan-out = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

package experiments

import (
	"fmt"

	"coma/internal/coherence"
	"coma/internal/report"
	"coma/internal/stats"
	"coma/internal/workload"
)

// Ablation quantifies the design choices the paper calls out, beyond its
// own figures:
//
//   - replication reuse (§3.3): turning an existing Shared copy into the
//     second recovery copy instead of moving data;
//   - readable Shared-CK copies (§3.1): recovery data stays accessible
//     until the first modification;
//   - the faster-processor architecture of the paper's reference [10],
//     where relative degradation is reported to decrease.
//
// Each row is the total ECP overhead against the matching
// standard-protocol baseline.
func (s *Suite) Ablation() (*report.Table, error) {
	hz := s.P.Freqs[len(s.P.Freqs)-1]
	t := &report.Table{
		ID:    "ablation",
		Title: "Design-choice ablation: total ECP overhead",
		Note: fmt.Sprintf("%d nodes, %g recovery points/s; 'modern' is the 5x-faster-processor variant",
			s.P.Nodes, hz),
		Columns: []string{"application", "full ECP", "no replication reuse",
			"no Shared-CK reads", "modern arch"},
	}
	for _, app := range s.P.Apps {
		std, err := s.std(app, s.P.Nodes)
		if err != nil {
			return nil, err
		}
		overhead := func(opts coherence.Options) (string, error) {
			ecp, err := s.Run(app, s.P.Nodes, hz, coherence.ECP, opts)
			if err != nil {
				return "", err
			}
			return report.FormatPct(stats.Decompose(std, ecp).OverheadFraction()), nil
		}
		full, err := overhead(coherence.Options{})
		if err != nil {
			return nil, err
		}
		noReuse, err := overhead(coherence.Options{NoReplicationReuse: true})
		if err != nil {
			return nil, err
		}
		noCKReads, err := overhead(coherence.Options{NoSharedCKReads: true})
		if err != nil {
			return nil, err
		}
		modern, err := s.modernOverhead(app, hz)
		if err != nil {
			return nil, err
		}
		t.AddRow(app.Name, full, noReuse, noCKReads, modern)
	}
	return t, nil
}

// modernOverhead runs the std/ECP pair on the faster-processor preset.
// The runs go through the suite's worker pool, so a planned campaign
// (Suite.Plan) has them computing alongside everything else.
func (s *Suite) modernOverhead(app workload.Spec, hz float64) (string, error) {
	std, err := s.modernRun(app, 0, coherence.Standard)
	if err != nil {
		return "", fmt.Errorf("experiments: modern %s: %w", app.Name, err)
	}
	ecp, err := s.modernRun(app, hz, coherence.ECP)
	if err != nil {
		return "", fmt.Errorf("experiments: modern %s: %w", app.Name, err)
	}
	return report.FormatPct(stats.Decompose(std, ecp).OverheadFraction()), nil
}

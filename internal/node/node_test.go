package node

import (
	"testing"

	"coma/internal/am"
	"coma/internal/cache"
	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/core"
	"coma/internal/directory"
	"coma/internal/mesh"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
	"coma/internal/workload"
)

// rig assembles a minimal machine (nodes + coordinator) without the
// machine package, so the node layer can be exercised directly.
type rig struct {
	eng      *sim.Engine
	arch     config.Arch
	coh      *coherence.Engine
	co       *core.Coordinator
	nodes    []*Node
	caches   []*cache.Cache
	counters []*stats.Node
	writes   map[proto.ItemID]uint64
	ended    int
}

type rigCacheOps struct{ r *rig }

func (c rigCacheOps) InvalidateItem(n proto.NodeID, item proto.ItemID) {
	c.r.nodes[n].InvalidateItem(item)
}
func (c rigCacheOps) DowngradeItem(n proto.NodeID, item proto.ItemID) {
	c.r.nodes[n].DowngradeItem(item)
}

func newRig(t *testing.T, gens []workload.Generator, interval int64, strict bool) *rig {
	t.Helper()
	n := len(gens)
	r := &rig{
		eng:    sim.New(),
		arch:   config.KSR1(n),
		writes: make(map[proto.ItemID]uint64),
	}
	net := mesh.New(r.eng, r.arch)
	dir := directory.New(n)
	ams := make([]*am.AM, n)
	r.counters = make([]*stats.Node, n)
	r.caches = make([]*cache.Cache, n)
	r.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		ams[i] = am.New(r.arch, proto.NodeID(i))
		r.counters[i] = &stats.Node{}
		r.caches[i] = cache.New(r.arch)
	}
	r.coh = coherence.New(r.eng, r.arch, coherence.ECP, coherence.Options{},
		net, dir, ams, r.counters, rigCacheOps{r})
	r.co = core.NewCoordinator(r.eng, r.coh, net, n, interval, core.Hooks{})
	hooks := Hooks{
		OnWrite:       func(_ proto.NodeID, item proto.ItemID, v uint64) { r.writes[item] = v },
		WorkloadEnded: func(proto.NodeID) { r.ended++ },
	}
	for i := 0; i < n; i++ {
		r.nodes[i] = New(proto.NodeID(i), r.arch, r.caches[i], r.coh, r.co,
			gens[i], r.counters[i], strict, hooks)
	}
	t.Cleanup(func() { r.eng.Shutdown() })
	return r
}

func (r *rig) runAll(t *testing.T) {
	t.Helper()
	for i := range r.nodes {
		nd := r.nodes[i]
		r.eng.Spawn("proc", nd.Run)
	}
	r.co.Start()
	// Stop once all workloads ended (the coordinator keeps a wake event
	// scheduled forever otherwise).
	limit := int64(1)
	for r.ended < len(r.nodes) && limit < 1<<34 {
		limit <<= 1
		if _, err := r.eng.RunUntil(limit); err != nil {
			t.Fatal(err)
		}
	}
	if r.ended != len(r.nodes) {
		t.Fatalf("only %d/%d workloads ended", r.ended, len(r.nodes))
	}
}

func scriptGens(n int, refs ...workload.Ref) []workload.Generator {
	gens := make([]workload.Generator, n)
	for i := range gens {
		gens[i] = workload.NewScript("s", refs)
	}
	return gens
}

func TestProcessorExecutesScript(t *testing.T) {
	gens := scriptGens(4,
		workload.I(10), workload.R(0), workload.W(0), workload.I(5), workload.R(128))
	r := newRig(t, gens, 0, true)
	r.runAll(t)
	total := &stats.Node{}
	for _, c := range r.counters {
		total.Add(c)
	}
	if total.Reads != 8 || total.Writes != 4 {
		t.Fatalf("reads=%d writes=%d", total.Reads, total.Writes)
	}
	if total.Instructions != 4*(10+5+3) {
		t.Fatalf("instructions = %d", total.Instructions)
	}
}

func TestWriteValuesAreUniquePerNode(t *testing.T) {
	gens := scriptGens(2, workload.W(0), workload.W(128), workload.W(256))
	r := newRig(t, gens, 0, true)
	r.runAll(t)
	seen := map[uint64]bool{}
	for _, v := range r.writes {
		if seen[v] {
			t.Fatalf("duplicate write value %#x", v)
		}
		seen[v] = true
	}
	if len(r.writes) != 3 {
		t.Fatalf("items written = %d", len(r.writes))
	}
}

func TestCacheAbsorbsRepeatedAccesses(t *testing.T) {
	var refs []workload.Ref
	refs = append(refs, workload.R(0))
	for i := 0; i < 50; i++ {
		refs = append(refs, workload.R(0))
	}
	r := newRig(t, scriptGens(1, refs...), 0, false)
	r.runAll(t)
	cs := r.caches[0].Stats()
	if cs.ReadMisses != 1 {
		t.Fatalf("cache read misses = %d, want 1 (rest absorbed)", cs.ReadMisses)
	}
	if r.counters[0].AMReads != 1 {
		t.Fatalf("AM reads = %d, want 1", r.counters[0].AMReads)
	}
}

func TestFlushCacheChargesAndDowngrades(t *testing.T) {
	r := newRig(t, scriptGens(1, workload.W(0), workload.W(128)), 0, true)
	nd := r.nodes[0]
	done := false
	r.eng.Spawn("t", func(p *sim.Process) {
		r.coh.WriteItem(p, 0, 0, 1)
		r.caches[0].FillDirty(0, 1, p.Now())
		start := p.Now()
		nd.FlushCache(p)
		if p.Now() == start {
			t.Error("flush charged no cycles with dirty lines")
		}
		if r.caches[0].DirtyLines() != 0 {
			t.Error("dirty lines survived flush")
		}
		if r.caches[0].Writable(0) {
			t.Error("write permission survived flush")
		}
		done = true
	})
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test process stuck")
	}
}

func TestBarriersSynchronise(t *testing.T) {
	// Node 0 computes a long stretch before the barrier, node 1 a short
	// one; after the barrier both write. The write order must place both
	// writes after the slowest arrival.
	gens := []workload.Generator{
		workload.NewScript("slow", []workload.Ref{workload.I(10_000), workload.B(), workload.W(0)}),
		workload.NewScript("fast", []workload.Ref{workload.I(10), workload.B(), workload.W(128)}),
	}
	r := newRig(t, gens, 0, true)
	r.runAll(t)
	if len(r.writes) != 2 {
		t.Fatalf("writes = %d", len(r.writes))
	}
	if r.eng.Now() < 10_000 {
		t.Fatalf("run ended at %d, before the slow node's stretch", r.eng.Now())
	}
}

func TestCheckpointRoundsRunThroughNodeLoop(t *testing.T) {
	var refs []workload.Ref
	for i := 0; i < 400; i++ {
		refs = append(refs, workload.I(100), workload.W(uint64(i%32)*128))
	}
	r := newRig(t, scriptGens(4, refs...), 8_000, false)
	r.runAll(t)
	if r.co.Stats().Established < 2 {
		t.Fatalf("established = %d", r.co.Stats().Established)
	}
	if err := core.CheckQuiescent(r.coh); err != nil {
		t.Fatal(err)
	}
}

// Package node assembles one processing node of the simulated machine: a
// blocking in-order processor driven by a workload generator, its sectored
// data cache, and the glue to the coherence engine (the attraction memory
// and its controllers live in the coherence layer) and to the recovery
// coordinator.
package node

import (
	"coma/internal/cache"
	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/core"
	"coma/internal/proto"
	"coma/internal/sim"
	"coma/internal/stats"
	"coma/internal/workload"
)

// maxBatch bounds how many cycles of cache-hit work a processor
// accumulates before yielding to the engine, so quiesce requests are
// honoured promptly and timing error stays far below a checkpoint
// interval.
const maxBatch = 200

// Hooks are the machine-level callbacks a node reports through.
type Hooks struct {
	// OnWrite records a completed store (the value oracle).
	OnWrite func(n proto.NodeID, item proto.ItemID, value uint64)
	// CheckRead validates a load that hit in the cache (strict mode).
	CheckRead func(n proto.NodeID, item proto.ItemID, value uint64)
	// WorkloadEnded reports that the node's reference stream finished.
	WorkloadEnded func(n proto.NodeID)
	// WorkloadResumed reports that a rollback rewound a finished stream
	// and the node is computing again.
	WorkloadResumed func(n proto.NodeID)
}

// Node is one processing node.
type Node struct {
	id    proto.NodeID
	arch  config.Arch
	cache *cache.Cache
	coh   *coherence.Engine
	co    *core.Coordinator
	gen   workload.Generator
	c     *stats.Node
	hooks Hooks

	// strict makes the processor yield (and oracle-check) on every
	// memory reference instead of batching cache hits; slower, used by
	// correctness tests.
	strict bool

	writeSeq uint64
}

// New builds a node. The coordinator may not be nil: it also implements
// application barriers.
func New(id proto.NodeID, arch config.Arch, ch *cache.Cache, coh *coherence.Engine,
	co *core.Coordinator, gen workload.Generator, c *stats.Node, strict bool, hooks Hooks) *Node {
	return &Node{
		id:     id,
		arch:   arch,
		cache:  ch,
		coh:    coh,
		co:     co,
		gen:    gen,
		c:      c,
		strict: strict,
		hooks:  hooks,
	}
}

// ID implements core.NodeOps.
func (n *Node) ID() proto.NodeID { return n.id }

// Cache returns the node's processor cache.
func (n *Node) Cache() *cache.Cache { return n.cache }

// Generator returns the node's workload generator.
func (n *Node) Generator() workload.Generator { return n.gen }

// FlushCache implements core.NodeOps: write dirty lines back to the local
// AM (values are already coherent in the simulator's write-through value
// model; the cycles model the physical write-back) and drop write
// permission everywhere.
func (n *Node) FlushCache(p *sim.Process) {
	dirty := int64(n.cache.DirtyLines())
	if dirty > 0 {
		p.Wait(dirty * n.arch.CacheFlushPerLine)
	}
	n.cache.FlushDirty(func(addr, value uint64) {})
	n.cache.DowngradeAll()
	n.c.FlushedLines += dirty
}

// ClearCache implements core.NodeOps.
func (n *Node) ClearCache() { n.cache.InvalidateAll() }

// InvalidateItem implements the coherence engine's cache hook for this
// node.
func (n *Node) InvalidateItem(item proto.ItemID) {
	n.cache.InvalidateItem(n.itemAddr(item))
}

// DowngradeItem implements the coherence engine's cache hook.
func (n *Node) DowngradeItem(item proto.ItemID) {
	n.cache.DowngradeItem(n.itemAddr(item))
}

func (n *Node) itemAddr(item proto.ItemID) uint64 {
	return uint64(item) * uint64(n.arch.ItemSize)
}

// nextValue produces a globally unique store value: high bits identify
// the node, low bits count its stores.
func (n *Node) nextValue() uint64 {
	n.writeSeq++
	return uint64(n.id)<<48 | n.writeSeq
}

// Run is the processor process body: it executes the reference stream,
// charging one cycle per instruction and per cache hit, running the
// below/above protocol on misses, and cooperating with the recovery
// coordinator at safe points.
func (n *Node) Run(p *sim.Process) {
	var batch int64
	flush := func() {
		if batch > 0 {
			p.Wait(batch)
			batch = 0
		}
	}
	for {
		if n.co.PauseRequested() {
			flush()
			if !n.co.Participate(p, n) {
				return // permanent failure
			}
			continue
		}
		r := n.gen.Next()
		switch r.Kind {
		case workload.End:
			flush()
			if n.hooks.WorkloadEnded != nil {
				n.hooks.WorkloadEnded(n.id)
			}
			n.co.ProcessorFinished(n.id)
			// Keep serving checkpoint/recovery rounds: the AM still
			// holds live state.
			if !n.co.ServeRounds(p, n) {
				return // permanent death
			}
			// A rollback rewound the generator; keep computing.
			if n.hooks.WorkloadResumed != nil {
				n.hooks.WorkloadResumed(n.id)
			}

		case workload.Instr:
			n.c.Instructions += r.N
			batch += r.N
			if batch >= maxBatch {
				flush()
			}

		case workload.Barrier:
			flush()
			if !n.co.AppBarrier(p, n) {
				return
			}

		case workload.Read:
			n.c.Instructions++
			n.c.Reads++
			if r.Shared {
				n.c.SharedReads++
			}
			n.read(p, r, &batch, flush)

		case workload.Write:
			n.c.Instructions++
			n.c.Writes++
			if r.Shared {
				n.c.SharedWrites++
			}
			n.write(p, r, &batch, flush)
		}
	}
}

func (n *Node) read(p *sim.Process, r workload.Ref, batch *int64, flush func()) {
	if n.strict {
		flush()
	}
	item := n.arch.ItemOf(r.Addr)
	if v, hit := n.cache.Access(r.Addr, false, 0, p.Now()+*batch); hit {
		*batch += n.arch.CacheAccess
		if *batch >= maxBatch {
			flush()
		}
		if n.strict && n.hooks.CheckRead != nil {
			n.hooks.CheckRead(n.id, item, v)
		}
		return
	}
	flush()
	p.Wait(n.arch.CacheAccess)
	value := n.coh.ReadItem(p, n.id, item)
	// The transaction blocked for many cycles; only fill the cache if
	// the AM copy is still live (a racing remote write may already have
	// invalidated it — filling would resurrect a stale value).
	st := n.coh.AM(n.id).State(item)
	if !st.Readable() {
		return
	}
	n.writebackEvicted(p, n.cache.Fill(r.Addr, st == proto.Exclusive, value, p.Now()))
}

func (n *Node) write(p *sim.Process, r workload.Ref, batch *int64, flush func()) {
	if n.strict {
		flush()
	}
	item := n.arch.ItemOf(r.Addr)
	value := n.nextValue()
	if _, ok := n.cache.Access(r.Addr, true, value, p.Now()+*batch); ok {
		// Write hit: the line is writable, so the local AM copy is
		// Exclusive; propagate the value (write-through value model,
		// write-back timing — see DESIGN.md).
		n.cache.SetItemValue(n.itemAddr(item), value)
		n.coh.WriteThrough(n.id, item, value)
		if n.hooks.OnWrite != nil {
			n.hooks.OnWrite(n.id, item, value)
		}
		*batch += n.arch.CacheAccess
		if *batch >= maxBatch {
			flush()
		}
		return
	}
	flush()
	p.Wait(n.arch.CacheAccess)
	n.coh.WriteItem(p, n.id, item, value)
	if n.hooks.OnWrite != nil {
		n.hooks.OnWrite(n.id, item, value)
	}
	// Only fill if exclusivity survived the transaction's completion
	// instant (a queued remote writer may have taken the item since),
	// and refresh any sibling line of the item already cached.
	if n.coh.AM(n.id).State(item) != proto.Exclusive {
		return
	}
	n.writebackEvicted(p, n.cache.FillDirty(r.Addr, value, p.Now()))
	n.cache.SetItemValue(n.itemAddr(item), value)
}

func (n *Node) writebackEvicted(p *sim.Process, wbs []cache.Writeback) {
	if len(wbs) == 0 {
		return
	}
	// Values are already coherent (write-through value model); charge
	// the physical write-back of the evicted dirty lines.
	p.Wait(int64(len(wbs)) * n.arch.CacheFlushPerLine)
}

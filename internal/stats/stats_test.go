package stats

import (
	"testing"

	"coma/internal/proto"
)

func TestNodeDerivedMetrics(t *testing.T) {
	n := Node{
		Reads: 800, Writes: 200,
		AMReads: 100, AMReadMisses: 10,
		AMWrites: 50, AMWriteMisses: 25,
	}
	if n.References() != 1000 {
		t.Fatalf("references = %d", n.References())
	}
	if n.AMAccesses() != 150 {
		t.Fatalf("accesses = %d", n.AMAccesses())
	}
	if got := n.AMMissRate(); got != 35.0/150 {
		t.Fatalf("miss rate = %v", got)
	}
	if got := n.AMReadMissRate(); got != 0.1 {
		t.Fatalf("read miss rate = %v", got)
	}
	if got := n.AMWriteMissRate(); got != 0.5 {
		t.Fatalf("write miss rate = %v", got)
	}
	if got := n.Per10KRefs(5); got != 50 {
		t.Fatalf("per10k = %v", got)
	}
}

func TestZeroDenominatorsAreSafe(t *testing.T) {
	var n Node
	if n.AMMissRate() != 0 || n.AMReadMissRate() != 0 || n.AMWriteMissRate() != 0 || n.Per10KRefs(7) != 0 {
		t.Fatal("zero-activity node produced non-zero rates")
	}
	var r Run
	if r.CreateOverhead() != 0 || r.CommitOverhead() != 0 || r.ReplicationThroughput() != 0 {
		t.Fatal("zero run produced non-zero overheads")
	}
	var o Overheads
	if o.OverheadFraction() != 0 || o.CreateFraction() != 0 {
		t.Fatal("zero overheads produced non-zero fractions")
	}
}

func TestInjectionSplits(t *testing.T) {
	var n Node
	n.Injections[proto.InjectReadInvCK] = 3
	n.Injections[proto.InjectWriteInvCK] = 4
	n.Injections[proto.InjectWriteSharedCK] = 5
	n.Injections[proto.InjectCheckpoint] = 100
	if n.TotalInjections() != 112 {
		t.Fatalf("total = %d", n.TotalInjections())
	}
	if n.InjectionsOnReads() != 3 {
		t.Fatalf("on reads = %d", n.InjectionsOnReads())
	}
	if n.InjectionsOnWrites() != 9 {
		t.Fatalf("on writes = %d", n.InjectionsOnWrites())
	}
}

func TestAddAccumulatesEveryField(t *testing.T) {
	a := Node{Instructions: 1, Reads: 2, Writes: 3, SharedReads: 4, SharedWrites: 5,
		AMReads: 6, AMReadMisses: 7, AMWrites: 8, AMWriteMisses: 9,
		FillsLocal: 10, FillsRemote: 11, FillsCold: 12, SharedCKReads: 13,
		InjectProbes: 14, InjectHops: 15, CkptItemsReplicated: 16,
		CkptItemsReused: 17, CkptBytesMoved: 18, CkptCreateCycles: 19,
		CkptCommitCycles: 20, FlushedLines: 21, InvalidationsIn: 22}
	for i := range a.Injections {
		a.Injections[i] = int64(i + 1)
	}
	sum := a
	sum.Add(&a)
	if sum.Instructions != 2 || sum.InvalidationsIn != 44 || sum.Injections[0] != 2 {
		t.Fatalf("Add missed fields: %+v", sum)
	}
	if sum.CkptCommitCycles != 40 || sum.FlushedLines != 42 {
		t.Fatalf("Add missed fields: %+v", sum)
	}
}

func TestRunTotalsAndThroughput(t *testing.T) {
	r := Run{
		ClockHz: 20_000_000,
		Cycles:  20_000_000, // one second
		Nodes:   2,
		Ckpt:    Checkpointing{CreateCycles: 2_000_000, CommitCycles: 1_000_000},
		PerNode: []Node{{CkptBytesMoved: 1 << 20}, {CkptBytesMoved: 1 << 20}},
	}
	if got := r.Seconds(r.Cycles); got != 1.0 {
		t.Fatalf("seconds = %v", got)
	}
	if got := r.CreateOverhead(); got != 0.1 {
		t.Fatalf("create overhead = %v", got)
	}
	// 2 MiB moved in 0.1 s of establishment = ~21 MB/s machine-wide.
	want := float64(2<<20) / 0.1
	if got := r.ReplicationThroughput(); got != want {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
	if got := r.PerNodeReplicationThroughput(); got != want/2 {
		t.Fatalf("per-node = %v", got)
	}
}

func TestDecomposeAddsUp(t *testing.T) {
	std := &Run{Cycles: 1000}
	ecp := &Run{Cycles: 1300, Ckpt: Checkpointing{CreateCycles: 120, CommitCycles: 30}}
	o := Decompose(std, ecp)
	if o.TPollution != 150 {
		t.Fatalf("pollution = %d", o.TPollution)
	}
	if o.TStandard+o.TCreate+o.TCommit+o.TPollution != o.TTotal {
		t.Fatal("decomposition does not add up")
	}
	if o.OverheadFraction() != 0.3 {
		t.Fatalf("overhead = %v", o.OverheadFraction())
	}
	if o.CreateFraction() != 0.12 || o.CommitFraction() != 0.03 || o.PollutionFraction() != 0.15 {
		t.Fatalf("fractions: %+v", o)
	}
}

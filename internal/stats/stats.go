// Package stats defines the counters collected during a simulation and
// the derived quantities reported by the paper's evaluation: the time
// decomposition T_ft = T_standard + T_create + T_commit + T_pollution,
// attraction-memory miss rates, injection counts by cause, replication
// throughput during recovery-point establishment, and page allocation.
package stats

import "coma/internal/proto"

// Node aggregates per-node protocol counters. The coherence engine and the
// node model increment these directly; they are plain data with no
// behaviour beyond derived accessors.
type Node struct {
	// Processor-side reference counts.
	Instructions int64
	Reads        int64
	Writes       int64
	SharedReads  int64
	SharedWrites int64

	// Attraction-memory accesses (made on cache misses and upgrades).
	AMReads       int64
	AMReadMisses  int64
	AMWrites      int64
	AMWriteMisses int64

	// Where read misses were filled from (Table 2 style breakdown).
	FillsLocal  int64 // satisfied by the local AM
	FillsRemote int64 // data came from a remote AM
	FillsCold   int64 // first touch, no data transfer

	// SharedCKReads counts processor reads served by a local Shared-CK
	// copy (the ECP benefit: recovery data stays readable).
	SharedCKReads int64

	// Injections by cause, plus probe traffic.
	Injections   [proto.NumInjectCauses]int64
	InjectProbes int64
	InjectHops   int64 // ring steps taken before acceptance

	// Recovery-point establishment work done by this node.
	CkptItemsReplicated int64 // copies created with a data transfer
	CkptItemsReused     int64 // Shared copies upgraded without transfer
	CkptBytesMoved      int64 // bytes transferred by create-phase injections
	CkptCreateCycles    int64 // cycles this node spent in create phases
	CkptCommitCycles    int64 // cycles this node spent in commit phases

	// Cache flush work at quiesce.
	FlushedLines int64

	// Invalidations received.
	InvalidationsIn int64
}

// References returns the processor memory references issued.
func (n *Node) References() int64 { return n.Reads + n.Writes }

// AMAccesses returns the total attraction-memory accesses.
func (n *Node) AMAccesses() int64 { return n.AMReads + n.AMWrites }

// AMMissRate returns the overall AM miss rate in [0,1].
func (n *Node) AMMissRate() float64 {
	total := n.AMAccesses()
	if total == 0 {
		return 0
	}
	return float64(n.AMReadMisses+n.AMWriteMisses) / float64(total)
}

// AMReadMissRate returns the read miss rate of the AM in [0,1].
func (n *Node) AMReadMissRate() float64 {
	if n.AMReads == 0 {
		return 0
	}
	return float64(n.AMReadMisses) / float64(n.AMReads)
}

// AMWriteMissRate returns the write miss rate of the AM in [0,1].
func (n *Node) AMWriteMissRate() float64 {
	if n.AMWrites == 0 {
		return 0
	}
	return float64(n.AMWriteMisses) / float64(n.AMWrites)
}

// TotalInjections sums injections over all causes.
func (n *Node) TotalInjections() int64 {
	var t int64
	for _, v := range n.Injections {
		t += v
	}
	return t
}

// InjectionsOnReads returns injections triggered by read accesses to
// local recovery copies.
func (n *Node) InjectionsOnReads() int64 {
	var t int64
	for c := proto.InjectCause(0); c < proto.NumInjectCauses; c++ {
		if c.OnRead() {
			t += n.Injections[c]
		}
	}
	return t
}

// InjectionsOnWrites returns injections triggered by write accesses to
// local recovery copies.
func (n *Node) InjectionsOnWrites() int64 {
	var t int64
	for c := proto.InjectCause(0); c < proto.NumInjectCauses; c++ {
		if c.OnWrite() {
			t += n.Injections[c]
		}
	}
	return t
}

// Per10KRefs scales a count to the paper's "per 10 000 memory references"
// unit.
func (n *Node) Per10KRefs(count int64) float64 {
	refs := n.References()
	if refs == 0 {
		return 0
	}
	return float64(count) * 10_000 / float64(refs)
}

// Add accumulates other into n (used to aggregate machine totals).
func (n *Node) Add(other *Node) {
	n.Instructions += other.Instructions
	n.Reads += other.Reads
	n.Writes += other.Writes
	n.SharedReads += other.SharedReads
	n.SharedWrites += other.SharedWrites
	n.AMReads += other.AMReads
	n.AMReadMisses += other.AMReadMisses
	n.AMWrites += other.AMWrites
	n.AMWriteMisses += other.AMWriteMisses
	n.FillsLocal += other.FillsLocal
	n.FillsRemote += other.FillsRemote
	n.FillsCold += other.FillsCold
	n.SharedCKReads += other.SharedCKReads
	for i := range n.Injections {
		n.Injections[i] += other.Injections[i]
	}
	n.InjectProbes += other.InjectProbes
	n.InjectHops += other.InjectHops
	n.CkptItemsReplicated += other.CkptItemsReplicated
	n.CkptItemsReused += other.CkptItemsReused
	n.CkptBytesMoved += other.CkptBytesMoved
	n.CkptCreateCycles += other.CkptCreateCycles
	n.CkptCommitCycles += other.CkptCommitCycles
	n.FlushedLines += other.FlushedLines
	n.InvalidationsIn += other.InvalidationsIn
}

// Checkpointing aggregates machine-level recovery-point accounting kept
// by the coordinator.
type Checkpointing struct {
	// Established counts committed recovery points.
	Established int64
	// Aborted counts establishments abandoned because of a failure.
	Aborted int64
	// Skipped counts establishments not attempted because fewer than
	// four nodes remained alive (an item needs up to four copies on
	// distinct nodes during the create phase). The last committed
	// recovery point keeps protecting the machine.
	Skipped int64
	// Recoveries counts rollbacks performed.
	Recoveries int64
	// CreateCycles and CommitCycles are the global wall-clock windows
	// during which processors were stalled by each phase.
	CreateCycles int64
	CommitCycles int64
}

// Run is the complete result of one simulation.
type Run struct {
	Protocol      string
	App           string
	Nodes         int
	Cycles        int64 // total simulated execution time
	Events        int64 // kernel events dispatched by the sim engine
	ClockHz       int64
	Ckpt          Checkpointing
	PerNode       []Node
	PagesPeak     int // peak frames allocated machine-wide
	PagesStd      int // naturally-allocated frames (excluding anchor-only)
	NetMessages   int64
	NetFlits      int64
	CacheReads    int64
	CacheReadMiss int64
	CacheWrites   int64
	CacheWriteMis int64
}

// Total returns the sum of all per-node counters.
func (r *Run) Total() Node {
	var t Node
	for i := range r.PerNode {
		t.Add(&r.PerNode[i])
	}
	return t
}

// Seconds converts cycles to seconds at the run's clock.
func (r *Run) Seconds(cycles int64) float64 {
	return float64(cycles) / float64(r.ClockHz)
}

// CreateOverhead returns T_create as a fraction of total execution time.
func (r *Run) CreateOverhead() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ckpt.CreateCycles) / float64(r.Cycles)
}

// CommitOverhead returns T_commit as a fraction of total execution time.
func (r *Run) CommitOverhead() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ckpt.CommitCycles) / float64(r.Cycles)
}

// ReplicationThroughput returns the create-phase data rate in bytes per
// second, machine-wide (Fig. 9) — bytes moved during establishment over
// the time spent establishing.
func (r *Run) ReplicationThroughput() float64 {
	if r.Ckpt.CreateCycles == 0 {
		return 0
	}
	t := r.Total()
	return float64(t.CkptBytesMoved) / r.Seconds(r.Ckpt.CreateCycles)
}

// PerNodeReplicationThroughput returns the create-phase data rate in
// bytes per second per node (Fig. 4).
func (r *Run) PerNodeReplicationThroughput() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return r.ReplicationThroughput() / float64(r.Nodes)
}

// Overheads is the paper's Fig. 3 decomposition of an ECP run relative to
// a standard-protocol run of the same workload.
type Overheads struct {
	TStandard  int64
	TCreate    int64
	TCommit    int64
	TPollution int64
	TTotal     int64
}

// Decompose computes the Fig. 3 decomposition from a standard-protocol
// run and an ECP run of the same workload: T_pollution is the residual
// T_ft - T_standard - T_create - T_commit.
func Decompose(std, ecp *Run) Overheads {
	o := Overheads{
		TStandard: std.Cycles,
		TCreate:   ecp.Ckpt.CreateCycles,
		TCommit:   ecp.Ckpt.CommitCycles,
		TTotal:    ecp.Cycles,
	}
	o.TPollution = o.TTotal - o.TStandard - o.TCreate - o.TCommit
	return o
}

// OverheadFraction returns (T_ft - T_standard) / T_standard.
func (o Overheads) OverheadFraction() float64 {
	if o.TStandard == 0 {
		return 0
	}
	return float64(o.TTotal-o.TStandard) / float64(o.TStandard)
}

// CreateFraction returns T_create / T_standard.
func (o Overheads) CreateFraction() float64 {
	if o.TStandard == 0 {
		return 0
	}
	return float64(o.TCreate) / float64(o.TStandard)
}

// CommitFraction returns T_commit / T_standard.
func (o Overheads) CommitFraction() float64 {
	if o.TStandard == 0 {
		return 0
	}
	return float64(o.TCommit) / float64(o.TStandard)
}

// PollutionFraction returns T_pollution / T_standard.
func (o Overheads) PollutionFraction() float64 {
	if o.TStandard == 0 {
		return 0
	}
	return float64(o.TPollution) / float64(o.TStandard)
}

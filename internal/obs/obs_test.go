package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"coma/internal/proto"
)

func TestHistObserve(t *testing.T) {
	h := NewHist(10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	if want := []int64{2, 2, 1, 1}; !reflect.DeepEqual(h.Counts, want) {
		t.Fatalf("counts = %v, want %v", h.Counts, want)
	}
	if h.N != 6 || h.Min != 5 || h.Max != 5000 {
		t.Fatalf("n/min/max = %d/%d/%d", h.N, h.Min, h.Max)
	}
	if h.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("sum = %d", h.Sum)
	}

	other := NewHist(10, 100, 1000)
	other.Observe(1)
	h.Add(other)
	if h.N != 7 || h.Min != 1 || h.Counts[0] != 3 {
		t.Fatalf("after Add: n=%d min=%d counts=%v", h.N, h.Min, h.Counts)
	}
}

func TestParseFilter(t *testing.T) {
	m, err := ParseFilter("")
	if err != nil || m != MaskAll {
		t.Fatalf("empty filter: %v, %v", m, err)
	}
	m, err = ParseFilter("inject, ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{KInjectProbe, KInjectAccept, KPhaseBegin, KRoundEnd, KCommitted} {
		if !m.Has(k) {
			t.Errorf("mask should include %s", k)
		}
	}
	for _, k := range []Kind{KState, KReadFill, KFault, KQueueDepth} {
		if m.Has(k) {
			t.Errorf("mask should not include %s", k)
		}
	}
	if _, err := ParseFilter("bogus"); err == nil {
		t.Fatal("want error for unknown class")
	}
}

func TestRecorderMask(t *testing.T) {
	r := NewRecorder(1 << KFault)
	r.Emit(Event{Kind: KState})
	r.Emit(Event{Kind: KFault, Node: 3})
	if r.Len() != 1 || r.Events()[0].Kind != KFault {
		t.Fatalf("recorder kept %v", r.Events())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func sampleEvents() []Event {
	inj := proto.MakeTxnID(1, 1) // an injection transaction...
	par := proto.MakeTxnID(0, 7) // ...forced by this access
	return []Event{
		{Time: 10, Kind: KState, Node: 0, Item: 7, From: proto.Shared, To: proto.PreCommit1},
		{Time: 20, Kind: KReadFill, Node: 1, Item: 9, A: FillRemote, B: 144},
		{Time: 25, Kind: KWriteFill, Node: 2, Item: 3, A: FillLocal, B: 30},
		{Time: 28, Kind: KTxnBegin, Node: 1, Item: 9, Txn: inj, Par: par, A: TxnInject},
		{Time: 30, Kind: KInjectProbe, Node: 1, Item: 9, Cause: proto.InjectCheckpoint, Txn: inj, A: 2, B: 0},
		{Time: 35, Kind: KTxnHop, Node: 3, Item: 9, Txn: inj, A: int64(proto.MsgInjectData), B: 5},
		{Time: 40, Kind: KInjectAccept, Node: 1, Item: 9, Cause: proto.InjectCheckpoint, Txn: inj, A: 3, B: 1},
		{Time: 45, Kind: KTxnEnd, Node: 1, Item: 9, Txn: inj, A: 3, B: 17},
		{Time: 50, Kind: KRoundBegin, A: 0, B: 1},
		{Time: 55, Kind: KRoundQuiesced, Node: proto.None, B: 1},
		{Time: 60, Kind: KPhaseBegin, Node: 0, A: int64(PhaseCreate)},
		{Time: 160, Kind: KPhaseEnd, Node: 0, A: int64(PhaseCreate), B: 100},
		{Time: 170, Kind: KCommitted, Node: proto.None, B: 1},
		{Time: 180, Kind: KRoundEnd, Node: proto.None, A: 0, B: 1},
		{Time: 200, Kind: KFault, Node: 2, A: 1, B: 2},
		{Time: 220, Kind: KRollback, Node: proto.None, A: 4, B: 2},
		{Time: 240, Kind: KReconfig, Node: 3, A: 6},
		{Time: 250, Kind: KQueueDepth, Node: proto.None, A: 5, B: 2},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	// Every line must itself be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, evs)
	}

	// Writing the decoded stream again must reproduce the bytes exactly.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoded JSONL differs from original bytes")
	}
}

func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, 100_000_000, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var phaseSpans, threads, counters int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["name"] == "create" {
				phaseSpans++
			}
		case "M":
			if ev["name"] == "thread_name" {
				threads++
			}
		case "C":
			counters++
		}
	}
	if phaseSpans == 0 {
		t.Error("no checkpoint-phase span in trace")
	}
	// 4 nodes (0..3 appear) + coordinator track.
	if threads != 5 {
		t.Errorf("thread_name metadata count = %d, want 5", threads)
	}
	if counters == 0 {
		t.Error("no queue-depth counter events")
	}
}

func TestMetricsFromEvents(t *testing.T) {
	m := MetricsFromEvents(sampleEvents())
	if m.ReadLatency.N != 1 || m.ReadLatency.Sum != 144 {
		t.Errorf("read latency hist: n=%d sum=%d", m.ReadLatency.N, m.ReadLatency.Sum)
	}
	if m.WriteLat.N != 1 || m.WriteLat.Sum != 30 {
		t.Errorf("write latency hist: n=%d sum=%d", m.WriteLat.N, m.WriteLat.Sum)
	}
	if m.InjectHops.N != 1 || m.InjectHops.Sum != 1 {
		t.Errorf("inject hops hist: n=%d sum=%d", m.InjectHops.N, m.InjectHops.Sum)
	}
	if m.PhaseDur[PhaseCreate].N != 1 || m.PhaseDur[PhaseCreate].Sum != 100 {
		t.Errorf("phase create hist: n=%d sum=%d",
			m.PhaseDur[PhaseCreate].N, m.PhaseDur[PhaseCreate].Sum)
	}
	if m.QueueDepth[0].N != 1 || m.QueueDepth[0].Sum != 5 {
		t.Errorf("queue depth hist: n=%d sum=%d", m.QueueDepth[0].N, m.QueueDepth[0].Sum)
	}
	if len(m.PerNode) != 4 {
		t.Fatalf("per-node metrics for %d nodes, want 4", len(m.PerNode))
	}
	if m.PerNode[1].ReadLatency.N != 1 {
		t.Error("node 1 read latency not attributed")
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"observed events: 18",
		"read miss latency",
		"injection hops",
		"phase create duration",
		"mesh in-flight (request)",
		"1 recovery points committed, 1 faults, 1 rollbacks (4 items lost)",
		"per node",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

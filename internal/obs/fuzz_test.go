package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzJSONLRoundTrip pins the JSONL decoder/encoder pair to a strict
// round-trip property: any line the decoder accepts must re-encode to a
// canonical form that decodes to the same event and is byte-stable from
// then on. Lines the decoder rejects are fine — the property only
// constrains accepted inputs, so the strict per-kind field rules can
// reject as much as they like without failing the fuzzer.
func FuzzJSONLRoundTrip(f *testing.F) {
	// Seed with one line per event kind from the golden sample set.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleEvents()); err != nil {
		f.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		f.Add(line)
	}
	f.Add(`{"t":0,"k":"state","n":0,"i":0,"from":"Invalid","to":"Shared","a":0,"b":0}`)
	f.Add(`{"t":9,"k":"txn-begin","n":2,"i":4,"txn":77,"par":3,"a":1,"b":0}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, line string) {
		ev, err := parseJSONLLine(strings.TrimSpace(line))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		enc := ev.appendJSONL(nil)
		got, err := parseJSONLLine(strings.TrimSpace(string(enc)))
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v\nline %q\nencoded %q", err, line, enc)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("round trip mismatch:\nline    %q\nparsed  %+v\nreparse %+v", line, ev, got)
		}
		enc2 := got.appendJSONL(nil)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not byte-stable:\nfirst  %q\nsecond %q", enc, enc2)
		}
	})
}

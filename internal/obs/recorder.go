package obs

// Recorder is the standard Observer: it buffers events in memory (in
// emission order, which is deterministic for a seeded run) for export
// once the simulation completes. A Mask drops unwanted kinds at
// emission time, keeping filtered traces cheap to record.
type Recorder struct {
	mask   Mask
	events []Event
}

// NewRecorder builds a Recorder keeping the kinds enabled in mask.
func NewRecorder(mask Mask) *Recorder {
	return &Recorder{mask: mask, events: make([]Event, 0, 1024)}
}

// Emit implements Observer.
func (r *Recorder) Emit(ev Event) {
	if !r.mask.Has(ev.Kind) {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in emission order. The slice is
// owned by the recorder; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset drops all recorded events, keeping the buffer.
func (r *Recorder) Reset() { r.events = r.events[:0] }

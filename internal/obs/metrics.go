package obs

import "coma/internal/proto"

// Hist is a fixed-bucket histogram over int64 samples. Bucket i counts
// samples v with v <= Bounds[i] (and v > Bounds[i-1]); the final bucket
// counts overflow samples above the last bound. Fixed bounds keep
// aggregation allocation-free and byte-deterministic.
type Hist struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1
	N      int64
	Sum    int64
	Min    int64
	Max    int64
}

// NewHist builds a histogram with the given ascending upper bounds.
func NewHist(bounds ...int64) *Hist {
	return &Hist{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the average sample, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Add accumulates other (same bounds) into h.
func (h *Hist) Add(other *Hist) {
	if other.N == 0 {
		return
	}
	if h.N == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.N += other.N
	h.Sum += other.Sum
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
}

// Default bucket bounds. Miss latency and phase durations are in
// cycles; hops and depths are counts. The bounds are geometric-ish so
// one histogram covers both the uncontended case and heavy contention.
var (
	latencyBounds  = []int64{20, 50, 100, 150, 250, 500, 1_000, 2_500, 5_000, 10_000}
	hopBounds      = []int64{0, 1, 2, 4, 8, 16, 32}
	durationBounds = []int64{1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000}
	depthBounds    = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}
)

// NodeMetrics are the per-node histograms.
type NodeMetrics struct {
	Node        proto.NodeID
	ReadLatency *Hist // read miss latency, cycles
	WriteLat    *Hist // write miss latency, cycles
	InjectHops  *Hist // ring hops before acceptance
	PhaseDur    [NumPhases]*Hist
}

func newNodeMetrics(n proto.NodeID) *NodeMetrics {
	m := &NodeMetrics{
		Node:        n,
		ReadLatency: NewHist(latencyBounds...),
		WriteLat:    NewHist(latencyBounds...),
		InjectHops:  NewHist(hopBounds...),
	}
	for p := range m.PhaseDur {
		m.PhaseDur[p] = NewHist(durationBounds...)
	}
	return m
}

// Metrics aggregates histograms per node and per phase from an event
// stream. The same derivation runs live (after a recorded run) and
// offline (comatrace summarize over a JSONL log), so the two reports
// agree by construction.
type Metrics struct {
	PerNode []*NodeMetrics
	// Machine totals.
	ReadLatency *Hist
	WriteLat    *Hist
	InjectHops  *Hist
	PhaseDur    [NumPhases]*Hist
	QueueDepth  [2]*Hist // request, reply subnet in-flight samples
}

// MetricsFromEvents derives the histogram metrics from events. Nodes
// are sized from the stream (the largest node id seen).
func MetricsFromEvents(events []Event) *Metrics {
	nodes := 0
	for i := range events {
		if n := int(events[i].Node) + 1; n > nodes {
			nodes = n
		}
	}
	m := &Metrics{
		ReadLatency: NewHist(latencyBounds...),
		WriteLat:    NewHist(latencyBounds...),
		InjectHops:  NewHist(hopBounds...),
		QueueDepth:  [2]*Hist{NewHist(depthBounds...), NewHist(depthBounds...)},
	}
	for p := range m.PhaseDur {
		m.PhaseDur[p] = NewHist(durationBounds...)
	}
	m.PerNode = make([]*NodeMetrics, nodes)
	for i := range m.PerNode {
		m.PerNode[i] = newNodeMetrics(proto.NodeID(i))
	}
	for i := range events {
		ev := &events[i]
		var nm *NodeMetrics
		if ev.Node.Valid() && int(ev.Node) < nodes {
			nm = m.PerNode[ev.Node]
		}
		switch ev.Kind {
		case KReadFill:
			m.ReadLatency.Observe(ev.B)
			if nm != nil {
				nm.ReadLatency.Observe(ev.B)
			}
		case KWriteFill:
			m.WriteLat.Observe(ev.B)
			if nm != nil {
				nm.WriteLat.Observe(ev.B)
			}
		case KInjectAccept:
			m.InjectHops.Observe(ev.B)
			if nm != nil {
				nm.InjectHops.Observe(ev.B)
			}
		case KPhaseEnd:
			if p := Phase(ev.A); p < NumPhases {
				m.PhaseDur[p].Observe(ev.B)
				if nm != nil {
					nm.PhaseDur[p].Observe(ev.B)
				}
			}
		case KQueueDepth:
			m.QueueDepth[0].Observe(ev.A)
			m.QueueDepth[1].Observe(ev.B)
		case KState, KInjectProbe, KPhaseBegin, KRoundBegin, KRoundQuiesced,
			KRoundEnd, KCommitted, KFault, KRollback, KReconfig,
			KTxnBegin, KTxnHop, KTxnEnd:
			// Counted in the summary, no histogram contribution
			// (transaction latency breakdowns live in comatrace critpath).
		}
	}
	return m
}

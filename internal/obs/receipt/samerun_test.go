package receipt_test

import (
	"bytes"
	"testing"

	"coma/internal/obs"
	"coma/internal/obs/receipt"
	"coma/internal/server"
)

// TestSameSeedReceiptsByteIdentical is the acceptance property end to
// end on the real simulator: two runs of the same identity produce
// byte-identical receipts (and byte-identical trace bytes under the
// receipt mask). External test package so it can drive server.SimRunner
// without an import cycle.
func TestSameSeedReceiptsByteIdentical(t *testing.T) {
	spec := server.JobSpec{
		App: "uniform", Protocol: "ecp", Nodes: 4, Scale: 0.001,
		Seed: 11, CheckpointHz: 50,
	}
	id, err := spec.Identity("rev-fixed")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() ([]byte, []byte) {
		rec := obs.NewRecorder(receipt.TraceMask)
		run, err := server.SimRunner(id, server.RunOptions{Observer: rec})
		if err != nil {
			t.Fatal(err)
		}
		result, err := server.MarshalResult(run)
		if err != nil {
			t.Fatal(err)
		}
		r, trace, err := receipt.Build(id, result, rec.Events(), receipt.ProducerLocal)
		if err != nil {
			t.Fatal(err)
		}
		// Every genuine receipt must attest against its own artifacts.
		if err := r.Attest(receipt.Artifacts{Result: result, Trace: trace}, nil); err != nil {
			t.Fatalf("genuine receipt failed attestation: %v", err)
		}
		return r.CanonicalJSON(), trace
	}
	r1, t1 := runOnce()
	r2, t2 := runOnce()
	if !bytes.Equal(r1, r2) {
		t.Fatalf("same-seed receipts differ:\n%s\n%s", r1, r2)
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same-seed receipt traces differ")
	}
}

// Package receipt implements verifiable execution receipts: canonical,
// byte-deterministic coma-receipt/v1 JSON documents that pin everything
// needed to re-verify a simulation result after the fact — the run's
// content address (config.RunIdentity hash), the code revision, a
// SHA-256 digest of the canonical result payload, a digest of the
// observability trace, the simulated cycle/event totals, the txnview
// invariant verdict with protocol-edge coverage, and who produced the
// run. Receipts can optionally carry an HMAC-SHA256 signature for
// fleets whose transport is not trusted.
//
// Determinism is the contract: the encoding mirrors config.RunIdentity
// (pure-data struct, encoding/json declaration order, golden-pinned in
// receipt_test.go) and nothing in this package reads the wall clock —
// enforced by the comalint obswallclock analyzer — so two same-seed
// runs of the same revision emit byte-identical receipts. Verification
// is the inverse operation: Receipt.Attest recomputes every derivable
// field from the artifacts and names the exact field that diverged
// (surfaced by `comatrace attest`).
package receipt

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/obs/txnview"
	"coma/internal/stats"
)

// Schema versions the canonical receipt encoding. Bump it whenever a
// field is added, removed, renamed or reordered so old and new receipts
// can never be confused; the golden test pins the current bytes.
const Schema = "coma-receipt/v1"

// ProducerLocal is the producer identity of a receipt emitted by the
// process that ran the simulation in-process (comasim, single-process
// comad). Cluster workers use their worker name instead.
const ProducerLocal = "local"

// Verdict is the recorded outcome of the txnview invariant check.
type Verdict string

// Invariant verdicts; VerdictUnchecked is implicit (Invariants nil).
const (
	VerdictOK        Verdict = "ok"
	VerdictViolated  Verdict = "violated"
	VerdictUnchecked Verdict = "unchecked"
)

// Invariants is the recorded txnview verdict: the output of
// txnview.Summarize over the run's trace.
type Invariants struct {
	Verdict        Verdict `json:"verdict"`
	Violations     int     `json:"violations,omitempty"`
	EdgesExercised int     `json:"edges_exercised"`
	EdgesTotal     int     `json:"edges_total"`
}

// Receipt is one execution receipt. Like config.RunIdentity it is pure
// data — scalars and one pointer-to-struct-of-scalars — so its
// canonical JSON encoding is total and deterministic: encoding/json
// emits struct fields in declaration order. Changing the declaration
// order IS a schema change and must bump Schema.
type Receipt struct {
	// Schema is the encoding version; CanonicalJSON fills it when empty.
	Schema string `json:"schema"`
	// RunHash is the run's content address (config.RunIdentity.Hash) —
	// the same key the comad store files the result under.
	RunHash string `json:"run_hash"`
	// Revision pins the simulator code that produced the result.
	Revision string `json:"revision,omitempty"`
	// Producer identifies who ran the simulation: ProducerLocal, or the
	// cluster worker's name.
	Producer string `json:"producer"`

	// ResultDigest is the lowercase-hex SHA-256 of the canonical result
	// payload (server.MarshalResult bytes — exactly what GET
	// /v1/jobs/{id}/result serves).
	ResultDigest string `json:"result_digest"`
	// SimCycles and SimEvents are the run's simulated execution time and
	// kernel event total, copied from the result so a receipt is
	// meaningful without the payload in hand.
	SimCycles int64 `json:"sim_cycles"`
	SimEvents int64 `json:"sim_events"`

	// TraceDigest is the SHA-256 of the run's observability trace in
	// canonical JSONL encoding (obs.WriteJSONL bytes); empty when the
	// run recorded no trace. TraceEvents is the event count.
	TraceDigest string `json:"trace_digest,omitempty"`
	TraceEvents int64  `json:"trace_events,omitempty"`

	// Invariants is the txnview verdict over the trace; nil when no
	// trace was recorded (verdict "unchecked").
	Invariants *Invariants `json:"invariants,omitempty"`

	// Signature is the lowercase-hex HMAC-SHA256 of the receipt's
	// canonical encoding with this field cleared; empty when unsigned.
	Signature string `json:"sig,omitempty"`
}

// TraceMask is the event-kind set receipt-grade traces record: every
// kind the txnview checker and causal assembler consume, dropping only
// the two high-volume sampling kinds they ignore (mesh queue-depth
// samples and injection ring probes). Recording under this mask keeps
// the always-on invariant gate cheap without weakening the verdict.
const TraceMask = obs.MaskAll &^ (1<<obs.KQueueDepth | 1<<obs.KInjectProbe)

// Digest returns the lowercase-hex SHA-256 of b — the digest form used
// throughout the receipt schema.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TraceJSONL returns the canonical JSONL encoding of a trace — the
// bytes TraceDigest is computed over, byte-identical to what
// obs.WriteJSONL writes to a trace file.
func TraceJSONL(events []obs.Event) []byte {
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		// Unreachable: bytes.Buffer writes cannot fail.
		panic(fmt.Sprintf("receipt: encoding trace: %v", err))
	}
	return buf.Bytes()
}

// ParseResult strictly decodes a canonical result payload
// (server.MarshalResult bytes): unknown fields are rejected and the
// re-encoding must be byte-identical to the input, so bytes that would
// not round-trip through the store's canonical form never verify.
func ParseResult(b []byte) (*stats.Run, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var run stats.Run
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("receipt: decoding result: %w", err)
	}
	if dec.More() {
		return nil, errors.New("receipt: decoding result: trailing data after payload")
	}
	re, err := json.Marshal(&run)
	if err != nil {
		return nil, fmt.Errorf("receipt: re-encoding result: %w", err)
	}
	if !bytes.Equal(re, bytes.TrimSpace(b)) {
		return nil, errors.New("receipt: result bytes are not in canonical form (round-trip mismatch)")
	}
	return &run, nil
}

// Build assembles the receipt for one completed run: the result payload
// must be canonical (it is round-trip checked) and events is the run's
// recorded trace (nil or empty: the receipt records no trace and the
// verdict is unchecked). It returns the receipt unsigned plus the
// canonical trace JSONL bytes its TraceDigest covers.
func Build(id config.RunIdentity, result []byte, events []obs.Event, producer string) (Receipt, []byte, error) {
	run, err := ParseResult(result)
	if err != nil {
		return Receipt{}, nil, err
	}
	r := Receipt{
		Schema:       Schema,
		RunHash:      id.Hash(),
		Revision:     id.Revision,
		Producer:     producer,
		ResultDigest: Digest(result),
		SimCycles:    run.Cycles,
		SimEvents:    run.Events,
	}
	if len(events) == 0 {
		return r, nil, nil
	}
	trace := TraceJSONL(events)
	r.TraceDigest = Digest(trace)
	r.TraceEvents = int64(len(events))
	r.Invariants = invariantsOf(events)
	return r, trace, nil
}

// invariantsOf condenses the txnview verdict for the receipt.
func invariantsOf(events []obs.Event) *Invariants {
	s := txnview.Summarize(events)
	inv := &Invariants{
		Verdict:        VerdictOK,
		Violations:     s.Violations,
		EdgesExercised: s.EdgesExercised,
		EdgesTotal:     s.EdgesTotal,
	}
	if !s.OK {
		inv.Verdict = VerdictViolated
	}
	return inv
}

// VerdictLabel is the receipt's verdict as a metrics label:
// "ok", "violated", or "unchecked" when no trace was recorded.
func (r Receipt) VerdictLabel() string {
	if r.Invariants == nil {
		return string(VerdictUnchecked)
	}
	return string(r.Invariants.Verdict)
}

// CanonicalJSON returns the canonical encoding: compact JSON with
// fields in declaration order and Schema defaulted. It panics on a
// marshalling error, unreachable for this pure-data struct.
func (r Receipt) CanonicalJSON() []byte {
	if r.Schema == "" {
		r.Schema = Schema
	}
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("receipt: canonical encoding failed: %v", err))
	}
	return b
}

// signingBytes is the canonical encoding with Signature cleared — what
// the HMAC covers, so the signature does not sign itself.
func (r Receipt) signingBytes() []byte {
	r.Signature = ""
	return r.CanonicalJSON()
}

// Sign returns a copy carrying the lowercase-hex HMAC-SHA256 of the
// receipt's canonical encoding (Signature cleared) under key.
func (r Receipt) Sign(key []byte) Receipt {
	mac := hmac.New(sha256.New, key)
	mac.Write(r.signingBytes())
	r.Signature = hex.EncodeToString(mac.Sum(nil))
	return r
}

// VerifySignature checks the receipt's HMAC under key.
func (r Receipt) VerifySignature(key []byte) error {
	if r.Signature == "" {
		return errors.New("receipt is unsigned")
	}
	got, err := hex.DecodeString(r.Signature)
	if err != nil {
		return fmt.Errorf("malformed signature: %v", err)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(r.signingBytes())
	if !hmac.Equal(got, mac.Sum(nil)) {
		return errors.New("HMAC mismatch (wrong key, or receipt modified)")
	}
	return nil
}

// Parse strictly decodes one receipt: unknown fields are rejected, the
// schema must match, and the input must be byte-identical to the
// receipt's canonical encoding (modulo surrounding whitespace) — a
// receipt that would not re-encode to itself is not a receipt.
func Parse(b []byte) (Receipt, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r Receipt
	if err := dec.Decode(&r); err != nil {
		return Receipt{}, fmt.Errorf("receipt: decoding: %w", err)
	}
	if dec.More() {
		return Receipt{}, errors.New("receipt: decoding: trailing data after receipt")
	}
	if r.Schema != Schema {
		return Receipt{}, fmt.Errorf("receipt: schema %q, want %q", r.Schema, Schema)
	}
	if !bytes.Equal(r.CanonicalJSON(), bytes.TrimSpace(b)) {
		return Receipt{}, errors.New("receipt: not in canonical form (re-encoding differs)")
	}
	return r, nil
}

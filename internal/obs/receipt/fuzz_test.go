package receipt

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReceiptRoundTrip mirrors obs.FuzzJSONLRoundTrip for the receipt
// encoding: any input Parse accepts must re-encode to the canonical
// bytes, parse back to a deeply equal receipt, and be byte-stable
// across a second round trip. Because Parse enforces canonical form,
// acceptance itself implies the input was already canonical.
func FuzzReceiptRoundTrip(f *testing.F) {
	r := Receipt{
		Schema:       Schema,
		RunHash:      "a210effd7b61d7d82c2d04c8648333eadd541f51547ec004854694a4beabac9a",
		Revision:     "rev-test",
		Producer:     "local",
		ResultDigest: "4ec7b4bd989a77c8d90741239d834fca7e1239cef9ead7d5c2a39e5621835f6c",
		SimCycles:    1234,
		SimEvents:    5678,
	}
	f.Add(r.CanonicalJSON())
	r.TraceDigest = "ba9c21e39b02e3a9d33164c9c75e2c6d6f17939e98a949121d85d08ef53d2407"
	r.TraceEvents = 3
	r.Invariants = &Invariants{Verdict: VerdictOK, EdgesExercised: 3, EdgesTotal: 35}
	f.Add(r.CanonicalJSON())
	f.Add(r.Sign([]byte("k")).CanonicalJSON())
	f.Add([]byte(`{"schema":"coma-receipt/v1"}`))
	f.Add([]byte(`{"schema":"coma-receipt/v9"}`))
	f.Add([]byte(`not a receipt`))

	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := Parse(data)
		if err != nil {
			return // rejected inputs are out of scope
		}
		canon := first.CanonicalJSON()
		if !bytes.Equal(canon, bytes.TrimSpace(data)) {
			t.Fatalf("accepted non-canonical input:\n in %q\nout %q", data, canon)
		}
		second, err := Parse(canon)
		if err != nil {
			t.Fatalf("re-encoded receipt rejected: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("round trip changed the receipt:\n%+v\n%+v", first, second)
		}
		if again := second.CanonicalJSON(); !bytes.Equal(canon, again) {
			t.Fatalf("re-encoding not byte-stable:\n%q\n%q", canon, again)
		}
	})
}

package receipt

import (
	"encoding/json"
	"strings"
	"testing"

	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/stats"
)

// fixedIdentity is a stable run identity for pinning receipt bytes.
func fixedIdentity() config.RunIdentity {
	return config.RunIdentity{
		Revision:     "rev-test",
		Arch:         config.KSR1(4),
		Protocol:     "ecp",
		App:          "uniform",
		Instructions: 1000,
		Seed:         7,
	}
}

// fixedResult is a canonical result payload (server.MarshalResult is
// json.Marshal over *stats.Run).
func fixedResult(t *testing.T) []byte {
	t.Helper()
	run := &stats.Run{Protocol: "ecp", App: "uniform", Nodes: 4, Cycles: 1234, Events: 5678}
	b, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fixedEvents is a tiny trace the replay checker accepts: every KState
// transition is consistent with the replayed copy state.
func fixedEvents() []obs.Event {
	return []obs.Event{
		{Time: 5, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Exclusive},
		{Time: 9, Kind: obs.KState, Node: 0, Item: 1, From: proto.Exclusive, To: proto.MasterShared},
		{Time: 9, Kind: obs.KState, Node: 1, Item: 1, From: proto.Invalid, To: proto.Shared},
	}
}

func buildFixed(t *testing.T) (Receipt, []byte, []byte) {
	t.Helper()
	result := fixedResult(t)
	r, trace, err := Build(fixedIdentity(), result, fixedEvents(), ProducerLocal)
	if err != nil {
		t.Fatal(err)
	}
	return r, result, trace
}

func TestBuildDeterministic(t *testing.T) {
	a, _, traceA := buildFixed(t)
	b, _, traceB := buildFixed(t)
	if string(a.CanonicalJSON()) != string(b.CanonicalJSON()) {
		t.Fatalf("same inputs, different receipts:\n%s\n%s", a.CanonicalJSON(), b.CanonicalJSON())
	}
	if string(traceA) != string(traceB) {
		t.Fatal("same inputs, different trace bytes")
	}
	if a.RunHash != fixedIdentity().Hash() {
		t.Fatalf("RunHash = %s, want identity hash %s", a.RunHash, fixedIdentity().Hash())
	}
	if a.SimCycles != 1234 || a.SimEvents != 5678 {
		t.Fatalf("sim totals = %d/%d, want 1234/5678", a.SimCycles, a.SimEvents)
	}
	if a.Invariants == nil || a.Invariants.Verdict != VerdictOK {
		t.Fatalf("invariants = %+v, want ok verdict", a.Invariants)
	}
	if a.VerdictLabel() != "ok" {
		t.Fatalf("VerdictLabel = %q, want ok", a.VerdictLabel())
	}
}

// TestCanonicalGolden pins the canonical encoding: field order, names
// and digest formats. If this fails because the schema deliberately
// changed, bump Schema and re-pin.
func TestCanonicalGolden(t *testing.T) {
	r, _, _ := buildFixed(t)
	const want = `{"schema":"coma-receipt/v1",` +
		`"run_hash":"` + `%RUNHASH%` + `",` +
		`"revision":"rev-test",` +
		`"producer":"local",` +
		`"result_digest":"` + `%RESULTDIGEST%` + `",` +
		`"sim_cycles":1234,"sim_events":5678,` +
		`"trace_digest":"` + `%TRACEDIGEST%` + `",` +
		`"trace_events":3,` +
		`"invariants":{"verdict":"ok","edges_exercised":3,"edges_total":35}}`
	expanded := strings.NewReplacer(
		"%RUNHASH%", fixedIdentity().Hash(),
		"%RESULTDIGEST%", Digest(fixedResult(t)),
		"%TRACEDIGEST%", Digest(TraceJSONL(fixedEvents())),
	).Replace(want)
	if got := string(r.CanonicalJSON()); got != expanded {
		t.Fatalf("canonical encoding drifted:\n got %s\nwant %s", got, expanded)
	}
}

func TestVerdictUncheckedWithoutTrace(t *testing.T) {
	result := fixedResult(t)
	r, trace, err := Build(fixedIdentity(), result, nil, "w3")
	if err != nil {
		t.Fatal(err)
	}
	if trace != nil || r.TraceDigest != "" || r.Invariants != nil {
		t.Fatalf("trace-less receipt records trace data: %s", r.CanonicalJSON())
	}
	if r.VerdictLabel() != "unchecked" {
		t.Fatalf("VerdictLabel = %q, want unchecked", r.VerdictLabel())
	}
	if err := r.Attest(Artifacts{Result: result}, nil); err != nil {
		t.Fatalf("attest of trace-less receipt: %v", err)
	}
}

func TestBuildRejectsNonCanonicalResult(t *testing.T) {
	for name, payload := range map[string]string{
		"garbage":        "not json at all",
		"unknown field":  `{"bogus_field":1}`,
		"non-canonical":  `{ "protocol": "ecp" }`,
		"trailing bytes": `{}{}`,
	} {
		if _, _, err := Build(fixedIdentity(), []byte(payload), nil, "x"); err == nil {
			t.Errorf("%s: Build accepted %q", name, payload)
		}
		if _, err := ParseResult([]byte(payload)); err == nil {
			t.Errorf("%s: ParseResult accepted %q", name, payload)
		}
	}
}

func TestSignVerify(t *testing.T) {
	r, _, _ := buildFixed(t)
	key := []byte("cluster-shared-secret")
	signed := r.Sign(key)
	if signed.Signature == "" || r.Signature != "" {
		t.Fatal("Sign must return a signed copy, leaving the original untouched")
	}
	if err := signed.VerifySignature(key); err != nil {
		t.Fatalf("genuine signature rejected: %v", err)
	}
	if err := signed.VerifySignature([]byte("wrong key")); err == nil {
		t.Fatal("wrong key accepted")
	}
	if err := r.VerifySignature(key); err == nil {
		t.Fatal("unsigned receipt verified")
	}
	tampered := signed
	tampered.SimCycles++
	if err := tampered.VerifySignature(key); err == nil {
		t.Fatal("modified receipt still verifies")
	}
	// Attest with a key covers the signature first.
	if err := tampered.Attest(Artifacts{}, key); err == nil {
		t.Fatal("attest accepted a bad signature")
	} else if fe := err.(*FieldError); fe.Field != "sig" {
		t.Fatalf("field = %q, want sig", fe.Field)
	}
}

func TestParseStrict(t *testing.T) {
	r, _, _ := buildFixed(t)
	canon := r.CanonicalJSON()
	back, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical receipt rejected: %v", err)
	}
	if string(back.CanonicalJSON()) != string(canon) {
		t.Fatal("parse/re-encode not byte-stable")
	}
	if _, err := Parse(append(canon, '\n')); err != nil {
		t.Fatalf("trailing newline rejected: %v", err)
	}
	for name, b := range map[string]string{
		"unknown field": `{"schema":"coma-receipt/v1","bogus":1}`,
		"wrong schema":  `{"schema":"coma-receipt/v9"}`,
		"non-canonical": "{ " + string(canon[1:]),
		"trailing data": string(canon) + "{}",
	} {
		if _, err := Parse([]byte(b)); err == nil {
			t.Errorf("%s: accepted %q", name, b)
		}
	}
}

// TestAttestTamper is the tampering table: flipping one byte in the
// result artifact, the trace artifact, or the receipt's recorded
// digests must fail attestation naming the divergent field.
func TestAttestTamper(t *testing.T) {
	r, result, trace := buildFixed(t)
	if err := r.Attest(Artifacts{Result: result, Trace: trace}, nil); err != nil {
		t.Fatalf("genuine receipt failed attestation: %v", err)
	}

	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i] ^= 0x01
		return out
	}
	cases := []struct {
		name  string
		arts  Artifacts
		rcpt  Receipt
		field string
	}{
		{"result byte flipped", Artifacts{Result: flip(result, len(result)/2), Trace: trace}, r, "result_digest"},
		{"trace byte flipped", Artifacts{Result: result, Trace: flip(trace, len(trace)/2)}, r, "trace_digest"},
		{"receipt result_digest tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt { c := r; c.ResultDigest = "0" + c.ResultDigest[1:]; return c }(), "result_digest"},
		{"receipt trace_digest tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt { c := r; c.TraceDigest = "0" + c.TraceDigest[1:]; return c }(), "trace_digest"},
		{"receipt sim_cycles tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt { c := r; c.SimCycles++; return c }(), "sim_cycles"},
		{"receipt sim_events tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt { c := r; c.SimEvents++; return c }(), "sim_events"},
		{"receipt trace_events tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt { c := r; c.TraceEvents++; return c }(), "trace_events"},
		{"receipt verdict tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt {
				c := r
				inv := *c.Invariants
				inv.Verdict = VerdictViolated
				c.Invariants = &inv
				return c
			}(), "invariants.verdict"},
		{"receipt edge count tampered", Artifacts{Result: result, Trace: trace},
			func() Receipt {
				c := r
				inv := *c.Invariants
				inv.EdgesExercised++
				c.Invariants = &inv
				return c
			}(), "invariants.edges_exercised"},
		{"trace supplied to trace-less receipt", Artifacts{Result: result, Trace: trace},
			func() Receipt {
				c := r
				c.TraceDigest, c.TraceEvents, c.Invariants = "", 0, nil
				return c
			}(), "trace_digest"},
	}
	for _, tc := range cases {
		err := tc.rcpt.Attest(tc.arts, nil)
		if err == nil {
			t.Errorf("%s: attestation passed", tc.name)
			continue
		}
		fe, ok := err.(*FieldError)
		if !ok {
			t.Errorf("%s: error %v is not a *FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: named field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

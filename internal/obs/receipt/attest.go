package receipt

import (
	"bytes"
	"fmt"

	"coma/internal/obs"
)

// Artifacts are the recomputable inputs to attestation: the canonical
// result payload and the canonical JSONL trace. A nil slice skips that
// artifact's checks (attesting a cluster receipt whose trace stayed on
// the worker, for example).
type Artifacts struct {
	Result []byte
	Trace  []byte
}

// FieldError reports the first receipt field whose recorded value
// diverges from what the artifacts recompute to. Field is the JSON
// field path ("result_digest", "invariants.verdict", ...), so
// `comatrace attest` can name exactly what was tampered with.
type FieldError struct {
	Field  string
	Detail string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("field %s: %s", e.Field, e.Detail)
}

// Attest verifies the receipt against the artifacts: every derivable
// field is recomputed — digests, cycle/event totals, and the full
// txnview invariant replay — and compared with the recorded value.
// With a non-nil key the HMAC signature is verified first. The error,
// when non-nil, is a *FieldError naming the first divergent field (or
// a parse error when an artifact is not even well-formed).
func (r Receipt) Attest(a Artifacts, key []byte) error {
	if r.Schema != "" && r.Schema != Schema {
		return &FieldError{Field: "schema", Detail: fmt.Sprintf("recorded %q, want %q", r.Schema, Schema)}
	}
	if key != nil {
		if err := r.VerifySignature(key); err != nil {
			return &FieldError{Field: "sig", Detail: err.Error()}
		}
	}
	if a.Result != nil {
		if err := r.attestResult(a.Result); err != nil {
			return err
		}
	}
	if a.Trace != nil {
		if err := r.attestTrace(a.Trace); err != nil {
			return err
		}
	}
	return nil
}

func (r Receipt) attestResult(result []byte) error {
	if got := Digest(result); got != r.ResultDigest {
		return &FieldError{Field: "result_digest",
			Detail: fmt.Sprintf("recorded %s, result artifact hashes to %s", r.ResultDigest, got)}
	}
	run, err := ParseResult(result)
	if err != nil {
		return &FieldError{Field: "result_digest",
			Detail: fmt.Sprintf("result artifact matches the digest but is not a canonical payload: %v", err)}
	}
	if run.Cycles != r.SimCycles {
		return &FieldError{Field: "sim_cycles",
			Detail: fmt.Sprintf("recorded %d, result says %d", r.SimCycles, run.Cycles)}
	}
	if run.Events != r.SimEvents {
		return &FieldError{Field: "sim_events",
			Detail: fmt.Sprintf("recorded %d, result says %d", r.SimEvents, run.Events)}
	}
	return nil
}

func (r Receipt) attestTrace(trace []byte) error {
	if r.TraceDigest == "" {
		return &FieldError{Field: "trace_digest",
			Detail: "receipt records no trace, but a trace artifact was supplied"}
	}
	if got := Digest(trace); got != r.TraceDigest {
		return &FieldError{Field: "trace_digest",
			Detail: fmt.Sprintf("recorded %s, trace artifact hashes to %s", r.TraceDigest, got)}
	}
	events, err := obs.ReadJSONL(bytes.NewReader(trace))
	if err != nil {
		return &FieldError{Field: "trace_digest",
			Detail: fmt.Sprintf("trace artifact matches the digest but does not parse: %v", err)}
	}
	if int64(len(events)) != r.TraceEvents {
		return &FieldError{Field: "trace_events",
			Detail: fmt.Sprintf("recorded %d, trace holds %d", r.TraceEvents, len(events))}
	}
	want := invariantsOf(events)
	got := r.Invariants
	switch {
	case got == nil:
		return &FieldError{Field: "invariants", Detail: "receipt records no verdict for its trace"}
	case got.Verdict != want.Verdict:
		return &FieldError{Field: "invariants.verdict",
			Detail: fmt.Sprintf("recorded %q, replay says %q", got.Verdict, want.Verdict)}
	case got.Violations != want.Violations:
		return &FieldError{Field: "invariants.violations",
			Detail: fmt.Sprintf("recorded %d, replay found %d", got.Violations, want.Violations)}
	case got.EdgesExercised != want.EdgesExercised:
		return &FieldError{Field: "invariants.edges_exercised",
			Detail: fmt.Sprintf("recorded %d, replay counted %d", got.EdgesExercised, want.EdgesExercised)}
	case got.EdgesTotal != want.EdgesTotal:
		return &FieldError{Field: "invariants.edges_total",
			Detail: fmt.Sprintf("recorded %d, spec table holds %d", got.EdgesTotal, want.EdgesTotal)}
	}
	return nil
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"coma/internal/proto"
)

// jsonlEvent is the on-disk shape of one event. Enumerations travel as
// their names so logs stay greppable and survive enum renumbering.
// Txn/Par are pointers so the reader can tell an explicit zero from an
// absent field and enforce the per-kind field rules below.
type jsonlEvent struct {
	Time  int64  `json:"t"`
	Kind  string `json:"k"`
	Node  int64  `json:"n"`
	Item  int64  `json:"i"`
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Cause string `json:"cause,omitempty"`
	Txn   *int64 `json:"txn,omitempty"`
	Par   *int64 `json:"par,omitempty"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// WriteJSONL writes events as one JSON object per line. The encoding is
// hand-assembled in field order with no map in sight, so the same event
// stream always produces the same bytes (the byte-identical-trace golden
// test depends on this).
func (ev *Event) appendJSONL(buf []byte) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, ev.Time, 10)
	buf = append(buf, `,"k":"`...)
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, `","n":`...)
	buf = strconv.AppendInt(buf, int64(ev.Node), 10)
	buf = append(buf, `,"i":`...)
	buf = strconv.AppendInt(buf, int64(ev.Item), 10)
	if ev.Kind == KState {
		buf = append(buf, `,"from":"`...)
		buf = append(buf, ev.From.String()...)
		buf = append(buf, `","to":"`...)
		buf = append(buf, ev.To.String()...)
		buf = append(buf, '"')
	}
	if ev.Kind == KInjectProbe || ev.Kind == KInjectAccept {
		buf = append(buf, `,"cause":"`...)
		buf = append(buf, ev.Cause.String()...)
		buf = append(buf, '"')
		if ev.Txn != proto.NoTxn {
			buf = append(buf, `,"txn":`...)
			buf = strconv.AppendInt(buf, int64(ev.Txn), 10)
		}
	}
	if ev.Kind == KTxnBegin || ev.Kind == KTxnHop || ev.Kind == KTxnEnd {
		buf = append(buf, `,"txn":`...)
		buf = strconv.AppendInt(buf, int64(ev.Txn), 10)
		if ev.Kind == KTxnBegin && ev.Par != proto.NoTxn {
			buf = append(buf, `,"par":`...)
			buf = strconv.AppendInt(buf, int64(ev.Par), 10)
		}
	}
	buf = append(buf, `,"a":`...)
	buf = strconv.AppendInt(buf, ev.A, 10)
	buf = append(buf, `,"b":`...)
	buf = strconv.AppendInt(buf, ev.B, 10)
	buf = append(buf, '}', '\n')
	return buf
}

// WriteJSONL writes the events as a JSON-lines log.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 256)
	for i := range events {
		buf = events[i].appendJSONL(buf[:0])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Reverse name lookups for decoding. Built once from the String methods
// so they can never drift from the canonical names.
var (
	kindFromName  = map[string]Kind{}
	stateFromName = map[string]proto.State{}
	causeFromName = map[string]proto.InjectCause{}
)

func init() {
	for k := Kind(0); k < numKinds; k++ {
		kindFromName[k.String()] = k
	}
	for i := 0; ; i++ {
		s := proto.State(i)
		if strings.HasPrefix(s.String(), "State(") {
			break
		}
		stateFromName[s.String()] = s
	}
	for c := proto.InjectCause(0); c < proto.NumInjectCauses; c++ {
		causeFromName[c.String()] = c
	}
}

// ReadJSONL parses a JSON-lines log written by WriteJSONL. Parsing is
// strict — unknown fields, fields on the wrong event kind, out-of-range
// identifiers and trailing garbage are all line-numbered errors — so
// that any accepted line re-encodes to the same event (the
// FuzzJSONLRoundTrip property) and the offline checker never runs on a
// silently mangled trace.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		ev, err := parseJSONLLine(raw)
		if err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseJSONLLine(raw string) (Event, error) {
	var je jsonlEvent
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&je); err != nil {
		return Event{}, err
	}
	if dec.More() {
		return Event{}, fmt.Errorf("trailing data after event object")
	}
	k, ok := kindFromName[je.Kind]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", je.Kind)
	}
	if je.Node < int64(proto.None) || je.Node > 1<<15-1 {
		return Event{}, fmt.Errorf("node %d out of range", je.Node)
	}
	if je.Item < int64(proto.NoItem) || je.Item > 1<<31-1 {
		return Event{}, fmt.Errorf("item %d out of range", je.Item)
	}
	ev := Event{
		Time: je.Time,
		Kind: k,
		Node: proto.NodeID(je.Node),
		Item: proto.ItemID(je.Item),
		A:    je.A,
		B:    je.B,
	}
	inject := k == KInjectProbe || k == KInjectAccept
	txnKind := k == KTxnBegin || k == KTxnHop || k == KTxnEnd
	if k == KState {
		if je.From == "" || je.To == "" {
			return Event{}, fmt.Errorf("%q event needs from and to states", je.Kind)
		}
		from, ok := stateFromName[je.From]
		if !ok {
			return Event{}, fmt.Errorf("unknown state %q", je.From)
		}
		to, ok := stateFromName[je.To]
		if !ok {
			return Event{}, fmt.Errorf("unknown state %q", je.To)
		}
		ev.From, ev.To = from, to
	} else if je.From != "" || je.To != "" {
		return Event{}, fmt.Errorf("from/to states on non-state event %q", je.Kind)
	}
	if inject {
		c, ok := causeFromName[je.Cause]
		if !ok {
			return Event{}, fmt.Errorf("unknown inject cause %q", je.Cause)
		}
		ev.Cause = c
	} else if je.Cause != "" {
		return Event{}, fmt.Errorf("inject cause on non-inject event %q", je.Kind)
	}
	switch {
	case txnKind:
		if je.Txn == nil {
			return Event{}, fmt.Errorf("%q event needs a txn id", je.Kind)
		}
		ev.Txn = proto.TxnID(*je.Txn)
	case inject:
		if je.Txn != nil {
			if *je.Txn == 0 {
				return Event{}, fmt.Errorf("explicit zero txn id on %q event", je.Kind)
			}
			ev.Txn = proto.TxnID(*je.Txn)
		}
	case je.Txn != nil:
		return Event{}, fmt.Errorf("txn id on %q event", je.Kind)
	}
	if je.Par != nil {
		if k != KTxnBegin {
			return Event{}, fmt.Errorf("parent txn on %q event", je.Kind)
		}
		if *je.Par == 0 {
			return Event{}, fmt.Errorf("explicit zero parent txn")
		}
		ev.Par = proto.TxnID(*je.Par)
	}
	return ev, nil
}

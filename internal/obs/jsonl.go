package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"coma/internal/proto"
)

// jsonlEvent is the on-disk shape of one event. Enumerations travel as
// their names so logs stay greppable and survive enum renumbering.
type jsonlEvent struct {
	Time  int64  `json:"t"`
	Kind  string `json:"k"`
	Node  int64  `json:"n"`
	Item  int64  `json:"i"`
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Cause string `json:"cause,omitempty"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// WriteJSONL writes events as one JSON object per line. The encoding is
// hand-assembled in field order with no map in sight, so the same event
// stream always produces the same bytes (the byte-identical-trace golden
// test depends on this).
func (ev *Event) appendJSONL(buf []byte) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, ev.Time, 10)
	buf = append(buf, `,"k":"`...)
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, `","n":`...)
	buf = strconv.AppendInt(buf, int64(ev.Node), 10)
	buf = append(buf, `,"i":`...)
	buf = strconv.AppendInt(buf, int64(ev.Item), 10)
	if ev.Kind == KState {
		buf = append(buf, `,"from":"`...)
		buf = append(buf, ev.From.String()...)
		buf = append(buf, `","to":"`...)
		buf = append(buf, ev.To.String()...)
		buf = append(buf, '"')
	}
	if ev.Kind == KInjectProbe || ev.Kind == KInjectAccept {
		buf = append(buf, `,"cause":"`...)
		buf = append(buf, ev.Cause.String()...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"a":`...)
	buf = strconv.AppendInt(buf, ev.A, 10)
	buf = append(buf, `,"b":`...)
	buf = strconv.AppendInt(buf, ev.B, 10)
	buf = append(buf, '}', '\n')
	return buf
}

// WriteJSONL writes the events as a JSON-lines log.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 256)
	for i := range events {
		buf = events[i].appendJSONL(buf[:0])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Reverse name lookups for decoding. Built once from the String methods
// so they can never drift from the canonical names.
var (
	kindFromName  = map[string]Kind{}
	stateFromName = map[string]proto.State{}
	causeFromName = map[string]proto.InjectCause{}
)

func init() {
	for k := Kind(0); k < numKinds; k++ {
		kindFromName[k.String()] = k
	}
	for i := 0; ; i++ {
		s := proto.State(i)
		if strings.HasPrefix(s.String(), "State(") {
			break
		}
		stateFromName[s.String()] = s
	}
	for c := proto.InjectCause(0); c < proto.NumInjectCauses; c++ {
		causeFromName[c.String()] = c
	}
}

// ReadJSONL parses a JSON-lines log written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(raw), &je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		k, ok := kindFromName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown event kind %q", line, je.Kind)
		}
		ev := Event{
			Time: je.Time,
			Kind: k,
			Node: proto.NodeID(je.Node),
			Item: proto.ItemID(je.Item),
			A:    je.A,
			B:    je.B,
		}
		if je.From != "" || je.To != "" {
			from, ok := stateFromName[je.From]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown state %q", line, je.From)
			}
			to, ok := stateFromName[je.To]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown state %q", line, je.To)
			}
			ev.From, ev.To = from, to
		}
		if je.Cause != "" {
			c, ok := causeFromName[je.Cause]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown inject cause %q", line, je.Cause)
			}
			ev.Cause = c
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

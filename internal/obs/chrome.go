package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChromeTrace writes events in the Chrome trace-event JSON format
// (the "JSON Array Format"), loadable in Perfetto or chrome://tracing.
//
// Layout: everything lives in pid 0 ("comasim"); each node gets its own
// track (tid = node id) carrying its checkpoint/recovery phase spans and
// fault/injection/reconfiguration instants, and one extra track
// (tid = nodes) carries the coordinator's global round spans, quiesce
// and commit markers. Mesh queue-depth samples become counter tracks.
// Timestamps are sim cycles converted to microseconds of simulated time
// via clockHz.
//
// High-volume kinds (state transitions, fills, individual probes) are
// deliberately left out of the visual trace — they remain in the JSONL
// log and feed the histogram summary instead.
func WriteChromeTrace(w io.Writer, clockHz int64, events []Event) error {
	nodes := 0
	for i := range events {
		if n := int(events[i].Node) + 1; n > nodes {
			nodes = n
		}
		if events[i].Kind == KInjectProbe || events[i].Kind == KInjectAccept {
			if n := int(events[i].A) + 1; n > nodes {
				nodes = n
			}
		}
	}
	coordTID := int64(nodes)

	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 256)
	first := true
	emit := func(b []byte) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(b)
		return err
	}
	// ts converts a cycle count to trace microseconds.
	ts := func(buf []byte, cycles int64) []byte {
		us := float64(cycles) * 1e6 / float64(clockHz)
		return strconv.AppendFloat(buf, us, 'f', 3, 64)
	}

	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}

	// Metadata: process and per-track names.
	buf = append(buf[:0], `{"ph":"M","pid":0,"name":"process_name","args":{"name":"comasim"}}`...)
	if err := emit(buf); err != nil {
		return err
	}
	for n := 0; n < nodes; n++ {
		buf = append(buf[:0], `{"ph":"M","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, `,"name":"thread_name","args":{"name":"node `...)
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, `"}}`...)
		if err := emit(buf); err != nil {
			return err
		}
	}
	buf = append(buf[:0], `{"ph":"M","pid":0,"tid":`...)
	buf = strconv.AppendInt(buf, coordTID, 10)
	buf = append(buf, `,"name":"thread_name","args":{"name":"coordinator"}}`...)
	if err := emit(buf); err != nil {
		return err
	}

	span := func(buf []byte, name string, tid, start, dur int64) []byte {
		buf = append(buf, `{"ph":"X","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, tid, 10)
		buf = append(buf, `,"ts":`...)
		buf = ts(buf, start)
		buf = append(buf, `,"dur":`...)
		buf = ts(buf, dur)
		buf = append(buf, `,"name":"`...)
		buf = append(buf, name...)
		buf = append(buf, `"`...)
		return buf
	}
	instant := func(buf []byte, name string, tid, at int64) []byte {
		buf = append(buf, `{"ph":"i","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, tid, 10)
		buf = append(buf, `,"ts":`...)
		buf = ts(buf, at)
		buf = append(buf, `,"s":"t","name":"`...)
		buf = append(buf, name...)
		buf = append(buf, `"`...)
		return buf
	}

	// async emits the head of a transaction async/flow event: transactions
	// render as nested "b"/"e" spans per track, and the matching
	// "s"/"t"/"f" flow events draw arrows following the transaction
	// across node tracks (matched on cat+id).
	async := func(buf []byte, ph byte, name string, tid, at, id int64) []byte {
		buf = append(buf, `{"ph":"`...)
		buf = append(buf, ph)
		buf = append(buf, `","cat":"txn","id":"`...)
		buf = strconv.AppendInt(buf, id, 10)
		buf = append(buf, `","pid":0,"tid":`...)
		buf = strconv.AppendInt(buf, tid, 10)
		buf = append(buf, `,"ts":`...)
		buf = ts(buf, at)
		buf = append(buf, `,"name":"`...)
		buf = append(buf, name...)
		buf = append(buf, `"`...)
		return buf
	}
	txnTID := func(n int64) int64 {
		if n < 0 {
			return coordTID
		}
		return n
	}

	var roundStart int64
	haveRound := false
	for i := range events {
		ev := &events[i]
		buf = buf[:0]
		switch ev.Kind {
		case KPhaseEnd:
			buf = span(buf, Phase(ev.A).String(), int64(ev.Node), ev.Time-ev.B, ev.B)
			buf = append(buf, `}`...)
		case KRoundBegin:
			roundStart, haveRound = ev.Time, true
			continue
		case KRoundEnd:
			if !haveRound {
				continue
			}
			haveRound = false
			name := "checkpoint round"
			if ev.A != 0 {
				name = "recovery round"
			}
			buf = span(buf, name, coordTID, roundStart, ev.Time-roundStart)
			buf = append(buf, `,"args":{"round":`...)
			buf = strconv.AppendInt(buf, ev.B, 10)
			buf = append(buf, `}}`...)
		case KRoundQuiesced:
			buf = instant(buf, "quiesced", coordTID, ev.Time)
			buf = append(buf, `}`...)
		case KCommitted:
			buf = instant(buf, "committed", coordTID, ev.Time)
			buf = append(buf, `,"args":{"round":`...)
			buf = strconv.AppendInt(buf, ev.B, 10)
			buf = append(buf, `}}`...)
		case KRollback:
			buf = instant(buf, "rollback", coordTID, ev.Time)
			buf = append(buf, `,"args":{"dropped":`...)
			buf = strconv.AppendInt(buf, ev.A, 10)
			buf = append(buf, `}}`...)
		case KFault:
			name := "fault (transient)"
			if ev.A != 0 {
				name = "fault (permanent)"
			}
			buf = instant(buf, name, int64(ev.Node), ev.Time)
			buf = append(buf, `}`...)
		case KReconfig:
			buf = instant(buf, "reconfigured", int64(ev.Node), ev.Time)
			buf = append(buf, `,"args":{"reinjected":`...)
			buf = strconv.AppendInt(buf, ev.A, 10)
			buf = append(buf, `}}`...)
		case KInjectAccept:
			buf = instant(buf, "inject", int64(ev.Node), ev.Time)
			buf = append(buf, `,"args":{"to":`...)
			buf = strconv.AppendInt(buf, ev.A, 10)
			buf = append(buf, `,"hops":`...)
			buf = strconv.AppendInt(buf, ev.B, 10)
			buf = append(buf, `,"cause":"`...)
			buf = append(buf, ev.Cause.String()...)
			buf = append(buf, `"}}`...)
		case KQueueDepth:
			buf = append(buf, `{"ph":"C","pid":0,"ts":`...)
			buf = ts(buf, ev.Time)
			buf = append(buf, `,"name":"mesh in-flight","args":{"request":`...)
			buf = strconv.AppendInt(buf, ev.A, 10)
			buf = append(buf, `,"reply":`...)
			buf = strconv.AppendInt(buf, ev.B, 10)
			buf = append(buf, `}}`...)
		case KTxnBegin:
			tid := txnTID(int64(ev.Node))
			buf = async(buf, 'b', TxnOpName(ev.A), tid, ev.Time, int64(ev.Txn))
			if ev.Par != 0 {
				buf = append(buf, `,"args":{"parent":"`...)
				buf = strconv.AppendInt(buf, int64(ev.Par), 10)
				buf = append(buf, `"}`...)
			}
			buf = append(buf, `}`...)
			if err := emit(buf); err != nil {
				return err
			}
			buf = async(buf[:0], 's', "txn", tid, ev.Time, int64(ev.Txn))
			buf = append(buf, `}`...)
		case KTxnHop:
			buf = async(buf, 't', "txn", txnTID(int64(ev.Node)), ev.Time, int64(ev.Txn))
			buf = append(buf, `}`...)
		case KTxnEnd:
			tid := txnTID(int64(ev.Node))
			buf = async(buf, 'f', "txn", tid, ev.Time, int64(ev.Txn))
			buf = append(buf, `,"bp":"e"}`...)
			if err := emit(buf); err != nil {
				return err
			}
			buf = async(buf[:0], 'e', "", tid, ev.Time, int64(ev.Txn))
			buf = append(buf, `}`...)
		case KState, KReadFill, KWriteFill, KInjectProbe, KPhaseBegin:
			continue
		default:
			continue
		}
		if err := emit(buf); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

package obs

import "testing"

// emitHost mirrors how the simulator layers hold an Observer: a nil
// interface field checked once per emission site. The benchmark and the
// zero-alloc test below pin the cost model the package documents — a
// disabled observer is one predictable branch and no allocation.
type emitHost struct {
	obs Observer
	now int64
}

func (h *emitHost) access() {
	h.now += 17
	if h.obs != nil {
		h.obs.Emit(Event{Time: h.now, Kind: KReadFill, Node: 1, Item: 42, A: FillRemote, B: 120})
	}
}

// BenchmarkObsDisabled measures the per-access cost of the guard with
// observation off (the default for every simulator run).
func BenchmarkObsDisabled(b *testing.B) {
	h := &emitHost{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.access()
	}
	if h.now == 0 {
		b.Fatal("loop optimised away")
	}
}

// BenchmarkObsNop measures emitting through a non-nil no-op Observer —
// the upper bound any enabled exporter must beat before its own work.
func BenchmarkObsNop(b *testing.B) {
	h := &emitHost{obs: Nop{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.access()
	}
}

// BenchmarkObsRecorder measures recording into the buffering Recorder.
func BenchmarkObsRecorder(b *testing.B) {
	r := NewRecorder(MaskAll)
	h := &emitHost{obs: r}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.access()
	}
}

// TestObsDisabledZeroAlloc pins the acceptance criterion directly: the
// disabled emit path performs zero allocations.
func TestObsDisabledZeroAlloc(t *testing.T) {
	h := &emitHost{}
	if allocs := testing.AllocsPerRun(1000, h.access); allocs != 0 {
		t.Fatalf("disabled emit path allocates %.1f per op, want 0", allocs)
	}
}

// TestObsNopZeroAlloc additionally checks that emitting a full Event
// through the interface does not box or allocate.
func TestObsNopZeroAlloc(t *testing.T) {
	h := &emitHost{obs: Nop{}}
	if allocs := testing.AllocsPerRun(1000, h.access); allocs != 0 {
		t.Fatalf("nop emit path allocates %.1f per op, want 0", allocs)
	}
}

package obs

import (
	"fmt"
	"io"
)

// WriteSummary renders a human-readable report over an event stream:
// per-kind event counts, fill-source breakdown, and the fixed-bucket
// histograms (miss latency, injection hops, per-phase durations, mesh
// queue depth) both machine-wide and per node.
func WriteSummary(w io.Writer, events []Event) error {
	var kindCount [numKinds]int64
	var readSrc, writeSrc [3]int64
	var faults, rollbacks, commits int64
	var dropped int64
	for i := range events {
		ev := &events[i]
		kindCount[ev.Kind]++
		switch ev.Kind {
		case KReadFill:
			if ev.A >= 0 && ev.A < 3 {
				readSrc[ev.A]++
			}
		case KWriteFill:
			if ev.A >= 0 && ev.A < 3 {
				writeSrc[ev.A]++
			}
		case KFault:
			faults++
		case KRollback:
			rollbacks++
			dropped += ev.A
		case KCommitted:
			commits++
		case KState, KInjectProbe, KInjectAccept, KPhaseBegin, KPhaseEnd,
			KRoundBegin, KRoundQuiesced, KRoundEnd, KReconfig, KQueueDepth,
			KTxnBegin, KTxnHop, KTxnEnd:
		}
	}

	var span int64
	if n := len(events); n > 0 {
		span = events[n-1].Time - events[0].Time
	}
	if _, err := fmt.Fprintf(w, "observed events: %d over %d cycles\n\n", len(events), span); err != nil {
		return err
	}

	fmt.Fprintf(w, "event counts\n")
	for k := Kind(0); k < numKinds; k++ {
		if kindCount[k] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-16s %12d\n", k.String(), kindCount[k])
	}
	fmt.Fprintln(w)

	if kindCount[KReadFill]+kindCount[KWriteFill] > 0 {
		fmt.Fprintf(w, "miss fills by source      %10s %10s %10s\n", "local", "remote", "cold")
		fmt.Fprintf(w, "  reads                   %10d %10d %10d\n", readSrc[0], readSrc[1], readSrc[2])
		fmt.Fprintf(w, "  writes                  %10d %10d %10d\n", writeSrc[0], writeSrc[1], writeSrc[2])
		fmt.Fprintln(w)
	}
	if commits+faults+rollbacks > 0 {
		fmt.Fprintf(w, "recovery: %d recovery points committed, %d faults, %d rollbacks (%d items lost)\n\n",
			commits, faults, rollbacks, dropped)
	}

	m := MetricsFromEvents(events)
	writeHist(w, "read miss latency (cycles)", m.ReadLatency)
	writeHist(w, "write miss latency (cycles)", m.WriteLat)
	writeHist(w, "injection hops", m.InjectHops)
	for p := Phase(0); p < NumPhases; p++ {
		writeHist(w, fmt.Sprintf("phase %s duration (cycles)", p), m.PhaseDur[p])
	}
	writeHist(w, "mesh in-flight (request)", m.QueueDepth[0])
	writeHist(w, "mesh in-flight (reply)", m.QueueDepth[1])

	if len(m.PerNode) > 0 {
		fmt.Fprintf(w, "per node%16s %14s %12s %14s %14s\n",
			"read misses", "mean lat", "inj hops", "create cyc", "commit cyc")
		for _, nm := range m.PerNode {
			fmt.Fprintf(w, "  %-8s %13d %14.1f %12d %14d %14d\n",
				nm.Node.String(), nm.ReadLatency.N, nm.ReadLatency.Mean(),
				nm.InjectHops.N, nm.PhaseDur[PhaseCreate].Sum, nm.PhaseDur[PhaseCommit].Sum)
		}
	}
	return nil
}

// writeHist renders one histogram as a bucket table with a bar sparkline.
func writeHist(w io.Writer, title string, h *Hist) {
	if h.N == 0 {
		return
	}
	fmt.Fprintf(w, "%s: n=%d mean=%.1f min=%d max=%d\n", title, h.N, h.Mean(), h.Min, h.Max)
	var peak int64 = 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		var label string
		if i < len(h.Bounds) {
			lo := int64(0)
			if i > 0 {
				lo = h.Bounds[i-1] + 1
			}
			label = fmt.Sprintf("%d..%d", lo, h.Bounds[i])
		} else {
			label = fmt.Sprintf(">%d", h.Bounds[len(h.Bounds)-1])
		}
		bar := int(c * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %16s %10d  %s\n", label, c, bars[:bar])
	}
	fmt.Fprintln(w)
}

const bars = "########################################"

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"

	"coma/internal/proto"
)

// StateCounts is a per-protocol-state tally: one slot per proto.State,
// indexed by the state value. A fixed array rather than a map so that
// building one allocates nothing, iteration order is the declaration
// order of the states (deterministic output for free), and copies are
// plain value assignments. Shared by the live-inspection layer
// (internal/inspect) and any exporter that wants a per-node ECP state
// histogram.
type StateCounts [proto.NumStates]int64

// Add tallies one copy in state s.
func (c *StateCounts) Add(s proto.State) { c[s]++ }

// Total returns the number of copies tallied across all states.
func (c *StateCounts) Total() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// MarshalJSON renders the tally as an object keyed by state name, in
// state declaration order — hand-assembled, so the encoding is
// byte-deterministic like the rest of the obs exporters.
func (c StateCounts) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", proto.State(i).String(), v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON is the inverse of MarshalJSON, so clients (comatop, the
// daemon's tests) can decode inspection views. Unknown state names are
// ignored rather than rejected: a newer simulator may know states an
// older client does not.
func (c *StateCounts) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*c = StateCounts{}
	for i := range c {
		if v, ok := m[proto.State(i).String()]; ok {
			c[i] = v
		}
	}
	return nil
}

// NonZero calls fn for each state with a non-zero tally, in state
// declaration order.
func (c *StateCounts) NonZero(fn func(s proto.State, n int64)) {
	for i, v := range c {
		if v != 0 {
			fn(proto.State(i), v)
		}
	}
}

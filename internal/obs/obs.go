// Package obs is the simulator's observability layer: typed events
// stamped with simulated time, an Observer interface the hot paths emit
// through, a buffering Recorder with kind-class filtering, fixed-bucket
// histogram metrics derived from the event stream, and exporters —
// JSONL event logs, Chrome trace-event JSON (loads in Perfetto or
// chrome://tracing) and a human-readable summary.
//
// Cost model: every instrumented layer holds a nil Observer by default
// and guards each emission with a single nil check, so a disabled run
// pays one predictable branch per site and zero allocations (pinned by
// BenchmarkObsDisabled / TestObsDisabledZeroAlloc). Events carry the
// sim.Engine clock, never wall-clock time, so a trace of a seeded run
// is byte-deterministic (asserted by TestObsTraceByteIdentical in
// internal/machine).
package obs

import (
	"fmt"
	"strings"

	"coma/internal/proto"
)

// Kind classifies an event.
type Kind uint8

const (
	// KState is a coherence state transition of one item copy in one
	// attraction memory (From -> To), including the ECP recovery states
	// Shared-CK1/2, Inv-CK1/2 and Pre-Commit1/2.
	KState Kind = iota
	// KReadFill is a read miss filled into a node's AM: A is the fill
	// source (FillLocal/FillRemote/FillCold), B the miss latency in
	// cycles.
	KReadFill
	// KWriteFill is a write miss completed (exclusive copy obtained):
	// A is the fill source, B the miss latency in cycles.
	KWriteFill
	// KInjectProbe is one probe of the injection ring walk: A is the
	// probed node, B the lap (0 first, 1 second).
	KInjectProbe
	// KInjectAccept is an accepted injection: A is the accepting node,
	// B the number of ring hops (refused probes) before acceptance.
	KInjectAccept
	// KPhaseBegin marks a node entering a checkpoint/recovery phase
	// (A = Phase).
	KPhaseBegin
	// KPhaseEnd marks a node leaving a phase: A = Phase, B = duration
	// in cycles.
	KPhaseEnd
	// KRoundBegin marks the coordinator starting a global round:
	// A = 0 for a checkpoint round, 1 for a recovery round; B = round.
	KRoundBegin
	// KRoundQuiesced marks all participants quiesced (B = round).
	KRoundQuiesced
	// KRoundEnd marks the end of a global round: A = mode as in
	// KRoundBegin (a checkpoint round aborted into recovery ends with
	// A = 1), B = round.
	KRoundEnd
	// KCommitted marks a recovery point committing (B = round).
	KCommitted
	// KFault is a node failure being applied: A = 1 if permanent,
	// B = round of the recovery that handles it.
	KFault
	// KRollback marks the directory rebuilt after a rollback:
	// A = number of items dropped (no surviving recovery copy),
	// B = round.
	KRollback
	// KReconfig reports one node's reconfiguration work: A = number of
	// recovery copies re-created.
	KReconfig
	// KQueueDepth is a sim-time ticker sample of mesh occupancy:
	// A = in-flight messages on the request subnet, B = reply subnet.
	KQueueDepth
	// KTxnBegin opens a protocol transaction (Txn = its ID, Par = the
	// parent transaction or zero): A = TxnOp, B = cycles spent queueing
	// before the transaction got to work (item-lock or bus wait), so the
	// request actually arrived at Time - B.
	KTxnBegin
	// KTxnHop is one mesh delivery belonging to a transaction: Node is
	// the destination, A = int64(proto.MsgKind), B = the message's
	// network latency in cycles (delivery time minus send time).
	KTxnHop
	// KTxnEnd closes a transaction: A is op-specific (fill source for
	// reads/writes, accepting node for injections, round mode for
	// coordinator rounds), B = total latency in cycles.
	KTxnEnd

	numKinds
)

// NumKinds is the number of event kinds (for sizing per-kind tables
// outside the package).
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"state", "read-fill", "write-fill", "inject-probe", "inject-accept",
	"phase-begin", "phase-end", "round-begin", "round-quiesced",
	"round-end", "committed", "fault", "rollback", "reconfig",
	"queue-depth", "txn-begin", "txn-hop", "txn-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fill sources (the A field of KReadFill/KWriteFill), matching the
// stats.Node Fills* counters.
const (
	// FillLocal: satisfied by the local AM (after queueing behind a
	// transaction, or a master upgrade in place).
	FillLocal int64 = iota
	// FillRemote: the data travelled from a remote AM.
	FillRemote
	// FillCold: first touch of initialised-background memory.
	FillCold
)

// FillSourceName names a fill source.
func FillSourceName(src int64) string {
	switch src {
	case FillLocal:
		return "local"
	case FillRemote:
		return "remote"
	case FillCold:
		return "cold"
	}
	return fmt.Sprintf("fill(%d)", src)
}

// Transaction operations (the A field of KTxnBegin), classifying what
// the transaction is.
const (
	// TxnRead is a read-miss transaction.
	TxnRead int64 = iota
	// TxnWrite is a write-miss transaction.
	TxnWrite
	// TxnInject is an injection (ring walk + data transfer), usually a
	// child of the access or round transaction that forced it.
	TxnInject
	// TxnCkptRound is a coordinator checkpoint round.
	TxnCkptRound
	// TxnRecoveryRound is a coordinator recovery round.
	TxnRecoveryRound

	NumTxnOps // NumTxnOps is the number of transaction operations.
)

// TxnOpName names a transaction operation.
func TxnOpName(op int64) string {
	switch op {
	case TxnRead:
		return "read"
	case TxnWrite:
		return "write"
	case TxnInject:
		return "inject"
	case TxnCkptRound:
		return "ckpt-round"
	case TxnRecoveryRound:
		return "recovery-round"
	}
	return fmt.Sprintf("op(%d)", op)
}

// Phase identifies one per-node phase of the checkpoint/recovery
// algorithm (the A field of KPhaseBegin/KPhaseEnd).
type Phase uint8

const (
	// PhaseCreate is the create phase of a recovery-point establishment
	// (replication of every modified item).
	PhaseCreate Phase = iota
	// PhaseCommit is the local commit scan (PreCommit -> Shared-CK,
	// old Inv-CK discarded).
	PhaseCommit
	// PhaseRecoveryScan is the rollback scan (current state dropped,
	// Inv-CK restored to Shared-CK).
	PhaseRecoveryScan
	// PhaseReconfigure restores two-copy persistence after failures.
	PhaseReconfigure

	NumPhases // NumPhases is the number of per-node phases.
)

var phaseNames = [NumPhases]string{"create", "commit", "recovery-scan", "reconfigure"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Event is one observed occurrence. Time is always the sim.Engine clock
// in cycles — wall-clock time must never enter an event (enforced by
// the comalint obswallclock analyzer). The meaning of A and B depends
// on Kind; unused fields are zero (Item is NoItem where meaningless).
type Event struct {
	Time  int64
	Kind  Kind
	Node  proto.NodeID
	Item  proto.ItemID
	From  proto.State // KState only
	To    proto.State // KState only
	Cause proto.InjectCause
	// Txn is the protocol transaction this event belongs to (KTxnBegin,
	// KTxnHop, KTxnEnd; also stamped on KInjectProbe/KInjectAccept so
	// injection events correlate with their transaction). NoTxn elsewhere.
	Txn proto.TxnID
	// Par is the parent transaction of a KTxnBegin (the access that
	// forced an injection, the round that drove a phase), or NoTxn.
	Par proto.TxnID
	A   int64
	B   int64
}

// Observer receives events as the simulation runs. Implementations must
// be cheap (they run on protocol hot paths), must not block, and must
// not schedule simulator work. The value passed is a plain struct:
// emitting through a non-nil Observer does not allocate.
type Observer interface {
	Emit(Event)
}

// Nop is an Observer that discards every event; useful where an
// always-non-nil Observer simplifies call sites (tests, tools). The
// simulator layers themselves use a nil Observer when disabled.
type Nop struct{}

// Emit implements Observer.
func (Nop) Emit(Event) {}

// Mask selects event kinds; bit k enables Kind k.
type Mask uint32

// MaskAll enables every kind.
const MaskAll Mask = 1<<numKinds - 1

// Has reports whether the kind is enabled.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// classes maps -obs-filter class names onto kind sets.
var classes = map[string]Mask{
	"state":  1 << KState,
	"fill":   1<<KReadFill | 1<<KWriteFill,
	"inject": 1<<KInjectProbe | 1<<KInjectAccept,
	"ckpt": 1<<KPhaseBegin | 1<<KPhaseEnd | 1<<KRoundBegin |
		1<<KRoundQuiesced | 1<<KRoundEnd | 1<<KCommitted,
	"fault": 1<<KFault | 1<<KRollback | 1<<KReconfig,
	"net":   1 << KQueueDepth,
	"txn":   1<<KTxnBegin | 1<<KTxnHop | 1<<KTxnEnd,
	"all":   MaskAll,
}

// FilterClasses returns the valid -obs-filter class names.
func FilterClasses() []string {
	return []string{"state", "fill", "inject", "ckpt", "fault", "net", "txn", "all"}
}

// ParseFilter turns a comma-separated class list ("inject,ckpt,fault")
// into a Mask. The empty string means everything.
func ParseFilter(s string) (Mask, error) {
	if strings.TrimSpace(s) == "" {
		return MaskAll, nil
	}
	var m Mask
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, ok := classes[part]
		if !ok {
			return 0, fmt.Errorf("obs: unknown filter class %q (have %s)",
				part, strings.Join(FilterClasses(), ", "))
		}
		m |= c
	}
	return m, nil
}

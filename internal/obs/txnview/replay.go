package txnview

import (
	"fmt"
	"sort"

	"coma/internal/obs"
	"coma/internal/proto"
)

// replay is the trace-replay state machine shared by Check and
// Coverage: it tracks every item copy's coherence state across the
// trace, synthesises the scan transforms that the simulator's bulk
// scans perform without per-item events, and evaluates the recovery
// invariants at quiescent points.
//
// Sources of state knowledge:
//
//   - KState events record individual transitions (installs,
//     invalidations, downgrades, injections).
//   - The commit and recovery scans mutate whole attraction memories in
//     one pass and emit only KPhaseEnd; their effect is synthesised here
//     from the protocol definition (PreCommit -> Shared-CK and Inv-CK
//     discarded at commit; current state dropped and Inv-CK restored at
//     rollback).
//   - KFault destroys a node's AM contents wholesale.
type replay struct {
	// copies[item][node] is the item's non-Invalid state on the node.
	copies map[proto.ItemID]map[proto.NodeID]proto.State
	// pending[txn] snapshots fill-legality predicates at access begin.
	pending map[proto.TxnID]fillSnap
	// observed counts every state transition seen or synthesised.
	observed map[transKey]int64

	round int64 // current round number (0 outside rounds)
	mode  int64 // current round mode (KRoundBegin.A)

	errs []string
}

type fillSnap struct {
	anyCopy  bool // some non-Invalid copy existed at begin
	anyOwner bool // some owner-state copy existed at begin
}

type transKey struct{ from, to proto.State }

func newReplay() *replay {
	return &replay{
		copies:   make(map[proto.ItemID]map[proto.NodeID]proto.State),
		pending:  make(map[proto.TxnID]fillSnap),
		observed: make(map[transKey]int64),
	}
}

const maxErrors = 20

func (r *replay) errorf(format string, args ...any) {
	if len(r.errs) < maxErrors {
		r.errs = append(r.errs, fmt.Sprintf(format, args...))
	} else if len(r.errs) == maxErrors {
		r.errs = append(r.errs, "further violations suppressed")
	}
}

func (r *replay) state(item proto.ItemID, n proto.NodeID) proto.State {
	if m := r.copies[item]; m != nil {
		return m[n] // zero value is Invalid
	}
	return proto.Invalid
}

func (r *replay) set(item proto.ItemID, n proto.NodeID, s proto.State) {
	m := r.copies[item]
	if s == proto.Invalid {
		if m != nil {
			delete(m, n)
			if len(m) == 0 {
				delete(r.copies, item)
			}
		}
		return
	}
	if m == nil {
		m = make(map[proto.NodeID]proto.State)
		r.copies[item] = m
	}
	m[n] = s
}

// step replays one event. i is the event's index (for diagnostics).
func (r *replay) step(i int, ev obs.Event) {
	switch ev.Kind {
	case obs.KState:
		if cur := r.state(ev.Item, ev.Node); cur != ev.From {
			r.errorf("event %d (cycle %d, round %d): node %v item %d records %v -> %v but replay holds the copy in %v",
				i, ev.Time, r.round, ev.Node, ev.Item, ev.From, ev.To, cur)
		}
		r.observed[transKey{ev.From, ev.To}]++
		r.set(ev.Item, ev.Node, ev.To)

	case obs.KTxnBegin:
		if ev.Txn != proto.NoTxn && ev.Item != proto.NoItem &&
			(ev.A == obs.TxnRead || ev.A == obs.TxnWrite) {
			var s fillSnap
			for _, st := range r.copies[ev.Item] {
				s.anyCopy = true
				if st.Owner() {
					s.anyOwner = true
				}
			}
			r.pending[ev.Txn] = s
		}

	case obs.KTxnEnd:
		// For read/write transactions (the only ones in pending) the
		// end event's A is the fill source, so legality is judged here:
		// the fill events themselves do not carry the transaction id on
		// the wire.
		snap, ok := r.pending[ev.Txn]
		if !ok {
			break // not an access txn, or its begin was filtered out
		}
		delete(r.pending, ev.Txn)
		switch ev.A {
		case obs.FillRemote:
			if !snap.anyCopy {
				r.errorf("event %d (cycle %d, round %d): node %v filled item %d remotely but no copy existed anywhere when %v began — fill from an invalid copy",
					i, ev.Time, r.round, ev.Node, ev.Item, ev.Txn)
			}
		case obs.FillCold:
			if snap.anyOwner {
				r.errorf("event %d (cycle %d, round %d): node %v cold-filled item %d but an owner copy existed when %v began — the master was bypassed",
					i, ev.Time, r.round, ev.Node, ev.Item, ev.Txn)
			}
		}

	case obs.KPhaseEnd:
		switch obs.Phase(ev.A) {
		case obs.PhaseCommit:
			r.scan(ev.Node, commitTransform)
		case obs.PhaseRecoveryScan:
			r.scan(ev.Node, recoveryTransform)
		case obs.PhaseCreate, obs.PhaseReconfigure, obs.NumPhases:
			// Create and reconfigure mutate through the state hook;
			// every change already arrived as KState.
		}

	case obs.KFault:
		// Fail-silent: the node's AM contents are gone. Not a protocol
		// transition, so nothing is recorded as coverage.
		for item, m := range r.copies {
			if _, ok := m[ev.Node]; ok {
				delete(m, ev.Node)
				if len(m) == 0 {
					delete(r.copies, item)
				}
			}
		}

	case obs.KRoundBegin:
		r.round = ev.B
		r.mode = ev.A

	case obs.KRoundQuiesced:
		r.checkOwnerUnique(i, ev.Time, "quiesce")

	case obs.KCommitted:
		r.checkOwnerUnique(i, ev.Time, "commit")
		r.checkCommitAtomic(i, ev.Time)

	case obs.KRoundEnd:
		r.checkOwnerUnique(i, ev.Time, "round end")
		if ev.A == 1 { // recovery round
			r.checkRecoveryPersistence(i, ev.Time)
		}
		r.round, r.mode = 0, 0
	}
}

// scan applies a bulk AM-scan transform to every copy on one node,
// recording the synthesised transitions.
func (r *replay) scan(n proto.NodeID, transform func(proto.State) (proto.State, bool)) {
	for item, m := range r.copies {
		st, ok := m[n]
		if !ok {
			continue
		}
		to, changed := transform(st)
		if !changed {
			continue
		}
		r.observed[transKey{st, to}]++
		r.set(item, n, to)
	}
}

// commitTransform is the commit scan: PreCommit copies become the new
// recovery point, Inv-CK copies of the previous one are discarded.
func commitTransform(s proto.State) (proto.State, bool) {
	switch s {
	case proto.PreCommit1:
		return proto.SharedCK1, true
	case proto.PreCommit2:
		return proto.SharedCK2, true
	case proto.InvCK1, proto.InvCK2:
		return proto.Invalid, true
	case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
		proto.SharedCK1, proto.SharedCK2:
		return s, false
	}
	return s, false
}

// recoveryTransform is the rollback scan: current and pre-commit copies
// are dropped, Inv-CK copies are restored to Shared-CK.
func recoveryTransform(s proto.State) (proto.State, bool) {
	switch s {
	case proto.Shared, proto.Exclusive, proto.MasterShared,
		proto.PreCommit1, proto.PreCommit2:
		return proto.Invalid, true
	case proto.InvCK1:
		return proto.SharedCK1, true
	case proto.InvCK2:
		return proto.SharedCK2, true
	case proto.Invalid, proto.SharedCK1, proto.SharedCK2:
		return s, false
	}
	return s, false
}

// sortedItems returns the items that currently have copies, ascending,
// so invariant diagnostics come out in a deterministic order.
func (r *replay) sortedItems() []proto.ItemID {
	items := make([]proto.ItemID, 0, len(r.copies))
	for it := range r.copies {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// sortedNodes returns the nodes holding copies in m, ascending.
func sortedNodes(m map[proto.NodeID]proto.State) []proto.NodeID {
	nodes := make([]proto.NodeID, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// checkOwnerUnique verifies the single-master invariant: at a quiescent
// point no item may have two owner-state copies. (Mid-transaction an
// injection legitimately holds two while the copy moves, so the check
// only runs when the machine is drained.)
func (r *replay) checkOwnerUnique(i int, t int64, where string) {
	for _, item := range r.sortedItems() {
		m := r.copies[item]
		owners := 0
		for _, n := range sortedNodes(m) {
			if m[n].Owner() {
				owners++
			}
		}
		if owners > 1 {
			r.errorf("event %d (cycle %d, round %d): item %d has %d owner copies at %s: %s",
				i, t, r.round, item, owners, where, copyList(m))
		}
	}
}

// checkCommitAtomic verifies checkpoint atomicity: at the commit
// instant every node's scan has finished, so no transient PreCommit or
// stale Inv-CK copy may survive.
func (r *replay) checkCommitAtomic(i int, t int64) {
	for _, item := range r.sortedItems() {
		m := r.copies[item]
		for _, n := range sortedNodes(m) {
			switch st := m[n]; st {
			case proto.PreCommit1, proto.PreCommit2:
				r.errorf("event %d (cycle %d, round %d): commit atomicity: item %d still has a %v copy on node %v at commit",
					i, t, r.round, item, st, n)
			case proto.InvCK1, proto.InvCK2:
				r.errorf("event %d (cycle %d, round %d): commit atomicity: item %d kept the stale %v copy on node %v past commit",
					i, t, r.round, item, st, n)
			case proto.Invalid, proto.Shared, proto.MasterShared, proto.Exclusive,
				proto.SharedCK1, proto.SharedCK2:
				// Legal at a commit point.
			}
		}
	}
}

// checkRecoveryPersistence verifies that a rollback lost no master: at
// the end of a recovery round every surviving item (any copy left) has
// exactly one owner copy — the restored or promoted Shared-CK1.
func (r *replay) checkRecoveryPersistence(i int, t int64) {
	for _, item := range r.sortedItems() {
		m := r.copies[item]
		owners := 0
		for _, n := range sortedNodes(m) {
			if m[n].Owner() {
				owners++
			}
		}
		if owners != 1 {
			r.errorf("event %d (cycle %d, round %d): rollback left item %d with %d owner copies (want 1): %s",
				i, t, r.round, item, owners, copyList(m))
		}
	}
}

// copyList renders an item's copies ("node n2 (Shared-CK1), ...") in
// node order.
func copyList(m map[proto.NodeID]proto.State) string {
	s := ""
	for i, n := range sortedNodes(m) {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("node %v (%v)", n, m[n])
	}
	return s
}

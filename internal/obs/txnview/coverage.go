package txnview

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"coma/internal/obs"
	"coma/internal/proto"
)

// Edge is one state transition with how often the trace exercised it
// and the protocol table's description of when it happens.
type Edge struct {
	From, To proto.State
	Count    int64
	Via      string // from the protocol table; empty for unexpected edges
}

// RecoveryEdge reports whether the edge touches an ECP recovery state.
func (e Edge) RecoveryEdge() bool {
	return e.From.Recovery() || e.To.Recovery()
}

// CoverageReport diffs the transitions a trace exercised against the
// full extended-coherence-protocol transition table.
type CoverageReport struct {
	Exercised   []Edge // in the table and observed
	Unexercised []Edge // in the table, never observed (Count 0)
	Unexpected  []Edge // observed but absent from the table
}

// Coverage replays a trace (KState events plus the synthesised scan
// transforms) and diffs the observed transition matrix against
// proto.ECPTransitions. Unexercised recovery edges show which
// fault-tolerance paths a test campaign never entered; unexpected edges
// mean the simulator performed a transition the protocol does not
// define.
func Coverage(events []obs.Event) *CoverageReport {
	r := newReplay()
	for i, ev := range events {
		r.step(i, ev)
	}

	// The table can describe one (from,to) pair several ways (e.g. an
	// Inv-CK copy vanishing at commit vs. moving by injection); merge
	// the descriptions per pair.
	via := make(map[transKey]string)
	for _, tr := range proto.ECPTransitions() {
		k := transKey{tr.From, tr.To}
		if cur, ok := via[k]; ok {
			if !strings.Contains(cur, tr.Via) {
				via[k] = cur + "; " + tr.Via
			}
		} else {
			via[k] = tr.Via
		}
	}

	// Walk both maps in sorted key order so the report lists (and any
	// diagnostics derived from them) are deterministic by construction.
	rep := &CoverageReport{}
	for _, k := range sortedKeys(via) {
		e := Edge{From: k.from, To: k.to, Count: r.observed[k], Via: via[k]}
		if e.Count > 0 {
			rep.Exercised = append(rep.Exercised, e)
		} else {
			rep.Unexercised = append(rep.Unexercised, e)
		}
	}
	for _, k := range sortedKeys(r.observed) {
		if _, ok := via[k]; !ok {
			rep.Unexpected = append(rep.Unexpected, Edge{From: k.from, To: k.to, Count: r.observed[k]})
		}
	}
	return rep
}

// sortedKeys returns a transition-keyed map's keys ordered by (from, to).
func sortedKeys[V any](m map[transKey]V) []transKey {
	keys := make([]transKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	return keys
}

// Write renders the report. Recovery edges are tagged so the
// fault-tolerance coverage stands out.
func (r *CoverageReport) Write(w io.Writer) error {
	tag := func(e Edge) string {
		if e.RecoveryEdge() {
			return " [recovery]"
		}
		return ""
	}
	total := len(r.Exercised) + len(r.Unexercised)
	fmt.Fprintf(w, "  protocol edges exercised: %d/%d\n", len(r.Exercised), total)
	for _, e := range r.Exercised {
		fmt.Fprintf(w, "    %-13v -> %-13v %8d  %s%s\n", e.From, e.To, e.Count, e.Via, tag(e))
	}
	if len(r.Unexercised) > 0 {
		fmt.Fprintf(w, "  unexercised: %d\n", len(r.Unexercised))
		for _, e := range r.Unexercised {
			fmt.Fprintf(w, "    %-13v -> %-13v %8s  %s%s\n", e.From, e.To, "-", e.Via, tag(e))
		}
	}
	if len(r.Unexpected) > 0 {
		fmt.Fprintf(w, "  UNEXPECTED (observed but not in the protocol table): %d\n", len(r.Unexpected))
		for _, e := range r.Unexpected {
			fmt.Fprintf(w, "    %-13v -> %-13v %8d%s\n", e.From, e.To, e.Count, tag(e))
		}
	}
	return nil
}

// UnexercisedRecovery returns the recovery-state edges the trace never
// entered — the paper's fault-tolerance paths a campaign left untested.
func (r *CoverageReport) UnexercisedRecovery() []Edge {
	var out []Edge
	for _, e := range r.Unexercised {
		if e.RecoveryEdge() {
			out = append(out, e)
		}
	}
	return out
}

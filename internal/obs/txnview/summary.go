package txnview

import "coma/internal/obs"

// Summary condenses a trace's invariant verdict and protocol-edge
// coverage into the four numbers an execution receipt records
// (internal/obs/receipt). It is the single place where "did this run
// uphold the protocol's invariants" becomes a comparable value, so the
// receipt producer and the attest verifier cannot drift apart.
type Summary struct {
	// OK is Check's verdict: no invariant violations.
	OK bool
	// Violations is the number of invariant violations Check found.
	Violations int
	// EdgesExercised / EdgesTotal are Coverage's protocol-edge counts
	// against the proto.ECPTransitions specification table.
	EdgesExercised int
	EdgesTotal     int
}

// Summarize runs the offline invariant checker and the coverage diff
// over one trace and condenses both reports.
func Summarize(events []obs.Event) Summary {
	chk := Check(events)
	cov := Coverage(events)
	return Summary{
		OK:             chk.OK(),
		Violations:     len(chk.Violations),
		EdgesExercised: len(cov.Exercised),
		EdgesTotal:     len(cov.Exercised) + len(cov.Unexercised),
	}
}

package txnview

import (
	"bytes"
	"strings"
	"testing"

	"coma/internal/obs"
	"coma/internal/proto"
)

func tx(origin proto.NodeID, seq int64) proto.TxnID { return proto.MakeTxnID(origin, seq) }

func TestAssemble(t *testing.T) {
	t1, t2, t3 := tx(1, 1), tx(2, 1), tx(1, 2)
	events := []obs.Event{
		{Time: 100, Kind: obs.KTxnBegin, Node: 1, Item: 5, Txn: t1, A: obs.TxnRead, B: 4},
		{Time: 110, Kind: obs.KTxnHop, Node: 2, Item: 5, Txn: t1, A: int64(proto.MsgReadReq), B: 8},
		{Time: 115, Kind: obs.KTxnBegin, Node: 2, Item: 5, Txn: t2, Par: t1, A: obs.TxnInject},
		{Time: 120, Kind: obs.KTxnEnd, Node: 2, Item: 5, Txn: t2, A: 3, B: 5},
		{Time: 130, Kind: obs.KTxnEnd, Node: 1, Item: 5, Txn: t1, A: obs.FillRemote, B: 30},
		{Time: 140, Kind: obs.KTxnBegin, Node: 0, Item: 7, Txn: t3, A: obs.TxnWrite, B: 0},
	}
	s, err := Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Txns) != 3 {
		t.Fatalf("assembled %d txns, want 3", len(s.Txns))
	}
	got := s.ByID[t1]
	if got == nil || !got.Complete || got.Total != 30 || got.QueueWait != 4 || len(got.Hops) != 1 {
		t.Fatalf("t1 = %+v", got)
	}
	if got.Hops[0].Msg != proto.MsgReadReq || got.Hops[0].Latency != 8 {
		t.Fatalf("t1 hop = %+v", got.Hops[0])
	}
	if kids := s.Children(t1); len(kids) != 1 || kids[0].ID != t2 {
		t.Fatalf("children of t1 = %v", kids)
	}
	if inc := s.Incomplete(); len(inc) != 1 || inc[0].ID != t3 {
		t.Fatalf("incomplete = %v", inc)
	}
	if top := s.TopK(5); len(top) != 2 || top[0].ID != t1 || top[1].ID != t2 {
		t.Fatalf("topK = %v", top)
	}
}

func TestAssembleErrors(t *testing.T) {
	t1 := tx(0, 1)
	for _, tc := range []struct {
		name   string
		events []obs.Event
		want   string
	}{
		{"duplicate begin", []obs.Event{
			{Time: 1, Kind: obs.KTxnBegin, Txn: t1, A: obs.TxnRead},
			{Time: 2, Kind: obs.KTxnBegin, Txn: t1, A: obs.TxnRead},
		}, "duplicate begin"},
		{"hop unknown", []obs.Event{
			{Time: 1, Kind: obs.KTxnHop, Txn: t1},
		}, "hop for unknown transaction"},
		{"end unknown", []obs.Event{
			{Time: 1, Kind: obs.KTxnEnd, Txn: t1},
		}, "end for unknown transaction"},
		{"duplicate end", []obs.Event{
			{Time: 1, Kind: obs.KTxnBegin, Txn: t1, A: obs.TxnRead},
			{Time: 2, Kind: obs.KTxnEnd, Txn: t1},
			{Time: 3, Kind: obs.KTxnEnd, Txn: t1},
		}, "duplicate end"},
	} {
		_, err := Assemble(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestBreakdown(t *testing.T) {
	t1 := tx(0, 1)
	events := []obs.Event{
		{Time: 100, Kind: obs.KTxnBegin, Node: 0, Item: 1, Txn: t1, A: obs.TxnRead, B: 10},
		{Time: 110, Kind: obs.KTxnHop, Node: 1, Item: 1, Txn: t1, A: int64(proto.MsgReadReq), B: 8},
		{Time: 130, Kind: obs.KTxnHop, Node: 0, Item: 1, Txn: t1, A: int64(proto.MsgDataReply), B: 5},
		{Time: 140, Kind: obs.KTxnEnd, Node: 0, Item: 1, Txn: t1, A: obs.FillRemote, B: 50},
		// Fire-and-forget delivery after the end: off the critical path.
		{Time: 200, Kind: obs.KTxnHop, Node: 2, Item: 1, Txn: t1, A: int64(proto.MsgHomeUpdate), B: 4},
	}
	s, err := Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	q, n, sv, f := s.ByID[t1].Breakdown()
	// queue = begin.B; network = 8+5; service = (102-100)+(125-110);
	// fill = 140 - 130. The post-end hop contributes nothing.
	if q != 10 || n != 13 || sv != 17 || f != 10 {
		t.Fatalf("breakdown = q%d n%d s%d f%d, want q10 n13 s17 f10", q, n, sv, f)
	}
}

func TestCritPathReport(t *testing.T) {
	t1 := tx(0, 1)
	events := []obs.Event{
		{Time: 100, Kind: obs.KTxnBegin, Node: 0, Item: 1, Txn: t1, A: obs.TxnRead, B: 10},
		{Time: 140, Kind: obs.KTxnEnd, Node: 0, Item: 1, Txn: t1, A: obs.FillRemote, B: 40},
	}
	r, err := CritPath(events, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerOp[obs.TxnRead].Count != 1 || r.Latency.N != 1 || len(r.Slowest) != 1 {
		t.Fatalf("report = %+v", r)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"read", "miss latency", "slowest transactions"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("critpath report missing %q:\n%s", want, buf.String())
		}
	}
}

// cleanRound is a minimal well-formed trace: a write installs a master,
// a read downgrades it, then a checkpoint round pre-commits and commits
// the modified item.
func cleanRound() []obs.Event {
	rd := tx(1, 1)
	return []obs.Event{
		{Time: 10, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Exclusive},
		{Time: 20, Kind: obs.KTxnBegin, Node: 1, Item: 1, Txn: rd, A: obs.TxnRead, B: 0},
		{Time: 25, Kind: obs.KState, Node: 0, Item: 1, From: proto.Exclusive, To: proto.MasterShared},
		{Time: 30, Kind: obs.KState, Node: 1, Item: 1, From: proto.Invalid, To: proto.Shared},
		{Time: 35, Kind: obs.KTxnEnd, Node: 1, Item: 1, Txn: rd, A: obs.FillRemote, B: 15},
		{Time: 100, Kind: obs.KRoundBegin, Node: proto.None, Item: proto.NoItem, A: 0, B: 1},
		{Time: 110, Kind: obs.KState, Node: 0, Item: 1, From: proto.MasterShared, To: proto.PreCommit1},
		{Time: 120, Kind: obs.KRoundQuiesced, Node: proto.None, Item: proto.NoItem, B: 1},
		{Time: 130, Kind: obs.KPhaseEnd, Node: 0, Item: proto.NoItem, A: int64(obs.PhaseCommit), B: 10},
		{Time: 140, Kind: obs.KCommitted, Node: proto.None, Item: proto.NoItem, B: 1},
		{Time: 150, Kind: obs.KRoundEnd, Node: proto.None, Item: proto.NoItem, A: 0, B: 1},
	}
}

func TestCheckClean(t *testing.T) {
	r := Check(cleanRound())
	if !r.OK() {
		t.Fatalf("clean trace has violations: %v", r.Violations)
	}
	if r.Txns != 1 || r.Rounds != 1 {
		t.Fatalf("txns=%d rounds=%d, want 1/1", r.Txns, r.Rounds)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "invariants   ok") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

func TestCheckViolations(t *testing.T) {
	rd := tx(1, 1)
	for _, tc := range []struct {
		name   string
		events []obs.Event
		want   string
	}{
		{"state mismatch", []obs.Event{
			{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Shared},
			{Time: 2, Kind: obs.KState, Node: 0, Item: 1, From: proto.Exclusive, To: proto.Invalid},
		}, "but replay holds the copy in Shared"},
		{"fill from invalid copy", []obs.Event{
			{Time: 1, Kind: obs.KTxnBegin, Node: 1, Item: 9, Txn: rd, A: obs.TxnRead},
			{Time: 5, Kind: obs.KTxnEnd, Node: 1, Item: 9, Txn: rd, A: obs.FillRemote, B: 4},
		}, "fill from an invalid copy"},
		{"cold fill bypassing the master", []obs.Event{
			{Time: 1, Kind: obs.KState, Node: 0, Item: 9, From: proto.Invalid, To: proto.Exclusive},
			{Time: 2, Kind: obs.KTxnBegin, Node: 1, Item: 9, Txn: rd, A: obs.TxnRead},
			{Time: 5, Kind: obs.KTxnEnd, Node: 1, Item: 9, Txn: rd, A: obs.FillCold, B: 3},
		}, "the master was bypassed"},
		{"commit atomicity", []obs.Event{
			{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Exclusive},
			{Time: 2, Kind: obs.KState, Node: 0, Item: 1, From: proto.Exclusive, To: proto.PreCommit1},
			// No commit scan (KPhaseEnd) before the commit instant.
			{Time: 3, Kind: obs.KCommitted, Node: proto.None, Item: proto.NoItem, B: 1},
		}, "commit atomicity"},
		{"single master", []obs.Event{
			{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Exclusive},
			{Time: 2, Kind: obs.KState, Node: 1, Item: 1, From: proto.Invalid, To: proto.Exclusive},
			{Time: 3, Kind: obs.KRoundQuiesced, Node: proto.None, Item: proto.NoItem, B: 1},
		}, "2 owner copies"},
		{"rollback persistence", []obs.Event{
			{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.Shared},
			{Time: 2, Kind: obs.KRoundEnd, Node: proto.None, Item: proto.NoItem, A: 1, B: 1},
		}, "rollback left item 1 with 0 owner copies"},
	} {
		r := Check(tc.events)
		found := false
		for _, v := range r.Violations {
			if strings.Contains(v, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v, want one containing %q", tc.name, r.Violations, tc.want)
		}
	}
}

// TestCheckCorruptedTrace drops the commit-scan events from a clean
// trace (the shape `comatrace check` must catch in CI) and expects a
// precise diagnostic.
func TestCheckCorruptedTrace(t *testing.T) {
	var corrupted []obs.Event
	for _, ev := range cleanRound() {
		if ev.Kind == obs.KPhaseEnd {
			continue
		}
		corrupted = append(corrupted, ev)
	}
	r := Check(corrupted)
	if r.OK() {
		t.Fatal("corrupted trace passed the checker")
	}
	if !strings.Contains(strings.Join(r.Violations, "\n"), "commit atomicity") {
		t.Fatalf("violations = %v", r.Violations)
	}
}

func TestCoverage(t *testing.T) {
	events := []obs.Event{
		// Injection installs a primary recovery copy, a write demotes it,
		// and a recovery scan restores it: three table edges, two of them
		// recovery edges.
		{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.SharedCK1},
		{Time: 2, Kind: obs.KState, Node: 0, Item: 1, From: proto.SharedCK1, To: proto.InvCK1},
		{Time: 3, Kind: obs.KPhaseEnd, Node: 0, Item: proto.NoItem, A: int64(obs.PhaseRecoveryScan), B: 1},
	}
	r := Coverage(events)
	if len(r.Unexpected) != 0 {
		t.Fatalf("unexpected edges: %v", r.Unexpected)
	}
	want := map[[2]proto.State]bool{
		{proto.Invalid, proto.SharedCK1}: true,
		{proto.SharedCK1, proto.InvCK1}:  true,
		{proto.InvCK1, proto.SharedCK1}:  true,
	}
	for _, e := range r.Exercised {
		delete(want, [2]proto.State{e.From, e.To})
		if e.Count != 1 {
			t.Errorf("edge %v->%v count %d, want 1", e.From, e.To, e.Count)
		}
	}
	if len(want) != 0 {
		t.Fatalf("edges not reported exercised: %v (got %v)", want, r.Exercised)
	}
	if len(r.UnexercisedRecovery()) == 0 {
		t.Fatal("no unexercised recovery edges reported on a near-empty trace")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[recovery]") || !strings.Contains(out, "protocol edges exercised: 3/") {
		t.Fatalf("coverage report:\n%s", out)
	}
}

func TestCoverageUnexpectedEdge(t *testing.T) {
	events := []obs.Event{
		// Invalid -> PreCommit1 is not a protocol edge (pre-commit copies
		// only come from owner states in the create phase).
		{Time: 1, Kind: obs.KState, Node: 0, Item: 1, From: proto.Invalid, To: proto.PreCommit1},
	}
	r := Coverage(events)
	if len(r.Unexpected) != 1 || r.Unexpected[0].To != proto.PreCommit1 {
		t.Fatalf("unexpected = %v", r.Unexpected)
	}
}

package txnview

import (
	"fmt"
	"io"

	"coma/internal/obs"
)

// CheckReport is the result of replaying a trace against the protocol's
// recovery invariants.
type CheckReport struct {
	Events     int
	Txns       int
	Incomplete int   // transactions still in flight at trace end
	Rounds     int64 // coordinator rounds completed
	Violations []string
}

// OK reports whether the trace passed every check.
func (r *CheckReport) OK() bool { return len(r.Violations) == 0 }

// Write renders the report.
func (r *CheckReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "  events       %d\n", r.Events)
	fmt.Fprintf(w, "  transactions %d (%d in flight at trace end)\n", r.Txns, r.Incomplete)
	fmt.Fprintf(w, "  rounds       %d\n", r.Rounds)
	if r.OK() {
		fmt.Fprintf(w, "  invariants   ok (single master, fill legality, checkpoint atomicity, rollback persistence)\n")
		return nil
	}
	fmt.Fprintf(w, "  violations   %d\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    %s\n", v)
	}
	return nil
}

// Check replays a trace and verifies the protocol invariants the paper
// argues for:
//
//  1. single master — at every quiescent point (round quiesce, commit,
//     round end, trace end) each item has at most one owner-state copy;
//  2. fill legality — a remote fill's data came from a copy that
//     existed when the transaction began, and a cold fill happened only
//     when no master existed (no fill from an invalid copy);
//  3. checkpoint atomicity — at the commit instant no transient
//     PreCommit copy and no stale Inv-CK copy survives;
//  4. rollback persistence — a recovery round leaves every surviving
//     item with exactly one owner copy (the restored or promoted
//     Shared-CK1): no master is lost across a rollback.
//
// It also cross-checks every KState event against the replayed state
// (the recorded From must match what the trace itself implies), which
// catches corrupted, reordered or truncated traces with a precise
// item/round diagnostic.
func Check(events []obs.Event) *CheckReport {
	rep := &CheckReport{Events: len(events)}

	set, err := Assemble(events)
	if err != nil {
		rep.Violations = append(rep.Violations, err.Error())
	} else {
		rep.Txns = len(set.Txns)
		rep.Incomplete = len(set.Incomplete())
	}

	r := newReplay()
	for i, ev := range events {
		r.step(i, ev)
		if ev.Kind == obs.KRoundEnd {
			rep.Rounds++
		}
	}
	r.checkOwnerUnique(len(events), lastTime(events), "trace end")
	rep.Violations = append(rep.Violations, r.errs...)
	return rep
}

func lastTime(events []obs.Event) int64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].Time
}

package txnview

import (
	"fmt"
	"io"
	"sort"

	"coma/internal/obs"
)

// Breakdown splits a complete transaction's latency into the four
// critical-path components:
//
//	queue    cycles spent waiting for the item lock or bus before the
//	         transaction got to work (KTxnBegin.B)
//	network  cycles messages spent in the mesh (sum of in-span hop
//	         latencies)
//	service  cycles between a message arriving somewhere and the next
//	         one being sent — directory lookups, owner memory transfers
//	         and controller queueing
//	fill     cycles after the last in-span delivery — the local AM
//	         install and final book-keeping
//
// Hops delivered after the end event (fire-and-forget home updates and
// the like) are off the critical path and excluded. Fan-out legs
// (parallel invalidations) can overlap, so a negative inter-hop gap is
// clamped to zero; the components then sum to slightly more than the
// wall latency, never less.
func (t *Txn) Breakdown() (queue, network, service, fill int64) {
	queue = t.QueueWait
	last := t.Begin
	for _, h := range t.Hops {
		if h.Time > t.End {
			continue // delivered after the transaction finished
		}
		network += h.Latency
		if sent := h.Time - h.Latency; sent > last {
			service += sent - last
		}
		if h.Time > last {
			last = h.Time
		}
	}
	fill = t.End - last
	return queue, network, service, fill
}

// PathBreakdown aggregates the component cycles of many transactions.
type PathBreakdown struct {
	Count                         int64
	Total                         int64 // summed total latencies
	Queue, Network, Service, Fill int64 // summed component cycles
}

// CritPathReport is the output of CritPath.
type CritPathReport struct {
	PerOp      [obs.NumTxnOps]PathBreakdown
	Latency    *obs.Hist // total latency of complete read/write misses
	Slowest    []*Txn    // top-K slowest complete transactions
	Incomplete int       // transactions still in flight at trace end
}

// Bounds for the miss-latency histogram: geometric-ish, matching the
// live exporter's latency buckets.
var critpathBounds = []int64{20, 50, 100, 150, 250, 500, 1_000, 2_500, 5_000, 10_000}

// CritPath assembles the trace's transactions and decomposes their
// latency. topK bounds the slowest-transactions list.
func CritPath(events []obs.Event, topK int) (*CritPathReport, error) {
	set, err := Assemble(events)
	if err != nil {
		return nil, err
	}
	r := &CritPathReport{
		Latency:    obs.NewHist(critpathBounds...),
		Incomplete: len(set.Incomplete()),
	}
	for _, t := range set.Txns {
		if !t.Complete {
			continue
		}
		q, n, s, f := t.Breakdown()
		if t.Op >= 0 && t.Op < int64(obs.NumTxnOps) {
			b := &r.PerOp[t.Op]
			b.Count++
			b.Total += t.Total
			b.Queue += q
			b.Network += n
			b.Service += s
			b.Fill += f
		}
		if t.Op == obs.TxnRead || t.Op == obs.TxnWrite {
			r.Latency.Observe(t.Total)
		}
	}
	r.Slowest = set.TopK(topK)
	return r, nil
}

// Write renders the report.
func (r *CritPathReport) Write(w io.Writer) error {
	pct := func(part, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	fmt.Fprintf(w, "  %-15s %9s %11s %7s %7s %8s %6s\n",
		"op", "count", "avg-cycles", "queue%", "net%", "service%", "fill%")
	for op := int64(0); op < int64(obs.NumTxnOps); op++ {
		b := r.PerOp[op]
		if b.Count == 0 {
			continue
		}
		sum := b.Queue + b.Network + b.Service + b.Fill
		fmt.Fprintf(w, "  %-15s %9d %11.1f %6.1f%% %6.1f%% %7.1f%% %5.1f%%\n",
			obs.TxnOpName(op), b.Count, float64(b.Total)/float64(b.Count),
			pct(b.Queue, sum), pct(b.Network, sum), pct(b.Service, sum), pct(b.Fill, sum))
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(w, "  in flight at trace end: %d\n", r.Incomplete)
	}

	if r.Latency.N > 0 {
		fmt.Fprintf(w, "  miss latency (cycles): n=%d mean=%.1f min=%d max=%d\n",
			r.Latency.N, r.Latency.Mean(), r.Latency.Min, r.Latency.Max)
		for i, c := range r.Latency.Counts {
			if c == 0 {
				continue
			}
			if i < len(r.Latency.Bounds) {
				fmt.Fprintf(w, "    <=%-7d %d\n", r.Latency.Bounds[i], c)
			} else {
				fmt.Fprintf(w, "    >%-8d %d\n", r.Latency.Bounds[len(r.Latency.Bounds)-1], c)
			}
		}
	}

	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "  slowest transactions:\n")
		for _, t := range r.Slowest {
			q, n, s, f := t.Breakdown()
			fmt.Fprintf(w, "    %-12v %-14s item=%-6d begin=%-10d total=%-7d queue=%d net=%d service=%d fill=%d hops=%d\n",
				t.ID, obs.TxnOpName(t.Op), t.Item, t.Begin, t.Total, q, n, s, f, len(t.Hops))
		}
	}
	return nil
}

// MsgMix counts in-span hop deliveries per message kind across the set,
// sorted by count descending (ties by kind) — which protocol messages
// dominate the network share of the critical path.
func (s *Set) MsgMix() []struct {
	Msg   string
	Count int64
} {
	counts := make(map[string]int64)
	for _, t := range s.Txns {
		for _, h := range t.Hops {
			if h.Time <= t.End {
				counts[h.Msg.String()]++
			}
		}
	}
	out := make([]struct {
		Msg   string
		Count int64
	}, 0, len(counts))
	for m, c := range counts {
		out = append(out, struct {
			Msg   string
			Count int64
		}{m, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

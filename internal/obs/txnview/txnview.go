// Package txnview reconstructs protocol transactions from an
// observability event stream (obs JSONL logs written by comasim
// -trace-out) and analyses them offline: critical-path latency
// decomposition, protocol-coverage diffing against the full extended
// coherence protocol transition table, and an invariant checker that
// replays the trace and verifies the recovery guarantees the paper
// argues for.
//
// The package is deliberately pure: it consumes []obs.Event and
// produces reports, with no simulator or wall-clock dependencies, so
// the same trace always yields the same analysis (the comalint
// determinism analyzer enforces this).
package txnview

import (
	"fmt"
	"sort"

	"coma/internal/obs"
	"coma/internal/proto"
)

// Hop is one mesh delivery belonging to a transaction.
type Hop struct {
	Time    int64        // delivery time (cycles)
	Node    proto.NodeID // destination
	Msg     proto.MsgKind
	Latency int64 // network latency (delivery minus send)
}

// Txn is one reconstructed protocol transaction.
type Txn struct {
	ID   proto.TxnID
	Par  proto.TxnID // parent transaction, or NoTxn
	Op   int64       // obs.Txn* operation
	Node proto.NodeID
	Item proto.ItemID

	Begin     int64 // KTxnBegin time
	End       int64 // KTxnEnd time (Begin if incomplete)
	QueueWait int64 // cycles queued before Begin (item-lock or bus wait)
	EndA      int64 // KTxnEnd A: fill source / accepting node / round mode
	Total     int64 // KTxnEnd B: total latency

	Hops     []Hop
	Complete bool // a KTxnEnd was seen
}

// Set is every transaction of one trace, in begin order.
type Set struct {
	Txns []*Txn
	ByID map[proto.TxnID]*Txn
}

// Assemble groups the txn-begin/txn-hop/txn-end events of a trace into
// transactions. Hops arriving after the end event are kept (protocol
// messages without a reply future, e.g. home updates, deliver after the
// initiator moved on); hops or ends for a transaction that never began
// are errors — the trace was filtered or truncated at the front.
func Assemble(events []obs.Event) (*Set, error) {
	s := &Set{ByID: make(map[proto.TxnID]*Txn)}
	for i, ev := range events {
		switch ev.Kind {
		case obs.KTxnBegin:
			if prev := s.ByID[ev.Txn]; prev != nil {
				return nil, fmt.Errorf("txnview: event %d: duplicate begin for %v (first began at cycle %d)",
					i, ev.Txn, prev.Begin)
			}
			t := &Txn{
				ID: ev.Txn, Par: ev.Par, Op: ev.A,
				Node: ev.Node, Item: ev.Item,
				Begin: ev.Time, End: ev.Time, QueueWait: ev.B,
			}
			s.ByID[ev.Txn] = t
			s.Txns = append(s.Txns, t)
		case obs.KTxnHop:
			t := s.ByID[ev.Txn]
			if t == nil {
				return nil, fmt.Errorf("txnview: event %d: hop for unknown transaction %v (%v at cycle %d)",
					i, ev.Txn, proto.MsgKind(ev.A), ev.Time)
			}
			t.Hops = append(t.Hops, Hop{
				Time: ev.Time, Node: ev.Node,
				Msg: proto.MsgKind(ev.A), Latency: ev.B,
			})
		case obs.KTxnEnd:
			t := s.ByID[ev.Txn]
			if t == nil {
				return nil, fmt.Errorf("txnview: event %d: end for unknown transaction %v at cycle %d",
					i, ev.Txn, ev.Time)
			}
			if t.Complete {
				return nil, fmt.Errorf("txnview: event %d: duplicate end for %v", i, ev.Txn)
			}
			t.Complete = true
			t.End = ev.Time
			t.EndA = ev.A
			t.Total = ev.B
		}
	}
	return s, nil
}

// Incomplete returns the transactions that never ended (in flight when
// the trace stopped), in begin order.
func (s *Set) Incomplete() []*Txn {
	var out []*Txn
	for _, t := range s.Txns {
		if !t.Complete {
			out = append(out, t)
		}
	}
	return out
}

// Children returns the child transactions of a parent, in begin order.
func (s *Set) Children(id proto.TxnID) []*Txn {
	var out []*Txn
	for _, t := range s.Txns {
		if t.Par == id {
			out = append(out, t)
		}
	}
	return out
}

// TopK returns the k slowest complete transactions, slowest first (ties
// broken by begin time, then ID, for determinism).
func (s *Set) TopK(k int) []*Txn {
	var done []*Txn
	for _, t := range s.Txns {
		if t.Complete {
			done = append(done, t)
		}
	}
	sort.SliceStable(done, func(i, j int) bool {
		if done[i].Total != done[j].Total {
			return done[i].Total > done[j].Total
		}
		if done[i].Begin != done[j].Begin {
			return done[i].Begin < done[j].Begin
		}
		return done[i].ID < done[j].ID
	})
	if k < len(done) {
		done = done[:k]
	}
	return done
}

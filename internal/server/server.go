// Package server implements comad, the simulation-as-a-service daemon:
// an HTTP/JSON front end that accepts simulation jobs, coalesces
// identical submissions onto one run, executes them on a bounded worker
// pool, and answers repeats from a content-addressed result store.
//
// Serving model. A job is identified by the canonical hash of its run
// identity (config.RunIdentity: architecture, protocol, workload, seed,
// failure schedule, code revision), so identity — not submission — is
// the unit of work: N clients posting the same configuration share one
// simulation (singleflight, via the same runner.Pool the experiment
// campaign uses), and a configuration that ever completed is served
// from the store in O(1) with byte-identical payloads. Backpressure is
// a bounded queue: submissions beyond it get 429 with Retry-After.
// Progress streams over SSE from an observability bridge; liveness and
// load are exposed on /healthz and /metrics (Prometheus text).
//
// Concurrency model. This package is host-side serve-layer concurrency,
// deliberately outside the simulator's no-goroutines rule (it holds a
// ConcurrencyAllowlist entry, like internal/experiments/runner): every
// simulation owns a private engine and seed-derived RNG streams, so
// scheduling jobs on OS threads cannot perturb any simulated outcome —
// determinism is the cache's correctness argument, asserted by the
// 32-way coalescing test in dedupe_test.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"coma/internal/config"
	"coma/internal/experiments/runner"
	"coma/internal/inspect"
	"coma/internal/obs"
	"coma/internal/obs/receipt"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently executing simulations (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet picked up by a worker
	// (0: 64). Beyond it, submissions get 429 with Retry-After.
	QueueDepth int
	// Revision is the code revision baked into every cache key, so a
	// persistent store never serves results computed by different
	// simulator code.
	Revision string
	// CacheDir, when non-empty, persists the result store to disk
	// (one file per content hash) and reloads entries on demand.
	CacheDir string
	// Runner executes runs (nil: SimRunner, the real simulator).
	Runner Runner
	// Logf receives operational log lines (nil: discarded).
	Logf func(format string, args ...any)

	// NoReceipts disables execution receipts. By default every job run
	// in-process records a receipt-grade trace (receipt.TraceMask) and
	// emits a coma-receipt/v1 document into the store beside the result;
	// the trace is buffered in memory for the run's duration, so
	// operators running enormous single jobs can opt out.
	NoReceipts bool
	// ReceiptKey, when non-empty, HMAC-signs every emitted receipt and
	// requires worker-submitted receipts to verify under the same key —
	// for fleets whose transport is not trusted.
	ReceiptKey []byte

	// Cluster switches the daemon into coordinator mode: jobs are not
	// executed in-process but dispatched to registered worker nodes
	// (cmd/comanode) over the lease protocol in cluster.go. The job API,
	// cache and SSE surface are unchanged — only who simulates moves.
	Cluster bool
	// LeaseTTL is the worker liveness window: a worker silent for this
	// long is dead and its leases requeue (0: 15s). Cluster mode only.
	LeaseTTL time.Duration
	// HeartbeatEvery is the heartbeat period advertised to workers
	// (0: LeaseTTL/3). Cluster mode only.
	HeartbeatEvery time.Duration
	// MaxRequeues bounds how many lease expiries a job survives before
	// it is dead-lettered (0: 3; negative: dead-letter on first expiry).
	MaxRequeues int
}

// Server is the comad daemon: scheduler state plus the HTTP API.
type Server struct {
	opts   Options
	runner Runner
	store  *Store
	met    *metrics
	pool   *runner.Pool[string, struct{}]
	mux    *http.ServeMux
	clu    *clusterTable // cluster-mode scheduler state; nil otherwise

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queued   int      // jobs accepted, not yet picked up
	running  int      // jobs executing
	draining bool

	// inflight counts accepted non-terminal jobs; Drain waits on it.
	// Add happens under mu with !draining, so it cannot race Wait.
	inflight sync.WaitGroup
}

// New assembles a server.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = opts.LeaseTTL / 3
	}
	if opts.MaxRequeues == 0 {
		opts.MaxRequeues = DefaultMaxRequeues
	} else if opts.MaxRequeues < 0 {
		opts.MaxRequeues = 0
	}
	store, err := NewStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		runner: opts.Runner,
		store:  store,
		met:    newMetrics(),
		pool:   runner.New[string, struct{}](opts.Workers),
		jobs:   make(map[string]*job),
	}
	if s.runner == nil {
		s.runner = SimRunner
	}
	if opts.Cluster {
		s.clu = newClusterTable(opts)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/receipt", s.handleReceipt)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/inspect", s.handleInspect)
	s.mux.HandleFunc("GET /v1/jobs/{id}/inspect/stream", s.handleInspectStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	s.mux.HandleFunc("GET /v1/workers", s.handleWorkerList)
	s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	s.mux.HandleFunc("POST /v1/workers/{id}/lease", s.handleWorkerLease)
	s.mux.HandleFunc("POST /v1/workers/{id}/complete", s.handleWorkerComplete)
	s.mux.HandleFunc("POST /v1/workers/{id}/progress", s.handleWorkerProgress)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleWorkerDeregister)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the worker bound.
func (s *Server) Workers() int { return s.opts.Workers }

// Drain stops accepting new jobs and blocks until every accepted job
// has reached a terminal state (queued jobs still run — accepted work
// is never dropped) or ctx expires. Status, result and metrics
// endpoints keep serving throughout; call it before shutting the HTTP
// listener down.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	pending := s.queued + s.running
	s.mu.Unlock()
	if !already {
		s.logf("draining: %d job(s) pending, new submissions refused", pending)
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drained: all accepted jobs terminal")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// admit resolves one submission under the scheduler lock: an existing
// job (coalesce), a stored result (hit), or a new queued job (miss).
// A non-zero httpErr refuses the submission.
func (s *Server) admit(spec JobSpec, identity config.RunIdentity, wait bool) (j *job, cache string, httpErr int, retryAfter int) {
	key := identity.Hash()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	if j, ok := s.jobs[key]; ok {
		cache = "join"
		if j.state == StateDone {
			cache = "hit"
		}
		s.registerInterestLocked(j, wait)
		return j, cache, 0, 0
	}
	if payload, ok := s.store.Get(key); ok {
		j := &job{
			id:       key,
			spec:     spec,
			identity: identity,
			state:    StateDone,
			result:   payload,
			dequeued: true,
			queuedAt: now,
			wake:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		close(j.done)
		j.events = []JobEvent{{Seq: 0, Type: "state", State: StateDone}}
		s.jobs[key] = j
		s.order = append(s.order, key)
		return j, "hit", 0, 0
	}
	if s.draining {
		return nil, "", http.StatusServiceUnavailable, 0
	}
	if s.queued >= s.opts.QueueDepth {
		return nil, "", http.StatusTooManyRequests, 1 + s.queued/s.opts.Workers
	}

	j = &job{
		id:       key,
		spec:     spec,
		identity: identity,
		state:    StateQueued,
		queuedAt: now,
		wake:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if spec.DeadlineMS > 0 {
		j.deadline = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	s.registerInterestLocked(j, wait)
	s.appendEventLocked(j, JobEvent{Type: "state", State: StateQueued})
	s.jobs[key] = j
	s.order = append(s.order, key)
	s.queued++
	s.inflight.Add(1)
	if s.clu != nil {
		// Cluster mode: onto the dispatch queue for worker nodes; the
		// terminal transition (worker completion, dead-letter, cancel)
		// releases inflight via finishLocked.
		j.cluster = true
		s.enqueueLocked(j, false)
		return j, "miss", 0, 0
	}
	s.pool.Start(key, func() (struct{}, error) {
		s.execute(j)
		return struct{}{}, nil
	})
	return j, "miss", 0, 0
}

// registerInterestLocked records who is waiting on a job: synchronous
// waiters are counted (their disconnect may abandon a queued job),
// asynchronous submissions pin it (the client intends to come back).
func (s *Server) registerInterestLocked(j *job, wait bool) {
	if wait {
		j.interest++
	} else {
		j.pinned = true
	}
}

// execute runs one job on a pool worker. Every accepted job passes
// through here exactly once (even cancelled ones, which no-op), so the
// inflight accounting has a single release point.
func (s *Server) execute(j *job) {
	defer s.inflight.Done()

	s.mu.Lock()
	if !j.dequeued {
		s.queued--
		j.dequeued = true
	}
	if j.state != StateQueued { // cancelled or abandoned while queued
		s.mu.Unlock()
		return
	}
	now := time.Now()
	if !j.deadline.IsZero() && now.After(j.deadline) {
		j.errMsg = "deadline exceeded while queued"
		s.finishLocked(j, StateFailed)
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.startedAt = now
	s.running++
	s.appendEventLocked(j, JobEvent{Type: "state", State: StateRunning})
	s.mu.Unlock()
	s.met.observeQueueWait(now.Sub(j.queuedAt).Seconds())
	s.logf("job %s: running (%s/%s on %d nodes)", shortID(j.id), j.spec.App, j.identity.Protocol, j.identity.Arch.Nodes)

	// The bridge is always installed so /metrics counts every job's
	// observability events; SSE forwarding is only wired up when the
	// job asked for progress streaming.
	observer := &progressBridge{counts: &s.met.obsEvents}
	if j.spec.Progress {
		observer.publish = func(msg string, simCycles int64) {
			s.mu.Lock()
			s.appendEventLocked(j, JobEvent{Type: "progress", Message: msg, SimCycles: simCycles})
			s.mu.Unlock()
		}
	}
	// The always-on invariant gate: unless disabled, a receipt-grade
	// recorder tees off the same stream so every completed job leaves a
	// verifiable execution receipt (and its trace) in the store.
	var rec *obs.Recorder
	var runObs obs.Observer = observer
	if !s.opts.NoReceipts {
		rec = obs.NewRecorder(receipt.TraceMask)
		runObs = teeObserver{observer, rec}
	}
	opts := RunOptions{
		Observer: runObs,
		// Every job gets a live-inspection controller: the /inspect
		// endpoints and the per-job /metrics gauges read through it, and
		// an idle controller costs one predictable branch per event.
		Inspect: func(ctl *inspect.Controller) {
			s.mu.Lock()
			j.ctl = ctl
			s.mu.Unlock()
		},
	}
	res, err := s.runner(j.identity, opts)
	var payload []byte
	if err == nil {
		payload, err = MarshalResult(res)
	}
	var persistErr error
	if err == nil {
		persistErr = s.store.Put(j.id, payload)
		s.emitReceipt(j, payload, rec)
	}

	s.mu.Lock()
	s.running--
	// Detach the controller: inspection targets running jobs (the
	// machine is released with it; results are served from the store).
	// Streams already attached drain through the controller's Done.
	j.ctl = nil
	j.finishedAt = time.Now()
	if err != nil {
		j.errMsg = err.Error()
		s.finishLocked(j, StateFailed)
	} else {
		j.result = payload
		s.finishLocked(j, StateDone)
	}
	s.mu.Unlock()

	if err == nil {
		s.met.observeRunTime(j.finishedAt.Sub(j.startedAt).Seconds())
		s.logf("job %s: done in %.1f ms", shortID(j.id), msBetween(j.startedAt, j.finishedAt))
	} else {
		s.logf("job %s: failed: %v", shortID(j.id), err)
	}
	if persistErr != nil {
		s.logf("job %s: persisting result: %v", shortID(j.id), persistErr)
	}
}

// emitReceipt builds, signs and stores the execution receipt (plus its
// trace) for one locally executed job. A receipt failure never fails
// the job — the result is already stored and correct — it is logged
// and the receipt is simply absent.
func (s *Server) emitReceipt(j *job, payload []byte, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	rcpt, trace, err := receipt.Build(j.identity, payload, rec.Events(), receipt.ProducerLocal)
	if err != nil {
		s.logf("job %s: building receipt: %v", shortID(j.id), err)
		return
	}
	if len(s.opts.ReceiptKey) > 0 {
		rcpt = rcpt.Sign(s.opts.ReceiptKey)
	}
	s.storeReceipt(j.id, rcpt, trace)
}

// storeReceipt files a receipt (and optional trace bytes) beside the
// job's result and counts it by verdict.
func (s *Server) storeReceipt(id string, rcpt receipt.Receipt, trace []byte) {
	if err := s.store.PutAux(id, AuxReceipt, append(rcpt.CanonicalJSON(), '\n')); err != nil {
		s.logf("job %s: persisting receipt: %v", shortID(id), err)
	}
	if trace != nil {
		if err := s.store.PutAux(id, AuxTrace, trace); err != nil {
			s.logf("job %s: persisting trace: %v", shortID(id), err)
		}
	}
	s.met.countReceipt(rcpt.VerdictLabel())
	s.logf("job %s: receipt %s (%s)", shortID(id), rcpt.VerdictLabel(), shortID(rcpt.ResultDigest))
}

// finishLocked moves a job to a terminal state: final event, done
// broadcast, terminal metrics. Caller holds s.mu; the job must not
// already be terminal. Cluster jobs release their inflight count here —
// their single release point, the way execute is for local jobs.
func (s *Server) finishLocked(j *job, st State) {
	j.state = st
	ev := JobEvent{Type: "state", State: st}
	if st == StateFailed || st == StateDeadLetter {
		ev.Error = j.errMsg
	}
	s.appendEventLocked(j, ev)
	close(j.done)
	s.met.countTerminal(st)
	if j.cluster {
		s.inflight.Done()
	}
}

// appendEventLocked appends to the job's event log and wakes every
// subscriber. Caller holds s.mu.
func (s *Server) appendEventLocked(j *job, ev JobEvent) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
}

// detachWaiter undoes one synchronous waiter's interest; a queued job
// nobody is pinned to or waiting for is abandoned (this is how a client
// disconnect aborts a queued job without touching running or shared
// ones).
func (s *Server) detachWaiter(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.interest--
	if j.interest <= 0 && !j.pinned && j.state == StateQueued {
		if !j.dequeued {
			s.queued--
			j.dequeued = true
		}
		j.errMsg = "abandoned: every waiting client disconnected"
		s.finishLocked(j, StateCancelled)
		s.logf("job %s: abandoned while queued", shortID(j.id))
	}
}

// ---- HTTP handlers ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	identity, err := spec.Identity(s.opts.Revision)
	if err != nil {
		s.respondError(w, http.StatusBadRequest, err)
		return
	}

	j, cache, httpErr, retryAfter := s.admit(spec, identity, wait)
	switch httpErr {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
		s.respondError(w, httpErr, errors.New("queue full, retry later"))
		return
	case http.StatusServiceUnavailable:
		s.respondError(w, httpErr, errors.New("draining: no new jobs accepted"))
		return
	}
	s.met.countSubmission(cache)

	if wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			s.detachWaiter(j)
			return
		}
		s.mu.Lock()
		j.interest--
		st := j.status(true)
		s.mu.Unlock()
		st.Cache = cache
		s.respondJSON(w, http.StatusOK, st)
		return
	}

	s.mu.Lock()
	st := j.status(true)
	s.mu.Unlock()
	st.Cache = cache
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	s.respondJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, key := range s.order {
		list = append(list, s.jobs[key].status(false))
	}
	queued, running := s.queued, s.running
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, map[string]any{
		"jobs": list, "queued": queued, "running": running,
	})
}

// lookup resolves {id}; it answers 404 itself when unknown.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		s.respondError(w, http.StatusNotFound, errors.New("unknown job"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	if wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	st := j.status(true)
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, payload := j.state, j.result
	s.mu.Unlock()
	if state != StateDone {
		s.respondError(w, http.StatusConflict, fmt.Errorf("job is %s", state))
		return
	}
	// Raw stored bytes: the byte-identical payload contract, verbatim.
	w.Header().Set("Content-Type", "application/json")
	s.met.countHTTP(http.StatusOK)
	w.Write(payload)
}

// handleReceipt serves the job's execution receipt: the canonical
// coma-receipt/v1 bytes stored beside the result.
func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	s.serveAux(w, r, AuxReceipt, "application/json")
}

// handleTrace serves the receipt-grade observability trace (canonical
// JSONL) recorded for a locally executed job — the artifact `comatrace
// attest -trace` replays against the receipt's verdict.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.serveAux(w, r, AuxTrace, "application/x-ndjson")
}

func (s *Server) serveAux(w http.ResponseWriter, r *http.Request, kind, contentType string) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state != StateDone {
		s.respondError(w, http.StatusConflict, fmt.Errorf("job is %s", state))
		return
	}
	payload, ok := s.store.GetAux(j.id, kind)
	if !ok {
		s.respondError(w, http.StatusNotFound, fmt.Errorf("no %s recorded for this job", kind))
		return
	}
	// Raw stored bytes, like /result: attestation is a byte-level
	// contract, so nothing may re-encode them.
	w.Header().Set("Content-Type", contentType)
	s.met.countHTTP(http.StatusOK)
	w.Write(payload)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.respondError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.met.countHTTP(http.StatusOK)

	next := 0
	for {
		s.mu.Lock()
		pending := append([]JobEvent(nil), j.events[next:]...)
		next = len(j.events)
		wake := j.wake
		terminal := j.state.Terminal()
		s.mu.Unlock()

		for _, ev := range pending {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		}
		if len(pending) > 0 {
			flusher.Flush()
		}
		if terminal {
			return // the log is complete; the final state event is sent
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch {
	case j.state == StateQueued:
		if !j.dequeued {
			s.queued--
			j.dequeued = true
		}
		j.errMsg = "cancelled by request"
		s.finishLocked(j, StateCancelled)
		st := j.status(false)
		s.mu.Unlock()
		s.logf("job %s: cancelled while queued", shortID(j.id))
		s.respondJSON(w, http.StatusOK, st)
	case j.state == StateCancelled:
		st := j.status(false)
		s.mu.Unlock()
		s.respondJSON(w, http.StatusOK, st)
	default:
		state := j.state
		s.mu.Unlock()
		s.respondError(w, http.StatusConflict,
			fmt.Errorf("job is %s; only queued jobs can be cancelled", state))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	if s.clu != nil {
		s.sweepLocked(now)
	}
	draining, queued, running := s.draining, s.queued, s.running
	clu := s.clusterStatsLocked()
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, Health{
		Status: "ok", Draining: draining,
		Queued: queued, Running: running,
		Workers: s.opts.Workers, Revision: s.opts.Revision,
		Cluster: clu.enabled, ClusterWorkers: clu.active,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	if s.clu != nil {
		s.sweepLocked(now)
	}
	queued, running := s.queued, s.running
	gauges := s.jobGaugesLocked(now.UnixMilli())
	clu := s.clusterStatsLocked()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.countHTTP(http.StatusOK)
	s.met.write(w, queued, running, s.store.Len(), gauges, clu)
}

func (s *Server) respondJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	s.met.countHTTP(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) respondError(w http.ResponseWriter, code int, err error) {
	s.respondJSON(w, code, map[string]string{"error": err.Error()})
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/inspect"
	"coma/internal/proto"
	"coma/internal/stats"
)

// fakeInspectSource is a Source with synthetic but self-consistent
// state, advanced by the paced runner one safe point at a time.
type fakeInspectSource struct {
	now    int64
	events int64
}

func (f *fakeInspectSource) InspectLine(item proto.ItemID) inspect.LineView {
	return inspect.LineView{
		Item: int64(item), Page: int64(item) / 8, Home: 2, Present: true,
		Owner: 3, Sharers: []int{1, 3},
		Copies: []inspect.CopyView{
			{Node: 3, State: proto.SharedCK1.String(), Partner: 1, Value: 7},
			{Node: 1, State: proto.SharedCK2.String(), Partner: 3, Value: 7},
		},
		RecoveryPairs: [][2]int{{1, 3}},
	}
}

func (f *fakeInspectSource) InspectNodes() []inspect.NodeView {
	nv := make([]inspect.NodeView, 4)
	for i := range nv {
		nv[i] = inspect.NodeView{Node: i, Alive: true, Frames: 8}
		nv[i].States.Add(proto.Shared)
	}
	return nv
}

func (f *fakeInspectSource) InspectQueues() inspect.QueuesView {
	return inspect.QueuesView{
		SimCycles: f.now,
		Request: inspect.SubnetView{Inflight: 5, BusyLinks: 2,
			NISendBusy: []int64{0, 4, 0, 0}, NIRecvBusy: []int64{0, 0, 0, 0}},
		Reply: inspect.SubnetView{Inflight: 3,
			NISendBusy: []int64{0, 0, 0, 0}, NIRecvBusy: []int64{0, 0, 0, 0}},
	}
}

func (f *fakeInspectSource) InspectSummary() inspect.SummaryView {
	return inspect.SummaryView{
		SimCycles: f.now, Events: f.events, Processes: 4,
		Nodes: 4, LiveNodes: 4,
	}
}

// pacedRunner is a fake Runner whose simulation advances one safe point
// per value received on step (the value is the sim-cycle increment), so
// tests control exactly when safe points — and thus samples and query
// service — happen. Closing step ends the run.
type pacedRunner struct {
	ctl  chan *inspect.Controller
	step chan int64
}

func newPacedRunner() *pacedRunner {
	return &pacedRunner{ctl: make(chan *inspect.Controller, 1), step: make(chan int64)}
}

func (p *pacedRunner) run(id config.RunIdentity, opts RunOptions) (*stats.Run, error) {
	src := &fakeInspectSource{}
	ctl := inspect.NewController(src, 100)
	defer ctl.Finish()
	if opts.Inspect != nil {
		opts.Inspect(ctl)
	}
	p.ctl <- ctl
	for d := range p.step {
		src.now += d
		src.events++
		ctl.AtSafePoint(src.now)
	}
	return fakeRun(id), nil
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantCode, raw)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, raw, err)
		}
	}
}

// TestInspectViewsOverHTTP drives a paced fake run to a paused safe
// point and exercises all four inspect views plus the error paths.
func TestInspectViewsOverHTTP(t *testing.T) {
	p := newPacedRunner()
	_, ts := newTestServer(t, Options{Workers: 1, Runner: p.run})
	resp, st := postJob(t, ts, specJSON(1), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	ctl := <-p.ctl

	// Park the run at a safe point so every query below is answered
	// immediately and deterministically (sim time frozen at 100).
	go func() { p.step <- 100 }()
	ctl.Pause()
	base := ts.URL + "/v1/jobs/" + st.ID + "/inspect"

	var sum inspect.SummaryView
	getJSON(t, base, http.StatusOK, &sum) // default view=summary
	if sum.SimCycles != 100 || sum.Events != 1 || sum.Nodes != 4 || sum.Finished {
		t.Errorf("summary = %+v, want sim_cycles=100 events=1 nodes=4 finished=false", sum)
	}

	var nodes []inspect.NodeView
	getJSON(t, base+"?view=node", http.StatusOK, &nodes)
	if len(nodes) != 4 || nodes[2].Frames != 8 || nodes[2].States.Total() != 1 {
		t.Errorf("nodes = %+v, want 4 nodes with 8 frames and 1 tallied state", nodes)
	}

	var queues inspect.QueuesView
	getJSON(t, base+"?view=queues", http.StatusOK, &queues)
	if queues.Request.Inflight != 5 || queues.Reply.Inflight != 3 || queues.Request.NISendBusy[1] != 4 {
		t.Errorf("queues = %+v, want request inflight 5, reply 3, node 1 send busy 4", queues)
	}

	var line inspect.LineView
	getJSON(t, base+"?view=line&item=12", http.StatusOK, &line)
	if line.Item != 12 || line.Home != 2 || len(line.RecoveryPairs) != 1 || line.RecoveryPairs[0] != [2]int{1, 3} {
		t.Errorf("line = %+v, want item 12 home 2 recovery pair [1 3]", line)
	}

	// addr= resolves through the job's item size.
	itemSize := config.KSR1(2).ItemSize
	getJSON(t, fmt.Sprintf("%s?view=line&addr=%d", base, 12*itemSize), http.StatusOK, &line)
	if line.Item != 12 {
		t.Errorf("line by addr: item = %d, want 12", line.Item)
	}
	getJSON(t, fmt.Sprintf("%s?view=line&addr=0x%x", base, 12*itemSize), http.StatusOK, &line)
	if line.Item != 12 {
		t.Errorf("line by hex addr: item = %d, want 12", line.Item)
	}

	getJSON(t, base+"?view=bogus", http.StatusBadRequest, nil)
	getJSON(t, base+"?view=line", http.StatusBadRequest, nil)
	getJSON(t, base+"?view=line&addr=nope", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/jobs/nope/inspect", http.StatusNotFound, nil)

	// Finish the run; inspection then reports the job is no longer live.
	ctl.Resume()
	close(p.step)
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=1", http.StatusOK, nil)
	getJSON(t, base, http.StatusConflict, nil)
}

// sseRead reads one "event: sample" SSE record and decodes its data.
func sseRead(t *testing.T, br *bufio.Reader) inspect.Sample {
	t.Helper()
	var smp inspect.Sample
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(strings.TrimSpace(data)), &smp); err != nil {
				t.Fatalf("decoding sample %q: %v", data, err)
			}
			return smp
		}
	}
}

// TestInspectStreamReplayThenFollow covers the stream contract: a
// client connecting mid-run immediately receives the latest snapshot,
// then each newer one as published; another client's disconnect does
// not perturb the run; the stream ends with the terminal sample.
func TestInspectStreamReplayThenFollow(t *testing.T) {
	p := newPacedRunner()
	_, ts := newTestServer(t, Options{Workers: 1, Runner: p.run})
	_, st := postJob(t, ts, specJSON(2), false)
	ctl := <-p.ctl

	// Advance three safe points (one sample each: sampleEvery=100,
	// increments of 100), then wait for the third sample to publish.
	for i := 0; i < 3; i++ {
		p.step <- 100
	}
	for ctl.Latest() == nil || ctl.Latest().Seq < 3 {
		time.Sleep(time.Millisecond)
	}

	streamURL := ts.URL + "/v1/jobs/" + st.ID + "/inspect/stream"
	resp, err := http.Get(streamURL)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// Replay: the latest sample arrives without any further progress.
	smp := sseRead(t, br)
	if smp.Seq != 3 || smp.Summary.SimCycles != 300 {
		t.Fatalf("replay sample = seq %d @%d, want seq 3 @300", smp.Seq, smp.Summary.SimCycles)
	}

	// A second client connects and immediately disconnects: the run and
	// the first stream must be unaffected.
	resp2, err := http.Get(streamURL)
	if err != nil {
		t.Fatalf("GET stream (second client): %v", err)
	}
	resp2.Body.Close()

	// Follow: two more safe points, two more samples, in order.
	for want := int64(4); want <= 5; want++ {
		p.step <- 100
		if smp = sseRead(t, br); smp.Seq != want {
			t.Fatalf("follow sample seq = %d, want %d", smp.Seq, want)
		}
	}

	// End of run: terminal sample, then EOF.
	close(p.step)
	smp = sseRead(t, br)
	if smp.Seq != 6 || !smp.Summary.Finished {
		t.Fatalf("terminal sample = %+v, want seq 6 finished", smp)
	}
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil || strings.TrimSpace(line) != "" {
			t.Fatalf("after terminal sample: line %q, err %v, want EOF", line, err)
		}
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(Inf)?$`)

// TestMetricsJobGauges scrapes /metrics mid-run and checks the per-job
// inspection gauges appear with the sampled values, and that the whole
// exposition parses line by line.
func TestMetricsJobGauges(t *testing.T) {
	p := newPacedRunner()
	_, ts := newTestServer(t, Options{Workers: 1, Runner: p.run})
	_, st := postJob(t, ts, specJSON(3), false)
	ctl := <-p.ctl
	p.step <- 100
	for ctl.Latest() == nil {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)

	job := shortID(st.ID)
	for _, want := range []string{
		fmt.Sprintf("coma_job_sim_cycles{job=%q} 100", job),
		fmt.Sprintf("coma_job_events{job=%q} 1", job),
		fmt.Sprintf("coma_job_events_per_second{job=%q} ", job),
		fmt.Sprintf("coma_queue_depth{job=%q,subnet=\"request\"} 5", job),
		fmt.Sprintf("coma_queue_depth{job=%q,subnet=\"reply\"} 3", job),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable metrics line %q", line)
		}
	}

	close(p.step)
}

// TestInspectRealRunEndToEnd submits a real simulation, pauses it at
// its first safe point, queries every view over HTTP, resumes, and
// checks the stored result is byte-identical to the same identity run
// without any inspection traffic.
func TestInspectRealRunEndToEnd(t *testing.T) {
	ctlCh := make(chan *inspect.Controller, 1)
	runner := func(id config.RunIdentity, opts RunOptions) (*stats.Run, error) {
		inner := opts.Inspect
		opts.Inspect = func(ctl *inspect.Controller) {
			if inner != nil {
				inner(ctl)
			}
			ctlCh <- ctl
		}
		return SimRunner(id, opts)
	}
	_, ts := newTestServer(t, Options{Workers: 1, Runner: runner})
	// A scaled-down workload: long enough to pause mid-run, short enough
	// for the race detector.
	spec4 := `{"app":"mp3d","nodes":2,"protocol":"ecp","seed":4,"scale":0.05}`
	_, st := postJob(t, ts, spec4, false)
	ctl := <-ctlCh
	ctl.Pause()

	base := ts.URL + "/v1/jobs/" + st.ID + "/inspect"
	var sum inspect.SummaryView
	getJSON(t, base, http.StatusOK, &sum)
	if sum.Nodes != 2 {
		t.Errorf("summary nodes = %d, want 2", sum.Nodes)
	}
	var nodes []inspect.NodeView
	getJSON(t, base+"?view=node", http.StatusOK, &nodes)
	if len(nodes) != 2 {
		t.Errorf("node view has %d entries, want 2", len(nodes))
	}
	getJSON(t, base+"?view=queues", http.StatusOK, new(inspect.QueuesView))
	getJSON(t, base+"?view=line&item=0", http.StatusOK, new(inspect.LineView))

	ctl.Resume()
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=1", http.StatusOK, nil)
	got, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	inspected, _ := io.ReadAll(got.Body)
	got.Body.Close()

	var spec JobSpec
	if err := json.Unmarshal([]byte(spec4), &spec); err != nil {
		t.Fatal(err)
	}
	identity, err := spec.Identity("")
	if err != nil {
		t.Fatal(err)
	}
	run, err := SimRunner(identity, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MarshalResult(run)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(inspected), bytes.TrimSpace(plain)) {
		t.Error("inspected job's stored result differs from an uninspected run of the same identity")
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"coma/internal/config"
	"coma/internal/fault"
	"coma/internal/inspect"
	"coma/internal/proto"
	"coma/internal/workload"
)

// State is a job's position in its lifecycle. In single-process mode
// the machine is strictly forward: queued -> running -> done|failed,
// with cancelled reachable only from queued (a running simulation is
// never killed; see DESIGN.md §22). In cluster mode a job leased to a
// worker is running, and a lost worker moves it running -> queued again
// (lease expiry, see DESIGN.md §12); a job requeued more than the
// configured maximum ends dead_letter instead.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateDeadLetter is the cluster scheduler's give-up state: the job's
	// lease expired more than Options.MaxRequeues times, so either the
	// job reliably kills workers or the fleet is too unstable to finish
	// it. Terminal, like failed, but distinguishable so operators can
	// tell worker churn from simulation errors.
	StateDeadLetter State = "dead_letter"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateDeadLetter
}

// JobSpec is the wire format of POST /v1/jobs: a validated simulation
// request. The zero value of every optional field means "the default",
// so a minimal submission is {"app":"mp3d","nodes":4,"protocol":"ecp"}.
type JobSpec struct {
	// App names a workload preset (barnes, cholesky, mp3d, water,
	// uniform, private, migratory).
	App string `json:"app"`
	// Nodes is the machine size (ignored when Arch is given).
	Nodes int `json:"nodes"`
	// Protocol is "standard" or "ecp".
	Protocol string `json:"protocol"`
	// Scale multiplies the preset's instruction budget (0 means 1.0,
	// the paper's full budgets — minutes of simulation).
	Scale float64 `json:"scale,omitempty"`
	// Instructions overrides Scale with an absolute budget.
	Instructions int64 `json:"instructions,omitempty"`
	// CheckpointHz is the recovery-point frequency (ECP only).
	CheckpointHz float64 `json:"hz,omitempty"`
	// CheckpointInterval overrides CheckpointHz with a period in cycles.
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	// Seed makes the run deterministic (and is part of the cache key).
	Seed uint64 `json:"seed,omitempty"`
	// Modern selects the faster-processor preset (ignored with Arch).
	Modern bool `json:"modern,omitempty"`
	// Arch overrides the derived architecture with explicit parameters.
	Arch *config.Arch `json:"arch,omitempty"`
	// Failures is the scripted failure schedule (ECP only); it is
	// canonicalised into time order.
	Failures []config.FailureEvent `json:"failures,omitempty"`
	// Ablation switches.
	NoReplicationReuse bool `json:"no_replication_reuse,omitempty"`
	NoSharedCKReads    bool `json:"no_shared_ck_reads,omitempty"`
	// NoOracle disables end-to-end value verification (on by default).
	NoOracle bool `json:"no_oracle,omitempty"`
	// Strict and Invariants enable the slow correctness machinery.
	Strict     bool `json:"strict,omitempty"`
	Invariants bool `json:"invariants,omitempty"`
	// MaxCycles aborts runaway simulations (0: a generous default).
	MaxCycles int64 `json:"max_cycles,omitempty"`

	// DeadlineMS bounds the time a job may wait in the queue: a job
	// still queued after this many wall milliseconds fails instead of
	// running. 0 means no deadline. Not part of the run identity.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Progress attaches an observability bridge to the run so the
	// job's SSE stream carries live checkpoint/fault/rollback progress.
	// Costs a few percent of simulation throughput; never changes the
	// result (the observability layer is stats-neutral). Not part of
	// the run identity.
	Progress bool `json:"progress,omitempty"`
}

// Validate checks the spec and returns a descriptive error for the
// first violated constraint.
func (sp JobSpec) Validate() error {
	if _, ok := workload.ByName(sp.App); !ok {
		return fmt.Errorf("unknown app %q", sp.App)
	}
	switch sp.Protocol {
	case "standard":
		if sp.CheckpointHz != 0 || sp.CheckpointInterval != 0 {
			return fmt.Errorf("checkpointing requires the ecp protocol")
		}
		if len(sp.Failures) > 0 {
			return fmt.Errorf("failure injection requires the ecp protocol")
		}
	case "ecp":
	default:
		return fmt.Errorf("unknown protocol %q (want standard or ecp)", sp.Protocol)
	}
	if sp.Scale < 0 || sp.Instructions < 0 {
		return fmt.Errorf("negative instruction budget")
	}
	if sp.CheckpointHz < 0 || sp.CheckpointInterval < 0 {
		return fmt.Errorf("negative checkpoint frequency")
	}
	if sp.MaxCycles < 0 || sp.DeadlineMS < 0 {
		return fmt.Errorf("negative limit")
	}
	nodes := sp.Nodes
	if sp.Arch != nil {
		if err := sp.Arch.Validate(); err != nil {
			return err
		}
		nodes = sp.Arch.Nodes
	} else if sp.Nodes < 1 {
		return fmt.Errorf("nodes = %d, need >= 1", sp.Nodes)
	}
	if len(sp.Failures) > 0 {
		plan := make(fault.Plan, len(sp.Failures))
		for i, f := range sp.Failures {
			plan[i] = fault.Event{At: f.At, Node: proto.NodeID(f.Node), Permanent: f.Permanent}
		}
		plan.Sort()
		if err := plan.Validate(nodes); err != nil {
			return err
		}
	}
	return nil
}

// Identity canonicalises a validated spec into the repository-wide run
// identity (internal/config): scaling is resolved to an absolute
// instruction budget, the architecture to a full parameter set, and the
// failure schedule to time order, so every spec that means the same run
// hashes to the same content address. Fields that do not influence the
// result (DeadlineMS, Progress) are excluded by construction.
func (sp JobSpec) Identity(revision string) (config.RunIdentity, error) {
	if err := sp.Validate(); err != nil {
		return config.RunIdentity{}, err
	}
	app, _ := workload.ByName(sp.App)
	instructions := sp.Instructions
	if instructions == 0 {
		instructions = app.Instructions
		if sp.Scale > 0 {
			instructions = app.Scale(sp.Scale).Instructions
		}
	}
	var arch config.Arch
	switch {
	case sp.Arch != nil:
		arch = *sp.Arch
	case sp.Modern:
		arch = config.Modern(sp.Nodes)
	default:
		arch = config.KSR1(sp.Nodes)
	}
	maxCycles := sp.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	var failures []config.FailureEvent
	if len(sp.Failures) > 0 {
		failures = append(failures, sp.Failures...)
		sort.SliceStable(failures, func(i, j int) bool {
			if failures[i].At != failures[j].At {
				return failures[i].At < failures[j].At
			}
			return failures[i].Node < failures[j].Node
		})
	}
	return config.RunIdentity{
		Revision:           revision,
		Arch:               arch,
		Protocol:           sp.Protocol,
		NoReplicationReuse: sp.NoReplicationReuse,
		NoSharedCKReads:    sp.NoSharedCKReads,
		App:                sp.App,
		Instructions:       instructions,
		Seed:               sp.Seed,
		CheckpointHz:       sp.CheckpointHz,
		CheckpointInterval: sp.CheckpointInterval,
		Failures:           failures,
		Oracle:             !sp.NoOracle,
		Strict:             sp.Strict,
		Invariants:         sp.Invariants,
		MaxCycles:          maxCycles,
	}, nil
}

// JobEvent is one element of a job's SSE stream. Seq is the position in
// the job's event log (SSE id:), so a late subscriber replays the full
// history in order before following live events.
type JobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "progress"
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Message is a human-readable progress line.
	Message string `json:"message,omitempty"`
	// SimCycles stamps "progress" events with the simulated time they
	// were observed at.
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// Error accompanies the failed state.
	Error string `json:"error,omitempty"`
}

// JobStatus is the wire format of a job in responses.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	App      string `json:"app"`
	Protocol string `json:"protocol"`
	Nodes    int    `json:"nodes"`
	Seed     uint64 `json:"seed"`
	// Cache reports how a submission resolved: "hit" (served from the
	// store), "join" (coalesced onto an identical in-flight job) or
	// "miss" (a new simulation). Submission responses only.
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	// Worker is the node currently holding the job's lease (cluster
	// mode, running jobs only); Requeues counts lease expiries survived.
	Worker   string `json:"worker,omitempty"`
	Requeues int    `json:"requeues,omitempty"`
	// QueueMS and RunMS are wall-clock durations, present once known.
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
	// Result is the canonical result payload (terminal done jobs only,
	// and only where the endpoint includes it). Byte-identical across
	// every response for the same job.
	Result json.RawMessage `json:"result,omitempty"`
}

// job is the server-side state of one accepted run. All fields after
// the immutable header are guarded by the owning Server's mutex; done
// is closed exactly once, on the transition to a terminal state.
type job struct {
	// Immutable after creation.
	id       string
	spec     JobSpec
	identity config.RunIdentity
	deadline time.Time // zero: none

	state    State
	errMsg   string
	result   []byte // canonical payload; shared with the store
	dequeued bool   // queue-depth accounting done
	pinned   bool   // an async submission exists: never cancel on disconnect
	interest int    // waiting submissions with cancel-on-disconnect semantics

	// Cluster-mode scheduling state (zero in single-process mode).
	cluster  bool   // dispatched to worker nodes, not the local pool
	workerID string // current lease holder while running
	attempts int    // lease expiries so far; > MaxRequeues dead-letters

	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time

	events []JobEvent
	wake   chan struct{} // closed and replaced on every event append
	done   chan struct{} // closed on terminal transition

	// ctl is the live-inspection controller while the job is running
	// (set by the runner callback, cleared on completion). Handlers
	// snapshot it under the server mutex and then talk to it directly —
	// the controller has its own synchronisation.
	ctl *inspect.Controller

	// Per-job /metrics scrape state: the event count and wall time of
	// the previous scrape, for the events-per-second gauge. Wall clock
	// is legal here — this is the serving layer, not the simulator.
	scrapeAt     int64 // unix milliseconds; 0 until first scrape
	scrapeEvents int64
}

// status snapshots the job for a response; the caller holds the server
// mutex. includeResult attaches the result payload for done jobs.
func (j *job) status(includeResult bool) JobStatus {
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		App:      j.spec.App,
		Protocol: j.identity.Protocol,
		Nodes:    j.identity.Arch.Nodes,
		Seed:     j.identity.Seed,
		Error:    j.errMsg,
		Requeues: j.attempts,
	}
	if j.state == StateRunning {
		st.Worker = j.workerID
	}
	if !j.startedAt.IsZero() {
		st.QueueMS = msBetween(j.queuedAt, j.startedAt)
	}
	if !j.finishedAt.IsZero() && !j.startedAt.IsZero() {
		st.RunMS = msBetween(j.startedAt, j.finishedAt)
	}
	if includeResult && j.state == StateDone {
		st.Result = j.result
	}
	return st
}

func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Nanoseconds()) / 1e6
}

package server

import (
	"fmt"
	"sync/atomic"

	"coma/internal/obs"
)

// teeObserver fans one event stream out to two observers (the metrics
// bridge and the receipt recorder); it adds one call per event and no
// allocations, honouring the Observer cost contract.
type teeObserver struct{ a, b obs.Observer }

// Emit implements obs.Observer.
func (t teeObserver) Emit(ev obs.Event) {
	t.a.Emit(ev)
	t.b.Emit(ev)
}

// progressBridge adapts the simulator's observability stream into the
// daemon's telemetry. Every event increments a per-kind counter exported
// on /metrics as coma_obs_events_total (one atomic add, no lock, so the
// hot path stays cheap). When publish is set (the job asked for
// progress streaming), the low-frequency lifecycle kinds (checkpoint
// rounds, commits, faults, rollbacks, reconfiguration) are additionally
// forwarded to the job's SSE event log; the per-reference hot-path
// kinds are dropped with a single switch.
//
// Events are stamped with simulated time only (the obswallclock
// analyzer enforces that no method of this type reads the wall clock);
// the wall-clock job timeline lives on the job itself.
type progressBridge struct {
	counts  *[obs.NumKinds]int64 // per-kind event tally, atomic
	publish func(msg string, simCycles int64)
}

// Emit implements obs.Observer.
func (b *progressBridge) Emit(e obs.Event) {
	if b.counts != nil && int(e.Kind) < len(b.counts) {
		atomic.AddInt64(&b.counts[e.Kind], 1)
	}
	if b.publish == nil {
		return
	}
	switch e.Kind {
	case obs.KRoundBegin:
		b.publish(fmt.Sprintf("%s round %d begin", roundMode(e.A), e.B), e.Time)
	case obs.KRoundQuiesced:
		b.publish(fmt.Sprintf("round %d quiesced", e.B), e.Time)
	case obs.KCommitted:
		b.publish(fmt.Sprintf("recovery point %d committed", e.B), e.Time)
	case obs.KRoundEnd:
		b.publish(fmt.Sprintf("%s round %d end", roundMode(e.A), e.B), e.Time)
	case obs.KFault:
		b.publish(fmt.Sprintf("node %d failed (%s)", e.Node, permanence(e.A)), e.Time)
	case obs.KRollback:
		b.publish(fmt.Sprintf("rollback on node %d: %d items dropped", e.Node, e.A), e.Time)
	case obs.KReconfig:
		b.publish(fmt.Sprintf("node %d reconfigured: %d copies re-created", e.Node, e.A), e.Time)
	case obs.KState, obs.KReadFill, obs.KWriteFill, obs.KInjectProbe,
		obs.KInjectAccept, obs.KPhaseBegin, obs.KPhaseEnd, obs.KQueueDepth,
		obs.KTxnBegin, obs.KTxnHop, obs.KTxnEnd:
		// Hot-path kinds: dropped.
	}
}

// NewProgressObserver builds the same lifecycle-filtering observer the
// daemon attaches to local runs, for use by worker nodes
// (internal/cluster): counts may be nil; publish receives one line per
// low-frequency lifecycle event, stamped with simulated cycles. Workers
// forward those lines over POST /v1/workers/{id}/progress so a
// cluster-dispatched job streams the same SSE narrative a local one
// would.
func NewProgressObserver(counts *[obs.NumKinds]int64, publish func(msg string, simCycles int64)) obs.Observer {
	return &progressBridge{counts: counts, publish: publish}
}

func roundMode(a int64) string {
	if a == 0 {
		return "checkpoint"
	}
	return "recovery"
}

func permanence(a int64) string {
	if a != 0 {
		return "permanent"
	}
	return "transient"
}

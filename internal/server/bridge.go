package server

import (
	"fmt"

	"coma/internal/obs"
)

// progressBridge adapts the simulator's observability stream into a
// job's SSE event log. It forwards only the low-frequency lifecycle
// kinds (checkpoint rounds, commits, faults, rollbacks, reconfiguration)
// and drops the per-reference hot-path kinds with a single switch, so a
// streamed job pays one cheap Emit call per protocol event and one
// allocation per forwarded line.
//
// Events are stamped with simulated time only (the obswallclock
// analyzer enforces that no method of this type reads the wall clock);
// the wall-clock job timeline lives on the job itself.
type progressBridge struct {
	publish func(msg string, simCycles int64)
}

// Emit implements obs.Observer.
func (b *progressBridge) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KRoundBegin:
		b.publish(fmt.Sprintf("%s round %d begin", roundMode(e.A), e.B), e.Time)
	case obs.KRoundQuiesced:
		b.publish(fmt.Sprintf("round %d quiesced", e.B), e.Time)
	case obs.KCommitted:
		b.publish(fmt.Sprintf("recovery point %d committed", e.B), e.Time)
	case obs.KRoundEnd:
		b.publish(fmt.Sprintf("%s round %d end", roundMode(e.A), e.B), e.Time)
	case obs.KFault:
		b.publish(fmt.Sprintf("node %d failed (%s)", e.Node, permanence(e.A)), e.Time)
	case obs.KRollback:
		b.publish(fmt.Sprintf("rollback on node %d: %d items dropped", e.Node, e.A), e.Time)
	case obs.KReconfig:
		b.publish(fmt.Sprintf("node %d reconfigured: %d copies re-created", e.Node, e.A), e.Time)
	case obs.KState, obs.KReadFill, obs.KWriteFill, obs.KInjectProbe,
		obs.KInjectAccept, obs.KPhaseBegin, obs.KPhaseEnd, obs.KQueueDepth:
		// Hot-path kinds: dropped.
	}
}

func roundMode(a int64) string {
	if a == 0 {
		return "checkpoint"
	}
	return "recovery"
}

func permanence(a int64) string {
	if a != 0 {
		return "permanent"
	}
	return "transient"
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"coma/internal/inspect"
	"coma/internal/proto"
)

// inspectController resolves {id} to a running job's live-inspection
// controller, answering 404/409 itself on failure.
func (s *Server) inspectController(w http.ResponseWriter, r *http.Request) (*job, *inspect.Controller) {
	j := s.lookup(w, r)
	if j == nil {
		return nil, nil
	}
	s.mu.Lock()
	ctl, state := j.ctl, j.state
	s.mu.Unlock()
	if ctl == nil {
		s.respondError(w, http.StatusConflict,
			fmt.Errorf("job is %s; inspection requires a running job", state))
		return nil, nil
	}
	return j, ctl
}

// handleInspect serves GET /v1/jobs/{id}/inspect?view=line|node|queues|summary.
// The query runs at the simulation's next safe point; the response is
// the view struct as JSON. view=line additionally needs addr= (byte
// address; 0x-prefixed hex accepted) or item= (item id).
func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	j, ctl := s.inspectController(w, r)
	if ctl == nil {
		return
	}
	view := r.URL.Query().Get("view")
	if view == "" {
		view = "summary"
	}
	var out any
	switch view {
	case "line":
		item, err := lineParam(r, j)
		if err != nil {
			s.respondError(w, http.StatusBadRequest, err)
			return
		}
		var lv inspect.LineView
		ctl.Query(func(src inspect.Source) { lv = src.InspectLine(item) })
		out = lv
	case "node":
		var nv []inspect.NodeView
		ctl.Query(func(src inspect.Source) { nv = src.InspectNodes() })
		out = nv
	case "queues":
		var qv inspect.QueuesView
		ctl.Query(func(src inspect.Source) { qv = src.InspectQueues() })
		out = qv
	case "summary":
		var sv inspect.SummaryView
		ctl.Query(func(src inspect.Source) { sv = src.InspectSummary() })
		sv.Finished = ctl.Finished()
		out = sv
	default:
		s.respondError(w, http.StatusBadRequest,
			fmt.Errorf("unknown view %q (want line, node, queues or summary)", view))
		return
	}
	s.respondJSON(w, http.StatusOK, out)
}

// lineParam resolves the inspected item from item= (item id) or addr=
// (byte address, divided by the job's item size).
func lineParam(r *http.Request, j *job) (proto.ItemID, error) {
	if v := r.URL.Query().Get("item"); v != "" {
		item, err := strconv.ParseInt(v, 0, 32)
		if err != nil || item < 0 {
			return 0, fmt.Errorf("bad item %q", v)
		}
		return proto.ItemID(item), nil
	}
	v := r.URL.Query().Get("addr")
	if v == "" {
		return 0, errors.New("view=line needs addr= (byte address) or item= (item id)")
	}
	addr, err := strconv.ParseUint(v, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad addr %q", v)
	}
	return proto.ItemID(addr / uint64(j.identity.Arch.ItemSize)), nil
}

// handleInspectStream serves GET /v1/jobs/{id}/inspect/stream: an SSE
// stream of sampled snapshots, replay-then-follow — the latest sample
// is sent immediately on connect, then each newer one as published,
// ending with the terminal sample when the run finishes. Disconnecting
// never perturbs the run: the stream only reads published samples.
func (s *Server) handleInspectStream(w http.ResponseWriter, r *http.Request) {
	_, ctl := s.inspectController(w, r)
	if ctl == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.respondError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.met.countHTTP(http.StatusOK)

	var last int64
	emit := func() bool {
		smp := ctl.Latest()
		if smp == nil || smp.Seq <= last {
			return true
		}
		data, err := json.Marshal(smp)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "id: %d\nevent: sample\ndata: %s\n\n", smp.Seq, data)
		flusher.Flush()
		last = smp.Seq
		return true
	}
	for {
		// Fetch the wake channel before reading the latest sample: a
		// sample published in between closes the fetched channel, so the
		// select below wakes immediately instead of missing it.
		wake := ctl.Wake()
		if !emit() {
			return
		}
		select {
		case <-wake:
		case <-ctl.Done():
			emit() // terminal sample (Summary.Finished = true)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// jobGauge is one running job's per-scrape metrics snapshot, read from
// its live-inspection sample. Wall-clock event rates are computed here,
// in the serving layer — simulator snapshots carry sim time only.
type jobGauge struct {
	id           string
	simCycles    int64
	events       int64
	eventsPerSec float64
	reqDepth     int64
	repDepth     int64
}

// jobGaugesLocked snapshots every running job's latest sample and
// computes events/s from the previous scrape. Caller holds s.mu.
func (s *Server) jobGaugesLocked(nowUnixMilli int64) []jobGauge {
	var out []jobGauge
	for _, key := range s.order {
		j := s.jobs[key]
		if j.ctl == nil {
			continue
		}
		smp := j.ctl.Latest()
		if smp == nil {
			continue
		}
		g := jobGauge{
			id:        shortID(j.id),
			simCycles: smp.Summary.SimCycles,
			events:    smp.Summary.Events,
			reqDepth:  smp.Queues.Request.Inflight,
			repDepth:  smp.Queues.Reply.Inflight,
		}
		if j.scrapeAt > 0 && nowUnixMilli > j.scrapeAt && g.events >= j.scrapeEvents {
			g.eventsPerSec = float64(g.events-j.scrapeEvents) /
				(float64(nowUnixMilli-j.scrapeAt) / 1e3)
		}
		j.scrapeAt, j.scrapeEvents = nowUnixMilli, g.events
		out = append(out, g)
	}
	return out
}

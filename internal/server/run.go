package server

import (
	"encoding/json"
	"fmt"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/machine"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/stats"
	"coma/internal/workload"
)

// Runner executes one run identity and returns its result. The daemon's
// production runner is SimRunner; tests substitute counting, slow or
// failing runners to drive the scheduler without simulating.
type Runner func(id config.RunIdentity, observer obs.Observer) (*stats.Run, error)

// SimRunner executes the identity on an in-process simulated machine —
// the exact inverse of JobSpec.Identity composed with the same
// machine.Config assembly the coma package and the experiment suite use.
func SimRunner(id config.RunIdentity, observer obs.Observer) (*stats.Run, error) {
	app, ok := workload.ByName(id.App)
	if !ok {
		return nil, fmt.Errorf("server: unknown app %q", id.App)
	}
	if id.Instructions > 0 && id.Instructions != app.Instructions {
		app = app.Scale(float64(id.Instructions) / float64(app.Instructions))
	}
	var protocol coherence.Protocol
	switch id.Protocol {
	case "standard":
		protocol = coherence.Standard
	case "ecp":
		protocol = coherence.ECP
	default:
		return nil, fmt.Errorf("server: unknown protocol %q", id.Protocol)
	}
	failures := make([]machine.FailurePlan, len(id.Failures))
	for i, f := range id.Failures {
		failures[i] = machine.FailurePlan{At: f.At, Node: proto.NodeID(f.Node), Permanent: f.Permanent}
	}
	maxCycles := id.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	m, err := machine.New(machine.Config{
		Arch:     id.Arch,
		Protocol: protocol,
		Opts: coherence.Options{
			NoReplicationReuse: id.NoReplicationReuse,
			NoSharedCKReads:    id.NoSharedCKReads,
		},
		App:                app,
		Seed:               id.Seed,
		CheckpointHz:       id.CheckpointHz,
		CheckpointInterval: id.CheckpointInterval,
		Failures:           failures,
		Oracle:             id.Oracle,
		Strict:             id.Strict,
		Invariants:         id.Invariants,
		MaxCycles:          maxCycles,
		Obs:                observer,
	})
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// marshalResult produces the canonical result payload: the stats.Run
// encoded as compact JSON. It is computed exactly once per run and
// stored; every response serves the stored bytes, which is what makes
// "byte-identical result payloads" a property of the API rather than of
// the JSON encoder.
func marshalResult(r *stats.Run) ([]byte, error) {
	return json.Marshal(r)
}

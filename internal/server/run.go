package server

import (
	"encoding/json"
	"fmt"

	"coma/internal/coherence"
	"coma/internal/config"
	"coma/internal/inspect"
	"coma/internal/machine"
	"coma/internal/obs"
	"coma/internal/proto"
	"coma/internal/stats"
	"coma/internal/workload"
)

// RunOptions carries the per-run attachments a Runner should honour.
// None of them influence the result: the observability layer is
// stats-neutral and the inspection layer answers queries at engine safe
// points, so an inspected run is byte-identical to an uninspected one.
type RunOptions struct {
	// Observer receives the run's observability events (nil: none).
	Observer obs.Observer
	// Inspect, when non-nil, is called with the run's live-inspection
	// controller before the simulation starts; the runner guarantees
	// Finish is called on the controller when the run ends, releasing
	// any blocked clients.
	Inspect func(*inspect.Controller)
	// SampleEvery is the inspection stream's sampling period in
	// simulated cycles (0: a sensible default).
	SampleEvery int64
}

// DefaultSampleEvery is the inspection sampling period used when
// RunOptions.SampleEvery is zero.
const DefaultSampleEvery = 25_000

// Runner executes one run identity and returns its result. The daemon's
// production runner is SimRunner; tests substitute counting, slow or
// failing runners to drive the scheduler without simulating.
type Runner func(id config.RunIdentity, opts RunOptions) (*stats.Run, error)

// BuildMachine assembles the simulated machine for one run identity —
// the exact inverse of JobSpec.Identity composed with the same
// machine.Config assembly the coma package and the experiment suite
// use. Shared by SimRunner and the comasim REPL.
func BuildMachine(id config.RunIdentity, observer obs.Observer) (*machine.Machine, error) {
	app, ok := workload.ByName(id.App)
	if !ok {
		return nil, fmt.Errorf("server: unknown app %q", id.App)
	}
	if id.Instructions > 0 && id.Instructions != app.Instructions {
		app = app.Scale(float64(id.Instructions) / float64(app.Instructions))
	}
	var protocol coherence.Protocol
	switch id.Protocol {
	case "standard":
		protocol = coherence.Standard
	case "ecp":
		protocol = coherence.ECP
	default:
		return nil, fmt.Errorf("server: unknown protocol %q", id.Protocol)
	}
	failures := make([]machine.FailurePlan, len(id.Failures))
	for i, f := range id.Failures {
		failures[i] = machine.FailurePlan{At: f.At, Node: proto.NodeID(f.Node), Permanent: f.Permanent}
	}
	maxCycles := id.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	return machine.New(machine.Config{
		Arch:     id.Arch,
		Protocol: protocol,
		Opts: coherence.Options{
			NoReplicationReuse: id.NoReplicationReuse,
			NoSharedCKReads:    id.NoSharedCKReads,
		},
		App:                app,
		Seed:               id.Seed,
		CheckpointHz:       id.CheckpointHz,
		CheckpointInterval: id.CheckpointInterval,
		Failures:           failures,
		Oracle:             id.Oracle,
		Strict:             id.Strict,
		Invariants:         id.Invariants,
		MaxCycles:          maxCycles,
		Obs:                observer,
	})
}

// SimRunner executes the identity on an in-process simulated machine.
func SimRunner(id config.RunIdentity, opts RunOptions) (*stats.Run, error) {
	m, err := BuildMachine(id, opts.Observer)
	if err != nil {
		return nil, err
	}
	if opts.Inspect != nil {
		sampleEvery := opts.SampleEvery
		if sampleEvery <= 0 {
			sampleEvery = DefaultSampleEvery
		}
		ctl := m.NewInspector(sampleEvery)
		// Finish releases paused/stepping/querying clients even when the
		// run errors out; without it a REPL or HTTP handler would block
		// on a safe point that never comes.
		defer ctl.Finish()
		opts.Inspect(ctl)
	}
	return m.Run()
}

// MarshalResult produces the canonical result payload: the stats.Run
// encoded as compact JSON. It is computed exactly once per run and
// stored; every response serves the stored bytes, which is what makes
// "byte-identical result payloads" a property of the API rather than of
// the JSON encoder. Worker nodes (internal/cluster) use the same
// function so a payload computed remotely is byte-for-byte the payload
// a local run would have stored.
func MarshalResult(r *stats.Run) ([]byte, error) {
	return json.Marshal(r)
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"coma/internal/obs"
)

// metrics is the daemon's hand-rolled Prometheus registry: a handful of
// counters, two gauges fed by the scheduler, and fixed-bucket latency
// histograms. Everything is guarded by one mutex — the hot path is a
// few increments per job, not per simulated event — and the exposition
// is the standard text format, so any Prometheus scraper can consume
// /metrics without the daemon importing a client library.
type metrics struct {
	mu sync.Mutex

	submitted  int64
	cacheHits  int64
	cacheJoins int64
	cacheMiss  int64
	jobsByEnd  map[State]int64 // terminal states only
	httpByCode map[int]int64
	// receipts counts execution receipts emitted or accepted, by
	// invariant verdict ("ok", "violated", "unchecked").
	receipts map[string]int64

	queueWait histogram // seconds queued before a worker picks the job up
	runTime   histogram // seconds simulating (done jobs)

	// obsEvents tallies every simulator observability event by kind,
	// across all jobs. Updated with atomic adds straight from the
	// progressBridge on the simulation hot path — deliberately outside
	// mu, which would be far too expensive per event.
	obsEvents [obs.NumKinds]int64
}

func newMetrics() *metrics {
	// Bucket bounds in seconds: cached hits resolve in microseconds,
	// quick jobs in tens of milliseconds, paper-scale runs in minutes.
	bounds := []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 25, 100, 500}
	return &metrics{
		jobsByEnd:  make(map[State]int64),
		httpByCode: make(map[int]int64),
		receipts:   make(map[string]int64),
		queueWait:  newHistogram(bounds),
		runTime:    newHistogram(bounds),
	}
}

func (m *metrics) countSubmission(cache string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
	switch cache {
	case "hit":
		m.cacheHits++
	case "join":
		m.cacheJoins++
	default:
		m.cacheMiss++
	}
}

func (m *metrics) countTerminal(st State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsByEnd[st]++
}

func (m *metrics) countHTTP(code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.httpByCode[code]++
}

func (m *metrics) countReceipt(verdict string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.receipts[verdict]++
}

func (m *metrics) observeQueueWait(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.observe(seconds)
}

func (m *metrics) observeRunTime(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runTime.observe(seconds)
}

// hitRatio returns cache hits (store + coalesced) over submissions.
func (m *metrics) hitRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.submitted == 0 {
		return 0
	}
	return float64(m.cacheHits+m.cacheJoins) / float64(m.submitted)
}

// write emits the Prometheus text exposition. Gauges owned by the
// scheduler (queue depth, in-flight, store size), the per-running-job
// inspection gauges, and the cluster scheduler snapshot are passed in.
func (m *metrics) write(w io.Writer, queueDepth, inflight, storeLen int, jobs []jobGauge, clu clusterStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP comad_queue_depth Jobs accepted but not yet picked up by a worker.\n")
	fmt.Fprintf(w, "# TYPE comad_queue_depth gauge\ncomad_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP comad_inflight_jobs Simulations executing right now.\n")
	fmt.Fprintf(w, "# TYPE comad_inflight_jobs gauge\ncomad_inflight_jobs %d\n", inflight)
	fmt.Fprintf(w, "# HELP comad_store_entries Results in the content-addressed store.\n")
	fmt.Fprintf(w, "# TYPE comad_store_entries gauge\ncomad_store_entries %d\n", storeLen)

	fmt.Fprintf(w, "# HELP comad_jobs_submitted_total Job submissions accepted.\n")
	fmt.Fprintf(w, "# TYPE comad_jobs_submitted_total counter\ncomad_jobs_submitted_total %d\n", m.submitted)
	fmt.Fprintf(w, "# HELP comad_cache_requests_total Submissions by cache outcome.\n")
	fmt.Fprintf(w, "# TYPE comad_cache_requests_total counter\n")
	fmt.Fprintf(w, "comad_cache_requests_total{outcome=\"hit\"} %d\n", m.cacheHits)
	fmt.Fprintf(w, "comad_cache_requests_total{outcome=\"join\"} %d\n", m.cacheJoins)
	fmt.Fprintf(w, "comad_cache_requests_total{outcome=\"miss\"} %d\n", m.cacheMiss)

	fmt.Fprintf(w, "# HELP comad_jobs_total Jobs by terminal state.\n")
	fmt.Fprintf(w, "# TYPE comad_jobs_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCancelled, StateDeadLetter} {
		fmt.Fprintf(w, "comad_jobs_total{state=%q} %d\n", string(st), m.jobsByEnd[st])
	}

	fmt.Fprintf(w, "# HELP coma_receipts_total Execution receipts emitted or accepted, by invariant verdict.\n")
	fmt.Fprintf(w, "# TYPE coma_receipts_total counter\n")
	for _, verdict := range []string{"ok", "violated", "unchecked"} {
		fmt.Fprintf(w, "coma_receipts_total{verdict=%q} %d\n", verdict, m.receipts[verdict])
	}

	// Cluster scheduler families: emitted unconditionally (zeros on a
	// single-process daemon) so scrapers see stable metadata.
	fmt.Fprintf(w, "# HELP coma_cluster_workers Registered worker nodes by state.\n")
	fmt.Fprintf(w, "# TYPE coma_cluster_workers gauge\n")
	fmt.Fprintf(w, "coma_cluster_workers{state=\"active\"} %d\n", clu.active)
	fmt.Fprintf(w, "coma_cluster_workers{state=\"dead\"} %d\n", clu.dead)
	fmt.Fprintf(w, "# HELP coma_cluster_lease_expiries_total Leases expired because their worker missed its liveness window.\n")
	fmt.Fprintf(w, "# TYPE coma_cluster_lease_expiries_total counter\ncoma_cluster_lease_expiries_total %d\n", clu.leaseExpiries)
	fmt.Fprintf(w, "# HELP coma_cluster_requeues_total Jobs returned to the dispatch queue (lease expiry or worker deregistration).\n")
	fmt.Fprintf(w, "# TYPE coma_cluster_requeues_total counter\ncoma_cluster_requeues_total %d\n", clu.requeues)
	fmt.Fprintf(w, "# HELP coma_cluster_steals_total Unstarted leases reassigned from a backlogged worker to an idle one.\n")
	fmt.Fprintf(w, "# TYPE coma_cluster_steals_total counter\ncoma_cluster_steals_total %d\n", clu.steals)
	fmt.Fprintf(w, "# HELP coma_cluster_digest_mismatches_total Worker completions rejected because the payload failed validation or its receipt digest.\n")
	fmt.Fprintf(w, "# TYPE coma_cluster_digest_mismatches_total counter\ncoma_cluster_digest_mismatches_total %d\n", clu.digestMismatches)

	fmt.Fprintf(w, "# HELP comad_http_responses_total HTTP responses by status code.\n")
	fmt.Fprintf(w, "# TYPE comad_http_responses_total counter\n")
	codes := make([]int, 0, len(m.httpByCode))
	for code := range m.httpByCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "comad_http_responses_total{code=\"%d\"} %d\n", code, m.httpByCode[code])
	}

	fmt.Fprintf(w, "# HELP coma_obs_events_total Simulator observability events by kind, across all jobs.\n")
	fmt.Fprintf(w, "# TYPE coma_obs_events_total counter\n")
	for k := 0; k < obs.NumKinds; k++ {
		fmt.Fprintf(w, "coma_obs_events_total{kind=%q} %d\n",
			obs.Kind(k).String(), atomic.LoadInt64(&m.obsEvents[k]))
	}

	// Per-running-job gauges, sampled from each job's live-inspection
	// controller at scrape time. Families are emitted even with no
	// running jobs so scrapers see stable metadata.
	fmt.Fprintf(w, "# HELP coma_job_sim_cycles Simulated cycles reached by each running job.\n")
	fmt.Fprintf(w, "# TYPE coma_job_sim_cycles gauge\n")
	for _, g := range jobs {
		fmt.Fprintf(w, "coma_job_sim_cycles{job=%q} %d\n", g.id, g.simCycles)
	}
	fmt.Fprintf(w, "# HELP coma_job_events Simulator events dispatched by each running job.\n")
	fmt.Fprintf(w, "# TYPE coma_job_events gauge\n")
	for _, g := range jobs {
		fmt.Fprintf(w, "coma_job_events{job=%q} %d\n", g.id, g.events)
	}
	fmt.Fprintf(w, "# HELP coma_job_events_per_second Event dispatch rate since the previous scrape (wall clock).\n")
	fmt.Fprintf(w, "# TYPE coma_job_events_per_second gauge\n")
	for _, g := range jobs {
		fmt.Fprintf(w, "coma_job_events_per_second{job=%q} %g\n", g.id, g.eventsPerSec)
	}
	fmt.Fprintf(w, "# HELP coma_queue_depth In-flight mesh messages per subnet for each running job.\n")
	fmt.Fprintf(w, "# TYPE coma_queue_depth gauge\n")
	for _, g := range jobs {
		fmt.Fprintf(w, "coma_queue_depth{job=%q,subnet=\"request\"} %d\n", g.id, g.reqDepth)
		fmt.Fprintf(w, "coma_queue_depth{job=%q,subnet=\"reply\"} %d\n", g.id, g.repDepth)
	}

	m.queueWait.write(w, "comad_queue_wait_seconds", "Wall seconds jobs spent queued.")
	m.runTime.write(w, "comad_job_run_seconds", "Wall seconds jobs spent simulating.")
}

// histogram is a fixed-bucket Prometheus-style histogram; the caller
// synchronises.
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []int64   // len(bounds)+1
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}

package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is the content-addressed result store: canonical result payload
// bytes keyed by config.RunIdentity hash. Lookups are O(1) in memory;
// with a directory configured, payloads are written through to one file
// per key (<hash>.json, atomic temp+rename) and read back on a memory
// miss, so a restarted daemon serves its old results as cache hits.
//
// Entries are immutable: a key is the hash of everything that determines
// the payload (including the code revision), so a Put never changes an
// existing entry's meaning and the store needs no invalidation.
type Store struct {
	mu  sync.Mutex
	mem map[string][]byte
	// aux holds auxiliary artifacts stored beside a result (execution
	// receipts, observability traces), keyed "<hash>.<kind>". They are
	// content-derived like the results they annotate, so the same
	// immutability argument applies. Not counted by Len.
	aux map[string][]byte
	dir string // "" disables persistence
}

// Auxiliary artifact kinds stored beside a result (the file suffix on
// disk: "<hash>.<kind>").
const (
	AuxReceipt = "receipt.json"
	AuxTrace   = "trace.jsonl"
)

// NewStore returns a store, creating the persistence directory if one
// is given.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	return &Store{mem: make(map[string][]byte), aux: make(map[string][]byte), dir: dir}, nil
}

// Get returns the payload stored under key, consulting the persistence
// directory on a memory miss.
func (st *Store) Get(key string) ([]byte, bool) {
	st.mu.Lock()
	payload, ok := st.mem[key]
	st.mu.Unlock()
	if ok {
		return payload, true
	}
	if st.dir == "" || !validKey(key) {
		return nil, false
	}
	payload, err := os.ReadFile(filepath.Join(st.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	st.mu.Lock()
	st.mem[key] = payload
	st.mu.Unlock()
	return payload, true
}

// Put stores a payload. The memory copy always succeeds; a persistence
// error is returned for logging but does not un-store the entry.
func (st *Store) Put(key string, payload []byte) error {
	st.mu.Lock()
	st.mem[key] = payload
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("server: refusing to persist invalid key %q", key)
	}
	tmp, err := os.CreateTemp(st.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(st.dir, key+".json"))
}

// GetAux returns an auxiliary artifact stored beside key, consulting
// the persistence directory on a memory miss.
func (st *Store) GetAux(key, kind string) ([]byte, bool) {
	name := key + "." + kind
	st.mu.Lock()
	payload, ok := st.aux[name]
	st.mu.Unlock()
	if ok {
		return payload, true
	}
	if st.dir == "" || !validKey(key) || !validAuxKind(kind) {
		return nil, false
	}
	payload, err := os.ReadFile(filepath.Join(st.dir, name))
	if err != nil {
		return nil, false
	}
	st.mu.Lock()
	st.aux[name] = payload
	st.mu.Unlock()
	return payload, true
}

// PutAux stores an auxiliary artifact beside key, with the same
// semantics as Put (memory always, write-through when persistent).
func (st *Store) PutAux(key, kind string, payload []byte) error {
	if !validAuxKind(kind) {
		return fmt.Errorf("server: unknown aux kind %q", kind)
	}
	name := key + "." + kind
	st.mu.Lock()
	st.aux[name] = payload
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("server: refusing to persist invalid key %q", key)
	}
	tmp, err := os.CreateTemp(st.dir, "."+name+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(st.dir, name))
}

func validAuxKind(kind string) bool {
	return kind == AuxReceipt || kind == AuxTrace
}

// Len returns the number of in-memory entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.mem)
}

// validKey accepts exactly the lowercase-hex shape RunIdentity.Hash
// produces, keeping arbitrary request strings out of filesystem paths.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	return strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/stats"
)

// TestConcurrentIdenticalSubmissionsRunOnce is the coalescing acceptance
// test: 32 goroutines submit the same configuration simultaneously and
// exactly one simulation executes; all 32 responses carry byte-identical
// result payloads. Run under -race, this also shakes out scheduler data
// races between admit, execute and the waiters.
func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce sync.Once
	_, ts := newTestServer(t, Options{
		Workers: 4, QueueDepth: 64,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			runs.Add(1)
			startOnce.Do(func() { close(started) })
			<-release // hold the run so every submission arrives in-flight
			return fakeRun(id), nil
		},
	})

	const clients = 32
	bodies := make([][]byte, clients)
	caches := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
				strings.NewReader(specJSON(99)))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			var st JobStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Errorf("client %d: decoding %q: %v", i, raw, err)
				return
			}
			if st.State != StateDone {
				t.Errorf("client %d: state %s, want done", i, st.State)
			}
			bodies[i] = st.Result
			caches[i] = st.Cache
		}(i)
	}

	// Release the (single) run once it has started and every client has
	// had a chance to pile on; the exact interleaving doesn't matter for
	// the run count — identical identities coalesce whether they arrive
	// before, during or after the leader's execution.
	<-started
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical submissions, want 1", got, clients)
	}
	misses := 0
	for i, c := range caches {
		if c == "miss" {
			misses++
		}
		if len(bodies[i]) == 0 {
			t.Fatalf("client %d: empty result payload", i)
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d: payload differs from client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if misses != 1 {
		t.Fatalf("%d cache misses, want exactly 1 (the leader)", misses)
	}
}

// TestDistinctSeedsDoNotCoalesce guards the inverse property: any field
// in the run identity separates jobs.
func TestDistinctSeedsDoNotCoalesce(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Options{Workers: 4, Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
		runs.Add(1)
		return fakeRun(id), nil
	}})
	var wg sync.WaitGroup
	for seed := uint64(1); seed <= 8; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json",
				strings.NewReader(specJSON(seed)))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}(seed)
	}
	wg.Wait()
	if got := runs.Load(); got != 8 {
		t.Fatalf("runner executed %d times for 8 distinct seeds, want 8", got)
	}
}

// TestPersistentStoreServesAcrossRestart: a second daemon instance with
// the same cache directory and revision answers a repeated submission
// from the store without running anything.
func TestPersistentStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	runner := func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
		runs.Add(1)
		return fakeRun(id), nil
	}

	_, ts1 := newTestServer(t, Options{Workers: 1, CacheDir: dir, Revision: "r1", Runner: runner})
	_, first := postJob(t, ts1, specJSON(5), true)
	if first.State != StateDone || first.Cache != "miss" {
		t.Fatalf("first run: state %s cache %s, want done/miss", first.State, first.Cache)
	}

	_, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: dir, Revision: "r1", Runner: runner})
	resp, second := postJob(t, ts2, specJSON(5), false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart hit: status %d, want 200", resp.StatusCode)
	}
	if second.Cache != "hit" || second.State != StateDone {
		t.Fatalf("restart: cache %s state %s, want hit/done", second.Cache, second.State)
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("restart served different bytes than the original run")
	}
	if runs.Load() != 1 {
		t.Fatalf("runner executed %d times across restart, want 1", runs.Load())
	}

	// A different revision must not see the old entry.
	_, ts3 := newTestServer(t, Options{Workers: 1, CacheDir: dir, Revision: "r2", Runner: runner})
	_, third := postJob(t, ts3, specJSON(5), true)
	if third.Cache != "miss" {
		t.Fatalf("new revision: cache %s, want miss", third.Cache)
	}
	if runs.Load() != 2 {
		t.Fatalf("runner executed %d times, want 2 after revision change", runs.Load())
	}
}

package client

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/server"
	"coma/internal/stats"
)

func testDaemon(t *testing.T, opts server.Options) (*server.Server, *Client) {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, New(ts.URL)
}

func spec(seed uint64) server.JobSpec {
	return server.JobSpec{App: "mp3d", Nodes: 2, Protocol: "ecp", Seed: seed}
}

func TestRunDecodesResult(t *testing.T) {
	_, c := testDaemon(t, server.Options{Workers: 1, Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
		return &stats.Run{Cycles: 777, Protocol: id.Protocol, Nodes: id.Arch.Nodes}, nil
	}})
	run, st, err := c.Run(context.Background(), spec(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Cycles != 777 || run.Nodes != 2 || run.Protocol != "ecp" {
		t.Fatalf("decoded run = %+v", run)
	}
	if st.Cache != "miss" {
		t.Fatalf("cache = %q, want miss", st.Cache)
	}
	if _, st2, err := c.Run(context.Background(), spec(1)); err != nil || st2.Cache != "hit" {
		t.Fatalf("repeat: cache=%q err=%v, want hit/nil", st2.Cache, err)
	}
}

func TestRunSurfacesFailure(t *testing.T) {
	_, c := testDaemon(t, server.Options{Workers: 1, Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
		return nil, context.DeadlineExceeded
	}})
	_, st, err := c.Run(context.Background(), spec(1))
	if err == nil {
		t.Fatal("Run on a failing job returned nil error")
	}
	if st.State != server.StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
}

func TestRunStreamingForwardsEvents(t *testing.T) {
	_, c := testDaemon(t, server.Options{Workers: 1, Runner: func(id config.RunIdentity, opts server.RunOptions) (*stats.Run, error) {
		opts.Observer.Emit(obs.Event{Kind: obs.KCommitted, Time: 42, B: 1})
		return &stats.Run{Cycles: 1}, nil
	}})
	var events []server.JobEvent
	run, st, err := c.RunStreaming(context.Background(), spec(1), func(ev server.JobEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatalf("RunStreaming: %v", err)
	}
	if run.Cycles != 1 || st.State != server.StateDone {
		t.Fatalf("run=%+v state=%s", run, st.State)
	}
	var sawProgress, sawDone bool
	for _, ev := range events {
		if ev.Type == "progress" && ev.SimCycles == 42 {
			sawProgress = true
		}
		if ev.Type == "state" && ev.State == server.StateDone {
			sawDone = true
		}
	}
	if !sawProgress || !sawDone {
		t.Fatalf("events %+v missing progress or done", events)
	}
}

func TestSubmitRetriesAfter429(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	_, c := testDaemon(t, server.Options{
		Workers: 1, QueueDepth: 1,
		Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
			runs.Add(1)
			<-gate
			return &stats.Run{Cycles: 9}, nil
		},
	})
	ctx := context.Background()

	// Fill the worker and the queue.
	first, err := c.Submit(ctx, spec(1), false)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, server.StateRunning)
	if _, err := c.Submit(ctx, spec(2), false); err != nil {
		t.Fatal(err)
	}

	// The third submission bounces off the full queue; release the gate
	// shortly after so the client's Retry-After loop succeeds.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Run(ctx, spec(3))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Run after 429: %v", err)
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("runner executed %d times, want 3", got)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, c := testDaemon(t, server.Options{Workers: 3, Revision: "abc", Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
		return &stats.Run{}, nil
	}})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.Revision != "abc" {
		t.Fatalf("health = %+v", h)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty metrics exposition")
	}
}

func TestResultMatchesInlinePayload(t *testing.T) {
	_, c := testDaemon(t, server.Options{Workers: 1, Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
		return &stats.Run{Cycles: 5}, nil
	}})
	_, st, err := c.Run(context.Background(), spec(4))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(st.Result) {
		t.Fatalf("raw result differs from inline payload")
	}
}

func waitState(t *testing.T, c *Client, id string, want server.State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"coma/internal/server"
)

// Worker-node API: the typed surface of the coordinator's lease
// protocol (internal/server/cluster.go), used by the internal/cluster
// agent. Like the job API, all calls are synchronous and bounded by the
// caller's context.

// RegisterWorker registers a worker node with a cluster coordinator and
// returns the assigned identity plus lease terms.
func (c *Client) RegisterWorker(ctx context.Context, req server.RegisterRequest) (server.RegisterResponse, error) {
	var resp server.RegisterResponse
	err := c.postJSON(ctx, "/v1/workers", req, &resp)
	return resp, err
}

// LeaseJobs asks the coordinator for work. With req.WaitMS set the call
// long-polls: the coordinator holds it until work arrives or the wait
// expires. A 410 (IsGone) means the coordinator no longer knows this
// worker — re-register.
func (c *Client) LeaseJobs(ctx context.Context, workerID string, req server.LeaseRequest) (server.LeaseResponse, error) {
	var resp server.LeaseResponse
	err := c.postJSON(ctx, "/v1/workers/"+workerID+"/lease", req, &resp)
	return resp, err
}

// Heartbeat renews the worker's leases and reports which of them have
// started executing; the response carries revocations of stolen jobs.
func (c *Client) Heartbeat(ctx context.Context, workerID string, req server.HeartbeatRequest) (server.HeartbeatResponse, error) {
	var resp server.HeartbeatResponse
	err := c.postJSON(ctx, "/v1/workers/"+workerID+"/heartbeat", req, &resp)
	return resp, err
}

// CompleteJob delivers one leased job's outcome: canonical result bytes
// (server.MarshalResult) on success, the simulation error otherwise.
func (c *Client) CompleteJob(ctx context.Context, workerID string, req server.CompleteRequest) error {
	return c.postJSON(ctx, "/v1/workers/"+workerID+"/complete", req, nil)
}

// PostProgress forwards a batch of progress events for SSE re-broadcast
// on the job's event stream.
func (c *Client) PostProgress(ctx context.Context, workerID string, req server.ProgressRequest) error {
	return c.postJSON(ctx, "/v1/workers/"+workerID+"/progress", req, nil)
}

// DeregisterWorker announces a graceful departure; the coordinator
// requeues the worker's leases without counting an attempt.
func (c *Client) DeregisterWorker(ctx context.Context, workerID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/workers/"+workerID, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// Workers lists the coordinator's registered worker nodes and the
// number of jobs still waiting in the cluster queue.
func (c *Client) Workers(ctx context.Context) ([]server.WorkerStatus, int, error) {
	var resp struct {
		Workers []server.WorkerStatus `json:"workers"`
		Queued  int                   `json:"queued"`
	}
	err := c.getJSON(ctx, "/v1/workers", &resp)
	return resp.Workers, resp.Queued, err
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

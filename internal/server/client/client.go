// Package client is the typed Go client for the comad daemon
// (internal/server): submit jobs, wait for or stream their progress,
// and fetch canonical result payloads. The comasim and comabench
// -remote modes are built on it.
//
// All methods are synchronous — the client spawns no goroutines; the
// only blocking it does is HTTP I/O and the backoff sleep on a 429,
// both bounded by the caller's context.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"coma/internal/server"
	"coma/internal/stats"
)

// Client talks to one comad daemon.
type Client struct {
	base    string
	hc      *http.Client
	backoff *Backoff
}

// New returns a client for the daemon at base (e.g. "http://localhost:7700").
// The underlying http.Client has no timeout — simulations can run for
// minutes; bound calls with a context instead. Retry jitter is seeded
// from the base URL, so a given client's schedule is reproducible but
// clients of different daemons (or tests with distinct httptest ports)
// de-correlate.
func New(base string) *Client {
	h := fnv.New64a()
	h.Write([]byte(base))
	return NewSeeded(base, h.Sum64())
}

// NewSeeded is New with an explicit retry-jitter seed, for tests and
// fleets that want per-instance de-correlation beyond the URL.
func NewSeeded(base string, seed uint64) *Client {
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		backoff: NewBackoff(seed),
	}
}

// StatusCode extracts the HTTP status from a daemon error (0 when err
// is not an API error — e.g. a transport failure).
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// IsGone reports whether err is the daemon saying a resource no longer
// exists (HTTP 410) — for workers, the signal to re-register.
func IsGone(err error) bool { return StatusCode(err) == http.StatusGone }

// apiError is a non-2xx response decoded from the daemon's error body.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("comad: %d: %s", e.Status, e.Msg)
}

func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(raw, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	return &apiError{Status: resp.StatusCode, Msg: body.Error}
}

// Submit posts a job. With wait, the call blocks until the job is
// terminal and the returned status carries the result payload. A 429 is
// retried with capped exponential backoff (deterministic jitter,
// Retry-After as a floor) until ctx expires.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec, wait bool) (server.JobStatus, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return server.JobStatus{}, err
	}
	url := c.base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return server.JobStatus{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return server.JobStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := c.backoff.Next(retryAfter(resp))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return server.JobStatus{}, ctx.Err()
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return server.JobStatus{}, decodeError(resp)
		}
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return server.JobStatus{}, fmt.Errorf("comad: decoding job status: %w", err)
		}
		c.backoff.Reset()
		return st, nil
	}
}

// retryAfter extracts the daemon's Retry-After hint (0 if absent) — the
// backoff floor, not the delay itself.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// Run submits, waits, and decodes the result: the blocking "give me the
// statistics for this configuration" call. The returned status carries
// the cache outcome and the raw payload.
func (c *Client) Run(ctx context.Context, spec server.JobSpec) (*stats.Run, server.JobStatus, error) {
	st, err := c.Submit(ctx, spec, true)
	if err != nil {
		return nil, st, err
	}
	run, err := decodeResult(st)
	return run, st, err
}

// RunStreaming submits asynchronously, forwards every job event to
// onEvent as it happens, and returns the decoded result once the job is
// terminal. A submission that resolves from the cache skips straight to
// the result.
func (c *Client) RunStreaming(ctx context.Context, spec server.JobSpec, onEvent func(server.JobEvent)) (*stats.Run, server.JobStatus, error) {
	spec.Progress = true
	st, err := c.Submit(ctx, spec, false)
	if err != nil {
		return nil, st, err
	}
	if !st.State.Terminal() {
		if err := c.Follow(ctx, st.ID, onEvent); err != nil {
			return nil, st, err
		}
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		return nil, st, err
	}
	final.Cache = st.Cache
	run, err := decodeResult(final)
	return run, final, err
}

func decodeResult(st server.JobStatus) (*stats.Run, error) {
	if st.State != server.StateDone {
		msg := st.Error
		if msg == "" {
			msg = "no result"
		}
		return nil, fmt.Errorf("comad: job %s is %s: %s", shortID(st.ID), st.State, msg)
	}
	var run stats.Run
	if err := json.Unmarshal(st.Result, &run); err != nil {
		return nil, fmt.Errorf("comad: decoding result payload: %w", err)
	}
	return &run, nil
}

// Status fetches a job; terminal done jobs include the result payload.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Result fetches the raw canonical result payload.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	return c.getRaw(ctx, "/v1/jobs/"+id+"/result")
}

// Receipt fetches a done job's execution receipt: the canonical
// coma-receipt/v1 JSON attesting the run (verify offline with
// `comatrace attest`).
func (c *Client) Receipt(ctx context.Context, id string) ([]byte, error) {
	return c.getRaw(ctx, "/v1/jobs/"+id+"/receipt")
}

// Trace fetches the JSONL observability trace recorded for a done job,
// when the daemon executed it locally and kept one.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	return c.getRaw(ctx, "/v1/jobs/"+id+"/trace")
}

// getRaw fetches a sub-resource as uninterpreted bytes.
func (c *Client) getRaw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel cancels a queued job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, decodeError(resp)
	}
	var st server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Follow subscribes to a job's SSE stream and forwards each event to fn,
// returning when the job reaches a terminal state (the daemon closes the
// stream after the final state event) or ctx expires.
func (c *Client) Follow(ctx context.Context, id string, fn func(server.JobEvent)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		data, ok := strings.CutPrefix(scanner.Text(), "data: ")
		if !ok {
			continue // id:, event:, blank separators
		}
		var ev server.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("comad: bad event frame %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
	}
	return scanner.Err()
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var h server.Health
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches the raw Prometheus exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

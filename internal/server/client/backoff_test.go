package client

import (
	"testing"
	"time"
)

// Delays must double from Base toward Cap and every delay must land in
// the jitter window [pre/2, pre) of its pre-jitter value — and the whole
// sequence must be reproducible from the seed.
func TestBackoffSequenceDeterministicAndBounded(t *testing.T) {
	pre := []time.Duration{ // pre-jitter schedule for Base=100ms, Cap=5s
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second, // stays capped
	}
	a := NewBackoff(42)
	b := NewBackoff(42)
	for i, p := range pre {
		da := a.Next(0)
		db := b.Next(0)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < p/2 || da >= p {
			t.Fatalf("attempt %d: delay %v outside jitter window [%v, %v)", i, da, p/2, p)
		}
	}
}

func TestBackoffSeedsDiverge(t *testing.T) {
	a, b := NewBackoff(1), NewBackoff(2)
	same := 0
	for i := 0; i < 8; i++ {
		if a.Next(0) == b.Next(0) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// A Retry-After floor above the jittered delay wins; below it, the
// jittered delay stands.
func TestBackoffFloor(t *testing.T) {
	b := NewBackoff(7)
	if d := b.Next(2 * time.Second); d != 2*time.Second {
		t.Fatalf("floor ignored: got %v, want 2s", d)
	}
	b.Reset()
	if d := b.Next(time.Nanosecond); d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Fatalf("tiny floor distorted jitter: got %v", d)
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(9)
	for i := 0; i < 5; i++ {
		b.Next(0)
	}
	b.Reset()
	if d := b.Next(0); d >= 100*time.Millisecond {
		t.Fatalf("after Reset, delay should restart at Base: got %v", d)
	}
}

package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"coma/internal/inspect"
	"coma/internal/server"
)

// JobList is the decoded body of GET /v1/jobs.
type JobList struct {
	Jobs    []server.JobStatus `json:"jobs"`
	Queued  int                `json:"queued"`
	Running int                `json:"running"`
}

// Jobs lists every job the daemon knows about, in submission order.
// comatop uses it to discover a running job to attach to.
func (c *Client) Jobs(ctx context.Context) (JobList, error) {
	var list JobList
	err := c.getJSON(ctx, "/v1/jobs", &list)
	return list, err
}

// Inspect queries one view of a running job's live state. view is
// "summary", "node", "queues" or "line"; for "line", params carries the
// item= or addr= selector (nil otherwise). The raw JSON is returned so
// callers can decode into the matching inspect view type.
func (c *Client) Inspect(ctx context.Context, id, view string, params url.Values) (json.RawMessage, error) {
	q := url.Values{}
	for k, vs := range params {
		q[k] = vs
	}
	if view != "" {
		q.Set("view", view)
	}
	path := "/v1/jobs/" + id + "/inspect"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var raw json.RawMessage
	err := c.getJSON(ctx, path, &raw)
	return raw, err
}

// InspectSummary queries the typed summary view.
func (c *Client) InspectSummary(ctx context.Context, id string) (inspect.SummaryView, error) {
	var sv inspect.SummaryView
	err := c.getJSON(ctx, "/v1/jobs/"+id+"/inspect?view=summary", &sv)
	return sv, err
}

// InspectStream subscribes to a running job's sampled-snapshot SSE
// stream, forwarding each sample to fn. fn returning false detaches
// (never perturbing the run). InspectStream returns nil when the stream
// ends with the terminal sample, fn detaches, or ctx expires after at
// least one sample; it returns an error if the job was never streamable.
func (c *Client) InspectStream(ctx context.Context, id string, fn func(inspect.Sample) bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/inspect/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	seen := false
	for scanner.Scan() {
		data, ok := strings.CutPrefix(scanner.Text(), "data: ")
		if !ok {
			continue // id:, event:, blank separators
		}
		var smp inspect.Sample
		if err := json.Unmarshal([]byte(data), &smp); err != nil {
			return fmt.Errorf("comad: bad sample frame %q: %w", data, err)
		}
		seen = true
		if fn != nil && !fn(smp) {
			return nil
		}
	}
	if err := scanner.Err(); err != nil && !(seen && ctx.Err() != nil) {
		return err
	}
	return nil
}

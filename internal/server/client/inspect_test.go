package client

import (
	"context"
	"encoding/json"
	"net/url"
	"testing"

	"coma/internal/config"
	"coma/internal/inspect"
	"coma/internal/server"
	"coma/internal/stats"
)

// TestInspectMethods drives the typed inspection client against a real
// (scaled-down) simulation: list jobs, query views while paused, then
// follow the sample stream to the terminal sample.
func TestInspectMethods(t *testing.T) {
	ctlCh := make(chan *inspect.Controller, 1)
	runner := func(id config.RunIdentity, opts server.RunOptions) (*stats.Run, error) {
		inner := opts.Inspect
		opts.Inspect = func(ctl *inspect.Controller) {
			if inner != nil {
				inner(ctl)
			}
			ctlCh <- ctl
		}
		return server.SimRunner(id, opts)
	}
	_, c := testDaemon(t, server.Options{Workers: 1, Runner: runner})
	ctx := context.Background()

	sp := spec(9)
	sp.Scale = 0.05
	st, err := c.Submit(ctx, sp, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctl := <-ctlCh
	ctl.Pause()

	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(list.Jobs) != 1 || list.Running != 1 {
		t.Errorf("Jobs = %d jobs, %d running; want 1, 1", len(list.Jobs), list.Running)
	}

	sum, err := c.InspectSummary(ctx, st.ID)
	if err != nil {
		t.Fatalf("InspectSummary: %v", err)
	}
	if sum.Nodes != 2 || sum.Finished {
		t.Errorf("summary = %+v, want 2 nodes, not finished", sum)
	}

	raw, err := c.Inspect(ctx, st.ID, "line", url.Values{"item": {"3"}})
	if err != nil {
		t.Fatalf("Inspect line: %v", err)
	}
	var lv inspect.LineView
	if err := json.Unmarshal(raw, &lv); err != nil {
		t.Fatalf("decoding line view: %v", err)
	}
	if lv.Item != 3 {
		t.Errorf("line item = %d, want 3", lv.Item)
	}

	ctl.Resume()
	var last inspect.Sample
	if err := c.InspectStream(ctx, st.ID, func(s inspect.Sample) bool {
		last = s
		return true
	}); err != nil {
		t.Fatalf("InspectStream: %v", err)
	}
	if !last.Summary.Finished || last.Seq == 0 {
		t.Errorf("stream's last sample = seq %d finished %v, want terminal",
			last.Seq, last.Summary.Finished)
	}
}

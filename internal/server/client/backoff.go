package client

import (
	"sync"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. Each call to Next doubles the base delay up to Cap and then
// jitters it into [d/2, d) using a splitmix64 stream seeded at
// construction — deterministic, so tests can assert exact delay
// sequences, yet de-synchronised across clients (each seed yields a
// different stream, so a fleet of workers hammered by the same 429 does
// not retry in lockstep).
//
// A floor passed to Next (the daemon's Retry-After hint) lower-bounds
// the jittered delay: the server's explicit hint is authoritative about
// "not sooner than", the jitter only spreads callers out beyond it.
type Backoff struct {
	// Base is the pre-jitter delay of the first attempt (0: 100ms).
	Base time.Duration
	// Cap bounds the pre-jitter delay (0: 5s).
	Cap time.Duration

	mu      sync.Mutex
	attempt int
	rng     uint64
}

// NewBackoff returns a Backoff with default Base/Cap whose jitter
// stream is seeded with seed.
func NewBackoff(seed uint64) *Backoff {
	return &Backoff{rng: seed}
}

// splitmix64 advances the jitter stream: tiny, allocation-free, and
// plenty for de-correlating retry schedules.
func (b *Backoff) next64() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next returns the delay before the next retry and advances the
// schedule. floor (typically a Retry-After hint; 0 for none)
// lower-bounds the result.
func (b *Backoff) Next(floor time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base << b.attempt
	if d > cap || d <= 0 { // <= 0: shift overflow
		d = cap
	} else {
		b.attempt++
	}
	// Jitter into [d/2, d).
	half := d / 2
	d = half + time.Duration(b.next64()%uint64(half))
	if d < floor {
		d = floor
	}
	return d
}

// Reset rewinds the schedule to the first attempt after a success. The
// jitter stream is not rewound — replaying identical delays after every
// success would re-synchronise a fleet.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

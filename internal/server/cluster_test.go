package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ---- raw-HTTP worker helpers (the typed client lives in a package
// that imports this one, so tests speak the wire format directly) ----

func workerPost(t *testing.T, ts *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, raw, err)
		}
	}
	return resp
}

func registerWorker(t *testing.T, ts *httptest.Server, name string, slots int) string {
	t.Helper()
	var reg RegisterResponse
	resp := workerPost(t, ts, "/v1/workers", RegisterRequest{Name: name, Slots: slots}, &reg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", name, resp.StatusCode)
	}
	return reg.WorkerID
}

func leaseJobs(t *testing.T, ts *httptest.Server, workerID string, max int) LeaseResponse {
	t.Helper()
	var lr LeaseResponse
	resp := workerPost(t, ts, "/v1/workers/"+workerID+"/lease", LeaseRequest{Max: max}, &lr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease as %s: status %d", workerID, resp.StatusCode)
	}
	return lr
}

func heartbeat(t *testing.T, ts *httptest.Server, workerID string, running []string) HeartbeatResponse {
	t.Helper()
	var hr HeartbeatResponse
	resp := workerPost(t, ts, "/v1/workers/"+workerID+"/heartbeat", HeartbeatRequest{Running: running}, &hr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat as %s: status %d", workerID, resp.StatusCode)
	}
	return hr
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

// parseExposition parses Prometheus text format into sample → value,
// failing the test on any malformed line — the scrape-parse check.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

func jobStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterLeaseExpiryRequeuesByteIdentical is the core
// fault-tolerance scenario end to end: a worker leases a job and goes
// silent; the lease expires; a second worker leases the requeued job
// (attempt counter bumped) and completes it; the stored payload is
// byte-for-byte what the fake worker computed — and the zombie's late
// duplicate completion is accepted as a no-op.
func TestClusterLeaseExpiryRequeuesByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Cluster:  true,
		LeaseTTL: 150 * time.Millisecond,
		Revision: "test-rev",
	})

	victim := registerWorker(t, ts, "victim", 1)
	resp, st := postJob(t, ts, `{"app":"mp3d","nodes":2,"protocol":"ecp","seed":7,"progress":true}`, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}

	lr := leaseJobs(t, ts, victim, 1)
	if len(lr.Jobs) != 1 || lr.Jobs[0].JobID != st.ID {
		t.Fatalf("victim lease = %+v, want job %s", lr, st.ID)
	}
	if lr.Jobs[0].Attempt != 0 {
		t.Fatalf("first lease Attempt = %d, want 0", lr.Jobs[0].Attempt)
	}
	if got := jobStatus(t, ts, st.ID); got.State != StateRunning || got.Worker != victim {
		t.Fatalf("after lease: state=%s worker=%q, want running on %s", got.State, got.Worker, victim)
	}

	// The victim goes silent past its liveness window; the next scrape's
	// lazy sweep declares it dead and requeues the job.
	time.Sleep(300 * time.Millisecond)
	m := parseExposition(t, scrape(t, ts))
	if m[`coma_cluster_workers{state="dead"}`] != 1 {
		t.Fatalf("dead workers = %v, want 1", m[`coma_cluster_workers{state="dead"}`])
	}
	if m["coma_cluster_lease_expiries_total"] != 1 || m["coma_cluster_requeues_total"] != 1 {
		t.Fatalf("expiries/requeues = %v/%v, want 1/1",
			m["coma_cluster_lease_expiries_total"], m["coma_cluster_requeues_total"])
	}
	if got := jobStatus(t, ts, st.ID); got.State != StateQueued || got.Requeues != 1 {
		t.Fatalf("after expiry: state=%s requeues=%d, want queued/1", got.State, got.Requeues)
	}

	// A healthy replacement picks the job up and completes it.
	savior := registerWorker(t, ts, "savior", 1)
	lr2 := leaseJobs(t, ts, savior, 1)
	if len(lr2.Jobs) != 1 || lr2.Jobs[0].JobID != st.ID {
		t.Fatalf("savior lease = %+v, want requeued job", lr2)
	}
	if lr2.Jobs[0].Attempt != 1 {
		t.Fatalf("requeued lease Attempt = %d, want 1", lr2.Jobs[0].Attempt)
	}
	if !lr2.Jobs[0].Progress {
		t.Fatal("lease lost the spec's progress flag")
	}
	payload, err := MarshalResult(fakeRun(lr2.Jobs[0].Identity))
	if err != nil {
		t.Fatal(err)
	}
	workerPost(t, ts, "/v1/workers/"+savior+"/progress",
		ProgressRequest{JobID: st.ID, Events: []ProgressEvent{{Message: "checkpoint round 1 begin", SimCycles: 42}}}, nil)
	cresp := workerPost(t, ts, "/v1/workers/"+savior+"/complete",
		CompleteRequest{JobID: st.ID, Result: payload}, nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("complete: status %d", cresp.StatusCode)
	}

	final := jobStatus(t, ts, st.ID)
	if final.State != StateDone || final.Requeues != 1 {
		t.Fatalf("final state=%s requeues=%d, want done/1", final.State, final.Requeues)
	}
	res, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !bytes.Equal(stored, payload) {
		t.Fatalf("stored result differs from worker payload:\n got %s\nwant %s", stored, payload)
	}

	// The zombie finished too, eventually: its duplicate completion is a
	// benign no-op (first result won), not an error.
	zresp := workerPost(t, ts, "/v1/workers/"+victim+"/complete",
		CompleteRequest{JobID: st.ID, Result: payload}, nil)
	if zresp.StatusCode != http.StatusOK {
		t.Fatalf("zombie duplicate completion: status %d, want 200", zresp.StatusCode)
	}
	if got := jobStatus(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("zombie completion flipped state to %s", got.State)
	}

	// The savior's forwarded progress line is in the job's event replay.
	ev, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(ev.Body)
	ev.Body.Close()
	if !strings.Contains(string(events), "checkpoint round 1 begin") {
		t.Fatalf("event replay missing forwarded progress line:\n%s", events)
	}

	// Healthz reports coordinator mode and one live worker.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if !h.Cluster || h.ClusterWorkers != 1 {
		t.Fatalf("healthz cluster=%v workers=%d, want true/1", h.Cluster, h.ClusterWorkers)
	}
}

// TestClusterDeadLetter drives a job past its requeue budget and
// checks it lands in the terminal dead_letter state — and that Drain
// does not hang on it (the inflight count must be released).
func TestClusterDeadLetter(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Cluster:     true,
		LeaseTTL:    100 * time.Millisecond,
		MaxRequeues: -1, // dead-letter on the first expiry
	})

	w := registerWorker(t, ts, "flaky", 1)
	_, st := postJob(t, ts, specJSON(11), false)
	if lr := leaseJobs(t, ts, w, 1); len(lr.Jobs) != 1 {
		t.Fatalf("lease = %+v, want 1 job", lr)
	}
	time.Sleep(250 * time.Millisecond)
	m := parseExposition(t, scrape(t, ts)) // lazy sweep

	got := jobStatus(t, ts, st.ID)
	if got.State != StateDeadLetter {
		t.Fatalf("state = %s, want dead_letter", got.State)
	}
	if got.Error == "" {
		t.Fatal("dead-lettered job carries no error message")
	}
	if m[`comad_jobs_total{state="dead_letter"}`] != 1 {
		t.Fatalf("dead_letter counter = %v, want 1", m[`comad_jobs_total{state="dead_letter"}`])
	}

	// A new worker must not be handed the corpse.
	w2 := registerWorker(t, ts, "fresh", 1)
	if lr := leaseJobs(t, ts, w2, 4); len(lr.Jobs) != 0 {
		t.Fatalf("dead-lettered job leased again: %+v", lr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain hung on dead-lettered job: %v", err)
	}
}

// TestClusterWorkStealing: an idle worker facing an empty queue takes
// unstarted leases from the most backlogged peer, which learns of the
// loss through the revocation list on its next heartbeat.
func TestClusterWorkStealing(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Cluster:  true,
		LeaseTTL: time.Minute, // nobody dies in this test
	})

	hoarder := registerWorker(t, ts, "hoarder", 4)
	ids := make(map[string]bool)
	for seed := uint64(1); seed <= 3; seed++ {
		_, st := postJob(t, ts, specJSON(seed), false)
		ids[st.ID] = true
	}
	lr := leaseJobs(t, ts, hoarder, 3)
	if len(lr.Jobs) != 3 {
		t.Fatalf("hoarder leased %d jobs, want 3", len(lr.Jobs))
	}

	// The hoarder reports none of them started: all three are stealable.
	heartbeat(t, ts, hoarder, nil)
	idle := registerWorker(t, ts, "idle", 1)
	got := leaseJobs(t, ts, idle, 1)
	if len(got.Jobs) != 1 {
		t.Fatalf("idle worker stole %d jobs, want 1", len(got.Jobs))
	}
	stolen := got.Jobs[0].JobID
	if !ids[stolen] {
		t.Fatalf("stole unknown job %s", stolen)
	}

	hb := heartbeat(t, ts, hoarder, nil)
	if len(hb.Revoked) != 1 || hb.Revoked[0] != stolen {
		t.Fatalf("hoarder revocations = %v, want [%s]", hb.Revoked, stolen)
	}
	m := parseExposition(t, scrape(t, ts))
	if m["coma_cluster_steals_total"] != 1 {
		t.Fatalf("steals_total = %v, want 1", m["coma_cluster_steals_total"])
	}

	// The job moved with its lease: still running, now on the thief.
	if st := jobStatus(t, ts, stolen); st.State != StateRunning || st.Worker != idle {
		t.Fatalf("stolen job: state=%s worker=%q, want running on %s", st.State, st.Worker, idle)
	}
}

// TestClusterMetricsFamiliesAlwaysParse: the cluster families are
// emitted (as zeros) even on a single-process daemon, and the whole
// exposition parses on both.
func TestClusterMetricsFamiliesAlwaysParse(t *testing.T) {
	families := []string{
		`coma_cluster_workers{state="active"}`,
		`coma_cluster_workers{state="dead"}`,
		"coma_cluster_lease_expiries_total",
		"coma_cluster_requeues_total",
		"coma_cluster_steals_total",
	}
	for _, cluster := range []bool{false, true} {
		_, ts := newTestServer(t, Options{Cluster: cluster})
		m := parseExposition(t, scrape(t, ts))
		for _, f := range families {
			if v, ok := m[f]; !ok || v != 0 {
				t.Errorf("cluster=%v: %s = %v,%v, want present and 0", cluster, f, v, ok)
			}
		}
	}
}

// TestClusterRevisionMismatchRefused: a worker built from different
// code must not join — its results would poison the cache.
func TestClusterRevisionMismatchRefused(t *testing.T) {
	_, ts := newTestServer(t, Options{Cluster: true, Revision: "r1"})
	resp := workerPost(t, ts, "/v1/workers", RegisterRequest{Name: "stale", Slots: 1, Revision: "r0"}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched revision: status %d, want 409", resp.StatusCode)
	}
	// Same revision (and workers that do not state one) are fine.
	registerWorker(t, ts, "anon", 1)
	var reg RegisterResponse
	if resp := workerPost(t, ts, "/v1/workers", RegisterRequest{Name: "ok", Slots: 2, Revision: "r1"}, &reg); resp.StatusCode != http.StatusOK {
		t.Fatalf("matching revision refused: %d", resp.StatusCode)
	}
	if reg.LeaseTTLMS != DefaultLeaseTTL.Milliseconds() {
		t.Fatalf("advertised lease TTL %dms, want %dms", reg.LeaseTTLMS, DefaultLeaseTTL.Milliseconds())
	}
}

// TestClusterDeregisterReturnsBacklog: a graceful goodbye requeues the
// worker's leases immediately, without burning a requeue attempt.
func TestClusterDeregisterReturnsBacklog(t *testing.T) {
	_, ts := newTestServer(t, Options{Cluster: true, LeaseTTL: time.Minute})
	w := registerWorker(t, ts, "leaver", 2)
	_, st := postJob(t, ts, specJSON(21), false)
	if lr := leaseJobs(t, ts, w, 1); len(lr.Jobs) != 1 {
		t.Fatal("lease failed")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/"+w, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	got := jobStatus(t, ts, st.ID)
	if got.State != StateQueued {
		t.Fatalf("after deregister: state %s, want queued", got.State)
	}
	if got.Requeues != 0 {
		t.Fatalf("voluntary return burned an attempt: requeues %d", got.Requeues)
	}
	// The departed worker's id is dead to the API now.
	if resp := workerPost(t, ts, "/v1/workers/"+w+"/heartbeat", HeartbeatRequest{}, nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("heartbeat after deregister: status %d, want 410", resp.StatusCode)
	}
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/stats"
)

// TestDrainCompletesAcceptedWork: Drain refuses new submissions but
// every job accepted before it — running or still queued — reaches a
// terminal state before Drain returns.
func TestDrainCompletesAcceptedWork(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 8,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			<-release
			return fakeRun(id), nil
		},
	})

	// One running, two queued behind the single worker.
	var accepted []string
	for seed := uint64(1); seed <= 3; seed++ {
		resp, st := postJob(t, ts, specJSON(seed), false)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: status %d, want 202", seed, resp.StatusCode)
		}
		accepted = append(accepted, st.ID)
	}
	waitForState(t, ts, accepted[0], StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Wait for the drain flag to take effect, then check refusal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Draining bool `json:"draining"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if health.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, _ := postJob(t, ts, specJSON(9), false); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", resp.StatusCode)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while jobs were still held", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Every accepted job finished; status endpoints still serve.
	for _, id := range accepted {
		st := waitForState(t, ts, id, StateDone)
		if len(st.Result) == 0 {
			t.Fatalf("job %s: drained without a result", id)
		}
	}
}

// TestDrainHonoursContext: a held job keeps Drain blocked until its
// context expires.
func TestDrainHonoursContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Options{
		Workers: 1,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			<-release
			return fakeRun(id), nil
		},
	})
	_, st := postJob(t, ts, specJSON(1), false)
	waitForState(t, ts, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

// TestAbandonedQueuedJobIsCancelled: when every synchronous waiter
// disconnects from a queued job nobody else asked for, the job is
// cancelled before it ever occupies a worker.
func TestAbandonedQueuedJobIsCancelled(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var ran atomic.Bool
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 8,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			if id.Seed == 2 {
				ran.Store(true)
			}
			<-release
			return fakeRun(id), nil
		},
	})

	_, first := postJob(t, ts, specJSON(1), false)
	waitForState(t, ts, first.ID, StateRunning)

	// Synchronous waiter on a queued job, disconnected via context.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/jobs?wait=1", strings.NewReader(specJSON(2)))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the queued job exists, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	var queuedID string
	for queuedID == "" {
		s.mu.Lock()
		for id, j := range s.jobs {
			if j.identity.Seed == 2 {
				queuedID = id
			}
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("queued job never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-errc

	st := waitForState(t, ts, queuedID, StateCancelled)
	if st.Error == "" {
		t.Fatalf("abandoned job has no error message")
	}
	if ran.Load() {
		t.Fatalf("abandoned job still executed")
	}
}
